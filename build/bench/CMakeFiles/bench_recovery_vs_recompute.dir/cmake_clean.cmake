file(REMOVE_RECURSE
  "CMakeFiles/bench_recovery_vs_recompute.dir/bench_recovery_vs_recompute.cc.o"
  "CMakeFiles/bench_recovery_vs_recompute.dir/bench_recovery_vs_recompute.cc.o.d"
  "bench_recovery_vs_recompute"
  "bench_recovery_vs_recompute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recovery_vs_recompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
