# Empty compiler generated dependencies file for bench_recovery_vs_recompute.
# This may be replaced when dependencies are built.
