# Empty dependencies file for bench_cursor_modes.
# This may be replaced when dependencies are built.
