file(REMOVE_RECURSE
  "CMakeFiles/bench_cursor_modes.dir/bench_cursor_modes.cc.o"
  "CMakeFiles/bench_cursor_modes.dir/bench_cursor_modes.cc.o.d"
  "bench_cursor_modes"
  "bench_cursor_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cursor_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
