# Empty compiler generated dependencies file for bench_materialize_ablation.
# This may be replaced when dependencies are built.
