file(REMOVE_RECURSE
  "CMakeFiles/bench_materialize_ablation.dir/bench_materialize_ablation.cc.o"
  "CMakeFiles/bench_materialize_ablation.dir/bench_materialize_ablation.cc.o.d"
  "bench_materialize_ablation"
  "bench_materialize_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_materialize_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
