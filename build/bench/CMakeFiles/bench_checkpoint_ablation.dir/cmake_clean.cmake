file(REMOVE_RECURSE
  "CMakeFiles/bench_checkpoint_ablation.dir/bench_checkpoint_ablation.cc.o"
  "CMakeFiles/bench_checkpoint_ablation.dir/bench_checkpoint_ablation.cc.o.d"
  "bench_checkpoint_ablation"
  "bench_checkpoint_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checkpoint_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
