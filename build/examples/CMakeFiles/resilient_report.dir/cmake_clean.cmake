file(REMOVE_RECURSE
  "CMakeFiles/resilient_report.dir/resilient_report.cpp.o"
  "CMakeFiles/resilient_report.dir/resilient_report.cpp.o.d"
  "resilient_report"
  "resilient_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilient_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
