# Empty dependencies file for resilient_report.
# This may be replaced when dependencies are built.
