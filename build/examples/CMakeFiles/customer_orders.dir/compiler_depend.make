# Empty compiler generated dependencies file for customer_orders.
# This may be replaced when dependencies are built.
