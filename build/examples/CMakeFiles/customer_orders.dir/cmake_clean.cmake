file(REMOVE_RECURSE
  "CMakeFiles/customer_orders.dir/customer_orders.cpp.o"
  "CMakeFiles/customer_orders.dir/customer_orders.cpp.o.d"
  "customer_orders"
  "customer_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/customer_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
