file(REMOVE_RECURSE
  "CMakeFiles/phx_core.dir/core/classifier.cc.o"
  "CMakeFiles/phx_core.dir/core/classifier.cc.o.d"
  "CMakeFiles/phx_core.dir/core/phoenix_driver_manager.cc.o"
  "CMakeFiles/phx_core.dir/core/phoenix_driver_manager.cc.o.d"
  "CMakeFiles/phx_core.dir/core/recovery_manager.cc.o"
  "CMakeFiles/phx_core.dir/core/recovery_manager.cc.o.d"
  "CMakeFiles/phx_core.dir/core/rewriter.cc.o"
  "CMakeFiles/phx_core.dir/core/rewriter.cc.o.d"
  "CMakeFiles/phx_core.dir/core/state_store.cc.o"
  "CMakeFiles/phx_core.dir/core/state_store.cc.o.d"
  "libphx_core.a"
  "libphx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
