# Empty compiler generated dependencies file for phx_core.
# This may be replaced when dependencies are built.
