# Empty compiler generated dependencies file for phx_engine.
# This may be replaced when dependencies are built.
