
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/catalog.cc" "src/CMakeFiles/phx_engine.dir/engine/catalog.cc.o" "gcc" "src/CMakeFiles/phx_engine.dir/engine/catalog.cc.o.d"
  "/root/repo/src/engine/cursor.cc" "src/CMakeFiles/phx_engine.dir/engine/cursor.cc.o" "gcc" "src/CMakeFiles/phx_engine.dir/engine/cursor.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/CMakeFiles/phx_engine.dir/engine/database.cc.o" "gcc" "src/CMakeFiles/phx_engine.dir/engine/database.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/phx_engine.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/phx_engine.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/expression.cc" "src/CMakeFiles/phx_engine.dir/engine/expression.cc.o" "gcc" "src/CMakeFiles/phx_engine.dir/engine/expression.cc.o.d"
  "/root/repo/src/engine/transaction.cc" "src/CMakeFiles/phx_engine.dir/engine/transaction.cc.o" "gcc" "src/CMakeFiles/phx_engine.dir/engine/transaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/phx_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phx_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
