file(REMOVE_RECURSE
  "CMakeFiles/phx_engine.dir/engine/catalog.cc.o"
  "CMakeFiles/phx_engine.dir/engine/catalog.cc.o.d"
  "CMakeFiles/phx_engine.dir/engine/cursor.cc.o"
  "CMakeFiles/phx_engine.dir/engine/cursor.cc.o.d"
  "CMakeFiles/phx_engine.dir/engine/database.cc.o"
  "CMakeFiles/phx_engine.dir/engine/database.cc.o.d"
  "CMakeFiles/phx_engine.dir/engine/executor.cc.o"
  "CMakeFiles/phx_engine.dir/engine/executor.cc.o.d"
  "CMakeFiles/phx_engine.dir/engine/expression.cc.o"
  "CMakeFiles/phx_engine.dir/engine/expression.cc.o.d"
  "CMakeFiles/phx_engine.dir/engine/transaction.cc.o"
  "CMakeFiles/phx_engine.dir/engine/transaction.cc.o.d"
  "libphx_engine.a"
  "libphx_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phx_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
