
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/recovery.cc" "src/CMakeFiles/phx_storage.dir/storage/recovery.cc.o" "gcc" "src/CMakeFiles/phx_storage.dir/storage/recovery.cc.o.d"
  "/root/repo/src/storage/sim_disk.cc" "src/CMakeFiles/phx_storage.dir/storage/sim_disk.cc.o" "gcc" "src/CMakeFiles/phx_storage.dir/storage/sim_disk.cc.o.d"
  "/root/repo/src/storage/table_store.cc" "src/CMakeFiles/phx_storage.dir/storage/table_store.cc.o" "gcc" "src/CMakeFiles/phx_storage.dir/storage/table_store.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/CMakeFiles/phx_storage.dir/storage/wal.cc.o" "gcc" "src/CMakeFiles/phx_storage.dir/storage/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/phx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
