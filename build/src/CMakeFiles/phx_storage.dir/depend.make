# Empty dependencies file for phx_storage.
# This may be replaced when dependencies are built.
