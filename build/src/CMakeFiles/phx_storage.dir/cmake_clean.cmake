file(REMOVE_RECURSE
  "CMakeFiles/phx_storage.dir/storage/recovery.cc.o"
  "CMakeFiles/phx_storage.dir/storage/recovery.cc.o.d"
  "CMakeFiles/phx_storage.dir/storage/sim_disk.cc.o"
  "CMakeFiles/phx_storage.dir/storage/sim_disk.cc.o.d"
  "CMakeFiles/phx_storage.dir/storage/table_store.cc.o"
  "CMakeFiles/phx_storage.dir/storage/table_store.cc.o.d"
  "CMakeFiles/phx_storage.dir/storage/wal.cc.o"
  "CMakeFiles/phx_storage.dir/storage/wal.cc.o.d"
  "libphx_storage.a"
  "libphx_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phx_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
