file(REMOVE_RECURSE
  "libphx_storage.a"
)
