file(REMOVE_RECURSE
  "CMakeFiles/phx_sql.dir/sql/ast.cc.o"
  "CMakeFiles/phx_sql.dir/sql/ast.cc.o.d"
  "CMakeFiles/phx_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/phx_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/phx_sql.dir/sql/parser.cc.o"
  "CMakeFiles/phx_sql.dir/sql/parser.cc.o.d"
  "CMakeFiles/phx_sql.dir/sql/token.cc.o"
  "CMakeFiles/phx_sql.dir/sql/token.cc.o.d"
  "libphx_sql.a"
  "libphx_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phx_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
