file(REMOVE_RECURSE
  "CMakeFiles/phx_odbc.dir/odbc/driver.cc.o"
  "CMakeFiles/phx_odbc.dir/odbc/driver.cc.o.d"
  "CMakeFiles/phx_odbc.dir/odbc/driver_manager.cc.o"
  "CMakeFiles/phx_odbc.dir/odbc/driver_manager.cc.o.d"
  "CMakeFiles/phx_odbc.dir/odbc/odbc_api.cc.o"
  "CMakeFiles/phx_odbc.dir/odbc/odbc_api.cc.o.d"
  "libphx_odbc.a"
  "libphx_odbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phx_odbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
