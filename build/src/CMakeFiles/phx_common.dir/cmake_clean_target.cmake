file(REMOVE_RECURSE
  "libphx_common.a"
)
