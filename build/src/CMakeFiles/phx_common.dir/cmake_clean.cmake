file(REMOVE_RECURSE
  "CMakeFiles/phx_common.dir/common/codec.cc.o"
  "CMakeFiles/phx_common.dir/common/codec.cc.o.d"
  "CMakeFiles/phx_common.dir/common/rng.cc.o"
  "CMakeFiles/phx_common.dir/common/rng.cc.o.d"
  "CMakeFiles/phx_common.dir/common/schema.cc.o"
  "CMakeFiles/phx_common.dir/common/schema.cc.o.d"
  "CMakeFiles/phx_common.dir/common/status.cc.o"
  "CMakeFiles/phx_common.dir/common/status.cc.o.d"
  "CMakeFiles/phx_common.dir/common/value.cc.o"
  "CMakeFiles/phx_common.dir/common/value.cc.o.d"
  "libphx_common.a"
  "libphx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
