# Empty dependencies file for phx_common.
# This may be replaced when dependencies are built.
