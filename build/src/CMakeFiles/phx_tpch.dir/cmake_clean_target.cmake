file(REMOVE_RECURSE
  "libphx_tpch.a"
)
