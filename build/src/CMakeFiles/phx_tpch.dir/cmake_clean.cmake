file(REMOVE_RECURSE
  "CMakeFiles/phx_tpch.dir/tpch/dbgen.cc.o"
  "CMakeFiles/phx_tpch.dir/tpch/dbgen.cc.o.d"
  "CMakeFiles/phx_tpch.dir/tpch/power_test.cc.o"
  "CMakeFiles/phx_tpch.dir/tpch/power_test.cc.o.d"
  "CMakeFiles/phx_tpch.dir/tpch/queries.cc.o"
  "CMakeFiles/phx_tpch.dir/tpch/queries.cc.o.d"
  "CMakeFiles/phx_tpch.dir/tpch/refresh.cc.o"
  "CMakeFiles/phx_tpch.dir/tpch/refresh.cc.o.d"
  "CMakeFiles/phx_tpch.dir/tpch/schema.cc.o"
  "CMakeFiles/phx_tpch.dir/tpch/schema.cc.o.d"
  "libphx_tpch.a"
  "libphx_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phx_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
