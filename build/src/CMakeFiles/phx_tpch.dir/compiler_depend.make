# Empty compiler generated dependencies file for phx_tpch.
# This may be replaced when dependencies are built.
