file(REMOVE_RECURSE
  "libphx_net.a"
)
