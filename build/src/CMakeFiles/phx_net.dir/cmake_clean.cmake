file(REMOVE_RECURSE
  "CMakeFiles/phx_net.dir/net/channel.cc.o"
  "CMakeFiles/phx_net.dir/net/channel.cc.o.d"
  "CMakeFiles/phx_net.dir/net/db_server.cc.o"
  "CMakeFiles/phx_net.dir/net/db_server.cc.o.d"
  "CMakeFiles/phx_net.dir/net/protocol.cc.o"
  "CMakeFiles/phx_net.dir/net/protocol.cc.o.d"
  "libphx_net.a"
  "libphx_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phx_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
