# Empty compiler generated dependencies file for phx_net.
# This may be replaced when dependencies are built.
