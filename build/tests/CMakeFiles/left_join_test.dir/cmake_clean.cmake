file(REMOVE_RECURSE
  "CMakeFiles/left_join_test.dir/left_join_test.cc.o"
  "CMakeFiles/left_join_test.dir/left_join_test.cc.o.d"
  "left_join_test"
  "left_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/left_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
