# Empty compiler generated dependencies file for left_join_test.
# This may be replaced when dependencies are built.
