file(REMOVE_RECURSE
  "CMakeFiles/database_recovery_test.dir/database_recovery_test.cc.o"
  "CMakeFiles/database_recovery_test.dir/database_recovery_test.cc.o.d"
  "database_recovery_test"
  "database_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
