# Empty compiler generated dependencies file for seek_and_multiclient_test.
# This may be replaced when dependencies are built.
