file(REMOVE_RECURSE
  "CMakeFiles/prepared_and_case_test.dir/prepared_and_case_test.cc.o"
  "CMakeFiles/prepared_and_case_test.dir/prepared_and_case_test.cc.o.d"
  "prepared_and_case_test"
  "prepared_and_case_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepared_and_case_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
