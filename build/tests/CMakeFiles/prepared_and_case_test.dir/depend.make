# Empty dependencies file for prepared_and_case_test.
# This may be replaced when dependencies are built.
