# Empty dependencies file for sim_disk_test.
# This may be replaced when dependencies are built.
