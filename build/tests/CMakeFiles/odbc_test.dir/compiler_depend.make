# Empty compiler generated dependencies file for odbc_test.
# This may be replaced when dependencies are built.
