# Empty dependencies file for storage_recovery_test.
# This may be replaced when dependencies are built.
