file(REMOVE_RECURSE
  "CMakeFiles/storage_recovery_test.dir/storage_recovery_test.cc.o"
  "CMakeFiles/storage_recovery_test.dir/storage_recovery_test.cc.o.d"
  "storage_recovery_test"
  "storage_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
