# Empty compiler generated dependencies file for phoenix_basic_test.
# This may be replaced when dependencies are built.
