file(REMOVE_RECURSE
  "CMakeFiles/phoenix_basic_test.dir/phoenix_basic_test.cc.o"
  "CMakeFiles/phoenix_basic_test.dir/phoenix_basic_test.cc.o.d"
  "phoenix_basic_test"
  "phoenix_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
