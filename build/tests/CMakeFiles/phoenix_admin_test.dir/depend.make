# Empty dependencies file for phoenix_admin_test.
# This may be replaced when dependencies are built.
