file(REMOVE_RECURSE
  "CMakeFiles/phoenix_admin_test.dir/phoenix_admin_test.cc.o"
  "CMakeFiles/phoenix_admin_test.dir/phoenix_admin_test.cc.o.d"
  "phoenix_admin_test"
  "phoenix_admin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_admin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
