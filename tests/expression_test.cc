// Expression evaluation: arithmetic, three-valued logic, LIKE, scalar
// functions, parameters.

#include "engine/expression.h"

#include "sql/parser.h"

#include "gtest/gtest.h"

namespace phoenix::eng {
namespace {

Value Eval(const std::string& text, const EvalEnv& env = {}) {
  auto expr = sql::Parser::ParseExpression(text);
  EXPECT_TRUE(expr.ok()) << text << ": " << expr.status().ToString();
  auto v = EvalExpr(**expr, env);
  EXPECT_TRUE(v.ok()) << text << ": " << v.status().ToString();
  return v.ok() ? v.take() : Value();
}

Status EvalError(const std::string& text, const EvalEnv& env = {}) {
  auto expr = sql::Parser::ParseExpression(text);
  EXPECT_TRUE(expr.ok()) << text;
  return EvalExpr(**expr, env).status();
}

TEST(Expression, IntegerArithmetic) {
  EXPECT_EQ(Eval("1 + 2 * 3").AsInt64(), 7);
  EXPECT_EQ(Eval("(1 + 2) * 3").AsInt64(), 9);
  EXPECT_EQ(Eval("7 / 2").AsInt64(), 3);
  EXPECT_EQ(Eval("7 % 3").AsInt64(), 1);
  EXPECT_EQ(Eval("-5 + 2").AsInt64(), -3);
}

TEST(Expression, MixedArithmeticPromotesToDouble) {
  EXPECT_DOUBLE_EQ(Eval("7 / 2.0").AsDouble(), 3.5);
  EXPECT_EQ(Eval("1 + 2.5").type(), DataType::kDouble);
}

TEST(Expression, DivisionByZeroIsError) {
  EXPECT_EQ(EvalError("1 / 0").code(), StatusCode::kSqlError);
  EXPECT_EQ(EvalError("1.0 / 0.0").code(), StatusCode::kSqlError);
  EXPECT_EQ(EvalError("5 % 0").code(), StatusCode::kSqlError);
}

TEST(Expression, StringConcatenationWithPlus) {
  EXPECT_EQ(Eval("'foo' + 'bar'").AsString(), "foobar");
  EXPECT_EQ(Eval("'n=' + 3").AsString(), "n=3");
}

TEST(Expression, Comparisons) {
  EXPECT_TRUE(Eval("1 < 2").AsBool());
  EXPECT_TRUE(Eval("2 <= 2").AsBool());
  EXPECT_TRUE(Eval("'abc' < 'abd'").AsBool());
  EXPECT_TRUE(Eval("3 <> 4").AsBool());
  EXPECT_FALSE(Eval("3 != 3").AsBool());
  EXPECT_TRUE(Eval("DATE '1995-01-01' < DATE '1996-01-01'").AsBool());
}

TEST(Expression, ThreeValuedLogicComparisons) {
  EXPECT_TRUE(Eval("NULL = 1").is_null());
  EXPECT_TRUE(Eval("NULL <> NULL").is_null());
  EXPECT_TRUE(Eval("1 + NULL").is_null());
}

TEST(Expression, KleeneAndOr) {
  EXPECT_FALSE(Eval("FALSE AND NULL").is_null());
  EXPECT_FALSE(Eval("FALSE AND NULL").AsBool());
  EXPECT_TRUE(Eval("TRUE AND NULL").is_null());
  EXPECT_TRUE(Eval("TRUE OR NULL").AsBool());
  EXPECT_TRUE(Eval("FALSE OR NULL").is_null());
  EXPECT_TRUE(Eval("NOT NULL").is_null());
  EXPECT_FALSE(Eval("NOT TRUE").AsBool());
}

TEST(Expression, ShortCircuitPreventsRhsError) {
  // RHS would divide by zero; short-circuit must skip it.
  EXPECT_FALSE(Eval("FALSE AND (1 / 0 = 1)").AsBool());
  EXPECT_TRUE(Eval("TRUE OR (1 / 0 = 1)").AsBool());
}

TEST(Expression, BetweenAndIn) {
  EXPECT_TRUE(Eval("5 BETWEEN 1 AND 10").AsBool());
  EXPECT_FALSE(Eval("0 BETWEEN 1 AND 10").AsBool());
  EXPECT_TRUE(Eval("0 NOT BETWEEN 1 AND 10").AsBool());
  EXPECT_TRUE(Eval("NULL BETWEEN 1 AND 2").is_null());
  EXPECT_TRUE(Eval("2 IN (1, 2, 3)").AsBool());
  EXPECT_FALSE(Eval("9 IN (1, 2, 3)").AsBool());
  EXPECT_TRUE(Eval("9 NOT IN (1, 2, 3)").AsBool());
  // SQL semantics: 9 IN (1, NULL) is NULL, 1 IN (1, NULL) is TRUE.
  EXPECT_TRUE(Eval("9 IN (1, NULL)").is_null());
  EXPECT_TRUE(Eval("1 IN (1, NULL)").AsBool());
}

TEST(Expression, IsNull) {
  EXPECT_TRUE(Eval("NULL IS NULL").AsBool());
  EXPECT_FALSE(Eval("1 IS NULL").AsBool());
  EXPECT_TRUE(Eval("1 IS NOT NULL").AsBool());
}

TEST(Expression, LikePatterns) {
  EXPECT_TRUE(LikeMatch("PROMO BRUSHED TIN", "PROMO%"));
  EXPECT_FALSE(LikeMatch("STANDARD TIN", "PROMO%"));
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_FALSE(LikeMatch("abbc", "a_c"));
  EXPECT_TRUE(LikeMatch("anything", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("xay", "%a%"));
  EXPECT_TRUE(LikeMatch("MEDIUM POLISHED COPPER", "MEDIUM POLISHED%"));
  EXPECT_TRUE(LikeMatch("CaseFold", "casefold"));  // case-insensitive
  EXPECT_FALSE(LikeMatch("ab", "a"));
  EXPECT_TRUE(Eval("'smith' LIKE 'SM%'").AsBool());
  EXPECT_TRUE(Eval("'x' NOT LIKE 'y%'").AsBool());
  EXPECT_TRUE(Eval("NULL LIKE 'a'").is_null());
}

TEST(Expression, ScalarFunctions) {
  EXPECT_EQ(Eval("ABS(-7)").AsInt64(), 7);
  EXPECT_DOUBLE_EQ(Eval("ABS(-2.5)").AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Eval("ROUND(2.567, 2)").AsDouble(), 2.57);
  EXPECT_DOUBLE_EQ(Eval("ROUND(2.5)").AsDouble(), 3.0);
  EXPECT_EQ(Eval("UPPER('abc')").AsString(), "ABC");
  EXPECT_EQ(Eval("LOWER('AbC')").AsString(), "abc");
  EXPECT_EQ(Eval("LENGTH('hello')").AsInt64(), 5);
  EXPECT_EQ(Eval("SUBSTR('hello', 2, 3)").AsString(), "ell");
  EXPECT_EQ(Eval("SUBSTR('hello', 4)").AsString(), "lo");
  EXPECT_EQ(Eval("SUBSTR('hi', 9)").AsString(), "");
  EXPECT_EQ(Eval("COALESCE(NULL, NULL, 3)").AsInt64(), 3);
  EXPECT_TRUE(Eval("COALESCE(NULL, NULL)").is_null());
  EXPECT_EQ(Eval("CONCAT('a', 1, NULL, 'b')").AsString(), "a1b");
  EXPECT_EQ(Eval("YEAR(DATE '1995-03-15')").AsInt32(), 1995);
  EXPECT_EQ(Eval("MONTH(DATE '1995-03-15')").AsInt32(), 3);
  EXPECT_EQ(Eval("DAY(DATE '1995-03-15')").AsInt32(), 15);
  Value d = Eval("DATE_ADD_DAYS(DATE '1995-03-15', 17)");
  EXPECT_EQ(FormatDate(d.AsInt32()), "1995-04-01");
}

TEST(Expression, FunctionArityErrors) {
  EXPECT_FALSE(EvalError("ABS(1, 2)").ok());
  EXPECT_FALSE(EvalError("UNKNOWN_FN(1)").ok());
  EXPECT_FALSE(EvalError("LENGTH()").ok());
}

TEST(Expression, RowcountReadsEnv) {
  EvalEnv env;
  env.last_rowcount = 42;
  EXPECT_EQ(Eval("ROWCOUNT()", env).AsInt64(), 42);
}

TEST(Expression, ColumnResolution) {
  Schema schema;
  schema.AddColumn(Column{"A", DataType::kInt64, false});
  schema.AddColumn(Column{"B", DataType::kString, true});
  std::vector<std::string> quals{"t", "t"};
  Row row{Value::Int64(11), Value::String("x")};
  EvalEnv env;
  env.schema = &schema;
  env.qualifiers = &quals;
  env.row = &row;
  EXPECT_EQ(Eval("A + 1", env).AsInt64(), 12);
  EXPECT_EQ(Eval("t.B", env).AsString(), "x");
  EXPECT_FALSE(EvalError("u.A", env).ok());
  EXPECT_FALSE(EvalError("missing", env).ok());
}

TEST(Expression, AmbiguousColumnIsError) {
  Schema schema;
  schema.AddColumn(Column{"K", DataType::kInt64, false});
  schema.AddColumn(Column{"K", DataType::kInt64, false});
  std::vector<std::string> quals{"a", "b"};
  Row row{Value::Int64(1), Value::Int64(2)};
  EvalEnv env;
  env.schema = &schema;
  env.qualifiers = &quals;
  env.row = &row;
  EXPECT_FALSE(EvalError("K", env).ok());
  EXPECT_EQ(Eval("a.K", env).AsInt64(), 1);
  EXPECT_EQ(Eval("b.K", env).AsInt64(), 2);
}

TEST(Expression, ParamsResolveCaseInsensitively) {
  std::map<std::string, Value> params{{"T", Value::String("tbl")}};
  EvalEnv env;
  env.params = &params;
  EXPECT_EQ(Eval("@t", env).AsString(), "tbl");
  EXPECT_FALSE(EvalError("@missing", env).ok());
}

TEST(Expression, AggregateOutsideGroupContextIsError) {
  EXPECT_FALSE(EvalError("SUM(1)").ok());
}

TEST(Expression, CollectAggregatesFindsAllNodes) {
  auto expr = sql::Parser::ParseExpression(
      "SUM(a) / COUNT(*) + MAX(b) - LENGTH(c)");
  ASSERT_TRUE(expr.ok());
  std::vector<const sql::Expr*> aggs;
  CollectAggregates(**expr, &aggs);
  EXPECT_EQ(aggs.size(), 3u);
}

TEST(Expression, TruthyRules) {
  EXPECT_FALSE(Truthy(Value::Null()));
  EXPECT_FALSE(Truthy(Value::Bool(false)));
  EXPECT_TRUE(Truthy(Value::Bool(true)));
  EXPECT_FALSE(Truthy(Value::Int64(0)));
  EXPECT_TRUE(Truthy(Value::Int64(-1)));
  EXPECT_FALSE(Truthy(Value::String("")));
  EXPECT_TRUE(Truthy(Value::String("x")));
}

}  // namespace
}  // namespace phoenix::eng
