// Regression tests for recovery-path bugs fixed alongside the chaos harness:
//  - busy-wait between reconnect attempts -> capped exponential backoff,
//  - silent cursor misposition when the result table is short,
//  - stale commit-marker id leaking into a replayed transaction,
//  - recovery pass dying when the server crashes again mid-recovery,
//  - crash between checkpoint image and WAL truncation bricking the server.
// Each test documents the pre-fix failure it guards against.

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/phoenix_driver_manager.h"
#include "storage/recovery.h"
#include "storage/sim_disk.h"
#include "storage/table_store.h"

#include "test_util.h"

namespace phoenix::core {
namespace {

using odbc::DriverManager;
using odbc::Hdbc;
using odbc::Henv;
using odbc::Hstmt;
using odbc::SqlReturn;
using testutil::AutoRestartConfig;
using testutil::MustExec;
using testutil::MustQuery;
using testutil::TestCluster;

// --- RecoveryBackoffUs ----------------------------------------------------

TEST(RecoveryBackoff, FirstAttemptIsImmediate) {
  RecoveryConfig cfg;
  EXPECT_EQ(RecoveryBackoffUs(cfg, 0, nullptr), 0u);
  EXPECT_EQ(RecoveryBackoffUs(cfg, -1, nullptr), 0u);
}

TEST(RecoveryBackoff, GrowsExponentiallyToCap) {
  RecoveryConfig cfg;
  cfg.initial_backoff_us = 200;
  cfg.max_backoff_us = 10000;
  cfg.backoff_multiplier = 2.0;
  cfg.jitter = 0.0;
  EXPECT_EQ(RecoveryBackoffUs(cfg, 1, nullptr), 200u);
  EXPECT_EQ(RecoveryBackoffUs(cfg, 2, nullptr), 400u);
  EXPECT_EQ(RecoveryBackoffUs(cfg, 3, nullptr), 800u);
  EXPECT_EQ(RecoveryBackoffUs(cfg, 4, nullptr), 1600u);
  // Past the cap the curve flattens instead of overflowing.
  EXPECT_EQ(RecoveryBackoffUs(cfg, 10, nullptr), 10000u);
  EXPECT_EQ(RecoveryBackoffUs(cfg, 60, nullptr), 10000u);
}

TEST(RecoveryBackoff, JitterIsBoundedAndDeterministic) {
  RecoveryConfig cfg;
  cfg.jitter = 0.25;
  RecoveryConfig flat = cfg;
  flat.jitter = 0.0;
  Rng a(42);
  Rng b(42);
  for (int attempt = 1; attempt <= 12; ++attempt) {
    uint64_t ja = RecoveryBackoffUs(cfg, attempt, &a);
    uint64_t jb = RecoveryBackoffUs(cfg, attempt, &b);
    EXPECT_EQ(ja, jb) << "same seed, attempt " << attempt;
    uint64_t base = RecoveryBackoffUs(flat, attempt, nullptr);
    uint64_t spread = base / 4 + 1;
    EXPECT_GE(ja, base - spread) << "attempt " << attempt;
    EXPECT_LE(ja, std::min(cfg.max_backoff_us, base + spread))
        << "attempt " << attempt;
  }
}

// The give-up path (server never comes back) must finish in bounded wall
// time. Before the fix the default retry_wait busy-spun; now it sleeps the
// capped backoff, so 20 attempts cost at most ~20 * 10ms.
TEST(RecoveryBackoff, GiveUpPathSleepsInsteadOfSpinning) {
  TestCluster cluster;
  PhoenixConfig config;  // default retry_wait: the real backoff sleep
  config.reconnect_attempts = 20;
  PhoenixDriverManager phoenix(&cluster.network, config);
  Hdbc* dbc = phoenix.AllocConnect(phoenix.AllocEnv());
  ASSERT_EQ(phoenix.Connect(dbc, "testdb", "app"), SqlReturn::kSuccess);
  MustExec(&phoenix, dbc, "CREATE TABLE T (K INTEGER PRIMARY KEY)");
  cluster.server.Crash();  // and it stays down

  auto start = std::chrono::steady_clock::now();
  Hstmt* stmt = phoenix.AllocStmt(dbc);
  EXPECT_EQ(phoenix.ExecDirect(stmt, "INSERT INTO T VALUES (1)"),
            SqlReturn::kError);
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  EXPECT_LT(secs, 5.0) << "give-up path took " << secs << "s for 20 attempts";
  EXPECT_GE(phoenix.stats().reconnect_attempts, 20u);
}

// --- RepositionCursor short-discard --------------------------------------

// Regression: the client-side reposition ablation counted discarded rows but
// never compared the count against the target position, so a short result
// table (rows lost, wrong table, corrupted state) silently produced a cursor
// at the wrong position. It must fail loudly instead.
TEST(RepositionRegression, RepositionPastEndFailsLoudly) {
  TestCluster cluster;
  PhoenixConfig config = AutoRestartConfig(&cluster.server);
  config.server_side_reposition = false;  // the ablation path under test
  PhoenixDriverManager phoenix(&cluster.network, config);
  Hdbc* dbc = phoenix.AllocConnect(phoenix.AllocEnv());
  ASSERT_EQ(phoenix.Connect(dbc, "testdb", "app"), SqlReturn::kSuccess);
  MustExec(&phoenix, dbc, "CREATE TABLE R (K INTEGER PRIMARY KEY)");
  MustExec(&phoenix, dbc, "INSERT INTO R VALUES (1), (2), (3)");

  uint64_t cursor_id = 0;
  // Within range (including exactly at the end): fine.
  PHX_ASSERT_OK(phoenix.RepositionCursorForTest(dbc, "R", 2, &cursor_id));
  PHX_ASSERT_OK(phoenix.RepositionCursorForTest(dbc, "R", 3, &cursor_id));
  // Past the end: only 3 rows exist but the client already consumed 10.
  // Before the fix this returned Ok with a mispositioned cursor.
  Status st = phoenix.RepositionCursorForTest(dbc, "R", 10, &cursor_id);
  EXPECT_FALSE(st.ok()) << "reposition past the end silently succeeded";
}

// --- Stale commit marker on rollback-replay ------------------------------

// Regression: when recovery finds the commit marker absent (the crash beat
// the COMMIT) it rolls the transaction back and replays it. The pending
// marker id from the failed attempt used to survive into the replayed
// transaction; a later code path probing that id would see "absent" and
// mis-resolve. The replay branch must clear it so the commit retry mints a
// fresh marker.
TEST(RecoveryRegression, ReplayBranchClearsStaleCommitMarker) {
  TestCluster cluster;
  PhoenixConfig config = AutoRestartConfig(&cluster.server);
  auto dbc_holder = std::make_shared<Hdbc*>(nullptr);
  auto observed = std::make_shared<std::vector<uint64_t>>();
  config.recovery_point_hook = [dbc_holder, observed](RecoveryPoint pt) {
    if (pt == RecoveryPoint::kSqlStateReinstalled && *dbc_holder != nullptr) {
      observed->push_back(
          PhoenixDriverManager::conn_state(*dbc_holder)->pending_commit_req);
    }
  };
  PhoenixDriverManager phoenix(&cluster.network, config);
  Hdbc* dbc = phoenix.AllocConnect(phoenix.AllocEnv());
  *dbc_holder = dbc;
  ASSERT_EQ(phoenix.Connect(dbc, "testdb", "app"), SqlReturn::kSuccess);
  MustExec(&phoenix, dbc, "CREATE TABLE T (K INTEGER PRIMARY KEY)");
  MustExec(&phoenix, dbc, "BEGIN TRANSACTION");
  MustExec(&phoenix, dbc, "INSERT INTO T VALUES (1)");
  cluster.server.Crash();
  // The COMMIT hits the dead server: its marker never lands, recovery takes
  // the rollback-replay branch, and the retried commit must succeed.
  MustExec(&phoenix, dbc, "COMMIT");

  ASSERT_FALSE(observed->empty()) << "recovery never reinstalled SQL state";
  for (uint64_t pending : *observed) {
    EXPECT_EQ(pending, 0u)
        << "stale commit-marker id survived into the replayed transaction";
  }
  // Exactly-once: the replayed transaction committed a single row.
  auto rows = MustQuery(&phoenix, dbc, "SELECT K FROM T ORDER BY K");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt64(), 1);
  EXPECT_GE(phoenix.stats().txn_replays, 1u);
}

// --- Re-crash during recovery --------------------------------------------

// Regression: a server crash while a recovery pass was mid-flight surfaced
// the comm error to the application. The recovery driver must restart the
// whole pass (detection + Phase 1 + Phase 2) and count the re-crash.
TEST(RecoveryRegression, RecrashDuringRecoveryIsRetried) {
  TestCluster cluster;
  PhoenixConfig config = AutoRestartConfig(&cluster.server);
  auto armed = std::make_shared<int>(1);
  net::DbServer* server = &cluster.server;
  config.recovery_point_hook = [server, armed](RecoveryPoint pt) {
    if (pt == RecoveryPoint::kDetected && (*armed)-- > 0) {
      server->Crash();  // the server dies again, mid-recovery
    }
  };
  PhoenixDriverManager phoenix(&cluster.network, config);
  Hdbc* dbc = phoenix.AllocConnect(phoenix.AllocEnv());
  ASSERT_EQ(phoenix.Connect(dbc, "testdb", "app"), SqlReturn::kSuccess);
  MustExec(&phoenix, dbc, "CREATE TABLE T (K INTEGER PRIMARY KEY)");
  MustExec(&phoenix, dbc, "INSERT INTO T VALUES (7)");
  cluster.server.Crash();

  // Before the fix this query failed; now the second recovery round wins.
  auto rows = MustQuery(&phoenix, dbc, "SELECT K FROM T");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt64(), 7);
  EXPECT_GE(phoenix.stats().recovery_recrashes, 1u);
  EXPECT_GE(phoenix.stats().recoveries, 1u);
}

TEST(RecoveryRegression, UnrecoverableSessionGivesUpAfterMaxRounds) {
  TestCluster cluster;
  PhoenixConfig config = AutoRestartConfig(&cluster.server);
  config.recovery.max_recovery_rounds = 2;
  // The hook keeps killing the server at every detection, forever.
  net::DbServer* server = &cluster.server;
  config.recovery_point_hook = [server](RecoveryPoint pt) {
    if (pt == RecoveryPoint::kDetected) server->Crash();
  };
  PhoenixDriverManager phoenix(&cluster.network, config);
  Hdbc* dbc = phoenix.AllocConnect(phoenix.AllocEnv());
  ASSERT_EQ(phoenix.Connect(dbc, "testdb", "app"), SqlReturn::kSuccess);
  MustExec(&phoenix, dbc, "CREATE TABLE T (K INTEGER PRIMARY KEY)");
  cluster.server.Crash();

  Hstmt* stmt = phoenix.AllocStmt(dbc);
  EXPECT_EQ(phoenix.ExecDirect(stmt, "INSERT INTO T VALUES (1)"),
            SqlReturn::kError);
  EXPECT_GE(phoenix.stats().recovery_recrashes, 1u);
  // The session is marked broken: later calls fail fast, no hang.
  Hstmt* stmt2 = phoenix.AllocStmt(dbc);
  EXPECT_EQ(phoenix.ExecDirect(stmt2, "SELECT K FROM T"), SqlReturn::kError);
}

// --- Mid-checkpoint crash, end to end ------------------------------------

// Regression: a crash after the checkpoint image became durable but before
// the WAL was truncated used to leave the server unable to restart (the WAL
// replayed CREATE TABLE onto the image's copy of the table). Restart must
// succeed, skip the subsumed records, and present the data exactly once.
TEST(RecoveryRegression, MidCheckpointCrashRestartsCleanly) {
  TestCluster cluster;
  DriverManager native(&cluster.network);
  Hdbc* dbc = native.AllocConnect(native.AllocEnv());
  ASSERT_EQ(native.Connect(dbc, "testdb", "app"), SqlReturn::kSuccess);
  MustExec(&native, dbc, "CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)");
  for (int i = 1; i <= 5; ++i) {
    MustExec(&native, dbc,
             "INSERT INTO T VALUES (" + std::to_string(i) + ", " +
                 std::to_string(i * 10) + ")");
  }
  ASSERT_TRUE(cluster.server.CrashMidCheckpoint())
      << "checkpoint image was not written before the crash";
  PHX_ASSERT_OK(cluster.server.Restart());
  EXPECT_GT(cluster.server.database()->recovery_info().records_skipped, 0u);

  DriverManager after(&cluster.network);
  Hdbc* dbc2 = after.AllocConnect(after.AllocEnv());
  ASSERT_EQ(after.Connect(dbc2, "testdb", "app"), SqlReturn::kSuccess);
  auto rows = MustQuery(&after, dbc2, "SELECT K, V FROM T ORDER BY K");
  ASSERT_EQ(rows.size(), 5u);
  for (int i = 1; i <= 5; ++i) {
    EXPECT_EQ(rows[i - 1][0].AsInt64(), i);
    EXPECT_EQ(rows[i - 1][1].AsInt64(), i * 10);
  }
}

// Regression for the split checkpoint protocol: a crash after the in-memory
// snapshot was taken but before its image reached the disk must leave no
// trace — no checkpoint file, no WAL truncation — so the restart replays the
// full log. (A bug here would be a fence recorded somewhere durable while
// the image it guards never landed.)
TEST(RecoveryRegression, CrashAfterSnapshotBeforeImageReplaysFullWal) {
  TestCluster cluster;
  DriverManager native(&cluster.network);
  Hdbc* dbc = native.AllocConnect(native.AllocEnv());
  ASSERT_EQ(native.Connect(dbc, "testdb", "app"), SqlReturn::kSuccess);
  MustExec(&native, dbc, "CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)");
  for (int i = 1; i <= 5; ++i) {
    MustExec(&native, dbc,
             "INSERT INTO T VALUES (" + std::to_string(i) + ", " +
                 std::to_string(i * 10) + ")");
  }
  // The snapshot exists only in the dying process's memory: no image.
  EXPECT_FALSE(cluster.server.CrashMidCheckpoint(
      eng::CheckpointCrashPoint::kPostSnapshot));
  EXPECT_FALSE(cluster.disk.Exists("phxdb.ckpt"));
  PHX_ASSERT_OK(cluster.server.Restart());
  const storage::RecoveryInfo& info =
      cluster.server.database()->recovery_info();
  EXPECT_FALSE(info.had_checkpoint);
  EXPECT_EQ(info.records_skipped, 0u);
  EXPECT_EQ(info.records_replayed, 6u);  // CREATE TABLE + 5 inserts

  DriverManager after(&cluster.network);
  Hdbc* dbc2 = after.AllocConnect(after.AllocEnv());
  ASSERT_EQ(after.Connect(dbc2, "testdb", "app"), SqlReturn::kSuccess);
  auto rows = MustQuery(&after, dbc2, "SELECT K, V FROM T ORDER BY K");
  ASSERT_EQ(rows.size(), 5u);
  for (int i = 1; i <= 5; ++i) {
    EXPECT_EQ(rows[i - 1][0].AsInt64(), i);
    EXPECT_EQ(rows[i - 1][1].AsInt64(), i * 10);
  }
}

// --- Group commit: the append-to-sync crash window ------------------------

// The durability hole group commit opens if the ack contract is sloppy: a
// commit's frame is appended to the device inside a coalesced batch, the
// process dies before the batch's single sync, and the record is gone. The
// client must have seen an ERROR for that commit — acking on enqueue (or on
// append) would claim a commit the crash then erases.
TEST(GroupCommitRegression, CrashBetweenBatchAppendAndSyncNeverAcks) {
  storage::SimDisk disk;
  eng::DatabaseOptions dopts;
  dopts.wal.group_commit = true;
  {
    eng::Database db(&disk, dopts);
    PHX_ASSERT_OK(db.Open());
    auto sid = db.CreateSession("app");
    PHX_ASSERT_OK_RESULT(sid);
    auto res = db.ExecuteScript(*sid, "CREATE TABLE T (K INTEGER PRIMARY KEY)");
    PHX_ASSERT_OK_RESULT(res);  // acked: must survive

    // Arm the crash window: the next batch is appended but never synced.
    db.durability()->wal_writer()->set_before_sync_hook([] { return false; });
    auto doomed = db.ExecuteScript(*sid, "INSERT INTO T VALUES (1)");
    EXPECT_FALSE(doomed.ok())
        << "commit acked although its batch was never synced";
    db.durability()->wal_writer()->set_before_sync_hook(nullptr);
  }
  disk.Crash();  // the unsynced batch bytes vanish

  eng::Database after(&disk, dopts);
  PHX_ASSERT_OK(after.Open());
  auto sid = after.CreateSession("verify");
  PHX_ASSERT_OK_RESULT(sid);
  // The acked CREATE TABLE survived; the un-acked INSERT did not — and
  // neither invariant direction is violated.
  auto rows = after.ExecuteScript(*sid, "SELECT K FROM T");
  PHX_ASSERT_OK_RESULT(rows);
  EXPECT_TRUE(rows->at(0).rows.empty())
      << "un-acked commit reappeared after the crash";
}

// Load test of the same contract through the full server stack: many client
// threads commit through coalesced batches while the server is killed.
// Every INSERT the clients saw succeed must be present after restart.
TEST(GroupCommitRegression, AckedCommitsSurviveServerCrashUnderLoad) {
  for (int flusher = 0; flusher <= 1; ++flusher) {
    net::ServerOptions sopts;
    sopts.db.wal.group_commit = true;
    sopts.db.wal.dedicated_flusher = flusher == 1;
    sopts.worker_threads = 8;
    TestCluster cluster(sopts);
    // Real fsync service time so batches actually coalesce under load.
    cluster.disk.set_sync_latency_us(100);

    auto connect_req = [](const std::string& user) {
      net::Request r;
      r.kind = net::Request::Kind::kConnect;
      r.user = user;
      return r;
    };
    auto exec_req = [](uint64_t sid, std::string sql) {
      net::Request r;
      r.kind = net::Request::Kind::kExecScript;
      r.session_id = sid;
      r.sql = std::move(sql);
      return r;
    };

    {
      auto chan = cluster.network.Connect("testdb").take();
      auto conn = chan->RoundTrip(connect_req("ddl"));
      ASSERT_TRUE(conn.ok());
      auto r = chan->RoundTrip(exec_req(conn->session_id,
                                        "CREATE TABLE L (K INTEGER PRIMARY "
                                        "KEY)"));
      ASSERT_TRUE(r.ok() && r->ToStatus().ok());
    }

    constexpr int kThreads = 8;
    std::mutex acked_mu;
    std::vector<int> acked;
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto chan = cluster.network.Connect("testdb").take();
        auto conn = chan->RoundTrip(connect_req("w" + std::to_string(t)));
        if (!conn.ok() || !conn->ToStatus().ok()) return;
        for (int i = 0; !stop.load(); ++i) {
          int key = t * 100000 + i;
          auto r = chan->RoundTrip(exec_req(
              conn->session_id,
              "INSERT INTO L VALUES (" + std::to_string(key) + ")"));
          if (r.ok() && r->ToStatus().ok()) {
            std::lock_guard<std::mutex> lk(acked_mu);
            acked.push_back(key);
          } else {
            break;  // server crashed under us; this commit was NOT acked
          }
        }
      });
    }
    // Let commits coalesce, then kill the server mid-stream.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    cluster.server.Crash();
    stop.store(true);
    for (auto& th : threads) th.join();

    PHX_ASSERT_OK(cluster.server.Restart());
    eng::Database* db = cluster.server.database();
    auto sid = db->CreateSession("verify");
    PHX_ASSERT_OK_RESULT(sid);
    auto res = db->ExecuteScript(*sid, "SELECT K FROM L ORDER BY K");
    PHX_ASSERT_OK_RESULT(res);
    std::set<int64_t> recovered;
    for (const Row& row : res->at(0).rows) recovered.insert(row[0].AsInt64());
    ASSERT_FALSE(acked.empty()) << "no commit was ever acked before the crash";
    for (int key : acked) {
      EXPECT_TRUE(recovered.count(key))
          << "acked commit " << key << " vanished (flusher=" << flusher << ")";
    }
  }
}

// --- Clear-on-error ---------------------------------------------------------

// Regression: Recover() used to leave the half-replayed tables behind when
// replay hit an error mid-log. A caller that retried, degraded to read-only,
// or reported-and-continued would then observe — and possibly serve —
// partially applied state (tables present, rows missing). A failed recovery
// must leave the store exactly empty, in both serial and parallel replay.
TEST(RecoverErrorPath, FailedRecoveryClearsTheStore) {
  for (uint64_t threads : {uint64_t{1}, uint64_t{4}}) {
    storage::SimDisk disk;
    storage::DurabilityManager dm(&disk, "db");
    Schema schema;
    schema.AddColumn(Column{"K", DataType::kInt64, false});

    storage::WalCommitRecord create;
    create.txn_id = 1;
    create.ops.push_back(storage::WalOp::CreateTable("T", schema, {0}));
    PHX_ASSERT_OK(dm.LogCommit(create));
    storage::WalCommitRecord insert;
    insert.txn_id = 2;
    insert.ops.push_back(storage::WalOp::Insert("T", 1, Row{Value::Int64(7)}));
    PHX_ASSERT_OK(dm.LogCommit(insert));
    // A commit whose op targets a table that never existed: replay applies
    // the two commits above, then errors here.
    storage::WalCommitRecord bad;
    bad.txn_id = 3;
    bad.ops.push_back(
        storage::WalOp::Insert("MISSING", 1, Row{Value::Int64(9)}));
    PHX_ASSERT_OK(dm.LogCommit(bad));
    disk.Crash();

    dm.set_recovery_threads(threads);
    storage::TableStore store;
    storage::RecoveryInfo info;
    Status st = dm.Recover(&store, &info);
    ASSERT_FALSE(st.ok()) << "threads=" << threads;
    EXPECT_EQ(store.size(), 0u)
        << "half-replayed state leaked out of a failed recovery (threads="
        << threads << ")";
  }
}

}  // namespace
}  // namespace phoenix::core
