// Engine edge cases: date functions in queries, coercion corners, NULL
// ordering, aggregate subtleties, and cross-layer interactions that the
// per-module tests do not reach.

#include "engine/database.h"

#include "gtest/gtest.h"

namespace phoenix::eng {
namespace {

class EngineEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(&disk_);
    ASSERT_TRUE(db_->Open().ok());
    sid_ = *db_->CreateSession("t");
  }

  StatementResult Exec(const std::string& sql) {
    auto r = db_->ExecuteScript(sid_, sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    if (!r.ok()) return StatementResult{};
    return std::move(r->back());
  }

  Status TryExec(const std::string& sql) {
    return db_->ExecuteScript(sid_, sql).status();
  }

  storage::SimDisk disk_;
  std::unique_ptr<Database> db_;
  uint64_t sid_ = 0;
};

TEST_F(EngineEdgeTest, NullsSortFirstAscLastDesc) {
  Exec("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)");
  Exec("INSERT INTO T VALUES (1, 5), (2, NULL), (3, 1)");
  StatementResult asc = Exec("SELECT K FROM T ORDER BY V");
  EXPECT_EQ(asc.rows[0][0].AsInt64(), 2);  // NULL first ascending
  StatementResult desc = Exec("SELECT K FROM T ORDER BY V DESC");
  EXPECT_EQ(desc.rows[2][0].AsInt64(), 2);  // NULL last descending
}

TEST_F(EngineEdgeTest, DateFunctionsInWhereAndGroupBy) {
  Exec("CREATE TABLE E (ID INTEGER PRIMARY KEY, D DATE)");
  Exec("INSERT INTO E VALUES (1, DATE '1995-03-15'), (2, DATE '1995-07-01'),"
       " (3, DATE '1996-03-15')");
  StatementResult by_year = Exec(
      "SELECT YEAR(D) AS Y, COUNT(*) AS N FROM E GROUP BY YEAR(D) "
      "ORDER BY Y");
  ASSERT_EQ(by_year.rows.size(), 2u);
  EXPECT_EQ(by_year.rows[0][1].AsInt64(), 2);
  StatementResult march =
      Exec("SELECT COUNT(*) AS N FROM E WHERE MONTH(D) = 3");
  EXPECT_EQ(march.rows[0][0].AsInt64(), 2);
  StatementResult shifted = Exec(
      "SELECT COUNT(*) AS N FROM E "
      "WHERE DATE_ADD_DAYS(D, 30) > DATE '1995-07-15'");
  EXPECT_EQ(shifted.rows[0][0].AsInt64(), 2);
}

TEST_F(EngineEdgeTest, StringDateLiteralsCoerceOnInsert) {
  Exec("CREATE TABLE E (D DATE)");
  Exec("INSERT INTO E VALUES ('1999-12-31')");
  StatementResult r = Exec("SELECT D FROM E");
  EXPECT_EQ(r.rows[0][0].type(), DataType::kDate);
  EXPECT_EQ(FormatDate(r.rows[0][0].AsInt32()), "1999-12-31");
  EXPECT_EQ(TryExec("INSERT INTO E VALUES ('not a date')").code(),
            StatusCode::kSqlError);
}

TEST_F(EngineEdgeTest, MixedTypeEquiJoinKey) {
  // INTEGER joined against BIGINT: hashing must agree with comparison.
  Exec("CREATE TABLE A (K INTEGER PRIMARY KEY)");
  Exec("CREATE TABLE B (K BIGINT PRIMARY KEY, V VARCHAR)");
  Exec("INSERT INTO A VALUES (1), (2), (3)");
  Exec("INSERT INTO B VALUES (2, 'two'), (3, 'three'), (4, 'four')");
  StatementResult r =
      Exec("SELECT B.V FROM A, B WHERE A.K = B.K ORDER BY B.K");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "two");
}

TEST_F(EngineEdgeTest, AggregatesSkipNulls) {
  Exec("CREATE TABLE T (V INTEGER)");
  Exec("INSERT INTO T VALUES (1), (NULL), (3), (NULL)");
  StatementResult r = Exec(
      "SELECT COUNT(*) AS ALL_ROWS, COUNT(V) AS NON_NULL, SUM(V) AS S, "
      "AVG(V) AS A, MIN(V) AS LO FROM T");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 4);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 2);
  EXPECT_EQ(r.rows[0][2].AsInt64(), 4);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsDouble(), 2.0);
  EXPECT_EQ(r.rows[0][4].AsInt64(), 1);
}

TEST_F(EngineEdgeTest, SumPromotesToDoubleOnlyWhenNeeded) {
  Exec("CREATE TABLE T (I INTEGER, D DOUBLE)");
  Exec("INSERT INTO T VALUES (1, 0.5), (2, 0.25)");
  StatementResult r = Exec("SELECT SUM(I) AS SI, SUM(D) AS SD FROM T");
  EXPECT_EQ(r.rows[0][0].type(), DataType::kInt64);
  EXPECT_EQ(r.rows[0][1].type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 0.75);
}

TEST_F(EngineEdgeTest, GroupByExpressionKey) {
  Exec("CREATE TABLE T (V INTEGER)");
  Exec("INSERT INTO T VALUES (1), (2), (3), (4), (5), (6)");
  StatementResult r = Exec(
      "SELECT V % 3 AS BUCKET, COUNT(*) AS N FROM T GROUP BY V % 3 "
      "ORDER BY BUCKET");
  ASSERT_EQ(r.rows.size(), 3u);
  for (const Row& row : r.rows) EXPECT_EQ(row[1].AsInt64(), 2);
}

TEST_F(EngineEdgeTest, HavingWithoutGroupByActsOnGlobalAggregate) {
  Exec("CREATE TABLE T (V INTEGER)");
  Exec("INSERT INTO T VALUES (1), (2)");
  EXPECT_EQ(Exec("SELECT SUM(V) AS S FROM T HAVING SUM(V) > 2").rows.size(),
            1u);
  EXPECT_EQ(Exec("SELECT SUM(V) AS S FROM T HAVING SUM(V) > 99").rows.size(),
            0u);
}

TEST_F(EngineEdgeTest, DistinctTreatsNullsAsEqual) {
  Exec("CREATE TABLE T (V INTEGER)");
  Exec("INSERT INTO T VALUES (NULL), (NULL), (1)");
  EXPECT_EQ(Exec("SELECT DISTINCT V FROM T").rows.size(), 2u);
}

TEST_F(EngineEdgeTest, UpdateEveryRowWithoutWhere) {
  Exec("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)");
  Exec("INSERT INTO T VALUES (1, 1), (2, 2)");
  EXPECT_EQ(Exec("UPDATE T SET V = V * 10").affected, 2);
  StatementResult r = Exec("SELECT SUM(V) AS S FROM T");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 30);
}

TEST_F(EngineEdgeTest, PkUpdateCollisionInsideMultiRowUpdateRollsBack) {
  Exec("CREATE TABLE T (K INTEGER PRIMARY KEY)");
  Exec("INSERT INTO T VALUES (1), (2)");
  // Shifting every key by +1 collides midway; the statement must undo.
  Status st = TryExec("UPDATE T SET K = K + 1");
  EXPECT_EQ(st.code(), StatusCode::kConstraint);
  StatementResult r = Exec("SELECT K FROM T ORDER BY K");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 1);
  EXPECT_EQ(r.rows[1][0].AsInt64(), 2);
}

TEST_F(EngineEdgeTest, SelfReferentialInsertSelect) {
  Exec("CREATE TABLE T (K INTEGER PRIMARY KEY)");
  Exec("INSERT INTO T VALUES (1), (2)");
  // INSERT INTO T SELECT from T: the select materializes before inserts.
  EXPECT_EQ(Exec("INSERT INTO T SELECT K + 10 FROM T").affected, 2);
  EXPECT_EQ(Exec("SELECT COUNT(*) AS N FROM T").rows[0][0].AsInt64(), 4);
}

TEST_F(EngineEdgeTest, OrderByDateColumn) {
  Exec("CREATE TABLE E (ID INTEGER PRIMARY KEY, D DATE)");
  Exec("INSERT INTO E VALUES (1, DATE '1996-01-01'), (2, DATE '1994-06-15'),"
       " (3, DATE '1995-01-01')");
  StatementResult r = Exec("SELECT ID FROM E ORDER BY D");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 2);
  EXPECT_EQ(r.rows[2][0].AsInt64(), 1);
}

TEST_F(EngineEdgeTest, LikeOnNonStringColumnRejected) {
  Exec("CREATE TABLE T (V INTEGER)");
  Exec("INSERT INTO T VALUES (1)");
  EXPECT_EQ(TryExec("SELECT * FROM T WHERE V LIKE '1%'").code(),
            StatusCode::kSqlError);
}

TEST_F(EngineEdgeTest, ConstantTrueWhereKeepsEverything) {
  Exec("CREATE TABLE T (V INTEGER)");
  Exec("INSERT INTO T VALUES (1), (2)");
  EXPECT_EQ(Exec("SELECT * FROM T WHERE 1 = 1").rows.size(), 2u);
  EXPECT_EQ(Exec("SELECT * FROM T WHERE 2 > 1 AND V > 0").rows.size(), 2u);
}

TEST_F(EngineEdgeTest, RowcountUnaffectedBySelects) {
  Exec("CREATE TABLE T (V INTEGER)");
  Exec("INSERT INTO T VALUES (1), (2), (3)");
  Exec("SELECT * FROM T");
  EXPECT_EQ(Exec("SELECT ROWCOUNT() AS N").rows[0][0].AsInt64(), 3);
}

TEST_F(EngineEdgeTest, ProcedureSeesCurrentDataNotDefinitionTime) {
  Exec("CREATE TABLE T (V INTEGER)");
  Exec("CREATE PROCEDURE CNT AS SELECT COUNT(*) AS N FROM T");
  EXPECT_EQ(Exec("EXEC CNT").rows[0][0].AsInt64(), 0);
  Exec("INSERT INTO T VALUES (1)");
  EXPECT_EQ(Exec("EXEC CNT").rows[0][0].AsInt64(), 1);
}

TEST_F(EngineEdgeTest, ExplainDmlIsReadOnlyAndNeverMutates) {
  // Regression: EXPLAIN of a DML statement used to be a parse error (the
  // grammar only accepted EXPLAIN SELECT). It must parse, be classified
  // read-only, report the plan, and leave the table untouched.
  Exec("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)");
  Exec("INSERT INTO T VALUES (1, 10), (2, 20)");

  StatementResult ins = Exec("EXPLAIN INSERT INTO T VALUES (3, 30)");
  ASSERT_TRUE(ins.has_rows);
  EXPECT_NE(ins.rows[0][0].AsString().find("INSERT"), std::string::npos);
  StatementResult upd = Exec("EXPLAIN UPDATE T SET V = 0 WHERE K = 1");
  ASSERT_TRUE(upd.has_rows);
  EXPECT_NE(upd.rows[0][0].AsString().find("UPDATE"), std::string::npos);
  StatementResult del = Exec("EXPLAIN DELETE FROM T");
  ASSERT_TRUE(del.has_rows);
  EXPECT_NE(del.rows[0][0].AsString().find("DELETE"), std::string::npos);

  // None of the explained statements may have executed.
  EXPECT_EQ(Exec("SELECT COUNT(*) AS N FROM T").rows[0][0].AsInt64(), 2);
  EXPECT_EQ(Exec("SELECT SUM(V) AS S FROM T").rows[0][0].AsInt64(), 30);
  // ROWCOUNT() still reports the last real DML, not the EXPLAINs.
  EXPECT_EQ(Exec("SELECT ROWCOUNT() AS N").rows[0][0].AsInt64(), 2);

  // EXPLAIN of non-plannable statements stays rejected.
  EXPECT_EQ(TryExec("EXPLAIN CREATE TABLE X (A INTEGER)").code(),
            StatusCode::kSqlError);
  EXPECT_EQ(TryExec("EXPLAIN EXPLAIN SELECT * FROM T").code(),
            StatusCode::kSqlError);
}

TEST_F(EngineEdgeTest, DeepExpressionNesting) {
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  StatementResult r = Exec("SELECT " + expr + " AS V");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 201);
}

TEST_F(EngineEdgeTest, WideRowsRoundTrip) {
  std::string ddl = "CREATE TABLE W (C0 INTEGER PRIMARY KEY";
  std::string cols;
  for (int i = 1; i < 60; ++i) {
    ddl += ", C" + std::to_string(i) + " INTEGER";
  }
  ddl += ")";
  Exec(ddl);
  std::string insert = "INSERT INTO W VALUES (0";
  for (int i = 1; i < 60; ++i) insert += ", " + std::to_string(i);
  insert += ")";
  Exec(insert);
  StatementResult r = Exec("SELECT * FROM W");
  ASSERT_EQ(r.schema.num_columns(), 60u);
  EXPECT_EQ(r.rows[0][59].AsInt64(), 59);
}

}  // namespace
}  // namespace phoenix::eng
