// LEFT OUTER JOIN semantics in the executor.

#include "engine/database.h"

#include "sql/parser.h"

#include "gtest/gtest.h"

namespace phoenix::eng {
namespace {

class LeftJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(&disk_);
    ASSERT_TRUE(db_->Open().ok());
    sid_ = *db_->CreateSession("t");
    Exec("CREATE TABLE CUST (ID INTEGER PRIMARY KEY, NAME VARCHAR)");
    Exec("CREATE TABLE ORD (OID INTEGER PRIMARY KEY, CUST_ID INTEGER, "
         "AMT DOUBLE)");
    Exec("INSERT INTO CUST VALUES (1, 'ann'), (2, 'bob'), (3, 'cat')");
    Exec("INSERT INTO ORD VALUES (10, 1, 5.0), (11, 1, 7.0), (12, 3, 2.0)");
  }

  StatementResult Exec(const std::string& sql) {
    auto r = db_->ExecuteScript(sid_, sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    if (!r.ok()) return StatementResult{};
    return std::move(r->back());
  }

  Status TryExec(const std::string& sql) {
    return db_->ExecuteScript(sid_, sql).status();
  }

  storage::SimDisk disk_;
  std::unique_ptr<Database> db_;
  uint64_t sid_ = 0;
};

TEST_F(LeftJoinTest, UnmatchedLeftRowsNullPadded) {
  StatementResult r = Exec(
      "SELECT NAME, OID, AMT FROM CUST LEFT JOIN ORD ON ID = CUST_ID "
      "ORDER BY ID, OID");
  ASSERT_EQ(r.rows.size(), 4u);  // ann×2, bob×1 (padded), cat×1
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
  EXPECT_EQ(r.rows[0][1].AsInt64(), 10);
  EXPECT_EQ(r.rows[2][0].AsString(), "bob");
  EXPECT_TRUE(r.rows[2][1].is_null());
  EXPECT_TRUE(r.rows[2][2].is_null());
  EXPECT_EQ(r.rows[3][0].AsString(), "cat");
}

TEST_F(LeftJoinTest, CountOfJoinedColumnIgnoresPads) {
  StatementResult r = Exec(
      "SELECT NAME, COUNT(OID) AS N FROM CUST LEFT JOIN ORD ON ID = CUST_ID "
      "GROUP BY NAME ORDER BY NAME");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 2);  // ann
  EXPECT_EQ(r.rows[1][1].AsInt64(), 0);  // bob: padded row, NULL not counted
  EXPECT_EQ(r.rows[2][1].AsInt64(), 1);  // cat
}

TEST_F(LeftJoinTest, WhereOnRightSideAppliesAfterPadding) {
  // Filtering the right side in WHERE keeps left-join-then-filter order:
  // padded rows have AMT NULL, so AMT >= 5 drops bob AND cat.
  StatementResult post = Exec(
      "SELECT NAME FROM CUST LEFT JOIN ORD ON ID = CUST_ID "
      "WHERE AMT >= 5 ORDER BY OID");
  ASSERT_EQ(post.rows.size(), 2u);
  // Whereas putting the filter in the ON clause keeps all customers.
  StatementResult in_on = Exec(
      "SELECT NAME, OID FROM CUST LEFT JOIN ORD ON ID = CUST_ID "
      "AND AMT >= 5 ORDER BY ID, OID");
  ASSERT_EQ(in_on.rows.size(), 4u);  // ann×2, bob padded, cat padded
  EXPECT_TRUE(in_on.rows[3][1].is_null());  // cat's order filtered by ON
}

TEST_F(LeftJoinTest, IsNullFindsChildlessParents) {
  StatementResult r = Exec(
      "SELECT NAME FROM CUST LEFT JOIN ORD ON ID = CUST_ID "
      "WHERE OID IS NULL");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "bob");
}

TEST_F(LeftJoinTest, NonEquiOnConditionUsesNestedLoop) {
  StatementResult r = Exec(
      "SELECT NAME, OID FROM CUST LEFT JOIN ORD ON ID = CUST_ID "
      "AND AMT > 6 ORDER BY ID, OID");
  // ann matches order 11 only; bob and cat padded.
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 11);
  EXPECT_TRUE(r.rows[1][1].is_null());
  EXPECT_TRUE(r.rows[2][1].is_null());
}

TEST_F(LeftJoinTest, ChainedInnerThenLeft) {
  Exec("CREATE TABLE NOTE (CUST_ID INTEGER, TXT VARCHAR)");
  Exec("INSERT INTO NOTE VALUES (1, 'vip')");
  StatementResult r = Exec(
      "SELECT C.NAME, O.OID, N.TXT FROM CUST C "
      "JOIN ORD O ON C.ID = O.CUST_ID "
      "LEFT JOIN NOTE N ON C.ID = N.CUST_ID "
      "ORDER BY O.OID");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][2].AsString(), "vip");
  EXPECT_TRUE(r.rows[2][2].is_null());  // cat's order, no note
}

TEST_F(LeftJoinTest, LeftJoinEmptyRightTable) {
  Exec("DELETE FROM ORD");
  StatementResult r = Exec(
      "SELECT NAME, OID FROM CUST LEFT JOIN ORD ON ID = CUST_ID ORDER BY ID");
  ASSERT_EQ(r.rows.size(), 3u);
  for (const Row& row : r.rows) EXPECT_TRUE(row[1].is_null());
}

TEST_F(LeftJoinTest, ToSqlRoundTripKeepsLeftJoin) {
  auto stmt = sql::Parser::ParseStatement(
      "SELECT NAME FROM CUST LEFT JOIN ORD ON ID = CUST_ID WHERE AMT > 1");
  ASSERT_TRUE(stmt.ok());
  std::string emitted = (*stmt)->ToSql();
  EXPECT_NE(emitted.find("LEFT JOIN ORD ON"), std::string::npos) << emitted;
  auto again = sql::Parser::ParseStatement(emitted);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(emitted, (*again)->ToSql());
}

TEST_F(LeftJoinTest, MetadataProbeWorksThroughLeftJoin) {
  StatementResult r = Exec(
      "SELECT NAME, OID FROM CUST LEFT JOIN ORD ON ID = CUST_ID "
      "WHERE 0 = 1");
  EXPECT_TRUE(r.has_rows);
  EXPECT_TRUE(r.rows.empty());
  EXPECT_EQ(r.schema.num_columns(), 2u);
}

TEST_F(LeftJoinTest, LeftWithoutJoinIsError) {
  EXPECT_FALSE(TryExec("SELECT * FROM CUST LEFT ORD").ok());
}

}  // namespace
}  // namespace phoenix::eng
