// The plain ODBC stack: handles, attributes, execution, fetching, cursor
// modes, batches, diagnostics.

#include "odbc/odbc_api.h"

#include "test_util.h"

namespace phoenix::odbc {
namespace {

using testutil::TestCluster;

class OdbcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dm_ = std::make_unique<DriverManager>(&cluster_.network);
    env_ = dm_->AllocEnv();
    dbc_ = dm_->AllocConnect(env_);
    ASSERT_EQ(dm_->Connect(dbc_, "testdb", "tester"), SqlReturn::kSuccess);
    Exec("CREATE TABLE T (K INTEGER PRIMARY KEY, V VARCHAR)");
    Exec("INSERT INTO T VALUES (1, 'a'), (2, 'b'), (3, 'c'), (4, 'd')");
  }

  void Exec(const std::string& sql) {
    Hstmt* stmt = dm_->AllocStmt(dbc_);
    ASSERT_EQ(dm_->ExecDirect(stmt, sql), SqlReturn::kSuccess)
        << DriverManager::Diag(stmt).ToString();
    dm_->FreeStmt(stmt);
  }

  TestCluster cluster_;
  std::unique_ptr<DriverManager> dm_;
  Henv* env_ = nullptr;
  Hdbc* dbc_ = nullptr;
};

TEST_F(OdbcTest, FacadeFunctionsWork) {
  Henv* env = nullptr;
  ASSERT_EQ(SqlAllocEnv(dm_.get(), &env), SqlReturn::kSuccess);
  Hdbc* dbc = nullptr;
  ASSERT_EQ(SqlAllocConnect(dm_.get(), env, &dbc), SqlReturn::kSuccess);
  ASSERT_EQ(SqlConnect(dm_.get(), dbc, "testdb", "u2"), SqlReturn::kSuccess);
  Hstmt* stmt = nullptr;
  ASSERT_EQ(SqlAllocStmt(dm_.get(), dbc, &stmt), SqlReturn::kSuccess);
  ASSERT_EQ(SqlExecDirect(dm_.get(), stmt, "SELECT K FROM T ORDER BY K"),
            SqlReturn::kSuccess);
  size_t cols = 0;
  SqlNumResultCols(dm_.get(), stmt, &cols);
  EXPECT_EQ(cols, 1u);
  ASSERT_EQ(SqlFetch(dm_.get(), stmt), SqlReturn::kSuccess);
  Value v;
  SqlGetData(dm_.get(), stmt, 0, &v);
  EXPECT_EQ(v.AsInt64(), 1);
  EXPECT_EQ(SqlCloseCursor(dm_.get(), stmt), SqlReturn::kSuccess);
  EXPECT_EQ(SqlFreeStmt(dm_.get(), stmt), SqlReturn::kSuccess);
  EXPECT_EQ(SqlDisconnect(dm_.get(), dbc), SqlReturn::kSuccess);
  EXPECT_EQ(SqlFreeConnect(dm_.get(), dbc), SqlReturn::kSuccess);
  SqlFreeEnv(dm_.get(), env);
}

TEST_F(OdbcTest, ConnectTwiceRejected) {
  EXPECT_EQ(dm_->Connect(dbc_, "testdb", "x"), SqlReturn::kError);
  StatusCode code = StatusCode::kOk;
  std::string message;
  ASSERT_EQ(SqlGetDiagRec(dm_.get(), dbc_, &code, &message),
            SqlReturn::kSuccess);
  EXPECT_EQ(code, StatusCode::kInvalidArgument);
  EXPECT_NE(message.find("connected"), std::string::npos) << message;
}

TEST_F(OdbcTest, ConnectUnknownDsnFails) {
  Hdbc* dbc2 = dm_->AllocConnect(env_);
  EXPECT_EQ(dm_->Connect(dbc2, "wrong", "x"), SqlReturn::kError);
  StatusCode code = StatusCode::kOk;
  std::string message;
  ASSERT_EQ(SqlGetDiagRec(dm_.get(), dbc2, &code, &message),
            SqlReturn::kSuccess);
  EXPECT_EQ(code, StatusCode::kNotFound);
  EXPECT_NE(message.find("wrong"), std::string::npos) << message;
}

TEST_F(OdbcTest, DescribeColReturnsMetadata) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT K, V FROM T WHERE 0 = 1"),
            SqlReturn::kSuccess);
  size_t cols = 0;
  dm_->NumResultCols(stmt, &cols);
  ASSERT_EQ(cols, 2u);
  Column c;
  ASSERT_EQ(dm_->DescribeCol(stmt, 0, &c), SqlReturn::kSuccess);
  EXPECT_EQ(c.name, "K");
  EXPECT_EQ(c.type, DataType::kInt32);
  ASSERT_EQ(dm_->DescribeCol(stmt, 1, &c), SqlReturn::kSuccess);
  EXPECT_EQ(c.type, DataType::kString);
  EXPECT_EQ(dm_->DescribeCol(stmt, 9, &c), SqlReturn::kError);
  // Empty result: first fetch reports no data.
  EXPECT_EQ(dm_->Fetch(stmt), SqlReturn::kNoData);
}

TEST_F(OdbcTest, RowCountForDml) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  ASSERT_EQ(dm_->ExecDirect(stmt, "UPDATE T SET V = 'x' WHERE K >= 3"),
            SqlReturn::kSuccess);
  int64_t n = 0;
  dm_->RowCount(stmt, &n);
  EXPECT_EQ(n, 2);
  size_t cols = 9;
  dm_->NumResultCols(stmt, &cols);
  EXPECT_EQ(cols, 0u);
}

TEST_F(OdbcTest, GetDataBeforeFetchFails) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT K FROM T"), SqlReturn::kSuccess);
  Value v;
  EXPECT_EQ(dm_->GetData(stmt, 0, &v), SqlReturn::kError);
}

TEST_F(OdbcTest, BatchWithMoreResults) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  ASSERT_EQ(dm_->ExecDirect(
                stmt, "SELECT COUNT(*) AS N FROM T; INSERT INTO T VALUES "
                      "(9, 'i'); SELECT COUNT(*) AS N FROM T"),
            SqlReturn::kSuccess);
  ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  Value v;
  dm_->GetData(stmt, 0, &v);
  EXPECT_EQ(v.AsInt64(), 4);
  ASSERT_EQ(dm_->MoreResults(stmt), SqlReturn::kSuccess);  // the INSERT
  int64_t n = 0;
  dm_->RowCount(stmt, &n);
  EXPECT_EQ(n, 1);
  ASSERT_EQ(dm_->MoreResults(stmt), SqlReturn::kSuccess);  // second SELECT
  ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  dm_->GetData(stmt, 0, &v);
  EXPECT_EQ(v.AsInt64(), 5);
  EXPECT_EQ(dm_->MoreResults(stmt), SqlReturn::kNoData);
}

TEST_F(OdbcTest, ServerCursorModesDeliverSameRows) {
  for (CursorMode mode :
       {CursorMode::kStaticCursor, CursorMode::kKeysetCursor,
        CursorMode::kDynamicCursor}) {
    Hstmt* stmt = dm_->AllocStmt(dbc_);
    ASSERT_EQ(dm_->SetStmtAttr(stmt, StmtAttr::kCursorMode,
                               static_cast<int64_t>(mode)),
              SqlReturn::kSuccess);
    ASSERT_EQ(dm_->SetStmtAttr(stmt, StmtAttr::kBlockSize, 2),
              SqlReturn::kSuccess);
    ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT K FROM T"), SqlReturn::kSuccess)
        << DriverManager::Diag(stmt).ToString();
    std::vector<int64_t> keys;
    while (Succeeded(dm_->Fetch(stmt))) {
      Value v;
      dm_->GetData(stmt, 0, &v);
      keys.push_back(v.AsInt64());
    }
    EXPECT_EQ(keys.size(), 4u) << "mode " << static_cast<int>(mode);
    dm_->FreeStmt(stmt);
  }
}

TEST_F(OdbcTest, BadStmtAttrRejected) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  EXPECT_EQ(dm_->SetStmtAttr(stmt, StmtAttr::kCursorMode, 99),
            SqlReturn::kError);
  EXPECT_EQ(dm_->SetStmtAttr(stmt, StmtAttr::kBlockSize, 0),
            SqlReturn::kError);
}

TEST_F(OdbcTest, SqlErrorsSurfaceInDiag) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  EXPECT_EQ(dm_->ExecDirect(stmt, "SELECT * FROM MISSING"), SqlReturn::kError);
  StatusCode code = StatusCode::kOk;
  std::string message;
  ASSERT_EQ(SqlGetDiagRec(dm_.get(), stmt, &code, &message),
            SqlReturn::kSuccess);
  EXPECT_EQ(code, StatusCode::kSqlError);
  EXPECT_NE(message.find("MISSING"), std::string::npos) << message;
  EXPECT_EQ(dm_->ExecDirect(stmt, "THIS IS NOT SQL"), SqlReturn::kError);
}

TEST_F(OdbcTest, DiagRecAvailableOnAllThreeHandleTypes) {
  // No failure yet: every handle reports kNoData.
  StatusCode code = StatusCode::kOk;
  std::string message;
  EXPECT_EQ(SqlGetDiagRec(dm_.get(), env_, &code, &message),
            SqlReturn::kNoData);
  EXPECT_EQ(SqlGetDiagRec(dm_.get(), dbc_, &code, &message),
            SqlReturn::kNoData);
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  EXPECT_EQ(SqlGetDiagRec(dm_.get(), stmt, &code, &message),
            SqlReturn::kNoData);

  // A statement-level failure bubbles to its connection and environment, so
  // each handle type reports the most recent failing call beneath it.
  EXPECT_EQ(dm_->ExecDirect(stmt, "SELECT * FROM MISSING"), SqlReturn::kError);
  for (int handle = 0; handle < 3; ++handle) {
    code = StatusCode::kOk;
    message.clear();
    SqlReturn r = handle == 0   ? SqlGetDiagRec(dm_.get(), stmt, &code, &message)
                  : handle == 1 ? SqlGetDiagRec(dm_.get(), dbc_, &code, &message)
                                : SqlGetDiagRec(dm_.get(), env_, &code, &message);
    ASSERT_EQ(r, SqlReturn::kSuccess) << "handle " << handle;
    EXPECT_EQ(code, StatusCode::kSqlError) << "handle " << handle;
    EXPECT_NE(message.find("MISSING"), std::string::npos) << message;
  }

  // A newer connection-level failure supersedes the older record on dbc and
  // env but leaves the statement's record untouched.
  EXPECT_EQ(dm_->Connect(dbc_, "testdb", "x"), SqlReturn::kError);
  ASSERT_EQ(SqlGetDiagRec(dm_.get(), dbc_, &code, &message),
            SqlReturn::kSuccess);
  EXPECT_EQ(code, StatusCode::kInvalidArgument);
  ASSERT_EQ(SqlGetDiagRec(dm_.get(), env_, &code, &message),
            SqlReturn::kSuccess);
  EXPECT_EQ(code, StatusCode::kInvalidArgument);
  ASSERT_EQ(SqlGetDiagRec(dm_.get(), stmt, &code, &message),
            SqlReturn::kSuccess);
  EXPECT_EQ(code, StatusCode::kSqlError);

  // Null handles are rejected, not dereferenced.
  EXPECT_EQ(SqlGetDiagRec(dm_.get(), static_cast<Henv*>(nullptr), &code,
                          &message),
            SqlReturn::kInvalidHandle);
  EXPECT_EQ(SqlGetDiagRec(dm_.get(), static_cast<Hstmt*>(nullptr), &code,
                          &message),
            SqlReturn::kInvalidHandle);
}

TEST_F(OdbcTest, SetConnectOptionReachesServer) {
  ASSERT_EQ(dm_->SetConnectOption(dbc_, "LOCK_TIMEOUT", "30"),
            SqlReturn::kSuccess);
  eng::Session* session = cluster_.server.database()->GetSession(
      dbc_->driver->session_id());
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->options.at("LOCK_TIMEOUT"), "30");
}

TEST_F(OdbcTest, DisconnectClosesServerSession) {
  uint64_t sid = dbc_->driver->session_id();
  EXPECT_TRUE(cluster_.server.database()->HasSession(sid));
  ASSERT_EQ(dm_->Disconnect(dbc_), SqlReturn::kSuccess);
  EXPECT_FALSE(cluster_.server.database()->HasSession(sid));
}

TEST_F(OdbcTest, CrashWithoutPhoenixSurfacesCommError) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT K FROM T"), SqlReturn::kSuccess);
  cluster_.server.Crash();
  // Default result set was fully buffered client-side, so fetching still
  // works...
  EXPECT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  // ...but any new server interaction fails hard — the paper's baseline.
  Hstmt* stmt2 = dm_->AllocStmt(dbc_);
  EXPECT_EQ(dm_->ExecDirect(stmt2, "SELECT K FROM T"), SqlReturn::kError);
  StatusCode code = StatusCode::kOk;
  std::string message;
  ASSERT_EQ(SqlGetDiagRec(dm_.get(), stmt2, &code, &message),
            SqlReturn::kSuccess);
  EXPECT_EQ(code, StatusCode::kCommError);
  EXPECT_FALSE(message.empty());
}

TEST_F(OdbcTest, ServerCursorCrashBreaksPlainDm) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  dm_->SetStmtAttr(stmt, StmtAttr::kCursorMode,
                   static_cast<int64_t>(CursorMode::kStaticCursor));
  dm_->SetStmtAttr(stmt, StmtAttr::kBlockSize, 1);
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT K FROM T"), SqlReturn::kSuccess);
  ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  cluster_.Bounce();
  // Next block fetch needs the (dead) server cursor: plain ODBC cannot cope.
  EXPECT_EQ(dm_->Fetch(stmt), SqlReturn::kError);
}

}  // namespace
}  // namespace phoenix::odbc
