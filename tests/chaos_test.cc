// Chaos property test — the strongest statement of the paper's claim:
//
//   For ANY workload and ANY schedule of server crashes, lost requests,
//   and lost replies, an application running over Phoenix/ODBC observes
//   exactly the same results as the same application running over native
//   ODBC with no failures at all.
//
// A deterministic workload (seeded) runs twice: once against a fault-free
// reference server through the plain driver manager, once against a server
// bombarded with injected faults through Phoenix. Every query result,
// every affected-row count, and the final database image must match.

#include <set>

#include "common/rng.h"

#include "core/phoenix_driver_manager.h"
#include "test_util.h"

namespace phoenix::core {
namespace {

using odbc::DriverManager;
using odbc::Hdbc;
using odbc::Hstmt;
using odbc::SqlReturn;
using testutil::TestCluster;

struct Op {
  std::string sql;
  bool is_query = false;
};

/// Generates a deterministic workload: keyed DML, scans, aggregates,
/// transactions (committed and rolled back), and temp-table traffic.
std::vector<Op> MakeWorkload(uint64_t seed, int n_ops) {
  Rng rng(seed);
  std::vector<Op> ops;
  ops.push_back({"CREATE TABLE ACC (K INTEGER PRIMARY KEY, BAL INTEGER)"});
  ops.push_back({"CREATE TEMPORARY TABLE NOTES (N INTEGER)"});
  std::set<int64_t> keys;
  int64_t next_key = 1;
  while (static_cast<int>(ops.size()) < n_ops) {
    switch (rng.NextBelow(8)) {
      case 0:
      case 1: {  // insert
        int64_t k = next_key++;
        ops.push_back({"INSERT INTO ACC VALUES (" + std::to_string(k) + ", " +
                       std::to_string(rng.NextBelow(1000)) + ")"});
        keys.insert(k);
        break;
      }
      case 2: {  // update
        if (keys.empty()) break;
        int64_t k = static_cast<int64_t>(rng.NextBelow(next_key));
        ops.push_back({"UPDATE ACC SET BAL = BAL + " +
                       std::to_string(rng.NextBelow(50)) +
                       " WHERE K = " + std::to_string(k)});
        break;
      }
      case 3: {  // delete
        if (keys.empty()) break;
        auto it = keys.begin();
        std::advance(it, rng.NextBelow(keys.size()));
        ops.push_back({"DELETE FROM ACC WHERE K = " + std::to_string(*it)});
        keys.erase(it);
        break;
      }
      case 4:  // scan
        ops.push_back({"SELECT K, BAL FROM ACC ORDER BY K", true});
        break;
      case 5:  // aggregate
        ops.push_back(
            {"SELECT COUNT(*) AS N, SUM(BAL) AS S, MIN(K) AS LO, "
             "MAX(K) AS HI FROM ACC",
             true});
        break;
      case 6: {  // transaction block
        bool commit = rng.NextBool(0.7);
        ops.push_back({"BEGIN TRANSACTION"});
        int body = 1 + static_cast<int>(rng.NextBelow(3));
        for (int i = 0; i < body; ++i) {
          int64_t k = next_key++;
          ops.push_back({"INSERT INTO ACC VALUES (" + std::to_string(k) +
                         ", " + std::to_string(rng.NextBelow(1000)) + ")"});
          if (commit) keys.insert(k);
        }
        ops.push_back({commit ? "COMMIT" : "ROLLBACK"});
        break;
      }
      default:  // temp-table traffic
        ops.push_back({"INSERT INTO NOTES VALUES (" +
                       std::to_string(rng.NextBelow(100)) + ")"});
        ops.push_back({"SELECT COUNT(*) AS N FROM NOTES", true});
        break;
    }
  }
  ops.push_back({"SELECT K, BAL FROM ACC ORDER BY K", true});
  ops.push_back({"SELECT COUNT(*) AS N FROM NOTES", true});
  return ops;
}

struct Observation {
  std::vector<Row> rows;
  int64_t affected = -1;
};

Observation RunOp(DriverManager* dm, Hdbc* dbc, const Op& op) {
  Observation obs;
  Hstmt* stmt = dm->AllocStmt(dbc);
  EXPECT_EQ(dm->ExecDirect(stmt, op.sql), SqlReturn::kSuccess)
      << op.sql << " -> " << DriverManager::Diag(stmt).ToString();
  if (op.is_query) {
    size_t cols = 0;
    dm->NumResultCols(stmt, &cols);
    while (Succeeded(dm->Fetch(stmt))) {
      Row row;
      for (size_t c = 0; c < cols; ++c) {
        Value v;
        dm->GetData(stmt, c, &v);
        row.push_back(std::move(v));
      }
      obs.rows.push_back(std::move(row));
    }
  } else {
    dm->RowCount(stmt, &obs.affected);
  }
  dm->FreeStmt(stmt);
  return obs;
}

void ExpectSame(const Observation& ref, const Observation& got,
                const Op& op, size_t index) {
  ASSERT_EQ(ref.affected, got.affected)
      << "op " << index << ": " << op.sql;
  ASSERT_EQ(ref.rows.size(), got.rows.size())
      << "op " << index << ": " << op.sql;
  for (size_t r = 0; r < ref.rows.size(); ++r) {
    ASSERT_EQ(ref.rows[r].size(), got.rows[r].size());
    for (size_t c = 0; c < ref.rows[r].size(); ++c) {
      ASSERT_EQ(ref.rows[r][c].Compare(got.rows[r][c]), 0)
          << "op " << index << " row " << r << " col " << c << ": " << op.sql;
    }
  }
}

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, PhoenixUnderFaultsEqualsNativeWithoutFaults) {
  const uint64_t seed = GetParam();
  std::vector<Op> ops = MakeWorkload(seed, 120);

  // Reference: plain DM, fault-free server.
  TestCluster ref_cluster;
  DriverManager native(&ref_cluster.network);
  Hdbc* ref_dbc = native.AllocConnect(native.AllocEnv());
  ASSERT_EQ(native.Connect(ref_dbc, "testdb", "ref"), SqlReturn::kSuccess);

  // Chaos: Phoenix DM, faults injected before operations.
  TestCluster chaos_cluster;
  PhoenixDriverManager phoenix(
      &chaos_cluster.network,
      testutil::AutoRestartConfig(&chaos_cluster.server));
  Hdbc* chaos_dbc = phoenix.AllocConnect(phoenix.AllocEnv());
  ASSERT_EQ(phoenix.Connect(chaos_dbc, "testdb", "chaos"),
            SqlReturn::kSuccess);

  Rng fault_rng(seed ^ 0xFA17);
  int crashes = 0, drops = 0, losses = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (fault_rng.NextBool(0.18)) {
      switch (fault_rng.NextBelow(3)) {
        case 0:
          chaos_cluster.server.Crash();
          ++crashes;
          break;
        case 1:
          chaos_dbc->driver->channel()->InjectDropRequests(1);
          ++drops;
          break;
        default:
          chaos_dbc->driver->channel()->InjectLoseReplies(1);
          ++losses;
          break;
      }
    }
    Observation ref = RunOp(&native, ref_dbc, ops[i]);
    Observation got = RunOp(&phoenix, chaos_dbc, ops[i]);
    ExpectSame(ref, got, ops[i], i);
    if (::testing::Test::HasFatalFailure()) return;
  }

  // Final database images match (modulo Phoenix's own artifacts).
  Observation ref_final =
      RunOp(&native, ref_dbc, {"SELECT K, BAL FROM ACC ORDER BY K", true});
  Observation got_final =
      RunOp(&phoenix, chaos_dbc, {"SELECT K, BAL FROM ACC ORDER BY K", true});
  ExpectSame(ref_final, got_final, {"final image", true}, ops.size());

  // The schedule must actually have exercised something.
  EXPECT_GT(crashes + drops + losses, 5) << "fault schedule too tame";
  EXPECT_EQ(phoenix.stats().recoveries >= 1, crashes >= 1);

  phoenix.Disconnect(chaos_dbc);
  native.Disconnect(ref_dbc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull));

}  // namespace
}  // namespace phoenix::core
