// End-to-end over a real wire against an out-of-process phoenixd: spawn,
// round trips over TCP and Unix sockets, SIGKILL at seeded points (idle,
// mid-request, mid-commit-fsync, mid-checkpoint) via the rendezvous
// protocol, restart, and recovery verification against the reborn process.
//
// Every test skips gracefully when the phoenixd binary is missing (set
// PHX_SERVER_BIN) or the sandbox denies sockets — sandboxed no-network
// runners filter the whole binary out with `ctest -LE socket` instead.

#include "net/process_server.h"

#include <dirent.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "core/phoenix_driver_manager.h"
#include "net/channel.h"
#include "net/protocol.h"

#include "gtest/gtest.h"

namespace phoenix::net {
namespace {

using core::PhoenixConfig;
using core::PhoenixDriverManager;

/// mkdtemp wrapper; removes the (flat) directory on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/phx_pst_XXXXXX";
    char* got = ::mkdtemp(tmpl);
    if (got != nullptr) path = got;
  }
  ~TempDir() {
    if (path.empty()) return;
    if (DIR* d = ::opendir(path.c_str())) {
      while (dirent* e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((path + "/" + name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(path.c_str());
  }
};

/// One phoenixd child over `transport`, plus a Network that resolves
/// "procdb" to it. `ok == false` carries a skip reason: binary missing or
/// the sandbox refused the socket.
struct ProcFixture {
  TempDir dir;
  std::unique_ptr<ProcessServerHandle> handle;
  Network network;
  bool ok = false;
  std::string skip;

  explicit ProcFixture(const std::string& transport,
                       uint64_t ckpt_every = 0) {
    std::string bin = FindServerBinary("");
    if (bin.empty()) {
      skip = "phoenixd binary not found (set PHX_SERVER_BIN)";
      return;
    }
    if (dir.path.empty()) {
      skip = "mkdtemp failed";
      return;
    }
    ProcessServerOptions opts;
    opts.binary = bin;
    opts.transport = transport;
    opts.data_dir = dir.path;
    opts.checkpoint_every_n_commits = ckpt_every;
    handle = std::make_unique<ProcessServerHandle>(opts);
    Status st = handle->Start();
    if (!st.ok()) {
      skip = "cannot spawn phoenixd: " + st.ToString();
      return;
    }
    network.config()->rpc_timeout_ms = 8000;
    network.config()->connect_timeout_ms = 4000;
    network.RegisterRemote("procdb", handle->endpoint());
    ok = true;
  }

  ~ProcFixture() {
    if (handle) handle->Terminate(5.0);
  }

  std::unique_ptr<Channel> Connect() {
    auto c = network.Connect("procdb");
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return c.ok() ? c.take() : nullptr;
  }
  Response Call(Channel* ch, const Request& req) {
    auto r = ch->RoundTrip(req);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.take() : Response{};
  }
};

#define SKIP_UNLESS_RUNNING(fx) \
  if (!(fx).ok) GTEST_SKIP() << (fx).skip

Request ConnectReq(const std::string& user = "u") {
  Request r;
  r.kind = Request::Kind::kConnect;
  r.user = user;
  return r;
}

Request ExecReq(uint64_t sid, const std::string& sql) {
  Request r;
  r.kind = Request::Kind::kExecScript;
  r.session_id = sid;
  r.sql = sql;
  return r;
}

Request ArmReq(const std::string& spec) {
  Request r;
  r.kind = Request::Kind::kAdmin;
  r.name = kAdminRendezvous;
  r.value = spec;
  return r;
}

int64_t CountRows(ProcFixture* fx, Channel* ch, uint64_t sid,
                  const std::string& table) {
  Response r =
      fx->Call(ch, ExecReq(sid, "SELECT COUNT(*) AS N FROM " + table));
  if (r.results.empty() || r.results[0].rows.empty()) return -1;
  return r.results[0].rows[0][0].AsInt64();
}

// ---------------------------------------------------------------------------
// Plain lifecycle: spawn, execute, graceful terminate — both transports.
// ---------------------------------------------------------------------------

void SpawnExecuteTerminate(const std::string& transport) {
  ProcFixture fx(transport);
  SKIP_UNLESS_RUNNING(fx);
  EXPECT_EQ(fx.handle->endpoint().rfind(transport + ":", 0), 0u)
      << fx.handle->endpoint();
  auto ch = fx.Connect();
  ASSERT_NE(ch, nullptr);
  Response conn = fx.Call(ch.get(), ConnectReq());
  ASSERT_EQ(conn.kind, Response::Kind::kConnected);
  uint64_t sid = conn.session_id;
  fx.Call(ch.get(), ExecReq(sid, "CREATE TABLE T (A INTEGER)"));
  fx.Call(ch.get(), ExecReq(sid, "INSERT INTO T VALUES (1)"));
  EXPECT_EQ(CountRows(&fx, ch.get(), sid, "T"), 1);
  ch->Disconnect();
  EXPECT_TRUE(fx.handle->Terminate(5.0).ok());
  EXPECT_FALSE(fx.handle->running());
}

TEST(ProcessServer, SpawnExecuteTerminateUnix) {
  SpawnExecuteTerminate("unix");
}

TEST(ProcessServer, SpawnExecuteTerminateTcp) {
  SpawnExecuteTerminate("tcp");
}

// ---------------------------------------------------------------------------
// SIGKILL while idle: durable data survives, endpoint is stable, session
// ids from the reborn process live in a fresh boot partition.
// ---------------------------------------------------------------------------

TEST(ProcessServer, KillIdleRestartPreservesCommittedData) {
  ProcFixture fx("unix");
  SKIP_UNLESS_RUNNING(fx);
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.Call(ch.get(), ExecReq(sid, "CREATE TABLE T (A INTEGER)"));
  fx.Call(ch.get(), ExecReq(sid, "INSERT INTO T VALUES (1)"));
  fx.Call(ch.get(), ExecReq(sid, "INSERT INTO T VALUES (2)"));

  std::string endpoint_before = fx.handle->endpoint();
  fx.handle->Kill();
  EXPECT_FALSE(fx.handle->running());

  // The dead connection surfaces kCommError (connection dead), not
  // kTimeout (reply lost) — this is what Phoenix's failure detector keys on.
  auto dead = ch->RoundTrip(ExecReq(sid, "SELECT A FROM T"));
  ASSERT_FALSE(dead.ok());
  EXPECT_TRUE(dead.status().IsCommError()) << dead.status().ToString();

  ASSERT_TRUE(fx.handle->Restart().ok());
  EXPECT_EQ(fx.handle->endpoint(), endpoint_before);

  auto ch2 = fx.Connect();
  uint64_t sid2 = fx.Call(ch2.get(), ConnectReq()).session_id;
  // Session ids are partitioned by boot count (boot << 32): a reborn server
  // can never hand out an id an old client still holds.
  EXPECT_GT(sid2 >> 32, sid >> 32);
  EXPECT_EQ(CountRows(&fx, ch2.get(), sid2, "T"), 2);
  // The SIGKILLed incarnation's session is gone — stale ids are rejected,
  // which is the crash signal Phoenix's proxy-table probe relies on.
  auto stale = ch2->RoundTrip(ExecReq(sid, "SELECT A FROM T"));
  if (stale.ok()) {
    EXPECT_EQ(stale->kind, Response::Kind::kError);
  }
}

// ---------------------------------------------------------------------------
// SIGKILL mid-fsync (the paper's power-cut analogue): the child blocks
// inside the commit's WAL sync and dies holding it.
// ---------------------------------------------------------------------------

void MidFsyncKillRecovers(const std::string& transport) {
  ProcFixture fx(transport);
  SKIP_UNLESS_RUNNING(fx);
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.Call(ch.get(), ExecReq(sid, "CREATE TABLE T (A INTEGER)"));
  fx.Call(ch.get(), ExecReq(sid, "INSERT INTO T VALUES (1)"));

  // Arm: the NEXT WAL-file sync signals the parent and blocks mid-fsync.
  Response armed = fx.Call(ch.get(), ArmReq("wal_sync:1"));
  ASSERT_EQ(armed.kind, Response::Kind::kOk);
  fx.handle->ArmKillOnRendezvous();

  // This commit's durability boundary is the rendezvous point: the request
  // reaches the server and executes, but the process dies inside Sync().
  auto doomed = ch->RoundTrip(ExecReq(sid, "INSERT INTO T VALUES (2)"));
  ASSERT_FALSE(doomed.ok());
  EXPECT_TRUE(doomed.status().IsCommError() || doomed.status().IsTimeout())
      << doomed.status().ToString();

  EXPECT_TRUE(fx.handle->WaitRendezvousKill(15.0));
  EXPECT_EQ(fx.handle->rendezvous_kills(), 1u);
  EXPECT_FALSE(fx.handle->running());

  ASSERT_TRUE(fx.handle->Restart().ok());
  auto ch2 = fx.Connect();
  uint64_t sid2 = fx.Call(ch2.get(), ConnectReq()).session_id;
  // Row 1 committed before the kill and MUST survive; row 2's commit died
  // mid-fsync, so it may be either in or out — but never torn state.
  int64_t n = CountRows(&fx, ch2.get(), sid2, "T");
  EXPECT_GE(n, 1);
  EXPECT_LE(n, 2);
  Response sel = fx.Call(ch2.get(), ExecReq(sid2, "SELECT A FROM T WHERE A = 1"));
  ASSERT_FALSE(sel.results.empty());
  EXPECT_EQ(sel.results[0].rows.size(), 1u);
}

TEST(ProcessServer, MidFsyncKillRecoversUnix) { MidFsyncKillRecovers("unix"); }

TEST(ProcessServer, MidFsyncKillRecoversTcp) { MidFsyncKillRecovers("tcp"); }

// ---------------------------------------------------------------------------
// SIGKILL mid-request: the process dies BEFORE dispatching the statement,
// so the row is deterministically absent after restart.
// ---------------------------------------------------------------------------

TEST(ProcessServer, MidRequestKillLeavesRowAbsent) {
  ProcFixture fx("unix");
  SKIP_UNLESS_RUNNING(fx);
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.Call(ch.get(), ExecReq(sid, "CREATE TABLE T (A INTEGER)"));
  fx.Call(ch.get(), ExecReq(sid, "INSERT INTO T VALUES (1)"));

  Response armed = fx.Call(ch.get(), ArmReq("exec:1"));
  ASSERT_EQ(armed.kind, Response::Kind::kOk);
  fx.handle->ArmKillOnRendezvous();

  auto doomed = ch->RoundTrip(ExecReq(sid, "INSERT INTO T VALUES (2)"));
  ASSERT_FALSE(doomed.ok());
  ASSERT_TRUE(fx.handle->WaitRendezvousKill(15.0));

  ASSERT_TRUE(fx.handle->Restart().ok());
  auto ch2 = fx.Connect();
  uint64_t sid2 = fx.Call(ch2.get(), ConnectReq()).session_id;
  EXPECT_EQ(CountRows(&fx, ch2.get(), sid2, "T"), 1);
}

// ---------------------------------------------------------------------------
// SIGKILL mid-checkpoint, both windows: before the atomic rename (image
// lost, WAL carries everything) and after it (image durable, WAL not yet
// truncated). Committed data must survive either way.
// ---------------------------------------------------------------------------

TEST(ProcessServer, MidCheckpointKillBothWindows) {
  ProcFixture fx("unix", /*ckpt_every=*/2);
  SKIP_UNLESS_RUNNING(fx);
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.Call(ch.get(), ExecReq(sid, "CREATE TABLE T (A INTEGER)"));

  // Window 1: die between the checkpoint temp-write and its rename.
  ASSERT_EQ(fx.Call(ch.get(), ArmReq("ckpt_pre:1")).kind, Response::Kind::kOk);
  fx.handle->ArmKillOnRendezvous();
  int inserted = 0;
  for (int i = 1; i <= 6; ++i) {
    auto r = ch->RoundTrip(ExecReq(sid, "INSERT INTO T VALUES (" +
                                            std::to_string(i) + ")"));
    if (!r.ok() || r->kind == Response::Kind::kError) break;
    ++inserted;
  }
  ASSERT_TRUE(fx.handle->WaitRendezvousKill(15.0))
      << "checkpoint rendezvous never fired (inserted=" << inserted << ")";
  ASSERT_GT(inserted, 0);

  ASSERT_TRUE(fx.handle->Restart().ok());
  auto ch2 = fx.Connect();
  uint64_t sid2 = fx.Call(ch2.get(), ConnectReq()).session_id;
  // Every acknowledged commit survives: the checkpoint image was lost, so
  // recovery rebuilt the state from the intact WAL.
  int64_t n1 = CountRows(&fx, ch2.get(), sid2, "T");
  EXPECT_GE(n1, inserted) << "acknowledged commits lost across ckpt_pre kill";

  // Window 2: die after the rename, before WAL truncation completes.
  ASSERT_EQ(fx.Call(ch2.get(), ArmReq("ckpt_post:1")).kind,
            Response::Kind::kOk);
  fx.handle->ArmKillOnRendezvous();
  int inserted2 = 0;
  for (int i = 7; i <= 12; ++i) {
    auto r = ch2->RoundTrip(ExecReq(sid2, "INSERT INTO T VALUES (" +
                                              std::to_string(i) + ")"));
    if (!r.ok() || r->kind == Response::Kind::kError) break;
    ++inserted2;
  }
  ASSERT_TRUE(fx.handle->WaitRendezvousKill(15.0));

  ASSERT_TRUE(fx.handle->Restart().ok());
  auto ch3 = fx.Connect();
  uint64_t sid3 = fx.Call(ch3.get(), ConnectReq()).session_id;
  int64_t n2 = CountRows(&fx, ch3.get(), sid3, "T");
  EXPECT_GE(n2, n1 + inserted2)
      << "acknowledged commits lost across ckpt_post kill";
}

// ---------------------------------------------------------------------------
// The paper's end-to-end claim over a real wire: a Phoenix virtual session
// rides through SIGKILL + process restart transparently.
// ---------------------------------------------------------------------------

TEST(ProcessServer, PhoenixSessionSurvivesSigkillOfServerProcess) {
  ProcFixture fx("unix");
  SKIP_UNLESS_RUNNING(fx);

  std::atomic<int> probes{0};
  PhoenixConfig config;
  config.retry_wait = [&fx, &probes] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    // Model an ops-restart arriving while the client retries: after a few
    // probe failures, bring the server process back on the same endpoint.
    if (++probes >= 3 && !fx.handle->running()) {
      ASSERT_TRUE(fx.handle->Restart().ok());
    }
  };
  PhoenixDriverManager dm(&fx.network, config);
  auto* env = dm.AllocEnv();
  auto* dbc = dm.AllocConnect(env);
  ASSERT_EQ(dm.Connect(dbc, "procdb", "app"), odbc::SqlReturn::kSuccess);

  auto* ddl = dm.AllocStmt(dbc);
  ASSERT_EQ(dm.ExecDirect(ddl, "CREATE TABLE NUMS (N INTEGER PRIMARY KEY)"),
            odbc::SqlReturn::kSuccess);
  std::string values;
  for (int i = 1; i <= 100; ++i) {
    if (i > 1) values += ", ";
    values += "(" + std::to_string(i) + ")";
  }
  ASSERT_EQ(dm.ExecDirect(ddl, "INSERT INTO NUMS VALUES " + values),
            odbc::SqlReturn::kSuccess);

  auto* stmt = dm.AllocStmt(dbc);
  ASSERT_EQ(dm.ExecDirect(stmt, "SELECT N FROM NUMS ORDER BY N"),
            odbc::SqlReturn::kSuccess);
  for (int i = 1; i <= 40; ++i) {
    ASSERT_EQ(dm.Fetch(stmt), odbc::SqlReturn::kSuccess);
  }

  fx.handle->Kill();  // real SIGKILL of the server process

  // The application keeps fetching; Phoenix detects the dead wire, redials
  // the reborn process, reinstalls the session, and resumes the cursor
  // exactly where it stopped — rows past the client block buffer can only
  // come from the REBORN process's recovered result table.
  Value v;
  for (int i = 41; i <= 100; ++i) {
    ASSERT_EQ(dm.Fetch(stmt), odbc::SqlReturn::kSuccess) << "row " << i;
    dm.GetData(stmt, 0, &v);
    ASSERT_EQ(v.AsInt64(), i);
  }
  EXPECT_EQ(dm.Fetch(stmt), odbc::SqlReturn::kNoData);
  EXPECT_GE(dm.stats().recoveries, 1u);
  EXPECT_GT(dm.stats().reconnect_attempts, 0u);
  EXPECT_GT(dm.stats().rows_redelivered, 0u);

  // And the session keeps working for writes after recovery.
  ASSERT_EQ(dm.ExecDirect(ddl, "INSERT INTO NUMS VALUES (101)"),
            odbc::SqlReturn::kSuccess);
  auto* check = dm.AllocStmt(dbc);
  ASSERT_EQ(dm.ExecDirect(check, "SELECT COUNT(*) AS N FROM NUMS"),
            odbc::SqlReturn::kSuccess);
  ASSERT_EQ(dm.Fetch(check), odbc::SqlReturn::kSuccess);
  dm.GetData(check, 0, &v);
  EXPECT_EQ(v.AsInt64(), 101);
}

// ---------------------------------------------------------------------------
// Restart discipline: boot counter climbs monotonically, epochs with it.
// ---------------------------------------------------------------------------

TEST(ProcessServer, BootPartitionClimbsAcrossRepeatedKills) {
  ProcFixture fx("unix");
  SKIP_UNLESS_RUNNING(fx);
  uint64_t last_boot = 0;
  for (int round = 0; round < 3; ++round) {
    auto ch = fx.Connect();
    ASSERT_NE(ch, nullptr);
    uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
    uint64_t boot = sid >> 32;
    EXPECT_GT(boot, last_boot) << "round " << round;
    last_boot = boot;
    fx.handle->Kill();
    ASSERT_TRUE(fx.handle->Restart().ok());
  }
}

}  // namespace
}  // namespace phoenix::net
