// The paper's central claims, tested: persistent database sessions that
// survive server crashes transparently — seamless result-set resumption,
// lost-reply recovery via testable state, request resubmission, temp-object
// survival, open-transaction replay, crash-vs-transient discrimination.

#include "core/phoenix_driver_manager.h"

#include "obs/metrics.h"
#include "test_util.h"

namespace phoenix::core {
namespace {

using odbc::CursorMode;
using odbc::DriverManager;
using odbc::Hdbc;
using odbc::Henv;
using odbc::Hstmt;
using odbc::SqlReturn;
using odbc::StmtAttr;
using testutil::AutoRestartConfig;
using testutil::MustExec;
using testutil::MustQuery;
using testutil::TestCluster;

class PhoenixRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dm_ = std::make_unique<PhoenixDriverManager>(
        &cluster_.network, AutoRestartConfig(&cluster_.server));
    env_ = dm_->AllocEnv();
    dbc_ = dm_->AllocConnect(env_);
    ASSERT_EQ(dm_->Connect(dbc_, "testdb", "app"), SqlReturn::kSuccess);
    MustExec(dm_.get(), dbc_,
             "CREATE TABLE NUMS (N INTEGER PRIMARY KEY, SQ INTEGER)");
    std::string values;
    for (int i = 1; i <= 100; ++i) {
      if (i > 1) values += ", ";
      values +=
          "(" + std::to_string(i) + ", " + std::to_string(i * i) + ")";
    }
    MustExec(dm_.get(), dbc_, "INSERT INTO NUMS VALUES " + values);
  }

  void Crash() { cluster_.server.Crash(); }
  void CrashAndRestart() { cluster_.Bounce(); }

  TestCluster cluster_;
  std::unique_ptr<PhoenixDriverManager> dm_;
  Henv* env_ = nullptr;
  Hdbc* dbc_ = nullptr;
};

// --- Result-set persistence & seamless delivery ---------------------------

TEST_F(PhoenixRecoveryTest, FetchResumesExactlyWhereItStopped) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT N, SQ FROM NUMS ORDER BY N"),
            SqlReturn::kSuccess);
  for (int i = 1; i <= 40; ++i) {
    ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  }
  obs::MetricsSnapshot before = obs::MetricsRegistry::Default()->Snapshot();
  Crash();
  for (int i = 41; i <= 100; ++i) {
    ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess) << "row " << i;
    Value n, sq;
    dm_->GetData(stmt, 0, &n);
    dm_->GetData(stmt, 1, &sq);
    ASSERT_EQ(n.AsInt64(), i);
    ASSERT_EQ(sq.AsInt64(), i * i);
  }
  EXPECT_EQ(dm_->Fetch(stmt), SqlReturn::kNoData);
  EXPECT_EQ(dm_->stats().recoveries, 1u);
  EXPECT_GT(dm_->stats().last_virtual_session_seconds, 0.0);
  EXPECT_GT(dm_->stats().last_sql_state_seconds, 0.0);

  // Rows 41..64 were already in the client block buffer (fetch_block = 64)
  // when the server died, so recovery fires at row 65: the 36 remaining
  // rows reach the app through the re-installed statement.
  EXPECT_EQ(dm_->stats().rows_redelivered, 36u);
  EXPECT_GT(dm_->stats().reconnect_attempts, 0u);
  EXPECT_EQ(dm_->stats().state_reinstalls, 1u);
  obs::MetricsSnapshot after = obs::MetricsRegistry::Default()->Snapshot();
  EXPECT_EQ(after.counter("core.rows_redelivered") -
                before.counter("core.rows_redelivered"),
            36u);
  EXPECT_GT(after.counter("core.reconnect_attempts"),
            before.counter("core.reconnect_attempts"));
  EXPECT_GT(after.counter("core.recoveries"), before.counter("core.recoveries"));
  EXPECT_GT(after.counter("core.state_reinstalls"),
            before.counter("core.state_reinstalls"));
}

TEST_F(PhoenixRecoveryTest, CrashBeforeFirstFetch) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT N FROM NUMS ORDER BY N"),
            SqlReturn::kSuccess);
  Crash();
  ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  Value v;
  dm_->GetData(stmt, 0, &v);
  EXPECT_EQ(v.AsInt64(), 1);
}

TEST_F(PhoenixRecoveryTest, ResultSurvivesEvenWhenBaseDataChanges) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT N FROM NUMS ORDER BY N"),
            SqlReturn::kSuccess);
  for (int i = 0; i < 10; ++i) ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  // Another client mutates the base table, then the server crashes. The
  // materialized result is a stable snapshot: the paper's point that it
  // "may be impossible to reliably re-create this state" by re-running.
  MustExec(dm_.get(), dbc_, "DELETE FROM NUMS WHERE N > 50");
  Crash();
  int rows = 10;
  while (dm_->Fetch(stmt) == SqlReturn::kSuccess) ++rows;
  EXPECT_EQ(rows, 100);  // full original result, not the mutated table
}

TEST_F(PhoenixRecoveryTest, MultipleCrashesDuringOneResultSet) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  // Small fetch blocks so every crash lands between server round trips.
  dm_->SetStmtAttr(stmt, StmtAttr::kBlockSize, 5);
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT N FROM NUMS ORDER BY N"),
            SqlReturn::kSuccess);
  int next = 1;
  for (int crash_at : {20, 50, 80}) {
    while (next <= crash_at) {
      ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
      Value v;
      dm_->GetData(stmt, 0, &v);
      ASSERT_EQ(v.AsInt64(), next++);
    }
    Crash();
  }
  while (next <= 100) {
    ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
    Value v;
    dm_->GetData(stmt, 0, &v);
    ASSERT_EQ(v.AsInt64(), next++);
  }
  EXPECT_EQ(dm_->stats().recoveries, 3u);
}

TEST_F(PhoenixRecoveryTest, TwoOpenStatementsBothRecovered) {
  Hstmt* s1 = dm_->AllocStmt(dbc_);
  Hstmt* s2 = dm_->AllocStmt(dbc_);
  dm_->SetStmtAttr(s1, StmtAttr::kBlockSize, 5);
  dm_->SetStmtAttr(s2, StmtAttr::kBlockSize, 5);
  ASSERT_EQ(dm_->ExecDirect(s1, "SELECT N FROM NUMS ORDER BY N"),
            SqlReturn::kSuccess);
  ASSERT_EQ(dm_->ExecDirect(s2, "SELECT N FROM NUMS ORDER BY N DESC"),
            SqlReturn::kSuccess);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(dm_->Fetch(s1), SqlReturn::kSuccess);
    ASSERT_EQ(dm_->Fetch(s2), SqlReturn::kSuccess);
  }
  Crash();
  Value v;
  ASSERT_EQ(dm_->Fetch(s1), SqlReturn::kSuccess);
  dm_->GetData(s1, 0, &v);
  EXPECT_EQ(v.AsInt64(), 6);
  ASSERT_EQ(dm_->Fetch(s2), SqlReturn::kSuccess);
  dm_->GetData(s2, 0, &v);
  EXPECT_EQ(v.AsInt64(), 95);
  EXPECT_EQ(dm_->stats().recoveries, 1u);  // one recovery fixed both
}

// --- New requests after a crash --------------------------------------------

TEST_F(PhoenixRecoveryTest, NewQueryAfterCrashJustWorks) {
  Crash();
  auto rows = MustQuery(dm_.get(), dbc_, "SELECT COUNT(*) AS C FROM NUMS");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt64(), 100);
}

TEST_F(PhoenixRecoveryTest, ConnectionOptionsReplayedOnRecovery) {
  ASSERT_EQ(dm_->SetConnectOption(dbc_, "APP_NAME", "report-writer"),
            SqlReturn::kSuccess);
  ASSERT_EQ(dm_->SetConnectOption(dbc_, "LOCK_TIMEOUT", "5"),
            SqlReturn::kSuccess);
  Crash();
  MustQuery(dm_.get(), dbc_, "SELECT 1 AS X");  // triggers recovery
  eng::Session* session = cluster_.server.database()->GetSession(
      dbc_->driver->session_id());
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->options.at("APP_NAME"), "report-writer");
  EXPECT_EQ(session->options.at("LOCK_TIMEOUT"), "5");
}

// --- DML: testable state, lost replies, resubmission -----------------------

TEST_F(PhoenixRecoveryTest, LostReplyRecoveredFromStatusTable) {
  // The reply to a committed DML vanishes (classic lost-message case).
  dbc_->driver->channel()->InjectLoseReplies(1);
  int64_t n = MustExec(dm_.get(), dbc_, "DELETE FROM NUMS WHERE N > 90");
  EXPECT_EQ(n, 10);  // the probe recovered the real affected count
  EXPECT_EQ(dm_->stats().lost_replies_recovered, 1u);
  EXPECT_EQ(dm_->stats().resubmissions, 0u);
  // And the delete really happened exactly once.
  auto rows = MustQuery(dm_.get(), dbc_, "SELECT COUNT(*) AS C FROM NUMS");
  EXPECT_EQ(rows[0][0].AsInt64(), 90);
}

TEST_F(PhoenixRecoveryTest, DmlResubmittedWhenCrashPreemptedIt) {
  // Request is lost before reaching the server, then the server also
  // crashes: probe finds nothing, Phoenix resubmits.
  dbc_->driver->channel()->InjectDropRequests(1);
  Crash();
  int64_t n = MustExec(dm_.get(), dbc_, "DELETE FROM NUMS WHERE N > 90");
  EXPECT_EQ(n, 10);
  EXPECT_GE(dm_->stats().resubmissions, 1u);
  auto rows = MustQuery(dm_.get(), dbc_, "SELECT COUNT(*) AS C FROM NUMS");
  EXPECT_EQ(rows[0][0].AsInt64(), 90);
}

TEST_F(PhoenixRecoveryTest, DmlNotAppliedTwice) {
  // Reply lost AND server crashes afterwards: the committed transaction is
  // recovered by the server; Phoenix must detect completion, not re-run.
  MustExec(dm_.get(), dbc_, "UPDATE NUMS SET SQ = 0 WHERE N = 1");
  dbc_->driver->channel()->InjectLoseReplies(1);
  int64_t n = MustExec(dm_.get(), dbc_, "UPDATE NUMS SET SQ = SQ + 7 WHERE N = 1");
  EXPECT_EQ(n, 1);
  auto rows = MustQuery(dm_.get(), dbc_, "SELECT SQ FROM NUMS WHERE N = 1");
  EXPECT_EQ(rows[0][0].AsInt64(), 7);  // once, not 14
}

// --- Temp objects -----------------------------------------------------------

TEST_F(PhoenixRecoveryTest, TempTableSurvivesCrash) {
  MustExec(dm_.get(), dbc_, "CREATE TEMPORARY TABLE SCRATCH (A INTEGER)");
  MustExec(dm_.get(), dbc_, "INSERT INTO SCRATCH VALUES (1), (2), (3)");
  Crash();
  // Without Phoenix this table would be gone; rewritten to a persistent
  // stand-in it comes back through ordinary database recovery.
  auto rows =
      MustQuery(dm_.get(), dbc_, "SELECT COUNT(*) AS C FROM SCRATCH");
  EXPECT_EQ(rows[0][0].AsInt64(), 3);
}

TEST_F(PhoenixRecoveryTest, TempProcedureSurvivesCrash) {
  MustExec(dm_.get(), dbc_,
           "CREATE TEMP PROCEDURE ZAP (@k INT) AS DELETE FROM NUMS "
           "WHERE N = @k");
  Crash();
  MustExec(dm_.get(), dbc_, "EXEC ZAP(50)");
  auto rows = MustQuery(dm_.get(), dbc_, "SELECT COUNT(*) AS C FROM NUMS");
  EXPECT_EQ(rows[0][0].AsInt64(), 99);
}

// --- Open transactions -------------------------------------------------------

TEST_F(PhoenixRecoveryTest, OpenTransactionReplayedAfterCrash) {
  MustExec(dm_.get(), dbc_, "BEGIN TRANSACTION");
  MustExec(dm_.get(), dbc_, "INSERT INTO NUMS VALUES (101, 10201)");
  MustExec(dm_.get(), dbc_, "UPDATE NUMS SET SQ = 1 WHERE N = 1");
  Crash();
  // The server rolled the transaction back; Phoenix replays it so the
  // application can keep going and commit.
  MustExec(dm_.get(), dbc_, "INSERT INTO NUMS VALUES (102, 10404)");
  MustExec(dm_.get(), dbc_, "COMMIT");
  EXPECT_GE(dm_->stats().txn_replays, 1u);
  auto rows = MustQuery(dm_.get(), dbc_, "SELECT COUNT(*) AS C FROM NUMS");
  EXPECT_EQ(rows[0][0].AsInt64(), 102);
  EXPECT_EQ(MustQuery(dm_.get(), dbc_,
                      "SELECT SQ FROM NUMS WHERE N = 1")[0][0]
                .AsInt64(),
            1);
}

TEST_F(PhoenixRecoveryTest, CommitLostReplyNotAppliedTwice) {
  MustExec(dm_.get(), dbc_, "BEGIN");
  MustExec(dm_.get(), dbc_, "UPDATE NUMS SET SQ = SQ + 1 WHERE N = 2");
  dbc_->driver->channel()->InjectLoseReplies(1);
  MustExec(dm_.get(), dbc_, "COMMIT");
  auto rows = MustQuery(dm_.get(), dbc_, "SELECT SQ FROM NUMS WHERE N = 2");
  EXPECT_EQ(rows[0][0].AsInt64(), 5);  // 4+1, exactly once
}

TEST_F(PhoenixRecoveryTest, RollbackAfterCrashSucceeds) {
  MustExec(dm_.get(), dbc_, "BEGIN");
  MustExec(dm_.get(), dbc_, "DELETE FROM NUMS");
  Crash();
  MustExec(dm_.get(), dbc_, "ROLLBACK");
  auto rows = MustQuery(dm_.get(), dbc_, "SELECT COUNT(*) AS C FROM NUMS");
  EXPECT_EQ(rows[0][0].AsInt64(), 100);
}

// --- Cursor proxies across crashes ------------------------------------------

TEST_F(PhoenixRecoveryTest, KeysetCursorResumesAfterCrash) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  dm_->SetStmtAttr(stmt, StmtAttr::kCursorMode,
                   static_cast<int64_t>(CursorMode::kKeysetCursor));
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT N, SQ FROM NUMS WHERE N <= 20"),
            SqlReturn::kSuccess);
  for (int i = 1; i <= 8; ++i) ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  Crash();
  for (int i = 9; i <= 20; ++i) {
    ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess) << "key " << i;
    Value v;
    dm_->GetData(stmt, 0, &v);
    ASSERT_EQ(v.AsInt64(), i);
  }
  EXPECT_EQ(dm_->Fetch(stmt), SqlReturn::kNoData);
}

TEST_F(PhoenixRecoveryTest, DynamicCursorResumesAfterCrash) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  dm_->SetStmtAttr(stmt, StmtAttr::kCursorMode,
                   static_cast<int64_t>(CursorMode::kDynamicCursor));
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT N FROM NUMS WHERE N <= 30"),
            SqlReturn::kSuccess);
  for (int i = 1; i <= 10; ++i) ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  Crash();
  std::vector<int64_t> rest;
  while (dm_->Fetch(stmt) == SqlReturn::kSuccess) {
    Value v;
    dm_->GetData(stmt, 0, &v);
    rest.push_back(v.AsInt64());
  }
  ASSERT_EQ(rest.size(), 20u);
  EXPECT_EQ(rest.front(), 11);
  EXPECT_EQ(rest.back(), 30);
}

// --- Failure detection paths --------------------------------------------------

TEST_F(PhoenixRecoveryTest, TransientFaultRetriedWithoutRemap) {
  dbc_->driver->channel()->InjectDropRequests(2);
  auto rows = MustQuery(dm_.get(), dbc_, "SELECT COUNT(*) AS C FROM NUMS");
  EXPECT_EQ(rows[0][0].AsInt64(), 100);
  EXPECT_EQ(dm_->stats().recoveries, 0u);
  EXPECT_GE(dm_->stats().transient_retries, 1u);
}

TEST_F(PhoenixRecoveryTest, ServerNeverReturnsGivesUpGracefully) {
  PhoenixConfig config;  // no auto-restart hook
  config.reconnect_attempts = 3;
  PhoenixDriverManager dm(&cluster_.network, config);
  Hdbc* dbc = dm.AllocConnect(dm.AllocEnv());
  ASSERT_EQ(dm.Connect(dbc, "testdb", "doomed"), SqlReturn::kSuccess);
  cluster_.server.Crash();
  Hstmt* stmt = dm.AllocStmt(dbc);
  EXPECT_EQ(dm.ExecDirect(stmt, "SELECT 1 AS X"), SqlReturn::kError);
  EXPECT_TRUE(DriverManager::Diag(stmt).IsCommError());
  // The session is marked broken; later calls fail fast.
  EXPECT_EQ(dm.ExecDirect(stmt, "SELECT 1 AS X"), SqlReturn::kError);
  cluster_.server.Restart().ok();  // restore for other tests' teardown
}

TEST_F(PhoenixRecoveryTest, RecoveryAcrossCheckpointBoundary) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT N FROM NUMS ORDER BY N"),
            SqlReturn::kSuccess);
  for (int i = 0; i < 30; ++i) ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  // Server checkpoints (result table included), then crashes.
  ASSERT_TRUE(cluster_.server.database()->Checkpoint().ok());
  Crash();
  int rest = 0;
  while (dm_->Fetch(stmt) == SqlReturn::kSuccess) ++rest;
  EXPECT_EQ(rest, 70);
}

TEST_F(PhoenixRecoveryTest, ClientSideRepositionAblationAlsoCorrect) {
  dm_->mutable_config()->server_side_reposition = false;
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT N FROM NUMS ORDER BY N"),
            SqlReturn::kSuccess);
  for (int i = 1; i <= 60; ++i) ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  Crash();
  ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  Value v;
  dm_->GetData(stmt, 0, &v);
  EXPECT_EQ(v.AsInt64(), 61);
}

TEST_F(PhoenixRecoveryTest, ClientRoundTripMaterializationAblation) {
  dm_->mutable_config()->materialize_via_server = false;
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT N FROM NUMS ORDER BY N"),
            SqlReturn::kSuccess)
      << DriverManager::Diag(stmt).ToString();
  for (int i = 1; i <= 25; ++i) ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  Crash();
  ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  Value v;
  dm_->GetData(stmt, 0, &v);
  EXPECT_EQ(v.AsInt64(), 26);
}

// --- The paper's §2 walk-through, crash included ------------------------------

TEST_F(PhoenixRecoveryTest, CustomerOrderInvoiceScenario) {
  MustExec(dm_.get(), dbc_,
           "CREATE TABLE CUST (ID INTEGER PRIMARY KEY, LASTNAME VARCHAR)");
  MustExec(dm_.get(), dbc_,
           "CREATE TABLE ORD (OID INTEGER PRIMARY KEY, CUST_ID INTEGER, "
           "AMOUNT DOUBLE)");
  MustExec(dm_.get(), dbc_,
           "CREATE TABLE INVOICE (CUST_ID INTEGER PRIMARY KEY, "
           "TOTAL DOUBLE)");
  MustExec(dm_.get(), dbc_,
           "INSERT INTO CUST VALUES (1, 'Smith'), (2, 'Jones'), (3, 'Smith')");
  MustExec(dm_.get(), dbc_,
           "INSERT INTO ORD VALUES (10, 1, 25.0), (11, 1, 30.0), "
           "(12, 2, 99.0), (13, 3, 1.0)");

  // Step 2-3: result set over customers named Smith; fetch to find ours.
  Hstmt* cust = dm_->AllocStmt(dbc_);
  ASSERT_EQ(dm_->ExecDirect(
                cust, "SELECT ID FROM CUST WHERE LASTNAME = 'Smith' ORDER BY ID"),
            SqlReturn::kSuccess);
  ASSERT_EQ(dm_->Fetch(cust), SqlReturn::kSuccess);
  Value id;
  dm_->GetData(cust, 0, &id);
  ASSERT_EQ(id.AsInt64(), 1);

  // Step 4-5: cursor over the orders; crash mid-way through them.
  Hstmt* ord = dm_->AllocStmt(dbc_);
  ASSERT_EQ(dm_->ExecDirect(
                ord, "SELECT AMOUNT FROM ORD WHERE CUST_ID = 1 ORDER BY OID"),
            SqlReturn::kSuccess);
  ASSERT_EQ(dm_->Fetch(ord), SqlReturn::kSuccess);
  Value a1;
  dm_->GetData(ord, 0, &a1);
  Crash();  // <-- the server dies between fetches
  ASSERT_EQ(dm_->Fetch(ord), SqlReturn::kSuccess);
  Value a2;
  dm_->GetData(ord, 0, &a2);
  EXPECT_EQ(dm_->Fetch(ord), SqlReturn::kNoData);

  // Step 6-7: aggregate and update the invoice summary.
  double total = a1.AsDouble() + a2.AsDouble();
  EXPECT_DOUBLE_EQ(total, 55.0);
  MustExec(dm_.get(), dbc_,
           "INSERT INTO INVOICE VALUES (1, " + std::to_string(total) + ")");

  // Step 8: clean termination.
  ASSERT_EQ(dm_->Disconnect(dbc_), SqlReturn::kSuccess);
  auto* t = cluster_.server.database()->store()->Get("INVOICE");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 1u);
}

}  // namespace
}  // namespace phoenix::core
