// Concurrency tests for the worker-pool DbServer: many client threads and
// sessions against one server, with and without crash/restart mid-flight.
// The invariants under test:
//   - no DML outcome is lost or duplicated (a success the client saw is
//     durable; a key is never inserted twice),
//   - one session's statements execute in submission order,
//   - a single injected fault token fires exactly once regardless of how
//     many requests are in flight (the per-request claim regression).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

#include "test_util.h"

namespace phoenix::net {
namespace {

using testutil::TestCluster;

Request Connect(const std::string& user) {
  Request r;
  r.kind = Request::Kind::kConnect;
  r.user = user;
  return r;
}

Request Exec(uint64_t sid, std::string sql) {
  Request r;
  r.kind = Request::Kind::kExecScript;
  r.session_id = sid;
  r.sql = std::move(sql);
  return r;
}

/// Round-trips `req` and returns the server's status (transport and SQL
/// errors collapsed — these tests only care about success/failure).
Status Try(Channel* chan, const Request& req) {
  auto res = chan->RoundTrip(req);
  if (!res.ok()) return res.status();
  return res.value().ToStatus();
}

TEST(ConcurrentServer, ParallelSessionsNoLostOrDuplicatedDml) {
  ServerOptions opts;
  opts.worker_threads = 4;
  TestCluster cluster(opts);

  {
    auto chan = cluster.network.Connect("testdb").take();
    auto conn = chan->RoundTrip(Connect("ddl"));
    ASSERT_TRUE(conn.ok());
    PHX_ASSERT_OK(Try(chan.get(),
                      Exec(conn->session_id,
                           "CREATE TABLE T (K INTEGER PRIMARY KEY, "
                           "OWNER INTEGER, V INTEGER)")));
  }

  constexpr int kThreads = 8;
  constexpr int kOpsEach = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto chan = cluster.network.Connect("testdb").take();
      auto conn = chan->RoundTrip(Connect("worker-" + std::to_string(t)));
      if (!conn.ok() || !conn->ToStatus().ok()) {
        failures.fetch_add(1);
        return;
      }
      uint64_t sid = conn->session_id;
      for (int i = 0; i < kOpsEach; ++i) {
        int key = t * 1000 + i;
        Status st = Try(chan.get(),
                        Exec(sid, "INSERT INTO T VALUES (" +
                                      std::to_string(key) + ", " +
                                      std::to_string(t) + ", 0)"));
        if (!st.ok()) failures.fetch_add(1);
        // Interleave reads so shared and exclusive lock paths mix.
        if (i % 5 == 0) {
          st = Try(chan.get(), Exec(sid, "SELECT COUNT(*) AS N FROM T"));
          if (!st.ok()) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Every key exactly once: COUNT(*) == COUNT(DISTINCT K) == threads * ops.
  eng::Database* db = cluster.server.database();
  auto sid = db->CreateSession("verify");
  ASSERT_TRUE(sid.ok());
  auto res = db->ExecuteScript(*sid, "SELECT COUNT(*) AS N FROM T");
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.value()[0].rows.size(), 1u);
  EXPECT_EQ(res.value()[0].rows[0][0].AsInt64(), kThreads * kOpsEach);
}

TEST(ConcurrentServer, WriteHeavyAutoCheckpointFiresAndLosesNothing) {
  // Satellite of the non-blocking checkpoint work: under a write-heavy
  // multi-session load with a tight cadence, auto-checkpoints must actually
  // complete (non-quiescent — concurrent commits and open cursors no longer
  // suppress them), and a restart over the checkpoint + fenced WAL replay
  // must present every acked row exactly once.
  ServerOptions opts;
  opts.worker_threads = 8;
  opts.db.checkpoint_every_n_commits = 5;
  TestCluster cluster(opts);
  {
    auto chan = cluster.network.Connect("testdb").take();
    auto conn = chan->RoundTrip(Connect("ddl"));
    ASSERT_TRUE(conn.ok());
    PHX_ASSERT_OK(Try(chan.get(),
                      Exec(conn->session_id,
                           "CREATE TABLE W (K INTEGER PRIMARY KEY)")));
  }

  obs::MetricsSnapshot before = obs::MetricsRegistry::Default()->Snapshot();
  constexpr int kThreads = 8;
  constexpr int kOpsEach = 30;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto chan = cluster.network.Connect("testdb").take();
      auto conn = chan->RoundTrip(Connect("w" + std::to_string(t)));
      if (!conn.ok() || !conn->ToStatus().ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kOpsEach; ++i) {
        int key = t * 1000 + i;
        Status st = Try(chan.get(),
                        Exec(conn->session_id, "INSERT INTO W VALUES (" +
                                                   std::to_string(key) + ")"));
        if (!st.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  cluster.server.database()->WaitForCheckpointIdle();

  obs::MetricsSnapshot after = obs::MetricsRegistry::Default()->Snapshot();
  EXPECT_GT(after.counter("storage.checkpoints") -
                before.counter("storage.checkpoints"),
            0u)
      << "write-heavy load never completed an auto-checkpoint";
  EXPECT_TRUE(cluster.disk.Exists("phxdb.ckpt"));

  // Everything was acked; a crash+restart must recover all of it.
  cluster.server.Crash();
  PHX_ASSERT_OK(cluster.server.Restart());
  eng::Database* db = cluster.server.database();
  auto sid = db->CreateSession("verify");
  ASSERT_TRUE(sid.ok());
  auto res = db->ExecuteScript(*sid, "SELECT COUNT(*) AS N FROM W");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value()[0].rows[0][0].AsInt64(), kThreads * kOpsEach);
}

TEST(ConcurrentServer, SameSessionStatementOrderPreserved) {
  TestCluster cluster;
  auto chan = cluster.network.Connect("testdb").take();
  auto conn = chan->RoundTrip(Connect("seq"));
  ASSERT_TRUE(conn.ok());
  uint64_t sid = conn->session_id;
  PHX_ASSERT_OK(Try(chan.get(),
                    Exec(sid, "CREATE TABLE S (K INTEGER PRIMARY KEY, "
                              "V INTEGER); INSERT INTO S VALUES (1, 1)")));

  // Fire a non-commutative update chain asynchronously: V = V*2 and V = V+1
  // alternating. Any reordering changes the final value.
  constexpr int kSteps = 40;
  int64_t expected = 1;
  std::vector<std::future<Result<Response>>> futures;
  for (int i = 0; i < kSteps; ++i) {
    if (i % 2 == 0) {
      futures.push_back(chan->RoundTripAsync(
          Exec(sid, "UPDATE S SET V = V * 2 WHERE K = 1")));
      expected *= 2;
    } else {
      futures.push_back(chan->RoundTripAsync(
          Exec(sid, "UPDATE S SET V = V + 1 WHERE K = 1")));
      expected += 1;
    }
  }

  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    PHX_ASSERT_OK(r.value().ToStatus());
  }

  auto check = chan->RoundTrip(Exec(sid, "SELECT V FROM S WHERE K = 1"));
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check->results[0].rows.size(), 1u);
  EXPECT_EQ(check->results[0].rows[0][0].AsInt64(), expected);
}

TEST(ConcurrentServer, BatchPreservesSessionOrderAndResponseOrder) {
  TestCluster cluster;
  auto chan = cluster.network.Connect("testdb").take();
  auto conn = chan->RoundTrip(Connect("batch"));
  ASSERT_TRUE(conn.ok());
  uint64_t sid = conn->session_id;
  PHX_ASSERT_OK(Try(chan.get(),
                    Exec(sid, "CREATE TABLE B (K INTEGER PRIMARY KEY, "
                              "V INTEGER); INSERT INTO B VALUES (1, 3)")));

  std::vector<Request> batch;
  int64_t expected = 3;
  for (int i = 0; i < 21; ++i) {
    if (i % 3 == 0) {
      batch.push_back(Exec(sid, "UPDATE B SET V = V * 2 WHERE K = 1"));
      expected *= 2;
    } else {
      batch.push_back(Exec(sid, "UPDATE B SET V = V + 1 WHERE K = 1"));
      expected += 1;
    }
  }
  batch.push_back(Exec(sid, "SELECT V FROM B WHERE K = 1"));

  auto res = chan->RoundTripBatch(std::move(batch));
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->size(), 22u);
  for (size_t i = 0; i < res->size(); ++i) {
    PHX_ASSERT_OK((*res)[i].ToStatus());
  }
  // Responses come back in request order: the final SELECT is last and sees
  // every earlier update applied in order.
  const Response& last = res->back();
  ASSERT_EQ(last.results[0].rows.size(), 1u);
  EXPECT_EQ(last.results[0].rows[0][0].AsInt64(), expected);
}

TEST(ConcurrentServer, CrashRestartMidFlightLosesNoAcknowledgedWrite) {
  ServerOptions opts;
  opts.worker_threads = 4;
  TestCluster cluster(opts);

  {
    auto chan = cluster.network.Connect("testdb").take();
    auto conn = chan->RoundTrip(Connect("ddl"));
    ASSERT_TRUE(conn.ok());
    PHX_ASSERT_OK(Try(chan.get(),
                      Exec(conn->session_id,
                           "CREATE TABLE W (K INTEGER PRIMARY KEY)")));
  }

  constexpr int kThreads = 4;
  constexpr int kKeysEach = 30;
  std::atomic<bool> stop{false};
  std::atomic<int> acknowledged{0};

  // Clients: insert unique keys, reconnecting and retrying the same key on
  // any failure. A retry after an unacknowledged success would hit the PK
  // and show up as a duplicate — which the drain semantics make impossible:
  // the server answers every request it accepted before dying.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::unique_ptr<Channel> chan;
      uint64_t sid = 0;
      auto reconnect = [&] {
        while (true) {
          if (cluster.server.alive()) {
            chan = cluster.network.Connect("testdb").take();
            auto conn = chan->RoundTrip(Connect("w" + std::to_string(t)));
            if (conn.ok() && conn->ToStatus().ok()) {
              sid = conn->session_id;
              return;
            }
          }
          std::this_thread::yield();
        }
      };
      reconnect();
      for (int i = 0; i < kKeysEach; ++i) {
        int key = t * 1000 + i;
        while (true) {
          Status st = Try(chan.get(), Exec(sid, "INSERT INTO W VALUES (" +
                                                    std::to_string(key) + ")"));
          if (st.ok()) {
            acknowledged.fetch_add(1);
            break;
          }
          // Ambiguity-free by construction: a failed response here means the
          // insert did not commit (comm errors happen only before dispatch).
          reconnect();
        }
      }
    });
  }

  // The saboteur: crash + restart the server while inserts are in flight.
  std::thread saboteur([&] {
    for (int round = 0; round < 5 && !stop.load(); ++round) {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      cluster.server.Crash();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      auto st = cluster.server.Restart();
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
  });

  for (auto& t : threads) t.join();
  stop.store(true);
  saboteur.join();
  if (!cluster.server.alive()) {
    PHX_ASSERT_OK(cluster.server.Restart());
  }

  EXPECT_EQ(acknowledged.load(), kThreads * kKeysEach);
  eng::Database* db = cluster.server.database();
  auto sid = db->CreateSession("verify");
  ASSERT_TRUE(sid.ok());
  auto res = db->ExecuteScript(*sid, "SELECT COUNT(*) AS N FROM W");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value()[0].rows[0][0].AsInt64(), kThreads * kKeysEach);
}

TEST(ConcurrentServer, InjectedLostReplyFiresExactlyOnce) {
  TestCluster cluster;
  auto chan = cluster.network.Connect("testdb").take();

  // Regression: with the pre-claim design, two concurrent round trips could
  // both observe the same injected token and both time out. The token is
  // now claimed atomically per request — exactly one of N in-flight
  // requests loses its reply.
  constexpr int kInFlight = 8;
  chan->InjectLoseReplies(1);
  std::vector<std::future<Result<Response>>> futures;
  for (int i = 0; i < kInFlight; ++i) {
    Request ping;
    ping.kind = Request::Kind::kPing;
    futures.push_back(chan->RoundTripAsync(ping));
  }
  int timeouts = 0, oks = 0;
  for (auto& f : futures) {
    auto r = f.get();
    if (r.ok()) {
      ++oks;
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
      ++timeouts;
    }
  }
  EXPECT_EQ(timeouts, 1);
  EXPECT_EQ(oks, kInFlight - 1);
  EXPECT_EQ(chan->stats().faults_injected, 1u);
}

TEST(ConcurrentServer, WorkerPoolDrainsAcceptedTasksOnCrash) {
  ServerOptions opts;
  opts.worker_threads = 2;
  TestCluster cluster(opts);
  auto chan = cluster.network.Connect("testdb").take();
  auto conn = chan->RoundTrip(Connect("drain"));
  ASSERT_TRUE(conn.ok());
  uint64_t sid = conn->session_id;
  PHX_ASSERT_OK(Try(chan.get(),
                    Exec(sid, "CREATE TABLE D (K INTEGER PRIMARY KEY)")));

  // Queue up async work, then crash. Every future must resolve — either
  // with the executed result (beat the crash) or "server is down" — and
  // none may hang or be dropped on the floor.
  std::vector<std::future<Result<Response>>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(chan->RoundTripAsync(
        Exec(sid, "INSERT INTO D VALUES (" + std::to_string(i) + ")")));
  }
  cluster.server.Crash();
  int executed = 0;
  for (auto& f : futures) {
    auto r = f.get();
    if (r.ok() && r->ToStatus().ok()) ++executed;
  }
  PHX_ASSERT_OK(cluster.server.Restart());

  // The durable row count equals the number of acknowledged inserts.
  eng::Database* db = cluster.server.database();
  auto vsid = db->CreateSession("verify");
  ASSERT_TRUE(vsid.ok());
  auto res = db->ExecuteScript(*vsid, "SELECT COUNT(*) AS N FROM D");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value()[0].rows[0][0].AsInt64(), executed);
}

}  // namespace
}  // namespace phoenix::net
