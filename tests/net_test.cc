// Wire protocol round trips, channel fault injection, and the crashable
// server process model.

#include "net/channel.h"
#include "net/db_server.h"
#include "net/protocol.h"

#include "common/rng.h"

#include "gtest/gtest.h"

namespace phoenix::net {
namespace {

TEST(Protocol, RequestRoundTripAllFields) {
  Request req;
  req.kind = Request::Kind::kOpenCursor;
  req.request_id = 99;
  req.session_id = 42;
  req.user = "alice";
  req.name = "opt";
  req.value = "val";
  req.sql = "SELECT * FROM T";
  req.cursor_type = 2;
  req.cursor_id = 7;
  req.n = 64;
  auto back = Request::Decode(req.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, req.kind);
  EXPECT_EQ(back->request_id, 99u);
  EXPECT_EQ(back->session_id, 42u);
  EXPECT_EQ(back->user, "alice");
  EXPECT_EQ(back->sql, "SELECT * FROM T");
  EXPECT_EQ(back->cursor_type, 2);
  EXPECT_EQ(back->cursor_id, 7u);
  EXPECT_EQ(back->n, 64u);
}

TEST(Protocol, ResponseRoundTripWithResults) {
  Response resp;
  resp.kind = Response::Kind::kResults;
  resp.request_id = 99;
  eng::StatementResult r1;
  r1.has_rows = true;
  r1.schema.AddColumn(Column{"A", DataType::kInt64, false});
  r1.rows.push_back(Row{Value::Int64(1)});
  r1.rows.push_back(Row{Value::Int64(2)});
  resp.results.push_back(std::move(r1));
  resp.results.push_back(eng::StatementResult::Affected(5));
  auto back = Response::Decode(resp.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->request_id, 99u);
  ASSERT_EQ(back->results.size(), 2u);
  EXPECT_TRUE(back->results[0].has_rows);
  EXPECT_EQ(back->results[0].rows.size(), 2u);
  EXPECT_EQ(back->results[1].affected, 5);
}

TEST(Protocol, ErrorResponseCarriesStatus) {
  Response resp = Response::MakeError(Status::Timeout("slow"));
  auto back = Response::Decode(resp.Encode());
  ASSERT_TRUE(back.ok());
  Status st = back->ToStatus();
  EXPECT_TRUE(st.IsTimeout());
  EXPECT_EQ(st.message(), "slow");
}

TEST(Protocol, DecodeRejectsGarbage) {
  EXPECT_FALSE(Request::Decode("").ok());
  EXPECT_FALSE(Response::Decode("xx").ok());
  std::string bad(1, '\xFF');
  EXPECT_FALSE(Request::Decode(bad + std::string(40, 0)).ok());
}

struct ServerFixture {
  storage::SimDisk disk;
  DbServer server{&disk};
  Network network;
  ServerFixture() {
    EXPECT_TRUE(server.Start().ok());
    network.RegisterServer("db", &server);
  }
  std::unique_ptr<Channel> Connect() {
    auto c = network.Connect("db");
    EXPECT_TRUE(c.ok());
    return c.take();
  }
  Response Call(Channel* ch, const Request& req) {
    auto r = ch->RoundTrip(req);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.take() : Response{};
  }
};

Request ConnectReq(const std::string& user = "u") {
  Request r;
  r.kind = Request::Kind::kConnect;
  r.user = user;
  return r;
}

Request ExecReq(uint64_t sid, const std::string& sql) {
  Request r;
  r.kind = Request::Kind::kExecScript;
  r.session_id = sid;
  r.sql = sql;
  return r;
}

TEST(Channel, ConnectExecuteDisconnect) {
  ServerFixture fx;
  auto ch = fx.Connect();
  Response conn = fx.Call(ch.get(), ConnectReq());
  ASSERT_EQ(conn.kind, Response::Kind::kConnected);
  uint64_t sid = conn.session_id;
  Response made =
      fx.Call(ch.get(), ExecReq(sid, "CREATE TABLE T (A INTEGER)"));
  EXPECT_EQ(made.kind, Response::Kind::kResults);
  Response sel = fx.Call(ch.get(), ExecReq(sid, "SELECT 1 + 1 AS X"));
  ASSERT_EQ(sel.results.size(), 1u);
  EXPECT_EQ(sel.results[0].rows[0][0].AsInt64(), 2);
  Request disc;
  disc.kind = Request::Kind::kDisconnect;
  disc.session_id = sid;
  EXPECT_EQ(fx.Call(ch.get(), disc).kind, Response::Kind::kOk);
}

TEST(Channel, ServerErrorsTravelAsErrorResponses) {
  ServerFixture fx;
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  auto r = ch->RoundTrip(ExecReq(sid, "SELECT * FROM MISSING"));
  ASSERT_TRUE(r.ok());  // transport succeeded
  EXPECT_EQ(r->kind, Response::Kind::kError);
  EXPECT_EQ(r->ToStatus().code(), StatusCode::kSqlError);
}

TEST(Channel, UnknownDsnRejected) {
  ServerFixture fx;
  EXPECT_TRUE(fx.network.Connect("nope").status().IsNotFound());
}

TEST(Channel, CrashedServerYieldsCommError) {
  ServerFixture fx;
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.server.Crash();
  auto r = ch->RoundTrip(ExecReq(sid, "SELECT 1"));
  EXPECT_TRUE(r.status().IsCommError());
  // Ping also fails while down.
  Request ping;
  ping.kind = Request::Kind::kPing;
  EXPECT_TRUE(ch->RoundTrip(ping).status().IsCommError());
}

TEST(Channel, StaleSessionAfterRestartIsNotFound) {
  ServerFixture fx;
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.server.Crash();
  ASSERT_TRUE(fx.server.Restart().ok());
  auto r = ch->RoundTrip(ExecReq(sid, "SELECT 1"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToStatus().code(), StatusCode::kNotFound);
  EXPECT_NE(r->ToStatus().message().find("session"), std::string::npos);
}

TEST(Channel, SessionIdsNeverReusedAcrossRestarts) {
  ServerFixture fx;
  auto ch = fx.Connect();
  uint64_t sid1 = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.server.Crash();
  ASSERT_TRUE(fx.server.Restart().ok());
  auto ch2 = fx.Connect();
  uint64_t sid2 = fx.Call(ch2.get(), ConnectReq()).session_id;
  EXPECT_GT(sid2, sid1);
}

TEST(Channel, EpochCountsRestarts) {
  ServerFixture fx;
  auto ch = fx.Connect();
  Request ping;
  ping.kind = Request::Kind::kPing;
  EXPECT_EQ(fx.Call(ch.get(), ping).server_epoch, 1u);
  fx.server.Crash();
  ASSERT_TRUE(fx.server.Restart().ok());
  EXPECT_EQ(fx.Call(ch.get(), ping).server_epoch, 2u);
}

TEST(Channel, InjectDropRequestsFailsBeforeServer) {
  ServerFixture fx;
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  uint64_t handled = fx.server.stats().requests_handled;
  ch->InjectDropRequests(2);
  EXPECT_TRUE(ch->RoundTrip(ExecReq(sid, "SELECT 1")).status().IsCommError());
  EXPECT_TRUE(ch->RoundTrip(ExecReq(sid, "SELECT 1")).status().IsCommError());
  EXPECT_EQ(fx.server.stats().requests_handled, handled);  // never reached it
  EXPECT_TRUE(ch->RoundTrip(ExecReq(sid, "SELECT 1")).ok());
}

TEST(Channel, InjectLoseRepliesExecutesButTimesOut) {
  ServerFixture fx;
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.Call(ch.get(), ExecReq(sid, "CREATE TABLE T (A INTEGER)"));
  ch->InjectLoseReplies(1);
  auto r = ch->RoundTrip(ExecReq(sid, "INSERT INTO T VALUES (1)"));
  EXPECT_TRUE(r.status().IsTimeout());
  // The lost-reply request DID execute — the classic ambiguity Phoenix's
  // status table resolves.
  Response check = fx.Call(ch.get(), ExecReq(sid, "SELECT COUNT(*) AS N FROM T"));
  EXPECT_EQ(check.results[0].rows[0][0].AsInt64(), 1);
}

TEST(Channel, ClientDisconnectClosesChannel) {
  ServerFixture fx;
  auto ch = fx.Connect();
  ch->Disconnect();
  EXPECT_TRUE(ch->RoundTrip(ConnectReq()).status().IsCommError());
}

TEST(Channel, StatsCountTraffic) {
  ServerFixture fx;
  auto ch = fx.Connect();
  fx.Call(ch.get(), ConnectReq());
  // One snapshot struct covers all the traffic counters.
  ChannelStats stats = ch->stats();
  EXPECT_EQ(stats.round_trips, 1u);
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_GT(stats.bytes_received, 0u);
  EXPECT_EQ(stats.faults_injected, 0u);
  EXPECT_GE(fx.server.stats().requests_handled, 1u);
}

TEST(Channel, StatsCountInjectedFaults) {
  ServerFixture fx;
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  ch->InjectDropRequests(1);
  EXPECT_TRUE(ch->RoundTrip(ExecReq(sid, "SELECT 1")).status().IsCommError());
  ch->InjectLoseReplies(1);
  EXPECT_TRUE(ch->RoundTrip(ExecReq(sid, "SELECT 1")).status().IsTimeout());
  EXPECT_EQ(ch->stats().faults_injected, 2u);
}

TEST(Channel, RequestIdAssignedAndEchoed) {
  ServerFixture fx;
  auto ch = fx.Connect();
  // Channel assigns monotonically increasing ids when the caller leaves 0,
  // and the server echoes them back — a retry resent with the same id is
  // correlatable against the original in the trace stream.
  Request ping;
  ping.kind = Request::Kind::kPing;
  auto r1 = ch->RoundTrip(ping);
  auto r2 = ch->RoundTrip(ping);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->request_id, 1u);
  EXPECT_EQ(r2->request_id, 2u);
  Request tagged;
  tagged.kind = Request::Kind::kPing;
  tagged.request_id = 777;
  auto r3 = ch->RoundTrip(tagged);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->request_id, 777u);
}

TEST(Channel, RequestIdEchoedOnServerDownError) {
  ServerFixture fx;
  auto ch = fx.Connect();
  fx.server.Crash();
  ASSERT_TRUE(fx.server.Restart().ok());
  // Even an error Response carries the echo (the "server is down" reply is
  // produced before dispatch; stale-session errors go through Dispatch).
  Request req = ExecReq(12345, "SELECT 1");
  req.request_id = 55;
  auto r = ch->RoundTrip(req);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, Response::Kind::kError);
  EXPECT_EQ(r->request_id, 55u);
}

TEST(Server, RestartWhileAliveRejected) {
  ServerFixture fx;
  EXPECT_FALSE(fx.server.Restart().ok());
}

TEST(Server, DurableDataVisibleAfterRestart) {
  ServerFixture fx;
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.Call(ch.get(), ExecReq(sid, "CREATE TABLE T (A INTEGER)"));
  fx.Call(ch.get(), ExecReq(sid, "INSERT INTO T VALUES (7)"));
  fx.server.Crash();
  ASSERT_TRUE(fx.server.Restart().ok());
  auto ch2 = fx.Connect();
  uint64_t sid2 = fx.Call(ch2.get(), ConnectReq()).session_id;
  Response r = fx.Call(ch2.get(), ExecReq(sid2, "SELECT A FROM T"));
  ASSERT_EQ(r.results[0].rows.size(), 1u);
  EXPECT_EQ(r.results[0].rows[0][0].AsInt64(), 7);
}

}  // namespace
}  // namespace phoenix::net
