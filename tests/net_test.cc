// Wire protocol round trips, channel fault injection, and the crashable
// server process model.

#include "net/channel.h"
#include "net/db_server.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "net/socket_transport.h"

#include "common/rng.h"

#include <atomic>
#include <cstdio>
#include <future>
#include <unistd.h>

#include "gtest/gtest.h"

namespace phoenix::net {
namespace {

TEST(Protocol, RequestRoundTripAllFields) {
  Request req;
  req.kind = Request::Kind::kOpenCursor;
  req.request_id = 99;
  req.session_id = 42;
  req.user = "alice";
  req.name = "opt";
  req.value = "val";
  req.sql = "SELECT * FROM T";
  req.cursor_type = 2;
  req.cursor_id = 7;
  req.n = 64;
  auto back = Request::Decode(req.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, req.kind);
  EXPECT_EQ(back->request_id, 99u);
  EXPECT_EQ(back->session_id, 42u);
  EXPECT_EQ(back->user, "alice");
  EXPECT_EQ(back->sql, "SELECT * FROM T");
  EXPECT_EQ(back->cursor_type, 2);
  EXPECT_EQ(back->cursor_id, 7u);
  EXPECT_EQ(back->n, 64u);
}

TEST(Protocol, ResponseRoundTripWithResults) {
  Response resp;
  resp.kind = Response::Kind::kResults;
  resp.request_id = 99;
  eng::StatementResult r1;
  r1.has_rows = true;
  r1.schema.AddColumn(Column{"A", DataType::kInt64, false});
  r1.rows.push_back(Row{Value::Int64(1)});
  r1.rows.push_back(Row{Value::Int64(2)});
  resp.results.push_back(std::move(r1));
  resp.results.push_back(eng::StatementResult::Affected(5));
  auto back = Response::Decode(resp.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->request_id, 99u);
  ASSERT_EQ(back->results.size(), 2u);
  EXPECT_TRUE(back->results[0].has_rows);
  EXPECT_EQ(back->results[0].rows.size(), 2u);
  EXPECT_EQ(back->results[1].affected, 5);
}

TEST(Protocol, ErrorResponseCarriesStatus) {
  Response resp = Response::MakeError(Status::Timeout("slow"));
  auto back = Response::Decode(resp.Encode());
  ASSERT_TRUE(back.ok());
  Status st = back->ToStatus();
  EXPECT_TRUE(st.IsTimeout());
  EXPECT_EQ(st.message(), "slow");
}

TEST(Protocol, DecodeRejectsGarbage) {
  EXPECT_FALSE(Request::Decode("").ok());
  EXPECT_FALSE(Response::Decode("xx").ok());
  std::string bad(1, '\xFF');
  EXPECT_FALSE(Request::Decode(bad + std::string(40, 0)).ok());
}

struct ServerFixture {
  storage::SimDisk disk;
  DbServer server{&disk};
  Network network;
  ServerFixture() {
    EXPECT_TRUE(server.Start().ok());
    network.RegisterServer("db", &server);
  }
  std::unique_ptr<Channel> Connect() {
    auto c = network.Connect("db");
    EXPECT_TRUE(c.ok());
    return c.take();
  }
  Response Call(Channel* ch, const Request& req) {
    auto r = ch->RoundTrip(req);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.take() : Response{};
  }
};

Request ConnectReq(const std::string& user = "u") {
  Request r;
  r.kind = Request::Kind::kConnect;
  r.user = user;
  return r;
}

Request ExecReq(uint64_t sid, const std::string& sql) {
  Request r;
  r.kind = Request::Kind::kExecScript;
  r.session_id = sid;
  r.sql = sql;
  return r;
}

TEST(Channel, ConnectExecuteDisconnect) {
  ServerFixture fx;
  auto ch = fx.Connect();
  Response conn = fx.Call(ch.get(), ConnectReq());
  ASSERT_EQ(conn.kind, Response::Kind::kConnected);
  uint64_t sid = conn.session_id;
  Response made =
      fx.Call(ch.get(), ExecReq(sid, "CREATE TABLE T (A INTEGER)"));
  EXPECT_EQ(made.kind, Response::Kind::kResults);
  Response sel = fx.Call(ch.get(), ExecReq(sid, "SELECT 1 + 1 AS X"));
  ASSERT_EQ(sel.results.size(), 1u);
  EXPECT_EQ(sel.results[0].rows[0][0].AsInt64(), 2);
  Request disc;
  disc.kind = Request::Kind::kDisconnect;
  disc.session_id = sid;
  EXPECT_EQ(fx.Call(ch.get(), disc).kind, Response::Kind::kOk);
}

TEST(Channel, ServerErrorsTravelAsErrorResponses) {
  ServerFixture fx;
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  auto r = ch->RoundTrip(ExecReq(sid, "SELECT * FROM MISSING"));
  ASSERT_TRUE(r.ok());  // transport succeeded
  EXPECT_EQ(r->kind, Response::Kind::kError);
  EXPECT_EQ(r->ToStatus().code(), StatusCode::kSqlError);
}

TEST(Channel, UnknownDsnRejected) {
  ServerFixture fx;
  EXPECT_TRUE(fx.network.Connect("nope").status().IsNotFound());
}

TEST(Channel, CrashedServerYieldsCommError) {
  ServerFixture fx;
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.server.Crash();
  auto r = ch->RoundTrip(ExecReq(sid, "SELECT 1"));
  EXPECT_TRUE(r.status().IsCommError());
  // Ping also fails while down.
  Request ping;
  ping.kind = Request::Kind::kPing;
  EXPECT_TRUE(ch->RoundTrip(ping).status().IsCommError());
}

TEST(Channel, StaleSessionAfterRestartIsNotFound) {
  ServerFixture fx;
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.server.Crash();
  ASSERT_TRUE(fx.server.Restart().ok());
  auto r = ch->RoundTrip(ExecReq(sid, "SELECT 1"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToStatus().code(), StatusCode::kNotFound);
  EXPECT_NE(r->ToStatus().message().find("session"), std::string::npos);
}

TEST(Channel, SessionIdsNeverReusedAcrossRestarts) {
  ServerFixture fx;
  auto ch = fx.Connect();
  uint64_t sid1 = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.server.Crash();
  ASSERT_TRUE(fx.server.Restart().ok());
  auto ch2 = fx.Connect();
  uint64_t sid2 = fx.Call(ch2.get(), ConnectReq()).session_id;
  EXPECT_GT(sid2, sid1);
}

TEST(Channel, EpochCountsRestarts) {
  ServerFixture fx;
  auto ch = fx.Connect();
  Request ping;
  ping.kind = Request::Kind::kPing;
  EXPECT_EQ(fx.Call(ch.get(), ping).server_epoch, 1u);
  fx.server.Crash();
  ASSERT_TRUE(fx.server.Restart().ok());
  EXPECT_EQ(fx.Call(ch.get(), ping).server_epoch, 2u);
}

TEST(Channel, InjectDropRequestsFailsBeforeServer) {
  ServerFixture fx;
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  uint64_t handled = fx.server.stats().requests_handled;
  ch->InjectDropRequests(2);
  EXPECT_TRUE(ch->RoundTrip(ExecReq(sid, "SELECT 1")).status().IsCommError());
  EXPECT_TRUE(ch->RoundTrip(ExecReq(sid, "SELECT 1")).status().IsCommError());
  EXPECT_EQ(fx.server.stats().requests_handled, handled);  // never reached it
  EXPECT_TRUE(ch->RoundTrip(ExecReq(sid, "SELECT 1")).ok());
}

TEST(Channel, InjectLoseRepliesExecutesButTimesOut) {
  ServerFixture fx;
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.Call(ch.get(), ExecReq(sid, "CREATE TABLE T (A INTEGER)"));
  ch->InjectLoseReplies(1);
  auto r = ch->RoundTrip(ExecReq(sid, "INSERT INTO T VALUES (1)"));
  EXPECT_TRUE(r.status().IsTimeout());
  // The lost-reply request DID execute — the classic ambiguity Phoenix's
  // status table resolves.
  Response check = fx.Call(ch.get(), ExecReq(sid, "SELECT COUNT(*) AS N FROM T"));
  EXPECT_EQ(check.results[0].rows[0][0].AsInt64(), 1);
}

TEST(Channel, ClientDisconnectClosesChannel) {
  ServerFixture fx;
  auto ch = fx.Connect();
  ch->Disconnect();
  EXPECT_TRUE(ch->RoundTrip(ConnectReq()).status().IsCommError());
}

TEST(Channel, StatsCountTraffic) {
  ServerFixture fx;
  auto ch = fx.Connect();
  fx.Call(ch.get(), ConnectReq());
  // One snapshot struct covers all the traffic counters.
  ChannelStats stats = ch->stats();
  EXPECT_EQ(stats.round_trips, 1u);
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_GT(stats.bytes_received, 0u);
  EXPECT_EQ(stats.faults_injected, 0u);
  EXPECT_GE(fx.server.stats().requests_handled, 1u);
}

TEST(Channel, StatsCountInjectedFaults) {
  ServerFixture fx;
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  ch->InjectDropRequests(1);
  EXPECT_TRUE(ch->RoundTrip(ExecReq(sid, "SELECT 1")).status().IsCommError());
  ch->InjectLoseReplies(1);
  EXPECT_TRUE(ch->RoundTrip(ExecReq(sid, "SELECT 1")).status().IsTimeout());
  EXPECT_EQ(ch->stats().faults_injected, 2u);
}

TEST(Channel, RequestIdAssignedAndEchoed) {
  ServerFixture fx;
  auto ch = fx.Connect();
  // Channel assigns monotonically increasing ids when the caller leaves 0,
  // and the server echoes them back — a retry resent with the same id is
  // correlatable against the original in the trace stream.
  Request ping;
  ping.kind = Request::Kind::kPing;
  auto r1 = ch->RoundTrip(ping);
  auto r2 = ch->RoundTrip(ping);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->request_id, 1u);
  EXPECT_EQ(r2->request_id, 2u);
  Request tagged;
  tagged.kind = Request::Kind::kPing;
  tagged.request_id = 777;
  auto r3 = ch->RoundTrip(tagged);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->request_id, 777u);
}

TEST(Channel, RequestIdEchoedOnServerDownError) {
  ServerFixture fx;
  auto ch = fx.Connect();
  fx.server.Crash();
  ASSERT_TRUE(fx.server.Restart().ok());
  // Even an error Response carries the echo (the "server is down" reply is
  // produced before dispatch; stale-session errors go through Dispatch).
  Request req = ExecReq(12345, "SELECT 1");
  req.request_id = 55;
  auto r = ch->RoundTrip(req);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, Response::Kind::kError);
  EXPECT_EQ(r->request_id, 55u);
}

TEST(Server, RestartWhileAliveRejected) {
  ServerFixture fx;
  EXPECT_FALSE(fx.server.Restart().ok());
}

TEST(Server, DurableDataVisibleAfterRestart) {
  ServerFixture fx;
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.Call(ch.get(), ExecReq(sid, "CREATE TABLE T (A INTEGER)"));
  fx.Call(ch.get(), ExecReq(sid, "INSERT INTO T VALUES (7)"));
  fx.server.Crash();
  ASSERT_TRUE(fx.server.Restart().ok());
  auto ch2 = fx.Connect();
  uint64_t sid2 = fx.Call(ch2.get(), ConnectReq()).session_id;
  Response r = fx.Call(ch2.get(), ExecReq(sid2, "SELECT A FROM T"));
  ASSERT_EQ(r.results[0].rows.size(), 1u);
  EXPECT_EQ(r.results[0].rows[0][0].AsInt64(), 7);
}

// ---------------------------------------------------------------------------
// PHXF stream framing: partial reads, coalesced writes, garbage resync
// ---------------------------------------------------------------------------

TEST(Framing, SingleFrameRoundTrip) {
  std::string wire = EncodeFrame(FrameType::kRequest, 42, "hello");
  EXPECT_EQ(wire.size(), kFrameHeaderSize + 5);
  FrameAssembler a;
  a.Feed(wire);
  Frame f;
  ASSERT_EQ(a.Poll(&f), FrameAssembler::Next::kFrame);
  EXPECT_EQ(f.type, FrameType::kRequest);
  EXPECT_EQ(f.corr_id, 42u);
  EXPECT_EQ(f.payload, "hello");
  EXPECT_EQ(a.Poll(&f), FrameAssembler::Next::kNeedMore);
  EXPECT_EQ(a.resync_bytes_skipped(), 0u);
}

TEST(Framing, EmptyPayloadAndLargeCorrId) {
  std::string wire = EncodeFrame(FrameType::kResponse, 0xDEADBEEFCAFEF00Dull, "");
  FrameAssembler a;
  a.Feed(wire);
  Frame f;
  ASSERT_EQ(a.Poll(&f), FrameAssembler::Next::kFrame);
  EXPECT_EQ(f.corr_id, 0xDEADBEEFCAFEF00Dull);
  EXPECT_TRUE(f.payload.empty());
}

TEST(Framing, PartialHeaderByteAtATime) {
  // One send arriving as N one-byte reads: no frame until the last byte.
  std::string wire = EncodeFrame(FrameType::kBatchRequest, 7, "payload");
  FrameAssembler a;
  Frame f;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    a.Feed(wire.data() + i, 1);
    ASSERT_EQ(a.Poll(&f), FrameAssembler::Next::kNeedMore) << "at byte " << i;
  }
  a.Feed(wire.data() + wire.size() - 1, 1);
  ASSERT_EQ(a.Poll(&f), FrameAssembler::Next::kFrame);
  EXPECT_EQ(f.type, FrameType::kBatchRequest);
  EXPECT_EQ(f.payload, "payload");
  EXPECT_EQ(a.resync_bytes_skipped(), 0u);
}

TEST(Framing, CoalescedFramesDrainInOrder) {
  // Three sends arriving as one read — including batch frames, whose PHXB
  // payload bytes must come through untouched.
  BatchRequest batch;
  Request r1;
  r1.kind = Request::Kind::kPing;
  r1.request_id = 1;
  batch.requests.push_back(r1);
  std::string wire = EncodeFrame(FrameType::kRequest, 1, "alpha");
  wire += EncodeFrame(FrameType::kBatchRequest, 2, batch.Encode());
  wire += EncodeFrame(FrameType::kBatchResponse, 3, "gamma");
  FrameAssembler a;
  a.Feed(wire);
  Frame f;
  ASSERT_EQ(a.Poll(&f), FrameAssembler::Next::kFrame);
  EXPECT_EQ(f.corr_id, 1u);
  EXPECT_EQ(f.payload, "alpha");
  ASSERT_EQ(a.Poll(&f), FrameAssembler::Next::kFrame);
  EXPECT_EQ(f.type, FrameType::kBatchRequest);
  auto decoded = BatchRequest::Decode(f.payload);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->requests.size(), 1u);
  EXPECT_EQ(decoded->requests[0].kind, Request::Kind::kPing);
  ASSERT_EQ(a.Poll(&f), FrameAssembler::Next::kFrame);
  EXPECT_EQ(f.corr_id, 3u);
  EXPECT_EQ(a.Poll(&f), FrameAssembler::Next::kNeedMore);
}

TEST(Framing, SplitMidPayloadAcrossFeeds) {
  std::string wire = EncodeFrame(FrameType::kResponse, 9, std::string(300, 'x'));
  FrameAssembler a;
  Frame f;
  a.Feed(wire.substr(0, kFrameHeaderSize + 100));
  ASSERT_EQ(a.Poll(&f), FrameAssembler::Next::kNeedMore);
  a.Feed(wire.substr(kFrameHeaderSize + 100));
  ASSERT_EQ(a.Poll(&f), FrameAssembler::Next::kFrame);
  EXPECT_EQ(f.payload.size(), 300u);
}

TEST(Framing, OversizedFrameIsFatal) {
  // A valid magic + type demanding an absurd payload is a poisoned stream,
  // not a resync opportunity.
  FrameAssembler a(/*max_payload=*/64);
  a.Feed(EncodeFrame(FrameType::kRequest, 5, std::string(65, 'x')));
  Frame f;
  ASSERT_EQ(a.Poll(&f), FrameAssembler::Next::kError);
  EXPECT_NE(a.error().find("oversized"), std::string::npos);
  // The assembler stays dead even if clean bytes follow.
  a.Feed(EncodeFrame(FrameType::kRequest, 6, "ok"));
  EXPECT_EQ(a.Poll(&f), FrameAssembler::Next::kError);
}

TEST(Framing, GarbagePrefixResync) {
  // The tail of a peer's partial pre-crash write, then a clean frame: the
  // reader slides past the garbage and recovers the stream.
  std::string garbage = "\x01\x02partial-frame-tail\xff\xfe";
  std::string wire = garbage + EncodeFrame(FrameType::kResponse, 11, "clean");
  FrameAssembler a;
  a.Feed(wire);
  Frame f;
  ASSERT_EQ(a.Poll(&f), FrameAssembler::Next::kFrame);
  EXPECT_EQ(f.corr_id, 11u);
  EXPECT_EQ(f.payload, "clean");
  EXPECT_EQ(a.resync_bytes_skipped(), garbage.size());
}

TEST(Framing, GarbageBetweenFramesResync) {
  std::string wire = EncodeFrame(FrameType::kRequest, 1, "a");
  wire += "JUNKJUNK";
  wire += EncodeFrame(FrameType::kRequest, 2, "b");
  FrameAssembler a;
  a.Feed(wire);
  Frame f;
  ASSERT_EQ(a.Poll(&f), FrameAssembler::Next::kFrame);
  EXPECT_EQ(f.payload, "a");
  ASSERT_EQ(a.Poll(&f), FrameAssembler::Next::kFrame);
  EXPECT_EQ(f.payload, "b");
  EXPECT_EQ(a.resync_bytes_skipped(), 8u);
}

TEST(Framing, BadTypeByteIsGarbageNotFatal) {
  // Correct magic but invalid type: cannot be a frame start; resync, since
  // the magic may be payload bytes that merely look frame-ish.
  std::string bogus = EncodeFrame(FrameType::kRequest, 3, "zzz");
  bogus[4] = 99;  // corrupt the type byte
  std::string wire = bogus + EncodeFrame(FrameType::kResponse, 4, "real");
  FrameAssembler a;
  a.Feed(wire);
  Frame f;
  ASSERT_EQ(a.Poll(&f), FrameAssembler::Next::kFrame);
  EXPECT_EQ(f.corr_id, 4u);
  EXPECT_EQ(f.payload, "real");
  EXPECT_GT(a.resync_bytes_skipped(), 0u);
}

// ---------------------------------------------------------------------------
// SocketChannel <-> SocketServer over a real Unix-domain stream
// ---------------------------------------------------------------------------

std::atomic<int> g_sock_seq{0};

/// In-process DbServer behind a real Unix socket. `ok == false` means the
/// sandbox denies AF_UNIX sockets entirely; tests skip.
struct SocketFixture {
  storage::SimDisk disk;
  DbServer server{&disk};
  SocketServer sock{&server};
  Network network;
  std::string path;
  bool ok = false;
  SocketFixture() {
    path = "/tmp/phx_net_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(g_sock_seq.fetch_add(1)) + ".sock";
    EXPECT_TRUE(server.Start().ok());
    if (!sock.Start("unix:" + path).ok()) return;
    network.RegisterRemote("db", sock.endpoint());
    ok = true;
  }
  ~SocketFixture() {
    sock.Shutdown();
    ::unlink(path.c_str());
  }
  std::unique_ptr<Channel> Connect() {
    auto c = network.Connect("db");
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return c.ok() ? c.take() : nullptr;
  }
  Response Call(Channel* ch, const Request& req) {
    auto r = ch->RoundTrip(req);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.take() : Response{};
  }
};

#define SKIP_IF_NO_SOCKETS(fx) \
  if (!(fx).ok) GTEST_SKIP() << "unix-domain sockets unavailable here"

TEST(SocketTransport, ConnectExecuteOverUnixSocket) {
  SocketFixture fx;
  SKIP_IF_NO_SOCKETS(fx);
  auto ch = fx.Connect();
  Response conn = fx.Call(ch.get(), ConnectReq());
  ASSERT_EQ(conn.kind, Response::Kind::kConnected);
  uint64_t sid = conn.session_id;
  fx.Call(ch.get(), ExecReq(sid, "CREATE TABLE T (A INTEGER)"));
  fx.Call(ch.get(), ExecReq(sid, "INSERT INTO T VALUES (5)"));
  Response sel = fx.Call(ch.get(), ExecReq(sid, "SELECT A FROM T"));
  ASSERT_EQ(sel.results.size(), 1u);
  ASSERT_EQ(sel.results[0].rows.size(), 1u);
  EXPECT_EQ(sel.results[0].rows[0][0].AsInt64(), 5);
  EXPECT_GT(ch->stats().bytes_sent, 0u);
  EXPECT_GT(ch->stats().bytes_received, 0u);
}

TEST(SocketTransport, BatchRoundTripOverSocket) {
  SocketFixture fx;
  SKIP_IF_NO_SOCKETS(fx);
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.Call(ch.get(), ExecReq(sid, "CREATE TABLE B (A INTEGER)"));
  std::vector<Request> reqs;
  reqs.push_back(ExecReq(sid, "INSERT INTO B VALUES (1)"));
  reqs.push_back(ExecReq(sid, "INSERT INTO B VALUES (2)"));
  reqs.push_back(ExecReq(sid, "SELECT COUNT(*) AS C FROM B"));
  auto replies = ch->RoundTripBatch(std::move(reqs));
  ASSERT_TRUE(replies.ok()) << replies.status().ToString();
  ASSERT_EQ(replies->size(), 3u);
  EXPECT_EQ((*replies)[0].kind, Response::Kind::kResults);
  EXPECT_EQ((*replies)[2].results[0].rows[0][0].AsInt64(), 2);
}

TEST(SocketTransport, ConcurrentRoundTripsDemuxByCorrelationId) {
  SocketFixture fx;
  SKIP_IF_NO_SOCKETS(fx);
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.Call(ch.get(), ExecReq(sid, "CREATE TABLE C (A INTEGER)"));
  std::vector<std::future<Result<Response>>> futs;
  for (int i = 0; i < 16; ++i) {
    futs.push_back(ch->RoundTripAsync(
        ExecReq(sid, "INSERT INTO C VALUES (" + std::to_string(i) + ")")));
  }
  for (auto& f : futs) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->kind, Response::Kind::kResults);
  }
  Response sel = fx.Call(ch.get(), ExecReq(sid, "SELECT COUNT(*) AS C FROM C"));
  EXPECT_EQ(sel.results[0].rows[0][0].AsInt64(), 16);
}

TEST(SocketTransport, DropRequestFailsBeforeTheWire) {
  SocketFixture fx;
  SKIP_IF_NO_SOCKETS(fx);
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.Call(ch.get(), ExecReq(sid, "CREATE TABLE D (A INTEGER)"));
  ch->InjectDropRequests(1);
  auto r = ch->RoundTrip(ExecReq(sid, "INSERT INTO D VALUES (1)"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCommError());
  // The channel survives a dropped request, and the insert never happened.
  Response sel = fx.Call(ch.get(), ExecReq(sid, "SELECT COUNT(*) AS C FROM D"));
  EXPECT_EQ(sel.results[0].rows[0][0].AsInt64(), 0);
}

TEST(SocketTransport, LoseReplyExecutesButTimesOut) {
  SocketFixture fx;
  SKIP_IF_NO_SOCKETS(fx);
  fx.network.config()->rpc_timeout_ms = 500;
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.Call(ch.get(), ExecReq(sid, "CREATE TABLE L (A INTEGER)"));
  ch->InjectLoseReplies(1);
  auto r = ch->RoundTrip(ExecReq(sid, "INSERT INTO L VALUES (1)"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimeout()) << r.status().ToString();
  // "Reply lost" — the request DID execute server-side.
  Response sel = fx.Call(ch.get(), ExecReq(sid, "SELECT COUNT(*) AS C FROM L"));
  EXPECT_EQ(sel.results[0].rows[0][0].AsInt64(), 1);
}

TEST(SocketTransport, ServerDownRejectionIsCommErrorEvenUnderLoseReply) {
  // Satellite regression: "reply lost" must not shadow "server down". With a
  // lose-reply token claimed, a crashed server's unexecuted-intake rejection
  // still surfaces as kCommError (the request never ran; claiming kTimeout
  // would make Phoenix probe the status table for a commit that was never
  // attempted).
  SocketFixture fx;
  SKIP_IF_NO_SOCKETS(fx);
  fx.network.config()->rpc_timeout_ms = 30000;  // a timeout would hang: fail
  auto ch = fx.Connect();
  uint64_t sid = fx.Call(ch.get(), ConnectReq()).session_id;
  fx.server.Crash();
  ch->InjectLoseReplies(1);
  auto r = ch->RoundTrip(ExecReq(sid, "INSERT INTO X VALUES (1)"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCommError()) << r.status().ToString();
}

TEST(SocketTransport, ServerShutdownFailsRoundTripsCommError) {
  SocketFixture fx;
  SKIP_IF_NO_SOCKETS(fx);
  auto ch = fx.Connect();
  fx.Call(ch.get(), ConnectReq());
  fx.sock.Shutdown();
  // EOF → kCommError (connection dead), never kTimeout (reply lost).
  auto r = ch->RoundTrip(ConnectReq());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCommError()) << r.status().ToString();
}

TEST(SocketTransport, StaleSocketFileReplacedOnRestart) {
  // A SIGKILLed phoenixd leaves its socket file behind; the reborn listener
  // must bind over it rather than fail with EADDRINUSE.
  SocketFixture fx;
  SKIP_IF_NO_SOCKETS(fx);
  fx.sock.Shutdown();
  storage::SimDisk disk2;
  DbServer server2(&disk2);
  ASSERT_TRUE(server2.Start().ok());
  SocketServer sock2(&server2);
  // Recreate a stale file at the same path (Shutdown unlinked the real one).
  { std::FILE* stale = std::fopen(fx.path.c_str(), "w"); std::fclose(stale); }
  ASSERT_TRUE(sock2.Start("unix:" + fx.path).ok());
  Network net2;
  net2.RegisterRemote("db2", sock2.endpoint());
  auto ch = net2.Connect("db2");
  ASSERT_TRUE(ch.ok());
  auto r = ch.value()->RoundTrip(ConnectReq());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().kind, Response::Kind::kConnected);
  sock2.Shutdown();
}

TEST(SocketTransport, AdminRequestRejectedWithoutHook) {
  SocketFixture fx;
  SKIP_IF_NO_SOCKETS(fx);
  auto ch = fx.Connect();
  Request req;
  req.kind = Request::Kind::kAdmin;
  req.name = "phx.rendezvous";
  req.value = "wal_sync:1";
  auto r = ch->RoundTrip(req);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, Response::Kind::kError);
}

}  // namespace
}  // namespace phoenix::net
