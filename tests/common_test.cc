// Unit tests for the common kernel: Status/Result, Value semantics, Schema
// coercion, the byte codec, dates, and the deterministic Rng.

#include <set>

#include "common/codec.h"
#include "common/rng.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

#include "gtest/gtest.h"

namespace phoenix {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::CommError("connection reset");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCommError());
  EXPECT_EQ(s.code(), StatusCode::kCommError);
  EXPECT_EQ(s.ToString(), "CommError: connection reset");
}

TEST(Status, PredicatesDiscriminate) {
  EXPECT_TRUE(Status::Timeout("t").IsTimeout());
  EXPECT_FALSE(Status::Timeout("t").IsCommError());
  EXPECT_TRUE(Status::EndOfData().IsEndOfData());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsStatus) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PHX_ASSIGN_OR_RETURN(int h, Half(x));
  PHX_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(Result, MacrosPropagate) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(Value, NullHandling) {
  Value v = Value::Null(DataType::kString);
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kString);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(Value, NumericCoercionInComparison) {
  EXPECT_EQ(Value::Int32(5).Compare(Value::Int64(5)), 0);
  EXPECT_EQ(Value::Int32(5).Compare(Value::Double(5.0)), 0);
  EXPECT_LT(Value::Int64(4).Compare(Value::Double(4.5)), 0);
  EXPECT_GT(Value::Double(4.6).Compare(Value::Int32(4)), 0);
}

TEST(Value, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int32(-1000000)), 0);
  EXPECT_GT(Value::Int32(0).Compare(Value::Null()), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null(DataType::kString)), 0);
}

TEST(Value, StringComparison) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(Value, LargeInt64ComparisonIsExact) {
  // Values that would collide if compared as doubles.
  int64_t a = (1LL << 60) + 1;
  int64_t b = (1LL << 60) + 2;
  EXPECT_LT(Value::Int64(a).Compare(Value::Int64(b)), 0);
}

TEST(Value, HashConsistentWithEqualityAcrossNumericTypes) {
  EXPECT_EQ(Value::Int32(7).Hash(), Value::Int64(7).Hash());
  EXPECT_EQ(Value::Int64(7).Hash(), Value::Double(7.0).Hash());
}

TEST(Value, CastToWidens) {
  auto d = Value::Int32(3).CastTo(DataType::kDouble);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->AsDouble(), 3.0);
  auto i = Value::Double(3.9).CastTo(DataType::kInt64);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->AsInt64(), 3);
}

TEST(Value, CastStringToDate) {
  auto v = Value::String("1995-03-15").CastTo(DataType::kDate);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(FormatDate(v->AsInt32()), "1995-03-15");
}

TEST(Value, CastFailsForIncompatible) {
  EXPECT_FALSE(Value::String("abc").CastTo(DataType::kDouble).ok());
  EXPECT_FALSE(Value::String("not-a-date").CastTo(DataType::kDate).ok());
}

TEST(Value, ToStringRendersSqlLiterals) {
  EXPECT_EQ(Value::Int64(42).ToString(), "42");
  EXPECT_EQ(Value::Bool(true).ToString(), "TRUE");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Date(0).ToString(), "DATE '1970-01-01'");
}

// ---------------------------------------------------------------------------
// Dates
// ---------------------------------------------------------------------------

TEST(Date, KnownAnchors) {
  EXPECT_EQ(FormatDate(0), "1970-01-01");
  auto d = ParseDate("1970-01-01");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 0);
  // 1998-09-02 is TPC-H Q1's cutoff; day number 10471.
  auto q1 = ParseDate("1998-09-02");
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(FormatDate(*q1), "1998-09-02");
}

TEST(Date, LeapYearHandling) {
  auto feb29 = ParseDate("1996-02-29");
  ASSERT_TRUE(feb29.ok());
  EXPECT_EQ(FormatDate(*feb29), "1996-02-29");
  auto mar1 = ParseDate("1996-03-01");
  ASSERT_TRUE(mar1.ok());
  EXPECT_EQ(*mar1 - *feb29, 1);
}

TEST(Date, RejectsGarbage) {
  EXPECT_FALSE(ParseDate("hello").ok());
  EXPECT_FALSE(ParseDate("1995-13-01").ok());
  EXPECT_FALSE(ParseDate("1995-00-10").ok());
}

// Property: round trip over a broad day range, including pre-1970.
TEST(Date, RoundTripProperty) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    int32_t day = static_cast<int32_t>(rng.NextRange(-20000, 40000));
    auto back = ParseDate(FormatDate(day));
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(*back, day) << FormatDate(day);
  }
}

// Property: consecutive day numbers format to strictly increasing dates.
TEST(Date, MonotoneProperty) {
  std::string prev = FormatDate(-1000);
  for (int32_t d = -999; d < 3000; ++d) {
    std::string cur = FormatDate(d);
    ASSERT_LT(prev, cur);
    prev = cur;
  }
}

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

Schema TwoColumnSchema() {
  Schema s;
  s.AddColumn(Column{"ID", DataType::kInt32, false});
  s.AddColumn(Column{"NAME", DataType::kString, true});
  return s;
}

TEST(Schema, FindColumnIsCaseInsensitive) {
  Schema s = TwoColumnSchema();
  EXPECT_EQ(s.FindColumn("id"), 0);
  EXPECT_EQ(s.FindColumn("Name"), 1);
  EXPECT_EQ(s.FindColumn("missing"), -1);
}

TEST(Schema, CoerceRowCastsAndChecksNulls) {
  Schema s = TwoColumnSchema();
  Row ok{Value::Int64(7), Value::Null()};
  ASSERT_TRUE(s.CoerceRow(&ok).ok());
  EXPECT_EQ(ok[0].type(), DataType::kInt32);

  Row bad_null{Value::Null(), Value::String("x")};
  EXPECT_EQ(s.CoerceRow(&bad_null).code(), StatusCode::kConstraint);

  Row bad_arity{Value::Int32(1)};
  EXPECT_EQ(s.CoerceRow(&bad_arity).code(), StatusCode::kSqlError);
}

TEST(Schema, ToStringListsColumns) {
  EXPECT_EQ(TwoColumnSchema().ToString(),
            "(ID INTEGER NOT NULL, NAME VARCHAR)");
}

TEST(Ident, CaseInsensitiveEquality) {
  EXPECT_TRUE(IdentEquals("lineitem", "LINEITEM"));
  EXPECT_FALSE(IdentEquals("a", "ab"));
  EXPECT_EQ(IdentUpper("MixedCase_1"), "MIXEDCASE_1");
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(Codec, ScalarRoundTrip) {
  Encoder enc;
  enc.PutU8(200);
  enc.PutU32(123456789);
  enc.PutU64(0xDEADBEEFCAFEBABEull);
  enc.PutI64(-42);
  enc.PutDouble(3.14159);
  enc.PutString("hello");
  enc.PutBool(true);
  Decoder dec(enc.data());
  EXPECT_EQ(dec.GetU8().value(), 200);
  EXPECT_EQ(dec.GetU32().value(), 123456789u);
  EXPECT_EQ(dec.GetU64().value(), 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(dec.GetI64().value(), -42);
  EXPECT_DOUBLE_EQ(dec.GetDouble().value(), 3.14159);
  EXPECT_EQ(dec.GetString().value(), "hello");
  EXPECT_TRUE(dec.GetBool().value());
  EXPECT_TRUE(dec.AtEnd());
}

TEST(Codec, TruncatedInputFailsGracefully) {
  Encoder enc;
  enc.PutU64(7);
  Decoder dec(enc.data().data(), 3);  // cut mid-integer
  EXPECT_FALSE(dec.GetU64().ok());
}

TEST(Codec, StringLengthBeyondInputFails) {
  Encoder enc;
  enc.PutU32(1000);  // claims 1000 bytes follow
  Decoder dec(enc.data());
  EXPECT_FALSE(dec.GetString().ok());
}

Value RandomValue(Rng* rng) {
  switch (rng->NextBelow(7)) {
    case 0: return Value::Null(static_cast<DataType>(rng->NextBelow(6)));
    case 1: return Value::Bool(rng->NextBool());
    case 2: return Value::Int32(static_cast<int32_t>(rng->Next()));
    case 3: return Value::Int64(static_cast<int64_t>(rng->Next()));
    case 4: return Value::Double(rng->NextDouble() * 1e6 - 5e5);
    case 5: return Value::String(rng->NextString(rng->NextBelow(40)));
    default: return Value::Date(static_cast<int32_t>(rng->NextRange(0, 30000)));
  }
}

// Property: arbitrary rows survive an encode/decode round trip exactly.
TEST(Codec, RowRoundTripProperty) {
  Rng rng(99);
  for (int iter = 0; iter < 500; ++iter) {
    Row row;
    size_t n = rng.NextBelow(12);
    for (size_t i = 0; i < n; ++i) row.push_back(RandomValue(&rng));
    Encoder enc;
    enc.PutRow(row);
    Decoder dec(enc.data());
    auto back = dec.GetRow();
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back->size(), row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      ASSERT_EQ(row[i].is_null(), (*back)[i].is_null());
      ASSERT_EQ(row[i].type(), (*back)[i].type());
      if (!row[i].is_null()) {
        ASSERT_EQ(row[i].Compare((*back)[i]), 0) << row[i].ToString();
      }
    }
  }
}

TEST(Codec, SchemaRoundTrip) {
  Schema s;
  s.AddColumn(Column{"A", DataType::kInt64, false});
  s.AddColumn(Column{"B_NAME", DataType::kString, true});
  s.AddColumn(Column{"C", DataType::kDate, true});
  Encoder enc;
  enc.PutSchema(s);
  Decoder dec(enc.data());
  auto back = dec.GetSchema();
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(s == *back);
}

// ---------------------------------------------------------------------------
// Rng / StopWatch
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, RangesRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextRange(-3, 9);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 9);
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(StopWatch, MeasuresElapsed) {
  StopWatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(w.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace phoenix
