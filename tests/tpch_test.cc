// TPC-H-lite workload: population invariants, query plausibility, refresh
// functions, native-vs-Phoenix result equality, and crash-under-workload.

#include "tpch/dbgen.h"

#include "core/phoenix_driver_manager.h"
#include "test_util.h"
#include "tpch/power_test.h"
#include "tpch/queries.h"
#include "tpch/refresh.h"
#include "tpch/schema.h"
#include "sql/parser.h"

namespace phoenix::tpch {
namespace {

using core::PhoenixDriverManager;
using odbc::DriverManager;
using odbc::Hdbc;
using odbc::Henv;
using odbc::SqlReturn;
using testutil::MustQuery;
using testutil::TestCluster;

class TpchTest : public ::testing::Test {
 protected:
  static constexpr double kSf = 0.5;

  void SetUp() override {
    dm_ = std::make_unique<DriverManager>(&cluster_.network);
    env_ = dm_->AllocEnv();
    dbc_ = dm_->AllocConnect(env_);
    ASSERT_EQ(dm_->Connect(dbc_, "testdb", "loader"), SqlReturn::kSuccess);
    scale_.sf = kSf;
    auto st = Populate(dm_.get(), dbc_, scale_);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  int64_t Rows(const std::string& table) {
    auto r = CountRows(dm_.get(), dbc_, table);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : -1;
  }

  TestCluster cluster_;
  TpchScale scale_;
  std::unique_ptr<DriverManager> dm_;
  Henv* env_ = nullptr;
  Hdbc* dbc_ = nullptr;
};

TEST_F(TpchTest, PopulationMatchesScale) {
  EXPECT_EQ(Rows("REGION"), scale_.regions());
  EXPECT_EQ(Rows("NATION"), scale_.nations());
  EXPECT_EQ(Rows("SUPPLIER"), scale_.suppliers());
  EXPECT_EQ(Rows("PART"), scale_.parts());
  EXPECT_EQ(Rows("PARTSUPP"), scale_.parts() * scale_.suppliers_per_part());
  EXPECT_EQ(Rows("CUSTOMER"), scale_.customers());
  EXPECT_EQ(Rows("ORDERS"), scale_.total_orders());
  int64_t lineitems = Rows("LINEITEM");
  int64_t orders = Rows("ORDERS");
  EXPECT_GE(lineitems, orders);       // ≥1 item per order
  EXPECT_LE(lineitems, orders * 7);   // ≤7 items per order
  EXPECT_EQ(Rows("ORDERS_RF"), scale_.refresh_orders());
}

TEST_F(TpchTest, PopulationIsDeterministic) {
  TestCluster other;
  DriverManager dm2(&other.network);
  Hdbc* dbc2 = dm2.AllocConnect(dm2.AllocEnv());
  ASSERT_EQ(dm2.Connect(dbc2, "testdb", "loader2"), SqlReturn::kSuccess);
  ASSERT_TRUE(Populate(&dm2, dbc2, scale_).ok());
  const char* probe =
      "SELECT SUM(L_EXTENDEDPRICE) AS S, COUNT(*) AS N FROM LINEITEM";
  auto a = MustQuery(dm_.get(), dbc_, probe);
  auto b = MustQuery(&dm2, dbc2, probe);
  EXPECT_EQ(a[0][0].Compare(b[0][0]), 0);
  EXPECT_EQ(a[0][1].Compare(b[0][1]), 0);
}

TEST_F(TpchTest, EveryQueryInSuiteRuns) {
  for (const QueryDef& q : QuerySuite()) {
    auto rows = MustQuery(dm_.get(), dbc_, q.sql);
    if (q.id == "Q6" || q.id == "Q14") {
      EXPECT_EQ(rows.size(), 1u) << q.id;  // single-aggregate queries
    } else {
      EXPECT_FALSE(rows.empty()) << q.id << " returned nothing";
    }
  }
}

TEST_F(TpchTest, Q1ShapesAreSane) {
  const QueryDef& q1 = GetQuery("Q1");
  auto rows = MustQuery(dm_.get(), dbc_, q1.sql);
  // At most 4 (returnflag, linestatus) combinations: (A,F),(N,F),(N,O),(R,F).
  EXPECT_LE(rows.size(), 4u);
  EXPECT_GE(rows.size(), 3u);
  for (const Row& r : rows) {
    EXPECT_GT(r[2].AsDouble(), 0);             // SUM_QTY positive
    EXPECT_GE(r[5].AsDouble(), r[4].AsDouble());  // charge >= disc price
    EXPECT_GT(r[9].AsInt64(), 0);              // COUNT positive
  }
}

TEST_F(TpchTest, Q3RespectsLimitAndOrdering) {
  auto rows = MustQuery(dm_.get(), dbc_, GetQuery("Q3").sql);
  ASSERT_LE(rows.size(), 10u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1][1].AsDouble(), rows[i][1].AsDouble());
  }
}

TEST_F(TpchTest, Q11OrderedByValueDesc) {
  auto rows = MustQuery(dm_.get(), dbc_, GetQuery("Q11").sql);
  ASSERT_FALSE(rows.empty());
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1][1].AsDouble(), rows[i][1].AsDouble());
  }
}

TEST_F(TpchTest, RefreshFunctionsInverse) {
  int64_t orders_before = Rows("ORDERS");
  int64_t items_before = Rows("LINEITEM");
  auto rf1 = RunRF1(dm_.get(), dbc_, scale_);
  ASSERT_TRUE(rf1.ok()) << rf1.status().ToString();
  EXPECT_EQ(Rows("ORDERS"), orders_before + scale_.refresh_orders());
  EXPECT_GT(Rows("LINEITEM"), items_before);
  auto rf2 = RunRF2(dm_.get(), dbc_, scale_);
  ASSERT_TRUE(rf2.ok()) << rf2.status().ToString();
  EXPECT_EQ(*rf1, *rf2);  // RF2 removes exactly what RF1 added
  EXPECT_EQ(Rows("ORDERS"), orders_before);
  EXPECT_EQ(Rows("LINEITEM"), items_before);
}

TEST_F(TpchTest, RefreshFunctionsRepeatable) {
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(RunRF1(dm_.get(), dbc_, scale_).ok());
    ASSERT_TRUE(RunRF2(dm_.get(), dbc_, scale_).ok());
  }
  EXPECT_EQ(Rows("ORDERS"), scale_.total_orders());
}

TEST_F(TpchTest, PowerPassProducesTimings) {
  auto pass = RunPowerPass(dm_.get(), dbc_, scale_);
  ASSERT_TRUE(pass.ok()) << pass.status().ToString();
  EXPECT_EQ(pass->seconds.size(), QuerySuite().size() + 2);  // +RF1 +RF2
  EXPECT_GT(pass->query_total, 0.0);
  EXPECT_GT(pass->update_total, 0.0);
  EXPECT_GT(pass->counts.at("RF1"), 0);
}

TEST_F(TpchTest, PhoenixReturnsIdenticalQueryResults) {
  PhoenixDriverManager phoenix(&cluster_.network);
  Hdbc* pdbc = phoenix.AllocConnect(phoenix.AllocEnv());
  ASSERT_EQ(phoenix.Connect(pdbc, "testdb", "phx"), SqlReturn::kSuccess);
  for (const QueryDef& q : QuerySuite()) {
    auto native_rows = MustQuery(dm_.get(), dbc_, q.sql);
    auto phoenix_rows = MustQuery(&phoenix, pdbc, q.sql);
    ASSERT_EQ(native_rows.size(), phoenix_rows.size()) << q.id;
    for (size_t i = 0; i < native_rows.size(); ++i) {
      for (size_t j = 0; j < native_rows[i].size(); ++j) {
        ASSERT_EQ(native_rows[i][j].Compare(phoenix_rows[i][j]), 0)
            << q.id << " row " << i << " col " << j;
      }
    }
  }
  phoenix.Disconnect(pdbc);
}

TEST_F(TpchTest, PhoenixSurvivesCrashMidQ11Delivery) {
  // The paper's recovery experiment: run Q11, fetch until near the end,
  // crash the server, keep fetching.
  PhoenixDriverManager phoenix(&cluster_.network,
                               testutil::AutoRestartConfig(&cluster_.server));
  Hdbc* pdbc = phoenix.AllocConnect(phoenix.AllocEnv());
  ASSERT_EQ(phoenix.Connect(pdbc, "testdb", "phx"), SqlReturn::kSuccess);

  auto expected = MustQuery(dm_.get(), dbc_, GetQuery("Q11").sql);
  ASSERT_GT(expected.size(), 5u);

  odbc::Hstmt* stmt = phoenix.AllocStmt(pdbc);
  phoenix.SetStmtAttr(stmt, odbc::StmtAttr::kBlockSize, 2);
  ASSERT_EQ(phoenix.ExecDirect(stmt, GetQuery("Q11").sql),
            SqlReturn::kSuccess);
  std::vector<Row> got;
  size_t crash_at = expected.size() - 3;
  while (got.size() < crash_at) {
    ASSERT_EQ(phoenix.Fetch(stmt), SqlReturn::kSuccess);
    Row row;
    for (size_t c = 0; c < 2; ++c) {
      Value v;
      phoenix.GetData(stmt, c, &v);
      row.push_back(v);
    }
    got.push_back(std::move(row));
  }
  cluster_.server.Crash();
  while (phoenix.Fetch(stmt) == SqlReturn::kSuccess) {
    Row row;
    for (size_t c = 0; c < 2; ++c) {
      Value v;
      phoenix.GetData(stmt, c, &v);
      row.push_back(v);
    }
    got.push_back(std::move(row));
  }
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    for (size_t j = 0; j < 2; ++j) {
      ASSERT_EQ(got[i][j].Compare(expected[i][j]), 0) << "row " << i;
    }
  }
  EXPECT_EQ(phoenix.stats().recoveries, 1u);
  phoenix.Disconnect(pdbc);
}

TEST_F(TpchTest, SchemaDdlAllParses) {
  for (const std::string& ddl : SchemaDdl()) {
    EXPECT_TRUE(sql::Parser::ParseStatement(ddl).ok()) << ddl;
  }
  EXPECT_EQ(TableNames().size(), 10u);
}

}  // namespace
}  // namespace phoenix::tpch
