// Multi-server failover: a virtual session survives the death of its
// server by migrating to a *different* server in its group. The inproc
// suites (two DbServers over one SimDisk) run everywhere and pin the
// failure-detector sweep, the per-recovery RecoveryStats, and the
// refused-vs-timeout failure classes; the process suites kill a real
// phoenixd (idle / mid-fetch / mid-commit, unix and tcp) and assert the
// session resumes on server B with cursor position and exactly-once
// REQ_ID semantics intact. Socket-dependent tests skip gracefully when
// the binary is missing or the sandbox denies sockets (`ctest -L
// failover` selects this binary; the inproc half still runs everywhere).

#include <dirent.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "core/phoenix_driver_manager.h"
#include "net/process_server.h"
#include "obs/metrics.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "test_util.h"

namespace phoenix {
namespace {

using core::ConnState;
using core::PhoenixConfig;
using core::PhoenixDriverManager;
using odbc::Hdbc;
using odbc::Hstmt;
using odbc::SqlReturn;
using testutil::AutoRestartConfig;
using testutil::MustExec;
using testutil::MustQuery;
using testutil::TestCluster;

/// mkdtemp wrapper; removes the (flat) directory on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/phx_fo_XXXXXX";
    char* got = ::mkdtemp(tmpl);
    if (got != nullptr) path = got;
  }
  ~TempDir() {
    if (path.empty()) return;
    if (DIR* d = ::opendir(path.c_str())) {
      while (dirent* e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((path + "/" + name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(path.c_str());
  }
};

/// True when this sandbox lets us bind sockets at all.
bool SocketsAvailable(std::string* why) {
  net::Listener probe;
  Status st = probe.Listen("unix:/tmp/phx_fo_probe_" +
                           std::to_string(::getpid()) + ".sock");
  if (!st.ok()) {
    *why = "sockets unavailable here: " + st.ToString();
    return false;
  }
  probe.Close();
  return true;
}

// ---------------------------------------------------------------------------
// Refused-vs-timeout classification (the satellite bugfix's foundation).
// ---------------------------------------------------------------------------

TEST(DialClassification, MissingUnixSocketFileIsRefused) {
  std::string why;
  if (!SocketsAvailable(&why)) GTEST_SKIP() << why;
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  auto r = net::Dial("unix:" + dir.path + "/nothing_here.sock", 200);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCommError()) << r.status().ToString();
  EXPECT_TRUE(net::IsConnectionRefused(r.status())) << r.status().ToString();
}

TEST(DialClassification, ClosedTcpPortIsRefused) {
  std::string why;
  if (!SocketsAvailable(&why)) GTEST_SKIP() << why;
  // Port 1 on loopback: nothing listens, the kernel refuses instantly.
  auto r = net::Dial("tcp:127.0.0.1:1", 500);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(net::IsConnectionRefused(r.status())) << r.status().ToString();
}

TEST(DialClassification, StaleUnixSocketFileIsRefused) {
  std::string why;
  if (!SocketsAvailable(&why)) GTEST_SKIP() << why;
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  std::string path = dir.path + "/stale.sock";
  // Bind but never listen, then close: the file stays behind exactly like
  // a SIGKILLed server's socket, and connecting to it is refused.
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ::close(fd);
  auto r = net::Dial("unix:" + path, 200);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(net::IsConnectionRefused(r.status())) << r.status().ToString();
}

// ---------------------------------------------------------------------------
// Deterministic unix bind (the stale-socket Restart race, satellite 1).
// ---------------------------------------------------------------------------

TEST(UnixBind, StaleSocketFileIsReclaimed) {
  std::string why;
  if (!SocketsAvailable(&why)) GTEST_SKIP() << why;
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  std::string path = dir.path + "/srv.sock";
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ::close(fd);  // the socket file survives — a dead server's leftovers
  net::Listener reborn;
  PHX_ASSERT_OK(reborn.Listen("unix:" + path));
  // And the reclaimed address actually accepts connections.
  auto dialed = net::Dial("unix:" + path, 500);
  PHX_ASSERT_OK(dialed.status());
}

TEST(UnixBind, LiveOwnerIsNeverUnlinked) {
  std::string why;
  if (!SocketsAvailable(&why)) GTEST_SKIP() << why;
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  std::string ep = "unix:" + dir.path + "/owned.sock";
  net::Listener owner;
  PHX_ASSERT_OK(owner.Listen(ep));
  net::Listener intruder;
  Status st = intruder.Listen(ep);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("live server"), std::string::npos)
      << st.ToString();
  // The probe must not have disturbed the live owner's socket.
  auto dialed = net::Dial(ep, 500);
  PHX_ASSERT_OK(dialed.status());
}

// ---------------------------------------------------------------------------
// Inproc failover: two DbServers sharing one SimDisk (runs everywhere).
// ---------------------------------------------------------------------------

/// Two group members over the SAME durable disk, ids partitioned like
/// phoenixd partitions them ((server_id << 56) | (boot << 32)). Active-
/// passive: B is constructed but not booted until A dies.
struct InprocPair {
  storage::SimDisk disk;
  net::DbServer a;
  net::DbServer b;
  net::Network network;

  static net::ServerOptions OptsB() {
    net::ServerOptions o;
    o.first_session_id = (1ull << 56) | (1ull << 32);
    return o;
  }

  InprocPair() : a(&disk), b(&disk, OptsB()) {
    PHX_EXPECT_OK(a.Start());
    network.RegisterServer("a", &a);
    network.RegisterServer("b", &b);
  }
};

TEST(InprocFailover, SessionMigratesToSecondServerAndBack) {
  InprocPair pair;
  PhoenixConfig config;
  config.server_group = {"a", "b"};
  config.retry_wait = [] {};  // both crashes are resolved synchronously
  PhoenixDriverManager dm(&pair.network, config);
  auto* dbc = dm.AllocConnect(dm.AllocEnv());
  ASSERT_EQ(dm.Connect(dbc, "a", "app"), SqlReturn::kSuccess);
  MustExec(&dm, dbc, "CREATE TABLE T (A INTEGER PRIMARY KEY)");
  MustExec(&dm, dbc, "INSERT INTO T VALUES (1)");

  // A dies for good; B boots over the shared disk (WAL replay brings the
  // committed row back) and the sweep must land the session there.
  pair.a.Crash();
  PHX_ASSERT_OK(pair.b.Start());
  MustExec(&dm, dbc, "INSERT INTO T VALUES (2)");
  EXPECT_EQ(dm.stats().failovers, 1u);
  EXPECT_TRUE(dm.stats().last_recovery.failed_over);
  EXPECT_EQ(dm.stats().last_recovery.endpoint, "b");
  // Inproc dead servers surface resets, not refusals: the sweep walked
  // past A the slow way and the refused fast-path never fired.
  EXPECT_EQ(dm.stats().refused_skips, 0u);
  EXPECT_EQ(MustQuery(&dm, dbc, "SELECT COUNT(*) FROM T")[0][0].AsInt64(), 2);

  // Now B dies and A comes back: the sweep starts at the endpoint the
  // session is on (B), walks on, and migrates back.
  pair.b.Crash();
  PHX_ASSERT_OK(pair.a.Restart());
  MustExec(&dm, dbc, "INSERT INTO T VALUES (3)");
  EXPECT_EQ(dm.stats().failovers, 2u);
  EXPECT_EQ(dm.stats().last_recovery.endpoint, "a");
  EXPECT_EQ(MustQuery(&dm, dbc, "SELECT COUNT(*) FROM T")[0][0].AsInt64(), 3);
}

TEST(InprocFailover, CursorResumesAcrossMigration) {
  InprocPair pair;
  PhoenixConfig config;
  config.server_group = {"a", "b"};
  config.retry_wait = [] {};
  PhoenixDriverManager dm(&pair.network, config);
  auto* dbc = dm.AllocConnect(dm.AllocEnv());
  ASSERT_EQ(dm.Connect(dbc, "a", "app"), SqlReturn::kSuccess);
  MustExec(&dm, dbc, "CREATE TABLE NUMS (N INTEGER PRIMARY KEY)");
  std::string values;
  for (int i = 1; i <= 100; ++i) {
    if (i > 1) values += ", ";
    values += "(" + std::to_string(i) + ")";
  }
  MustExec(&dm, dbc, "INSERT INTO NUMS VALUES " + values);

  Hstmt* stmt = dm.AllocStmt(dbc);
  ASSERT_EQ(dm.ExecDirect(stmt, "SELECT N FROM NUMS ORDER BY N"),
            SqlReturn::kSuccess);
  for (int i = 1; i <= 40; ++i) {
    ASSERT_EQ(dm.Fetch(stmt), SqlReturn::kSuccess);
  }

  pair.a.Crash();
  PHX_ASSERT_OK(pair.b.Start());

  Value v;
  for (int i = 41; i <= 100; ++i) {
    ASSERT_EQ(dm.Fetch(stmt), SqlReturn::kSuccess) << "row " << i;
    dm.GetData(stmt, 0, &v);
    ASSERT_EQ(v.AsInt64(), i);
  }
  EXPECT_EQ(dm.Fetch(stmt), SqlReturn::kNoData);
  EXPECT_EQ(dm.stats().failovers, 1u);
  EXPECT_EQ(dm.stats().last_recovery.state_reinstalls, 1u);
  EXPECT_GT(dm.stats().last_recovery.rows_redelivered, 0u);
}

// ---------------------------------------------------------------------------
// Per-recovery-attempt stats (satellite 3): RecoveryStats resets per pass
// while the cumulative PhoenixStats fields and registry counters climb.
// ---------------------------------------------------------------------------

TEST(RecoveryStats, SecondRecoveryReportsItsOwnNumbersOnly) {
  TestCluster cluster;
  PhoenixDriverManager dm(&cluster.network,
                          AutoRestartConfig(&cluster.server));
  auto* dbc = dm.AllocConnect(dm.AllocEnv());
  ASSERT_EQ(dm.Connect(dbc, "testdb", "app"), SqlReturn::kSuccess);
  MustExec(&dm, dbc, "CREATE TABLE NUMS (N INTEGER PRIMARY KEY)");
  std::string values;
  for (int i = 1; i <= 100; ++i) {
    if (i > 1) values += ", ";
    values += "(" + std::to_string(i) + ")";
  }
  MustExec(&dm, dbc, "INSERT INTO NUMS VALUES " + values);

  auto run_cursor_through_crash = [&] {
    Hstmt* stmt = dm.AllocStmt(dbc);
    ASSERT_EQ(dm.ExecDirect(stmt, "SELECT N FROM NUMS ORDER BY N"),
              SqlReturn::kSuccess);
    for (int i = 1; i <= 40; ++i) {
      ASSERT_EQ(dm.Fetch(stmt), SqlReturn::kSuccess);
    }
    cluster.server.Crash();
    while (dm.Fetch(stmt) == SqlReturn::kSuccess) {
    }
    // Free the statement so the NEXT recovery has exactly one statement's
    // state to reinstall — the quantity the per-pass stats must isolate.
    dm.FreeStmt(stmt);
  };

  obs::MetricsSnapshot before = obs::MetricsRegistry::Default()->Snapshot();
  run_cursor_through_crash();
  ASSERT_EQ(dm.stats().recoveries, 1u);
  EXPECT_EQ(dm.stats().last_recovery.attempt, 1u);
  EXPECT_EQ(dm.stats().last_recovery.state_reinstalls, 1u);
  EXPECT_GT(dm.stats().last_recovery.reconnect_attempts, 0u);
  EXPECT_FALSE(dm.stats().last_recovery.failed_over);
  uint64_t dials_after_first = dm.stats().reconnect_attempts;

  run_cursor_through_crash();
  ASSERT_EQ(dm.stats().recoveries, 2u);
  // The bug this pins: these used to be cumulative, so a second recovery
  // of the same session reported the first one's work too.
  EXPECT_EQ(dm.stats().last_recovery.attempt, 2u);
  EXPECT_EQ(dm.stats().last_recovery.state_reinstalls, 1u);
  EXPECT_EQ(dm.stats().last_recovery.reconnect_attempts,
            dm.stats().reconnect_attempts - dials_after_first);
  // Cumulative session stats and registry counters stay monotonic.
  EXPECT_EQ(dm.stats().state_reinstalls, 2u);
  obs::MetricsSnapshot after = obs::MetricsRegistry::Default()->Snapshot();
  EXPECT_EQ(after.counter("core.state_reinstalls") -
                before.counter("core.state_reinstalls"),
            2u);
}

// ---------------------------------------------------------------------------
// Process-mode failover fixture: two phoenixd incarnations, one data dir.
// ---------------------------------------------------------------------------

/// Server A (id 0) and server B (id 1) over one shared data dir. B is
/// booted once over the still-empty dir to resolve its endpoint (tcp
/// picks a kernel port), then stopped: active-passive, at most one server
/// alive. Tests kill A and Restart B from retry_wait (or directly).
struct FailoverFixture {
  TempDir dir;
  std::unique_ptr<net::ProcessServerHandle> a;
  std::unique_ptr<net::ProcessServerHandle> b;
  net::Network network;
  std::string a_ep;
  std::string b_ep;
  bool ok = false;
  std::string skip;

  explicit FailoverFixture(const std::string& transport) {
    std::string bin = net::FindServerBinary("");
    if (bin.empty()) {
      skip = "phoenixd binary not found (set PHX_SERVER_BIN)";
      return;
    }
    if (dir.path.empty()) {
      skip = "mkdtemp failed";
      return;
    }
    net::ProcessServerOptions base;
    base.binary = bin;
    base.transport = transport;
    base.data_dir = dir.path;
    net::ProcessServerOptions bopts = base;
    bopts.server_id = 1;
    b = std::make_unique<net::ProcessServerHandle>(bopts);
    if (Status st = b->Start(); !st.ok()) {
      skip = "cannot spawn phoenixd: " + st.ToString();
      return;
    }
    b_ep = b->endpoint();
    b->Terminate(5.0);
    a = std::make_unique<net::ProcessServerHandle>(base);
    if (Status st = a->Start(); !st.ok()) {
      skip = "cannot spawn phoenixd: " + st.ToString();
      return;
    }
    a_ep = a->endpoint();
    network.config()->rpc_timeout_ms = 8000;
    network.config()->connect_timeout_ms = 4000;
    ok = true;
  }

  ~FailoverFixture() {
    if (a) a->Terminate(5.0);
    if (b) b->Terminate(5.0);
  }

  /// Phoenix config whose recovery loop brings B up once A is dead — the
  /// ops-failover a client's retry_wait hook models.
  PhoenixConfig GroupConfig(std::atomic<int>* probes) {
    PhoenixConfig config;
    config.server_group = {a_ep, b_ep};
    config.retry_wait = [this, probes] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      if (++*probes >= 3 && !a->running() && !b->running()) {
        ASSERT_TRUE(b->Restart().ok());
      }
    };
    return config;
  }

  /// Arms a rendezvous spec in server A and the parent-side kill watcher.
  void ArmKillOnA(const std::string& spec) {
    auto ch = network.Connect(a_ep);
    ASSERT_TRUE(ch.ok()) << ch.status().ToString();
    net::Request req;
    req.kind = net::Request::Kind::kAdmin;
    req.name = net::kAdminRendezvous;
    req.value = spec;
    auto resp = ch.value()->RoundTrip(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp->kind, net::Response::Kind::kOk);
    ch.value()->Disconnect();
    a->ArmKillOnRendezvous();
  }
};

#define SKIP_UNLESS_RUNNING(fx) \
  if (!(fx).ok) GTEST_SKIP() << (fx).skip

/// No duplicate REQ_ID may survive in the status table — the exactly-once
/// sentinel, asserted ACROSS the server migration.
void AssertExactlyOnce(PhoenixDriverManager* dm, Hdbc* dbc) {
  ConnState* cs = PhoenixDriverManager::conn_state(dbc);
  ASSERT_NE(cs, nullptr);
  if (!cs->status_table_created) return;
  auto rows = MustQuery(dm, dbc,
                        "SELECT REQ_ID FROM " + cs->status_table +
                            " ORDER BY REQ_ID");
  std::set<int64_t> seen;
  for (const Row& row : rows) {
    EXPECT_TRUE(seen.insert(row[0].AsInt64()).second)
        << "duplicate request id " << row[0].ToString()
        << " in the status table (double-applied request)";
  }
}

// ---------------------------------------------------------------------------
// E2E matrix: kill server A idle / mid-fetch / mid-commit, unix and tcp.
// ---------------------------------------------------------------------------

void IdleKillFailsOver(const std::string& transport) {
  FailoverFixture fx(transport);
  SKIP_UNLESS_RUNNING(fx);
  std::atomic<int> probes{0};
  PhoenixDriverManager dm(&fx.network, fx.GroupConfig(&probes));
  auto* dbc = dm.AllocConnect(dm.AllocEnv());
  ASSERT_EQ(dm.Connect(dbc, fx.a_ep, "app"), SqlReturn::kSuccess);
  MustExec(&dm, dbc, "CREATE TABLE T (A INTEGER PRIMARY KEY)");
  MustExec(&dm, dbc, "INSERT INTO T VALUES (1)");

  fx.a->Kill();

  // The next statement rides through: detection, sweep, WAL recovery on
  // B's boot, phase 1+2 on B.
  MustExec(&dm, dbc, "INSERT INTO T VALUES (2)");
  EXPECT_EQ(dm.stats().failovers, 1u);
  EXPECT_TRUE(dm.stats().last_recovery.failed_over);
  EXPECT_EQ(dm.stats().last_recovery.endpoint, fx.b_ep);
  EXPECT_TRUE(fx.b->running());
  EXPECT_EQ(MustQuery(&dm, dbc, "SELECT COUNT(*) FROM T")[0][0].AsInt64(), 2);
  AssertExactlyOnce(&dm, dbc);
}

TEST(ProcessFailover, IdleKillFailsOverUnix) { IdleKillFailsOver("unix"); }

TEST(ProcessFailover, IdleKillFailsOverTcp) { IdleKillFailsOver("tcp"); }

void MidFetchKillResumesCursorOnB(const std::string& transport) {
  FailoverFixture fx(transport);
  SKIP_UNLESS_RUNNING(fx);
  std::atomic<int> probes{0};
  PhoenixDriverManager dm(&fx.network, fx.GroupConfig(&probes));
  auto* dbc = dm.AllocConnect(dm.AllocEnv());
  ASSERT_EQ(dm.Connect(dbc, fx.a_ep, "app"), SqlReturn::kSuccess);
  MustExec(&dm, dbc, "CREATE TABLE NUMS (N INTEGER PRIMARY KEY)");
  std::string values;
  for (int i = 1; i <= 100; ++i) {
    if (i > 1) values += ", ";
    values += "(" + std::to_string(i) + ")";
  }
  MustExec(&dm, dbc, "INSERT INTO NUMS VALUES " + values);

  Hstmt* stmt = dm.AllocStmt(dbc);
  ASSERT_EQ(dm.ExecDirect(stmt, "SELECT N FROM NUMS ORDER BY N"),
            SqlReturn::kSuccess);
  for (int i = 1; i <= 40; ++i) {
    ASSERT_EQ(dm.Fetch(stmt), SqlReturn::kSuccess);
  }

  fx.a->Kill();

  // Rows past the client block buffer can only come from server B's
  // recovered persistent result table, in order, without gaps.
  Value v;
  for (int i = 41; i <= 100; ++i) {
    ASSERT_EQ(dm.Fetch(stmt), SqlReturn::kSuccess) << "row " << i;
    dm.GetData(stmt, 0, &v);
    ASSERT_EQ(v.AsInt64(), i);
  }
  EXPECT_EQ(dm.Fetch(stmt), SqlReturn::kNoData);
  EXPECT_EQ(dm.stats().failovers, 1u);
  EXPECT_EQ(dm.stats().last_recovery.endpoint, fx.b_ep);
  EXPECT_EQ(dm.stats().last_recovery.state_reinstalls, 1u);
  EXPECT_GT(dm.stats().last_recovery.rows_redelivered, 0u);

  // The migrated session keeps working for writes.
  MustExec(&dm, dbc, "INSERT INTO NUMS VALUES (101)");
  EXPECT_EQ(
      MustQuery(&dm, dbc, "SELECT COUNT(*) FROM NUMS")[0][0].AsInt64(), 101);
  AssertExactlyOnce(&dm, dbc);
}

TEST(ProcessFailover, MidFetchKillResumesCursorOnBUnix) {
  MidFetchKillResumesCursorOnB("unix");
}

TEST(ProcessFailover, MidFetchKillResumesCursorOnBTcp) {
  MidFetchKillResumesCursorOnB("tcp");
}

void MidCommitKillReplaysTxnOnB(const std::string& transport) {
  FailoverFixture fx(transport);
  SKIP_UNLESS_RUNNING(fx);
  std::atomic<int> probes{0};
  PhoenixDriverManager dm(&fx.network, fx.GroupConfig(&probes));
  auto* dbc = dm.AllocConnect(dm.AllocEnv());
  ASSERT_EQ(dm.Connect(dbc, fx.a_ep, "app"), SqlReturn::kSuccess);
  MustExec(&dm, dbc, "CREATE TABLE T (A INTEGER PRIMARY KEY)");
  MustExec(&dm, dbc, "INSERT INTO T VALUES (1)");

  MustExec(&dm, dbc, "BEGIN TRANSACTION");
  MustExec(&dm, dbc, "INSERT INTO T VALUES (2)");

  // A dies immediately before dispatching the COMMIT: the transaction is
  // rolled back with the crash and must be REPLAYED on B (BEGIN + INSERT),
  // then the resubmitted COMMIT — with a fresh marker id — lands once.
  fx.ArmKillOnA("exec:1");
  MustExec(&dm, dbc, "COMMIT");
  ASSERT_TRUE(fx.a->WaitRendezvousKill(15.0));

  EXPECT_GE(dm.stats().failovers, 1u);
  EXPECT_EQ(dm.stats().last_recovery.endpoint, fx.b_ep);
  EXPECT_GE(dm.stats().last_recovery.txn_replays, 1u);
  EXPECT_EQ(MustQuery(&dm, dbc, "SELECT COUNT(*) FROM T")[0][0].AsInt64(), 2);
  AssertExactlyOnce(&dm, dbc);
}

TEST(ProcessFailover, MidCommitKillReplaysTxnOnBUnix) {
  MidCommitKillReplaysTxnOnB("unix");
}

TEST(ProcessFailover, MidCommitKillReplaysTxnOnBTcp) {
  MidCommitKillReplaysTxnOnB("tcp");
}

// ---------------------------------------------------------------------------
// Refused fast-skip (satellite 2): an endpoint that is down from the start
// must not cost the sweep a backoff round.
// ---------------------------------------------------------------------------

void RefusedEndpointsSkipWithoutBackoff(const std::string& transport) {
  FailoverFixture fx(transport);
  SKIP_UNLESS_RUNNING(fx);
  std::string dead = transport == "tcp"
                         ? "tcp:127.0.0.1:1"
                         : "unix:" + fx.dir.path + "/never_started.sock";
  std::atomic<int> waits{0};
  PhoenixConfig config;
  // The dead endpoint sits between A and B: a sweep that treated refused
  // like timeout would burn a backoff round before ever reaching B.
  config.server_group = {fx.a_ep, dead, fx.b_ep};
  config.retry_wait = [&waits] { ++waits; };
  PhoenixDriverManager dm(&fx.network, config);
  auto* dbc = dm.AllocConnect(dm.AllocEnv());
  ASSERT_EQ(dm.Connect(dbc, fx.a_ep, "app"), SqlReturn::kSuccess);
  MustExec(&dm, dbc, "CREATE TABLE T (A INTEGER PRIMARY KEY)");
  MustExec(&dm, dbc, "INSERT INTO T VALUES (1)");

  // Successor up BEFORE the kill is noticed: round 0 of the sweep must
  // find it — A refused (dead), the dead endpoint refused, B healthy.
  fx.a->Kill();
  PHX_ASSERT_OK(fx.b->Restart());

  MustExec(&dm, dbc, "INSERT INTO T VALUES (2)");
  EXPECT_EQ(waits.load(), 0)
      << "refused endpoints burned a backoff round instead of being skipped";
  EXPECT_EQ(dm.stats().failovers, 1u);
  EXPECT_EQ(dm.stats().last_recovery.endpoint, fx.b_ep);
  EXPECT_EQ(dm.stats().last_recovery.refused_skips, 2u);
  EXPECT_EQ(dm.stats().last_recovery.reconnect_attempts, 3u);
  EXPECT_EQ(MustQuery(&dm, dbc, "SELECT COUNT(*) FROM T")[0][0].AsInt64(), 2);
}

TEST(ProcessFailover, RefusedEndpointsSkipWithoutBackoffUnix) {
  RefusedEndpointsSkipWithoutBackoff("unix");
}

TEST(ProcessFailover, RefusedEndpointsSkipWithoutBackoffTcp) {
  RefusedEndpointsSkipWithoutBackoff("tcp");
}

// ---------------------------------------------------------------------------
// Restart discipline (satellite 1 at the process level): fast SIGKILL →
// Restart cycles must rebind deterministically, and the id partition keeps
// the two servers' sessions disjoint.
// ---------------------------------------------------------------------------

TEST(ProcessFailover, FastKillRestartCyclesAlwaysRebind) {
  FailoverFixture fx("unix");
  SKIP_UNLESS_RUNNING(fx);
  // The flake this pins: SIGKILL leaves a stale socket file, and an
  // immediate Restart used to race its own unlink. Five back-to-back
  // cycles with zero delay must all rebind.
  for (int round = 0; round < 5; ++round) {
    fx.a->Kill();
    PHX_ASSERT_OK(fx.a->Restart());
    EXPECT_EQ(fx.a->endpoint(), fx.a_ep) << "round " << round;
  }
}

TEST(ProcessFailover, ServerIdsPartitionSessionIdSpace) {
  FailoverFixture fx("unix");
  SKIP_UNLESS_RUNNING(fx);
  // Sessions minted by A (id 0) and B (id 1) must come from disjoint id
  // partitions even though both servers share one data dir: the high byte
  // carries the server id.
  auto connect_sid = [&fx](const std::string& ep) -> uint64_t {
    auto ch = fx.network.Connect(ep);
    EXPECT_TRUE(ch.ok()) << ch.status().ToString();
    if (!ch.ok()) return 0;
    net::Request req;
    req.kind = net::Request::Kind::kConnect;
    req.user = "u";
    auto resp = ch.value()->RoundTrip(req);
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
    uint64_t sid = resp.ok() ? resp->session_id : 0;
    ch.value()->Disconnect();
    return sid;
  };
  uint64_t sid_a = connect_sid(fx.a_ep);
  fx.a->Kill();
  PHX_ASSERT_OK(fx.b->Restart());
  uint64_t sid_b = connect_sid(fx.b_ep);
  ASSERT_NE(sid_a, 0u);
  ASSERT_NE(sid_b, 0u);
  EXPECT_EQ(sid_a >> 56, 0u);
  EXPECT_EQ(sid_b >> 56, 1u);
  EXPECT_NE(sid_a, sid_b);
}

}  // namespace
}  // namespace phoenix
