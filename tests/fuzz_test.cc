// Robustness fuzzing: random bytes against every decoder, random text
// against the SQL front-end, and LIKE checked against a reference matcher.
// The library must never crash and never accept corrupt input silently.

#include <algorithm>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/rng.h"
#include "engine/expression.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "storage/wal.h"

#include "gtest/gtest.h"

namespace phoenix {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  std::string s;
  size_t n = rng->NextBelow(max_len);
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(rng->NextBelow(256)));
  }
  return s;
}

TEST(Fuzz, DecoderNeverCrashesOnGarbage) {
  Rng rng(0xC0DEC);
  for (int iter = 0; iter < 3000; ++iter) {
    std::string bytes = RandomBytes(&rng, 64);
    Decoder dec(bytes);
    // Exercise every getter in sequence until one fails.
    while (!dec.AtEnd()) {
      switch (rng.NextBelow(6)) {
        case 0: if (!dec.GetU8().ok()) goto next; break;
        case 1: if (!dec.GetU64().ok()) goto next; break;
        case 2: if (!dec.GetString().ok()) goto next; break;
        case 3: if (!dec.GetValue().ok()) goto next; break;
        case 4: if (!dec.GetRow().ok()) goto next; break;
        default: if (!dec.GetSchema().ok()) goto next; break;
      }
    }
  next:;
  }
  SUCCEED();
}

TEST(Fuzz, ProtocolDecodersRejectGarbageGracefully) {
  Rng rng(0xBEEF);
  int request_ok = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    std::string bytes = RandomBytes(&rng, 96);
    auto req = net::Request::Decode(bytes);
    auto resp = net::Response::Decode(bytes);
    if (req.ok()) ++request_ok;
    (void)resp;
  }
  // Nearly all random inputs must be rejected (tiny accidental accepts are
  // possible because the format is not self-describing beyond tags).
  EXPECT_LT(request_ok, 300);
}

net::Request RandomRequest(Rng* rng, uint64_t request_id) {
  net::Request req;
  req.kind = static_cast<net::Request::Kind>(rng->NextBelow(9));
  req.request_id = request_id;
  req.session_id = rng->NextBelow(100);
  req.user = rng->NextString(rng->NextBelow(8));
  req.sql = "SELECT " + std::to_string(rng->NextBelow(1000));
  req.cursor_id = rng->NextBelow(16);
  req.n = rng->NextBelow(64);
  return req;
}

TEST(Fuzz, BatchFramingRejectsGarbageBytes) {
  Rng rng(0xBA7C4);
  int request_ok = 0, response_ok = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    std::string bytes = RandomBytes(&rng, 128);
    if (net::BatchRequest::Decode(bytes).ok()) ++request_ok;
    if (net::BatchResponse::Decode(bytes).ok()) ++response_ok;
  }
  // The magic word plus strict framing means random bytes are never a batch.
  EXPECT_EQ(request_ok, 0);
  EXPECT_EQ(response_ok, 0);
}

TEST(Fuzz, BatchFramingRejectsTruncationNeverCrashes) {
  Rng rng(0x7A61);
  for (int iter = 0; iter < 400; ++iter) {
    net::BatchRequest batch;
    size_t n = 1 + rng.NextBelow(8);
    for (size_t i = 0; i < n; ++i) {
      batch.requests.push_back(RandomRequest(&rng, i + 1));
    }
    std::string bytes = batch.Encode();

    // Round trip sanity: the untouched encoding must decode losslessly.
    auto whole = net::BatchRequest::Decode(bytes);
    ASSERT_TRUE(whole.ok()) << whole.status().ToString();
    ASSERT_EQ(whole->requests.size(), n);

    // Every strict prefix must be rejected — a torn batch is never accepted.
    for (int cut = 0; cut < 8; ++cut) {
      size_t len = rng.NextBelow(bytes.size());
      auto r = net::BatchRequest::Decode(bytes.substr(0, len));
      EXPECT_FALSE(r.ok()) << "accepted a " << len << "-byte prefix of a "
                           << bytes.size() << "-byte batch";
    }

    // Trailing junk after a complete batch must also be rejected.
    auto padded = net::BatchRequest::Decode(bytes + RandomBytes(&rng, 8) + "x");
    EXPECT_FALSE(padded.ok());

    // Random single-byte corruption: reject or accept, but never crash, and
    // an accepted mutation can never smuggle in extra requests.
    std::string mutated = bytes;
    mutated[rng.NextBelow(mutated.size())] =
        static_cast<char>(rng.NextBelow(256));
    auto m = net::BatchRequest::Decode(mutated);
    if (m.ok()) {
      EXPECT_LE(m->requests.size(), n);
    }
  }
}

TEST(Fuzz, BatchFramingRejectsDuplicateRequestIds) {
  Rng rng(0xD0B1E);
  net::BatchRequest batch;
  batch.requests.push_back(RandomRequest(&rng, 7));
  batch.requests.push_back(RandomRequest(&rng, 9));
  batch.requests.push_back(RandomRequest(&rng, 7));  // duplicate
  auto r = net::BatchRequest::Decode(batch.Encode());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("duplicate request_id"),
            std::string::npos);

  // Zero means "unassigned" and may repeat freely.
  net::BatchRequest anon;
  anon.requests.push_back(RandomRequest(&rng, 0));
  anon.requests.push_back(RandomRequest(&rng, 0));
  EXPECT_TRUE(net::BatchRequest::Decode(anon.Encode()).ok());
}

TEST(Fuzz, BatchFramingRejectsBadCounts) {
  // Empty batch.
  EXPECT_FALSE(net::BatchRequest::Decode(net::BatchRequest{}.Encode()).ok());

  // Oversized count with no payload behind it: must reject on the count
  // check, not attempt a multi-gigabyte reserve.
  Encoder enc;
  enc.PutU32(net::BatchRequest::kMagic);
  enc.PutU32(net::BatchRequest::kMaxBatch + 1);
  auto r = net::BatchRequest::Decode(enc.Take());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("batch too large"), std::string::npos);
}

TEST(Fuzz, FrameAssemblerReassemblesArbitraryChunkings) {
  // Property: for any sequence of valid frames and ANY chunking of the byte
  // stream (one byte at a time, everything at once, random cuts), the
  // assembler reproduces exactly the frames that were encoded, in order,
  // with zero resync.
  Rng rng(0xF4A3E);
  for (int iter = 0; iter < 400; ++iter) {
    size_t n_frames = 1 + rng.NextBelow(6);
    std::vector<net::Frame> sent;
    std::string wire;
    for (size_t i = 0; i < n_frames; ++i) {
      net::Frame f;
      f.type = static_cast<net::FrameType>(1 + rng.NextBelow(4));
      f.corr_id = rng.Next();
      f.payload = RandomBytes(&rng, 200);  // frames carry arbitrary bytes
      wire += net::EncodeFrame(f.type, f.corr_id, f.payload);
      sent.push_back(std::move(f));
    }

    net::FrameAssembler a;
    std::vector<net::Frame> got;
    size_t pos = 0;
    while (pos < wire.size()) {
      size_t chunk = 1 + rng.NextBelow(64);
      chunk = std::min(chunk, wire.size() - pos);
      a.Feed(wire.data() + pos, chunk);
      pos += chunk;
      net::Frame f;
      while (a.Poll(&f) == net::FrameAssembler::Next::kFrame) {
        got.push_back(f);
      }
    }
    ASSERT_EQ(got.size(), sent.size()) << "iter " << iter;
    for (size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(got[i].type, sent[i].type);
      EXPECT_EQ(got[i].corr_id, sent[i].corr_id);
      EXPECT_EQ(got[i].payload, sent[i].payload);
    }
    EXPECT_EQ(a.resync_bytes_skipped(), 0u) << "iter " << iter;
  }
}

TEST(Fuzz, FrameAssemblerSurvivesGarbageInjection) {
  // Random garbage spliced between valid frames: the assembler must either
  // resync past it or (for magic-tagged oversized headers) go fatal — but
  // never crash, hang, or emit a frame that was never sent. Valid frames
  // AFTER the garbage must still be recovered whenever the stream is not
  // fatal, and garbage can only ever eat forward into later frames, never
  // resurrect earlier ones.
  Rng rng(0x6A43A6E);
  for (int iter = 0; iter < 400; ++iter) {
    std::string wire;
    size_t n_frames = 1 + rng.NextBelow(4);
    std::vector<std::string> payloads;
    for (size_t i = 0; i < n_frames; ++i) {
      std::string payload = RandomBytes(&rng, 64);
      payloads.push_back(payload);
      if (rng.NextBelow(2) == 0) {
        wire += RandomBytes(&rng, 40);  // garbage before this frame
      }
      wire += net::EncodeFrame(net::FrameType::kRequest, i + 1, payload);
    }

    net::FrameAssembler a;
    std::vector<net::Frame> got;
    bool fatal = false;
    size_t pos = 0;
    while (pos < wire.size() && !fatal) {
      size_t chunk = std::min<size_t>(1 + rng.NextBelow(48), wire.size() - pos);
      a.Feed(wire.data() + pos, chunk);
      pos += chunk;
      net::Frame f;
      for (;;) {
        auto next = a.Poll(&f);
        if (next == net::FrameAssembler::Next::kFrame) {
          got.push_back(f);
          continue;
        }
        if (next == net::FrameAssembler::Next::kError) fatal = true;
        break;
      }
    }

    // Every emitted frame must be one we actually encoded, in order: garbage
    // may swallow frames (by consuming their header bytes during resync) but
    // must never invent or reorder them.
    size_t cursor = 0;
    for (const auto& f : got) {
      bool matched = false;
      while (cursor < n_frames) {
        ++cursor;
        if (f.corr_id == cursor && f.payload == payloads[cursor - 1]) {
          matched = true;
          break;
        }
      }
      ASSERT_TRUE(matched) << "iter " << iter << ": assembler emitted a frame "
                           << "(corr_id " << f.corr_id
                           << ") that was never sent, or out of order";
    }
    if (fatal) {
      EXPECT_FALSE(a.error().empty());
    }
  }
}

TEST(Fuzz, FrameAssemblerSingleByteCorruptionNeverCrashes) {
  // Flip one byte anywhere in a two-frame stream. The assembler may emit
  // 0, 1, or 2 frames, resync, or go fatal — but never crash and never emit
  // a frame whose payload doesn't match one of the originals.
  Rng rng(0xC0A4A97);
  for (int iter = 0; iter < 600; ++iter) {
    std::string p1 = RandomBytes(&rng, 48), p2 = RandomBytes(&rng, 48);
    std::string wire = net::EncodeFrame(net::FrameType::kRequest, 1, p1) +
                       net::EncodeFrame(net::FrameType::kResponse, 2, p2);
    size_t victim = rng.NextBelow(wire.size());
    char orig = wire[victim];
    char flip;
    do {
      flip = static_cast<char>(rng.NextBelow(256));
    } while (flip == orig);
    wire[victim] = flip;
    // What each frame's payload bytes look like post-corruption (the flip may
    // have landed inside one of them).
    std::string cp1 = wire.substr(net::kFrameHeaderSize, p1.size());
    std::string cp2 = wire.substr(2 * net::kFrameHeaderSize + p1.size());

    net::FrameAssembler a;
    a.Feed(wire);
    net::Frame f;
    int emitted = 0;
    for (;;) {
      auto next = a.Poll(&f);
      if (next != net::FrameAssembler::Next::kFrame) break;
      ++emitted;
      ASSERT_LE(emitted, 2);
      // A corrupted length field can graft the two frames together, so only
      // check frames whose header survived intact.
      if (f.corr_id == 1 && f.payload.size() == p1.size()) {
        EXPECT_EQ(f.payload, cp1);
      }
      if (f.corr_id == 2 && f.payload.size() == p2.size()) {
        EXPECT_EQ(f.payload, cp2);
      }
    }
  }
}

TEST(Fuzz, WalReaderToleratesArbitraryFileContents) {
  Rng rng(0x11AB);
  for (int iter = 0; iter < 500; ++iter) {
    storage::SimDisk disk;
    ASSERT_TRUE(disk.Append("w.wal", RandomBytes(&rng, 256)).ok());
    ASSERT_TRUE(disk.Sync("w.wal").ok());
    auto records = storage::WalReader::ReadAll(disk, "w.wal");
    ASSERT_TRUE(records.ok());  // garbage = empty/short log, never an error
  }
}

TEST(Fuzz, ParserNeverCrashesOnRandomTokens) {
  Rng rng(0x9A45E);
  const char* vocab[] = {"SELECT", "FROM",  "WHERE", "INSERT", "INTO",
                         "VALUES", "(",     ")",     ",",      "*",
                         "=",      "'x'",   "1",     "2.5",    "t",
                         "a",      "AND",   "OR",    "GROUP",  "BY",
                         "ORDER",  "CASE",  "WHEN",  "THEN",   "END",
                         ";",      "@p",    "NULL",  "LIKE",   "IN"};
  for (int iter = 0; iter < 4000; ++iter) {
    std::string text;
    size_t n = 1 + rng.NextBelow(20);
    for (size_t i = 0; i < n; ++i) {
      text += vocab[rng.NextBelow(sizeof(vocab) / sizeof(vocab[0]))];
      text += " ";
    }
    auto r = sql::Parser::ParseScript(text);
    if (r.ok()) {
      // Whatever parses must re-emit parseable SQL (ToSql closure).
      for (const auto& stmt : *r) {
        auto again = sql::Parser::ParseStatement(stmt->ToSql());
        ASSERT_TRUE(again.ok()) << text << " => " << stmt->ToSql();
      }
    }
  }
}

TEST(Fuzz, LexerNeverCrashesOnRandomBytes) {
  Rng rng(0x1E4);
  for (int iter = 0; iter < 3000; ++iter) {
    auto r = sql::Lex(RandomBytes(&rng, 80));
    (void)r;
  }
  SUCCEED();
}

// Reference LIKE matcher: recursive, obviously correct, exponential — only
// for small fuzz inputs.
bool RefLike(const std::string& t, size_t ti, const std::string& p,
             size_t pi) {
  if (pi == p.size()) return ti == t.size();
  if (p[pi] == '%') {
    for (size_t skip = ti; skip <= t.size(); ++skip) {
      if (RefLike(t, skip, p, pi + 1)) return true;
    }
    return false;
  }
  if (ti == t.size()) return false;
  if (p[pi] == '_' || std::toupper(static_cast<unsigned char>(p[pi])) ==
                          std::toupper(static_cast<unsigned char>(t[ti]))) {
    return RefLike(t, ti + 1, p, pi + 1);
  }
  return false;
}

TEST(Fuzz, LikeMatchAgreesWithReferenceProperty) {
  Rng rng(0x717E);
  const char alphabet[] = {'a', 'b', '%', '_'};
  for (int iter = 0; iter < 20000; ++iter) {
    std::string text;
    for (size_t i = rng.NextBelow(8); i > 0; --i) {
      text.push_back(static_cast<char>('a' + rng.NextBelow(3)));
    }
    std::string pattern;
    for (size_t i = rng.NextBelow(8); i > 0; --i) {
      pattern.push_back(alphabet[rng.NextBelow(4)]);
    }
    ASSERT_EQ(eng::LikeMatch(text, pattern), RefLike(text, 0, pattern, 0))
        << "text='" << text << "' pattern='" << pattern << "'";
  }
}

TEST(Fuzz, ValueCastTotalityProperty) {
  Rng rng(0xCA57);
  for (int iter = 0; iter < 5000; ++iter) {
    Value v;
    switch (rng.NextBelow(6)) {
      case 0: v = Value::Null(static_cast<DataType>(rng.NextBelow(6))); break;
      case 1: v = Value::Bool(rng.NextBool()); break;
      case 2: v = Value::Int32(static_cast<int32_t>(rng.Next())); break;
      case 3: v = Value::Int64(static_cast<int64_t>(rng.Next())); break;
      case 4: v = Value::Double(rng.NextDouble() * 1e9 - 5e8); break;
      default: v = Value::String(rng.NextString(rng.NextBelow(12))); break;
    }
    DataType target = static_cast<DataType>(rng.NextBelow(6));
    auto cast = v.CastTo(target);
    if (cast.ok() && !cast->is_null()) {
      ASSERT_EQ(cast->type(), target);
    }
    // ToString never crashes and is parseable as an expression literal.
    std::string lit = v.ToString();
    auto parsed = sql::Parser::ParseExpression(lit);
    ASSERT_TRUE(parsed.ok()) << lit;
  }
}

}  // namespace
}  // namespace phoenix
