// Phoenix/ODBC in failure-free operation: transparency (identical results
// to the plain DM), materialization mechanics, temp-object redirection,
// DML wrapping, cleanup.

#include "core/phoenix_driver_manager.h"

#include "test_util.h"

namespace phoenix::core {
namespace {

using odbc::CursorMode;
using odbc::DriverManager;
using odbc::Hdbc;
using odbc::Henv;
using odbc::Hstmt;
using odbc::SqlReturn;
using odbc::StmtAttr;
using testutil::MustExec;
using testutil::MustQuery;
using testutil::TestCluster;

class PhoenixBasicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dm_ = std::make_unique<PhoenixDriverManager>(&cluster_.network);
    env_ = dm_->AllocEnv();
    dbc_ = dm_->AllocConnect(env_);
    ASSERT_EQ(dm_->Connect(dbc_, "testdb", "app"), SqlReturn::kSuccess);
    MustExec(dm_.get(), dbc_,
             "CREATE TABLE T (K INTEGER PRIMARY KEY, V VARCHAR, X DOUBLE)");
    MustExec(dm_.get(), dbc_,
             "INSERT INTO T VALUES (1, 'a', 1.5), (2, 'b', 2.5), "
             "(3, 'c', 3.5), (4, 'd', 4.5), (5, 'e', 5.5)");
    dm_->ResetStats();  // the setup INSERT was itself wrapped DML
  }

  eng::Database* ServerDb() { return cluster_.server.database(); }

  TestCluster cluster_;
  std::unique_ptr<PhoenixDriverManager> dm_;
  Henv* env_ = nullptr;
  Hdbc* dbc_ = nullptr;
};

TEST_F(PhoenixBasicTest, ConnectCreatesPrivateConnectionAndProxy) {
  // Two server sessions: the app's and Phoenix's private one.
  EXPECT_EQ(ServerDb()->num_sessions(), 2u);
  ConnState* cs = PhoenixDriverManager::conn_state(dbc_);
  ASSERT_NE(cs, nullptr);
  EXPECT_NE(ServerDb()->store()->Get(cs->proxy_table), nullptr);
  EXPECT_TRUE(ServerDb()->store()->Get(cs->proxy_table)->temporary());
}

TEST_F(PhoenixBasicTest, SelectIsMaterializedAsPersistentTable) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT K, V FROM T WHERE K <= 3"),
            SqlReturn::kSuccess);
  StmtState* vs = PhoenixDriverManager::stmt_state(stmt);
  ASSERT_NE(vs, nullptr);
  EXPECT_EQ(vs->kind, StmtState::Kind::kMaterialized);
  storage::Table* t = ServerDb()->store()->Get(vs->result_table);
  ASSERT_NE(t, nullptr);
  EXPECT_FALSE(t->temporary());  // the point: it survives crashes
  EXPECT_EQ(t->num_rows(), 3u);
  // Application sees the original metadata, not the internal table's.
  size_t cols = 0;
  dm_->NumResultCols(stmt, &cols);
  EXPECT_EQ(cols, 2u);
  Column c;
  dm_->DescribeCol(stmt, 0, &c);
  EXPECT_EQ(c.name, "K");
}

TEST_F(PhoenixBasicTest, ResultsIdenticalToNativeOdbc) {
  DriverManager native(&cluster_.network);
  Henv* nenv = native.AllocEnv();
  Hdbc* ndbc = native.AllocConnect(nenv);
  ASSERT_EQ(native.Connect(ndbc, "testdb", "native"), SqlReturn::kSuccess);

  const char* kQueries[] = {
      "SELECT * FROM T ORDER BY K",
      "SELECT V, X * 2 AS XX FROM T WHERE K % 2 = 1 ORDER BY K DESC",
      "SELECT COUNT(*) AS N, SUM(X) AS S FROM T",
      "SELECT V FROM T WHERE K BETWEEN 2 AND 4 ORDER BY V",
      "SELECT DISTINCT UPPER(V) AS U FROM T ORDER BY U",
  };
  for (const char* q : kQueries) {
    std::vector<Row> phoenix_rows = MustQuery(dm_.get(), dbc_, q);
    std::vector<Row> native_rows = MustQuery(&native, ndbc, q);
    ASSERT_EQ(phoenix_rows.size(), native_rows.size()) << q;
    for (size_t i = 0; i < native_rows.size(); ++i) {
      ASSERT_EQ(phoenix_rows[i].size(), native_rows[i].size());
      for (size_t j = 0; j < native_rows[i].size(); ++j) {
        EXPECT_EQ(phoenix_rows[i][j].Compare(native_rows[i][j]), 0)
            << q << " row " << i << " col " << j;
      }
    }
  }
  native.Disconnect(ndbc);
}

TEST_F(PhoenixBasicTest, DmlWrappedWithStatusRecord) {
  int64_t n = MustExec(dm_.get(), dbc_, "UPDATE T SET X = 0 WHERE K >= 4");
  EXPECT_EQ(n, 2);
  EXPECT_EQ(dm_->stats().dml_wrapped, 1u);
  ConnState* cs = PhoenixDriverManager::conn_state(dbc_);
  storage::Table* status = ServerDb()->store()->Get(cs->status_table);
  ASSERT_NE(status, nullptr);
  ASSERT_GE(status->num_rows(), 1u);
  // Affected count persisted server-side matches what the app saw: the
  // newest status row is this request's.
  const Row& row = status->rows().rbegin()->second;
  EXPECT_EQ(row[1].AsInt64(), 2);
}

TEST_F(PhoenixBasicTest, SelectIntoTreatedAsDml) {
  int64_t n =
      MustExec(dm_.get(), dbc_, "SELECT K, V INTO KEEP FROM T WHERE K <= 2");
  EXPECT_EQ(n, 2);
  EXPECT_EQ(dm_->stats().dml_wrapped, 1u);
  EXPECT_EQ(MustQuery(dm_.get(), dbc_, "SELECT * FROM KEEP").size(), 2u);
}

TEST_F(PhoenixBasicTest, TempTableRedirectedToPersistent) {
  MustExec(dm_.get(), dbc_, "CREATE TEMPORARY TABLE SCRATCH (A INTEGER)");
  MustExec(dm_.get(), dbc_, "INSERT INTO SCRATCH VALUES (1), (2)");
  auto rows = MustQuery(dm_.get(), dbc_, "SELECT A FROM SCRATCH ORDER BY A");
  ASSERT_EQ(rows.size(), 2u);
  // Under the covers the table is persistent with a Phoenix name; the
  // app-visible name does not exist server-side.
  ConnState* cs = PhoenixDriverManager::conn_state(dbc_);
  EXPECT_EQ(ServerDb()->store()->Get("SCRATCH"), nullptr);
  std::string actual = cs->temp_table_map.at("SCRATCH");
  ASSERT_NE(ServerDb()->store()->Get(actual), nullptr);
  EXPECT_FALSE(ServerDb()->store()->Get(actual)->temporary());
}

TEST_F(PhoenixBasicTest, HashPrefixTempTableAlsoRedirected) {
  MustExec(dm_.get(), dbc_, "CREATE TABLE #w (A INTEGER)");
  MustExec(dm_.get(), dbc_, "INSERT INTO #w VALUES (9)");
  auto rows = MustQuery(dm_.get(), dbc_, "SELECT #w.A FROM #w");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt64(), 9);
  MustExec(dm_.get(), dbc_, "DROP TABLE #w");
  ConnState* cs = PhoenixDriverManager::conn_state(dbc_);
  EXPECT_TRUE(cs->temp_table_map.empty());
}

TEST_F(PhoenixBasicTest, TempProcedureRedirected) {
  MustExec(dm_.get(), dbc_,
           "CREATE TEMPORARY PROCEDURE BUMP (@k INT) AS "
           "UPDATE T SET X = X + 1 WHERE K = @k");
  MustExec(dm_.get(), dbc_, "EXEC BUMP(1)");
  auto rows = MustQuery(dm_.get(), dbc_, "SELECT X FROM T WHERE K = 1");
  EXPECT_DOUBLE_EQ(rows[0][0].AsDouble(), 2.5);
}

TEST_F(PhoenixBasicTest, DisconnectCleansUpAllArtifacts) {
  MustQuery(dm_.get(), dbc_, "SELECT * FROM T");  // creates a result table
  MustExec(dm_.get(), dbc_, "UPDATE T SET X = 0 WHERE K = 1");  // status tbl
  MustExec(dm_.get(), dbc_, "CREATE TEMP TABLE SCRATCH (A INTEGER)");
  ASSERT_EQ(dm_->Disconnect(dbc_), SqlReturn::kSuccess);
  // Only the application's base table remains (plus engine internals).
  for (const std::string& name : ServerDb()->store()->ListNames()) {
    EXPECT_EQ(name.rfind("PHX_", 0), std::string::npos)
        << "leaked artifact: " << name;
  }
  EXPECT_EQ(ServerDb()->num_sessions(), 0u);
}

TEST_F(PhoenixBasicTest, StatementReuseDropsOldState) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT K FROM T"), SqlReturn::kSuccess);
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT V FROM T WHERE K = 1"),
            SqlReturn::kSuccess);
  ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  Value v;
  dm_->GetData(stmt, 0, &v);
  EXPECT_EQ(v.AsString(), "a");
}

TEST_F(PhoenixBasicTest, ExplicitTxnPassesThroughAndLogs) {
  MustExec(dm_.get(), dbc_, "BEGIN TRANSACTION");
  MustExec(dm_.get(), dbc_, "INSERT INTO T VALUES (6, 'f', 6.5)");
  ConnState* cs = PhoenixDriverManager::conn_state(dbc_);
  EXPECT_TRUE(cs->in_txn);
  EXPECT_EQ(cs->txn_log.size(), 1u);
  MustExec(dm_.get(), dbc_, "COMMIT");
  EXPECT_FALSE(cs->in_txn);
  EXPECT_TRUE(cs->txn_log.empty());
  EXPECT_EQ(MustQuery(dm_.get(), dbc_, "SELECT * FROM T").size(), 6u);
}

TEST_F(PhoenixBasicTest, RollbackWorksThroughPhoenix) {
  MustExec(dm_.get(), dbc_, "BEGIN");
  MustExec(dm_.get(), dbc_, "DELETE FROM T");
  MustExec(dm_.get(), dbc_, "ROLLBACK");
  EXPECT_EQ(MustQuery(dm_.get(), dbc_, "SELECT * FROM T").size(), 5u);
}

TEST_F(PhoenixBasicTest, KeysetCursorThroughPhoenix) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  dm_->SetStmtAttr(stmt, StmtAttr::kCursorMode,
                   static_cast<int64_t>(CursorMode::kKeysetCursor));
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT K, V FROM T WHERE K <= 4"),
            SqlReturn::kSuccess)
      << DriverManager::Diag(stmt).ToString();
  EXPECT_EQ(dm_->stats().keyset_cursors, 1u);
  // Key table persisted server-side.
  StmtState* vs = PhoenixDriverManager::stmt_state(stmt);
  ASSERT_NE(vs, nullptr);
  EXPECT_EQ(vs->kind, StmtState::Kind::kKeyset);
  EXPECT_EQ(ServerDb()->store()->Get(vs->result_table)->num_rows(), 4u);
  // Updates between fetches are visible (keyset property).
  ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  MustExec(dm_.get(), dbc_, "UPDATE T SET V = 'patched' WHERE K = 3");
  Value v;
  ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);  // K=2
  ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);  // K=3
  dm_->GetData(stmt, 1, &v);
  EXPECT_EQ(v.AsString(), "patched");
  ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);  // K=4
  EXPECT_EQ(dm_->Fetch(stmt), SqlReturn::kNoData);
}

TEST_F(PhoenixBasicTest, KeysetSkipsRowsDeletedMidScan) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  dm_->SetStmtAttr(stmt, StmtAttr::kCursorMode,
                   static_cast<int64_t>(CursorMode::kKeysetCursor));
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT K FROM T"), SqlReturn::kSuccess);
  ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);  // K=1
  MustExec(dm_.get(), dbc_, "DELETE FROM T WHERE K = 2");
  ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  Value v;
  dm_->GetData(stmt, 0, &v);
  EXPECT_EQ(v.AsInt64(), 3);  // 2 skipped
}

TEST_F(PhoenixBasicTest, DynamicCursorSeesInsertsInRange) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  dm_->SetStmtAttr(stmt, StmtAttr::kCursorMode,
                   static_cast<int64_t>(CursorMode::kDynamicCursor));
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT K FROM T"), SqlReturn::kSuccess)
      << DriverManager::Diag(stmt).ToString();
  EXPECT_EQ(dm_->stats().dynamic_cursors, 1u);
  ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);  // K=1
  // Delete a not-yet-delivered member and insert a row mid-range: a dynamic
  // cursor reflects both.
  MustExec(dm_.get(), dbc_, "DELETE FROM T WHERE K = 3");
  MustExec(dm_.get(), dbc_,
           "INSERT INTO T (K, V, X) VALUES (3, 'resurrected', 0.0)");
  MustExec(dm_.get(), dbc_, "DELETE FROM T WHERE K = 4");
  std::vector<int64_t> seen{1};
  while (true) {
    SqlReturn r = dm_->Fetch(stmt);
    if (r == SqlReturn::kNoData) break;
    ASSERT_EQ(r, SqlReturn::kSuccess);
    Value v;
    dm_->GetData(stmt, 0, &v);
    seen.push_back(v.AsInt64());
  }
  EXPECT_EQ(seen, (std::vector<int64_t>{1, 2, 3, 5}));
}

TEST_F(PhoenixBasicTest, DisabledPhoenixBehavesLikePlainDm) {
  PhoenixConfig off;
  off.enabled = false;
  PhoenixDriverManager plain(&cluster_.network, off);
  Henv* env = plain.AllocEnv();
  Hdbc* dbc = plain.AllocConnect(env);
  ASSERT_EQ(plain.Connect(dbc, "testdb", "x"), SqlReturn::kSuccess);
  EXPECT_EQ(PhoenixDriverManager::conn_state(dbc), nullptr);
  auto rows = MustQuery(&plain, dbc, "SELECT K FROM T ORDER BY K");
  EXPECT_EQ(rows.size(), 5u);
  EXPECT_EQ(plain.stats().materialized_results, 0u);
  plain.Disconnect(dbc);
}

TEST_F(PhoenixBasicTest, GarbageSqlPassedThroughForServerDiagnostics) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  EXPECT_EQ(dm_->ExecDirect(stmt, "COMPLETELY ~ INVALID"), SqlReturn::kError);
  EXPECT_EQ(DriverManager::Diag(stmt).code(), StatusCode::kSqlError);
}

TEST_F(PhoenixBasicTest, MultipleConnectionsGetDistinctNamespaces) {
  Hdbc* dbc2 = dm_->AllocConnect(env_);
  ASSERT_EQ(dm_->Connect(dbc2, "testdb", "app2"), SqlReturn::kSuccess);
  MustExec(dm_.get(), dbc_, "CREATE TEMP TABLE W (A INTEGER)");
  MustExec(dm_.get(), dbc2, "CREATE TEMP TABLE W (A INTEGER)");
  MustExec(dm_.get(), dbc_, "INSERT INTO W VALUES (1)");
  MustExec(dm_.get(), dbc2, "INSERT INTO W VALUES (2)");
  MustExec(dm_.get(), dbc2, "INSERT INTO W VALUES (3)");
  EXPECT_EQ(MustQuery(dm_.get(), dbc_, "SELECT * FROM W").size(), 1u);
  EXPECT_EQ(MustQuery(dm_.get(), dbc2, "SELECT * FROM W").size(), 2u);
  dm_->Disconnect(dbc2);
}

}  // namespace
}  // namespace phoenix::core
