// Parser coverage: every statement form, expression precedence, the ToSql
// round-trip property, and error reporting.

#include "sql/parser.h"

#include "gtest/gtest.h"

namespace phoenix::sql {
namespace {

std::unique_ptr<Statement> MustParse(const std::string& sql) {
  auto r = Parser::ParseStatement(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return r.ok() ? r.take() : nullptr;
}

std::unique_ptr<Expr> MustParseExpr(const std::string& text) {
  auto r = Parser::ParseExpression(text);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  return r.ok() ? r.take() : nullptr;
}

TEST(Parser, SimpleSelect) {
  auto s = MustParse("SELECT a, b FROM t WHERE a > 1");
  ASSERT_EQ(s->kind, StmtKind::kSelect);
  EXPECT_EQ(s->select->items.size(), 2u);
  EXPECT_EQ(s->select->from.size(), 1u);
  EXPECT_NE(s->select->where, nullptr);
}

TEST(Parser, SelectStarAndDistinctAndLimit) {
  auto s = MustParse("SELECT DISTINCT * FROM t LIMIT 5");
  EXPECT_TRUE(s->select->distinct);
  EXPECT_EQ(s->select->items[0].expr->kind, ExprKind::kStar);
  EXPECT_EQ(s->select->limit, 5);
}

TEST(Parser, TopIsLimitSynonym) {
  auto s = MustParse("SELECT TOP 7 a FROM t");
  EXPECT_EQ(s->select->limit, 7);
}

TEST(Parser, AliasesWithAndWithoutAs) {
  auto s = MustParse("SELECT a AS x, b y FROM t u, v AS w");
  EXPECT_EQ(s->select->items[0].alias, "x");
  EXPECT_EQ(s->select->items[1].alias, "y");
  EXPECT_EQ(s->select->from[0].alias, "u");
  EXPECT_EQ(s->select->from[1].alias, "w");
  EXPECT_EQ(s->select->from[1].BindingName(), "w");
}

TEST(Parser, ExplicitJoinsRecorded) {
  auto s = MustParse(
      "SELECT a FROM t1 JOIN t2 ON t1.id = t2.id "
      "INNER JOIN t3 ON t2.k = t3.k WHERE t3.x > 0");
  EXPECT_EQ(s->select->from.size(), 3u);
  ASSERT_EQ(s->select->joins.size(), 2u);
  EXPECT_EQ(s->select->joins[0].table_index, 1);
  EXPECT_FALSE(s->select->joins[0].left);
  EXPECT_EQ(s->select->joins[1].table_index, 2);
  EXPECT_NE(s->select->where, nullptr);
}

TEST(Parser, LeftJoinForms) {
  auto s1 = MustParse("SELECT a FROM t1 LEFT JOIN t2 ON t1.id = t2.id");
  ASSERT_EQ(s1->select->joins.size(), 1u);
  EXPECT_TRUE(s1->select->joins[0].left);
  auto s2 =
      MustParse("SELECT a FROM t1 LEFT OUTER JOIN t2 ON t1.id = t2.id");
  EXPECT_TRUE(s2->select->joins[0].left);
  // Mixed comma + left join.
  auto s3 = MustParse(
      "SELECT a FROM t1, t2 LEFT JOIN t3 ON t2.k = t3.k WHERE t1.x = t2.x");
  ASSERT_EQ(s3->select->joins.size(), 1u);
  EXPECT_EQ(s3->select->joins[0].table_index, 2);
  EXPECT_FALSE(MustParse("SELECT a FROM t1") == nullptr);
}

TEST(Parser, GroupByHavingOrderBy) {
  auto s = MustParse(
      "SELECT a, SUM(b) AS s FROM t GROUP BY a HAVING SUM(b) > 10 "
      "ORDER BY s DESC, a ASC");
  EXPECT_EQ(s->select->group_by.size(), 1u);
  EXPECT_NE(s->select->having, nullptr);
  ASSERT_EQ(s->select->order_by.size(), 2u);
  EXPECT_TRUE(s->select->order_by[0].desc);
  EXPECT_FALSE(s->select->order_by[1].desc);
}

TEST(Parser, SelectInto) {
  auto s = MustParse("SELECT a INTO t2 FROM t1");
  EXPECT_EQ(s->select->into_table, "t2");
}

TEST(Parser, InsertValuesMultiRow) {
  auto s = MustParse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_EQ(s->kind, StmtKind::kInsert);
  EXPECT_EQ(s->insert->columns.size(), 2u);
  EXPECT_EQ(s->insert->rows.size(), 2u);
}

TEST(Parser, InsertSelect) {
  auto s = MustParse("INSERT INTO t SELECT a, b FROM u WHERE a > 0");
  ASSERT_NE(s->insert->select, nullptr);
  EXPECT_TRUE(s->insert->rows.empty());
}

TEST(Parser, InsertParenthesizedSelect) {
  auto s = MustParse("INSERT INTO t (SELECT a FROM u)");
  ASSERT_NE(s->insert->select, nullptr);
}

TEST(Parser, UpdateMultipleSets) {
  auto s = MustParse("UPDATE t SET a = a + 1, b = 'z' WHERE id = 3");
  ASSERT_EQ(s->kind, StmtKind::kUpdate);
  EXPECT_EQ(s->update->sets.size(), 2u);
  EXPECT_NE(s->update->where, nullptr);
}

TEST(Parser, DeleteWithAndWithoutWhere) {
  EXPECT_NE(MustParse("DELETE FROM t WHERE a = 1")->del->where, nullptr);
  EXPECT_EQ(MustParse("DELETE FROM t")->del->where, nullptr);
}

TEST(Parser, CreateTableFull) {
  auto s = MustParse(
      "CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, name VARCHAR(30), "
      "price DECIMAL(12, 2), d DATE, PRIMARY KEY (id))");
  ASSERT_EQ(s->kind, StmtKind::kCreateTable);
  EXPECT_EQ(s->create_table->columns.size(), 4u);
  EXPECT_TRUE(s->create_table->columns[0].primary_key);
  EXPECT_TRUE(s->create_table->columns[0].not_null);
  EXPECT_EQ(s->create_table->pk_columns.size(), 1u);
  EXPECT_FALSE(s->create_table->temporary);
}

TEST(Parser, CreateTemporaryTableForms) {
  EXPECT_TRUE(MustParse("CREATE TEMPORARY TABLE t (a INT)")
                  ->create_table->temporary);
  EXPECT_TRUE(MustParse("CREATE TEMP TABLE t (a INT)")
                  ->create_table->temporary);
  EXPECT_TRUE(MustParse("CREATE TABLE #t (a INT)")->create_table->temporary);
}

TEST(Parser, DropTableIfExists) {
  auto s = MustParse("DROP TABLE IF EXISTS t");
  ASSERT_EQ(s->kind, StmtKind::kDropTable);
  EXPECT_TRUE(s->drop_table->if_exists);
}

TEST(Parser, CreateProcedureWithBody) {
  auto s = MustParse(
      "CREATE PROCEDURE p (@a INT, @name VARCHAR(20)) AS BEGIN "
      "INSERT INTO t VALUES (@a, @name); SELECT * FROM t; END");
  ASSERT_EQ(s->kind, StmtKind::kCreateProc);
  EXPECT_EQ(s->create_proc->params.size(), 2u);
  EXPECT_EQ(s->create_proc->body.size(), 2u);
}

TEST(Parser, CreateProcedureSingleStatementBody) {
  auto s = MustParse("CREATE PROC p AS DELETE FROM t");
  EXPECT_EQ(s->create_proc->body.size(), 1u);
}

TEST(Parser, ExecForms) {
  auto s1 = MustParse("EXEC p(1, 'x')");
  EXPECT_EQ(s1->exec->args.size(), 2u);
  auto s2 = MustParse("EXECUTE p 1, 'x'");
  EXPECT_EQ(s2->exec->args.size(), 2u);
  auto s3 = MustParse("EXEC p()");
  EXPECT_TRUE(s3->exec->args.empty());
  auto s4 = MustParse("EXEC p");
  EXPECT_TRUE(s4->exec->args.empty());
}

TEST(Parser, TransactionControl) {
  EXPECT_EQ(MustParse("BEGIN TRANSACTION")->kind, StmtKind::kBeginTxn);
  EXPECT_EQ(MustParse("BEGIN TRAN")->kind, StmtKind::kBeginTxn);
  EXPECT_EQ(MustParse("BEGIN WORK")->kind, StmtKind::kBeginTxn);
  EXPECT_EQ(MustParse("BEGIN")->kind, StmtKind::kBeginTxn);
  EXPECT_EQ(MustParse("COMMIT")->kind, StmtKind::kCommit);
  EXPECT_EQ(MustParse("ROLLBACK TRANSACTION")->kind, StmtKind::kRollback);
}

TEST(Parser, ShowStatements) {
  auto s1 = MustParse("SHOW KEYS lineitem");
  ASSERT_EQ(s1->kind, StmtKind::kShow);
  EXPECT_EQ(s1->show->what, ShowStmt::What::kKeys);
  EXPECT_EQ(s1->show->table, "lineitem");
  auto s2 = MustParse("SHOW TABLES");
  EXPECT_EQ(s2->show->what, ShowStmt::What::kTables);
}

TEST(Parser, ScriptSplitsOnSemicolons) {
  auto r = Parser::ParseScript("SELECT 1; ; SELECT 2;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(Parser, EmptyScriptFails) {
  EXPECT_FALSE(Parser::ParseScript("").ok());
  EXPECT_FALSE(Parser::ParseScript(" ; ; ").ok());
}

TEST(Parser, ParseStatementRejectsBatch) {
  EXPECT_FALSE(Parser::ParseStatement("SELECT 1; SELECT 2").ok());
}

// ---- expressions ----------------------------------------------------------

TEST(Parser, ArithmeticPrecedence) {
  auto e = MustParseExpr("1 + 2 * 3");
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->bin_op, BinOp::kAdd);
  EXPECT_EQ(e->right->bin_op, BinOp::kMul);
}

TEST(Parser, BooleanPrecedence) {
  auto e = MustParseExpr("a = 1 OR b = 2 AND c = 3");
  EXPECT_EQ(e->bin_op, BinOp::kOr);
  EXPECT_EQ(e->right->bin_op, BinOp::kAnd);
}

TEST(Parser, NotBindsTighterThanAnd) {
  auto e = MustParseExpr("NOT a AND b");
  EXPECT_EQ(e->bin_op, BinOp::kAnd);
  EXPECT_EQ(e->left->kind, ExprKind::kUnary);
}

TEST(Parser, ComparisonSuffixForms) {
  auto between = MustParseExpr("x BETWEEN 1 AND 10");
  EXPECT_EQ(between->kind, ExprKind::kBetween);
  auto not_between = MustParseExpr("x NOT BETWEEN 1 AND 10");
  EXPECT_TRUE(not_between->negated);
  auto in = MustParseExpr("x IN (1, 2, 3)");
  EXPECT_EQ(in->kind, ExprKind::kInList);
  EXPECT_EQ(in->args.size(), 3u);
  auto not_in = MustParseExpr("x NOT IN (1)");
  EXPECT_TRUE(not_in->negated);
  auto like = MustParseExpr("s LIKE 'PROMO%'");
  EXPECT_EQ(like->bin_op, BinOp::kLike);
  auto not_like = MustParseExpr("s NOT LIKE '%x%'");
  EXPECT_EQ(not_like->bin_op, BinOp::kNotLike);
  auto is_null = MustParseExpr("x IS NULL");
  EXPECT_EQ(is_null->kind, ExprKind::kIsNull);
  auto is_not_null = MustParseExpr("x IS NOT NULL");
  EXPECT_TRUE(is_not_null->negated);
}

TEST(Parser, FunctionCalls) {
  auto e = MustParseExpr("COUNT(*)");
  EXPECT_EQ(e->kind, ExprKind::kFunction);
  EXPECT_EQ(e->args[0]->kind, ExprKind::kStar);
  auto d = MustParseExpr("COUNT(DISTINCT ps_suppkey)");
  EXPECT_TRUE(d->distinct);
  auto f = MustParseExpr("SUBSTR(name, 1, 3)");
  EXPECT_EQ(f->args.size(), 3u);
  EXPECT_EQ(f->func_name, "SUBSTR");
}

TEST(Parser, DateLiteral) {
  auto e = MustParseExpr("DATE '1995-03-15'");
  ASSERT_EQ(e->kind, ExprKind::kLiteral);
  EXPECT_EQ(e->literal.type(), DataType::kDate);
}

TEST(Parser, QualifiedColumnRef) {
  auto e = MustParseExpr("t1.col");
  EXPECT_EQ(e->table_qualifier, "t1");
  EXPECT_EQ(e->column, "col");
}

TEST(Parser, LiteralsAndUnary) {
  EXPECT_TRUE(MustParseExpr("NULL")->literal.is_null());
  EXPECT_TRUE(MustParseExpr("TRUE")->literal.AsBool());
  EXPECT_EQ(MustParseExpr("-5")->kind, ExprKind::kUnary);
  EXPECT_EQ(MustParseExpr("+5")->kind, ExprKind::kLiteral);
}

TEST(Parser, ErrorsCarryContext) {
  auto r = Parser::ParseStatement("SELECT FROM");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("near"), std::string::npos);
  EXPECT_FALSE(Parser::ParseStatement("FROBNICATE x").ok());
  EXPECT_FALSE(Parser::ParseStatement("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parser::ParseStatement("INSERT INTO t VALUES (1,)").ok());
  EXPECT_FALSE(Parser::ParseStatement("CREATE TABLE t ()").ok());
}

// Property: ToSql output re-parses to a tree whose ToSql is a fixed point.
TEST(Parser, ToSqlRoundTripProperty) {
  const char* kStatements[] = {
      "SELECT a, b + 1 AS c FROM t u WHERE (a > 1 AND b < 2) OR u.c IS NULL",
      "SELECT DISTINCT * FROM t ORDER BY a DESC LIMIT 3",
      "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS rev "
      "FROM customer, orders, lineitem WHERE c_custkey = o_custkey "
      "GROUP BY l_orderkey HAVING SUM(x) > 5 ORDER BY rev DESC",
      "SELECT a, COUNT(b) AS n FROM t LEFT JOIN u ON t.id = u.id "
      "GROUP BY a",
      "SELECT a FROM t JOIN u ON t.id = u.id LEFT OUTER JOIN v ON u.k = v.k",
      "SELECT a INTO t2 FROM t1 WHERE x BETWEEN 1 AND 2",
      "INSERT INTO t (a, b) VALUES (1, 'it''s'), (NULL, DATE '1999-01-01')",
      "INSERT INTO t SELECT * FROM u",
      "UPDATE t SET a = a % 2, b = UPPER(b) WHERE a IN (1, 2, 3)",
      "DELETE FROM t WHERE name NOT LIKE 'x%'",
      "CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR, PRIMARY KEY (a))",
      "CREATE TEMPORARY TABLE t (a INTEGER)",
      "DROP TABLE IF EXISTS t",
      "CREATE PROCEDURE p (@x INT) AS BEGIN INSERT INTO t VALUES (@x); END",
      "DROP PROCEDURE p",
      "EXEC p(1, 2)",
      "BEGIN TRANSACTION",
      "COMMIT",
      "ROLLBACK",
      "SHOW KEYS t",
      "SHOW TABLES",
  };
  for (const char* sql : kStatements) {
    auto first = Parser::ParseStatement(sql);
    ASSERT_TRUE(first.ok()) << sql << ": " << first.status().ToString();
    std::string emitted = (*first)->ToSql();
    auto second = Parser::ParseStatement(emitted);
    ASSERT_TRUE(second.ok()) << emitted << ": " << second.status().ToString();
    EXPECT_EQ(emitted, (*second)->ToSql()) << "not a fixed point: " << sql;
  }
}

// Property: Clone produces an identical tree (via ToSql equality).
TEST(Parser, CloneEqualsOriginalProperty) {
  const char* kStatements[] = {
      "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a",
      "INSERT INTO t VALUES (1, 2.5, 'x')",
      "UPDATE t SET a = 1 WHERE b IS NOT NULL",
      "CREATE PROCEDURE p (@a INT) AS BEGIN DELETE FROM t WHERE x = @a; END",
  };
  for (const char* sql : kStatements) {
    auto parsed = Parser::ParseStatement(sql);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ((*parsed)->ToSql(), (*parsed)->Clone()->ToSql());
  }
}

}  // namespace
}  // namespace phoenix::sql
