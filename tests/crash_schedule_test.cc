// Seeded crash-schedule matrix: the chaos-test equivalence property, swept
// deterministically over (workload seed x crash point x partial-flush
// fraction) instead of sampled randomly. Every cell must satisfy:
//
//   Phoenix over a server that dies at statement `crash_at` — with only
//   `flush` of the OS write buffer reaching the platter — observes exactly
//   what native ODBC observes on a server that never fails.
//
// Each cell logs its (seed, crash_at, flush) triple via SCOPED_TRACE, so a
// red cell in CI is a one-line repro.

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/phoenix_driver_manager.h"
#include "test_util.h"

namespace phoenix::core {
namespace {

using odbc::DriverManager;
using odbc::Hdbc;
using odbc::Hstmt;
using odbc::SqlReturn;
using testutil::TestCluster;

struct Op {
  std::string sql;
  bool is_query = false;
};

/// Deterministic workload: keyed DML, scans, aggregates, explicit
/// transactions, temp-table traffic. Distinct from the chaos generator so
/// the two suites do not share blind spots.
std::vector<Op> MakeWorkload(uint64_t seed, int n_ops) {
  Rng rng(seed);
  std::vector<Op> ops;
  ops.push_back({"CREATE TABLE LEDGER (K INTEGER PRIMARY KEY, AMT INTEGER, "
                 "TAG VARCHAR)"});
  ops.push_back({"CREATE TEMPORARY TABLE SCRATCH (N INTEGER)"});
  int64_t next_key = 1;
  int64_t live_keys = 0;
  while (static_cast<int>(ops.size()) < n_ops) {
    switch (rng.NextBelow(7)) {
      case 0:
      case 1: {  // insert
        int64_t k = next_key++;
        ops.push_back({"INSERT INTO LEDGER VALUES (" + std::to_string(k) +
                       ", " + std::to_string(rng.NextBelow(500)) + ", 'tag-" +
                       std::to_string(rng.NextBelow(5)) + "')"});
        ++live_keys;
        break;
      }
      case 2:  // keyed update (may hit a deleted key: affects 0 rows, fine)
        ops.push_back({"UPDATE LEDGER SET AMT = AMT + " +
                       std::to_string(1 + rng.NextBelow(20)) + " WHERE K = " +
                       std::to_string(1 + rng.NextBelow(next_key))});
        break;
      case 3:  // predicate delete
        if (live_keys < 4) break;
        ops.push_back({"DELETE FROM LEDGER WHERE K = " +
                       std::to_string(1 + rng.NextBelow(next_key))});
        --live_keys;
        break;
      case 4:  // queries
        ops.push_back({"SELECT K, AMT, TAG FROM LEDGER ORDER BY K", true});
        ops.push_back({"SELECT TAG, COUNT(*) AS N, SUM(AMT) AS S FROM LEDGER "
                       "GROUP BY TAG ORDER BY TAG",
                       true});
        break;
      case 5: {  // explicit transaction, sometimes rolled back
        bool commit = rng.NextBool(0.6);
        ops.push_back({"BEGIN TRANSACTION"});
        for (int i = 1 + static_cast<int>(rng.NextBelow(3)); i > 0; --i) {
          ops.push_back({"UPDATE LEDGER SET AMT = AMT * 2 WHERE K = " +
                         std::to_string(1 + rng.NextBelow(next_key))});
        }
        ops.push_back({commit ? "COMMIT" : "ROLLBACK"});
        break;
      }
      default:  // temp-table traffic (volatile state the server must rebuild)
        ops.push_back({"INSERT INTO SCRATCH VALUES (" +
                       std::to_string(rng.NextBelow(50)) + ")"});
        ops.push_back({"SELECT COUNT(*) AS N, SUM(N) AS S FROM SCRATCH", true});
        break;
    }
  }
  ops.push_back({"SELECT K, AMT, TAG FROM LEDGER ORDER BY K", true});
  ops.push_back({"SELECT COUNT(*) AS N FROM SCRATCH", true});
  return ops;
}

struct Observation {
  std::vector<Row> rows;
  int64_t affected = -1;
};

Observation RunOp(DriverManager* dm, Hdbc* dbc, const Op& op) {
  Observation obs;
  Hstmt* stmt = dm->AllocStmt(dbc);
  EXPECT_EQ(dm->ExecDirect(stmt, op.sql), SqlReturn::kSuccess)
      << op.sql << " -> " << DriverManager::Diag(stmt).ToString();
  if (op.is_query) {
    size_t cols = 0;
    dm->NumResultCols(stmt, &cols);
    while (Succeeded(dm->Fetch(stmt))) {
      Row row;
      for (size_t c = 0; c < cols; ++c) {
        Value v;
        dm->GetData(stmt, c, &v);
        row.push_back(std::move(v));
      }
      obs.rows.push_back(std::move(row));
    }
  } else {
    dm->RowCount(stmt, &obs.affected);
  }
  dm->FreeStmt(stmt);
  return obs;
}

/// EXPECT-level comparison; returns false on the first mismatch so the
/// matrix sweep can bail out of a failed cell without aborting the test.
bool SameObservation(const Observation& ref, const Observation& got,
                     const Op& op, size_t index) {
  EXPECT_EQ(ref.affected, got.affected) << "op " << index << ": " << op.sql;
  EXPECT_EQ(ref.rows.size(), got.rows.size())
      << "op " << index << ": " << op.sql;
  if (ref.affected != got.affected || ref.rows.size() != got.rows.size()) {
    return false;
  }
  for (size_t r = 0; r < ref.rows.size(); ++r) {
    if (ref.rows[r].size() != got.rows[r].size()) {
      ADD_FAILURE() << "op " << index << " row " << r << " width mismatch";
      return false;
    }
    for (size_t c = 0; c < ref.rows[r].size(); ++c) {
      if (ref.rows[r][c].Compare(got.rows[r][c]) != 0) {
        ADD_FAILURE() << "op " << index << " row " << r << " col " << c
                      << ": " << op.sql << " expected "
                      << ref.rows[r][c].ToString() << " got "
                      << got.rows[r][c].ToString();
        return false;
      }
    }
  }
  return true;
}

TEST(CrashSchedule, EquivalenceHoldsAcrossSeedCrashPointFlushMatrix) {
  const std::vector<uint64_t> seeds = {3, 17, 42};
  const std::vector<double> crash_points = {0.25, 0.6, 0.9};
  const std::vector<double> flush_fractions = {0.0, 0.5, 1.0};

  for (uint64_t seed : seeds) {
    std::vector<Op> ops = MakeWorkload(seed, 60);

    // Reference observations: native driver, fault-free server, once per
    // seed — every matrix cell for this seed is compared against them.
    std::vector<Observation> reference;
    {
      TestCluster ref_cluster;
      DriverManager native(&ref_cluster.network);
      Hdbc* dbc = native.AllocConnect(native.AllocEnv());
      ASSERT_EQ(native.Connect(dbc, "testdb", "ref"), SqlReturn::kSuccess);
      reference.reserve(ops.size());
      for (const Op& op : ops) reference.push_back(RunOp(&native, dbc, op));
      native.Disconnect(dbc);
    }

    for (double crash_point : crash_points) {
      for (double flush : flush_fractions) {
        size_t crash_at = static_cast<size_t>(ops.size() * crash_point);
        SCOPED_TRACE("repro: seed=" + std::to_string(seed) +
                     " crash_at=" + std::to_string(crash_at) +
                     " flush=" + std::to_string(flush));

        TestCluster cluster;
        PhoenixDriverManager phoenix(
            &cluster.network, testutil::AutoRestartConfig(&cluster.server));
        Hdbc* dbc = phoenix.AllocConnect(phoenix.AllocEnv());
        ASSERT_EQ(phoenix.Connect(dbc, "testdb", "phx"), SqlReturn::kSuccess);

        bool cell_ok = true;
        for (size_t i = 0; i < ops.size() && cell_ok; ++i) {
          if (i == crash_at) {
            cluster.server.CrashWithPartialFlush(flush);
          }
          Observation got = RunOp(&phoenix, dbc, ops[i]);
          cell_ok = SameObservation(reference[i], got, ops[i], i);
        }
        EXPECT_TRUE(cell_ok);
        EXPECT_GE(phoenix.stats().recoveries, 1u)
            << "the scheduled crash was never recovered from";
        phoenix.Disconnect(dbc);
      }
    }
  }
}

}  // namespace
}  // namespace phoenix::core
