// Engine-level crash/restart semantics: exactly the guarantees Phoenix
// builds on — committed state (including "ordinary tables" Phoenix writes)
// survives, volatile session state does not.

#include "engine/database.h"

#include "common/rng.h"

#include "gtest/gtest.h"

namespace phoenix::eng {
namespace {

class DatabaseRecoveryTest : public ::testing::Test {
 protected:
  void Start() {
    db_ = std::make_unique<Database>(&disk_);
    ASSERT_TRUE(db_->Open().ok());
    sid_ = *db_->CreateSession("t");
  }

  void CrashAndRestart() {
    db_.reset();     // the server process dies
    disk_.Crash();   // unsynced bytes die with it
    Start();         // a new process recovers from the disk
  }

  void SetUp() override { Start(); }

  StatementResult Exec(const std::string& sql) {
    auto r = db_->ExecuteScript(sid_, sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    if (!r.ok()) return StatementResult{};
    return std::move(r->back());
  }

  Status TryExec(const std::string& sql) {
    return db_->ExecuteScript(sid_, sql).status();
  }

  storage::SimDisk disk_;
  std::unique_ptr<Database> db_;
  uint64_t sid_ = 0;
};

TEST_F(DatabaseRecoveryTest, CommittedAutocommitSurvives) {
  Exec("CREATE TABLE T (K INTEGER PRIMARY KEY, V VARCHAR)");
  Exec("INSERT INTO T VALUES (1, 'one'), (2, 'two')");
  CrashAndRestart();
  StatementResult r = Exec("SELECT V FROM T ORDER BY K");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[1][0].AsString(), "two");
}

TEST_F(DatabaseRecoveryTest, CommittedExplicitTxnSurvives) {
  Exec("CREATE TABLE T (K INTEGER PRIMARY KEY)");
  Exec("BEGIN");
  Exec("INSERT INTO T VALUES (1)");
  Exec("INSERT INTO T VALUES (2)");
  Exec("COMMIT");
  CrashAndRestart();
  EXPECT_EQ(Exec("SELECT COUNT(*) AS N FROM T").rows[0][0].AsInt64(), 2);
}

TEST_F(DatabaseRecoveryTest, OpenTxnRolledBackByCrash) {
  Exec("CREATE TABLE T (K INTEGER PRIMARY KEY)");
  Exec("BEGIN");
  Exec("INSERT INTO T VALUES (1)");
  CrashAndRestart();
  EXPECT_EQ(Exec("SELECT COUNT(*) AS N FROM T").rows[0][0].AsInt64(), 0);
}

TEST_F(DatabaseRecoveryTest, TempTablesVanishOnCrash) {
  Exec("CREATE TEMPORARY TABLE SCRATCH (A INTEGER)");
  Exec("INSERT INTO SCRATCH VALUES (1)");
  CrashAndRestart();
  EXPECT_EQ(TryExec("SELECT * FROM SCRATCH").code(), StatusCode::kSqlError);
}

TEST_F(DatabaseRecoveryTest, SessionsVanishOnCrash) {
  uint64_t old_sid = sid_;
  db_.reset();
  disk_.Crash();
  db_ = std::make_unique<Database>(&disk_);
  ASSERT_TRUE(db_->Open().ok());
  EXPECT_FALSE(db_->HasSession(old_sid));
  auto r = db_->ExecuteScript(old_sid, "SELECT 1");
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(DatabaseRecoveryTest, PersistentProceduresSurvive) {
  Exec("CREATE TABLE T (A INTEGER)");
  Exec("CREATE PROCEDURE BUMP (@x INT) AS INSERT INTO T VALUES (@x)");
  CrashAndRestart();
  StatementResult r = Exec("EXEC BUMP(5)");
  EXPECT_EQ(r.affected, 1);
  EXPECT_EQ(Exec("SELECT A FROM T").rows[0][0].AsInt64(), 5);
}

TEST_F(DatabaseRecoveryTest, TempProceduresDoNot) {
  Exec("CREATE TEMPORARY PROCEDURE TP AS SELECT 1");
  CrashAndRestart();
  EXPECT_EQ(TryExec("EXEC TP").code(), StatusCode::kNotFound);
}

TEST_F(DatabaseRecoveryTest, DroppedTableStaysDropped) {
  Exec("CREATE TABLE T (A INTEGER)");
  Exec("DROP TABLE T");
  CrashAndRestart();
  EXPECT_EQ(TryExec("SELECT * FROM T").code(), StatusCode::kSqlError);
}

TEST_F(DatabaseRecoveryTest, UpdatesAndDeletesReplayCorrectly) {
  Exec("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)");
  Exec("INSERT INTO T VALUES (1, 10), (2, 20), (3, 30)");
  Exec("UPDATE T SET V = 21 WHERE K = 2");
  Exec("DELETE FROM T WHERE K = 1");
  CrashAndRestart();
  StatementResult r = Exec("SELECT K, V FROM T ORDER BY K");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 21);
  EXPECT_EQ(r.rows[1][1].AsInt64(), 30);
}

TEST_F(DatabaseRecoveryTest, RecoveryAfterCheckpointPlusTail) {
  Exec("CREATE TABLE T (K INTEGER PRIMARY KEY)");
  Exec("INSERT INTO T VALUES (1)");
  ASSERT_TRUE(db_->Checkpoint().ok());
  Exec("INSERT INTO T VALUES (2)");
  CrashAndRestart();
  EXPECT_TRUE(db_->recovery_info().had_checkpoint);
  EXPECT_EQ(db_->recovery_info().records_replayed, 1u);
  EXPECT_EQ(Exec("SELECT COUNT(*) AS N FROM T").rows[0][0].AsInt64(), 2);
}

TEST_F(DatabaseRecoveryTest, RepeatedCrashes) {
  Exec("CREATE TABLE T (K INTEGER PRIMARY KEY)");
  for (int round = 1; round <= 5; ++round) {
    Exec("INSERT INTO T VALUES (" + std::to_string(round) + ")");
    CrashAndRestart();
    EXPECT_EQ(Exec("SELECT COUNT(*) AS N FROM T").rows[0][0].AsInt64(), round);
  }
}

TEST_F(DatabaseRecoveryTest, RowIdsStableAcrossRecovery) {
  Exec("CREATE TABLE T (K INTEGER PRIMARY KEY)");
  Exec("INSERT INTO T VALUES (1), (2), (3)");
  Exec("DELETE FROM T WHERE K = 2");
  CrashAndRestart();
  // Inserting after recovery must not collide with recovered RowIds.
  Exec("INSERT INTO T VALUES (4)");
  EXPECT_EQ(Exec("SELECT COUNT(*) AS N FROM T").rows[0][0].AsInt64(), 3);
}

// Property: a random committed workload equals its recovered image,
// regardless of where an (unsynced-tail) crash lands.
TEST_F(DatabaseRecoveryTest, RandomWorkloadSurvivesProperty) {
  Rng rng(808);
  Exec("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)");
  std::map<int64_t, int64_t> model;
  for (int step = 0; step < 200; ++step) {
    int64_t k = static_cast<int64_t>(rng.NextBelow(50));
    int64_t v = static_cast<int64_t>(rng.NextBelow(1000));
    switch (rng.NextBelow(4)) {
      case 0:
      case 1:
        if (!model.count(k)) {
          Exec("INSERT INTO T VALUES (" + std::to_string(k) + ", " +
               std::to_string(v) + ")");
          model[k] = v;
        }
        break;
      case 2:
        if (model.count(k)) {
          Exec("UPDATE T SET V = " + std::to_string(v) +
               " WHERE K = " + std::to_string(k));
          model[k] = v;
        }
        break;
      default:
        if (model.count(k)) {
          Exec("DELETE FROM T WHERE K = " + std::to_string(k));
          model.erase(k);
        }
        break;
    }
    if (step % 37 == 36) CrashAndRestart();
  }
  CrashAndRestart();
  StatementResult r = Exec("SELECT K, V FROM T ORDER BY K");
  ASSERT_EQ(r.rows.size(), model.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(r.rows[i][0].AsInt64(), k);
    EXPECT_EQ(r.rows[i][1].AsInt64(), v);
    ++i;
  }
}

}  // namespace
}  // namespace phoenix::eng
