// Server-cursor semantics: static snapshots, keyset re-reads, dynamic
// membership, absolute seek.

#include "engine/database.h"

#include "gtest/gtest.h"

namespace phoenix::eng {
namespace {

class CursorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(&disk_);
    ASSERT_TRUE(db_->Open().ok());
    sid_ = *db_->CreateSession("t");
    Exec("CREATE TABLE T (K INTEGER PRIMARY KEY, V VARCHAR)");
    for (int i = 1; i <= 10; ++i) {
      Exec("INSERT INTO T VALUES (" + std::to_string(i) + ", 'v" +
           std::to_string(i) + "')");
    }
  }

  void Exec(const std::string& sql) {
    auto r = db_->ExecuteScript(sid_, sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  Cursor* Open(const std::string& sql, CursorType type) {
    auto r = db_->OpenCursor(sid_, sql, type);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.value() : nullptr;
  }

  std::vector<Row> Fetch(Cursor* c, size_t n, bool* done) {
    auto r = db_->FetchCursor(sid_, c->id(), n, done);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.take() : std::vector<Row>{};
  }

  storage::SimDisk disk_;
  std::unique_ptr<Database> db_;
  uint64_t sid_ = 0;
};

TEST_F(CursorTest, StaticBlockFetch) {
  Cursor* c = Open("SELECT K FROM T ORDER BY K", CursorType::kStatic);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->known_size(), 10u);
  bool done = false;
  auto block1 = Fetch(c, 4, &done);
  ASSERT_EQ(block1.size(), 4u);
  EXPECT_FALSE(done);
  EXPECT_EQ(block1[0][0].AsInt64(), 1);
  auto block2 = Fetch(c, 100, &done);
  EXPECT_EQ(block2.size(), 6u);
  EXPECT_TRUE(done);
  EXPECT_TRUE(Fetch(c, 5, &done).empty());
}

TEST_F(CursorTest, StaticSnapshotIgnoresLaterChanges) {
  Cursor* c = Open("SELECT K, V FROM T", CursorType::kStatic);
  Exec("DELETE FROM T WHERE K <= 5");
  Exec("UPDATE T SET V = 'changed' WHERE K = 6");
  bool done = false;
  auto rows = Fetch(c, 100, &done);
  EXPECT_EQ(rows.size(), 10u);          // deletions invisible
  EXPECT_EQ(rows[5][1].AsString(), "v6");  // update invisible
}

TEST_F(CursorTest, StaticSeekAbsolute) {
  Cursor* c = Open("SELECT K FROM T ORDER BY K", CursorType::kStatic);
  ASSERT_TRUE(db_->SeekCursor(sid_, c->id(), 7).ok());
  bool done = false;
  auto rows = Fetch(c, 2, &done);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsInt64(), 8);
  // Seek past the end clamps.
  ASSERT_TRUE(db_->SeekCursor(sid_, c->id(), 999).ok());
  EXPECT_TRUE(Fetch(c, 1, &done).empty());
  EXPECT_TRUE(done);
  // Seek back to the beginning replays from row one.
  ASSERT_TRUE(db_->SeekCursor(sid_, c->id(), 0).ok());
  rows = Fetch(c, 1, &done);
  EXPECT_EQ(rows[0][0].AsInt64(), 1);
}

TEST_F(CursorTest, KeysetSeesUpdatesButFrozenMembership) {
  Cursor* c = Open("SELECT K, V FROM T WHERE K <= 5", CursorType::kKeyset);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->known_size(), 5u);
  // Update a member row and insert a new row that would have qualified.
  Exec("UPDATE T SET V = 'fresh' WHERE K = 3");
  Exec("INSERT INTO T VALUES (0, 'new')");
  bool done = false;
  auto rows = Fetch(c, 100, &done);
  ASSERT_EQ(rows.size(), 5u);  // insert NOT visible (membership frozen)
  EXPECT_EQ(rows[2][1].AsString(), "fresh");  // update IS visible
}

TEST_F(CursorTest, KeysetSkipsDeletedRows) {
  Cursor* c = Open("SELECT K FROM T", CursorType::kKeyset);
  Exec("DELETE FROM T WHERE K = 2");
  Exec("DELETE FROM T WHERE K = 9");
  bool done = false;
  auto rows = Fetch(c, 100, &done);
  EXPECT_EQ(rows.size(), 8u);
}

TEST_F(CursorTest, KeysetSeek) {
  Cursor* c = Open("SELECT K FROM T", CursorType::kKeyset);
  ASSERT_TRUE(db_->SeekCursor(sid_, c->id(), 8).ok());
  bool done = false;
  auto rows = Fetch(c, 10, &done);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsInt64(), 9);
}

TEST_F(CursorTest, DynamicSeesInsertsAheadOfPosition) {
  Cursor* c = Open("SELECT K FROM T", CursorType::kDynamic);
  bool done = false;
  auto first = Fetch(c, 3, &done);  // delivers keys 1..3
  ASSERT_EQ(first.size(), 3u);
  // Insert behind (invisible) and ahead (visible) of the position.
  Exec("INSERT INTO T VALUES (2000, 'ahead')");
  Exec("INSERT INTO T VALUES (-5, 'behind')");
  std::vector<int64_t> rest;
  while (true) {
    auto rows = Fetch(c, 4, &done);
    for (const Row& r : rows) rest.push_back(r[0].AsInt64());
    if (done) break;
  }
  // 4..10 plus 2000; -5 sorts before the current position so is skipped.
  ASSERT_EQ(rest.size(), 8u);
  EXPECT_EQ(rest.front(), 4);
  EXPECT_EQ(rest.back(), 2000);
}

TEST_F(CursorTest, DynamicSeesDeletesAndUpdates) {
  Cursor* c = Open("SELECT K, V FROM T", CursorType::kDynamic);
  bool done = false;
  Fetch(c, 2, &done);  // position after key 2
  Exec("DELETE FROM T WHERE K = 5");
  Exec("UPDATE T SET V = 'mut' WHERE K = 7");
  std::vector<Row> rest;
  while (!done) {
    for (Row& r : Fetch(c, 3, &done)) rest.push_back(std::move(r));
  }
  ASSERT_EQ(rest.size(), 7u);  // 3,4,6,7,8,9,10
  EXPECT_EQ(rest[3][1].AsString(), "mut");
}

TEST_F(CursorTest, DynamicHonorsWherePredicate) {
  Cursor* c = Open("SELECT K FROM T WHERE K % 2 = 0", CursorType::kDynamic);
  bool done = false;
  std::vector<int64_t> keys;
  while (!done) {
    for (const Row& r : Fetch(c, 2, &done)) keys.push_back(r[0].AsInt64());
  }
  EXPECT_EQ(keys, (std::vector<int64_t>{2, 4, 6, 8, 10}));
}

TEST_F(CursorTest, DynamicSeekNotSupported) {
  Cursor* c = Open("SELECT K FROM T", CursorType::kDynamic);
  EXPECT_EQ(db_->SeekCursor(sid_, c->id(), 3).code(),
            StatusCode::kNotSupported);
}

TEST_F(CursorTest, KeysetRequiresPrimaryKey) {
  Exec("CREATE TABLE NOPK (A INTEGER)");
  auto r = db_->OpenCursor(sid_, "SELECT A FROM NOPK", CursorType::kKeyset);
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

TEST_F(CursorTest, KeysetRejectsJoinsAndAggregates) {
  EXPECT_EQ(db_->OpenCursor(sid_, "SELECT COUNT(*) FROM T",
                            CursorType::kKeyset)
                .status()
                .code(),
            StatusCode::kNotSupported);
  Exec("CREATE TABLE T2 (K INTEGER PRIMARY KEY)");
  EXPECT_EQ(db_->OpenCursor(sid_, "SELECT T.K FROM T, T2",
                            CursorType::kDynamic)
                .status()
                .code(),
            StatusCode::kNotSupported);
}

TEST_F(CursorTest, CursorWithProjectionExpressions) {
  Cursor* c = Open("SELECT K * 10 AS KX, UPPER(V) AS UV FROM T WHERE K <= 2",
                   CursorType::kKeyset);
  bool done = false;
  auto rows = Fetch(c, 10, &done);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsInt64(), 10);
  EXPECT_EQ(rows[0][1].AsString(), "V1");
}

TEST(CursorMvccTest, KeysetRecycledKeyPhantom) {
  // Regression: keyset membership is frozen as *these rows*, yet a member
  // deleted after open and replaced by a fresh insert under the same key
  // used to resurface the newcomer on fetch and re-seek — a phantom. With
  // MVCC on, the (key, rid) pairs recorded at open reject the impostor row.
  // With MVCC off the historical key-identity behavior is retained — a
  // documented limitation of classification mode, pinned here so the delta
  // stays visible.
  for (bool mvcc : {true, false}) {
    storage::SimDisk disk;
    DatabaseOptions opts;
    opts.mvcc = mvcc;
    Database db(&disk, opts);
    ASSERT_TRUE(db.Open().ok());
    uint64_t sid = *db.CreateSession("t");
    auto exec = [&](const std::string& sql) {
      auto r = db.ExecuteScript(sid, sql);
      ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    };
    exec("CREATE TABLE T (K INTEGER PRIMARY KEY, V VARCHAR)");
    for (int i = 1; i <= 5; ++i) {
      exec("INSERT INTO T VALUES (" + std::to_string(i) + ", 'v" +
           std::to_string(i) + "')");
    }
    auto c = db.OpenCursor(sid, "SELECT K, V FROM T", CursorType::kKeyset);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    exec("DELETE FROM T WHERE K = 3");
    exec("INSERT INTO T VALUES (3, 'impostor')");

    bool done = false;
    auto rows = db.FetchCursor(sid, (*c)->id(), 100, &done);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    if (mvcc) {
      // The row named at open is gone; its slot is a hole, not the impostor.
      ASSERT_EQ(rows->size(), 4u);
      for (const Row& r : *rows) EXPECT_NE(r[1].AsString(), "impostor");
      // Re-seek to the start and re-fetch: still no phantom.
      ASSERT_TRUE(db.SeekCursor(sid, (*c)->id(), 0).ok());
      auto again = db.FetchCursor(sid, (*c)->id(), 100, &done);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again->size(), 4u);
    } else {
      ASSERT_EQ(rows->size(), 5u);
      EXPECT_EQ((*rows)[2][1].AsString(), "impostor");
    }
  }
}

TEST_F(CursorTest, CloseCursorFreesIt) {
  Cursor* c = Open("SELECT K FROM T", CursorType::kStatic);
  uint64_t id = c->id();
  ASSERT_TRUE(db_->CloseCursor(sid_, id).ok());
  bool done;
  EXPECT_TRUE(db_->FetchCursor(sid_, id, 1, &done).status().IsNotFound());
  EXPECT_TRUE(db_->CloseCursor(sid_, id).IsNotFound());
}

TEST_F(CursorTest, CursorsDieWithSession) {
  Cursor* c = Open("SELECT K FROM T", CursorType::kStatic);
  uint64_t id = c->id();
  ASSERT_TRUE(db_->CloseSession(sid_).ok());
  sid_ = *db_->CreateSession("t2");
  bool done;
  EXPECT_FALSE(db_->FetchCursor(sid_, id, 1, &done).ok());
}

TEST_F(CursorTest, OpenCursorRejectsNonSelect) {
  EXPECT_FALSE(db_->OpenCursor(sid_, "DELETE FROM T", CursorType::kStatic)
                   .ok());
  EXPECT_FALSE(db_->OpenCursor(sid_, "SELECT K INTO X FROM T",
                               CursorType::kStatic)
                   .ok());
}

}  // namespace
}  // namespace phoenix::eng
