// Administrative features around the Phoenix layer: SHOW PROCEDURES and
// the orphaned-artifact garbage collector.

#include "core/phoenix_driver_manager.h"
#include "test_util.h"

namespace phoenix::core {
namespace {

using odbc::DriverManager;
using odbc::Hdbc;
using odbc::SqlReturn;
using testutil::MustExec;
using testutil::MustQuery;
using testutil::TestCluster;

TEST(ShowProcedures, ListsTempAndPersistent) {
  TestCluster cluster;
  DriverManager dm(&cluster.network);
  Hdbc* dbc = dm.AllocConnect(dm.AllocEnv());
  ASSERT_EQ(dm.Connect(dbc, "testdb", "u"), SqlReturn::kSuccess);
  MustExec(&dm, dbc, "CREATE PROCEDURE PERSISTENT_P AS SELECT 1");
  MustExec(&dm, dbc, "CREATE TEMPORARY PROCEDURE TEMP_P AS SELECT 2");
  auto rows = MustQuery(&dm, dbc, "SHOW PROCEDURES");
  std::set<std::string> names;
  for (const Row& r : rows) names.insert(r[0].AsString());
  EXPECT_TRUE(names.count("PERSISTENT_P"));
  EXPECT_TRUE(names.count("TEMP_P"));
}

class OrphanGcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dm_ = std::make_unique<PhoenixDriverManager>(&cluster_.network);
  }

  /// Number of PHX_-prefixed tables on the server.
  int PhoenixTables() {
    int n = 0;
    for (const std::string& name :
         cluster_.server.database()->store()->ListNames()) {
      if (name.rfind("PHX_", 0) == 0) ++n;
    }
    return n;
  }

  TestCluster cluster_;
  std::unique_ptr<PhoenixDriverManager> dm_;
};

TEST_F(OrphanGcTest, DropsArtifactsOfDeadClients) {
  // A client creates artifacts and then "dies" (client process gone, no
  // Disconnect): simulate by closing its server sessions directly.
  Hdbc* dbc = dm_->AllocConnect(dm_->AllocEnv());
  ASSERT_EQ(dm_->Connect(dbc, "testdb", "doomed"), SqlReturn::kSuccess);
  MustExec(dm_.get(), dbc, "CREATE TABLE BASE (K INTEGER PRIMARY KEY)");
  MustExec(dm_.get(), dbc, "INSERT INTO BASE VALUES (1), (2)");
  MustQuery(dm_.get(), dbc, "SELECT * FROM BASE");  // result table artifact
  MustExec(dm_.get(), dbc, "CREATE TEMP TABLE W (A INTEGER)");  // stand-in
  MustExec(dm_.get(), dbc,
           "CREATE TEMP PROCEDURE TP AS SELECT 1");  // proc stand-in
  ASSERT_GE(PhoenixTables(), 3);  // result + status + tmp stand-in

  // Kill the client the hard way: its sessions evaporate server-side (as
  // they would when the client machine dies and the server times it out).
  ConnState* cs = PhoenixDriverManager::conn_state(dbc);
  std::string dead_tag = cs->tag;
  eng::Database* db = cluster_.server.database();
  std::vector<uint64_t> session_ids;
  for (uint64_t id = 1; id < 100; ++id) {
    if (db->HasSession(id)) session_ids.push_back(id);
  }
  for (uint64_t id : session_ids) ASSERT_TRUE(db->CloseSession(id).ok());
  ASSERT_GE(PhoenixTables(), 3);  // artifacts really are orphaned

  auto dropped = PhoenixDriverManager::CleanupOrphans(&cluster_.network,
                                                      "testdb", "admin");
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_GE(*dropped, 3);
  EXPECT_EQ(PhoenixTables(), 0);
  // The application's own table is untouched.
  EXPECT_NE(db->store()->Get("BASE"), nullptr);
  (void)dead_tag;
}

TEST_F(OrphanGcTest, SparesArtifactsOfLiveClients) {
  Hdbc* live = dm_->AllocConnect(dm_->AllocEnv());
  ASSERT_EQ(dm_->Connect(live, "testdb", "alive"), SqlReturn::kSuccess);
  MustExec(dm_.get(), live, "CREATE TABLE BASE (K INTEGER PRIMARY KEY)");
  MustExec(dm_.get(), live, "INSERT INTO BASE VALUES (1)");

  // An open result set whose table must survive the sweep.
  odbc::Hstmt* stmt = dm_->AllocStmt(live);
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT * FROM BASE"), SqlReturn::kSuccess);
  StmtState* vs = PhoenixDriverManager::stmt_state(stmt);
  ASSERT_NE(vs, nullptr);

  auto dropped = PhoenixDriverManager::CleanupOrphans(&cluster_.network,
                                                      "testdb", "admin");
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 0);
  EXPECT_NE(cluster_.server.database()->store()->Get(vs->result_table),
            nullptr);
  // The live client keeps working.
  ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
}

TEST_F(OrphanGcTest, MixedLiveAndDeadClients) {
  Hdbc* live = dm_->AllocConnect(dm_->AllocEnv());
  ASSERT_EQ(dm_->Connect(live, "testdb", "alive"), SqlReturn::kSuccess);
  MustExec(dm_.get(), live, "CREATE TABLE BASE (K INTEGER PRIMARY KEY)");
  MustExec(dm_.get(), live, "INSERT INTO BASE VALUES (1)");
  MustQuery(dm_.get(), live, "SELECT * FROM BASE");

  Hdbc* doomed = dm_->AllocConnect(dm_->AllocEnv());
  ASSERT_EQ(dm_->Connect(doomed, "testdb", "doomed"), SqlReturn::kSuccess);
  MustQuery(dm_.get(), doomed, "SELECT * FROM BASE");
  // Kill only the doomed client's sessions.
  eng::Database* db = cluster_.server.database();
  uint64_t doomed_main = doomed->driver->session_id();
  ConnState* doomed_cs = PhoenixDriverManager::conn_state(doomed);
  uint64_t doomed_priv = doomed_cs->private_conn->session_id();
  ASSERT_TRUE(db->CloseSession(doomed_main).ok());
  ASSERT_TRUE(db->CloseSession(doomed_priv).ok());

  ConnState* live_cs = PhoenixDriverManager::conn_state(live);
  auto dropped = PhoenixDriverManager::CleanupOrphans(&cluster_.network,
                                                      "testdb", "admin");
  ASSERT_TRUE(dropped.ok());
  EXPECT_GE(*dropped, 1);
  // Doomed artifacts gone, live ones intact.
  int live_tables = 0;
  for (const std::string& name : db->store()->ListNames()) {
    if (name.find("_" + doomed_cs->tag + "_") != std::string::npos) {
      ADD_FAILURE() << "orphan survived: " << name;
    }
    if (name.find("_" + live_cs->tag + "_") != std::string::npos) {
      ++live_tables;
    }
  }
  EXPECT_GE(live_tables, 1);
}

TEST_F(OrphanGcTest, IdempotentOnCleanServer) {
  auto first = PhoenixDriverManager::CleanupOrphans(&cluster_.network,
                                                    "testdb", "admin");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0);
  auto second = PhoenixDriverManager::CleanupOrphans(&cluster_.network,
                                                     "testdb", "admin");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 0);
}

}  // namespace
}  // namespace phoenix::core
