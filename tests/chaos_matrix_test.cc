// Seeded chaos matrix over the src/chaos harness: >= 200 deterministic
// schedules, grouped into suites that each concentrate on one fault family.
// Every schedule checks the full oracle (op-by-op equivalence with a
// fault-free native run, exactly-once request ids, post-crash durability,
// independent catalog/WAL agreement) — see src/chaos/chaos.h.
//
// A red schedule prints its ChaosReport, whose seed is a complete repro:
//
//   PHX_CHAOS_SEED=<seed> ./chaos_matrix_test
//       --gtest_filter=ChaosMatrix.SingleSeedFromEnv
//
// replays exactly that schedule with every fault kind enabled.

#include <unistd.h>

#include <cstdlib>
#include <string>

#include "chaos/chaos.h"
#include "common/codec.h"
#include "net/process_server.h"
#include "net/socket.h"
#include "storage/recovery.h"
#include "storage/sim_disk.h"
#include "storage/table_store.h"

#include "gtest/gtest.h"

namespace phoenix::chaos {
namespace {

/// Runs one schedule and fails the test with a copy-pasteable repro line.
/// Process-transport schedules carry the transport in the repro so the
/// replay crosses the same process boundary.
ChaosReport RunAndCheck(const ChaosOptions& opts) {
  ChaosReport report = RunChaosSchedule(opts);
  std::string env_prefix;
  if (opts.transport == Transport::kUnix) env_prefix = "PHX_TRANSPORT=unix ";
  if (opts.transport == Transport::kTcp) env_prefix = "PHX_TRANSPORT=tcp ";
  EXPECT_TRUE(report.ok)
      << report.DebugString() << "\nrepro: " << env_prefix
      << "PHX_CHAOS_SEED=" << opts.seed
      << " ./chaos_matrix_test --gtest_filter=ChaosMatrix.SingleSeedFromEnv";
  return report;
}

/// PHX_TRANSPORT=tcp flips the process-kill lane to TCP; anything else
/// (including unset) runs it over a Unix-domain socket.
Transport ProcessLaneTransport() {
  const char* t = std::getenv("PHX_TRANSPORT");
  if (t != nullptr && std::string(t) == "tcp") return Transport::kTcp;
  return Transport::kUnix;
}

/// Process-mode chaos needs a phoenixd binary and a sandbox that grants
/// sockets; sets `why` and returns false when either is missing.
bool ProcessChaosAvailable(std::string* why) {
  if (net::FindServerBinary("").empty()) {
    *why = "phoenixd binary not found (set PHX_SERVER_BIN)";
    return false;
  }
  net::Listener probe;
  std::string ep = (ProcessLaneTransport() == Transport::kTcp)
                       ? "tcp:127.0.0.1:0"
                       : "unix:/tmp/phx_cmx_probe_" +
                             std::to_string(::getpid()) + ".sock";
  Status st = probe.Listen(ep);
  if (!st.ok()) {
    *why = "sockets unavailable here: " + st.ToString();
    return false;
  }
  probe.Close();
  return true;
}

TEST(ChaosMatrix, TornTailSchedules) {
  // Torn last records: byte-granular truncation plus corruption of the
  // unsynced tail, independent per file.
  uint64_t tears_seen = 0;
  uint64_t recoveries = 0;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    ChaosOptions opts;
    opts.seed = 7000 + seed;
    opts.n_faults = 2;
    opts.allow_crash = false;
    opts.allow_mid_checkpoint = false;
    opts.allow_recovery_crash = false;
    opts.allow_lost_reply = false;
    opts.allow_dropped_request = false;
    // leaves torn + partial-flush
    ChaosReport r = RunAndCheck(opts);
    tears_seen += r.wal_tear_detected ? 1 : 0;
    recoveries += r.recoveries;
  }
  EXPECT_GT(recoveries, 0u) << "no schedule ever exercised recovery";
  EXPECT_GT(tears_seen, 0u) << "no schedule ever produced a torn WAL tail";
}

TEST(ChaosMatrix, MidCheckpointSchedules) {
  // Crash inside Checkpoint(): image durable, WAL truncation lost. The
  // restarted server must skip the subsumed records instead of
  // double-applying them (or refusing to start).
  uint64_t images = 0;
  uint64_t skipped = 0;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    ChaosOptions opts;
    opts.seed = 8000 + seed;
    opts.n_faults = 3;
    opts.checkpoint_every_n_commits = 5;
    opts.allow_partial_flush = false;
    opts.allow_torn = false;
    opts.allow_recovery_crash = false;
    opts.allow_lost_reply = false;
    opts.allow_dropped_request = false;
    // leaves mid-checkpoint + plain crash
    ChaosReport r = RunAndCheck(opts);
    images += r.mid_ckpt_images;
    skipped += r.wal_records_skipped;
  }
  EXPECT_GT(images, 0u) << "no schedule ever died mid-checkpoint";
  EXPECT_GT(skipped, 0u)
      << "no recovery ever skipped a checkpoint-subsumed WAL record";
}

TEST(ChaosMatrix, ConcurrentCheckpointSchedules) {
  // Non-blocking checkpoints under load: a tight auto-checkpoint cadence
  // keeps the snapshot/image/truncate pipeline hot while the workload's
  // writers commit and its cursors scan, and the schedule dies at one of the
  // three crash points of the split protocol (chosen by sub_seed % 3:
  // pre-snapshot, post-snapshot, post-image). Even seeds pin the background
  // writer thread on, odd seeds pin the stop-the-world path, so both modes
  // face every crash window regardless of the PHX_CKPT_BG lane.
  uint64_t images = 0;
  uint64_t skipped = 0;
  uint64_t recoveries = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    ChaosOptions opts;
    opts.seed = 12000 + seed;
    opts.n_ops = 50;
    opts.n_faults = 3;
    opts.checkpoint_every_n_commits = 4;
    opts.background_checkpoint = (seed % 2 == 0);
    opts.allow_partial_flush = false;
    opts.allow_torn = false;
    opts.allow_recovery_crash = false;
    opts.allow_lost_reply = false;
    opts.allow_dropped_request = false;
    // leaves mid-checkpoint + plain crash
    ChaosReport r = RunAndCheck(opts);
    images += r.mid_ckpt_images;
    skipped += r.wal_records_skipped;
    recoveries += r.recoveries;
  }
  EXPECT_GT(recoveries, 0u) << "no schedule ever exercised recovery";
  EXPECT_GT(images, 0u) << "no schedule ever wrote an image before dying";
  EXPECT_GT(skipped, 0u)
      << "no recovery ever skipped a fence-subsumed WAL record";
}

TEST(ChaosMatrix, RecrashDuringRecoverySchedules) {
  // The server dies again while Phoenix is mid-recovery (after detection /
  // after the virtual-session remap); the recovery driver must restart the
  // pass, not surface the mid-recovery crash to the application.
  uint64_t recrashes = 0;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    ChaosOptions opts;
    opts.seed = 9000 + seed;
    opts.n_faults = 2;
    opts.allow_crash = false;
    opts.allow_partial_flush = false;
    opts.allow_torn = false;
    opts.allow_mid_checkpoint = false;
    opts.allow_lost_reply = false;
    opts.allow_dropped_request = false;
    // leaves recovery-crash only
    ChaosReport r = RunAndCheck(opts);
    recrashes += r.recovery_recrashes;
  }
  EXPECT_GT(recrashes, 0u)
      << "no schedule ever re-crashed inside a recovery pass";
}

TEST(ChaosMatrix, MixedFaultSchedules) {
  // Everything at once, including lost replies landing between the block
  // fetches of half-delivered cursors (reposition under message loss).
  // Odd seeds run the client-side reposition ablation so both strategies
  // stay under fault pressure.
  uint64_t lost = 0;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    ChaosOptions opts;
    opts.seed = 10000 + seed;
    opts.n_ops = 50;
    opts.n_faults = 4;
    opts.checkpoint_every_n_commits = (seed % 3 == 0) ? 6 : 0;
    opts.server_side_reposition = (seed % 2 == 0);
    ChaosReport r = RunAndCheck(opts);
    lost += r.lost_replies_recovered;
  }
  EXPECT_GT(lost, 0u) << "no schedule ever recovered a lost reply";
}

TEST(ChaosMatrix, GroupCommitSchedules) {
  // The full fault zoo with the WAL group-commit pipeline forced on (even
  // seeds leader mode, odd seeds dedicated flusher). Crashes now land
  // between a batch's coalesced append and its single sync — the oracle's
  // durability invariant (no acked commit ever lost, no unacked commit
  // ever claimed) is exactly the ack-after-fsync contract under test.
  uint64_t recoveries = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    ChaosOptions opts;
    opts.seed = 11000 + seed;
    opts.n_ops = 50;
    opts.n_faults = 4;
    opts.group_commit = true;
    opts.gc_flusher = (seed % 2 == 1);
    opts.checkpoint_every_n_commits = (seed % 4 == 0) ? 6 : 0;
    ChaosReport r = RunAndCheck(opts);
    recoveries += r.recoveries;
  }
  EXPECT_GT(recoveries, 0u)
      << "no group-commit schedule ever exercised recovery";
}

TEST(ChaosMatrix, IndexDdlCrashSchedules) {
  // Crashes landing on and around index DDL: the workload opens with
  // CREATE INDEX and keeps toggling CREATE/DROP INDEX, and every fault kind
  // that kills the server is enabled, so deaths land between an index DDL
  // and the surrounding data ops (and inside recovery replaying them). The
  // harness's index-consistency oracle then audits both the restarted
  // server's store and an independent storage-level recovery: every index's
  // entry tree must equal the tree rebuilt from its base rows.
  uint64_t recoveries = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    ChaosOptions opts;
    opts.seed = 13000 + seed;
    opts.n_ops = 50;
    opts.n_faults = 3;
    opts.allow_lost_reply = false;
    opts.allow_dropped_request = false;
    // leaves crash + partial-flush + torn + mid-checkpoint + recovery-crash
    opts.checkpoint_every_n_commits = (seed % 3 == 0) ? 5 : 0;
    ChaosReport r = RunAndCheck(opts);
    recoveries += r.recoveries;
  }
  EXPECT_GT(recoveries, 0u)
      << "no index-DDL schedule ever exercised recovery";
}

TEST(ChaosMatrix, IndexReplaySchedules) {
  // Crash during recovery itself (recovery-crash at a RecoveryPoint), with
  // a checkpoint cadence so replay starts from a v3 image carrying index
  // definitions: the re-run replay must re-apply base-table mutations and
  // their index maintenance together — a crash between the two on the first
  // pass must not leave a divergent index after the second. The
  // index-consistency audit is the detector.
  uint64_t recrashes = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    ChaosOptions opts;
    opts.seed = 14000 + seed;
    opts.n_ops = 50;
    opts.n_faults = 3;
    opts.allow_partial_flush = false;
    opts.allow_torn = false;
    opts.allow_lost_reply = false;
    opts.allow_dropped_request = false;
    // leaves crash + mid-checkpoint + recovery-crash
    opts.checkpoint_every_n_commits = 4;
    ChaosReport r = RunAndCheck(opts);
    recrashes += r.recovery_recrashes;
  }
  EXPECT_GT(recrashes, 0u)
      << "no index-replay schedule ever re-crashed inside recovery";
}

TEST(ChaosMatrix, ProcessKillSchedules) {
  // The real-process lane: the same seeded workload + fault plans, but the
  // server is an out-of-process phoenixd and every kill is a real SIGKILL —
  // idle kills land between operations, and the tail-tearing fault kinds
  // (partial-flush, torn, mid-checkpoint) are delivered through the SIGKILL
  // rendezvous protocol, dying inside the child's fsync / checkpoint rename
  // / dispatch. The oracle (shadow model, exactly-once request ids, final
  // durability agreement, independent storage recovery over the child's
  // data dir) is the same one the in-process suites check.
  // PHX_TRANSPORT=tcp runs the lane over TCP instead of a Unix socket.
  std::string why;
  if (!ProcessChaosAvailable(&why)) GTEST_SKIP() << why;
  uint64_t sigkills = 0;
  uint64_t rendezvous_kills = 0;
  uint64_t recoveries = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    ChaosOptions opts;
    opts.seed = 15000 + seed;
    opts.n_faults = 3;
    opts.transport = ProcessLaneTransport();
    // Even seeds run an auto-checkpoint cadence so the mid-checkpoint
    // rendezvous points actually exist in the child.
    opts.checkpoint_every_n_commits = (seed % 2 == 0) ? 4 : 0;
    ChaosReport r = RunAndCheck(opts);
    sigkills += r.sigkills;
    rendezvous_kills += r.rendezvous_kills;
    recoveries += r.recoveries;
  }
  EXPECT_GT(sigkills, 0u) << "no schedule ever SIGKILLed the child";
  EXPECT_GT(rendezvous_kills, 0u)
      << "no schedule ever died inside a rendezvous window (mid-fsync / "
         "mid-checkpoint / pre-dispatch)";
  EXPECT_GT(recoveries, 0u) << "no schedule ever exercised recovery";
}

TEST(ChaosMatrix, FailoverSchedules) {
  // Multi-server lane: a second phoenixd (server_id 1) shares the primary's
  // data dir, the Phoenix client holds both endpoints as its server group,
  // and every kill targets whichever server the session is currently on —
  // the harness restarts the OTHER one, so each recovery must migrate the
  // session across the group (phase 1 replays the shared WAL on the
  // successor's boot, phase 2 reinstalls SQL state there) while the oracle
  // demands op-equivalence and exactly-once request ids across every
  // migration. PHX_TRANSPORT=tcp runs the lane over TCP.
  std::string why;
  if (!ProcessChaosAvailable(&why)) GTEST_SKIP() << why;
  uint64_t sigkills = 0;
  uint64_t failovers = 0;
  uint64_t recoveries = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    ChaosOptions opts;
    opts.seed = 18000 + seed;
    opts.n_faults = 3;
    opts.transport = ProcessLaneTransport();
    opts.failover = true;
    // Plain between-op kills + message faults only: the rendezvous-armed
    // tail-tearing kinds target one specific child, which would race the
    // current/other swap.
    opts.allow_partial_flush = false;
    opts.allow_torn = false;
    opts.allow_mid_checkpoint = false;
    opts.allow_recovery_crash = false;
    ChaosReport r = RunAndCheck(opts);
    sigkills += r.sigkills;
    failovers += r.failovers;
    recoveries += r.recoveries;
  }
  EXPECT_GT(sigkills, 0u) << "no schedule ever SIGKILLed a server";
  EXPECT_GT(recoveries, 0u) << "no schedule ever exercised recovery";
  EXPECT_GT(failovers, 0u)
      << "no schedule ever migrated the session to the other server";
}

TEST(ChaosMatrix, RecoveryReplayKillSchedules) {
  // Crash DURING parallel WAL replay: the replay-kill fault SIGKILLs the
  // child between ops, then arms a "recovery" rendezvous so the reborn
  // phoenixd — replaying with PHX_RECOVERY_THREADS=4 — is SIGKILLed again
  // mid-replay, with partitions half-applied on worker threads. The retry
  // after that boots over the half-replayed disk; the shadow-model oracle
  // and the independent storage recovery then audit the result exactly as
  // in every other lane. PHX_TRANSPORT=tcp runs it over TCP.
  std::string why;
  if (!ProcessChaosAvailable(&why)) GTEST_SKIP() << why;
  uint64_t replay_kills = 0;
  uint64_t sigkills = 0;
  uint64_t recoveries = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    ChaosOptions opts;
    opts.seed = 16000 + seed;
    opts.n_faults = 3;
    opts.transport = ProcessLaneTransport();
    opts.allow_replay_kill = true;
    opts.recovery_threads = 4;  // every boot replays through the pool
    // Narrow the pool to plain crash + replay-kill so the new kind is
    // actually drawn, and keep checkpoints off so the WAL stays long
    // enough for the armed replay event to exist.
    opts.allow_partial_flush = false;
    opts.allow_torn = false;
    opts.allow_mid_checkpoint = false;
    opts.allow_recovery_crash = false;
    opts.allow_lost_reply = false;
    opts.allow_dropped_request = false;
    ChaosReport r = RunAndCheck(opts);
    replay_kills += r.replay_kills;
    sigkills += r.sigkills;
    recoveries += r.recoveries;
  }
  EXPECT_GT(sigkills, 0u) << "no schedule ever SIGKILLed the child";
  EXPECT_GT(replay_kills, 0u)
      << "no schedule ever died mid-parallel-replay (the armed recovery "
         "rendezvous never fired)";
  EXPECT_GT(recoveries, 0u) << "no schedule ever exercised recovery";
}

TEST(ChaosMatrix, RecoveryEquivalenceMatrix) {
  // Serial/parallel replay equivalence over chaos-generated logs: for a
  // sample of the torn-tail seed block, the post-schedule disk (surviving
  // checkpoint + WAL, tears included) is replayed once with 1 thread and
  // once with 4, and the results must be byte-identical — same encoded
  // store snapshot, same RecoveryInfo accounting. The serial pass may
  // repair the torn tail in place, so the WAL bytes are restored between
  // the passes.
  uint64_t compared = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    ChaosOptions opts;
    opts.seed = 7000 + seed;  // reuse the torn-tail block's plans
    opts.n_faults = 2;
    opts.allow_crash = false;
    opts.allow_mid_checkpoint = false;
    opts.allow_recovery_crash = false;
    opts.allow_lost_reply = false;
    opts.allow_dropped_request = false;
    opts.checkpoint_every_n_commits = (seed % 2 == 0) ? 5 : 0;
    opts.post_run_disk_audit = [&compared](storage::SimDisk* disk,
                                           const std::string& prefix) {
      storage::DurabilityManager serial(disk, prefix);
      const std::string wal = serial.wal_file();
      std::string wal_bytes;
      const bool had_wal = disk->Exists(wal);
      if (had_wal) {
        auto bytes = disk->ReadDurable(wal);
        ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
        wal_bytes = bytes.take();
      }
      storage::TableStore store1, store4;
      storage::RecoveryInfo info1, info4;
      serial.set_recovery_threads(1);
      Status s1 = serial.Recover(&store1, &info1);
      if (had_wal) {
        // Undo any in-place tail repair so both modes scan the same log.
        ASSERT_TRUE(disk->WriteAtomic(wal, wal_bytes).ok());
      }
      storage::DurabilityManager parallel(disk, prefix);
      parallel.set_recovery_threads(4);
      Status s4 = parallel.Recover(&store4, &info4);
      ASSERT_EQ(s1.ok(), s4.ok())
          << "serial: " << s1.ToString() << " parallel: " << s4.ToString();
      if (!s1.ok()) return;
      Encoder e1, e4;
      store1.EncodeSnapshot(&e1);
      store4.EncodeSnapshot(&e4);
      EXPECT_TRUE(e1.Take() == e4.Take())
          << "stores diverge between serial and 4-thread replay";
      EXPECT_EQ(info1.records_replayed, info4.records_replayed);
      EXPECT_EQ(info1.ops_replayed, info4.ops_replayed);
      EXPECT_EQ(info1.records_skipped, info4.records_skipped);
      EXPECT_EQ(info1.next_txn_id, info4.next_txn_id);
      EXPECT_EQ(info1.fence_lsn, info4.fence_lsn);
      EXPECT_EQ(info1.had_checkpoint, info4.had_checkpoint);
      EXPECT_EQ(info1.wal_scan.records, info4.wal_scan.records);
      EXPECT_EQ(info1.wal_scan.bytes_valid, info4.wal_scan.bytes_valid);
      EXPECT_EQ(info1.wal_scan.bytes_corrupt, info4.wal_scan.bytes_corrupt);
      EXPECT_EQ(info1.wal_scan.tear_detected, info4.wal_scan.tear_detected);
      EXPECT_EQ(info1.replay_threads, 1u);
      EXPECT_EQ(info4.replay_threads, 4u);
      ++compared;
    };
    RunAndCheck(opts);
  }
  EXPECT_GT(compared, 0u) << "the equivalence audit never ran";
}

TEST(ChaosMatrix, MvccVisibilitySchedules) {
  // MVCC snapshot-visibility oracle (see chaos.h): concurrent readers spin
  // on a uniformity invariant while a writer commits deliberately-torn
  // transactions, aborts sentinel transactions, and (on most seeds) crashes
  // and recovers mid-schedule. Seeds cross the read/write mix: reader count
  // 1..5, writer transaction count 20..44, crash on ~4 of 5 seeds. Each
  // seed runs the engine in BOTH modes — with MVCC pinned on the oracle
  // asserts no torn read is ever observed; with it pinned off torn reads
  // are merely counted — and the two runs' final table images must match
  // (the read path must never change what the writes produce).
  uint64_t reads_on = 0;
  uint64_t torn_off = 0;
  uint64_t recoveries = 0;
  for (uint64_t seed = 17001; seed <= 17025; ++seed) {
    MvccVisibilityOptions opts;
    opts.seed = seed;
    opts.n_readers = 1 + static_cast<int>(seed % 5);
    opts.n_txns = 20 + static_cast<int>(seed % 7) * 4;
    opts.crash_midway = (seed % 5) != 0;

    opts.mvcc = true;
    MvccVisibilityReport on = RunMvccVisibilitySchedule(opts);
    EXPECT_TRUE(on.ok) << on.DebugString();
    EXPECT_EQ(on.torn_reads, 0u) << on.DebugString();
    reads_on += on.reads;
    recoveries += on.recoveries;

    opts.mvcc = false;
    MvccVisibilityReport off = RunMvccVisibilitySchedule(opts);
    EXPECT_TRUE(off.ok) << off.DebugString();
    torn_off += off.torn_reads;

    EXPECT_EQ(on.final_image, off.final_image)
        << "final states diverge between MVCC modes, seed " << seed;
  }
  EXPECT_GT(reads_on, 0u) << "no reader ever completed a snapshot read";
  EXPECT_GT(recoveries, 0u) << "no schedule ever crashed and recovered";
  // Not asserted per-seed (scheduling-dependent), but across 25 schedules
  // the classification mode should have witnessed at least one tear — if it
  // never does, the oracle's readers are not actually interleaving and the
  // MVCC assertion above is vacuous.
  EXPECT_GT(torn_off, 0u)
      << "classification mode never observed a torn read; oracle is vacuous";
}

TEST(ChaosMatrix, SingleSeedFromEnv) {
  // Repro entry point: replays one schedule named by PHX_CHAOS_SEED with
  // every fault kind enabled and prints the full report. PHX_TRANSPORT=unix
  // or =tcp replays it through a real phoenixd child — the repro lines
  // RunAndCheck prints for the process lane carry that prefix.
  const char* env = std::getenv("PHX_CHAOS_SEED");
  if (env == nullptr) {
    GTEST_SKIP() << "set PHX_CHAOS_SEED=<seed> to replay one schedule";
  }
  ChaosOptions opts;
  opts.seed = std::strtoull(env, nullptr, 10);
  opts.n_ops = 50;
  opts.n_faults = 4;
  const char* transport = std::getenv("PHX_TRANSPORT");
  if (transport != nullptr) {
    std::string t = transport;
    if (t == "unix") opts.transport = Transport::kUnix;
    if (t == "tcp") opts.transport = Transport::kTcp;
  }
  if (opts.transport != Transport::kInproc) {
    std::string why;
    if (!ProcessChaosAvailable(&why)) GTEST_SKIP() << why;
    // Match the process lane so its repro seeds replay the same plan shape.
    opts.n_ops = 40;
    opts.n_faults = 3;
    opts.checkpoint_every_n_commits = (opts.seed % 2 == 0) ? 4 : 0;
  }
  ChaosReport report = RunChaosSchedule(opts);
  std::fprintf(stderr, "%s\n", report.DebugString().c_str());
  EXPECT_TRUE(report.ok) << report.DebugString();
}

}  // namespace
}  // namespace phoenix::chaos
