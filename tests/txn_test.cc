// Transaction semantics: explicit BEGIN/COMMIT/ROLLBACK, statement-level
// atomicity, DDL undo, temp-object undo.

#include "engine/database.h"

#include "obs/metrics.h"

#include "gtest/gtest.h"

namespace phoenix::eng {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(&disk_);
    ASSERT_TRUE(db_->Open().ok());
    sid_ = *db_->CreateSession("t");
    Exec("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)");
  }

  StatementResult Exec(const std::string& sql) {
    auto r = db_->ExecuteScript(sid_, sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    if (!r.ok()) return StatementResult{};
    return std::move(r->back());
  }

  Status TryExec(const std::string& sql) {
    return db_->ExecuteScript(sid_, sql).status();
  }

  int64_t Count() {
    return Exec("SELECT COUNT(*) AS N FROM T").rows[0][0].AsInt64();
  }

  storage::SimDisk disk_;
  std::unique_ptr<Database> db_;
  uint64_t sid_ = 0;
};

TEST_F(TxnTest, CommitMakesChangesVisible) {
  Exec("BEGIN TRANSACTION");
  Exec("INSERT INTO T VALUES (1, 10)");
  Exec("INSERT INTO T VALUES (2, 20)");
  Exec("COMMIT");
  EXPECT_EQ(Count(), 2);
}

TEST_F(TxnTest, RollbackUndoesEverything) {
  Exec("INSERT INTO T VALUES (1, 10)");
  Exec("BEGIN TRANSACTION");
  Exec("INSERT INTO T VALUES (2, 20)");
  Exec("UPDATE T SET V = 99 WHERE K = 1");
  Exec("DELETE FROM T WHERE K = 1");
  Exec("ROLLBACK");
  EXPECT_EQ(Count(), 1);
  EXPECT_EQ(Exec("SELECT V FROM T WHERE K = 1").rows[0][0].AsInt64(), 10);
}

TEST_F(TxnTest, RollbackRestoresUpdatesInReverseOrder) {
  Exec("INSERT INTO T VALUES (1, 10)");
  Exec("BEGIN");
  Exec("UPDATE T SET V = 11 WHERE K = 1");
  Exec("UPDATE T SET V = 12 WHERE K = 1");
  Exec("ROLLBACK");
  EXPECT_EQ(Exec("SELECT V FROM T WHERE K = 1").rows[0][0].AsInt64(), 10);
}

TEST_F(TxnTest, NestedBeginRejected) {
  Exec("BEGIN");
  EXPECT_EQ(TryExec("BEGIN").code(), StatusCode::kSqlError);
  Exec("ROLLBACK");
}

TEST_F(TxnTest, CommitWithoutBeginRejected) {
  EXPECT_EQ(TryExec("COMMIT").code(), StatusCode::kSqlError);
  EXPECT_EQ(TryExec("ROLLBACK").code(), StatusCode::kSqlError);
}

TEST_F(TxnTest, FailedStatementInsideTxnRollsBackOnlyItself) {
  Exec("BEGIN");
  Exec("INSERT INTO T VALUES (1, 10)");
  // This statement fails mid-way (third row collides with the first).
  Status st = TryExec("INSERT INTO T VALUES (2, 20), (3, 30), (1, 0)");
  EXPECT_EQ(st.code(), StatusCode::kConstraint);
  // The transaction is still alive and holds only the first insert.
  Exec("INSERT INTO T VALUES (4, 40)");
  Exec("COMMIT");
  EXPECT_EQ(Count(), 2);
  EXPECT_TRUE(Exec("SELECT * FROM T WHERE K = 2").rows.empty());
}

TEST_F(TxnTest, DdlIsTransactional) {
  Exec("BEGIN");
  Exec("CREATE TABLE T2 (A INTEGER)");
  Exec("INSERT INTO T2 VALUES (1)");
  Exec("ROLLBACK");
  EXPECT_EQ(TryExec("SELECT * FROM T2").code(), StatusCode::kSqlError);
}

TEST_F(TxnTest, DropTableRollbackRestoresContents) {
  Exec("INSERT INTO T VALUES (1, 10), (2, 20)");
  Exec("BEGIN");
  Exec("DROP TABLE T");
  EXPECT_EQ(TryExec("SELECT * FROM T").code(), StatusCode::kSqlError);
  Exec("ROLLBACK");
  EXPECT_EQ(Count(), 2);
  // PK index must be restored too.
  EXPECT_EQ(TryExec("INSERT INTO T VALUES (1, 0)").code(),
            StatusCode::kConstraint);
}

TEST_F(TxnTest, TempProcCreateRollsBack) {
  Exec("BEGIN");
  Exec("CREATE TEMPORARY PROCEDURE TP AS SELECT 1");
  Exec("ROLLBACK");
  EXPECT_EQ(TryExec("EXEC TP").code(), StatusCode::kNotFound);
}

TEST_F(TxnTest, TempProcDropRollsBack) {
  Exec("CREATE TEMPORARY PROCEDURE TP AS SELECT 7 AS X");
  Exec("BEGIN");
  Exec("DROP PROCEDURE TP");
  Exec("ROLLBACK");
  StatementResult r = Exec("EXEC TP");
  ASSERT_TRUE(r.has_rows);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 7);
}

TEST_F(TxnTest, PersistentProcIsTransactional) {
  Exec("BEGIN");
  Exec("CREATE PROCEDURE PP AS SELECT 1 AS X");
  Exec("ROLLBACK");
  EXPECT_EQ(TryExec("EXEC PP").code(), StatusCode::kNotFound);
}

TEST_F(TxnTest, SessionCloseRollsBackOpenTxn) {
  Exec("BEGIN");
  Exec("INSERT INTO T VALUES (1, 10)");
  ASSERT_TRUE(db_->CloseSession(sid_).ok());
  sid_ = *db_->CreateSession("t2");
  EXPECT_EQ(Count(), 0);
}

TEST_F(TxnTest, TwoSessionsInterleave) {
  uint64_t other = *db_->CreateSession("other");
  Exec("BEGIN");
  Exec("INSERT INTO T VALUES (1, 10)");
  // The other session inserts and commits independently (autocommit).
  ASSERT_TRUE(db_->ExecuteScript(other, "INSERT INTO T VALUES (2, 20)").ok());
  Exec("ROLLBACK");
  EXPECT_EQ(Count(), 1);
  EXPECT_EQ(Exec("SELECT K FROM T").rows[0][0].AsInt64(), 2);
}

TEST_F(TxnTest, CheckpointDuringActiveTxnExcludesUncommittedEffects) {
  // Non-quiescent checkpoints: an open transaction no longer blocks
  // Checkpoint(), and the image must hold committed state only — the open
  // transaction's effects are reverted in the snapshot clone.
  Exec("INSERT INTO T VALUES (1, 10)");
  Exec("BEGIN");
  Exec("INSERT INTO T VALUES (2, 20)");
  Exec("UPDATE T SET V = 99 WHERE K = 1");
  ASSERT_TRUE(db_->Checkpoint().ok());
  Exec("ROLLBACK");

  // A "crashed" replacement process sees the checkpoint image (the WAL was
  // truncated up to the fence): only the committed row, with its committed
  // value.
  Database db2(&disk_);
  ASSERT_TRUE(db2.Open().ok());
  uint64_t sid2 = *db2.CreateSession("t2");
  auto rows = db2.ExecuteScript(sid2, "SELECT K, V FROM T");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->back().rows.size(), 1u);
  EXPECT_EQ(rows->back().rows[0][0].AsInt64(), 1);
  EXPECT_EQ(rows->back().rows[0][1].AsInt64(), 10);
}

TEST_F(TxnTest, CheckpointDuringActiveTxnKeepsLiveStateIntact) {
  // The snapshot reverts the open transaction in the CLONE only; the live
  // store must still see the uncommitted effects afterwards.
  Exec("BEGIN");
  Exec("INSERT INTO T VALUES (7, 70)");
  ASSERT_TRUE(db_->Checkpoint().ok());
  EXPECT_EQ(Count(), 1);
  Exec("COMMIT");
  EXPECT_EQ(Count(), 1);
}

TEST_F(TxnTest, AutoCheckpointAfterNCommits) {
  storage::SimDisk disk;
  DatabaseOptions opts;
  opts.checkpoint_every_n_commits = 3;
  Database db(&disk, opts);
  ASSERT_TRUE(db.Open().ok());
  uint64_t sid = *db.CreateSession("x");
  ASSERT_TRUE(db.ExecuteScript(sid, "CREATE TABLE C (A INTEGER)").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db.ExecuteScript(sid, "INSERT INTO C VALUES (1)").ok());
  }
  // With background checkpoints the image write is asynchronous; wait for
  // the pipeline to drain before asserting durability.
  db.WaitForCheckpointIdle();
  // At least one checkpoint happened: the image exists on disk.
  EXPECT_TRUE(disk.Exists("phxdb.ckpt"));
}

TEST_F(TxnTest, ReadOnlyCommitsDeferCheckpointToNextMutatingCommit) {
  // Regression: a due auto-checkpoint that lands on a shared-lock (read-only)
  // commit cannot take the snapshot there. It used to be silently dropped —
  // and since the commit counter kept advancing, a read-heavy workload could
  // starve checkpoints forever. It must now be counted
  // (storage.checkpoint.skipped) and deferred to the next mutating commit.
  storage::SimDisk disk;
  DatabaseOptions opts;
  opts.checkpoint_every_n_commits = 3;
  Database db(&disk, opts);
  ASSERT_TRUE(db.Open().ok());
  uint64_t sid = *db.CreateSession("x");
  ASSERT_TRUE(db.ExecuteScript(sid, "CREATE TABLE C (A INTEGER)").ok());

  obs::MetricsSnapshot before = obs::MetricsRegistry::Default()->Snapshot();
  // Autocommit SELECTs cross the threshold under the shared lock.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(db.ExecuteScript(sid, "SELECT A FROM C").ok());
  }
  obs::MetricsSnapshot mid = obs::MetricsRegistry::Default()->Snapshot();
  EXPECT_GE(mid.counter("storage.checkpoint.skipped") -
                before.counter("storage.checkpoint.skipped"),
            1u);
  EXPECT_FALSE(disk.Exists("phxdb.ckpt"));  // deferred, not taken

  // The first mutating commit afterwards fires the deferred checkpoint.
  ASSERT_TRUE(db.ExecuteScript(sid, "INSERT INTO C VALUES (1)").ok());
  db.WaitForCheckpointIdle();
  EXPECT_TRUE(disk.Exists("phxdb.ckpt"));
}

TEST_F(TxnTest, EmptyTxnCommitWritesNothing) {
  uint64_t syncs = disk_.sync_count();
  Exec("BEGIN");
  Exec("SELECT * FROM T");
  Exec("COMMIT");
  EXPECT_EQ(disk_.sync_count(), syncs);  // read-only txn forces no WAL
}

}  // namespace
}  // namespace phoenix::eng
