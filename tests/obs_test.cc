#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace phoenix::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAddNegative) {
  Gauge g;
  g.Set(10);
  g.Add(-25);
  EXPECT_EQ(g.Value(), -15);
}

TEST(CounterTest, ConcurrentWritersLoseNothing) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Exercise both the registration race and the increment path.
      Counter* c = reg.GetCounter("test.shared");
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.GetCounter("test.shared")->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramTest, BucketingAndQuantiles) {
  Histogram h({10, 100, 1000});
  h.Record(5);     // <= 10
  h.Record(10);    // <= 10 (bounds are inclusive)
  h.Record(50);    // <= 100
  h.Record(5000);  // overflow
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.Sum(), 5065u);
  std::vector<uint64_t> cum = h.CumulativeCounts();
  ASSERT_EQ(cum.size(), 3u);
  EXPECT_EQ(cum[0], 2u);
  EXPECT_EQ(cum[1], 3u);
  EXPECT_EQ(cum[2], 3u);  // overflow bucket not included
  EXPECT_DOUBLE_EQ(h.Mean(), 5065.0 / 4.0);
  EXPECT_EQ(h.QuantileBound(0.5), 10u);
  EXPECT_EQ(h.QuantileBound(1.0), 1000u);  // overflow clamps to last bound
}

TEST(HistogramTest, ConcurrentRecordsLoseNothing) {
  Histogram h(Histogram::LatencyBoundsUs());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * 37 + i) % 2000);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  std::vector<uint64_t> cum = h.CumulativeCounts();
  // Every recorded value is < 2000 <= the largest bound, so the cumulative
  // tail must account for all of them.
  EXPECT_EQ(cum.back(), h.Count());
}

TEST(RegistryTest, StablePointersAndSnapshot) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x.a");
  EXPECT_EQ(a, reg.GetCounter("x.a"));
  a->Increment(7);
  reg.GetGauge("x.g")->Set(-3);
  reg.GetHistogram("x.h", {1, 2})->Record(2);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("x.a"), 7u);
  EXPECT_EQ(snap.counter("x.missing"), 0u);
  EXPECT_EQ(snap.gauges.at("x.g"), -3);
  EXPECT_EQ(snap.histograms.at("x.h").count, 1u);

  reg.Reset();
  EXPECT_EQ(reg.GetCounter("x.a")->Value(), 0u);
  EXPECT_EQ(reg.GetHistogram("x.h")->Count(), 0u);
}

TEST(RegistryTest, ExportRoundTrip) {
  MetricsRegistry reg;
  reg.GetCounter("net.round_trips")->Increment(3);
  reg.GetGauge("engine.open_cursors")->Set(2);
  reg.GetHistogram("net.request_latency_us", {10, 100})->Record(42);

  std::string text = reg.ExportText();
  EXPECT_NE(text.find("net.round_trips 3"), std::string::npos);
  EXPECT_NE(text.find("engine.open_cursors 2"), std::string::npos);

  std::string json = reg.ExportJson();
  // Spot-check the canonical shape documented in DESIGN.md §Observability.
  EXPECT_NE(json.find("\"counters\":{\"net.round_trips\":3}"),
            std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"engine.open_cursors\":2}"),
            std::string::npos);
  EXPECT_NE(json.find("\"net.request_latency_us\":{\"count\":1,\"sum\":42"),
            std::string::npos);
  EXPECT_NE(json.find("{\"le\":100,\"count\":1}"), std::string::npos);
}

TEST(TracerTest, EmitAndSnapshot) {
  Tracer tracer(8);
  tracer.Emit("net.request", {{"request_id", "1"}, {"kind", "fetch"}});
  tracer.Emit("net.response", {{"request_id", "1"}});
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "net.request");
  EXPECT_EQ(events[0].Get("kind"), "fetch");
  EXPECT_EQ(events[1].Get("request_id"), "1");
  EXPECT_EQ(events[1].Get("missing"), "");
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
}

TEST(TracerTest, RingOverflowKeepsNewest) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    tracer.Emit("e", {{"i", std::to_string(i)}});
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.emitted(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first order, holding the newest four events.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].Get("i"), std::to_string(6 + i));
    EXPECT_EQ(events[i].seq, static_cast<uint64_t>(6 + i));
  }
}

TEST(TracerTest, DrainEmptiesButKeepsDropCount) {
  Tracer tracer(2);
  tracer.Emit("a");
  tracer.Emit("b");
  tracer.Emit("c");  // overwrites "a"
  std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "b");
  EXPECT_EQ(events[1].name, "c");
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 1u);
  tracer.Emit("d");
  EXPECT_EQ(tracer.Snapshot().at(0).name, "d");
}

TEST(TracerTest, ConcurrentEmittersAccountForEveryEvent) {
  Tracer tracer(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) tracer.Emit("ev");
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.emitted(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(tracer.size() + tracer.dropped(), tracer.emitted());
}

TEST(TracerTest, ExportJsonShape) {
  Tracer tracer(4);
  tracer.Emit("core.recovery.start", {{"tag", "T1"}});
  std::string json = tracer.ExportJson();
  EXPECT_NE(json.find("\"name\":\"core.recovery.start\""), std::string::npos);
  EXPECT_NE(json.find("\"kv\":{\"tag\":\"T1\"}"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

}  // namespace
}  // namespace phoenix::obs
