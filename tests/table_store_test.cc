// Table heap + PK index + snapshot round trips + temp-table lifecycle.

#include "storage/table_store.h"

#include "common/rng.h"

#include "gtest/gtest.h"

namespace phoenix::storage {
namespace {

Schema KvSchema() {
  Schema s;
  s.AddColumn(Column{"K", DataType::kInt64, false});
  s.AddColumn(Column{"V", DataType::kString, true});
  return s;
}

TEST(Table, InsertAssignsMonotoneRowIds) {
  Table t("T", KvSchema(), {0}, false);
  auto r1 = t.Insert(Row{Value::Int64(1), Value::String("a")});
  auto r2 = t.Insert(Row{Value::Int64(2), Value::String("b")});
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_LT(*r1, *r2);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, PkUniquenessEnforced) {
  Table t("T", KvSchema(), {0}, false);
  ASSERT_TRUE(t.Insert(Row{Value::Int64(1), Value::String("a")}).ok());
  auto dup = t.Insert(Row{Value::Int64(1), Value::String("b")});
  EXPECT_EQ(dup.status().code(), StatusCode::kConstraint);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, NoPkMeansNoUniquenessCheck) {
  Table t("T", KvSchema(), {}, false);
  ASSERT_TRUE(t.Insert(Row{Value::Int64(1), Value::String("a")}).ok());
  ASSERT_TRUE(t.Insert(Row{Value::Int64(1), Value::String("a")}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_TRUE(t.FindByPk(Row{Value::Int64(1)}).status().IsNotFound());
}

TEST(Table, FindByPkAndDelete) {
  Table t("T", KvSchema(), {0}, false);
  auto rid = t.Insert(Row{Value::Int64(5), Value::String("five")});
  ASSERT_TRUE(rid.ok());
  auto found = t.FindByPk(Row{Value::Int64(5)});
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *rid);
  ASSERT_TRUE(t.Delete(*rid).ok());
  EXPECT_TRUE(t.FindByPk(Row{Value::Int64(5)}).status().IsNotFound());
  EXPECT_EQ(t.Delete(*rid).code(), StatusCode::kNotFound);
}

TEST(Table, UpdatePreservesRowIdAndReindexesPk) {
  Table t("T", KvSchema(), {0}, false);
  auto rid = t.Insert(Row{Value::Int64(1), Value::String("a")});
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(t.Update(*rid, Row{Value::Int64(9), Value::String("z")}).ok());
  EXPECT_TRUE(t.FindByPk(Row{Value::Int64(1)}).status().IsNotFound());
  auto moved = t.FindByPk(Row{Value::Int64(9)});
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, *rid);
}

TEST(Table, UpdateToDuplicatePkRejected) {
  Table t("T", KvSchema(), {0}, false);
  ASSERT_TRUE(t.Insert(Row{Value::Int64(1), Value::String("a")}).ok());
  auto rid2 = t.Insert(Row{Value::Int64(2), Value::String("b")});
  ASSERT_TRUE(rid2.ok());
  EXPECT_EQ(t.Update(*rid2, Row{Value::Int64(1), Value::String("b")}).code(),
            StatusCode::kConstraint);
  // Victim row unchanged.
  EXPECT_EQ((*t.Find(*rid2))[0].AsInt64(), 2);
}

TEST(Table, CoercionAppliesOnInsert) {
  Table t("T", KvSchema(), {0}, false);
  auto rid = t.Insert(Row{Value::Int32(1), Value::Null()});
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ((*t.Find(*rid))[0].type(), DataType::kInt64);
}

TEST(Table, RidHintRestoresExactIds) {
  Table t("T", KvSchema(), {0}, false);
  ASSERT_TRUE(t.Insert(Row{Value::Int64(1), Value::String("a")}, 42).ok());
  EXPECT_NE(t.Find(42), nullptr);
  EXPECT_EQ(t.next_rid(), 43u);
  // Colliding hint is an internal error, not silent corruption.
  auto dup = t.Insert(Row{Value::Int64(2), Value::String("b")}, 42);
  EXPECT_FALSE(dup.ok());
}

TEST(Table, CompositePk) {
  Schema s;
  s.AddColumn(Column{"A", DataType::kInt64, false});
  s.AddColumn(Column{"B", DataType::kInt64, false});
  s.AddColumn(Column{"V", DataType::kString, true});
  Table t("T", s, {0, 1}, false);
  ASSERT_TRUE(
      t.Insert(Row{Value::Int64(1), Value::Int64(1), Value::String("x")}).ok());
  ASSERT_TRUE(
      t.Insert(Row{Value::Int64(1), Value::Int64(2), Value::String("y")}).ok());
  auto dup =
      t.Insert(Row{Value::Int64(1), Value::Int64(2), Value::String("z")});
  EXPECT_EQ(dup.status().code(), StatusCode::kConstraint);
  auto found = t.FindByPk(Row{Value::Int64(1), Value::Int64(2)});
  ASSERT_TRUE(found.ok());
}

TEST(Table, PkIndexIsKeyOrdered) {
  Table t("T", KvSchema(), {0}, false);
  for (int64_t k : {5, 1, 9, 3}) {
    ASSERT_TRUE(t.Insert(Row{Value::Int64(k), Value::Null()}).ok());
  }
  int64_t prev = -1;
  for (const auto& [key, rid] : t.pk_index()) {
    EXPECT_GT(key[0].AsInt64(), prev);
    prev = key[0].AsInt64();
  }
}

TEST(Table, SnapshotRoundTrip) {
  Table t("T", KvSchema(), {0}, false);
  for (int64_t k = 1; k <= 20; ++k) {
    ASSERT_TRUE(
        t.Insert(Row{Value::Int64(k), Value::String("v" + std::to_string(k))})
            .ok());
  }
  ASSERT_TRUE(t.Delete(3).ok());
  Encoder enc;
  t.EncodeSnapshot(&enc);
  Decoder dec(enc.data());
  auto back = Table::DecodeSnapshot(&dec);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->num_rows(), 19u);
  EXPECT_EQ((*back)->next_rid(), t.next_rid());
  EXPECT_EQ((*back)->Find(3), nullptr);
  ASSERT_NE((*back)->Find(7), nullptr);
  EXPECT_EQ((*(*back)->Find(7))[1].AsString(), "v7");
  // PK index rebuilt.
  EXPECT_TRUE((*back)->FindByPk(Row{Value::Int64(10)}).ok());
}

TEST(TableStore, CreateGetDrop) {
  TableStore store;
  auto t = store.CreateTable("orders", KvSchema(), {0}, false);
  ASSERT_TRUE(t.ok());
  EXPECT_NE(store.Get("ORDERS"), nullptr);
  EXPECT_NE(store.Get("Orders"), nullptr);
  EXPECT_EQ(store.CreateTable("ORDERS", KvSchema(), {}, false).status().code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(store.DropTable("orders").ok());
  EXPECT_EQ(store.Get("ORDERS"), nullptr);
  EXPECT_EQ(store.DropTable("orders").code(), StatusCode::kNotFound);
}

TEST(TableStore, PkColumnRangeValidated) {
  TableStore store;
  EXPECT_FALSE(store.CreateTable("T", KvSchema(), {5}, false).ok());
}

TEST(TableStore, SessionTempsDroppedTogether) {
  TableStore store;
  auto t1 = store.CreateTable("TMP1", KvSchema(), {}, true);
  auto t2 = store.CreateTable("TMP2", KvSchema(), {}, true);
  auto p = store.CreateTable("PERM", KvSchema(), {}, false);
  ASSERT_TRUE(t1.ok() && t2.ok() && p.ok());
  (*t1)->set_owner_session(7);
  (*t2)->set_owner_session(8);
  auto dropped = store.DropSessionTemps(7);
  EXPECT_EQ(dropped, std::vector<std::string>{"TMP1"});
  EXPECT_EQ(store.Get("TMP1"), nullptr);
  EXPECT_NE(store.Get("TMP2"), nullptr);
  EXPECT_NE(store.Get("PERM"), nullptr);
}

TEST(TableStore, SnapshotSkipsTempTables) {
  TableStore store;
  ASSERT_TRUE(store.CreateTable("PERM", KvSchema(), {0}, false).ok());
  ASSERT_TRUE(store.CreateTable("TMP", KvSchema(), {}, true).ok());
  Encoder enc;
  store.EncodeSnapshot(&enc);
  TableStore back;
  Decoder dec(enc.data());
  ASSERT_TRUE(back.DecodeSnapshot(&dec).ok());
  EXPECT_NE(back.Get("PERM"), nullptr);
  EXPECT_EQ(back.Get("TMP"), nullptr);
}

// Property: a random operation sequence applied to a table and to a model
// map produces identical contents, and snapshots round-trip at every stage.
TEST(Table, RandomOpsMatchModelProperty) {
  Rng rng(31337);
  Table t("T", KvSchema(), {0}, false);
  std::map<int64_t, std::pair<RowId, std::string>> model;  // pk -> (rid, v)
  for (int step = 0; step < 3000; ++step) {
    int64_t key = static_cast<int64_t>(rng.NextBelow(200));
    switch (rng.NextBelow(3)) {
      case 0: {  // insert
        auto rid = t.Insert(Row{Value::Int64(key), Value::String("s")});
        if (model.count(key)) {
          ASSERT_FALSE(rid.ok());
        } else {
          ASSERT_TRUE(rid.ok());
          model[key] = {*rid, "s"};
        }
        break;
      }
      case 1: {  // delete
        if (model.count(key)) {
          ASSERT_TRUE(t.Delete(model[key].first).ok());
          model.erase(key);
        }
        break;
      }
      default: {  // update value in place
        if (model.count(key)) {
          std::string nv = "u" + std::to_string(step);
          ASSERT_TRUE(t.Update(model[key].first,
                               Row{Value::Int64(key), Value::String(nv)})
                          .ok());
          model[key].second = nv;
        }
        break;
      }
    }
  }
  ASSERT_EQ(t.num_rows(), model.size());
  for (const auto& [key, entry] : model) {
    auto rid = t.FindByPk(Row{Value::Int64(key)});
    ASSERT_TRUE(rid.ok());
    ASSERT_EQ(*rid, entry.first);
    ASSERT_EQ((*t.Find(*rid))[1].AsString(), entry.second);
  }
}

}  // namespace
}  // namespace phoenix::storage
