// WAL framing, checksums, and torn-tail tolerance.

#include "storage/wal.h"

#include "common/rng.h"
#include "storage/sim_disk.h"

#include "gtest/gtest.h"

namespace phoenix::storage {
namespace {

Schema SampleSchema() {
  Schema s;
  s.AddColumn(Column{"K", DataType::kInt64, false});
  s.AddColumn(Column{"V", DataType::kString, true});
  return s;
}

WalCommitRecord SampleCommit(uint64_t txn_id) {
  WalCommitRecord rec;
  rec.txn_id = txn_id;
  rec.ops.push_back(WalOp::CreateTable("T", SampleSchema(), {0}));
  rec.ops.push_back(
      WalOp::Insert("T", 1, Row{Value::Int64(1), Value::String("one")}));
  rec.ops.push_back(
      WalOp::Update("T", 1, Row{Value::Int64(1), Value::String("uno")}));
  rec.ops.push_back(WalOp::Delete("T", 1));
  rec.ops.push_back(WalOp::DropTable("T"));
  return rec;
}

TEST(Wal, RoundTripAllOpKinds) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  ASSERT_TRUE(writer.AppendCommit(SampleCommit(7)).ok());
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  const WalCommitRecord& rec = (*records)[0];
  EXPECT_EQ(rec.txn_id, 7u);
  ASSERT_EQ(rec.ops.size(), 5u);
  EXPECT_EQ(rec.ops[0].kind, WalOpKind::kCreateTable);
  EXPECT_EQ(rec.ops[0].pk_columns, std::vector<int>{0});
  EXPECT_TRUE(rec.ops[0].schema == SampleSchema());
  EXPECT_EQ(rec.ops[1].kind, WalOpKind::kInsert);
  EXPECT_EQ(rec.ops[1].rid, 1u);
  EXPECT_EQ(rec.ops[1].row[1].AsString(), "one");
  EXPECT_EQ(rec.ops[2].kind, WalOpKind::kUpdate);
  EXPECT_EQ(rec.ops[3].kind, WalOpKind::kDelete);
  EXPECT_EQ(rec.ops[4].kind, WalOpKind::kDropTable);
}

TEST(Wal, MultipleRecordsInOrder) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(writer.AppendCommit(SampleCommit(i)).ok());
  }
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ((*records)[i].txn_id, i + 1);
}

TEST(Wal, MissingFileMeansEmptyLog) {
  SimDisk disk;
  auto records = WalReader::ReadAll(disk, "absent.wal");
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(Wal, UnsyncedCommitLostOnCrash) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  ASSERT_TRUE(writer.AppendCommit(SampleCommit(1)).ok());
  ASSERT_TRUE(writer.AppendCommitNoSync(SampleCommit(2)).ok());
  disk.Crash();
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].txn_id, 1u);
}

TEST(Wal, ResetTruncates) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  ASSERT_TRUE(writer.AppendCommit(SampleCommit(1)).ok());
  ASSERT_TRUE(writer.Reset().ok());
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(Wal, ChecksumDetectsCorruptTail) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  ASSERT_TRUE(writer.AppendCommit(SampleCommit(1)).ok());
  // Append garbage bytes that look like a frame header but fail the CRC.
  Encoder garbage;
  garbage.PutU32(12);
  garbage.PutU32(0xBAD);
  garbage.PutBytes("0123456789AB", 12);
  ASSERT_TRUE(disk.Append("x.wal", garbage.data()).ok());
  ASSERT_TRUE(disk.Sync("x.wal").ok());
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);  // garbage tail ignored
}

// Property: for any partial-flush fraction, recovery reads some prefix of
// the committed records and never a torn/corrupt one.
TEST(Wal, TornTailPrefixProperty) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    SimDisk disk;
    WalWriter writer(&disk, "x.wal");
    const int n = 8;
    for (uint64_t i = 1; i <= n; ++i) {
      // NoSync so the whole log is one volatile tail we can tear anywhere.
      ASSERT_TRUE(writer.AppendCommitNoSync(SampleCommit(i)).ok());
    }
    disk.CrashWithPartialFlush(rng.NextDouble());
    auto records = WalReader::ReadAll(disk, "x.wal");
    ASSERT_TRUE(records.ok());
    ASSERT_LE(records->size(), static_cast<size_t>(n));
    for (size_t i = 0; i < records->size(); ++i) {
      ASSERT_EQ((*records)[i].txn_id, i + 1);
      ASSERT_EQ((*records)[i].ops.size(), 5u);
    }
  }
}

/// Durable bytes of a log holding commits 1..n (for byte-exact tearing).
std::string WalBytes(int n) {
  SimDisk tmp;
  WalWriter writer(&tmp, "t.wal");
  for (uint64_t i = 1; i <= static_cast<uint64_t>(n); ++i) {
    EXPECT_TRUE(writer.AppendCommit(SampleCommit(i)).ok());
  }
  auto bytes = tmp.ReadDurable("t.wal");
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

/// Installs `bytes` as the entire durable WAL of `disk`.
void InstallWal(SimDisk* disk, const std::string& bytes) {
  EXPECT_TRUE(disk->Append("x.wal", bytes).ok());
  EXPECT_TRUE(disk->Sync("x.wal").ok());
}

TEST(Wal, RecordTornMidHeaderRecoversPrefix) {
  // The last record is cut 3 bytes into its 8-byte [len][crc] header.
  std::string full = WalBytes(3);
  size_t two = WalBytes(2).size();
  SimDisk disk;
  InstallWal(&disk, full.substr(0, two + 3));
  WalScanStats stats;
  auto records = WalReader::ReadAll(disk, "x.wal", &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[1].txn_id, 2u);
  EXPECT_TRUE(stats.tear_detected);
  EXPECT_EQ(stats.bytes_valid, two);
  EXPECT_EQ(stats.records, 2u);
}

TEST(Wal, RecordTornMidPayloadRecoversPrefix) {
  // The last record is cut in the middle of its payload: the length field
  // promises more bytes than the file holds.
  std::string full = WalBytes(3);
  size_t two = WalBytes(2).size();
  size_t payload = full.size() - two - 8;
  SimDisk disk;
  InstallWal(&disk, full.substr(0, two + 8 + payload / 2));
  WalScanStats stats;
  auto records = WalReader::ReadAll(disk, "x.wal", &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_TRUE(stats.tear_detected);
  EXPECT_EQ(stats.bytes_valid, two);
}

TEST(Wal, CorruptedCrcByteDropsOnlyThatRecord) {
  // One flipped byte inside the last record's CRC field.
  std::string full = WalBytes(3);
  size_t two = WalBytes(2).size();
  full[two + 5] = static_cast<char>(full[two + 5] ^ 0x40);
  SimDisk disk;
  InstallWal(&disk, full);
  WalScanStats stats;
  auto records = WalReader::ReadAll(disk, "x.wal", &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_TRUE(stats.tear_detected);
  EXPECT_EQ(stats.bytes_valid, two);
}

TEST(Wal, CorruptionStopsReplayBeforeLaterIntactRecords) {
  // A flipped payload byte in record 2: recovery must stop at the longest
  // VALID prefix (record 1) and never replay the torn record — even though
  // record 3 after it is intact (no resynchronization on garbage).
  std::string full = WalBytes(3);
  size_t one = WalBytes(1).size();
  full[one + 8 + 4] = static_cast<char>(full[one + 8 + 4] ^ 0x01);
  SimDisk disk;
  InstallWal(&disk, full);
  WalScanStats stats;
  auto records = WalReader::ReadAll(disk, "x.wal", &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].txn_id, 1u);
  EXPECT_TRUE(stats.tear_detected);
  EXPECT_EQ(stats.bytes_valid, one);
}

// Property: CrashTorn (byte-granular truncation + possible corruption of
// the flushed tail) always leaves a log that recovers to some prefix of the
// appended commits, never a torn or corrupt one.
TEST(Wal, CrashTornPrefixProperty) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    SimDisk disk;
    WalWriter writer(&disk, "x.wal");
    const int n = 8;
    for (uint64_t i = 1; i <= n; ++i) {
      ASSERT_TRUE(writer.AppendCommitNoSync(SampleCommit(i)).ok());
    }
    SimDisk::TornCrashSpec spec;
    spec.seed = seed;
    disk.CrashTorn(spec);
    WalScanStats stats;
    auto records = WalReader::ReadAll(disk, "x.wal", &stats);
    ASSERT_TRUE(records.ok()) << "seed " << seed;
    ASSERT_LE(records->size(), static_cast<size_t>(n));
    for (size_t i = 0; i < records->size(); ++i) {
      ASSERT_EQ((*records)[i].txn_id, i + 1) << "seed " << seed;
      ASSERT_EQ((*records)[i].ops.size(), 5u) << "seed " << seed;
    }
  }
}

TEST(Wal, ChecksumIsStable) {
  EXPECT_EQ(WalChecksum("abc"), WalChecksum("abc"));
  EXPECT_NE(WalChecksum("abc"), WalChecksum("abd"));
  EXPECT_NE(WalChecksum(""), WalChecksum(std::string("\0", 1)));
}

}  // namespace
}  // namespace phoenix::storage
