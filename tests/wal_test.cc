// WAL framing, checksums, and torn-tail tolerance.

#include "storage/wal.h"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "storage/sim_disk.h"

#include "gtest/gtest.h"

namespace phoenix::storage {
namespace {

Schema SampleSchema() {
  Schema s;
  s.AddColumn(Column{"K", DataType::kInt64, false});
  s.AddColumn(Column{"V", DataType::kString, true});
  return s;
}

WalCommitRecord SampleCommit(uint64_t txn_id) {
  WalCommitRecord rec;
  rec.txn_id = txn_id;
  rec.ops.push_back(WalOp::CreateTable("T", SampleSchema(), {0}));
  rec.ops.push_back(
      WalOp::Insert("T", 1, Row{Value::Int64(1), Value::String("one")}));
  rec.ops.push_back(
      WalOp::Update("T", 1, Row{Value::Int64(1), Value::String("uno")}));
  rec.ops.push_back(WalOp::Delete("T", 1));
  rec.ops.push_back(WalOp::DropTable("T"));
  return rec;
}

TEST(Wal, RoundTripAllOpKinds) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  ASSERT_TRUE(writer.AppendCommit(SampleCommit(7)).ok());
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  const WalCommitRecord& rec = (*records)[0];
  EXPECT_EQ(rec.txn_id, 7u);
  ASSERT_EQ(rec.ops.size(), 5u);
  EXPECT_EQ(rec.ops[0].kind, WalOpKind::kCreateTable);
  EXPECT_EQ(rec.ops[0].columns, std::vector<int>{0});
  EXPECT_TRUE(rec.ops[0].schema == SampleSchema());
  EXPECT_EQ(rec.ops[1].kind, WalOpKind::kInsert);
  EXPECT_EQ(rec.ops[1].rid, 1u);
  EXPECT_EQ(rec.ops[1].row[1].AsString(), "one");
  EXPECT_EQ(rec.ops[2].kind, WalOpKind::kUpdate);
  EXPECT_EQ(rec.ops[3].kind, WalOpKind::kDelete);
  EXPECT_EQ(rec.ops[4].kind, WalOpKind::kDropTable);
}

// `columns` is one field with two roles: the primary-key ordinals for
// kCreateTable and the key ordinals for kCreateIndex (empty for everything
// else). The wire layout is identical for both — replay routes on `kind` —
// and the round trip must preserve each role exactly.
TEST(Wal, RoundTripIndexOpsAndColumnRoles) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  WalCommitRecord rec;
  rec.txn_id = 9;
  rec.ops.push_back(WalOp::CreateTable("T", SampleSchema(), {1, 0}));
  rec.ops.push_back(WalOp::CreateIndex("T", "T_V", {1}));
  rec.ops.push_back(WalOp::DropIndex("T", "T_V"));
  ASSERT_TRUE(writer.AppendCommit(rec).ok());
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  const std::vector<WalOp>& ops = (*records)[0].ops;
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].kind, WalOpKind::kCreateTable);
  EXPECT_EQ(ops[0].columns, (std::vector<int>{1, 0}));  // pk ordinals, ordered
  EXPECT_EQ(ops[1].kind, WalOpKind::kCreateIndex);
  EXPECT_EQ(ops[1].index_name, "T_V");
  EXPECT_EQ(ops[1].columns, std::vector<int>{1});  // index key ordinals
  EXPECT_EQ(ops[2].kind, WalOpKind::kDropIndex);
  EXPECT_EQ(ops[2].index_name, "T_V");
  EXPECT_TRUE(ops[2].columns.empty());
}

TEST(Wal, ScanDeliversRecordsInOrderWithoutMaterializing) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(writer.AppendCommit(SampleCommit(i)).ok());
  }
  std::vector<uint64_t> seen;
  WalScanStats stats;
  ASSERT_TRUE(WalReader::Scan(disk, "x.wal", &stats,
                              [&seen](WalCommitRecord&& rec) {
                                seen.push_back(rec.txn_id);
                                return Status::Ok();
                              })
                  .ok());
  ASSERT_EQ(seen.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(seen[i], i + 1);
  EXPECT_EQ(stats.records, 10u);
  EXPECT_FALSE(stats.tear_detected);
  EXPECT_EQ(stats.bytes_valid, stats.bytes_total);
}

// The skip predicate short-circuits before op decode, but skipped frames
// still count as records and still advance the valid prefix — a log whose
// tail is entirely checkpoint-subsumed must not look torn.
TEST(Wal, ScanSkipPredicateCountsRecordsAndValidBytes) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(writer.AppendCommit(SampleCommit(i)).ok());
  }
  std::vector<uint64_t> delivered;
  WalScanStats stats;
  ASSERT_TRUE(WalReader::Scan(
                  disk, "x.wal", &stats,
                  [&delivered](WalCommitRecord&& rec) {
                    delivered.push_back(rec.txn_id);
                    return Status::Ok();
                  },
                  [](uint64_t, uint64_t txn_id) { return txn_id <= 6; })
                  .ok());
  ASSERT_EQ(delivered.size(), 4u);
  EXPECT_EQ(delivered.front(), 7u);
  EXPECT_EQ(stats.records, 10u);  // skipped frames are still records
  EXPECT_FALSE(stats.tear_detected);
  EXPECT_EQ(stats.bytes_valid, stats.bytes_total);

  // Skip-everything: the scan touches no op bytes yet reports a clean,
  // fully-valid log.
  WalScanStats all_skipped;
  ASSERT_TRUE(WalReader::Scan(
                  disk, "x.wal", &all_skipped,
                  [](WalCommitRecord&&) {
                    ADD_FAILURE() << "skip-all delivered a record";
                    return Status::Ok();
                  },
                  [](uint64_t, uint64_t) { return true; })
                  .ok());
  EXPECT_EQ(all_skipped.records, 10u);
  EXPECT_FALSE(all_skipped.tear_detected);
  EXPECT_EQ(all_skipped.bytes_valid, all_skipped.bytes_total);
}

// A consumer abort is not a log problem: the scan must surface the error
// and the progress so far, without classifying the unreached remainder as
// a tear (no tear metrics, no corrupt-byte counts).
TEST(Wal, ScanConsumerErrorReportsProgressNotTear) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(writer.AppendCommit(SampleCommit(i)).ok());
  }
  WalScanStats stats;
  Status st = WalReader::Scan(disk, "x.wal", &stats,
                              [](WalCommitRecord&& rec) {
                                if (rec.txn_id == 4) {
                                  return Status::Internal("replay abort");
                                }
                                return Status::Ok();
                              });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("replay abort"), std::string::npos);
  EXPECT_EQ(stats.records, 4u);  // the aborting record was decoded
  EXPECT_FALSE(stats.tear_detected);
  EXPECT_EQ(stats.bytes_corrupt, 0u);
  EXPECT_EQ(stats.bytes_unforced_tail, 0u);
  EXPECT_LT(stats.bytes_valid, stats.bytes_total);
}

TEST(Wal, MultipleRecordsInOrder) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(writer.AppendCommit(SampleCommit(i)).ok());
  }
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ((*records)[i].txn_id, i + 1);
}

TEST(Wal, MissingFileMeansEmptyLog) {
  SimDisk disk;
  auto records = WalReader::ReadAll(disk, "absent.wal");
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(Wal, UnsyncedCommitLostOnCrash) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  ASSERT_TRUE(writer.AppendCommit(SampleCommit(1)).ok());
  ASSERT_TRUE(writer.AppendCommitNoSync(SampleCommit(2)).ok());
  disk.Crash();
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].txn_id, 1u);
}

TEST(Wal, ResetTruncates) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  ASSERT_TRUE(writer.AppendCommit(SampleCommit(1)).ok());
  ASSERT_TRUE(writer.Reset().ok());
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(Wal, TruncateUpToRemovesOnlyTheFencedPrefix) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(writer.AppendCommit(SampleCommit(i)).ok());  // LSNs 1..5
  }
  ASSERT_EQ(writer.last_assigned_lsn(), 5u);
  ASSERT_TRUE(writer.TruncateUpTo(3).ok());
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].lsn, 4u);
  EXPECT_EQ((*records)[1].lsn, 5u);
  // Appends after the truncation land behind the survivors, in LSN order.
  ASSERT_TRUE(writer.AppendCommit(SampleCommit(6)).ok());
  records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[2].lsn, 6u);
}

TEST(Wal, TruncateUpToFullFenceEmptiesTheLog) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  for (uint64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(writer.AppendCommit(SampleCommit(i)).ok());
  }
  ASSERT_TRUE(writer.TruncateUpTo(writer.last_assigned_lsn()).ok());
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(Wal, TruncateUpToBelowFirstLsnIsANoOp) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  ASSERT_TRUE(writer.AppendCommit(SampleCommit(1)).ok());
  uint64_t syncs = disk.sync_count();
  ASSERT_TRUE(writer.TruncateUpTo(0).ok());
  EXPECT_EQ(disk.sync_count(), syncs);  // no rewrite happened
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);
}

TEST(Wal, TruncateUpToPreservesTornTailVerbatim) {
  // The fence scan stops at the first invalid frame: a torn tail past the
  // fenced prefix belongs to the *un*-fenced region and must survive the
  // rewrite byte-for-byte (recovery classifies it later).
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  ASSERT_TRUE(writer.AppendCommit(SampleCommit(1)).ok());
  ASSERT_TRUE(writer.AppendCommit(SampleCommit(2)).ok());
  // An incomplete frame: the header declares 12 payload bytes, 2 exist.
  Encoder torn_enc;
  torn_enc.PutU32(12);
  torn_enc.PutU32(0xBAD);
  torn_enc.PutBytes("to", 2);
  const std::string torn = torn_enc.data();
  ASSERT_TRUE(disk.Append("x.wal", torn).ok());
  ASSERT_TRUE(disk.Sync("x.wal").ok());
  ASSERT_TRUE(writer.TruncateUpTo(1).ok());
  std::string bytes = disk.ReadDurable("x.wal").take();
  ASSERT_GE(bytes.size(), torn.size());
  EXPECT_EQ(bytes.substr(bytes.size() - torn.size()), torn);
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].lsn, 2u);
}

TEST(Wal, NoteValidPrefixAmputatesLazilyOnNextAppend) {
  SimDisk disk;
  uint64_t valid_bytes = 0;
  {
    WalWriter writer(&disk, "x.wal");
    ASSERT_TRUE(writer.AppendCommit(SampleCommit(1)).ok());
    valid_bytes = disk.ReadDurable("x.wal")->size();
    ASSERT_TRUE(writer.AppendCommitNoSync(SampleCommit(2)).ok());
  }
  disk.CrashWithPartialFlush(0.5);  // unforced residue past the valid prefix
  ASSERT_GT(disk.ReadDurable("x.wal")->size(), valid_bytes);

  WalWriter writer(&disk, "x.wal");
  writer.set_next_lsn(2);
  writer.NoteValidPrefix(valid_bytes);
  // Noting the prefix touches nothing: the stale bytes are still on disk.
  EXPECT_GT(disk.ReadDurable("x.wal")->size(), valid_bytes);
  obs::MetricsSnapshot before = obs::MetricsRegistry::Default()->Snapshot();
  // The next append cuts the tail first, then lands cleanly behind it.
  ASSERT_TRUE(writer.AppendCommit(SampleCommit(9)).ok());
  obs::MetricsSnapshot after = obs::MetricsRegistry::Default()->Snapshot();
  EXPECT_EQ(after.counter("storage.wal.stale_tail_amputations") -
                before.counter("storage.wal.stale_tail_amputations"),
            1u);
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].txn_id, 1u);
  EXPECT_EQ((*records)[1].txn_id, 9u);
  EXPECT_EQ((*records)[1].lsn, 2u);
}

TEST(Wal, ChecksumDetectsCorruptTail) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  ASSERT_TRUE(writer.AppendCommit(SampleCommit(1)).ok());
  // Append garbage bytes that look like a frame header but fail the CRC.
  Encoder garbage;
  garbage.PutU32(12);
  garbage.PutU32(0xBAD);
  garbage.PutBytes("0123456789AB", 12);
  ASSERT_TRUE(disk.Append("x.wal", garbage.data()).ok());
  ASSERT_TRUE(disk.Sync("x.wal").ok());
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);  // garbage tail ignored
}

// Property: for any partial-flush fraction, recovery reads some prefix of
// the committed records and never a torn/corrupt one.
TEST(Wal, TornTailPrefixProperty) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    SimDisk disk;
    WalWriter writer(&disk, "x.wal");
    const int n = 8;
    for (uint64_t i = 1; i <= n; ++i) {
      // NoSync so the whole log is one volatile tail we can tear anywhere.
      ASSERT_TRUE(writer.AppendCommitNoSync(SampleCommit(i)).ok());
    }
    disk.CrashWithPartialFlush(rng.NextDouble());
    auto records = WalReader::ReadAll(disk, "x.wal");
    ASSERT_TRUE(records.ok());
    ASSERT_LE(records->size(), static_cast<size_t>(n));
    for (size_t i = 0; i < records->size(); ++i) {
      ASSERT_EQ((*records)[i].txn_id, i + 1);
      ASSERT_EQ((*records)[i].ops.size(), 5u);
    }
  }
}

/// Durable bytes of a log holding commits 1..n (for byte-exact tearing).
std::string WalBytes(int n) {
  SimDisk tmp;
  WalWriter writer(&tmp, "t.wal");
  for (uint64_t i = 1; i <= static_cast<uint64_t>(n); ++i) {
    EXPECT_TRUE(writer.AppendCommit(SampleCommit(i)).ok());
  }
  auto bytes = tmp.ReadDurable("t.wal");
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

/// Installs `bytes` as the entire durable WAL of `disk`.
void InstallWal(SimDisk* disk, const std::string& bytes) {
  EXPECT_TRUE(disk->Append("x.wal", bytes).ok());
  EXPECT_TRUE(disk->Sync("x.wal").ok());
}

TEST(Wal, RecordTornMidHeaderRecoversPrefix) {
  // The last record is cut 3 bytes into its 8-byte [len][crc] header.
  std::string full = WalBytes(3);
  size_t two = WalBytes(2).size();
  SimDisk disk;
  InstallWal(&disk, full.substr(0, two + 3));
  WalScanStats stats;
  auto records = WalReader::ReadAll(disk, "x.wal", &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[1].txn_id, 2u);
  EXPECT_TRUE(stats.tear_detected);
  EXPECT_EQ(stats.bytes_valid, two);
  EXPECT_EQ(stats.records, 2u);
  // An incomplete header is the signature of an unforced append cut by the
  // crash — expected loss, not corruption.
  EXPECT_EQ(stats.bytes_unforced_tail, 3u);
  EXPECT_EQ(stats.bytes_corrupt, 0u);
}

TEST(Wal, RecordTornMidPayloadRecoversPrefix) {
  // The last record is cut in the middle of its payload: the length field
  // promises more bytes than the file holds.
  std::string full = WalBytes(3);
  size_t two = WalBytes(2).size();
  size_t payload = full.size() - two - 8;
  SimDisk disk;
  InstallWal(&disk, full.substr(0, two + 8 + payload / 2));
  WalScanStats stats;
  auto records = WalReader::ReadAll(disk, "x.wal", &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_TRUE(stats.tear_detected);
  EXPECT_EQ(stats.bytes_valid, two);
  // Length field promises more bytes than the file holds: clean truncation.
  EXPECT_EQ(stats.bytes_unforced_tail, 8 + payload / 2);
  EXPECT_EQ(stats.bytes_corrupt, 0u);
}

TEST(Wal, CorruptedCrcByteDropsOnlyThatRecord) {
  // One flipped byte inside the last record's CRC field.
  std::string full = WalBytes(3);
  size_t two = WalBytes(2).size();
  full[two + 5] = static_cast<char>(full[two + 5] ^ 0x40);
  SimDisk disk;
  InstallWal(&disk, full);
  WalScanStats stats;
  auto records = WalReader::ReadAll(disk, "x.wal", &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_TRUE(stats.tear_detected);
  EXPECT_EQ(stats.bytes_valid, two);
  // A complete frame whose CRC fails is real corruption, not an unforced
  // tail — recovery logs must not blame it on a clean crash.
  EXPECT_EQ(stats.bytes_corrupt, full.size() - two);
  EXPECT_EQ(stats.bytes_unforced_tail, 0u);
}

TEST(Wal, CorruptionStopsReplayBeforeLaterIntactRecords) {
  // A flipped payload byte in record 2: recovery must stop at the longest
  // VALID prefix (record 1) and never replay the torn record — even though
  // record 3 after it is intact (no resynchronization on garbage).
  std::string full = WalBytes(3);
  size_t one = WalBytes(1).size();
  full[one + 8 + 4] = static_cast<char>(full[one + 8 + 4] ^ 0x01);
  SimDisk disk;
  InstallWal(&disk, full);
  WalScanStats stats;
  auto records = WalReader::ReadAll(disk, "x.wal", &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].txn_id, 1u);
  EXPECT_TRUE(stats.tear_detected);
  EXPECT_EQ(stats.bytes_valid, one);
  EXPECT_EQ(stats.bytes_corrupt, full.size() - one);
  EXPECT_EQ(stats.bytes_unforced_tail, 0u);
}

// Property: CrashTorn (byte-granular truncation + possible corruption of
// the flushed tail) always leaves a log that recovers to some prefix of the
// appended commits, never a torn or corrupt one.
TEST(Wal, CrashTornPrefixProperty) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    SimDisk disk;
    WalWriter writer(&disk, "x.wal");
    const int n = 8;
    for (uint64_t i = 1; i <= n; ++i) {
      ASSERT_TRUE(writer.AppendCommitNoSync(SampleCommit(i)).ok());
    }
    SimDisk::TornCrashSpec spec;
    spec.seed = seed;
    disk.CrashTorn(spec);
    WalScanStats stats;
    auto records = WalReader::ReadAll(disk, "x.wal", &stats);
    ASSERT_TRUE(records.ok()) << "seed " << seed;
    ASSERT_LE(records->size(), static_cast<size_t>(n));
    for (size_t i = 0; i < records->size(); ++i) {
      ASSERT_EQ((*records)[i].txn_id, i + 1) << "seed " << seed;
      ASSERT_EQ((*records)[i].ops.size(), 5u) << "seed " << seed;
    }
  }
}

TEST(Wal, ChecksumIsStable) {
  EXPECT_EQ(WalChecksum("abc"), WalChecksum("abc"));
  EXPECT_NE(WalChecksum("abc"), WalChecksum("abd"));
  EXPECT_NE(WalChecksum(""), WalChecksum(std::string("\0", 1)));
}

// ---- Satellite bugfix: failed syncs must not count as durable forces ----

TEST(Wal, SyncFailureNotCountedAsDurableForce) {
  auto* reg = obs::MetricsRegistry::Default();
  uint64_t syncs0 = reg->GetCounter("storage.wal.syncs")->Value();
  uint64_t fails0 = reg->GetCounter("storage.wal.sync_failures")->Value();
  SimDisk disk;
  WalWriter writer(&disk, "x.wal");
  disk.InjectSyncFailures(1);
  Status st = writer.AppendCommit(SampleCommit(1));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(reg->GetCounter("storage.wal.syncs")->Value(), syncs0);
  EXPECT_EQ(reg->GetCounter("storage.wal.sync_failures")->Value(), fails0 + 1);
  // The rejected flush left the record volatile: a crash discards it.
  disk.Crash();
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
  // After the injected failure clears, the same record commits durably.
  ASSERT_TRUE(writer.AppendCommit(SampleCommit(1)).ok());
  EXPECT_EQ(reg->GetCounter("storage.wal.syncs")->Value(), syncs0 + 1);
  disk.Crash();
  records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);
}

// ---- Group commit ------------------------------------------------------

WalWriterConfig GroupConfig(bool flusher) {
  WalWriterConfig c;
  c.group_commit = true;
  c.dedicated_flusher = flusher;
  return c;
}

class WalGroupCommit : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(Modes, WalGroupCommit, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "Flusher" : "Leader";
                         });

TEST_P(WalGroupCommit, SingleWriterRoundTrip) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal", GroupConfig(GetParam()));
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(writer.AppendCommit(SampleCommit(i)).ok());
  }
  disk.Crash();  // everything acked must already be durable
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ((*records)[i].txn_id, i + 1);
}

TEST_P(WalGroupCommit, ConcurrentWritersNeverInterleaveFrames) {
  SimDisk disk;
  // Sync latency makes commits pile up behind the in-flight flush, so real
  // multi-record batches form (the opportunistic-batching mechanism).
  disk.set_sync_latency_us(100);
  WalWriter writer(&disk, "x.wal", GroupConfig(GetParam()));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t txn = 1 + t * kPerThread + i;
        if (!writer.AppendCommit(SampleCommit(txn)).ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  disk.Crash();
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), static_cast<size_t>(kThreads * kPerThread));
  // Every frame intact (no byte interleaving), every txn exactly once.
  std::vector<bool> seen(kThreads * kPerThread + 1, false);
  for (const auto& rec : *records) {
    ASSERT_EQ(rec.ops.size(), 5u);
    ASSERT_GE(rec.txn_id, 1u);
    ASSERT_LE(rec.txn_id, static_cast<uint64_t>(kThreads * kPerThread));
    ASSERT_FALSE(seen[rec.txn_id]) << "duplicate txn " << rec.txn_id;
    seen[rec.txn_id] = true;
  }
  // The whole point: far fewer forces than commits.
  EXPECT_LT(disk.sync_count(),
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST_P(WalGroupCommit, CrashTornInsideCoalescedBatch) {
  // A coalesced batch is appended but the process dies before its sync; the
  // torn crash then cuts the batch at an arbitrary byte — possibly in the
  // middle of an inner frame. Recovery must yield a clean prefix, and no
  // commit in the batch was ever acked (the hook fails them all).
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SimDisk disk;
    WalWriter writer(&disk, "x.wal", GroupConfig(GetParam()));
    writer.set_before_sync_hook([] { return false; });  // die before sync
    constexpr int kThreads = 6;
    std::vector<std::thread> threads;
    std::atomic<int> acked{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        if (writer.AppendCommit(SampleCommit(1 + t)).ok()) ++acked;
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(acked.load(), 0) << "commit acked without a sync";
    SimDisk::TornCrashSpec spec;
    spec.seed = seed;
    disk.CrashTorn(spec);
    WalScanStats stats;
    auto records = WalReader::ReadAll(disk, "x.wal", &stats);
    ASSERT_TRUE(records.ok()) << "seed " << seed;
    ASSERT_LE(records->size(), static_cast<size_t>(kThreads));
    for (const auto& rec : *records) ASSERT_EQ(rec.ops.size(), 5u);
    // Un-acked loss may exist but must never be misread as corruption
    // unless the torn crash actually flipped a byte.
    if (stats.tear_detected && stats.bytes_corrupt == 0) {
      EXPECT_GT(stats.bytes_unforced_tail, 0u) << "seed " << seed;
    }
  }
}

TEST_P(WalGroupCommit, ResetForcesPendingBatchBeforeTruncating) {
  SimDisk disk;
  WalWriter writer(&disk, "x.wal", GroupConfig(GetParam()));
  // Enqueue without redeeming: the batch may still be open when Reset runs.
  std::vector<WalCommitTicket> tickets;
  for (uint64_t i = 1; i <= 3; ++i) {
    tickets.push_back(writer.EnqueueCommit(SampleCommit(i)));
  }
  ASSERT_TRUE(writer.Reset().ok());
  // Every ticket resolved with a real sync status — none dangles.
  for (auto& t : tickets) {
    EXPECT_TRUE(writer.WaitCommit(&t).ok());
  }
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST_P(WalGroupCommit, SyncFailureFailsWholeBatchAndNothingIsAcked) {
  SimDisk disk;
  disk.set_sync_latency_us(100);
  WalWriter writer(&disk, "x.wal", GroupConfig(GetParam()));
  disk.InjectSyncFailures(1);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::mutex acked_mu;
  std::vector<uint64_t> acked;
  std::atomic<int> failed{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (writer.AppendCommit(SampleCommit(1 + t)).ok()) {
        std::lock_guard<std::mutex> lk(acked_mu);
        acked.push_back(1 + t);
      } else {
        ++failed;
      }
    });
  }
  for (auto& th : threads) th.join();
  // At least the batch that hit the injected failure reported the error to
  // every one of its committers; later batches may succeed.
  EXPECT_GE(failed.load(), 1);
  // Ack-after-fsync: every acked commit survives the crash. (A *failed*
  // commit may also survive — its appended bytes ride along with the next
  // successful sync of the file — which is allowed: the contract is one-
  // directional, acked implies durable.)
  disk.Crash();
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  for (uint64_t txn : acked) {
    bool found = false;
    for (const auto& rec : *records) found |= rec.txn_id == txn;
    EXPECT_TRUE(found) << "acked commit " << txn << " vanished";
  }
}

TEST(WalGroupCommitConfig, FromEnvParsesToggles) {
  // Exercise the typed Options loader via the documented env names (values
  // restored); FromOptions carries them into the WAL config.
  setenv("PHX_GROUP_COMMIT", "1", 1);
  setenv("PHX_GC_FLUSHER", "1", 1);
  setenv("PHX_GC_MAX_WAIT_US", "250", 1);
  setenv("PHX_GC_MAX_BATCH_BYTES", "4096", 1);
  WalWriterConfig c = WalWriterConfig::FromOptions(phoenix::Options::FromEnv());
  EXPECT_TRUE(c.group_commit);
  EXPECT_TRUE(c.dedicated_flusher);
  EXPECT_EQ(c.max_wait_us, 250u);
  EXPECT_EQ(c.max_batch_bytes, 4096u);
  unsetenv("PHX_GROUP_COMMIT");
  unsetenv("PHX_GC_FLUSHER");
  unsetenv("PHX_GC_MAX_WAIT_US");
  unsetenv("PHX_GC_MAX_BATCH_BYTES");
  WalWriterConfig d = WalWriterConfig::FromOptions(phoenix::Options::FromEnv());
  EXPECT_FALSE(d.group_commit);
  EXPECT_FALSE(d.dedicated_flusher);
}

TEST(WalGroupCommit, BatchWindowCoalescesCommits) {
  // With a generous wait window and no device pressure, commits from many
  // threads land in very few batches — syncs_saved counts the difference.
  auto* reg = obs::MetricsRegistry::Default();
  uint64_t saved0 =
      reg->GetCounter("storage.wal.group_commit.syncs_saved")->Value();
  SimDisk disk;
  WalWriterConfig cfg = GroupConfig(/*flusher=*/true);
  cfg.max_wait_us = 20'000;
  WalWriter writer(&disk, "x.wal", cfg);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ASSERT_TRUE(writer.AppendCommit(SampleCommit(1 + t)).ok());
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(reg->GetCounter("storage.wal.group_commit.syncs_saved")->Value(),
            saved0);
  auto records = WalReader::ReadAll(disk, "x.wal");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), static_cast<size_t>(kThreads));
}

}  // namespace
}  // namespace phoenix::storage
