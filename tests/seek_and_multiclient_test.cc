// Absolute result positioning (SQLFetchScroll analogue) and multi-client
// recovery scenarios, including torn-WAL crashes.

#include "core/phoenix_driver_manager.h"
#include "test_util.h"

namespace phoenix::core {
namespace {

using odbc::CursorMode;
using odbc::DriverManager;
using odbc::Hdbc;
using odbc::Hstmt;
using odbc::SqlReturn;
using odbc::StmtAttr;
using testutil::AutoRestartConfig;
using testutil::MustExec;
using testutil::MustQuery;
using testutil::TestCluster;

int64_t FetchOne(DriverManager* dm, Hstmt* stmt) {
  EXPECT_EQ(dm->Fetch(stmt), SqlReturn::kSuccess)
      << DriverManager::Diag(stmt).ToString();
  Value v;
  dm->GetData(stmt, 0, &v);
  return v.AsInt64();
}

class SeekTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dm_ = std::make_unique<PhoenixDriverManager>(
        &cluster_.network, AutoRestartConfig(&cluster_.server));
    dbc_ = dm_->AllocConnect(dm_->AllocEnv());
    ASSERT_EQ(dm_->Connect(dbc_, "testdb", "app"), SqlReturn::kSuccess);
    MustExec(dm_.get(), dbc_, "CREATE TABLE T (N INTEGER PRIMARY KEY)");
    std::string values;
    for (int i = 1; i <= 50; ++i) {
      if (i > 1) values += ", ";
      values += "(" + std::to_string(i) + ")";
    }
    MustExec(dm_.get(), dbc_, "INSERT INTO T VALUES " + values);
  }

  TestCluster cluster_;
  std::unique_ptr<PhoenixDriverManager> dm_;
  Hdbc* dbc_ = nullptr;
};

TEST_F(SeekTest, PlainDmSeeksBufferedResult) {
  DriverManager plain(&cluster_.network);
  Hdbc* dbc = plain.AllocConnect(plain.AllocEnv());
  ASSERT_EQ(plain.Connect(dbc, "testdb", "plain"), SqlReturn::kSuccess);
  Hstmt* stmt = plain.AllocStmt(dbc);
  ASSERT_EQ(plain.ExecDirect(stmt, "SELECT N FROM T ORDER BY N"),
            SqlReturn::kSuccess);
  ASSERT_EQ(plain.SeekRow(stmt, 30), SqlReturn::kSuccess);
  EXPECT_EQ(FetchOne(&plain, stmt), 31);
  ASSERT_EQ(plain.SeekRow(stmt, 0), SqlReturn::kSuccess);
  EXPECT_EQ(FetchOne(&plain, stmt), 1);
  // Past the end: next fetch reports no data.
  ASSERT_EQ(plain.SeekRow(stmt, 500), SqlReturn::kSuccess);
  EXPECT_EQ(plain.Fetch(stmt), SqlReturn::kNoData);
  plain.Disconnect(dbc);
}

TEST_F(SeekTest, PlainDmSeeksServerCursor) {
  DriverManager plain(&cluster_.network);
  Hdbc* dbc = plain.AllocConnect(plain.AllocEnv());
  ASSERT_EQ(plain.Connect(dbc, "testdb", "plain"), SqlReturn::kSuccess);
  Hstmt* stmt = plain.AllocStmt(dbc);
  plain.SetStmtAttr(stmt, StmtAttr::kCursorMode,
                    static_cast<int64_t>(CursorMode::kStaticCursor));
  plain.SetStmtAttr(stmt, StmtAttr::kBlockSize, 5);
  ASSERT_EQ(plain.ExecDirect(stmt, "SELECT N FROM T ORDER BY N"),
            SqlReturn::kSuccess);
  FetchOne(&plain, stmt);
  ASSERT_EQ(plain.SeekRow(stmt, 40), SqlReturn::kSuccess);
  EXPECT_EQ(FetchOne(&plain, stmt), 41);
  plain.Disconnect(dbc);
}

TEST_F(SeekTest, SeekWithoutResultFails) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  EXPECT_EQ(dm_->SeekRow(stmt, 3), SqlReturn::kError);
}

TEST_F(SeekTest, PhoenixSeekMaterialized) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT N FROM T ORDER BY N"),
            SqlReturn::kSuccess);
  ASSERT_EQ(dm_->SeekRow(stmt, 25), SqlReturn::kSuccess);
  EXPECT_EQ(FetchOne(dm_.get(), stmt), 26);
  // Seek backwards too.
  ASSERT_EQ(dm_->SeekRow(stmt, 10), SqlReturn::kSuccess);
  EXPECT_EQ(FetchOne(dm_.get(), stmt), 11);
}

TEST_F(SeekTest, PhoenixSeekSurvivesCrash) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  dm_->SetStmtAttr(stmt, StmtAttr::kBlockSize, 5);
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT N FROM T ORDER BY N"),
            SqlReturn::kSuccess);
  ASSERT_EQ(dm_->SeekRow(stmt, 20), SqlReturn::kSuccess);
  EXPECT_EQ(FetchOne(dm_.get(), stmt), 21);
  cluster_.server.Crash();
  // Seek right into the outage: recovery happens underneath.
  ASSERT_EQ(dm_->SeekRow(stmt, 45), SqlReturn::kSuccess)
      << DriverManager::Diag(stmt).ToString();
  EXPECT_EQ(FetchOne(dm_.get(), stmt), 46);
  EXPECT_GE(dm_->stats().recoveries, 1u);
}

TEST_F(SeekTest, PhoenixSeekKeyset) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  dm_->SetStmtAttr(stmt, StmtAttr::kCursorMode,
                   static_cast<int64_t>(CursorMode::kKeysetCursor));
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT N FROM T"), SqlReturn::kSuccess);
  ASSERT_EQ(dm_->SeekRow(stmt, 47), SqlReturn::kSuccess);
  EXPECT_EQ(FetchOne(dm_.get(), stmt), 48);
  cluster_.server.Crash();
  EXPECT_EQ(FetchOne(dm_.get(), stmt), 49);
  EXPECT_EQ(FetchOne(dm_.get(), stmt), 50);
  EXPECT_EQ(dm_->Fetch(stmt), SqlReturn::kNoData);
}

TEST_F(SeekTest, PhoenixSeekDynamicRejected) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  dm_->SetStmtAttr(stmt, StmtAttr::kCursorMode,
                   static_cast<int64_t>(CursorMode::kDynamicCursor));
  ASSERT_EQ(dm_->ExecDirect(stmt, "SELECT N FROM T"), SqlReturn::kSuccess);
  EXPECT_EQ(dm_->SeekRow(stmt, 3), SqlReturn::kError);
  EXPECT_EQ(DriverManager::Diag(stmt).code(), StatusCode::kNotSupported);
}

// ---------------------------------------------------------------------------
// Multiple Phoenix clients
// ---------------------------------------------------------------------------

TEST(MultiClient, TwoPhoenixSessionsRecoverIndependently) {
  TestCluster cluster;
  PhoenixDriverManager dm(&cluster.network,
                          AutoRestartConfig(&cluster.server));
  Hdbc* a = dm.AllocConnect(dm.AllocEnv());
  Hdbc* b = dm.AllocConnect(dm.AllocEnv());
  ASSERT_EQ(dm.Connect(a, "testdb", "alice"), SqlReturn::kSuccess);
  ASSERT_EQ(dm.Connect(b, "testdb", "bob"), SqlReturn::kSuccess);
  MustExec(&dm, a, "CREATE TABLE T (N INTEGER PRIMARY KEY)");
  std::string values = "(1)";
  for (int i = 2; i <= 40; ++i) values += ", (" + std::to_string(i) + ")";
  MustExec(&dm, a, "INSERT INTO T VALUES " + values);

  Hstmt* sa = dm.AllocStmt(a);
  Hstmt* sb = dm.AllocStmt(b);
  dm.SetStmtAttr(sa, StmtAttr::kBlockSize, 4);
  dm.SetStmtAttr(sb, StmtAttr::kBlockSize, 4);
  ASSERT_EQ(dm.ExecDirect(sa, "SELECT N FROM T ORDER BY N"),
            SqlReturn::kSuccess);
  ASSERT_EQ(dm.ExecDirect(sb, "SELECT N FROM T ORDER BY N DESC"),
            SqlReturn::kSuccess);
  for (int i = 0; i < 8; ++i) {
    FetchOne(&dm, sa);
    FetchOne(&dm, sb);
  }
  cluster.server.Crash();
  // Whichever touches the server first recovers its own connection; the
  // other performs its own recovery when it next calls.
  EXPECT_EQ(FetchOne(&dm, sa), 9);
  EXPECT_EQ(FetchOne(&dm, sb), 32);
  EXPECT_EQ(dm.stats().recoveries, 2u);
  // Both sessions remain fully usable.
  EXPECT_EQ(MustQuery(&dm, a, "SELECT COUNT(*) AS C FROM T")[0][0].AsInt64(),
            40);
  EXPECT_EQ(MustQuery(&dm, b, "SELECT COUNT(*) AS C FROM T")[0][0].AsInt64(),
            40);
  dm.Disconnect(a);
  dm.Disconnect(b);
}

TEST(MultiClient, TornWalTailCrashStillRecovers) {
  TestCluster cluster;
  PhoenixDriverManager dm(&cluster.network,
                          AutoRestartConfig(&cluster.server));
  Hdbc* dbc = dm.AllocConnect(dm.AllocEnv());
  ASSERT_EQ(dm.Connect(dbc, "testdb", "app"), SqlReturn::kSuccess);
  MustExec(&dm, dbc, "CREATE TABLE T (N INTEGER PRIMARY KEY)");
  MustExec(&dm, dbc, "INSERT INTO T VALUES (1), (2), (3), (4), (5)");

  Hstmt* stmt = dm.AllocStmt(dbc);
  dm.SetStmtAttr(stmt, StmtAttr::kBlockSize, 2);
  ASSERT_EQ(dm.ExecDirect(stmt, "SELECT N FROM T ORDER BY N"),
            SqlReturn::kSuccess);
  FetchOne(&dm, stmt);
  FetchOne(&dm, stmt);
  // Crash with a partially flushed tail: every synced commit must still be
  // there; the torn frame is discarded by WAL recovery.
  cluster.server.CrashWithPartialFlush(0.6);
  ASSERT_TRUE(cluster.server.Restart().ok());
  EXPECT_EQ(FetchOne(&dm, stmt), 3);
  EXPECT_EQ(FetchOne(&dm, stmt), 4);
  EXPECT_EQ(FetchOne(&dm, stmt), 5);
  EXPECT_EQ(MustQuery(&dm, dbc, "SELECT COUNT(*) AS C FROM T")[0][0].AsInt64(),
            5);
}

TEST(MultiClient, CrashDuringAnotherClientsRecoveryWindow) {
  TestCluster cluster;
  PhoenixDriverManager dm(&cluster.network,
                          AutoRestartConfig(&cluster.server));
  Hdbc* dbc = dm.AllocConnect(dm.AllocEnv());
  ASSERT_EQ(dm.Connect(dbc, "testdb", "app"), SqlReturn::kSuccess);
  MustExec(&dm, dbc, "CREATE TABLE T (N INTEGER PRIMARY KEY)");
  MustExec(&dm, dbc, "INSERT INTO T VALUES (1), (2), (3)");
  // Double crash in quick succession: recovery must be retried end-to-end.
  cluster.server.Crash();
  ASSERT_TRUE(cluster.server.Restart().ok());
  cluster.server.Crash();
  EXPECT_EQ(MustQuery(&dm, dbc, "SELECT COUNT(*) AS C FROM T")[0][0].AsInt64(),
            3);
}

}  // namespace
}  // namespace phoenix::core
