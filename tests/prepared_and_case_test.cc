// Prepared statements (SQLPrepare/SQLBindParameter/SQLExecute) and CASE
// expressions, through both driver managers.

#include "core/phoenix_driver_manager.h"
#include "odbc/odbc_api.h"
#include "sql/parser.h"
#include "test_util.h"

namespace phoenix {
namespace {

using core::PhoenixDriverManager;
using odbc::DriverManager;
using odbc::Hdbc;
using odbc::Hstmt;
using odbc::SqlReturn;
using testutil::MustExec;
using testutil::MustQuery;
using testutil::TestCluster;

// ---------------------------------------------------------------------------
// Parameter substitution (pure)
// ---------------------------------------------------------------------------

TEST(SubstituteParams, ReplacesMarkersInOrder) {
  auto r = DriverManager::SubstituteParams(
      "SELECT * FROM t WHERE a = ? AND b < ?",
      {Value::Int64(7), Value::Double(2.5)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "SELECT * FROM t WHERE a = 7 AND b < 2.5");
}

TEST(SubstituteParams, StringParamsAreQuotedAndEscaped) {
  auto r = DriverManager::SubstituteParams("INSERT INTO t VALUES (?)",
                                           {Value::String("it's")});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "INSERT INTO t VALUES ('it''s')");
}

TEST(SubstituteParams, QuestionMarkInsideLiteralIsData) {
  auto r = DriverManager::SubstituteParams(
      "SELECT * FROM t WHERE a = 'what?' AND b = ?", {Value::Int64(1)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "SELECT * FROM t WHERE a = 'what?' AND b = 1");
}

TEST(SubstituteParams, EscapedQuoteDoesNotEndLiteral) {
  auto r = DriverManager::SubstituteParams(
      "SELECT * FROM t WHERE a = 'don''t?' AND b = ?", {Value::Int64(1)});
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->find("'don''t?'"), std::string::npos);
  EXPECT_NE(r->find("b = 1"), std::string::npos);
}

TEST(SubstituteParams, ArityMismatchesRejected) {
  EXPECT_FALSE(DriverManager::SubstituteParams("SELECT ?", {}).ok());
  EXPECT_FALSE(DriverManager::SubstituteParams(
                   "SELECT 1", {Value::Int64(1)})
                   .ok());
}

TEST(SubstituteParams, NullAndDateParams) {
  auto r = DriverManager::SubstituteParams(
      "INSERT INTO t VALUES (?, ?)",
      {Value::Null(), Value::Date(*ParseDate("1999-12-31"))});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "INSERT INTO t VALUES (NULL, DATE '1999-12-31')");
}

// ---------------------------------------------------------------------------
// Prepared execution through the stack
// ---------------------------------------------------------------------------

class PreparedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dm_ = std::make_unique<PhoenixDriverManager>(
        &cluster_.network, testutil::AutoRestartConfig(&cluster_.server));
    dbc_ = dm_->AllocConnect(dm_->AllocEnv());
    ASSERT_EQ(dm_->Connect(dbc_, "testdb", "app"), SqlReturn::kSuccess);
    MustExec(dm_.get(), dbc_,
             "CREATE TABLE T (K INTEGER PRIMARY KEY, V VARCHAR)");
    MustExec(dm_.get(), dbc_,
             "INSERT INTO T VALUES (1, 'a'), (2, 'b'), (3, 'c')");
  }

  TestCluster cluster_;
  std::unique_ptr<PhoenixDriverManager> dm_;
  Hdbc* dbc_ = nullptr;
};

TEST_F(PreparedTest, PrepareBindExecuteQuery) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  ASSERT_EQ(dm_->Prepare(stmt, "SELECT V FROM T WHERE K >= ? ORDER BY K"),
            SqlReturn::kSuccess);
  ASSERT_EQ(dm_->BindParam(stmt, 0, Value::Int64(2)), SqlReturn::kSuccess);
  ASSERT_EQ(dm_->Execute(stmt), SqlReturn::kSuccess)
      << DriverManager::Diag(stmt).ToString();
  ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  Value v;
  dm_->GetData(stmt, 0, &v);
  EXPECT_EQ(v.AsString(), "b");
}

TEST_F(PreparedTest, ReExecuteWithNewBindings) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  ASSERT_EQ(dm_->Prepare(stmt, "INSERT INTO T VALUES (?, ?)"),
            SqlReturn::kSuccess);
  for (int k = 10; k < 15; ++k) {
    dm_->BindParam(stmt, 0, Value::Int64(k));
    dm_->BindParam(stmt, 1, Value::String("v" + std::to_string(k)));
    ASSERT_EQ(dm_->Execute(stmt), SqlReturn::kSuccess)
        << DriverManager::Diag(stmt).ToString();
    int64_t n = 0;
    dm_->RowCount(stmt, &n);
    EXPECT_EQ(n, 1);
  }
  EXPECT_EQ(MustQuery(dm_.get(), dbc_, "SELECT * FROM T").size(), 8u);
}

TEST_F(PreparedTest, ExecuteWithoutPrepareFails) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  EXPECT_EQ(dm_->Execute(stmt), SqlReturn::kError);
  EXPECT_EQ(dm_->BindParam(stmt, 0, Value::Int64(1)), SqlReturn::kError);
}

TEST_F(PreparedTest, PreparedSelectSurvivesCrash) {
  Hstmt* stmt = dm_->AllocStmt(dbc_);
  dm_->SetStmtAttr(stmt, odbc::StmtAttr::kBlockSize, 1);
  ASSERT_EQ(dm_->Prepare(stmt, "SELECT K FROM T WHERE K <= ? ORDER BY K"),
            SqlReturn::kSuccess);
  dm_->BindParam(stmt, 0, Value::Int64(3));
  ASSERT_EQ(dm_->Execute(stmt), SqlReturn::kSuccess);
  ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  cluster_.server.Crash();
  ASSERT_EQ(dm_->Fetch(stmt), SqlReturn::kSuccess);
  Value v;
  dm_->GetData(stmt, 0, &v);
  EXPECT_EQ(v.AsInt64(), 2);
  EXPECT_GE(dm_->stats().recoveries, 1u);
  // Re-execution after recovery also works (new bindings, new result).
  dm_->BindParam(stmt, 0, Value::Int64(1));
  ASSERT_EQ(dm_->Execute(stmt), SqlReturn::kSuccess);
  int rows = 0;
  while (dm_->Fetch(stmt) == SqlReturn::kSuccess) ++rows;
  EXPECT_EQ(rows, 1);
}

// ---------------------------------------------------------------------------
// CASE expressions
// ---------------------------------------------------------------------------

class CaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<eng::Database>(&disk_);
    ASSERT_TRUE(db_->Open().ok());
    sid_ = *db_->CreateSession("t");
  }

  eng::StatementResult Exec(const std::string& sql) {
    auto r = db_->ExecuteScript(sid_, sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    if (!r.ok()) return eng::StatementResult{};
    return std::move(r->back());
  }

  storage::SimDisk disk_;
  std::unique_ptr<eng::Database> db_;
  uint64_t sid_ = 0;
};

TEST_F(CaseTest, SearchedCase) {
  eng::StatementResult r = Exec(
      "SELECT CASE WHEN 1 > 2 THEN 'no' WHEN 2 > 1 THEN 'yes' "
      "ELSE 'never' END AS X");
  EXPECT_EQ(r.rows[0][0].AsString(), "yes");
}

TEST_F(CaseTest, SimpleCaseWithOperand) {
  eng::StatementResult r =
      Exec("SELECT CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END AS X");
  EXPECT_EQ(r.rows[0][0].AsString(), "two");
}

TEST_F(CaseTest, NoMatchNoElseIsNull) {
  eng::StatementResult r = Exec("SELECT CASE WHEN FALSE THEN 1 END AS X");
  EXPECT_TRUE(r.rows[0][0].is_null());
}

TEST_F(CaseTest, NullOperandMatchesNothing) {
  eng::StatementResult r =
      Exec("SELECT CASE NULL WHEN NULL THEN 'eq' ELSE 'no' END AS X");
  EXPECT_EQ(r.rows[0][0].AsString(), "no");  // NULL = NULL is not a match
}

TEST_F(CaseTest, CaseInsideAggregate) {
  Exec("CREATE TABLE S (GRP VARCHAR, AMT INTEGER)");
  Exec("INSERT INTO S VALUES ('a', 10), ('b', 20), ('a', 5), ('b', 1)");
  eng::StatementResult r = Exec(
      "SELECT SUM(CASE WHEN GRP = 'a' THEN AMT ELSE 0 END) AS A_SUM, "
      "SUM(AMT) AS TOTAL FROM S");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 15);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 36);
}

TEST_F(CaseTest, CaseInWhereAndOrderBy) {
  Exec("CREATE TABLE S (NAME VARCHAR, RANK INTEGER)");
  Exec("INSERT INTO S VALUES ('x', 3), ('y', 1), ('z', 2)");
  eng::StatementResult r = Exec(
      "SELECT NAME FROM S WHERE CASE WHEN RANK > 1 THEN TRUE ELSE FALSE END "
      "ORDER BY CASE NAME WHEN 'z' THEN 0 ELSE 1 END, NAME");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "z");
  EXPECT_EQ(r.rows[1][0].AsString(), "x");
}

TEST_F(CaseTest, ToSqlRoundTrip) {
  const char* sql =
      "SELECT CASE a WHEN 1 THEN 'x' WHEN 2 THEN 'y' ELSE 'z' END AS c "
      "FROM t";
  auto first = sql::Parser::ParseStatement(sql);
  ASSERT_TRUE(first.ok());
  auto second = sql::Parser::ParseStatement((*first)->ToSql());
  ASSERT_TRUE(second.ok()) << (*first)->ToSql();
  EXPECT_EQ((*first)->ToSql(), (*second)->ToSql());
}

TEST_F(CaseTest, CaseRequiresWhen) {
  EXPECT_FALSE(sql::Parser::ParseStatement("SELECT CASE END").ok());
  EXPECT_FALSE(sql::Parser::ParseStatement("SELECT CASE WHEN 1 END").ok());
}

}  // namespace
}  // namespace phoenix
