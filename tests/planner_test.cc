// Ordered secondary indexes + the cost-aware access-path planner: plan
// selection (asserted through EXPLAIN), result equivalence with the planner
// on and off, index maintenance through DML/rollback/DDL-undo, recovery of
// index definitions from the WAL and from v3 checkpoint images, and
// backward acceptance of pre-index (v2) images.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/codec.h"
#include "engine/database.h"
#include "engine/planner.h"
#include "gtest/gtest.h"

namespace phoenix::eng {
namespace {

bool SameKey(const Row& a, const Row& b) {
  storage::RowLess lt;
  return !lt(a, b) && !lt(b, a);
}

/// The index-consistency oracle: every index's entry tree must equal the
/// tree rebuilt from the base rows.
testing::AssertionResult IndexesConsistent(const storage::Table& t) {
  for (const storage::SecondaryIndex& idx : t.indexes()) {
    std::map<Row, std::set<storage::RowId>, storage::RowLess> want;
    for (const auto& [rid, row] : t.rows()) {
      want[storage::Table::KeyFor(idx.columns, row)].insert(rid);
    }
    if (want.size() != idx.entries.size()) {
      return testing::AssertionFailure()
             << "index " << idx.name << " has " << idx.entries.size()
             << " keys, rows imply " << want.size();
    }
    auto it = idx.entries.begin();
    for (const auto& [key, rids] : want) {
      if (!SameKey(key, it->first) || rids != it->second) {
        return testing::AssertionFailure()
               << "index " << idx.name << " diverges from its base rows";
      }
      ++it;
    }
  }
  return testing::AssertionSuccess();
}

class PlannerTest : public ::testing::Test {
 protected:
  void Start() {
    db_ = std::make_unique<Database>(&disk_);
    ASSERT_TRUE(db_->Open().ok());
    // Pin the planner on regardless of the PHX_INDEX_PLANNER lane; the
    // planner-off tests toggle it per-query.
    db_->set_index_planner(true);
    sid_ = *db_->CreateSession("t");
  }

  void CrashAndRestart() {
    db_.reset();
    disk_.Crash();
    Start();
  }

  void SetUp() override { Start(); }

  StatementResult Exec(const std::string& sql) {
    auto r = db_->ExecuteScript(sid_, sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    if (!r.ok()) return StatementResult{};
    return std::move(r->back());
  }

  Status TryExec(const std::string& sql) {
    return db_->ExecuteScript(sid_, sql).status();
  }

  /// 64 rows: K unique (PK), V = K % 8 (selective), W = K % 2 (not).
  void SeedT() {
    Exec("CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER, W INTEGER)");
    std::string ins = "INSERT INTO T VALUES ";
    for (int k = 0; k < 64; ++k) {
      if (k > 0) ins += ", ";
      ins += "(" + std::to_string(k) + ", " + std::to_string(k % 8) + ", " +
             std::to_string(k % 2) + ")";
    }
    Exec(ins);
  }

  std::string ExplainText(const std::string& select) {
    StatementResult r = Exec("EXPLAIN " + select);
    EXPECT_TRUE(r.has_rows);
    std::string out;
    for (const Row& row : r.rows) {
      out += row[0].AsString();
      out += "\n";
    }
    return out;
  }

  /// Runs `sql` with the planner on and off; the result rows must agree
  /// cell for cell.
  void ExpectSameRows(const std::string& sql) {
    db_->set_index_planner(true);
    std::vector<Row> on = Exec(sql).rows;
    db_->set_index_planner(false);
    std::vector<Row> off = Exec(sql).rows;
    db_->set_index_planner(true);
    ASSERT_EQ(on.size(), off.size()) << sql;
    for (size_t i = 0; i < on.size(); ++i) {
      ASSERT_EQ(on[i].size(), off[i].size()) << sql;
      for (size_t j = 0; j < on[i].size(); ++j) {
        EXPECT_EQ(on[i][j].Compare(off[i][j]), 0)
            << sql << " row " << i << " col " << j;
      }
    }
  }

  storage::SimDisk disk_;
  std::unique_ptr<Database> db_;
  uint64_t sid_ = 0;
};

// ---- Plan selection (EXPLAIN) -------------------------------------------

TEST_F(PlannerTest, ExplainPointQueryPicksSecondaryIndex) {
  SeedT();
  Exec("CREATE INDEX IV ON T (V)");
  std::string plan = ExplainText("SELECT K FROM T WHERE V = 3");
  EXPECT_NE(plan.find("INDEX EQ IV"), std::string::npos) << plan;
}

TEST_F(PlannerTest, ExplainPkRangePicksPrimary) {
  SeedT();
  std::string plan =
      ExplainText("SELECT K FROM T WHERE K >= 10 AND K <= 20");
  EXPECT_NE(plan.find("INDEX RANGE PRIMARY"), std::string::npos) << plan;
}

TEST_F(PlannerTest, ExplainPkPointPicksPrimaryEq) {
  SeedT();
  std::string plan = ExplainText("SELECT V FROM T WHERE K = 17");
  EXPECT_NE(plan.find("INDEX EQ PRIMARY"), std::string::npos) << plan;
}

TEST_F(PlannerTest, ExplainNonSelectivePredicateStaysSequential) {
  SeedT();
  Exec("CREATE INDEX IW ON T (W)");  // 2 distinct values over 64 rows
  std::string plan = ExplainText("SELECT K FROM T WHERE W = 1");
  EXPECT_NE(plan.find("SEQ SCAN"), std::string::npos) << plan;
}

TEST_F(PlannerTest, ExplainSmallTableStaysSequential) {
  Exec("CREATE TABLE S (K INTEGER PRIMARY KEY, V INTEGER)");
  Exec("INSERT INTO S VALUES (1, 1), (2, 2), (3, 3)");
  Exec("CREATE INDEX SV ON S (V)");
  std::string plan = ExplainText("SELECT K FROM S WHERE V = 2");
  EXPECT_NE(plan.find("SEQ SCAN"), std::string::npos) << plan;
}

TEST_F(PlannerTest, ExplainPlannerOffReportsItself) {
  SeedT();
  Exec("CREATE INDEX IV ON T (V)");
  db_->set_index_planner(false);
  std::string plan = ExplainText("SELECT K FROM T WHERE V = 3");
  EXPECT_NE(plan.find("planner: off"), std::string::npos) << plan;
  EXPECT_NE(plan.find("SEQ SCAN"), std::string::npos) << plan;
  db_->set_index_planner(true);
}

TEST_F(PlannerTest, ExplainOrderByIndexedColumn) {
  SeedT();
  Exec("CREATE INDEX IV ON T (V)");
  std::string plan = ExplainText("SELECT V FROM T ORDER BY V");
  EXPECT_NE(plan.find("order by: INDEX IV"), std::string::npos) << plan;
  std::string desc = ExplainText("SELECT V FROM T ORDER BY V DESC");
  EXPECT_NE(desc.find("order by: INDEX IV DESC"), std::string::npos) << desc;
}

TEST_F(PlannerTest, ExplainJoinPicksIndexNestedLoopOnPk) {
  Exec("CREATE TABLE L (ID INTEGER PRIMARY KEY, RK INTEGER)");
  Exec("CREATE TABLE R (K INTEGER PRIMARY KEY, P INTEGER)");
  std::string insl = "INSERT INTO L VALUES ";
  for (int i = 0; i < 16; ++i) {
    if (i > 0) insl += ", ";
    insl += "(" + std::to_string(i) + ", " + std::to_string(i * 16) + ")";
  }
  Exec(insl);
  std::string insr = "INSERT INTO R VALUES ";
  for (int i = 0; i < 256; ++i) {
    if (i > 0) insr += ", ";
    insr += "(" + std::to_string(i) + ", " + std::to_string(i) + ")";
  }
  Exec(insr);
  std::string plan =
      ExplainText("SELECT L.ID, R.P FROM L, R WHERE L.RK = R.K");
  EXPECT_NE(plan.find("INDEX NESTED LOOP (PRIMARY)"), std::string::npos)
      << plan;
  // And the join actually produces the right rows both ways.
  ExpectSameRows("SELECT L.ID, R.P FROM L, R WHERE L.RK = R.K ORDER BY L.ID");
}

TEST_F(PlannerTest, ExplainErrorsLikeSelectOnMissingTable) {
  EXPECT_EQ(TryExec("EXPLAIN SELECT * FROM NOPE").code(),
            StatusCode::kSqlError);
}

// ---- Execution equivalence ----------------------------------------------

TEST_F(PlannerTest, ResultsMatchWithPlannerOnAndOff) {
  SeedT();
  Exec("CREATE INDEX IV ON T (V)");
  ExpectSameRows("SELECT K FROM T WHERE V = 3");
  ExpectSameRows("SELECT K FROM T WHERE V = 3 AND K > 20");
  ExpectSameRows("SELECT K FROM T WHERE K BETWEEN 5 AND 25");
  ExpectSameRows("SELECT K FROM T WHERE K = 41");
  ExpectSameRows("SELECT K FROM T WHERE V = 99");       // no match
  ExpectSameRows("SELECT K FROM T WHERE V = NULL");     // never true
  ExpectSameRows("SELECT K, V FROM T ORDER BY V, K");
  ExpectSameRows("SELECT K FROM T ORDER BY K DESC");
  ExpectSameRows("SELECT V, COUNT(*) AS N FROM T WHERE V >= 2 "
                 "GROUP BY V ORDER BY V");
}

TEST_F(PlannerTest, OrderByIndexReturnsSortedRows) {
  SeedT();
  Exec("CREATE INDEX IV ON T (V)");
  StatementResult r = Exec("SELECT V FROM T ORDER BY V");
  ASSERT_EQ(r.rows.size(), 64u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LE(r.rows[i - 1][0].AsInt64(), r.rows[i][0].AsInt64());
  }
  StatementResult d = Exec("SELECT V FROM T ORDER BY V DESC");
  for (size_t i = 1; i < d.rows.size(); ++i) {
    EXPECT_GE(d.rows[i - 1][0].AsInt64(), d.rows[i][0].AsInt64());
  }
}

TEST_F(PlannerTest, IndexScanHonorsCrossTypeComparisons) {
  SeedT();
  Exec("CREATE INDEX IV ON T (V)");
  // A double literal probing an integer index must agree with the filter.
  ExpectSameRows("SELECT K FROM T WHERE V = 3.0");
  ExpectSameRows("SELECT K FROM T WHERE V > 5.5");
}

// ---- Index maintenance through every mutation path ----------------------

TEST_F(PlannerTest, IndexMaintainedAcrossInsertUpdateDelete) {
  SeedT();
  Exec("CREATE INDEX IV ON T (V)");
  Exec("INSERT INTO T VALUES (100, 7, 0)");
  Exec("UPDATE T SET V = 5 WHERE K = 100");
  Exec("UPDATE T SET V = 6 WHERE V = 2");  // moves eight rids between keys
  Exec("DELETE FROM T WHERE V = 6");
  const storage::Table* t = db_->store()->Get("T");
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(IndexesConsistent(*t));
  // Probe through the index after the churn.
  EXPECT_EQ(Exec("SELECT COUNT(*) AS N FROM T WHERE V = 5").rows[0][0]
                .AsInt64(),
            9);  // eight seeded (K%8==5) plus the updated K=100
  EXPECT_EQ(Exec("SELECT COUNT(*) AS N FROM T WHERE V = 6").rows[0][0]
                .AsInt64(),
            0);
}

TEST_F(PlannerTest, RollbackRestoresIndexEntries) {
  SeedT();
  Exec("CREATE INDEX IV ON T (V)");
  Exec("BEGIN");
  Exec("INSERT INTO T VALUES (200, 3, 0)");
  Exec("UPDATE T SET V = 0 WHERE V = 3");
  Exec("DELETE FROM T WHERE V = 1");
  Exec("ROLLBACK");
  const storage::Table* t = db_->store()->Get("T");
  EXPECT_TRUE(IndexesConsistent(*t));
  EXPECT_EQ(Exec("SELECT COUNT(*) AS N FROM T WHERE V = 3").rows[0][0]
                .AsInt64(),
            8);
}

TEST_F(PlannerTest, CreateIndexRollsBack) {
  SeedT();
  Exec("BEGIN");
  Exec("CREATE INDEX IV ON T (V)");
  EXPECT_NE(db_->store()->Get("T")->FindIndex("IV"), nullptr);
  Exec("ROLLBACK");
  EXPECT_EQ(db_->store()->Get("T")->FindIndex("IV"), nullptr);
}

TEST_F(PlannerTest, DropIndexRollsBackWithEntriesRebuilt) {
  SeedT();
  Exec("CREATE INDEX IV ON T (V)");
  Exec("BEGIN");
  Exec("DROP INDEX IV ON T");
  EXPECT_EQ(db_->store()->Get("T")->FindIndex("IV"), nullptr);
  Exec("ROLLBACK");
  const storage::Table* t = db_->store()->Get("T");
  ASSERT_NE(t->FindIndex("IV"), nullptr);
  EXPECT_TRUE(IndexesConsistent(*t));
}

TEST_F(PlannerTest, DropIndexRollbackRestoresPosition) {
  // Regression: rolling back a DROP INDEX used to re-append the index at
  // the tail of the table's index list instead of its original slot. Two
  // indexes over the same column have identical cost, and the planner
  // breaks the tie by list position — so the rollback silently changed
  // which index EXPLAIN picks. The undo record now carries the slot.
  SeedT();
  Exec("CREATE INDEX IA ON T (V)");
  Exec("CREATE INDEX IB ON T (V)");
  std::string before = ExplainText("SELECT K FROM T WHERE V = 3");
  EXPECT_NE(before.find("INDEX EQ IA"), std::string::npos) << before;
  Exec("BEGIN");
  Exec("DROP INDEX IA ON T");
  std::string during = ExplainText("SELECT K FROM T WHERE V = 3");
  EXPECT_NE(during.find("INDEX EQ IB"), std::string::npos) << during;
  Exec("ROLLBACK");
  std::string after = ExplainText("SELECT K FROM T WHERE V = 3");
  EXPECT_NE(after.find("INDEX EQ IA"), std::string::npos) << after;
  const storage::Table* t = db_->store()->Get("T");
  ASSERT_EQ(t->indexes().size(), 2u);
  EXPECT_EQ(t->indexes()[0].name, "IA");
  EXPECT_TRUE(IndexesConsistent(*t));
}

TEST_F(PlannerTest, DropTableRollbackRestoresIndexDefinitions) {
  SeedT();
  Exec("CREATE INDEX IV ON T (V)");
  Exec("BEGIN");
  Exec("DROP TABLE T");
  Exec("ROLLBACK");
  const storage::Table* t = db_->store()->Get("T");
  ASSERT_NE(t, nullptr);
  ASSERT_NE(t->FindIndex("IV"), nullptr);
  EXPECT_TRUE(IndexesConsistent(*t));
}

// ---- DDL surface / errors -----------------------------------------------

TEST_F(PlannerTest, CreateIndexValidation) {
  SeedT();
  Exec("CREATE INDEX IV ON T (V)");
  EXPECT_EQ(TryExec("CREATE INDEX IV ON T (W)").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(TryExec("CREATE INDEX IX ON T (NOPE)").code(),
            StatusCode::kSqlError);
  EXPECT_EQ(TryExec("CREATE INDEX IX ON NOPE (V)").code(),
            StatusCode::kSqlError);
  EXPECT_EQ(TryExec("DROP INDEX MISSING ON T").code(),
            StatusCode::kSqlError);
  EXPECT_TRUE(TryExec("DROP INDEX IF EXISTS MISSING ON T").ok());
  EXPECT_TRUE(TryExec("DROP INDEX IV ON T").ok());
  EXPECT_EQ(db_->store()->Get("T")->FindIndex("IV"), nullptr);
}

TEST_F(PlannerTest, MultiColumnIndexPrefixQueries) {
  SeedT();
  Exec("CREATE INDEX IVW ON T (V, W)");
  std::string plan = ExplainText("SELECT K FROM T WHERE V = 3 AND W = 1");
  EXPECT_NE(plan.find("INDEX EQ IVW"), std::string::npos) << plan;
  ExpectSameRows("SELECT K FROM T WHERE V = 3 AND W = 1");
  ExpectSameRows("SELECT K FROM T WHERE V = 3");  // prefix only
  const storage::Table* t = db_->store()->Get("T");
  EXPECT_TRUE(IndexesConsistent(*t));
}

// ---- Recovery: WAL replay and checkpoint images -------------------------

TEST_F(PlannerTest, IndexDdlReplayedFromWal) {
  SeedT();
  Exec("CREATE INDEX IV ON T (V)");
  Exec("INSERT INTO T VALUES (300, 4, 0)");
  CrashAndRestart();
  const storage::Table* t = db_->store()->Get("T");
  ASSERT_NE(t, nullptr);
  ASSERT_NE(t->FindIndex("IV"), nullptr);
  EXPECT_TRUE(IndexesConsistent(*t));
  EXPECT_EQ(Exec("SELECT COUNT(*) AS N FROM T WHERE V = 4").rows[0][0]
                .AsInt64(),
            9);
}

TEST_F(PlannerTest, DropIndexReplayedFromWal) {
  SeedT();
  Exec("CREATE INDEX IV ON T (V)");
  Exec("DROP INDEX IV ON T");
  CrashAndRestart();
  EXPECT_EQ(db_->store()->Get("T")->FindIndex("IV"), nullptr);
}

TEST_F(PlannerTest, IndexSurvivesCheckpointImage) {
  SeedT();
  Exec("CREATE INDEX IV ON T (V)");
  ASSERT_TRUE(db_->Checkpoint().ok());
  Exec("INSERT INTO T VALUES (400, 2, 0)");  // post-image WAL tail
  CrashAndRestart();
  const storage::Table* t = db_->store()->Get("T");
  ASSERT_NE(t->FindIndex("IV"), nullptr);
  EXPECT_TRUE(IndexesConsistent(*t));
  EXPECT_EQ(Exec("SELECT COUNT(*) AS N FROM T WHERE V = 2").rows[0][0]
                .AsInt64(),
            9);
}

TEST_F(PlannerTest, V2CheckpointImageStillAccepted) {
  Exec("CREATE TABLE T2 (K INTEGER PRIMARY KEY, V INTEGER)");
  Exec("INSERT INTO T2 VALUES (1, 10), (2, 20)");
  // Hand-craft a pre-index (v2) image: same header, tables without index
  // definitions. The fence covers the whole WAL so nothing is replayed.
  uint64_t fence = db_->durability()->wal_writer()->last_assigned_lsn();
  Encoder enc;
  enc.PutU32(0x50485843);  // "PHXC"
  enc.PutU32(2);
  enc.PutU64(100);  // next_txn_id
  enc.PutU64(fence);
  enc.PutU32(1);
  db_->store()->Get("T2")->EncodeSnapshot(&enc, /*with_indexes=*/false);
  std::string file = db_->durability()->ckpt_file();
  ASSERT_TRUE(disk_.WriteAtomic(file, enc.Take()).ok());
  CrashAndRestart();
  EXPECT_EQ(Exec("SELECT COUNT(*) AS N FROM T2").rows[0][0].AsInt64(), 2);
  EXPECT_TRUE(db_->store()->Get("T2")->indexes().empty());
}

// ---- Keyset cursors through the planner ---------------------------------

TEST_F(PlannerTest, KeysetCursorUsesIndexAndKeepsPkOrder) {
  SeedT();
  Exec("CREATE INDEX IV ON T (V)");
  auto cur = db_->OpenCursor(sid_, "SELECT K, V FROM T WHERE V = 3",
                             CursorType::kKeyset);
  ASSERT_TRUE(cur.ok()) << cur.status().ToString();
  bool done = false;
  auto rows = db_->FetchCursor(sid_, (*cur)->id(), 100, &done);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 8u);
  for (size_t i = 0; i < rows->size(); ++i) {
    EXPECT_EQ((*rows)[i][0].AsInt64(), static_cast<int64_t>(i * 8 + 3));
    EXPECT_EQ((*rows)[i][1].AsInt64(), 3);
  }
}

}  // namespace
}  // namespace phoenix::eng
