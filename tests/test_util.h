#ifndef PHOENIX_TESTS_TEST_UTIL_H_
#define PHOENIX_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/phoenix_driver_manager.h"
#include "net/channel.h"
#include "net/db_server.h"
#include "odbc/driver_manager.h"
#include "storage/sim_disk.h"

#include "gtest/gtest.h"

namespace phoenix::testutil {

/// ASSERT-style helpers for Status / Result.
#define PHX_ASSERT_OK(expr)                                  \
  do {                                                       \
    auto _st = (expr);                                       \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                 \
  } while (0)

#define PHX_EXPECT_OK(expr)                                  \
  do {                                                       \
    auto _st = (expr);                                       \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                 \
  } while (0)

#define PHX_ASSERT_OK_RESULT(expr)                           \
  do {                                                       \
    auto& _r = (expr);                                       \
    ASSERT_TRUE(_r.ok()) << _r.status().ToString();          \
  } while (0)

/// A disk + server + network trio, the standard test substrate.
struct TestCluster {
  storage::SimDisk disk;
  net::DbServer server;
  net::Network network;

  explicit TestCluster(net::ServerOptions opts = {}) : server(&disk, opts) {
    auto st = server.Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
    network.RegisterServer("testdb", &server);
  }

  /// Crash + immediate restart (volatile state gone, durable state back).
  void Bounce() {
    server.Crash();
    auto st = server.Restart();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
};

/// A Phoenix config whose recovery loop restarts the server automatically
/// after `after_attempts` reconnect attempts — lets single-threaded tests
/// exercise the "ping until the server comes back" path.
inline core::PhoenixConfig AutoRestartConfig(net::DbServer* server,
                                             int after_attempts = 3) {
  core::PhoenixConfig config;
  auto counter = std::make_shared<int>(0);
  config.retry_wait = [server, counter, after_attempts]() {
    if (++*counter >= after_attempts && !server->alive()) {
      auto st = server->Restart();
      EXPECT_TRUE(st.ok()) << st.ToString();
      *counter = 0;
    }
  };
  return config;
}

/// Runs a SQL batch on a fresh statement; fails the test on error. Returns
/// fetched rows for queries (empty for non-queries).
inline std::vector<Row> MustQuery(odbc::DriverManager* dm, odbc::Hdbc* dbc,
                                  const std::string& sql) {
  odbc::Hstmt* stmt = dm->AllocStmt(dbc);
  EXPECT_TRUE(Succeeded(dm->ExecDirect(stmt, sql)))
      << sql << " -> " << odbc::DriverManager::Diag(stmt).ToString();
  std::vector<Row> rows;
  size_t cols = 0;
  dm->NumResultCols(stmt, &cols);
  if (cols > 0) {
    while (Succeeded(dm->Fetch(stmt))) {
      Row row;
      for (size_t i = 0; i < cols; ++i) {
        Value v;
        dm->GetData(stmt, i, &v);
        row.push_back(std::move(v));
      }
      rows.push_back(std::move(row));
    }
  }
  dm->FreeStmt(stmt);
  return rows;
}

/// Executes a non-query; returns affected rows; fails the test on error.
inline int64_t MustExec(odbc::DriverManager* dm, odbc::Hdbc* dbc,
                        const std::string& sql) {
  odbc::Hstmt* stmt = dm->AllocStmt(dbc);
  EXPECT_TRUE(Succeeded(dm->ExecDirect(stmt, sql)))
      << sql << " -> " << odbc::DriverManager::Diag(stmt).ToString();
  int64_t n = 0;
  dm->RowCount(stmt, &n);
  dm->FreeStmt(stmt);
  return n;
}

}  // namespace phoenix::testutil

#endif  // PHOENIX_TESTS_TEST_UTIL_H_
