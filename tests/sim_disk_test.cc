// SimDisk durability semantics: the crash model everything else rests on.

#include "storage/sim_disk.h"

#include "gtest/gtest.h"

namespace phoenix::storage {
namespace {

TEST(SimDisk, AppendThenReadSeesBufferedBytes) {
  SimDisk disk;
  ASSERT_TRUE(disk.Append("f", "hello").ok());
  auto r = disk.Read("f");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "hello");
}

TEST(SimDisk, UnsyncedBytesDieInCrash) {
  SimDisk disk;
  ASSERT_TRUE(disk.Append("f", "durable").ok());
  ASSERT_TRUE(disk.Sync("f").ok());
  ASSERT_TRUE(disk.Append("f", "+volatile").ok());
  disk.Crash();
  EXPECT_EQ(*disk.Read("f"), "durable");
}

TEST(SimDisk, ReadDurableIgnoresTail) {
  SimDisk disk;
  ASSERT_TRUE(disk.Append("f", "abc").ok());
  ASSERT_TRUE(disk.Sync("f").ok());
  ASSERT_TRUE(disk.Append("f", "def").ok());
  EXPECT_EQ(*disk.Read("f"), "abcdef");
  EXPECT_EQ(*disk.ReadDurable("f"), "abc");
}

TEST(SimDisk, SyncOfMissingFileFails) {
  SimDisk disk;
  EXPECT_EQ(disk.Sync("nope").code(), StatusCode::kNotFound);
}

TEST(SimDisk, WriteAtomicReplacesDurably) {
  SimDisk disk;
  ASSERT_TRUE(disk.Append("f", "old").ok());
  ASSERT_TRUE(disk.Sync("f").ok());
  ASSERT_TRUE(disk.WriteAtomic("f", "new-content").ok());
  disk.Crash();
  EXPECT_EQ(*disk.Read("f"), "new-content");
}

TEST(SimDisk, PartialFlushKeepsPrefix) {
  SimDisk disk;
  ASSERT_TRUE(disk.Append("f", "0123456789").ok());
  disk.CrashWithPartialFlush(0.5);
  EXPECT_EQ(*disk.Read("f"), "01234");
}

TEST(SimDisk, PartialFlushFractionClamped) {
  SimDisk disk;
  ASSERT_TRUE(disk.Append("f", "abcd").ok());
  disk.CrashWithPartialFlush(7.0);
  EXPECT_EQ(*disk.Read("f"), "abcd");
  ASSERT_TRUE(disk.Append("g", "abcd").ok());
  disk.CrashWithPartialFlush(-1.0);
  EXPECT_EQ(*disk.Read("g"), "");
}

TEST(SimDisk, DeleteAndList) {
  SimDisk disk;
  ASSERT_TRUE(disk.Append("a", "1").ok());
  ASSERT_TRUE(disk.Append("b", "2").ok());
  EXPECT_EQ(disk.List().size(), 2u);
  ASSERT_TRUE(disk.Delete("a").ok());
  EXPECT_FALSE(disk.Exists("a"));
  EXPECT_EQ(disk.Delete("a").code(), StatusCode::kNotFound);
}

TEST(SimDisk, StatsAccumulate) {
  SimDisk disk;
  ASSERT_TRUE(disk.Append("f", "12345").ok());
  ASSERT_TRUE(disk.Sync("f").ok());
  ASSERT_TRUE(disk.WriteAtomic("g", "123").ok());
  EXPECT_EQ(disk.bytes_written(), 8u);
  EXPECT_EQ(disk.sync_count(), 2u);
}

TEST(SimDisk, CrashIsIdempotent) {
  SimDisk disk;
  ASSERT_TRUE(disk.Append("f", "x").ok());
  ASSERT_TRUE(disk.Sync("f").ok());
  disk.Crash();
  disk.Crash();
  EXPECT_EQ(*disk.Read("f"), "x");
}

}  // namespace
}  // namespace phoenix::storage
