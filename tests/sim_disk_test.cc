// SimDisk durability semantics: the crash model everything else rests on.

#include "storage/sim_disk.h"

#include "gtest/gtest.h"

namespace phoenix::storage {
namespace {

TEST(SimDisk, AppendThenReadSeesBufferedBytes) {
  SimDisk disk;
  ASSERT_TRUE(disk.Append("f", "hello").ok());
  auto r = disk.Read("f");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "hello");
}

TEST(SimDisk, UnsyncedBytesDieInCrash) {
  SimDisk disk;
  ASSERT_TRUE(disk.Append("f", "durable").ok());
  ASSERT_TRUE(disk.Sync("f").ok());
  ASSERT_TRUE(disk.Append("f", "+volatile").ok());
  disk.Crash();
  EXPECT_EQ(*disk.Read("f"), "durable");
}

TEST(SimDisk, ReadDurableIgnoresTail) {
  SimDisk disk;
  ASSERT_TRUE(disk.Append("f", "abc").ok());
  ASSERT_TRUE(disk.Sync("f").ok());
  ASSERT_TRUE(disk.Append("f", "def").ok());
  EXPECT_EQ(*disk.Read("f"), "abcdef");
  EXPECT_EQ(*disk.ReadDurable("f"), "abc");
}

TEST(SimDisk, SyncOfMissingFileFails) {
  SimDisk disk;
  EXPECT_EQ(disk.Sync("nope").code(), StatusCode::kNotFound);
}

TEST(SimDisk, WriteAtomicReplacesDurably) {
  SimDisk disk;
  ASSERT_TRUE(disk.Append("f", "old").ok());
  ASSERT_TRUE(disk.Sync("f").ok());
  ASSERT_TRUE(disk.WriteAtomic("f", "new-content").ok());
  disk.Crash();
  EXPECT_EQ(*disk.Read("f"), "new-content");
}

TEST(SimDisk, PartialFlushKeepsPrefix) {
  SimDisk disk;
  ASSERT_TRUE(disk.Append("f", "0123456789").ok());
  disk.CrashWithPartialFlush(0.5);
  EXPECT_EQ(*disk.Read("f"), "01234");
}

TEST(SimDisk, PartialFlushFractionClamped) {
  SimDisk disk;
  ASSERT_TRUE(disk.Append("f", "abcd").ok());
  disk.CrashWithPartialFlush(7.0);
  EXPECT_EQ(*disk.Read("f"), "abcd");
  ASSERT_TRUE(disk.Append("g", "abcd").ok());
  disk.CrashWithPartialFlush(-1.0);
  EXPECT_EQ(*disk.Read("g"), "");
}

TEST(SimDisk, DeleteAndList) {
  SimDisk disk;
  ASSERT_TRUE(disk.Append("a", "1").ok());
  ASSERT_TRUE(disk.Append("b", "2").ok());
  EXPECT_EQ(disk.List().size(), 2u);
  ASSERT_TRUE(disk.Delete("a").ok());
  EXPECT_FALSE(disk.Exists("a"));
  EXPECT_EQ(disk.Delete("a").code(), StatusCode::kNotFound);
}

TEST(SimDisk, StatsAccumulate) {
  SimDisk disk;
  ASSERT_TRUE(disk.Append("f", "12345").ok());
  ASSERT_TRUE(disk.Sync("f").ok());
  ASSERT_TRUE(disk.WriteAtomic("g", "123").ok());
  EXPECT_EQ(disk.bytes_written(), 8u);
  EXPECT_EQ(disk.sync_count(), 2u);
}

TEST(SimDisk, CrashTornNeverTouchesSyncedBytes) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    SimDisk disk;
    ASSERT_TRUE(disk.Append("f", "SYNCED").ok());
    ASSERT_TRUE(disk.Sync("f").ok());
    ASSERT_TRUE(disk.Append("f", "unsynced-tail-bytes").ok());
    SimDisk::TornCrashSpec spec;
    spec.seed = seed;
    disk.CrashTorn(spec);
    std::string after = *disk.Read("f");
    ASSERT_GE(after.size(), 6u) << "seed " << seed;
    ASSERT_LE(after.size(), 6u + 19u) << "seed " << seed;
    EXPECT_EQ(after.substr(0, 6), "SYNCED") << "seed " << seed;
  }
}

TEST(SimDisk, CrashTornWithoutCorruptionKeepsTailPrefix) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    SimDisk disk;
    const std::string tail = "0123456789abcdef";
    ASSERT_TRUE(disk.Append("f", tail).ok());
    SimDisk::TornCrashSpec spec;
    spec.seed = seed;
    spec.corrupt_prob = 0.0;  // pure byte-granular truncation
    disk.CrashTorn(spec);
    std::string after = *disk.Read("f");
    EXPECT_EQ(after, tail.substr(0, after.size())) << "seed " << seed;
  }
}

TEST(SimDisk, CrashTornIsDeterministicPerSeed) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    std::string results[2];
    for (int run = 0; run < 2; ++run) {
      SimDisk disk;
      ASSERT_TRUE(disk.Append("f", "the-quick-brown-fox-jumps").ok());
      ASSERT_TRUE(disk.Append("g", "over-the-lazy-dog").ok());
      SimDisk::TornCrashSpec spec;
      spec.seed = seed;
      disk.CrashTorn(spec);
      results[run] = *disk.Read("f") + "|" + *disk.Read("g");
    }
    EXPECT_EQ(results[0], results[1]) << "seed " << seed;
  }
}

TEST(SimDisk, CrashTornTearsFilesIndependently) {
  // Unlike CrashWithPartialFlush's shared fraction, torn crashes must pick a
  // different truncation point per file for at least some seed.
  bool diverged = false;
  const std::string tail(64, 'x');
  for (uint64_t seed = 1; seed <= 40 && !diverged; ++seed) {
    SimDisk disk;
    ASSERT_TRUE(disk.Append("a", tail).ok());
    ASSERT_TRUE(disk.Append("b", tail).ok());
    SimDisk::TornCrashSpec spec;
    spec.seed = seed;
    disk.CrashTorn(spec);
    diverged = disk.Read("a")->size() != disk.Read("b")->size();
  }
  EXPECT_TRUE(diverged) << "every seed tore both files at the same byte";
}

TEST(SimDisk, CrashIsIdempotent) {
  SimDisk disk;
  ASSERT_TRUE(disk.Append("f", "x").ok());
  ASSERT_TRUE(disk.Sync("f").ok());
  disk.Crash();
  disk.Crash();
  EXPECT_EQ(*disk.Read("f"), "x");
}

}  // namespace
}  // namespace phoenix::storage
