// SQL executor semantics, tested directly against the engine (no network).

#include "engine/database.h"

#include "gtest/gtest.h"

namespace phoenix::eng {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(&disk_);
    ASSERT_TRUE(db_->Open().ok());
    auto sid = db_->CreateSession("tester");
    ASSERT_TRUE(sid.ok());
    sid_ = *sid;
  }

  StatementResult Exec(const std::string& sql) {
    auto r = db_->ExecuteScript(sid_, sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    if (!r.ok()) return StatementResult{};
    return std::move(r->back());
  }

  Status TryExec(const std::string& sql) {
    return db_->ExecuteScript(sid_, sql).status();
  }

  void MakeSample() {
    Exec("CREATE TABLE EMP (ID INTEGER PRIMARY KEY, NAME VARCHAR, "
         "DEPT VARCHAR, SALARY DOUBLE, HIRED DATE)");
    Exec("INSERT INTO EMP VALUES "
         "(1, 'ann', 'eng', 100.0, DATE '1990-01-05'), "
         "(2, 'bob', 'eng', 90.0, DATE '1992-07-20'), "
         "(3, 'cat', 'sales', 80.0, DATE '1991-03-14'), "
         "(4, 'dan', 'sales', 85.0, DATE '1995-11-30'), "
         "(5, 'eve', 'hr', 70.0, DATE '1993-06-01')");
  }

  storage::SimDisk disk_;
  std::unique_ptr<Database> db_;
  uint64_t sid_ = 0;
};

TEST_F(ExecutorTest, SelectConstantNoFrom) {
  StatementResult r = Exec("SELECT 1 + 1 AS TWO, 'x' AS S");
  ASSERT_TRUE(r.has_rows);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 2);
  EXPECT_EQ(r.schema.column(0).name, "TWO");
}

TEST_F(ExecutorTest, WhereZeroEqualsOneYieldsEmptyWithMetadata) {
  MakeSample();
  StatementResult r = Exec("SELECT ID, NAME FROM EMP WHERE 0 = 1");
  ASSERT_TRUE(r.has_rows);
  EXPECT_TRUE(r.rows.empty());
  ASSERT_EQ(r.schema.num_columns(), 2u);
  EXPECT_EQ(r.schema.column(0).name, "ID");
  EXPECT_EQ(r.schema.column(0).type, DataType::kInt32);
  EXPECT_EQ(r.schema.column(1).type, DataType::kString);
}

TEST_F(ExecutorTest, SelectStar) {
  MakeSample();
  StatementResult r = Exec("SELECT * FROM EMP");
  EXPECT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.schema.num_columns(), 5u);
}

TEST_F(ExecutorTest, FilterAndProjection) {
  MakeSample();
  StatementResult r =
      Exec("SELECT NAME, SALARY * 2 AS DOUBLE_PAY FROM EMP WHERE DEPT = 'eng'"
           " ORDER BY ID");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 200.0);
}

TEST_F(ExecutorTest, OrderByMultiKeyWithDesc) {
  MakeSample();
  StatementResult r = Exec("SELECT NAME FROM EMP ORDER BY DEPT, SALARY DESC");
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");   // eng 100
  EXPECT_EQ(r.rows[1][0].AsString(), "bob");   // eng 90
  EXPECT_EQ(r.rows[2][0].AsString(), "eve");   // hr 70
  EXPECT_EQ(r.rows[3][0].AsString(), "dan");   // sales 85
  EXPECT_EQ(r.rows[4][0].AsString(), "cat");   // sales 80
}

TEST_F(ExecutorTest, OrderByAliasAndHiddenColumn) {
  MakeSample();
  // ORDER BY an output alias.
  StatementResult by_alias =
      Exec("SELECT NAME, SALARY AS PAY FROM EMP ORDER BY PAY DESC LIMIT 1");
  EXPECT_EQ(by_alias.rows[0][0].AsString(), "ann");
  // ORDER BY a column that is not projected.
  StatementResult hidden = Exec("SELECT NAME FROM EMP ORDER BY HIRED");
  EXPECT_EQ(hidden.rows[0][0].AsString(), "ann");
  EXPECT_EQ(hidden.rows[4][0].AsString(), "dan");
}

TEST_F(ExecutorTest, LimitAndDistinct) {
  MakeSample();
  EXPECT_EQ(Exec("SELECT NAME FROM EMP LIMIT 3").rows.size(), 3u);
  EXPECT_EQ(Exec("SELECT DISTINCT DEPT FROM EMP").rows.size(), 3u);
  EXPECT_EQ(Exec("SELECT NAME FROM EMP LIMIT 0").rows.size(), 0u);
}

TEST_F(ExecutorTest, Aggregates) {
  MakeSample();
  StatementResult r = Exec(
      "SELECT COUNT(*) AS N, SUM(SALARY) AS S, AVG(SALARY) AS A, "
      "MIN(SALARY) AS LO, MAX(SALARY) AS HI FROM EMP");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 5);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 425.0);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 85.0);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsDouble(), 70.0);
  EXPECT_DOUBLE_EQ(r.rows[0][4].AsDouble(), 100.0);
}

TEST_F(ExecutorTest, AggregateOverEmptyInput) {
  MakeSample();
  StatementResult r =
      Exec("SELECT COUNT(*) AS N, SUM(SALARY) AS S FROM EMP WHERE ID > 99");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(ExecutorTest, GroupByWithHaving) {
  MakeSample();
  StatementResult r = Exec(
      "SELECT DEPT, COUNT(*) AS N, SUM(SALARY) AS S FROM EMP "
      "GROUP BY DEPT HAVING COUNT(*) > 1 ORDER BY DEPT");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "eng");
  EXPECT_EQ(r.rows[0][1].AsInt64(), 2);
  EXPECT_EQ(r.rows[1][0].AsString(), "sales");
  EXPECT_DOUBLE_EQ(r.rows[1][2].AsDouble(), 165.0);
}

TEST_F(ExecutorTest, OrderByAggregate) {
  MakeSample();
  StatementResult r = Exec(
      "SELECT DEPT FROM EMP GROUP BY DEPT ORDER BY SUM(SALARY) DESC");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsString(), "eng");    // 190
  EXPECT_EQ(r.rows[1][0].AsString(), "sales");  // 165
  EXPECT_EQ(r.rows[2][0].AsString(), "hr");     // 70
}

TEST_F(ExecutorTest, CountDistinct) {
  MakeSample();
  StatementResult r = Exec("SELECT COUNT(DISTINCT DEPT) AS N FROM EMP");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 3);
}

TEST_F(ExecutorTest, JoinCommaStyle) {
  MakeSample();
  Exec("CREATE TABLE DEPT_INFO (DEPT VARCHAR PRIMARY KEY, FLOOR INTEGER)");
  Exec("INSERT INTO DEPT_INFO VALUES ('eng', 3), ('sales', 1), ('hr', 2)");
  StatementResult r = Exec(
      "SELECT E.NAME, D.FLOOR FROM EMP E, DEPT_INFO D "
      "WHERE E.DEPT = D.DEPT AND D.FLOOR > 1 ORDER BY E.ID");
  ASSERT_EQ(r.rows.size(), 3u);  // ann, bob (floor 3), eve (floor 2)
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
  EXPECT_EQ(r.rows[2][0].AsString(), "eve");
}

TEST_F(ExecutorTest, JoinExplicitSyntax) {
  MakeSample();
  Exec("CREATE TABLE DEPT_INFO (DEPT VARCHAR PRIMARY KEY, FLOOR INTEGER)");
  Exec("INSERT INTO DEPT_INFO VALUES ('eng', 3), ('sales', 1), ('hr', 2)");
  StatementResult r = Exec(
      "SELECT E.NAME FROM EMP E JOIN DEPT_INFO D ON E.DEPT = D.DEPT "
      "WHERE D.FLOOR = 3 ORDER BY E.NAME");
  ASSERT_EQ(r.rows.size(), 2u);
}

TEST_F(ExecutorTest, ThreeWayJoin) {
  MakeSample();
  Exec("CREATE TABLE DEPT_INFO (DEPT VARCHAR PRIMARY KEY, FLOOR INTEGER)");
  Exec("INSERT INTO DEPT_INFO VALUES ('eng', 3), ('sales', 1), ('hr', 2)");
  Exec("CREATE TABLE FLOOR_INFO (FLOOR INTEGER PRIMARY KEY, CITY VARCHAR)");
  Exec("INSERT INTO FLOOR_INFO VALUES (1, 'nyc'), (2, 'sea'), (3, 'sfo')");
  StatementResult r = Exec(
      "SELECT E.NAME, F.CITY FROM EMP E, DEPT_INFO D, FLOOR_INFO F "
      "WHERE E.DEPT = D.DEPT AND D.FLOOR = F.FLOOR AND E.SALARY >= 85 "
      "ORDER BY E.ID");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].AsString(), "sfo");  // ann/eng/floor3
  EXPECT_EQ(r.rows[2][1].AsString(), "nyc");  // dan/sales/floor1
}

TEST_F(ExecutorTest, CrossJoinWhenNoEquiPredicate) {
  Exec("CREATE TABLE A (X INTEGER)");
  Exec("CREATE TABLE B (Y INTEGER)");
  Exec("INSERT INTO A VALUES (1), (2)");
  Exec("INSERT INTO B VALUES (10), (20), (30)");
  StatementResult r = Exec("SELECT X, Y FROM A, B ORDER BY X, Y");
  EXPECT_EQ(r.rows.size(), 6u);
}

TEST_F(ExecutorTest, SelfJoinWithAliases) {
  MakeSample();
  StatementResult r = Exec(
      "SELECT A.NAME, B.NAME FROM EMP A, EMP B "
      "WHERE A.DEPT = B.DEPT AND A.ID < B.ID ORDER BY A.ID");
  ASSERT_EQ(r.rows.size(), 2u);  // (ann,bob), (cat,dan)
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
  EXPECT_EQ(r.rows[0][1].AsString(), "bob");
}

TEST_F(ExecutorTest, InsertWithColumnList) {
  MakeSample();
  StatementResult r =
      Exec("INSERT INTO EMP (ID, NAME, DEPT, SALARY, HIRED) "
           "VALUES (6, 'fred', 'eng', 95.5, DATE '1999-01-01')");
  EXPECT_EQ(r.affected, 1);
  // Partial column list: unlisted nullable columns become NULL.
  Exec("CREATE TABLE SPARSE (A INTEGER, B VARCHAR, C DOUBLE)");
  Exec("INSERT INTO SPARSE (A) VALUES (1)");
  StatementResult check = Exec("SELECT B, C FROM SPARSE");
  EXPECT_TRUE(check.rows[0][0].is_null());
  EXPECT_TRUE(check.rows[0][1].is_null());
}

TEST_F(ExecutorTest, InsertSelect) {
  MakeSample();
  Exec("CREATE TABLE ENG (ID INTEGER, NAME VARCHAR)");
  StatementResult r =
      Exec("INSERT INTO ENG SELECT ID, NAME FROM EMP WHERE DEPT = 'eng'");
  EXPECT_EQ(r.affected, 2);
  EXPECT_EQ(Exec("SELECT * FROM ENG").rows.size(), 2u);
}

TEST_F(ExecutorTest, SelectInto) {
  MakeSample();
  StatementResult r =
      Exec("SELECT ID, NAME INTO COPYCAT FROM EMP WHERE SALARY > 80");
  EXPECT_EQ(r.affected, 3);
  StatementResult check = Exec("SELECT * FROM COPYCAT ORDER BY ID");
  EXPECT_EQ(check.rows.size(), 3u);
  EXPECT_EQ(check.schema.column(1).name, "NAME");
}

TEST_F(ExecutorTest, UpdateSeesOldValuesInRhs) {
  Exec("CREATE TABLE P (A INTEGER, B INTEGER)");
  Exec("INSERT INTO P VALUES (1, 10)");
  // Both assignments must read the pre-update row.
  Exec("UPDATE P SET A = B, B = A");
  StatementResult r = Exec("SELECT A, B FROM P");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 10);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 1);
}

TEST_F(ExecutorTest, UpdateWithWhereCountsAffected) {
  MakeSample();
  StatementResult r =
      Exec("UPDATE EMP SET SALARY = SALARY + 5 WHERE DEPT = 'sales'");
  EXPECT_EQ(r.affected, 2);
  StatementResult check =
      Exec("SELECT SUM(SALARY) AS S FROM EMP WHERE DEPT = 'sales'");
  EXPECT_DOUBLE_EQ(check.rows[0][0].AsDouble(), 175.0);
}

TEST_F(ExecutorTest, DeleteCountsAffected) {
  MakeSample();
  EXPECT_EQ(Exec("DELETE FROM EMP WHERE SALARY < 85").affected, 2);
  EXPECT_EQ(Exec("SELECT COUNT(*) AS N FROM EMP").rows[0][0].AsInt64(), 3);
  EXPECT_EQ(Exec("DELETE FROM EMP").affected, 3);
}

TEST_F(ExecutorTest, PrimaryKeyViolationRejectsStatementAtomically) {
  Exec("CREATE TABLE U (K INTEGER PRIMARY KEY)");
  Exec("INSERT INTO U VALUES (1)");
  // Multi-row insert where the third row collides: nothing must stick.
  Status st = TryExec("INSERT INTO U VALUES (2), (3), (1)");
  EXPECT_EQ(st.code(), StatusCode::kConstraint);
  EXPECT_EQ(Exec("SELECT COUNT(*) AS N FROM U").rows[0][0].AsInt64(), 1);
}

TEST_F(ExecutorTest, NotNullViolation) {
  Exec("CREATE TABLE NN (A INTEGER NOT NULL)");
  EXPECT_EQ(TryExec("INSERT INTO NN VALUES (NULL)").code(),
            StatusCode::kConstraint);
}

TEST_F(ExecutorTest, DdlErrors) {
  Exec("CREATE TABLE T1 (A INTEGER)");
  EXPECT_EQ(TryExec("CREATE TABLE T1 (A INTEGER)").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(TryExec("DROP TABLE NOPE").code(), StatusCode::kSqlError);
  EXPECT_TRUE(TryExec("DROP TABLE IF EXISTS NOPE").ok());
  EXPECT_EQ(TryExec("SELECT * FROM NOPE").code(), StatusCode::kSqlError);
  EXPECT_EQ(TryExec("CREATE TABLE BADPK (A INTEGER, PRIMARY KEY (ZZZ))").code(),
            StatusCode::kSqlError);
}

TEST_F(ExecutorTest, StoredProcedureRoundTrip) {
  Exec("CREATE TABLE LOG_T (N INTEGER, WHO VARCHAR)");
  Exec("CREATE PROCEDURE ADD_LOG (@n INT, @who VARCHAR) AS "
       "INSERT INTO LOG_T VALUES (@n, @who)");
  StatementResult r = Exec("EXEC ADD_LOG(7, 'ann')");
  EXPECT_EQ(r.affected, 1);
  Exec("EXEC ADD_LOG(8, 'bob')");
  StatementResult check = Exec("SELECT N, WHO FROM LOG_T ORDER BY N");
  ASSERT_EQ(check.rows.size(), 2u);
  EXPECT_EQ(check.rows[1][1].AsString(), "bob");
}

TEST_F(ExecutorTest, ProcedureWithResultSetAndMultipleStatements) {
  Exec("CREATE TABLE T (A INTEGER)");
  Exec("CREATE PROCEDURE P (@x INT) AS BEGIN "
       "INSERT INTO T VALUES (@x); "
       "SELECT A FROM T ORDER BY A; "
       "INSERT INTO T VALUES (@x + 1); END");
  StatementResult r = Exec("EXEC P(10)");
  EXPECT_TRUE(r.has_rows);
  EXPECT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.affected, 2);  // two inserts
  EXPECT_EQ(Exec("SELECT COUNT(*) AS N FROM T").rows[0][0].AsInt64(), 2);
}

TEST_F(ExecutorTest, ProcedureErrors) {
  Exec("CREATE PROCEDURE P (@x INT) AS SELECT @x");
  EXPECT_EQ(TryExec("EXEC P(1, 2)").code(), StatusCode::kSqlError);
  EXPECT_EQ(TryExec("EXEC MISSING_PROC(1)").code(), StatusCode::kNotFound);
  EXPECT_EQ(TryExec("CREATE PROCEDURE P (@y INT) AS SELECT @y").code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(TryExec("DROP PROCEDURE P").ok());
  EXPECT_EQ(TryExec("DROP PROCEDURE P").code(), StatusCode::kSqlError);
  EXPECT_TRUE(TryExec("DROP PROCEDURE IF EXISTS P").ok());
}

TEST_F(ExecutorTest, TransactionControlInsideProcedureRejected) {
  EXPECT_TRUE(TryExec("CREATE PROCEDURE BADP AS BEGIN "
                      "BEGIN TRANSACTION; COMMIT; END")
                  .ok());  // definition parses...
  EXPECT_EQ(TryExec("EXEC BADP").code(), StatusCode::kNotSupported);
}

TEST_F(ExecutorTest, ShowKeysAndTables) {
  MakeSample();
  StatementResult keys = Exec("SHOW KEYS EMP");
  ASSERT_EQ(keys.rows.size(), 1u);
  EXPECT_EQ(keys.rows[0][0].AsString(), "ID");
  Exec("CREATE TABLE NOPK (A INTEGER)");
  EXPECT_TRUE(Exec("SHOW KEYS NOPK").rows.empty());
  StatementResult tables = Exec("SHOW TABLES");
  EXPECT_GE(tables.rows.size(), 2u);
}

TEST_F(ExecutorTest, RowcountTracksLastDml) {
  Exec("CREATE TABLE T (A INTEGER)");
  Exec("INSERT INTO T VALUES (1), (2), (3)");
  StatementResult r = Exec("SELECT ROWCOUNT() AS N");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 3);
  Exec("DELETE FROM T WHERE A > 1");
  EXPECT_EQ(Exec("SELECT ROWCOUNT() AS N").rows[0][0].AsInt64(), 2);
}

TEST_F(ExecutorTest, TempTableVisibleAndSessionScoped) {
  Exec("CREATE TEMPORARY TABLE SCRATCH (A INTEGER)");
  Exec("INSERT INTO SCRATCH VALUES (1)");
  EXPECT_EQ(Exec("SELECT COUNT(*) AS N FROM SCRATCH").rows[0][0].AsInt64(), 1);
  // Closing the session drops the temp table.
  ASSERT_TRUE(db_->CloseSession(sid_).ok());
  auto sid2 = db_->CreateSession("tester2");
  ASSERT_TRUE(sid2.ok());
  sid_ = *sid2;
  EXPECT_EQ(TryExec("SELECT * FROM SCRATCH").code(), StatusCode::kSqlError);
}

TEST_F(ExecutorTest, BatchExecutesInOrderAndStopsOnError) {
  auto r = db_->ExecuteScript(
      sid_, "CREATE TABLE B (A INTEGER); INSERT INTO B VALUES (1); "
            "SELECT A FROM B");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  EXPECT_TRUE(r->back().has_rows);
  // Error in the middle: earlier statements took effect, later never ran.
  auto bad = db_->ExecuteScript(
      sid_, "INSERT INTO B VALUES (2); SELECT * FROM NOPE; "
            "INSERT INTO B VALUES (3)");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(Exec("SELECT COUNT(*) AS N FROM B").rows[0][0].AsInt64(), 2);
}

TEST_F(ExecutorTest, InPredicateAndLikeInQueries) {
  MakeSample();
  EXPECT_EQ(Exec("SELECT NAME FROM EMP WHERE DEPT IN ('eng', 'hr')")
                .rows.size(),
            3u);
  EXPECT_EQ(
      Exec("SELECT NAME FROM EMP WHERE NAME LIKE '%a%'").rows.size(),
      3u);  // ann, cat, dan
}

}  // namespace
}  // namespace phoenix::eng
