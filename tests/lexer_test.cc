// SQL lexer behavior: literals, comments, operators, parameters.

#include "sql/lexer.h"

#include "gtest/gtest.h"

namespace phoenix::sql {
namespace {

std::vector<Token> MustLex(const std::string& text) {
  auto r = Lex(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.take() : std::vector<Token>{};
}

TEST(Lexer, EmptyInputYieldsEnd) {
  auto toks = MustLex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_TRUE(toks[0].Is(TokKind::kEnd));
}

TEST(Lexer, IdentifiersKeepCaseAndCarryUpper) {
  auto toks = MustLex("Select FooBar");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_TRUE(toks[0].IsKeyword("SELECT"));
  EXPECT_EQ(toks[1].text, "FooBar");
  EXPECT_EQ(toks[1].upper, "FOOBAR");
}

TEST(Lexer, TempTableNamesWithHash) {
  auto toks = MustLex("#tmp_1");
  EXPECT_EQ(toks[0].text, "#tmp_1");
  EXPECT_TRUE(toks[0].Is(TokKind::kIdent));
}

TEST(Lexer, IntegerAndDoubleLiterals) {
  auto toks = MustLex("42 3.14 0.5 2e3 1.5E-2");
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_TRUE(toks[0].Is(TokKind::kInt));
  EXPECT_DOUBLE_EQ(toks[1].double_value, 3.14);
  EXPECT_DOUBLE_EQ(toks[2].double_value, 0.5);
  EXPECT_DOUBLE_EQ(toks[3].double_value, 2000.0);
  EXPECT_DOUBLE_EQ(toks[4].double_value, 0.015);
}

TEST(Lexer, StringLiteralWithEscapedQuote) {
  auto toks = MustLex("'it''s'");
  ASSERT_TRUE(toks[0].Is(TokKind::kString));
  EXPECT_EQ(toks[0].text, "it's");
}

TEST(Lexer, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("'oops").ok());
}

TEST(Lexer, LineAndBlockComments) {
  auto toks = MustLex("SELECT -- a comment\n 1 /* block\n comment */ + 2");
  ASSERT_EQ(toks.size(), 5u);  // SELECT 1 + 2 <end>
  EXPECT_EQ(toks[1].int_value, 1);
  EXPECT_TRUE(toks[2].IsSymbol("+"));
}

TEST(Lexer, UnterminatedBlockCommentFails) {
  EXPECT_FALSE(Lex("1 /* never closed").ok());
}

TEST(Lexer, MultiCharOperators) {
  auto toks = MustLex("<= >= <> != < > =");
  EXPECT_TRUE(toks[0].IsSymbol("<="));
  EXPECT_TRUE(toks[1].IsSymbol(">="));
  EXPECT_TRUE(toks[2].IsSymbol("<>"));
  EXPECT_TRUE(toks[3].IsSymbol("!="));
  EXPECT_TRUE(toks[4].IsSymbol("<"));
  EXPECT_TRUE(toks[5].IsSymbol(">"));
  EXPECT_TRUE(toks[6].IsSymbol("="));
}

TEST(Lexer, Parameters) {
  auto toks = MustLex("@T @count2");
  ASSERT_TRUE(toks[0].Is(TokKind::kParam));
  EXPECT_EQ(toks[0].text, "T");
  EXPECT_EQ(toks[1].text, "count2");
}

TEST(Lexer, BareAtSignFails) {
  EXPECT_FALSE(Lex("@ foo").ok());
}

TEST(Lexer, UnexpectedCharacterFails) {
  auto r = Lex("SELECT ^");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kSqlError);
}

TEST(Lexer, OffsetsPointIntoSource) {
  auto toks = MustLex("SELECT  foo");
  EXPECT_EQ(toks[0].offset, 0u);
  EXPECT_EQ(toks[1].offset, 8u);
}

TEST(Lexer, NumberFollowedByIdentifierEdge) {
  // '2e' should not eat the identifier when no exponent digits follow.
  auto toks = MustLex("2eggs");
  EXPECT_TRUE(toks[0].Is(TokKind::kInt));
  EXPECT_EQ(toks[0].int_value, 2);
  EXPECT_EQ(toks[1].text, "eggs");
}

}  // namespace
}  // namespace phoenix::sql
