// Classifier and SQL-rewriter units: the paper's §3 tricks in isolation.

#include "core/rewriter.h"

#include "core/classifier.h"
#include "core/state_store.h"
#include "sql/parser.h"

#include "gtest/gtest.h"

namespace phoenix::core {
namespace {

std::unique_ptr<sql::SelectStmt> ParseSelect(const std::string& sql) {
  auto s = sql::Parser::ParseStatement(sql);
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ((*s)->kind, sql::StmtKind::kSelect);
  return std::move((*s)->select);
}

RequestClass ClassOf(const std::string& sql) {
  auto c = Classify(sql);
  EXPECT_TRUE(c.ok()) << sql << ": " << c.status().ToString();
  return c.ok() ? c->cls : RequestClass::kPassthrough;
}

TEST(Classifier, AllClasses) {
  EXPECT_EQ(ClassOf("SELECT * FROM t"), RequestClass::kSelect);
  EXPECT_EQ(ClassOf("SELECT a INTO u FROM t"), RequestClass::kSelectInto);
  EXPECT_EQ(ClassOf("INSERT INTO t VALUES (1)"), RequestClass::kDml);
  EXPECT_EQ(ClassOf("UPDATE t SET a = 1"), RequestClass::kDml);
  EXPECT_EQ(ClassOf("DELETE FROM t"), RequestClass::kDml);
  EXPECT_EQ(ClassOf("CREATE TEMP TABLE t (a INT)"),
            RequestClass::kCreateTempTable);
  EXPECT_EQ(ClassOf("CREATE TABLE #t (a INT)"),
            RequestClass::kCreateTempTable);
  EXPECT_EQ(ClassOf("CREATE TABLE t (a INT)"), RequestClass::kPassthrough);
  EXPECT_EQ(ClassOf("CREATE TEMP PROCEDURE p AS SELECT 1"),
            RequestClass::kCreateTempProc);
  EXPECT_EQ(ClassOf("CREATE PROCEDURE p AS SELECT 1"),
            RequestClass::kPassthrough);
  EXPECT_EQ(ClassOf("DROP TABLE t"), RequestClass::kDropObject);
  EXPECT_EQ(ClassOf("DROP PROCEDURE p"), RequestClass::kDropObject);
  EXPECT_EQ(ClassOf("BEGIN TRANSACTION"), RequestClass::kBegin);
  EXPECT_EQ(ClassOf("COMMIT"), RequestClass::kCommit);
  EXPECT_EQ(ClassOf("ROLLBACK"), RequestClass::kRollback);
  EXPECT_EQ(ClassOf("SELECT 1; SELECT 2"), RequestClass::kBatch);
  EXPECT_EQ(ClassOf("SHOW TABLES"), RequestClass::kPassthrough);
  EXPECT_EQ(ClassOf("EXEC p(1)"), RequestClass::kPassthrough);
}

TEST(Classifier, ParseFailureReturnsError) {
  EXPECT_FALSE(Classify("NOT REALLY SQL").ok());
}

TEST(Rewriter, MetadataProbeForcesEmptyResult) {
  auto sel = ParseSelect("SELECT a, b FROM t WHERE a > 5 ORDER BY b LIMIT 3");
  auto probe = MakeMetadataProbe(*sel);
  std::string sql = probe->ToSql();
  EXPECT_NE(sql.find("(0 = 1)"), std::string::npos);
  EXPECT_NE(sql.find("a > 5"), std::string::npos);  // original kept (ANDed)
  EXPECT_EQ(sql.find("ORDER BY"), std::string::npos);
  EXPECT_EQ(sql.find("LIMIT"), std::string::npos);
}

TEST(Rewriter, MetadataProbeWithoutWhere) {
  auto sel = ParseSelect("SELECT a FROM t");
  std::string sql = MakeMetadataProbe(*sel)->ToSql();
  EXPECT_NE(sql.find("WHERE (0 = 1)"), std::string::npos);
}

TEST(Rewriter, CreateTableFromMetadataSanitizesNames) {
  Schema metadata;
  metadata.AddColumn(Column{"GOOD_NAME", DataType::kInt64, true});
  metadata.AddColumn(Column{"SUM(L_QTY)", DataType::kDouble, true});
  metadata.AddColumn(Column{"", DataType::kString, true});
  metadata.AddColumn(Column{"good_name", DataType::kDate, true});  // dup
  sql::CreateTableStmt ct = MakeCreateTableFromMetadata("PHX_RES_1", metadata);
  EXPECT_EQ(ct.table, "PHX_RES_1");
  EXPECT_FALSE(ct.temporary);
  ASSERT_EQ(ct.columns.size(), 4u);
  EXPECT_EQ(ct.columns[0].name, "GOOD_NAME");
  EXPECT_EQ(ct.columns[1].name, "SUML_QTY");
  EXPECT_EQ(ct.columns[2].name, "C3");
  EXPECT_EQ(ct.columns[3].name, "good_name_2");
  // The DDL must itself parse.
  EXPECT_TRUE(sql::Parser::ParseStatement(ct.ToSql()).ok());
}

TEST(Rewriter, InsertSelectMaterialization) {
  auto sel = ParseSelect("SELECT a, b FROM t WHERE a > 1");
  std::string sql = MakeInsertSelect("PHX_RES_9", *sel)->ToSql();
  EXPECT_EQ(sql.rfind("INSERT INTO PHX_RES_9 SELECT", 0), 0u) << sql;
  EXPECT_TRUE(sql::Parser::ParseStatement(sql).ok());
}

TEST(Rewriter, SelectKeysOrdersByPk) {
  auto sel = ParseSelect("SELECT v FROM t WHERE v > 3");
  auto keys = MakeSelectKeys(*sel, {"K1", "K2"});
  std::string sql = keys->ToSql();
  EXPECT_NE(sql.find("SELECT K1, K2"), std::string::npos);
  EXPECT_NE(sql.find("ORDER BY K1, K2"), std::string::npos);
  EXPECT_NE(sql.find("v > 3"), std::string::npos);
}

TEST(Rewriter, KeyLookupBuildsPkEquality) {
  auto sel = ParseSelect("SELECT v FROM t WHERE v > 3");
  Row key{Value::Int64(7), Value::String("x")};
  std::string sql = MakeKeyLookup(*sel, {"A", "B"}, key)->ToSql();
  EXPECT_NE(sql.find("A = 7"), std::string::npos);
  EXPECT_NE(sql.find("B = 'x'"), std::string::npos);
  // The original WHERE is NOT applied — keyset re-reads by key only.
  EXPECT_EQ(sql.find("v > 3"), std::string::npos);
}

TEST(Rewriter, RangeLookupKeepsPredicateAndBounds) {
  auto sel = ParseSelect("SELECT v FROM t WHERE v > 3");
  Value low = Value::Int64(5);
  Value high = Value::Int64(9);
  std::string sql = MakeRangeLookup(*sel, "K", &low, high)->ToSql();
  EXPECT_NE(sql.find("K > 5"), std::string::npos);
  EXPECT_NE(sql.find("K <= 9"), std::string::npos);
  EXPECT_NE(sql.find("v > 3"), std::string::npos);
  EXPECT_NE(sql.find("ORDER BY K"), std::string::npos);
  // First range has no lower bound.
  std::string first = MakeRangeLookup(*sel, "K", nullptr, high)->ToSql();
  EXPECT_EQ(first.find("K > "), std::string::npos);
}

TEST(Rewriter, DmlWrapShape) {
  auto dml = sql::Parser::ParseStatement("DELETE FROM t WHERE a = 1");
  ASSERT_TRUE(dml.ok());
  std::string sql = MakeDmlWrap("PHX_ST_1", 42, **dml);
  EXPECT_EQ(sql.rfind("BEGIN TRANSACTION; ", 0), 0u);
  EXPECT_NE(sql.find("DELETE FROM t"), std::string::npos);
  EXPECT_NE(sql.find("VALUES (42, ROWCOUNT())"), std::string::npos);
  EXPECT_NE(sql.find("COMMIT"), std::string::npos);
  // The whole wrap parses as a 4-statement batch.
  auto parsed = sql::Parser::ParseScript(sql);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 4u);
}

TEST(Rewriter, StatusProbeAndDdlParse) {
  EXPECT_TRUE(sql::Parser::ParseStatement(MakeStatusProbe("PHX_ST_1", 3)).ok());
  EXPECT_TRUE(sql::Parser::ParseStatement(MakeStatusTableDdl("PHX_ST_1")).ok());
}

TEST(Rewriter, RenameObjectsInSelectAddsAlias) {
  std::map<std::string, std::string> tables{{"#TMP", "PHX_TMP_1_TMP"}};
  auto stmt = sql::Parser::ParseStatement(
      "SELECT #tmp.a FROM #tmp WHERE #tmp.a > 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(RenameObjects(stmt->get(), tables, {}));
  std::string sql = (*stmt)->ToSql();
  EXPECT_NE(sql.find("FROM PHX_TMP_1_TMP #tmp"), std::string::npos) << sql;
  // Qualifier still resolves because the original name became the alias.
  EXPECT_NE(sql.find("#tmp.a"), std::string::npos);
}

TEST(Rewriter, RenameObjectsCoversAllStatementKinds) {
  std::map<std::string, std::string> tables{{"T", "X"}};
  std::map<std::string, std::string> procs{{"P", "Q"}};
  struct Case {
    const char* sql;
    const char* expect;
  } cases[] = {
      {"INSERT INTO t VALUES (1)", "INSERT INTO X"},
      {"INSERT INTO t SELECT * FROM t", "INSERT INTO X SELECT * FROM X t"},
      {"UPDATE t SET a = 1", "UPDATE X"},
      {"DELETE FROM t", "DELETE FROM X"},
      {"DROP TABLE t", "DROP TABLE X"},
      {"DROP PROCEDURE p", "DROP PROCEDURE Q"},
      {"EXEC p(1)", "EXEC Q"},
      {"SHOW KEYS t", "SHOW KEYS X"},
      {"SELECT a INTO t FROM u", "INTO X"},
  };
  for (const Case& c : cases) {
    auto stmt = sql::Parser::ParseStatement(c.sql);
    ASSERT_TRUE(stmt.ok()) << c.sql;
    RenameObjects(stmt->get(), tables, procs);
    EXPECT_NE((*stmt)->ToSql().find(c.expect), std::string::npos)
        << c.sql << " -> " << (*stmt)->ToSql();
  }
}

TEST(Rewriter, RenameLeavesUnmappedAlone) {
  std::map<std::string, std::string> tables{{"OTHER", "X"}};
  auto stmt = sql::Parser::ParseStatement("SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(RenameObjects(stmt->get(), tables, {}));
  EXPECT_NE((*stmt)->ToSql().find("FROM t"), std::string::npos);
}

TEST(Rewriter, RenameInsideProcBody) {
  std::map<std::string, std::string> tables{{"T", "X"}};
  auto stmt = sql::Parser::ParseStatement(
      "CREATE PROCEDURE p AS BEGIN INSERT INTO t VALUES (1); END");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(RenameObjects(stmt->get(), tables, {}));
  EXPECT_NE((*stmt)->ToSql().find("INSERT INTO X"), std::string::npos);
}

TEST(StateStore, NamesEmbedTagAndCounter) {
  PhoenixConfig config;
  ConnState conn;
  conn.tag = "77";
  EXPECT_EQ(NextResultTableName(config, &conn), "PHX_RES_77_1");
  EXPECT_EQ(NextKeyTableName(config, &conn), "PHX_KEY_77_2");
  EXPECT_EQ(StatusTableName(config, conn), "PHX_ST_77");
  EXPECT_EQ(ProxyTableName(config, conn), "PHX_PROXY_77");
  EXPECT_EQ(TempStandInName(config, conn, "#scratch"), "PHX_TMP_77_SCRATCH");
}

TEST(StateStore, ConnTagsUnique) {
  std::string a = MakeConnTag();
  std::string b = MakeConnTag();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace phoenix::core
