// Full-stack smoke tests: application → Phoenix DM → driver → wire → server
// → engine → storage, including a crash in the middle of a session.

#include "test_util.h"

#include "core/phoenix_driver_manager.h"
#include "odbc/odbc_api.h"

namespace phoenix {
namespace {

using core::PhoenixDriverManager;
using odbc::Hdbc;
using odbc::Henv;
using odbc::Hstmt;
using odbc::SqlReturn;
using testutil::MustExec;
using testutil::MustQuery;
using testutil::TestCluster;

TEST(EndToEnd, PlainDriverManagerBasicSession) {
  TestCluster cluster;
  odbc::DriverManager dm(&cluster.network);
  Henv* env = dm.AllocEnv();
  Hdbc* dbc = dm.AllocConnect(env);
  ASSERT_EQ(dm.Connect(dbc, "testdb", "alice"), SqlReturn::kSuccess);

  MustExec(&dm, dbc,
           "CREATE TABLE T (ID INTEGER PRIMARY KEY, NAME VARCHAR)");
  EXPECT_EQ(MustExec(&dm, dbc,
                     "INSERT INTO T VALUES (1, 'one'), (2, 'two'), (3, "
                     "'three')"),
            3);
  std::vector<Row> rows =
      MustQuery(&dm, dbc, "SELECT NAME FROM T WHERE ID >= 2 ORDER BY ID");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsString(), "two");
  EXPECT_EQ(rows[1][0].AsString(), "three");

  EXPECT_EQ(dm.Disconnect(dbc), SqlReturn::kSuccess);
  dm.FreeEnv(env);
}

TEST(EndToEnd, PhoenixTransparentWithoutFailures) {
  TestCluster cluster;
  PhoenixDriverManager dm(&cluster.network);
  Henv* env = dm.AllocEnv();
  Hdbc* dbc = dm.AllocConnect(env);
  ASSERT_EQ(dm.Connect(dbc, "testdb", "alice"), SqlReturn::kSuccess);

  MustExec(&dm, dbc, "CREATE TABLE T (ID INTEGER PRIMARY KEY, V DOUBLE)");
  for (int i = 1; i <= 10; ++i) {
    MustExec(&dm, dbc, "INSERT INTO T VALUES (" + std::to_string(i) + ", " +
                           std::to_string(i * 1.5) + ")");
  }
  std::vector<Row> rows = MustQuery(
      &dm, dbc, "SELECT ID, V FROM T WHERE ID <= 5 ORDER BY ID DESC");
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0][0].AsInt64(), 5);
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 7.5);
  EXPECT_EQ(dm.stats().materialized_results, 1u);

  EXPECT_EQ(dm.Disconnect(dbc), SqlReturn::kSuccess);
  dm.FreeEnv(env);
}

TEST(EndToEnd, PhoenixSurvivesCrashMidFetch) {
  TestCluster cluster;
  PhoenixDriverManager dm(&cluster.network,
                          testutil::AutoRestartConfig(&cluster.server));
  Henv* env = dm.AllocEnv();
  Hdbc* dbc = dm.AllocConnect(env);
  ASSERT_EQ(dm.Connect(dbc, "testdb", "alice"), SqlReturn::kSuccess);

  MustExec(&dm, dbc, "CREATE TABLE NUMS (N INTEGER PRIMARY KEY)");
  std::string insert = "INSERT INTO NUMS VALUES (1)";
  for (int i = 2; i <= 500; ++i) insert += ", (" + std::to_string(i) + ")";
  // Multi-row INSERT parses as one statement with many value rows.
  insert = "INSERT INTO NUMS VALUES (1)";
  {
    std::string values;
    for (int i = 1; i <= 500; ++i) {
      if (i > 1) values += ", ";
      values += "(" + std::to_string(i) + ")";
    }
    insert = "INSERT INTO NUMS VALUES " + values;
  }
  EXPECT_EQ(MustExec(&dm, dbc, insert), 500);

  Hstmt* stmt = dm.AllocStmt(dbc);
  ASSERT_EQ(dm.ExecDirect(stmt, "SELECT N FROM NUMS ORDER BY N"),
            SqlReturn::kSuccess);

  // Read the first 200 rows, then the server dies.
  for (int i = 1; i <= 200; ++i) {
    ASSERT_EQ(dm.Fetch(stmt), SqlReturn::kSuccess) << "row " << i;
    Value v;
    dm.GetData(stmt, 0, &v);
    ASSERT_EQ(v.AsInt64(), i);
  }
  cluster.server.Crash();

  // The application keeps fetching; Phoenix recovers behind the scenes and
  // delivery resumes at row 201 with nothing skipped or repeated.
  for (int i = 201; i <= 500; ++i) {
    ASSERT_EQ(dm.Fetch(stmt), SqlReturn::kSuccess) << "row " << i;
    Value v;
    dm.GetData(stmt, 0, &v);
    ASSERT_EQ(v.AsInt64(), i) << "row " << i;
  }
  EXPECT_EQ(dm.Fetch(stmt), SqlReturn::kNoData);
  EXPECT_GE(dm.stats().recoveries, 1u);

  EXPECT_EQ(dm.Disconnect(dbc), SqlReturn::kSuccess);
  dm.FreeEnv(env);
}

}  // namespace
}  // namespace phoenix
