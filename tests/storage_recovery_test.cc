// DurabilityManager: checkpoint + WAL redo recovery, including torn tails.

#include "storage/recovery.h"

#include "common/rng.h"
#include "obs/metrics.h"

#include "gtest/gtest.h"

namespace phoenix::storage {
namespace {

Schema KvSchema() {
  Schema s;
  s.AddColumn(Column{"K", DataType::kInt64, false});
  s.AddColumn(Column{"V", DataType::kInt64, true});
  return s;
}

WalCommitRecord CreateTableCommit(uint64_t txn) {
  WalCommitRecord rec;
  rec.txn_id = txn;
  rec.ops.push_back(WalOp::CreateTable("T", KvSchema(), {0}));
  return rec;
}

WalCommitRecord InsertCommit(uint64_t txn, RowId rid, int64_t k, int64_t v) {
  WalCommitRecord rec;
  rec.txn_id = txn;
  rec.ops.push_back(WalOp::Insert("T", rid, Row{Value::Int64(k),
                                                Value::Int64(v)}));
  return rec;
}

TEST(StorageRecovery, EmptyDiskRecoversEmpty) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  TableStore store;
  RecoveryInfo info;
  ASSERT_TRUE(dm.Recover(&store, &info).ok());
  EXPECT_FALSE(info.had_checkpoint);
  EXPECT_EQ(info.records_replayed, 0u);
  EXPECT_EQ(info.next_txn_id, 1u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(StorageRecovery, WalOnlyRecovery) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  ASSERT_TRUE(dm.LogCommit(InsertCommit(2, 1, 10, 100)).ok());
  ASSERT_TRUE(dm.LogCommit(InsertCommit(3, 2, 20, 200)).ok());
  disk.Crash();  // everything was synced; nothing is lost

  TableStore store;
  RecoveryInfo info;
  ASSERT_TRUE(dm.Recover(&store, &info).ok());
  EXPECT_EQ(info.records_replayed, 3u);
  EXPECT_EQ(info.next_txn_id, 4u);
  Table* t = store.Get("T");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ((*t->Find(1))[1].AsInt64(), 100);
}

TEST(StorageRecovery, CheckpointPlusWal) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  TableStore store;
  // Build state, checkpoint it, then add more committed work.
  RecoveryInfo ignore;
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  ASSERT_TRUE(dm.LogCommit(InsertCommit(2, 1, 10, 100)).ok());
  ASSERT_TRUE(dm.Recover(&store, &ignore).ok());
  ASSERT_TRUE(dm.WriteCheckpoint(store, 3).ok());
  ASSERT_TRUE(dm.LogCommit(InsertCommit(3, 2, 20, 200)).ok());
  disk.Crash();

  TableStore recovered;
  RecoveryInfo info;
  ASSERT_TRUE(dm.Recover(&recovered, &info).ok());
  EXPECT_TRUE(info.had_checkpoint);
  EXPECT_EQ(info.records_replayed, 1u);  // only the post-checkpoint commit
  EXPECT_EQ(info.next_txn_id, 4u);
  Table* t = recovered.Get("T");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST(StorageRecovery, UnsyncedTailIgnored) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  // Simulate a commit whose WAL force never completed: write without sync.
  WalWriter writer(&disk, dm.wal_file());
  ASSERT_TRUE(writer.AppendCommitNoSync(InsertCommit(2, 1, 1, 1)).ok());
  disk.Crash();

  TableStore store;
  RecoveryInfo info;
  ASSERT_TRUE(dm.Recover(&store, &info).ok());
  EXPECT_EQ(info.records_replayed, 1u);
  EXPECT_EQ(store.Get("T")->num_rows(), 0u);
}

// Regression: recovery must amputate a torn WAL tail, not merely ignore it —
// the writer appends at end-of-file, so commits logged after the restart
// would land behind the unreadable bytes and vanish from every future
// recovery.
TEST(StorageRecovery, TornTailIsRepairedSoNewCommitsSurvive) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  WalWriter writer(&disk, dm.wal_file());
  ASSERT_TRUE(writer.AppendCommitNoSync(InsertCommit(2, 1, 1, 1)).ok());
  disk.CrashWithPartialFlush(0.5);  // half the in-flight frame survives: torn

  TableStore store;
  RecoveryInfo info;
  ASSERT_TRUE(dm.Recover(&store, &info).ok());
  EXPECT_TRUE(info.wal_scan.tear_detected);
  // The restarted server commits more work onto the repaired log...
  ASSERT_TRUE(dm.LogCommit(InsertCommit(2, 1, 10, 100)).ok());
  disk.Crash();
  // ...and the next recovery sees it (it was unreachable before the fix).
  TableStore again;
  RecoveryInfo info2;
  ASSERT_TRUE(dm.Recover(&again, &info2).ok());
  EXPECT_FALSE(info2.wal_scan.tear_detected);
  EXPECT_EQ(info2.records_replayed, 2u);
  ASSERT_NE(again.Get("T"), nullptr);
  EXPECT_EQ(again.Get("T")->num_rows(), 1u);
  EXPECT_EQ((*again.Get("T")->Find(1))[1].AsInt64(), 100);
}

// Regression: a crash between writing the checkpoint image and truncating
// the WAL leaves both on disk. Recovery used to blindly replay the whole WAL
// on top of the image and die on the duplicate CREATE TABLE; it must instead
// skip records the checkpoint already subsumes.
TEST(StorageRecovery, CrashBetweenCheckpointImageAndWalTruncate) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  ASSERT_TRUE(dm.LogCommit(InsertCommit(2, 1, 10, 100)).ok());
  TableStore store;
  RecoveryInfo ignore;
  ASSERT_TRUE(dm.Recover(&store, &ignore).ok());
  // Die inside Checkpoint(): the image is durable, the WAL untouched.
  ASSERT_TRUE(dm.WriteCheckpoint(store, 3, /*truncate_wal=*/false).ok());
  disk.Crash();

  TableStore recovered;
  RecoveryInfo info;
  ASSERT_TRUE(dm.Recover(&recovered, &info).ok());
  EXPECT_TRUE(info.had_checkpoint);
  EXPECT_EQ(info.records_skipped, 2u);
  EXPECT_EQ(info.records_replayed, 0u);
  EXPECT_EQ(info.next_txn_id, 3u);
  Table* t = recovered.Get("T");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 1u);
  EXPECT_EQ((*t->Find(1))[1].AsInt64(), 100);

  // Commits after the interrupted checkpoint still replay normally.
  ASSERT_TRUE(dm.LogCommit(InsertCommit(3, 2, 20, 200)).ok());
  TableStore again;
  RecoveryInfo info2;
  ASSERT_TRUE(dm.Recover(&again, &info2).ok());
  EXPECT_EQ(info2.records_skipped, 2u);
  EXPECT_EQ(info2.records_replayed, 1u);
  EXPECT_EQ(again.Get("T")->num_rows(), 2u);
}

// Regression: the checkpoint metrics (storage.checkpoints / .bytes /
// .duration_us) used to be recorded after the WAL truncation, below the
// `truncate_wal == false` early return — so the crash-window path wrote a
// real durable image that never counted. They must bump on BOTH paths.
TEST(StorageRecovery, CheckpointMetricsRecordedOnBothTruncatePaths) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  TableStore store;
  RecoveryInfo ignore;
  ASSERT_TRUE(dm.Recover(&store, &ignore).ok());

  auto* reg = obs::MetricsRegistry::Default();
  obs::MetricsSnapshot before = reg->Snapshot();
  ASSERT_TRUE(dm.WriteCheckpoint(store, 2, /*truncate_wal=*/false).ok());
  obs::MetricsSnapshot mid = reg->Snapshot();
  EXPECT_EQ(mid.counter("storage.checkpoints") -
                before.counter("storage.checkpoints"),
            1u);
  EXPECT_GT(mid.counter("storage.checkpoint.bytes") -
                before.counter("storage.checkpoint.bytes"),
            0u);
  EXPECT_EQ(mid.histograms.at("storage.checkpoint.duration_us").count -
                (before.histograms.count("storage.checkpoint.duration_us")
                     ? before.histograms.at("storage.checkpoint.duration_us")
                           .count
                     : 0),
            1u);

  ASSERT_TRUE(dm.WriteCheckpoint(store, 2, /*truncate_wal=*/true).ok());
  obs::MetricsSnapshot after = reg->Snapshot();
  EXPECT_EQ(after.counter("storage.checkpoints") -
                mid.counter("storage.checkpoints"),
            1u);
  EXPECT_GT(after.counter("storage.checkpoint.bytes") -
                mid.counter("storage.checkpoint.bytes"),
            0u);
}

// Regression (lazy tail amputation): a clean unforced tail — the expected
// residue of an append cut by the crash — must NOT trigger the eager
// whole-log rewrite (storage.recovery.wal_tail_repaired) at recovery time.
// The stale bytes stay on disk until the next append, which amputates them
// first so new frames never land behind garbage.
TEST(StorageRecovery, CleanUnforcedTailIsAmputatedLazilyNotRepaired) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  WalWriter writer(&disk, dm.wal_file());
  ASSERT_TRUE(writer.AppendCommitNoSync(InsertCommit(2, 1, 1, 1)).ok());
  disk.CrashWithPartialFlush(0.5);  // half a frame survives: clean tear

  obs::MetricsSnapshot before = obs::MetricsRegistry::Default()->Snapshot();
  uint64_t file_bytes = disk.ReadDurable(dm.wal_file())->size();
  TableStore store;
  RecoveryInfo info;
  ASSERT_TRUE(dm.Recover(&store, &info).ok());
  ASSERT_TRUE(info.wal_scan.tear_detected);
  ASSERT_GT(info.wal_scan.bytes_unforced_tail, 0u);
  ASSERT_EQ(info.wal_scan.bytes_corrupt, 0u);
  obs::MetricsSnapshot mid = obs::MetricsRegistry::Default()->Snapshot();
  EXPECT_EQ(mid.counter("storage.recovery.wal_tail_repaired") -
                before.counter("storage.recovery.wal_tail_repaired"),
            0u)
      << "clean unforced tail triggered the eager rewrite";
  // Recovery itself left the log untouched: the stale bytes are still there.
  EXPECT_EQ(disk.ReadDurable(dm.wal_file())->size(), file_bytes);

  // The next append amputates the tail first, so the commit is recoverable.
  ASSERT_TRUE(dm.LogCommit(InsertCommit(2, 1, 10, 100)).ok());
  obs::MetricsSnapshot after = obs::MetricsRegistry::Default()->Snapshot();
  EXPECT_EQ(after.counter("storage.wal.stale_tail_amputations") -
                mid.counter("storage.wal.stale_tail_amputations"),
            1u);
  TableStore again;
  RecoveryInfo info2;
  ASSERT_TRUE(dm.Recover(&again, &info2).ok());
  EXPECT_FALSE(info2.wal_scan.tear_detected);
  EXPECT_EQ(info2.records_replayed, 2u);
  ASSERT_NE(again.Get("T"), nullptr);
  EXPECT_EQ((*again.Get("T")->Find(1))[1].AsInt64(), 100);
}

// The counterpart: a CRC-corrupt tail (a complete frame whose payload was
// damaged) is real corruption and still takes the eager rewrite path,
// bumping storage.recovery.wal_tail_repaired.
TEST(StorageRecovery, CorruptTailStillTakesEagerRepair) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  ASSERT_TRUE(dm.LogCommit(InsertCommit(2, 1, 10, 100)).ok());
  // Damage the last frame's payload in place: complete frame, CRC mismatch.
  std::string bytes = disk.ReadDurable(dm.wal_file()).take();
  bytes.back() = static_cast<char>(bytes.back() ^ 0xFF);
  ASSERT_TRUE(disk.WriteAtomic(dm.wal_file(), bytes).ok());

  obs::MetricsSnapshot before = obs::MetricsRegistry::Default()->Snapshot();
  TableStore store;
  RecoveryInfo info;
  ASSERT_TRUE(dm.Recover(&store, &info).ok());
  ASSERT_TRUE(info.wal_scan.tear_detected);
  ASSERT_GT(info.wal_scan.bytes_corrupt, 0u);
  obs::MetricsSnapshot after = obs::MetricsRegistry::Default()->Snapshot();
  EXPECT_EQ(after.counter("storage.recovery.wal_tail_repaired") -
                before.counter("storage.recovery.wal_tail_repaired"),
            1u);
  // The rewrite happened now: only the valid prefix remains on disk.
  EXPECT_EQ(disk.ReadDurable(dm.wal_file())->size(),
            info.wal_scan.bytes_valid);
  EXPECT_EQ(info.records_replayed, 1u);  // the damaged insert is gone
}

// The repair path's I/O budget: recovering a large torn log — scan plus
// eager tail rewrite — must read the WAL exactly once. The rewrite reuses
// the bytes the scan already holds; a second ReadDurable would double the
// recovery read traffic on exactly the logs big enough for it to hurt.
TEST(StorageRecovery, CorruptTailRepairReadsTheLogExactlyOnce) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  uint64_t txn = 2;
  for (RowId rid = 1; rid <= 2000; ++rid) {
    ASSERT_TRUE(dm.LogCommit(InsertCommit(txn++, rid, rid, rid)).ok());
  }
  // Damage the last frame in place: complete frame, CRC mismatch — the
  // corruption class that takes the eager rewrite.
  std::string bytes = disk.ReadDurable(dm.wal_file()).take();
  bytes.back() = static_cast<char>(bytes.back() ^ 0xFF);
  ASSERT_TRUE(disk.WriteAtomic(dm.wal_file(), bytes).ok());

  uint64_t reads_before = disk.read_count();
  TableStore store;
  RecoveryInfo info;
  ASSERT_TRUE(dm.Recover(&store, &info).ok());
  // No checkpoint file exists, so the only read recovery may perform is the
  // single WAL slurp shared by the scan and the repair.
  EXPECT_EQ(disk.read_count() - reads_before, 1u);
  ASSERT_TRUE(info.wal_scan.tear_detected);
  ASSERT_GT(info.wal_scan.bytes_corrupt, 0u);
  EXPECT_EQ(info.records_replayed, 2000u);  // all but the damaged frame
  EXPECT_EQ(disk.ReadDurable(dm.wal_file())->size(),
            info.wal_scan.bytes_valid);
}

TEST(StorageRecovery, CheckpointHeaderErrorsNameTheObservedBytes) {
  // Bad magic — a torn or foreign image — and an unsupported version — a
  // newer software's image — are different operational problems, and the
  // error must carry what was actually observed.
  {
    SimDisk disk;
    DurabilityManager dm(&disk, "db");
    Encoder enc;
    enc.PutU32(0xDEADBEEF);
    enc.PutU32(1);
    ASSERT_TRUE(disk.WriteAtomic(dm.ckpt_file(), enc.Take()).ok());
    TableStore store;
    RecoveryInfo info;
    Status st = dm.Recover(&store, &info);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.ToString().find("bad checkpoint magic 0xdeadbeef"),
              std::string::npos)
        << st.ToString();
    EXPECT_NE(st.ToString().find("want 0x50485843"), std::string::npos)
        << st.ToString();
  }
  {
    SimDisk disk;
    DurabilityManager dm(&disk, "db");
    Encoder enc;
    enc.PutU32(0x50485843);  // valid magic "PHXC"
    enc.PutU32(99);          // from the future
    ASSERT_TRUE(disk.WriteAtomic(dm.ckpt_file(), enc.Take()).ok());
    TableStore store;
    RecoveryInfo info;
    Status st = dm.Recover(&store, &info);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.ToString().find("unsupported checkpoint version 99"),
              std::string::npos)
        << st.ToString();
    EXPECT_NE(st.ToString().find("supported 1..3"), std::string::npos)
        << st.ToString();
  }
}

// Multi-table WAL with index DDL and table-DDL barriers, replayed with 4
// threads: every partition and barrier mechanism fires, and the result
// matches what serial replay produces.
TEST(StorageRecovery, ParallelReplayHandlesDdlBarriersAndIndexes) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  uint64_t txn = 1;
  auto commit1 = [&](WalOp op) {
    WalCommitRecord rec;
    rec.txn_id = txn++;
    rec.ops.push_back(std::move(op));
    ASSERT_TRUE(dm.LogCommit(rec).ok());
  };
  commit1(WalOp::CreateTable("A", KvSchema(), {0}));
  commit1(WalOp::CreateTable("B", KvSchema(), {0}));
  for (RowId rid = 1; rid <= 200; ++rid) {
    commit1(WalOp::Insert("A", rid, Row{Value::Int64(static_cast<int64_t>(rid)),
                                        Value::Int64(1)}));
    commit1(WalOp::Insert("B", rid, Row{Value::Int64(static_cast<int64_t>(rid)),
                                        Value::Int64(2)}));
  }
  commit1(WalOp::CreateIndex("A", "A_V", {1}));
  commit1(WalOp::CreateTable("C", KvSchema(), {0}));  // barrier mid-log
  commit1(WalOp::Insert("C", 1, Row{Value::Int64(7), Value::Int64(8)}));
  commit1(WalOp::DropTable("B"));                     // barrier again
  disk.Crash();

  TableStore serial;
  RecoveryInfo sinfo;
  ASSERT_TRUE(dm.Recover(&serial, &sinfo).ok());

  DurabilityManager dm4(&disk, "db");
  dm4.set_recovery_threads(4);
  TableStore parallel;
  RecoveryInfo pinfo;
  ASSERT_TRUE(dm4.Recover(&parallel, &pinfo).ok());

  EXPECT_EQ(pinfo.replay_threads, 4u);
  EXPECT_GT(pinfo.partitions_replayed, 0u);
  EXPECT_EQ(pinfo.ddl_barriers, 4u);  // 3 CREATE TABLE + 1 DROP TABLE
  // Everything that is a property of the LOG (not of the replay mode) must
  // match the serial run exactly.
  EXPECT_EQ(pinfo.records_replayed, sinfo.records_replayed);
  EXPECT_EQ(pinfo.ops_replayed, sinfo.ops_replayed);
  EXPECT_EQ(pinfo.next_txn_id, sinfo.next_txn_id);
  Encoder es, ep;
  serial.EncodeSnapshot(&es);
  parallel.EncodeSnapshot(&ep);
  EXPECT_TRUE(es.Take() == ep.Take());
  ASSERT_NE(parallel.Get("A"), nullptr);
  EXPECT_EQ(parallel.Get("A")->num_rows(), 200u);
  EXPECT_EQ(parallel.Get("A")->indexes().size(), 1u);
  EXPECT_EQ(parallel.Get("B"), nullptr);
  ASSERT_NE(parallel.Get("C"), nullptr);
  EXPECT_EQ(parallel.Get("C")->num_rows(), 1u);
}

// Randomized serial/parallel equivalence at the storage layer: seeded
// multi-table workloads (DML + index DDL + table DDL + checkpoints + torn
// tails) must recover to byte-identical snapshots whatever replay_threads
// is. The chaos matrix runs the same contract over full-stack schedules;
// this is the fast, shrinking-friendly version.
TEST(StorageRecovery, ParallelReplayMatchesSerialRandomized) {
  Rng rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    SimDisk disk;
    DurabilityManager dm(&disk, "db");
    uint64_t txn = 1;
    const int n_tables = 1 + static_cast<int>(rng.NextBelow(4));
    std::vector<std::string> tables;
    std::vector<RowId> next_rid;
    for (int t = 0; t < n_tables; ++t) {
      std::string name = "T" + std::to_string(t);
      WalCommitRecord rec;
      rec.txn_id = txn++;
      rec.ops.push_back(WalOp::CreateTable(name, KvSchema(), {0}));
      ASSERT_TRUE(dm.LogCommit(rec).ok());
      tables.push_back(name);
      next_rid.push_back(1);
    }
    const int n_commits = 30 + static_cast<int>(rng.NextBelow(120));
    for (int i = 0; i < n_commits; ++i) {
      size_t t = rng.NextBelow(tables.size());
      WalCommitRecord rec;
      rec.txn_id = txn++;
      // Multi-op commits, sometimes spanning tables (the partitioner must
      // split one record across partitions).
      const int n_ops = 1 + static_cast<int>(rng.NextBelow(3));
      for (int o = 0; o < n_ops; ++o) {
        if (o > 0 && rng.NextBool(0.3)) t = rng.NextBelow(tables.size());
        RowId rid = next_rid[t];
        switch (rng.NextBelow(4)) {
          case 0:
          case 1:
            rec.ops.push_back(WalOp::Insert(
                tables[t], rid,
                Row{Value::Int64(static_cast<int64_t>(rid)),
                    Value::Int64(static_cast<int64_t>(rng.NextBelow(100)))}));
            ++next_rid[t];
            break;
          case 2:
            if (rid > 1) {
              rec.ops.push_back(WalOp::Update(
                  tables[t], 1 + rng.NextBelow(rid - 1),
                  Row{Value::Int64(1000 + static_cast<int64_t>(o)),
                      Value::Int64(0)}));
            }
            break;
          default:
            if (rid > 1) {
              rec.ops.push_back(
                  WalOp::Delete(tables[t], 1 + rng.NextBelow(rid - 1)));
            }
            break;
        }
      }
      if (rec.ops.empty()) continue;
      ASSERT_TRUE(dm.LogCommit(rec).ok());
    }
    // Updates/deletes may hit already-deleted rids; that is an apply error
    // serial and parallel replay must AGREE on. Filter those trials by
    // running serial first and skipping errored logs entirely: equality of
    // outcome (ok or not) is still asserted.
    TableStore serial;
    RecoveryInfo sinfo;
    Status s1 = dm.Recover(&serial, &sinfo);

    DurabilityManager dm4(&disk, "db");
    dm4.set_recovery_threads(1 + 3 * (trial % 2 == 0 ? 1 : 2));  // 4 or 7
    TableStore parallel;
    RecoveryInfo pinfo;
    Status s4 = dm4.Recover(&parallel, &pinfo);

    ASSERT_EQ(s1.ok(), s4.ok())
        << "trial " << trial << " serial: " << s1.ToString()
        << " parallel: " << s4.ToString();
    if (!s1.ok()) {
      // Both failed — and both must have cleared their stores.
      EXPECT_EQ(serial.size(), 0u);
      EXPECT_EQ(parallel.size(), 0u);
      continue;
    }
    EXPECT_EQ(pinfo.records_replayed, sinfo.records_replayed);
    EXPECT_EQ(pinfo.ops_replayed, sinfo.ops_replayed);
    EXPECT_EQ(pinfo.records_skipped, sinfo.records_skipped);
    EXPECT_EQ(pinfo.next_txn_id, sinfo.next_txn_id);
    Encoder es, ep;
    serial.EncodeSnapshot(&es);
    parallel.EncodeSnapshot(&ep);
    EXPECT_TRUE(es.Take() == ep.Take()) << "trial " << trial;
  }
}

TEST(StorageRecovery, ApplyWalOpErrorsOnMissingTable) {
  TableStore store;
  EXPECT_FALSE(ApplyWalOp(WalOp::Insert("NOPE", 1, Row{}), &store).ok());
  EXPECT_FALSE(ApplyWalOp(WalOp::Delete("NOPE", 1), &store).ok());
  EXPECT_FALSE(ApplyWalOp(WalOp::Update("NOPE", 1, Row{}), &store).ok());
}

TEST(StorageRecovery, RecoveryIsRepeatable) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  ASSERT_TRUE(dm.LogCommit(InsertCommit(2, 1, 10, 100)).ok());
  for (int round = 0; round < 3; ++round) {
    TableStore store;
    RecoveryInfo info;
    ASSERT_TRUE(dm.Recover(&store, &info).ok());
    ASSERT_EQ(store.Get("T")->num_rows(), 1u);
  }
}

// Property: commit K transactions, crash with a random partial flush of the
// un-synced tail, recover — the recovered state equals the state produced by
// some prefix of the synced commits (prefix soundness), and all fully synced
// commits are present (durability).
TEST(StorageRecovery, CrashPrefixProperty) {
  Rng rng(555);
  for (int trial = 0; trial < 40; ++trial) {
    SimDisk disk;
    DurabilityManager dm(&disk, "db");
    ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
    const int synced = 1 + static_cast<int>(rng.NextBelow(5));
    const int unsynced = static_cast<int>(rng.NextBelow(5));
    uint64_t txn = 2;
    RowId rid = 1;
    for (int i = 0; i < synced; ++i) {
      ASSERT_TRUE(dm.LogCommit(InsertCommit(txn++, rid, rid, rid)).ok());
      ++rid;
    }
    WalWriter writer(&disk, dm.wal_file());
    for (int i = 0; i < unsynced; ++i) {
      ASSERT_TRUE(writer.AppendCommitNoSync(InsertCommit(txn++, rid, rid, rid))
                      .ok());
      ++rid;
    }
    disk.CrashWithPartialFlush(rng.NextDouble());

    TableStore store;
    RecoveryInfo info;
    ASSERT_TRUE(dm.Recover(&store, &info).ok());
    Table* t = store.Get("T");
    ASSERT_NE(t, nullptr);
    // Durability: all synced inserts survive.
    ASSERT_GE(t->num_rows(), static_cast<size_t>(synced));
    // Prefix soundness: rows are exactly 1..num_rows with no holes.
    size_t n = t->num_rows();
    for (RowId r = 1; r <= n; ++r) {
      ASSERT_NE(t->Find(r), nullptr) << "hole at rid " << r;
    }
  }
}

}  // namespace
}  // namespace phoenix::storage
