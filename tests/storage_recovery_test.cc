// DurabilityManager: checkpoint + WAL redo recovery, including torn tails.

#include "storage/recovery.h"

#include "common/rng.h"
#include "obs/metrics.h"

#include "gtest/gtest.h"

namespace phoenix::storage {
namespace {

Schema KvSchema() {
  Schema s;
  s.AddColumn(Column{"K", DataType::kInt64, false});
  s.AddColumn(Column{"V", DataType::kInt64, true});
  return s;
}

WalCommitRecord CreateTableCommit(uint64_t txn) {
  WalCommitRecord rec;
  rec.txn_id = txn;
  rec.ops.push_back(WalOp::CreateTable("T", KvSchema(), {0}));
  return rec;
}

WalCommitRecord InsertCommit(uint64_t txn, RowId rid, int64_t k, int64_t v) {
  WalCommitRecord rec;
  rec.txn_id = txn;
  rec.ops.push_back(WalOp::Insert("T", rid, Row{Value::Int64(k),
                                                Value::Int64(v)}));
  return rec;
}

TEST(StorageRecovery, EmptyDiskRecoversEmpty) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  TableStore store;
  RecoveryInfo info;
  ASSERT_TRUE(dm.Recover(&store, &info).ok());
  EXPECT_FALSE(info.had_checkpoint);
  EXPECT_EQ(info.records_replayed, 0u);
  EXPECT_EQ(info.next_txn_id, 1u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(StorageRecovery, WalOnlyRecovery) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  ASSERT_TRUE(dm.LogCommit(InsertCommit(2, 1, 10, 100)).ok());
  ASSERT_TRUE(dm.LogCommit(InsertCommit(3, 2, 20, 200)).ok());
  disk.Crash();  // everything was synced; nothing is lost

  TableStore store;
  RecoveryInfo info;
  ASSERT_TRUE(dm.Recover(&store, &info).ok());
  EXPECT_EQ(info.records_replayed, 3u);
  EXPECT_EQ(info.next_txn_id, 4u);
  Table* t = store.Get("T");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ((*t->Find(1))[1].AsInt64(), 100);
}

TEST(StorageRecovery, CheckpointPlusWal) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  TableStore store;
  // Build state, checkpoint it, then add more committed work.
  RecoveryInfo ignore;
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  ASSERT_TRUE(dm.LogCommit(InsertCommit(2, 1, 10, 100)).ok());
  ASSERT_TRUE(dm.Recover(&store, &ignore).ok());
  ASSERT_TRUE(dm.WriteCheckpoint(store, 3).ok());
  ASSERT_TRUE(dm.LogCommit(InsertCommit(3, 2, 20, 200)).ok());
  disk.Crash();

  TableStore recovered;
  RecoveryInfo info;
  ASSERT_TRUE(dm.Recover(&recovered, &info).ok());
  EXPECT_TRUE(info.had_checkpoint);
  EXPECT_EQ(info.records_replayed, 1u);  // only the post-checkpoint commit
  EXPECT_EQ(info.next_txn_id, 4u);
  Table* t = recovered.Get("T");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST(StorageRecovery, UnsyncedTailIgnored) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  // Simulate a commit whose WAL force never completed: write without sync.
  WalWriter writer(&disk, dm.wal_file());
  ASSERT_TRUE(writer.AppendCommitNoSync(InsertCommit(2, 1, 1, 1)).ok());
  disk.Crash();

  TableStore store;
  RecoveryInfo info;
  ASSERT_TRUE(dm.Recover(&store, &info).ok());
  EXPECT_EQ(info.records_replayed, 1u);
  EXPECT_EQ(store.Get("T")->num_rows(), 0u);
}

// Regression: recovery must amputate a torn WAL tail, not merely ignore it —
// the writer appends at end-of-file, so commits logged after the restart
// would land behind the unreadable bytes and vanish from every future
// recovery.
TEST(StorageRecovery, TornTailIsRepairedSoNewCommitsSurvive) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  WalWriter writer(&disk, dm.wal_file());
  ASSERT_TRUE(writer.AppendCommitNoSync(InsertCommit(2, 1, 1, 1)).ok());
  disk.CrashWithPartialFlush(0.5);  // half the in-flight frame survives: torn

  TableStore store;
  RecoveryInfo info;
  ASSERT_TRUE(dm.Recover(&store, &info).ok());
  EXPECT_TRUE(info.wal_scan.tear_detected);
  // The restarted server commits more work onto the repaired log...
  ASSERT_TRUE(dm.LogCommit(InsertCommit(2, 1, 10, 100)).ok());
  disk.Crash();
  // ...and the next recovery sees it (it was unreachable before the fix).
  TableStore again;
  RecoveryInfo info2;
  ASSERT_TRUE(dm.Recover(&again, &info2).ok());
  EXPECT_FALSE(info2.wal_scan.tear_detected);
  EXPECT_EQ(info2.records_replayed, 2u);
  ASSERT_NE(again.Get("T"), nullptr);
  EXPECT_EQ(again.Get("T")->num_rows(), 1u);
  EXPECT_EQ((*again.Get("T")->Find(1))[1].AsInt64(), 100);
}

// Regression: a crash between writing the checkpoint image and truncating
// the WAL leaves both on disk. Recovery used to blindly replay the whole WAL
// on top of the image and die on the duplicate CREATE TABLE; it must instead
// skip records the checkpoint already subsumes.
TEST(StorageRecovery, CrashBetweenCheckpointImageAndWalTruncate) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  ASSERT_TRUE(dm.LogCommit(InsertCommit(2, 1, 10, 100)).ok());
  TableStore store;
  RecoveryInfo ignore;
  ASSERT_TRUE(dm.Recover(&store, &ignore).ok());
  // Die inside Checkpoint(): the image is durable, the WAL untouched.
  ASSERT_TRUE(dm.WriteCheckpoint(store, 3, /*truncate_wal=*/false).ok());
  disk.Crash();

  TableStore recovered;
  RecoveryInfo info;
  ASSERT_TRUE(dm.Recover(&recovered, &info).ok());
  EXPECT_TRUE(info.had_checkpoint);
  EXPECT_EQ(info.records_skipped, 2u);
  EXPECT_EQ(info.records_replayed, 0u);
  EXPECT_EQ(info.next_txn_id, 3u);
  Table* t = recovered.Get("T");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 1u);
  EXPECT_EQ((*t->Find(1))[1].AsInt64(), 100);

  // Commits after the interrupted checkpoint still replay normally.
  ASSERT_TRUE(dm.LogCommit(InsertCommit(3, 2, 20, 200)).ok());
  TableStore again;
  RecoveryInfo info2;
  ASSERT_TRUE(dm.Recover(&again, &info2).ok());
  EXPECT_EQ(info2.records_skipped, 2u);
  EXPECT_EQ(info2.records_replayed, 1u);
  EXPECT_EQ(again.Get("T")->num_rows(), 2u);
}

// Regression: the checkpoint metrics (storage.checkpoints / .bytes /
// .duration_us) used to be recorded after the WAL truncation, below the
// `truncate_wal == false` early return — so the crash-window path wrote a
// real durable image that never counted. They must bump on BOTH paths.
TEST(StorageRecovery, CheckpointMetricsRecordedOnBothTruncatePaths) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  TableStore store;
  RecoveryInfo ignore;
  ASSERT_TRUE(dm.Recover(&store, &ignore).ok());

  auto* reg = obs::MetricsRegistry::Default();
  obs::MetricsSnapshot before = reg->Snapshot();
  ASSERT_TRUE(dm.WriteCheckpoint(store, 2, /*truncate_wal=*/false).ok());
  obs::MetricsSnapshot mid = reg->Snapshot();
  EXPECT_EQ(mid.counter("storage.checkpoints") -
                before.counter("storage.checkpoints"),
            1u);
  EXPECT_GT(mid.counter("storage.checkpoint.bytes") -
                before.counter("storage.checkpoint.bytes"),
            0u);
  EXPECT_EQ(mid.histograms.at("storage.checkpoint.duration_us").count -
                (before.histograms.count("storage.checkpoint.duration_us")
                     ? before.histograms.at("storage.checkpoint.duration_us")
                           .count
                     : 0),
            1u);

  ASSERT_TRUE(dm.WriteCheckpoint(store, 2, /*truncate_wal=*/true).ok());
  obs::MetricsSnapshot after = reg->Snapshot();
  EXPECT_EQ(after.counter("storage.checkpoints") -
                mid.counter("storage.checkpoints"),
            1u);
  EXPECT_GT(after.counter("storage.checkpoint.bytes") -
                mid.counter("storage.checkpoint.bytes"),
            0u);
}

// Regression (lazy tail amputation): a clean unforced tail — the expected
// residue of an append cut by the crash — must NOT trigger the eager
// whole-log rewrite (storage.recovery.wal_tail_repaired) at recovery time.
// The stale bytes stay on disk until the next append, which amputates them
// first so new frames never land behind garbage.
TEST(StorageRecovery, CleanUnforcedTailIsAmputatedLazilyNotRepaired) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  WalWriter writer(&disk, dm.wal_file());
  ASSERT_TRUE(writer.AppendCommitNoSync(InsertCommit(2, 1, 1, 1)).ok());
  disk.CrashWithPartialFlush(0.5);  // half a frame survives: clean tear

  obs::MetricsSnapshot before = obs::MetricsRegistry::Default()->Snapshot();
  uint64_t file_bytes = disk.ReadDurable(dm.wal_file())->size();
  TableStore store;
  RecoveryInfo info;
  ASSERT_TRUE(dm.Recover(&store, &info).ok());
  ASSERT_TRUE(info.wal_scan.tear_detected);
  ASSERT_GT(info.wal_scan.bytes_unforced_tail, 0u);
  ASSERT_EQ(info.wal_scan.bytes_corrupt, 0u);
  obs::MetricsSnapshot mid = obs::MetricsRegistry::Default()->Snapshot();
  EXPECT_EQ(mid.counter("storage.recovery.wal_tail_repaired") -
                before.counter("storage.recovery.wal_tail_repaired"),
            0u)
      << "clean unforced tail triggered the eager rewrite";
  // Recovery itself left the log untouched: the stale bytes are still there.
  EXPECT_EQ(disk.ReadDurable(dm.wal_file())->size(), file_bytes);

  // The next append amputates the tail first, so the commit is recoverable.
  ASSERT_TRUE(dm.LogCommit(InsertCommit(2, 1, 10, 100)).ok());
  obs::MetricsSnapshot after = obs::MetricsRegistry::Default()->Snapshot();
  EXPECT_EQ(after.counter("storage.wal.stale_tail_amputations") -
                mid.counter("storage.wal.stale_tail_amputations"),
            1u);
  TableStore again;
  RecoveryInfo info2;
  ASSERT_TRUE(dm.Recover(&again, &info2).ok());
  EXPECT_FALSE(info2.wal_scan.tear_detected);
  EXPECT_EQ(info2.records_replayed, 2u);
  ASSERT_NE(again.Get("T"), nullptr);
  EXPECT_EQ((*again.Get("T")->Find(1))[1].AsInt64(), 100);
}

// The counterpart: a CRC-corrupt tail (a complete frame whose payload was
// damaged) is real corruption and still takes the eager rewrite path,
// bumping storage.recovery.wal_tail_repaired.
TEST(StorageRecovery, CorruptTailStillTakesEagerRepair) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  ASSERT_TRUE(dm.LogCommit(InsertCommit(2, 1, 10, 100)).ok());
  // Damage the last frame's payload in place: complete frame, CRC mismatch.
  std::string bytes = disk.ReadDurable(dm.wal_file()).take();
  bytes.back() = static_cast<char>(bytes.back() ^ 0xFF);
  ASSERT_TRUE(disk.WriteAtomic(dm.wal_file(), bytes).ok());

  obs::MetricsSnapshot before = obs::MetricsRegistry::Default()->Snapshot();
  TableStore store;
  RecoveryInfo info;
  ASSERT_TRUE(dm.Recover(&store, &info).ok());
  ASSERT_TRUE(info.wal_scan.tear_detected);
  ASSERT_GT(info.wal_scan.bytes_corrupt, 0u);
  obs::MetricsSnapshot after = obs::MetricsRegistry::Default()->Snapshot();
  EXPECT_EQ(after.counter("storage.recovery.wal_tail_repaired") -
                before.counter("storage.recovery.wal_tail_repaired"),
            1u);
  // The rewrite happened now: only the valid prefix remains on disk.
  EXPECT_EQ(disk.ReadDurable(dm.wal_file())->size(),
            info.wal_scan.bytes_valid);
  EXPECT_EQ(info.records_replayed, 1u);  // the damaged insert is gone
}

TEST(StorageRecovery, ApplyWalOpErrorsOnMissingTable) {
  TableStore store;
  EXPECT_FALSE(ApplyWalOp(WalOp::Insert("NOPE", 1, Row{}), &store).ok());
  EXPECT_FALSE(ApplyWalOp(WalOp::Delete("NOPE", 1), &store).ok());
  EXPECT_FALSE(ApplyWalOp(WalOp::Update("NOPE", 1, Row{}), &store).ok());
}

TEST(StorageRecovery, RecoveryIsRepeatable) {
  SimDisk disk;
  DurabilityManager dm(&disk, "db");
  ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
  ASSERT_TRUE(dm.LogCommit(InsertCommit(2, 1, 10, 100)).ok());
  for (int round = 0; round < 3; ++round) {
    TableStore store;
    RecoveryInfo info;
    ASSERT_TRUE(dm.Recover(&store, &info).ok());
    ASSERT_EQ(store.Get("T")->num_rows(), 1u);
  }
}

// Property: commit K transactions, crash with a random partial flush of the
// un-synced tail, recover — the recovered state equals the state produced by
// some prefix of the synced commits (prefix soundness), and all fully synced
// commits are present (durability).
TEST(StorageRecovery, CrashPrefixProperty) {
  Rng rng(555);
  for (int trial = 0; trial < 40; ++trial) {
    SimDisk disk;
    DurabilityManager dm(&disk, "db");
    ASSERT_TRUE(dm.LogCommit(CreateTableCommit(1)).ok());
    const int synced = 1 + static_cast<int>(rng.NextBelow(5));
    const int unsynced = static_cast<int>(rng.NextBelow(5));
    uint64_t txn = 2;
    RowId rid = 1;
    for (int i = 0; i < synced; ++i) {
      ASSERT_TRUE(dm.LogCommit(InsertCommit(txn++, rid, rid, rid)).ok());
      ++rid;
    }
    WalWriter writer(&disk, dm.wal_file());
    for (int i = 0; i < unsynced; ++i) {
      ASSERT_TRUE(writer.AppendCommitNoSync(InsertCommit(txn++, rid, rid, rid))
                      .ok());
      ++rid;
    }
    disk.CrashWithPartialFlush(rng.NextDouble());

    TableStore store;
    RecoveryInfo info;
    ASSERT_TRUE(dm.Recover(&store, &info).ok());
    Table* t = store.Get("T");
    ASSERT_NE(t, nullptr);
    // Durability: all synced inserts survive.
    ASSERT_GE(t->num_rows(), static_cast<size_t>(synced));
    // Prefix soundness: rows are exactly 1..num_rows with no holes.
    size_t n = t->num_rows();
    for (RowId r = 1; r <= n; ++r) {
      ASSERT_NE(t->Find(r), nullptr) << "hole at rid " << r;
    }
  }
}

}  // namespace
}  // namespace phoenix::storage
