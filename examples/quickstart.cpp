// Quickstart: the smallest complete Phoenix/ODBC program.
//
// It stands up an in-process database server, connects through the
// Phoenix-enhanced driver manager, runs a query — and kills the server in
// the middle of fetching the result. The application code below contains
// no error handling for the crash whatsoever: Phoenix recovers the session
// and the fetch loop simply keeps going. Flip `kUsePhoenix` to false to
// watch the same program die with a communication error.

#include <cstdio>
#include <memory>

#include "core/phoenix_driver_manager.h"
#include "net/channel.h"
#include "net/db_server.h"
#include "odbc/odbc_api.h"
#include "storage/sim_disk.h"

namespace {

constexpr bool kUsePhoenix = true;

using phoenix::Value;
using phoenix::core::PhoenixConfig;
using phoenix::core::PhoenixDriverManager;
using phoenix::odbc::DriverManager;
using phoenix::odbc::Hdbc;
using phoenix::odbc::Henv;
using phoenix::odbc::Hstmt;
using phoenix::odbc::SqlReturn;

void Die(const char* what, const phoenix::Status& status) {
  std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  // ---- "Machine room": a database server on a durable disk ---------------
  phoenix::storage::SimDisk disk;
  phoenix::net::DbServer server(&disk);
  if (auto st = server.Start(); !st.ok()) Die("server start", st);
  phoenix::net::Network network;
  network.RegisterServer("demo", &server);

  // ---- Driver manager: Phoenix or plain ----------------------------------
  PhoenixConfig config;
  // In a real deployment the operator restarts the server; here the retry
  // loop brings it back after a couple of reconnect attempts.
  config.retry_wait = [&server] {
    if (!server.alive()) (void)server.Restart();
  };
  std::unique_ptr<DriverManager> dm;
  if (kUsePhoenix) {
    dm = std::make_unique<PhoenixDriverManager>(&network, config);
  } else {
    dm = std::make_unique<DriverManager>(&network);
  }

  // ---- The application: plain SQL/CLI calls, no failure logic ------------
  Henv* env = nullptr;
  Hdbc* dbc = nullptr;
  Hstmt* stmt = nullptr;
  SqlAllocEnv(dm.get(), &env);
  SqlAllocConnect(dm.get(), env, &dbc);
  if (!Succeeded(SqlConnect(dm.get(), dbc, "demo", "quickstart"))) {
    Die("connect", DriverManager::Diag(dbc));
  }
  SqlAllocStmt(dm.get(), dbc, &stmt);
  // Small fetch blocks so the crash below lands between server round trips
  // (with the default block size the whole result would already be client-
  // side and the crash would be invisible for the boring reason).
  SqlSetStmtAttr(dm.get(), stmt, phoenix::odbc::StmtAttr::kBlockSize, 2);

  SqlExecDirect(dm.get(), stmt,
                "CREATE TABLE GREETINGS (ID INTEGER PRIMARY KEY, "
                "MESSAGE VARCHAR)");
  SqlExecDirect(dm.get(), stmt,
                "INSERT INTO GREETINGS VALUES "
                "(1, 'hello'), (2, 'from'), (3, 'a'), (4, 'persistent'), "
                "(5, 'database'), (6, 'session')");

  if (!Succeeded(SqlExecDirect(
          dm.get(), stmt, "SELECT ID, MESSAGE FROM GREETINGS ORDER BY ID"))) {
    Die("query", DriverManager::Diag(stmt));
  }

  std::printf("fetching result rows:\n");
  int fetched = 0;
  while (true) {
    SqlReturn r = SqlFetch(dm.get(), stmt);
    if (r == SqlReturn::kNoData) break;
    if (!Succeeded(r)) Die("fetch", DriverManager::Diag(stmt));
    Value id, msg;
    SqlGetData(dm.get(), stmt, 0, &id);
    SqlGetData(dm.get(), stmt, 1, &msg);
    std::printf("  row %lld: %s\n", static_cast<long long>(id.AsInt64()),
                msg.AsString().c_str());
    if (++fetched == 3) {
      std::printf("  *** killing the database server mid-result ***\n");
      server.Crash();
    }
  }
  std::printf("fetched %d rows total — no crash was visible above.\n",
              fetched);

  SqlFreeStmt(dm.get(), stmt);
  SqlDisconnect(dm.get(), dbc);
  SqlFreeConnect(dm.get(), dbc);
  SqlFreeEnv(dm.get(), env);

  if (kUsePhoenix) {
    auto* phx = static_cast<PhoenixDriverManager*>(dm.get());
    std::printf("phoenix stats: %llu recovery(ies), %llu result set(s) "
                "materialized\n",
                static_cast<unsigned long long>(phx->stats().recoveries),
                static_cast<unsigned long long>(
                    phx->stats().materialized_results));
  }
  return 0;
}
