// The paper's §2 illustrative ODBC client-server session (Figure 1), run
// end-to-end with a server crash injected between steps — the exact
// scenario the Phoenix design walks through:
//
//   1. open a connection and set connection attributes
//   2. result set over the CUSTOMER table for last name 'Smith'
//   3. fetch until the right customer is found
//   4. open a cursor on the ORDERS table for that customer
//   5. fetch all matching order detail records      <-- server dies here
//   6. aggregate the order totals
//   7. update the INVOICES summary table
//   8. close the connection
//
// Under Phoenix the crash is invisible: step 5 merely takes longer.

#include <cstdio>

#include "core/phoenix_driver_manager.h"
#include "net/channel.h"
#include "net/db_server.h"
#include "storage/sim_disk.h"

namespace {

using phoenix::Value;
using phoenix::core::PhoenixConfig;
using phoenix::core::PhoenixDriverManager;
using phoenix::odbc::CursorMode;
using phoenix::odbc::DriverManager;
using phoenix::odbc::Hdbc;
using phoenix::odbc::Hstmt;
using phoenix::odbc::SqlReturn;
using phoenix::odbc::StmtAttr;

void Must(bool ok, const char* what, const phoenix::Status& diag) {
  if (!ok) {
    std::fprintf(stderr, "%s: %s\n", what, diag.ToString().c_str());
    std::exit(1);
  }
}

void Exec(DriverManager* dm, Hdbc* dbc, const std::string& sql) {
  Hstmt* stmt = dm->AllocStmt(dbc);
  Must(Succeeded(dm->ExecDirect(stmt, sql)), sql.c_str(),
       DriverManager::Diag(stmt));
  dm->FreeStmt(stmt);
}

}  // namespace

int main() {
  phoenix::storage::SimDisk disk;
  phoenix::net::DbServer server(&disk);
  (void)server.Start();
  phoenix::net::Network network;
  network.RegisterServer("orders-db", &server);

  PhoenixConfig config;
  config.retry_wait = [&server] {
    if (!server.alive()) (void)server.Restart();
  };
  PhoenixDriverManager dm(&network, config);

  // Load the master/detail/summary schema of the paper's Figure 1.
  {
    Hdbc* loader = dm.AllocConnect(dm.AllocEnv());
    Must(Succeeded(dm.Connect(loader, "orders-db", "loader")), "connect",
         DriverManager::Diag(loader));
    Exec(&dm, loader,
         "CREATE TABLE CUSTOMER (ID INTEGER PRIMARY KEY, FIRSTNAME VARCHAR,"
         " LASTNAME VARCHAR, CITY VARCHAR)");
    Exec(&dm, loader,
         "CREATE TABLE ORDERS (OID INTEGER PRIMARY KEY, CUST_ID INTEGER,"
         " ITEM VARCHAR, AMOUNT DOUBLE)");
    Exec(&dm, loader,
         "CREATE TABLE INVOICE (CUST_ID INTEGER PRIMARY KEY, TOTAL DOUBLE)");
    Exec(&dm, loader,
         "INSERT INTO CUSTOMER VALUES"
         " (1, 'Alice', 'Smith', 'Redmond'), (2, 'Bob', 'Jones', 'Seattle'),"
         " (3, 'Carol', 'Smith', 'Tacoma'), (4, 'Dave', 'Brown', 'Olympia')");
    Exec(&dm, loader,
         "INSERT INTO ORDERS VALUES"
         " (100, 1, 'widget', 19.99), (101, 1, 'flange', 45.50),"
         " (102, 2, 'gasket', 12.00), (103, 1, 'washer', 3.25),"
         " (104, 3, 'widget', 19.99)");
    dm.Disconnect(loader);
  }

  // --- Step 1: the application opens its session --------------------------
  Hdbc* dbc = dm.AllocConnect(dm.AllocEnv());
  Must(Succeeded(dm.Connect(dbc, "orders-db", "clerk")), "connect",
       DriverManager::Diag(dbc));
  dm.SetConnectOption(dbc, "APP_NAME", "invoice-builder");

  // --- Steps 2-3: find customer Smith in Redmond --------------------------
  Hstmt* cust = dm.AllocStmt(dbc);
  Must(Succeeded(dm.ExecDirect(cust,
                               "SELECT ID, FIRSTNAME, CITY FROM CUSTOMER "
                               "WHERE LASTNAME = 'Smith' ORDER BY ID")),
       "customer query", DriverManager::Diag(cust));
  int64_t customer_id = -1;
  while (Succeeded(dm.Fetch(cust))) {
    Value id, first, city;
    dm.GetData(cust, 0, &id);
    dm.GetData(cust, 1, &first);
    dm.GetData(cust, 2, &city);
    std::printf("candidate: %s Smith (%s)\n", first.AsString().c_str(),
                city.AsString().c_str());
    if (city.AsString() == "Redmond") {
      customer_id = id.AsInt64();
      break;
    }
  }
  Must(customer_id >= 0, "customer not found", phoenix::Status());

  // --- Steps 4-5: cursor over the customer's orders; crash mid-fetch ------
  Hstmt* ord = dm.AllocStmt(dbc);
  dm.SetStmtAttr(ord, StmtAttr::kCursorMode,
                 static_cast<int64_t>(CursorMode::kKeysetCursor));
  Must(Succeeded(dm.ExecDirect(
           ord, "SELECT ITEM, AMOUNT FROM ORDERS WHERE CUST_ID = " +
                    std::to_string(customer_id))),
       "orders cursor", DriverManager::Diag(ord));

  double total = 0;
  int n = 0;
  while (true) {
    SqlReturn r = dm.Fetch(ord);
    if (r == SqlReturn::kNoData) break;
    Must(Succeeded(r), "order fetch", DriverManager::Diag(ord));
    Value item, amount;
    dm.GetData(ord, 0, &item);
    dm.GetData(ord, 1, &amount);
    std::printf("order: %-8s %8.2f\n", item.AsString().c_str(),
                amount.AsDouble());
    total += amount.AsDouble();
    if (++n == 1) {
      std::printf("*** database server crashes between fetches ***\n");
      server.Crash();
    }
  }

  // --- Steps 6-7: aggregate and write the invoice summary -----------------
  std::printf("aggregated total for customer %lld: %.2f\n",
              static_cast<long long>(customer_id), total);
  Exec(&dm, dbc,
       "INSERT INTO INVOICE VALUES (" + std::to_string(customer_id) + ", " +
           std::to_string(total) + ")");

  // --- Step 8: terminate the session ---------------------------------------
  dm.Disconnect(dbc);
  std::printf("session closed; recoveries: %llu\n",
              static_cast<unsigned long long>(dm.stats().recoveries));

  // Show the durable outcome from a fresh connection.
  Hdbc* check = dm.AllocConnect(dm.AllocEnv());
  Must(Succeeded(dm.Connect(check, "orders-db", "auditor")), "connect",
       DriverManager::Diag(check));
  Hstmt* inv = dm.AllocStmt(check);
  Must(Succeeded(dm.ExecDirect(inv, "SELECT CUST_ID, TOTAL FROM INVOICE")),
       "invoice check", DriverManager::Diag(inv));
  while (Succeeded(dm.Fetch(inv))) {
    Value id, t;
    dm.GetData(inv, 0, &id);
    dm.GetData(inv, 1, &t);
    std::printf("invoice on file: customer %lld total %.2f\n",
                static_cast<long long>(id.AsInt64()), t.AsDouble());
  }
  dm.Disconnect(check);
  return 0;
}
