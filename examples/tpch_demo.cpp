// TPC-H-lite demo: populates the warehouse, prints a few decision-support
// query results, runs the refresh functions, and shows Phoenix riding
// through a crash during the most expensive query — a compact tour of the
// workload the paper's evaluation is built on.

#include <cstdio>

#include "core/phoenix_driver_manager.h"
#include "net/channel.h"
#include "net/db_server.h"
#include "storage/sim_disk.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/refresh.h"

namespace {

using phoenix::Value;
using phoenix::core::PhoenixConfig;
using phoenix::core::PhoenixDriverManager;
using phoenix::odbc::DriverManager;
using phoenix::odbc::Hdbc;
using phoenix::odbc::Hstmt;
using phoenix::odbc::SqlReturn;

void Must(bool ok, const char* what, const phoenix::Status& diag) {
  if (!ok) {
    std::fprintf(stderr, "%s: %s\n", what, diag.ToString().c_str());
    std::exit(1);
  }
}

void ShowQuery(DriverManager* dm, Hdbc* dbc, const phoenix::tpch::QueryDef& q,
               size_t max_rows) {
  Hstmt* stmt = dm->AllocStmt(dbc);
  Must(Succeeded(dm->ExecDirect(stmt, q.sql)), q.id.c_str(),
       DriverManager::Diag(stmt));
  size_t cols = 0;
  dm->NumResultCols(stmt, &cols);
  std::printf("\n%s — %s\n", q.id.c_str(), q.description.c_str());
  for (size_t c = 0; c < cols; ++c) {
    phoenix::Column col;
    dm->DescribeCol(stmt, c, &col);
    std::printf("%-18s", col.name.c_str());
  }
  std::printf("\n");
  size_t shown = 0;
  size_t total = 0;
  while (Succeeded(dm->Fetch(stmt))) {
    ++total;
    if (shown < max_rows) {
      for (size_t c = 0; c < cols; ++c) {
        Value v;
        dm->GetData(stmt, c, &v);
        std::printf("%-18s", v.ToString().c_str());
      }
      std::printf("\n");
      ++shown;
    }
  }
  if (total > shown) {
    std::printf("... (%zu rows total)\n", total);
  }
  dm->FreeStmt(stmt);
}

}  // namespace

int main() {
  phoenix::storage::SimDisk disk;
  phoenix::net::DbServer server(&disk);
  (void)server.Start();
  phoenix::net::Network network;
  network.RegisterServer("tpch", &server);

  PhoenixConfig config;
  config.retry_wait = [&server] {
    if (!server.alive()) (void)server.Restart();
  };
  PhoenixDriverManager dm(&network, config);
  Hdbc* dbc = dm.AllocConnect(dm.AllocEnv());
  Must(Succeeded(dm.Connect(dbc, "tpch", "analyst")), "connect",
       DriverManager::Diag(dbc));

  phoenix::tpch::TpchScale scale;
  scale.sf = 2.0;
  std::printf("populating TPC-H-lite at sf=%.1f...\n", scale.sf);
  auto st = phoenix::tpch::Populate(&dm, dbc, scale);
  Must(st.ok(), "populate", st);
  for (const char* t : {"CUSTOMER", "ORDERS", "LINEITEM", "PART"}) {
    auto n = phoenix::tpch::CountRows(&dm, dbc, t);
    std::printf("  %-10s %8lld rows\n", t,
                static_cast<long long>(n.ok() ? *n : -1));
  }

  ShowQuery(&dm, dbc, phoenix::tpch::GetQuery("Q1"), 4);
  ShowQuery(&dm, dbc, phoenix::tpch::GetQuery("Q3"), 5);
  ShowQuery(&dm, dbc, phoenix::tpch::GetQuery("Q6"), 1);

  std::printf("\nrunning refresh functions RF1/RF2...\n");
  auto rf1 = phoenix::tpch::RunRF1(&dm, dbc, scale);
  Must(rf1.ok(), "RF1", rf1.status());
  std::printf("  RF1 inserted %lld rows\n", static_cast<long long>(*rf1));
  auto rf2 = phoenix::tpch::RunRF2(&dm, dbc, scale);
  Must(rf2.ok(), "RF2", rf2.status());
  std::printf("  RF2 deleted  %lld rows\n", static_cast<long long>(*rf2));

  // Crash the server in the middle of Q11's result delivery.
  std::printf("\nQ11 with a server crash mid-delivery:\n");
  const auto& q11 = phoenix::tpch::GetQuery("Q11");
  Hstmt* stmt = dm.AllocStmt(dbc);
  dm.SetStmtAttr(stmt, phoenix::odbc::StmtAttr::kBlockSize, 8);
  Must(Succeeded(dm.ExecDirect(stmt, q11.sql)), "Q11",
       DriverManager::Diag(stmt));
  int rows = 0;
  while (true) {
    SqlReturn r = dm.Fetch(stmt);
    if (r == SqlReturn::kNoData) break;
    Must(Succeeded(r), "Q11 fetch", DriverManager::Diag(stmt));
    if (++rows == 10) {
      std::printf("  (crashing the server after row 10...)\n");
      server.Crash();
    }
  }
  std::printf("  delivered all %d Q11 rows; recoveries: %llu\n", rows,
              static_cast<unsigned long long>(dm.stats().recoveries));

  dm.Disconnect(dbc);
  std::printf("\ndone.\n");
  return 0;
}
