// A long-running report writer hammered by repeated server crashes.
//
// The report walks a large result set, maintains client-side running
// aggregates, and periodically writes progress markers back to the
// database inside explicit transactions. A chaos loop kills the server
// every few hundred rows. The program's business logic contains no
// failure handling; at the end it verifies the report against a
// crash-free recomputation.

#include <cstdio>

#include "common/rng.h"
#include "core/phoenix_driver_manager.h"
#include "net/channel.h"
#include "net/db_server.h"
#include "storage/sim_disk.h"

namespace {

using phoenix::Rng;
using phoenix::Value;
using phoenix::core::PhoenixConfig;
using phoenix::core::PhoenixDriverManager;
using phoenix::odbc::DriverManager;
using phoenix::odbc::Hdbc;
using phoenix::odbc::Hstmt;
using phoenix::odbc::SqlReturn;
using phoenix::odbc::StmtAttr;

void Must(bool ok, const char* what, const phoenix::Status& diag) {
  if (!ok) {
    std::fprintf(stderr, "%s: %s\n", what, diag.ToString().c_str());
    std::exit(1);
  }
}

void Exec(DriverManager* dm, Hdbc* dbc, const std::string& sql) {
  Hstmt* stmt = dm->AllocStmt(dbc);
  Must(Succeeded(dm->ExecDirect(stmt, sql)), sql.c_str(),
       DriverManager::Diag(stmt));
  dm->FreeStmt(stmt);
}

constexpr int kSales = 5000;

}  // namespace

int main() {
  phoenix::storage::SimDisk disk;
  phoenix::net::DbServer server(&disk);
  (void)server.Start();
  phoenix::net::Network network;
  network.RegisterServer("warehouse", &server);

  PhoenixConfig config;
  config.retry_wait = [&server] {
    if (!server.alive()) (void)server.Restart();
  };
  PhoenixDriverManager dm(&network, config);

  // Load a sales fact table.
  Hdbc* loader = dm.AllocConnect(dm.AllocEnv());
  Must(Succeeded(dm.Connect(loader, "warehouse", "loader")), "connect",
       DriverManager::Diag(loader));
  Exec(&dm, loader,
       "CREATE TABLE SALES (ID INTEGER PRIMARY KEY, REGION VARCHAR, "
       "AMOUNT DOUBLE)");
  {
    Rng rng(2026);
    const char* regions[] = {"north", "south", "east", "west"};
    for (int base = 0; base < kSales; base += 500) {
      std::string sql = "INSERT INTO SALES VALUES ";
      for (int i = 1; i <= 500; ++i) {
        if (i > 1) sql += ", ";
        int id = base + i;
        sql += "(" + std::to_string(id) + ", '" +
               regions[rng.NextBelow(4)] + "', " +
               std::to_string(rng.NextRange(1, 1000)) + ".0)";
      }
      Exec(&dm, loader, sql);
    }
  }
  dm.Disconnect(loader);

  // The report writer session.
  Hdbc* dbc = dm.AllocConnect(dm.AllocEnv());
  Must(Succeeded(dm.Connect(dbc, "warehouse", "report-writer")), "connect",
       DriverManager::Diag(dbc));
  Exec(&dm, dbc,
       "CREATE TEMPORARY TABLE PROGRESS (ROWS_SEEN INTEGER, "
       "RUNNING_TOTAL DOUBLE)");

  Hstmt* scan = dm.AllocStmt(dbc);
  dm.SetStmtAttr(scan, StmtAttr::kBlockSize, 100);
  Must(Succeeded(dm.ExecDirect(
           scan, "SELECT ID, REGION, AMOUNT FROM SALES ORDER BY ID")),
       "report scan", DriverManager::Diag(scan));

  Rng chaos(7);
  double running_total = 0;
  int rows_seen = 0;
  int crashes = 0;
  int next_crash = 200 + static_cast<int>(chaos.NextBelow(300));
  while (true) {
    SqlReturn r = dm.Fetch(scan);
    if (r == SqlReturn::kNoData) break;
    Must(Succeeded(r), "fetch", DriverManager::Diag(scan));
    Value amount;
    dm.GetData(scan, 2, &amount);
    running_total += amount.AsDouble();
    ++rows_seen;

    if (rows_seen % 1000 == 0) {
      // Progress marker in an explicit transaction (replayed if a crash
      // interrupts it).
      Exec(&dm, dbc, "BEGIN TRANSACTION");
      Exec(&dm, dbc, "DELETE FROM PROGRESS");
      Exec(&dm, dbc,
           "INSERT INTO PROGRESS VALUES (" + std::to_string(rows_seen) +
               ", " + std::to_string(running_total) + ")");
      Exec(&dm, dbc, "COMMIT");
      std::printf("progress: %5d rows, running total %12.1f\n", rows_seen,
                  running_total);
    }
    if (rows_seen == next_crash) {
      ++crashes;
      server.Crash();
      next_crash += 300 + static_cast<int>(chaos.NextBelow(500));
    }
  }
  dm.FreeStmt(scan);

  // Verify against a crash-free recomputation on a fresh connection.
  Hstmt* check = dm.AllocStmt(dbc);
  Must(Succeeded(dm.ExecDirect(
           check, "SELECT COUNT(*) AS N, SUM(AMOUNT) AS S FROM SALES")),
       "verify", DriverManager::Diag(check));
  Must(Succeeded(dm.Fetch(check)), "verify fetch",
       DriverManager::Diag(check));
  Value n, s;
  dm.GetData(check, 0, &n);
  dm.GetData(check, 1, &s);

  std::printf("\nreport complete: %d rows, total %.1f\n", rows_seen,
              running_total);
  std::printf("database says:   %lld rows, total %.1f\n",
              static_cast<long long>(n.AsInt64()), s.AsDouble());
  std::printf("crashes injected: %d, recoveries performed: %llu\n", crashes,
              static_cast<unsigned long long>(dm.stats().recoveries));
  bool ok = n.AsInt64() == rows_seen && s.AsDouble() == running_total;
  std::printf("verification: %s\n", ok ? "EXACT MATCH" : "MISMATCH");
  dm.Disconnect(dbc);
  return ok ? 0 : 1;
}
