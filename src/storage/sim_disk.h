#ifndef PHOENIX_STORAGE_SIM_DISK_H_
#define PHOENIX_STORAGE_SIM_DISK_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace phoenix::storage {

/// Simulated stable storage with explicit durability semantics.
///
/// Every write lands in a volatile tail (the "OS page cache" of the server
/// process) and only becomes durable at Sync(). Crash() models the server
/// process dying: all volatile tails vanish, durable bytes survive. This is
/// the substrate against which the paper's claim — that session state
/// materialized into ordinary tables is recovered "for free" by the database
/// recovery mechanism — is actually tested.
///
/// The object itself outlives server crashes (it *is* the disk); a restarted
/// server re-attaches to the same SimDisk.
///
/// Thread-safe: each operation is atomic under an internal mutex, like a
/// kernel block layer. (Ordering across operations is the caller's problem,
/// exactly as with a real disk.)
class SimDisk {
 public:
  SimDisk() = default;
  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  /// Appends bytes to the volatile tail of `file` (created if absent).
  Status Append(const std::string& file, const std::string& data);

  /// Makes all buffered bytes of `file` durable (fsync analogue).
  Status Sync(const std::string& file);

  /// Atomically replaces the full durable content of `file`
  /// (write-temp + rename + fsync analogue). Used for checkpoints.
  Status WriteAtomic(const std::string& file, const std::string& data);

  /// Reads the *current process view*: durable prefix + volatile tail.
  Result<std::string> Read(const std::string& file) const;

  /// Reads only the durable bytes (what a post-crash process would see).
  Result<std::string> ReadDurable(const std::string& file) const;

  bool Exists(const std::string& file) const;
  Status Delete(const std::string& file);
  std::vector<std::string> List() const;

  /// Server process death: every volatile tail is discarded.
  void Crash();

  /// Crash where a prefix of each volatile tail had already been flushed by
  /// the OS — produces torn WAL records, which recovery must tolerate.
  /// `keep_fraction` in [0,1] selects how much of each tail survives.
  void CrashWithPartialFlush(double keep_fraction);

  /// Parameters for CrashTorn(): the adversarial crash mode.
  struct TornCrashSpec {
    /// Seeds the per-file keep decisions and corruption sites, so a chaos
    /// schedule is fully reproducible from its seed.
    uint64_t seed = 1;
    /// Probability that the flushed part of a file's tail additionally has
    /// one byte corrupted (a half-written sector), not merely truncated.
    double corrupt_prob = 0.5;
  };

  /// The nastiest crash the fault model allows: every file's volatile tail
  /// is independently truncated at BYTE granularity (not a shared fraction —
  /// the OS flushes files at different rates), and with `corrupt_prob` a
  /// byte of the surviving flushed region is flipped. Bytes made durable by
  /// an earlier Sync()/WriteAtomic() are never touched: fsynced data is
  /// safe; only the unsynced tail tears.
  void CrashTorn(const TornCrashSpec& spec);

  /// Cumulative bytes appended (volatile) since construction.
  uint64_t bytes_written() const;
  /// Number of Sync()/WriteAtomic() durability points.
  uint64_t sync_count() const;

  /// Makes the next `n` Sync() calls fail with IoError, leaving the tail
  /// volatile — models a device that rejects the flush (battery-backed
  /// cache gone read-only, thin-provisioned volume out of space). The data
  /// is NOT durable after a failed sync; a crash still discards it.
  void InjectSyncFailures(int n);

  /// Service time charged to every successful Sync(), slept *outside* the
  /// disk mutex so concurrent appends proceed during the flush — the fsync
  /// cost model that makes group-commit batching measurable in benches.
  void set_sync_latency_us(uint64_t us);

 private:
  struct FileState {
    std::string durable;
    std::string tail;
  };
  mutable std::mutex mu_;
  std::map<std::string, FileState> files_;
  uint64_t bytes_written_ = 0;
  uint64_t sync_count_ = 0;
  int fail_syncs_ = 0;
  uint64_t sync_latency_us_ = 0;
};

}  // namespace phoenix::storage

#endif  // PHOENIX_STORAGE_SIM_DISK_H_
