#ifndef PHOENIX_STORAGE_SIM_DISK_H_
#define PHOENIX_STORAGE_SIM_DISK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace phoenix::storage {

/// Test/chaos instrumentation of the durability boundary. phoenixd uses
/// these to realize "SIGKILL mid-fsync": the hook signals the parent over a
/// pipe and blocks inside the sync, the parent kills the child, and the
/// bytes that had (or had not) reached the backing file ARE the post-crash
/// disk state — no simulation involved. All hooks default to empty; they
/// run OUTSIDE the disk mutex (they may block forever).
struct DiskHooks {
  /// Before Sync() writes `file`'s volatile tail to the device: returns how
  /// many tail bytes actually reach it. Returning less than `tail_bytes`
  /// models a torn write — Sync() persists only the prefix and reports
  /// IoError (the remainder stays volatile, like any failed flush).
  /// `sync_ordinal` counts this file's Sync() calls from 1.
  std::function<size_t(const std::string& file, uint64_t sync_ordinal,
                       size_t tail_bytes)>
      pre_sync;
  /// After the (possibly torn) bytes hit the device, before Sync() returns
  /// and before anything is accounted durable in-process: the mid-fsync
  /// kill window.
  std::function<void(const std::string& file, uint64_t sync_ordinal)> mid_sync;
  /// Around WriteAtomic()'s rename. stage 0: the temp file is written and
  /// fsynced but not yet visible under `file` (a kill here loses the whole
  /// atomic write). stage 1: the rename is durable (a kill here keeps the
  /// new image — e.g. checkpoint durable, WAL truncation never happened).
  std::function<void(const std::string& file, int stage)> mid_atomic;
};

/// Simulated stable storage with explicit durability semantics.
///
/// Every write lands in a volatile tail (the "OS page cache" of the server
/// process) and only becomes durable at Sync(). Crash() models the server
/// process dying: all volatile tails vanish, durable bytes survive. This is
/// the substrate against which the paper's claim — that session state
/// materialized into ordinary tables is recovered "for free" by the database
/// recovery mechanism — is actually tested.
///
/// The object itself outlives server crashes (it *is* the disk); a restarted
/// server re-attaches to the same SimDisk.
///
/// Backing-directory mode (the out-of-process story): constructed with a
/// directory path, the disk additionally mirrors every DURABLE byte into a
/// real file under that directory — Sync() appends the tail and fsyncs,
/// WriteAtomic() goes write-temp + rename + fsync — while the volatile tail
/// lives only in process memory. A SIGKILL therefore discards exactly the
/// unsynced bytes, with no cooperation from the dying process: the kernel
/// cannot keep what was never written. A new SimDisk over the same
/// directory (the reborn phoenixd) loads the surviving files as its durable
/// state.
///
/// Thread-safe: each operation is atomic under an internal mutex, like a
/// kernel block layer. (Ordering across operations is the caller's problem,
/// exactly as with a real disk. In backing mode, concurrent Sync()s of the
/// SAME file are additionally the caller's problem — the WAL writer already
/// serializes them.)
class SimDisk {
 public:
  SimDisk() = default;
  /// Backing-directory mode: existing regular files under `backing_dir`
  /// (except "*.phxtmp" leftovers of an interrupted WriteAtomic) are loaded
  /// as durable content. The directory must exist.
  explicit SimDisk(const std::string& backing_dir);
  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  /// Appends bytes to the volatile tail of `file` (created if absent).
  Status Append(const std::string& file, const std::string& data);

  /// Makes all buffered bytes of `file` durable (fsync analogue).
  Status Sync(const std::string& file);

  /// Atomically replaces the full durable content of `file`
  /// (write-temp + rename + fsync analogue). Used for checkpoints.
  Status WriteAtomic(const std::string& file, const std::string& data);

  /// Reads the *current process view*: durable prefix + volatile tail.
  Result<std::string> Read(const std::string& file) const;

  /// Reads only the durable bytes (what a post-crash process would see).
  Result<std::string> ReadDurable(const std::string& file) const;

  bool Exists(const std::string& file) const;
  Status Delete(const std::string& file);
  std::vector<std::string> List() const;

  /// Server process death: every volatile tail is discarded.
  void Crash();

  /// Crash where a prefix of each volatile tail had already been flushed by
  /// the OS — produces torn WAL records, which recovery must tolerate.
  /// `keep_fraction` in [0,1] selects how much of each tail survives.
  void CrashWithPartialFlush(double keep_fraction);

  /// Parameters for CrashTorn(): the adversarial crash mode.
  struct TornCrashSpec {
    /// Seeds the per-file keep decisions and corruption sites, so a chaos
    /// schedule is fully reproducible from its seed.
    uint64_t seed = 1;
    /// Probability that the flushed part of a file's tail additionally has
    /// one byte corrupted (a half-written sector), not merely truncated.
    double corrupt_prob = 0.5;
  };

  /// The nastiest crash the fault model allows: every file's volatile tail
  /// is independently truncated at BYTE granularity (not a shared fraction —
  /// the OS flushes files at different rates), and with `corrupt_prob` a
  /// byte of the surviving flushed region is flipped. Bytes made durable by
  /// an earlier Sync()/WriteAtomic() are never touched: fsynced data is
  /// safe; only the unsynced tail tears.
  void CrashTorn(const TornCrashSpec& spec);

  /// Cumulative bytes appended (volatile) since construction.
  uint64_t bytes_written() const;
  /// Number of Sync()/WriteAtomic() durability points.
  uint64_t sync_count() const;
  /// Number of Read()/ReadDurable() calls. Tests use the delta to pin an
  /// I/O budget — e.g. that recovery's scan + torn-tail repair cost exactly
  /// one read of the WAL, not one per pass.
  uint64_t read_count() const;

  /// Makes the next `n` Sync() calls fail with IoError, leaving the tail
  /// volatile — models a device that rejects the flush (battery-backed
  /// cache gone read-only, thin-provisioned volume out of space). The data
  /// is NOT durable after a failed sync; a crash still discards it.
  void InjectSyncFailures(int n);

  /// Service time charged to every successful Sync(), slept *outside* the
  /// disk mutex so concurrent appends proceed during the flush — the fsync
  /// cost model that makes group-commit batching measurable in benches.
  void set_sync_latency_us(uint64_t us);

  /// Installs (or clears) the durability-boundary instrumentation. Install
  /// before serving traffic; hooks run outside the disk mutex.
  void set_hooks(DiskHooks hooks);

  const std::string& backing_dir() const { return backing_dir_; }

 private:
  struct FileState {
    std::string durable;
    std::string tail;
  };

  std::string BackingPath(const std::string& file) const;
  /// Appends `data` to the backing file and fsyncs. No-op without backing.
  Status PersistAppend(const std::string& file, const std::string& data);
  /// write-temp + fsync + rename + fsync-dir, with the mid_atomic hook
  /// firing between the two stages. No-op (hook still fires) w/o backing.
  Status PersistReplace(const std::string& file, const std::string& data,
                        const std::function<void(const std::string&, int)>& mid);
  void PersistUnlink(const std::string& file);

  mutable std::mutex mu_;
  std::string backing_dir_;
  std::map<std::string, FileState> files_;
  std::map<std::string, uint64_t> sync_ordinals_;
  DiskHooks hooks_;
  uint64_t bytes_written_ = 0;
  uint64_t sync_count_ = 0;
  mutable uint64_t read_count_ = 0;  ///< Read/ReadDurable calls (under mu_)
  int fail_syncs_ = 0;
  uint64_t sync_latency_us_ = 0;
};

}  // namespace phoenix::storage

#endif  // PHOENIX_STORAGE_SIM_DISK_H_
