#ifndef PHOENIX_STORAGE_RECOVERY_H_
#define PHOENIX_STORAGE_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "storage/sim_disk.h"
#include "storage/table_store.h"
#include "storage/wal.h"

namespace phoenix::storage {

/// What Recover() found on disk — exposed so tests and the server can assert
/// on the recovery path taken.
struct RecoveryInfo {
  bool had_checkpoint = false;
  uint64_t records_replayed = 0;
  uint64_t ops_replayed = 0;
  /// WAL records subsumed by the checkpoint image — skipped, not replayed.
  /// v2 checkpoints fence on LSN (lsn <= fence_lsn); v1 images predate LSNs
  /// and fence on txn_id < next_txn_id, which was exact only because v1
  /// checkpoints quiesced. Nonzero exactly when the crash landed between
  /// the checkpoint write and the WAL truncation.
  uint64_t records_skipped = 0;
  /// The v2 checkpoint fence (0 for v1 images or no checkpoint): every WAL
  /// record with lsn <= fence_lsn was already applied to the image.
  uint64_t fence_lsn = 0;
  /// The WAL scan's torn-tail accounting (see WalScanStats).
  WalScanStats wal_scan;
  uint64_t next_txn_id = 1;
  /// How replay ran (DESIGN.md §15). replay_threads is the effective worker
  /// count (1 = the serial streaming path). partitions_replayed counts
  /// per-table op batches handed to the pool; ddl_barriers counts the
  /// serial CREATE/DROP TABLE sync points that fenced them. All three are
  /// mode descriptors, not log properties — the equivalence contract is
  /// that every OTHER field of this struct and the resulting TableStore
  /// are byte-identical whatever replay_threads was.
  uint64_t replay_threads = 1;
  uint64_t partitions_replayed = 0;
  uint64_t ddl_barriers = 0;
};

/// Applies one redo op to the store. Replay is idempotent in the sense that
/// a whole committed record either was fully reflected in the checkpoint or
/// not at all, so ops are applied blindly and any mismatch is an error.
Status ApplyWalOp(const WalOp& op, TableStore* store);

/// Same, against an already-resolved table — the partitioned-replay fast
/// path: a partition batch is all one table, so the name lookup hoists out
/// of the loop. Table DDL (create/drop table) is a store operation and is
/// rejected here.
Status ApplyWalOpToTable(Table* t, const WalOp& op);

/// Owns the durability protocol: redo-only WAL + atomic full checkpoints.
///
/// Write path:  LogCommit(record) — forced append (write-ahead rule), after
///              which the in-memory TableStore mutation is allowed to be
///              considered durable.
/// Checkpoint:  snapshot of all persistent tables + next txn id, written
///              atomically, then the WAL is truncated.
/// Recovery:    load checkpoint (if any), then redo every complete,
///              checksum-valid WAL record.
class DurabilityManager {
 public:
  /// Files used: "<prefix>.wal" and "<prefix>.ckpt" on `disk`.
  DurabilityManager(SimDisk* disk, std::string prefix,
                    WalWriterConfig wal_config = {});

  Status LogCommit(const WalCommitRecord& record);

  /// Group-commit split of LogCommit: EnqueueCommit never blocks on the
  /// device (safe under engine locks); WaitCommit blocks until the record's
  /// batch is forced and returns the real sync status (early lock release).
  WalCommitTicket EnqueueCommit(const WalCommitRecord& record);
  Status WaitCommit(WalCommitTicket* ticket);

  /// Writes the checkpoint image atomically, then truncates the WAL up to
  /// the current last-assigned LSN. With `truncate_wal = false` the
  /// truncation is skipped — that is the durable state a crash in the
  /// window between the two steps leaves behind, and fault tests use it to
  /// prove Recover() tolerates the window (it must skip the stale records
  /// rather than double-apply them).
  Status WriteCheckpoint(const TableStore& store, uint64_t next_txn_id,
                         bool truncate_wal = true);

  /// The two halves of WriteCheckpoint, split so the engine's background
  /// checkpointer can run them against a snapshot clone while live commits
  /// proceed. `store` must be a consistent image as of `fence_lsn`: the
  /// image claims to subsume exactly the WAL records with lsn <= fence_lsn,
  /// and recovery will skip those unconditionally. Metrics
  /// (storage.checkpoints / .bytes / .duration_us) are recorded here — on
  /// every image write, whether or not a truncation follows.
  Status WriteCheckpointImage(const TableStore& store, uint64_t next_txn_id,
                              uint64_t fence_lsn);
  /// Amputates the fenced WAL prefix (WalWriter::TruncateUpTo): records
  /// past the fence — commits that raced the checkpoint — survive.
  Status TruncateWalToFence(uint64_t fence_lsn);

  /// Rebuilds `store` from durable state. The store is cleared first, and
  /// cleared AGAIN on every error path — a failed recovery never leaves a
  /// half-replayed store behind for a caller that retries or degrades.
  ///
  /// Replay is a single streaming scan over the WAL (records are never
  /// materialized as a whole). With recovery_threads == 1 each record's ops
  /// apply inline during the scan; with more threads the scan classifies
  /// DML ops into per-table partitions replayed on a worker pool, with
  /// CREATE/DROP TABLE acting as serial barriers (DESIGN.md §15). Both
  /// modes produce an identical store and identical RecoveryInfo counters.
  Status Recover(TableStore* store, RecoveryInfo* info);

  /// Worker threads for partitioned WAL replay (PHX_RECOVERY_THREADS).
  /// 1 (default) = serial streaming replay; clamped to at least 1. Takes
  /// effect on the next Recover() call.
  void set_recovery_threads(uint64_t n) { recovery_threads_ = n < 1 ? 1 : n; }
  uint64_t recovery_threads() const { return recovery_threads_; }

  /// Observation hook for replay progress, called with a 1-based running
  /// event count: once per replayed record from the scan thread, and (in
  /// parallel mode) periodically from the pool workers while a partition
  /// applies. phoenixd taps this for the "recovery" SIGKILL rendezvous
  /// point; the hook may be invoked concurrently and must be thread-safe.
  void set_replay_hook(std::function<void(uint64_t)> hook) {
    replay_hook_ = std::move(hook);
  }

  SimDisk* disk() { return disk_; }
  const std::string& wal_file() const { return wal_file_; }
  const std::string& ckpt_file() const { return ckpt_file_; }
  WalWriter* wal_writer() { return &wal_writer_; }

 private:
  /// Recover() minus the error-path Clear() wrapper.
  Status RecoverImpl(TableStore* store, RecoveryInfo* local);
  /// Loads the checkpoint image into `store` if one exists.
  Status LoadCheckpoint(TableStore* store, RecoveryInfo* local);

  SimDisk* disk_;
  std::string wal_file_;
  std::string ckpt_file_;
  WalWriter wal_writer_;
  uint64_t recovery_threads_ = 1;
  std::function<void(uint64_t)> replay_hook_;
};

}  // namespace phoenix::storage

#endif  // PHOENIX_STORAGE_RECOVERY_H_
