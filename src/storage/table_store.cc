#include "storage/table_store.h"

namespace phoenix::storage {

Result<RowId> Table::Insert(Row row, RowId rid_hint) {
  PHX_RETURN_IF_ERROR(schema_.CoerceRow(&row));
  Row pk = PkOf(row);
  if (!pk.empty() && pk_index_.count(pk)) {
    return Status::Constraint("duplicate primary key " + RowToString(pk) +
                              " in table " + name_);
  }
  RowId rid = rid_hint != 0 ? rid_hint : next_rid_;
  if (rows_.count(rid)) {
    return Status::Internal("RowId collision in table " + name_);
  }
  if (rid >= next_rid_) next_rid_ = rid + 1;
  if (!pk.empty()) pk_index_[pk] = rid;
  rows_[rid] = std::move(row);
  const Row& stored = rows_[rid];
  for (SecondaryIndex& idx : indexes_) {
    idx.entries[KeyFor(idx.columns, stored)].insert(rid);
  }
  return rid;
}

Status Table::Delete(RowId rid) {
  auto it = rows_.find(rid);
  if (it == rows_.end()) {
    return Status::NotFound("no row " + std::to_string(rid) + " in " + name_);
  }
  Row pk = PkOf(it->second);
  if (!pk.empty()) pk_index_.erase(pk);
  for (SecondaryIndex& idx : indexes_) {
    auto eit = idx.entries.find(KeyFor(idx.columns, it->second));
    if (eit != idx.entries.end()) {
      eit->second.erase(rid);
      if (eit->second.empty()) idx.entries.erase(eit);
    }
  }
  rows_.erase(it);
  return Status::Ok();
}

Status Table::Update(RowId rid, Row new_row) {
  auto it = rows_.find(rid);
  if (it == rows_.end()) {
    return Status::NotFound("no row " + std::to_string(rid) + " in " + name_);
  }
  PHX_RETURN_IF_ERROR(schema_.CoerceRow(&new_row));
  Row old_pk = PkOf(it->second);
  Row new_pk = PkOf(new_row);
  if (!new_pk.empty() && !(RowLess{}(old_pk, new_pk) == false &&
                           RowLess{}(new_pk, old_pk) == false)) {
    // PK changed: check uniqueness of the new key.
    if (pk_index_.count(new_pk)) {
      return Status::Constraint("duplicate primary key on update in " + name_);
    }
    pk_index_.erase(old_pk);
    pk_index_[new_pk] = rid;
  }
  for (SecondaryIndex& idx : indexes_) {
    Row old_key = KeyFor(idx.columns, it->second);
    Row new_key = KeyFor(idx.columns, new_row);
    if (RowLess{}(old_key, new_key) || RowLess{}(new_key, old_key)) {
      auto eit = idx.entries.find(old_key);
      if (eit != idx.entries.end()) {
        eit->second.erase(rid);
        if (eit->second.empty()) idx.entries.erase(eit);
      }
      idx.entries[std::move(new_key)].insert(rid);
    }
  }
  it->second = std::move(new_row);
  return Status::Ok();
}

const Row* Table::Find(RowId rid) const {
  auto it = rows_.find(rid);
  return it == rows_.end() ? nullptr : &it->second;
}

Result<RowId> Table::FindByPk(const Row& key) const {
  if (pk_columns_.empty()) {
    return Status::NotFound("table " + name_ + " has no primary key");
  }
  auto it = pk_index_.find(key);
  if (it == pk_index_.end()) {
    return Status::NotFound("key " + RowToString(key) + " not in " + name_);
  }
  return it->second;
}

Row Table::PkOf(const Row& row) const {
  Row pk;
  pk.reserve(pk_columns_.size());
  for (int c : pk_columns_) pk.push_back(row[c]);
  return pk;
}

Row Table::KeyFor(const std::vector<int>& columns, const Row& row) {
  Row key;
  key.reserve(columns.size());
  for (int c : columns) key.push_back(row[c]);
  return key;
}

void Table::MvccNoteInsert(RowId rid, uint64_t txn) {
  live_begin_[rid] = MvccStamp{0, txn};
}

bool Table::MvccNoteDelete(RowId rid, Row old_row, uint64_t txn) {
  MvccVersion v;
  v.begin = MvccStamp{0, 0};
  auto it = live_begin_.find(rid);
  if (it != live_begin_.end()) {
    v.begin = it->second;
    live_begin_.erase(it);
  }
  v.end = MvccStamp{0, txn};
  Row pk = PkOf(v.row = std::move(old_row));
  if (!pk.empty()) dead_pk_[std::move(pk)].insert(rid);
  for (SecondaryIndex& idx : indexes_) {
    idx.dead_entries[KeyFor(idx.columns, v.row)].insert(rid);
  }
  old_[rid].push_back(std::move(v));
  ++old_count_;
  return true;
}

bool Table::MvccNoteUpdate(RowId rid, Row old_row, uint64_t txn) {
  MvccVersion v;
  v.begin = MvccStamp{0, 0};
  auto it = live_begin_.find(rid);
  if (it != live_begin_.end()) v.begin = it->second;
  live_begin_[rid] = MvccStamp{0, txn};
  v.end = MvccStamp{0, txn};
  // Old keys go to the dead maps even when a key did not change — probes
  // dedup by RowId and re-resolve, so over-inclusion is always safe.
  Row pk = PkOf(v.row = std::move(old_row));
  if (!pk.empty()) dead_pk_[std::move(pk)].insert(rid);
  for (SecondaryIndex& idx : indexes_) {
    idx.dead_entries[KeyFor(idx.columns, v.row)].insert(rid);
  }
  old_[rid].push_back(std::move(v));
  ++old_count_;
  return true;
}

bool Table::MvccUndoInsert(RowId rid, uint64_t txn) {
  auto it = live_begin_.find(rid);
  if (it == live_begin_.end() || it->second.txn != txn) return false;
  live_begin_.erase(it);
  return true;
}

bool Table::MvccUndoDelete(RowId rid, uint64_t txn) {
  auto it = old_.find(rid);
  if (it == old_.end() || it->second.empty() ||
      it->second.back().end.txn != txn) {
    return false;
  }
  // The row is live again (undo re-inserted it); restore its prior begin
  // stamp. Stale dead-map keys are swept by the next reclaim.
  MvccVersion v = std::move(it->second.back());
  it->second.pop_back();
  if (it->second.empty()) old_.erase(it);
  --old_count_;
  if (v.begin.lsn == 0 && v.begin.txn == 0) {
    live_begin_.erase(rid);
  } else {
    live_begin_[rid] = v.begin;
  }
  return true;
}

bool Table::MvccUndoUpdate(RowId rid, uint64_t txn) {
  return MvccUndoDelete(rid, txn);  // same unwind: pop + restore begin
}

void Table::MvccFinalize(RowId rid, uint64_t txn, uint64_t lsn) {
  auto lit = live_begin_.find(rid);
  if (lit != live_begin_.end() && lit->second.txn == txn) {
    lit->second = MvccStamp{lsn, 0};
  }
  auto oit = old_.find(rid);
  if (oit != old_.end()) {
    for (MvccVersion& v : oit->second) {
      if (v.begin.txn == txn) v.begin = MvccStamp{lsn, 0};
      if (v.end.txn == txn) v.end = MvccStamp{lsn, 0};
    }
  }
}

size_t Table::MvccReclaim(uint64_t watermark) {
  size_t freed = 0;
  for (auto it = old_.begin(); it != old_.end();) {
    std::vector<MvccVersion>& chain = it->second;
    size_t keep = 0;
    for (size_t i = 0; i < chain.size(); ++i) {
      bool dead_for_all =
          chain[i].end.txn == 0 && chain[i].end.lsn <= watermark;
      if (!dead_for_all) {
        if (keep != i) chain[keep] = std::move(chain[i]);  // no self-move
        ++keep;
      }
    }
    freed += chain.size() - keep;
    chain.resize(keep);
    it = keep == 0 ? old_.erase(it) : std::next(it);
  }
  old_count_ -= freed;
  // Committed-at-or-below-watermark begin stamps are equivalent to the
  // implicit {0, 0}; drop them so the stamp map tracks only recent churn.
  for (auto it = live_begin_.begin(); it != live_begin_.end();) {
    if (it->second.txn == 0 && it->second.lsn <= watermark) {
      it = live_begin_.erase(it);
    } else {
      ++it;
    }
  }
  // Rebuild the dead-key maps from the surviving versions; this also sweeps
  // keys left stale by rollback unwinds.
  dead_pk_.clear();
  for (SecondaryIndex& idx : indexes_) idx.dead_entries.clear();
  for (const auto& [rid, chain] : old_) {
    for (const MvccVersion& v : chain) {
      Row pk = PkOf(v.row);
      if (!pk.empty()) dead_pk_[std::move(pk)].insert(rid);
      for (SecondaryIndex& idx : indexes_) {
        idx.dead_entries[KeyFor(idx.columns, v.row)].insert(rid);
      }
    }
  }
  return freed;
}

const Row* Table::MvccVersionAsOf(RowId rid, const MvccSnapshot& snap) const {
  auto rit = rows_.find(rid);
  if (rit != rows_.end()) {
    auto sit = live_begin_.find(rid);
    MvccStamp begin = sit == live_begin_.end() ? MvccStamp{0, 0} : sit->second;
    if (snap.Sees(begin)) return &rit->second;
  }
  auto oit = old_.find(rid);
  if (oit != old_.end()) {
    // Newest first; lifetimes in a chain are disjoint, so at most one
    // version brackets the snapshot.
    for (auto v = oit->second.rbegin(); v != oit->second.rend(); ++v) {
      if (snap.Sees(v->begin) && !snap.Sees(v->end)) return &v->row;
    }
  }
  return nullptr;
}

void Table::MvccScanVisible(
    const MvccSnapshot& snap,
    std::vector<std::pair<RowId, const Row*>>* out) const {
  auto rit = rows_.begin();
  auto oit = old_.begin();
  // Merge the live map and the version-chain map in RowId order so the
  // visible scan order matches a plain rows() iteration.
  while (rit != rows_.end() || oit != old_.end()) {
    RowId rid;
    if (oit == old_.end() || (rit != rows_.end() && rit->first <= oit->first)) {
      rid = rit->first;
      ++rit;
      if (oit != old_.end() && oit->first == rid) ++oit;
    } else {
      rid = oit->first;
      ++oit;
    }
    if (const Row* row = MvccVersionAsOf(rid, snap)) {
      out->emplace_back(rid, row);
    }
  }
}

Status Table::CreateIndex(const std::string& name, std::vector<int> columns) {
  return CreateIndexAt(name, std::move(columns), indexes_.size());
}

Status Table::CreateIndexAt(const std::string& name, std::vector<int> columns,
                            size_t position) {
  std::string key = IdentUpper(name);
  if (key.empty()) return Status::InvalidArgument("empty index name");
  if (FindIndex(key) != nullptr) {
    return Status::AlreadyExists("index already exists: " + key + " on " +
                                 name_);
  }
  if (columns.empty()) {
    return Status::InvalidArgument("index needs at least one column");
  }
  for (int c : columns) {
    if (c < 0 || static_cast<size_t>(c) >= schema_.num_columns()) {
      return Status::InvalidArgument("index column out of range");
    }
  }
  SecondaryIndex idx;
  idx.name = std::move(key);
  idx.columns = std::move(columns);
  for (const auto& [rid, row] : rows_) {
    idx.entries[KeyFor(idx.columns, row)].insert(rid);
  }
  // Backfill sees only live rows; give snapshot probes their dead keys too,
  // so a freshly (re)created index is immediately usable by any snapshot
  // newer than its fence (the engine sets mvcc_created_lsn).
  for (const auto& [rid, chain] : old_) {
    for (const MvccVersion& v : chain) {
      idx.dead_entries[KeyFor(idx.columns, v.row)].insert(rid);
    }
  }
  if (position > indexes_.size()) position = indexes_.size();
  indexes_.insert(indexes_.begin() + static_cast<ptrdiff_t>(position),
                  std::move(idx));
  return Status::Ok();
}

Status Table::DropIndex(const std::string& name) {
  std::string key = IdentUpper(name);
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if (it->name == key) {
      indexes_.erase(it);
      return Status::Ok();
    }
  }
  return Status::NotFound("no such index: " + key + " on " + name_);
}

const SecondaryIndex* Table::FindIndex(const std::string& name) const {
  std::string key = IdentUpper(name);
  for (const SecondaryIndex& idx : indexes_) {
    if (idx.name == key) return &idx;
  }
  return nullptr;
}

size_t Table::IndexPosition(const std::string& name) const {
  std::string key = IdentUpper(name);
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].name == key) return i;
  }
  return static_cast<size_t>(-1);
}

void Table::EncodeSnapshot(Encoder* enc, bool with_indexes) const {
  enc->PutString(name_);
  enc->PutSchema(schema_);
  enc->PutU32(static_cast<uint32_t>(pk_columns_.size()));
  for (int c : pk_columns_) enc->PutI32(c);
  enc->PutU64(next_rid_);
  enc->PutU64(rows_.size());
  for (const auto& [rid, row] : rows_) {
    enc->PutU64(rid);
    enc->PutRow(row);
  }
  if (!with_indexes) return;
  // Definitions only: the entry trees are rebuilt from the rows on decode,
  // so an image can never carry an index inconsistent with its heap.
  enc->PutU32(static_cast<uint32_t>(indexes_.size()));
  for (const SecondaryIndex& idx : indexes_) {
    enc->PutString(idx.name);
    enc->PutU32(static_cast<uint32_t>(idx.columns.size()));
    for (int c : idx.columns) enc->PutI32(c);
  }
}

Result<std::unique_ptr<Table>> Table::DecodeSnapshot(Decoder* dec,
                                                     bool with_indexes) {
  PHX_ASSIGN_OR_RETURN(std::string name, dec->GetString());
  PHX_ASSIGN_OR_RETURN(Schema schema, dec->GetSchema());
  PHX_ASSIGN_OR_RETURN(uint32_t num_pk, dec->GetU32());
  std::vector<int> pk_cols;
  for (uint32_t i = 0; i < num_pk; ++i) {
    PHX_ASSIGN_OR_RETURN(int32_t c, dec->GetI32());
    pk_cols.push_back(c);
  }
  auto table = std::make_unique<Table>(std::move(name), std::move(schema),
                                       std::move(pk_cols), /*temporary=*/false);
  PHX_ASSIGN_OR_RETURN(uint64_t next_rid, dec->GetU64());
  PHX_ASSIGN_OR_RETURN(uint64_t num_rows, dec->GetU64());
  for (uint64_t i = 0; i < num_rows; ++i) {
    PHX_ASSIGN_OR_RETURN(uint64_t rid, dec->GetU64());
    PHX_ASSIGN_OR_RETURN(Row row, dec->GetRow());
    PHX_ASSIGN_OR_RETURN(RowId got, table->Insert(std::move(row), rid));
    (void)got;
  }
  // Restore next_rid last: Insert() advances it, but the checkpoint value is
  // authoritative (rows may have been deleted at the high end).
  if (next_rid > table->next_rid_) table->next_rid_ = next_rid;
  if (with_indexes) {
    PHX_ASSIGN_OR_RETURN(uint32_t num_idx, dec->GetU32());
    for (uint32_t i = 0; i < num_idx; ++i) {
      PHX_ASSIGN_OR_RETURN(std::string idx_name, dec->GetString());
      PHX_ASSIGN_OR_RETURN(uint32_t ncols, dec->GetU32());
      std::vector<int> cols;
      for (uint32_t c = 0; c < ncols; ++c) {
        PHX_ASSIGN_OR_RETURN(int32_t col, dec->GetI32());
        cols.push_back(col);
      }
      PHX_RETURN_IF_ERROR(table->CreateIndex(idx_name, std::move(cols)));
    }
  }
  return table;
}

std::unique_ptr<Table> Table::Clone() const {
  auto copy = std::make_unique<Table>(name_, schema_, pk_columns_, temporary_);
  copy->owner_session_ = owner_session_;
  copy->next_rid_ = next_rid_;
  copy->rows_ = rows_;
  copy->pk_index_ = pk_index_;
  copy->indexes_ = indexes_;
  // Clones materialize only committed latest versions: checkpoint reverts
  // and image encoding are version-oblivious by contract.
  for (SecondaryIndex& idx : copy->indexes_) idx.dead_entries.clear();
  return copy;
}

Result<Table*> TableStore::CreateTable(const std::string& name, Schema schema,
                                       std::vector<int> pk_columns,
                                       bool temporary) {
  std::string key = IdentUpper(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  for (int c : pk_columns) {
    if (c < 0 || static_cast<size_t>(c) >= schema.num_columns()) {
      return Status::InvalidArgument("primary key column out of range");
    }
  }
  auto table = std::make_unique<Table>(key, std::move(schema),
                                       std::move(pk_columns), temporary);
  Table* raw = table.get();
  tables_[key] = std::move(table);
  return raw;
}

Status TableStore::DropTable(const std::string& name) {
  auto it = tables_.find(IdentUpper(name));
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  tables_.erase(it);
  return Status::Ok();
}

Table* TableStore::Get(const std::string& name) {
  auto it = tables_.find(IdentUpper(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* TableStore::Get(const std::string& name) const {
  auto it = tables_.find(IdentUpper(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> TableStore::ListNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

std::vector<std::string> TableStore::DropSessionTemps(uint64_t session_id) {
  std::vector<std::string> dropped;
  for (auto it = tables_.begin(); it != tables_.end();) {
    if (it->second->temporary() && it->second->owner_session() == session_id) {
      dropped.push_back(it->first);
      it = tables_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

void TableStore::EncodeSnapshot(Encoder* enc) const {
  uint32_t persistent = 0;
  for (const auto& [name, table] : tables_) {
    if (!table->temporary()) ++persistent;
  }
  enc->PutU32(persistent);
  for (const auto& [name, table] : tables_) {
    if (!table->temporary()) table->EncodeSnapshot(enc);
  }
}

std::unique_ptr<TableStore> TableStore::ClonePersistent() const {
  auto clone = std::make_unique<TableStore>();
  for (const auto& [name, table] : tables_) {
    if (table->temporary()) continue;
    clone->tables_[name] = table->Clone();
  }
  return clone;
}

Status TableStore::DecodeSnapshot(Decoder* dec, bool with_indexes) {
  PHX_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
  for (uint32_t i = 0; i < n; ++i) {
    PHX_ASSIGN_OR_RETURN(std::unique_ptr<Table> table,
                         Table::DecodeSnapshot(dec, with_indexes));
    std::string key = table->name();
    tables_[key] = std::move(table);
  }
  return Status::Ok();
}

}  // namespace phoenix::storage
