#include "storage/table_store.h"

namespace phoenix::storage {

Result<RowId> Table::Insert(Row row, RowId rid_hint) {
  PHX_RETURN_IF_ERROR(schema_.CoerceRow(&row));
  Row pk = PkOf(row);
  if (!pk.empty() && pk_index_.count(pk)) {
    return Status::Constraint("duplicate primary key " + RowToString(pk) +
                              " in table " + name_);
  }
  RowId rid = rid_hint != 0 ? rid_hint : next_rid_;
  if (rows_.count(rid)) {
    return Status::Internal("RowId collision in table " + name_);
  }
  if (rid >= next_rid_) next_rid_ = rid + 1;
  if (!pk.empty()) pk_index_[pk] = rid;
  rows_[rid] = std::move(row);
  const Row& stored = rows_[rid];
  for (SecondaryIndex& idx : indexes_) {
    idx.entries[KeyFor(idx.columns, stored)].insert(rid);
  }
  return rid;
}

Status Table::Delete(RowId rid) {
  auto it = rows_.find(rid);
  if (it == rows_.end()) {
    return Status::NotFound("no row " + std::to_string(rid) + " in " + name_);
  }
  Row pk = PkOf(it->second);
  if (!pk.empty()) pk_index_.erase(pk);
  for (SecondaryIndex& idx : indexes_) {
    auto eit = idx.entries.find(KeyFor(idx.columns, it->second));
    if (eit != idx.entries.end()) {
      eit->second.erase(rid);
      if (eit->second.empty()) idx.entries.erase(eit);
    }
  }
  rows_.erase(it);
  return Status::Ok();
}

Status Table::Update(RowId rid, Row new_row) {
  auto it = rows_.find(rid);
  if (it == rows_.end()) {
    return Status::NotFound("no row " + std::to_string(rid) + " in " + name_);
  }
  PHX_RETURN_IF_ERROR(schema_.CoerceRow(&new_row));
  Row old_pk = PkOf(it->second);
  Row new_pk = PkOf(new_row);
  if (!new_pk.empty() && !(RowLess{}(old_pk, new_pk) == false &&
                           RowLess{}(new_pk, old_pk) == false)) {
    // PK changed: check uniqueness of the new key.
    if (pk_index_.count(new_pk)) {
      return Status::Constraint("duplicate primary key on update in " + name_);
    }
    pk_index_.erase(old_pk);
    pk_index_[new_pk] = rid;
  }
  for (SecondaryIndex& idx : indexes_) {
    Row old_key = KeyFor(idx.columns, it->second);
    Row new_key = KeyFor(idx.columns, new_row);
    if (RowLess{}(old_key, new_key) || RowLess{}(new_key, old_key)) {
      auto eit = idx.entries.find(old_key);
      if (eit != idx.entries.end()) {
        eit->second.erase(rid);
        if (eit->second.empty()) idx.entries.erase(eit);
      }
      idx.entries[std::move(new_key)].insert(rid);
    }
  }
  it->second = std::move(new_row);
  return Status::Ok();
}

const Row* Table::Find(RowId rid) const {
  auto it = rows_.find(rid);
  return it == rows_.end() ? nullptr : &it->second;
}

Result<RowId> Table::FindByPk(const Row& key) const {
  if (pk_columns_.empty()) {
    return Status::NotFound("table " + name_ + " has no primary key");
  }
  auto it = pk_index_.find(key);
  if (it == pk_index_.end()) {
    return Status::NotFound("key " + RowToString(key) + " not in " + name_);
  }
  return it->second;
}

Row Table::PkOf(const Row& row) const {
  Row pk;
  pk.reserve(pk_columns_.size());
  for (int c : pk_columns_) pk.push_back(row[c]);
  return pk;
}

Row Table::KeyFor(const std::vector<int>& columns, const Row& row) {
  Row key;
  key.reserve(columns.size());
  for (int c : columns) key.push_back(row[c]);
  return key;
}

Status Table::CreateIndex(const std::string& name, std::vector<int> columns) {
  std::string key = IdentUpper(name);
  if (key.empty()) return Status::InvalidArgument("empty index name");
  if (FindIndex(key) != nullptr) {
    return Status::AlreadyExists("index already exists: " + key + " on " +
                                 name_);
  }
  if (columns.empty()) {
    return Status::InvalidArgument("index needs at least one column");
  }
  for (int c : columns) {
    if (c < 0 || static_cast<size_t>(c) >= schema_.num_columns()) {
      return Status::InvalidArgument("index column out of range");
    }
  }
  SecondaryIndex idx;
  idx.name = std::move(key);
  idx.columns = std::move(columns);
  for (const auto& [rid, row] : rows_) {
    idx.entries[KeyFor(idx.columns, row)].insert(rid);
  }
  indexes_.push_back(std::move(idx));
  return Status::Ok();
}

Status Table::DropIndex(const std::string& name) {
  std::string key = IdentUpper(name);
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if (it->name == key) {
      indexes_.erase(it);
      return Status::Ok();
    }
  }
  return Status::NotFound("no such index: " + key + " on " + name_);
}

const SecondaryIndex* Table::FindIndex(const std::string& name) const {
  std::string key = IdentUpper(name);
  for (const SecondaryIndex& idx : indexes_) {
    if (idx.name == key) return &idx;
  }
  return nullptr;
}

void Table::EncodeSnapshot(Encoder* enc, bool with_indexes) const {
  enc->PutString(name_);
  enc->PutSchema(schema_);
  enc->PutU32(static_cast<uint32_t>(pk_columns_.size()));
  for (int c : pk_columns_) enc->PutI32(c);
  enc->PutU64(next_rid_);
  enc->PutU64(rows_.size());
  for (const auto& [rid, row] : rows_) {
    enc->PutU64(rid);
    enc->PutRow(row);
  }
  if (!with_indexes) return;
  // Definitions only: the entry trees are rebuilt from the rows on decode,
  // so an image can never carry an index inconsistent with its heap.
  enc->PutU32(static_cast<uint32_t>(indexes_.size()));
  for (const SecondaryIndex& idx : indexes_) {
    enc->PutString(idx.name);
    enc->PutU32(static_cast<uint32_t>(idx.columns.size()));
    for (int c : idx.columns) enc->PutI32(c);
  }
}

Result<std::unique_ptr<Table>> Table::DecodeSnapshot(Decoder* dec,
                                                     bool with_indexes) {
  PHX_ASSIGN_OR_RETURN(std::string name, dec->GetString());
  PHX_ASSIGN_OR_RETURN(Schema schema, dec->GetSchema());
  PHX_ASSIGN_OR_RETURN(uint32_t num_pk, dec->GetU32());
  std::vector<int> pk_cols;
  for (uint32_t i = 0; i < num_pk; ++i) {
    PHX_ASSIGN_OR_RETURN(int32_t c, dec->GetI32());
    pk_cols.push_back(c);
  }
  auto table = std::make_unique<Table>(std::move(name), std::move(schema),
                                       std::move(pk_cols), /*temporary=*/false);
  PHX_ASSIGN_OR_RETURN(uint64_t next_rid, dec->GetU64());
  PHX_ASSIGN_OR_RETURN(uint64_t num_rows, dec->GetU64());
  for (uint64_t i = 0; i < num_rows; ++i) {
    PHX_ASSIGN_OR_RETURN(uint64_t rid, dec->GetU64());
    PHX_ASSIGN_OR_RETURN(Row row, dec->GetRow());
    PHX_ASSIGN_OR_RETURN(RowId got, table->Insert(std::move(row), rid));
    (void)got;
  }
  // Restore next_rid last: Insert() advances it, but the checkpoint value is
  // authoritative (rows may have been deleted at the high end).
  if (next_rid > table->next_rid_) table->next_rid_ = next_rid;
  if (with_indexes) {
    PHX_ASSIGN_OR_RETURN(uint32_t num_idx, dec->GetU32());
    for (uint32_t i = 0; i < num_idx; ++i) {
      PHX_ASSIGN_OR_RETURN(std::string idx_name, dec->GetString());
      PHX_ASSIGN_OR_RETURN(uint32_t ncols, dec->GetU32());
      std::vector<int> cols;
      for (uint32_t c = 0; c < ncols; ++c) {
        PHX_ASSIGN_OR_RETURN(int32_t col, dec->GetI32());
        cols.push_back(col);
      }
      PHX_RETURN_IF_ERROR(table->CreateIndex(idx_name, std::move(cols)));
    }
  }
  return table;
}

std::unique_ptr<Table> Table::Clone() const {
  auto copy = std::make_unique<Table>(name_, schema_, pk_columns_, temporary_);
  copy->owner_session_ = owner_session_;
  copy->next_rid_ = next_rid_;
  copy->rows_ = rows_;
  copy->pk_index_ = pk_index_;
  copy->indexes_ = indexes_;
  return copy;
}

Result<Table*> TableStore::CreateTable(const std::string& name, Schema schema,
                                       std::vector<int> pk_columns,
                                       bool temporary) {
  std::string key = IdentUpper(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  for (int c : pk_columns) {
    if (c < 0 || static_cast<size_t>(c) >= schema.num_columns()) {
      return Status::InvalidArgument("primary key column out of range");
    }
  }
  auto table = std::make_unique<Table>(key, std::move(schema),
                                       std::move(pk_columns), temporary);
  Table* raw = table.get();
  tables_[key] = std::move(table);
  return raw;
}

Status TableStore::DropTable(const std::string& name) {
  auto it = tables_.find(IdentUpper(name));
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  tables_.erase(it);
  return Status::Ok();
}

Table* TableStore::Get(const std::string& name) {
  auto it = tables_.find(IdentUpper(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* TableStore::Get(const std::string& name) const {
  auto it = tables_.find(IdentUpper(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> TableStore::ListNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

std::vector<std::string> TableStore::DropSessionTemps(uint64_t session_id) {
  std::vector<std::string> dropped;
  for (auto it = tables_.begin(); it != tables_.end();) {
    if (it->second->temporary() && it->second->owner_session() == session_id) {
      dropped.push_back(it->first);
      it = tables_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

void TableStore::EncodeSnapshot(Encoder* enc) const {
  uint32_t persistent = 0;
  for (const auto& [name, table] : tables_) {
    if (!table->temporary()) ++persistent;
  }
  enc->PutU32(persistent);
  for (const auto& [name, table] : tables_) {
    if (!table->temporary()) table->EncodeSnapshot(enc);
  }
}

std::unique_ptr<TableStore> TableStore::ClonePersistent() const {
  auto clone = std::make_unique<TableStore>();
  for (const auto& [name, table] : tables_) {
    if (table->temporary()) continue;
    clone->tables_[name] = table->Clone();
  }
  return clone;
}

Status TableStore::DecodeSnapshot(Decoder* dec, bool with_indexes) {
  PHX_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
  for (uint32_t i = 0; i < n; ++i) {
    PHX_ASSIGN_OR_RETURN(std::unique_ptr<Table> table,
                         Table::DecodeSnapshot(dec, with_indexes));
    std::string key = table->name();
    tables_[key] = std::move(table);
  }
  return Status::Ok();
}

}  // namespace phoenix::storage
