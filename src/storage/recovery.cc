#include "storage/recovery.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "common/schema.h"
#include "net/worker_pool.h"
#include "obs/metrics.h"

namespace phoenix::storage {

namespace {
constexpr uint32_t kCheckpointMagic = 0x50485843;  // "PHXC"
/// v1: {next_txn_id, snapshot} — quiescent checkpoints, replay fenced on
///     txn_id (exact only because no txn could span a checkpoint).
/// v2: {next_txn_id, fence_lsn, snapshot} — non-quiescent checkpoints,
///     replay fenced on WAL LSN.
/// v3: same header, but each table's snapshot carries its secondary-index
///     definitions (entries are rebuilt from the rows on load). v1 and v2
///     images are still accepted on read so a restart over an old disk
///     image works.
constexpr uint32_t kCheckpointVersion = 3;

/// Shared progress state for the replay hook: a running event counter that
/// both the scan thread (per record) and pool workers (periodically, while
/// a partition applies) bump. The hook sees a strictly increasing 1-based
/// ordinal; cross-thread interleaving of events is inherently unordered.
struct ReplayProgress {
  std::atomic<uint64_t> events{0};
  std::function<void(uint64_t)> hook;

  void Fire() {
    if (hook) hook(events.fetch_add(1, std::memory_order_relaxed) + 1);
  }
};

/// The parallel half of partitioned replay (DESIGN.md §15). The streaming
/// scan classifies each replayed record's ops here:
///
///  - DML (insert/update/delete) and index DDL (create/drop index) are
///    routed by canonical table name into per-table partitions. Index DDL
///    rides the table partition because it touches exactly one Table — its
///    relative order with that table's DML is what correctness needs, and
///    the partition preserves it.
///  - CREATE/DROP TABLE are serial barriers: they mutate the table *map*
///    every partition resolves names against, so all buffered partitions
///    are flushed and drained first, then the op applies on the scan
///    thread, then classification resumes. Cross-table ordering only ever
///    matters through such an op, so partitions between barriers are
///    independent by construction.
///
/// Within a partition, ops stay in log (LSN) order: a partition is one
/// pool task, and Drain() at each barrier orders a table's tasks across
/// segments. The first apply error wins, is sticky, and makes workers bail
/// out early; the scan aborts on the next record.
class PartitionedReplay {
 public:
  PartitionedReplay(TableStore* store, uint64_t threads,
                    ReplayProgress* progress)
      : store_(store),
        progress_(progress),
        pool_({/*threads=*/static_cast<size_t>(threads),
               /*queue_capacity=*/static_cast<size_t>(threads) * 4}) {}

  /// Classifies one record's ops, flushing a barrier around table DDL.
  /// `local` counters advance exactly as serial replay would advance them.
  Status Add(WalCommitRecord&& rec, RecoveryInfo* local) {
    PHX_RETURN_IF_ERROR(FirstError());
    for (WalOp& op : rec.ops) {
      if (op.kind == WalOpKind::kCreateTable ||
          op.kind == WalOpKind::kDropTable) {
        PHX_RETURN_IF_ERROR(Flush(local));
        ++local->ddl_barriers;
        PHX_RETURN_IF_ERROR(ApplyWalOp(op, store_));
      } else {
        partitions_[IdentUpper(op.table)].push_back(std::move(op));
      }
      ++local->ops_replayed;
    }
    return Status::Ok();
  }

  /// Dispatches every buffered partition and waits for all of them (and any
  /// earlier in-flight work) to finish applying.
  Status Flush(RecoveryInfo* local) {
    for (auto& [table, ops] : partitions_) {
      if (ops.empty()) continue;
      ++local->partitions_replayed;
      auto batch = std::make_shared<std::vector<WalOp>>(std::move(ops));
      pool_.Submit([this, table = table, batch] {
        // One name lookup per batch, not per op — every op in a partition
        // targets the same table, and table DDL (which could invalidate the
        // pointer) is fenced behind Drain() barriers.
        Table* t = store_->Get(table);
        if (t == nullptr) {
          RecordError(Status::Internal("redo partition for missing " + table));
          return;
        }
        for (size_t i = 0; i < batch->size(); ++i) {
          if (failed_.load(std::memory_order_relaxed)) return;
          Status st = ApplyWalOpToTable(t, (*batch)[i]);
          if (!st.ok()) {
            RecordError(std::move(st));
            return;
          }
          // Periodic progress events from inside the parallel phase — the
          // window the "recovery" rendezvous point needs to land a SIGKILL
          // in the middle of.
          if (((i + 1) & 63u) == 0) progress_->Fire();
        }
      });
    }
    partitions_.clear();
    pool_.Drain();
    return FirstError();
  }

  Status FirstError() {
    if (!failed_.load(std::memory_order_relaxed)) return Status::Ok();
    std::lock_guard<std::mutex> lk(err_mu_);
    return first_error_;
  }

 private:
  void RecordError(Status st) {
    std::lock_guard<std::mutex> lk(err_mu_);
    if (!failed_.load(std::memory_order_relaxed)) {
      first_error_ = std::move(st);
      failed_.store(true, std::memory_order_relaxed);
    }
  }

  TableStore* store_;
  ReplayProgress* progress_;
  std::map<std::string, std::vector<WalOp>> partitions_;
  std::mutex err_mu_;
  std::atomic<bool> failed_{false};
  Status first_error_;
  net::WorkerPool pool_;  ///< last member: workers die before the rest
};

}  // namespace

Status ApplyWalOpToTable(Table* t, const WalOp& op) {
  switch (op.kind) {
    case WalOpKind::kInsert: {
      auto res = t->Insert(op.row, op.rid);
      return res.status();
    }
    case WalOpKind::kDelete:
      return t->Delete(op.rid);
    case WalOpKind::kUpdate:
      return t->Update(op.rid, op.row);
    case WalOpKind::kCreateIndex:
      return t->CreateIndex(op.index_name, op.columns);
    case WalOpKind::kDropIndex:
      return t->DropIndex(op.index_name);
    case WalOpKind::kCreateTable:
    case WalOpKind::kDropTable:
      break;  // table DDL needs the store, not a table
  }
  return Status::Internal("bad WAL op kind for resolved-table apply");
}

Status ApplyWalOp(const WalOp& op, TableStore* store) {
  switch (op.kind) {
    case WalOpKind::kCreateTable: {
      auto res = store->CreateTable(op.table, op.schema, op.columns,
                                    /*temporary=*/false);
      return res.status();
    }
    case WalOpKind::kDropTable:
      return store->DropTable(op.table);
    default: {
      Table* t = store->Get(op.table);
      if (t == nullptr) return Status::Internal("redo op on missing " + op.table);
      return ApplyWalOpToTable(t, op);
    }
  }
}

DurabilityManager::DurabilityManager(SimDisk* disk, std::string prefix,
                                     WalWriterConfig wal_config)
    : disk_(disk),
      wal_file_(prefix + ".wal"),
      ckpt_file_(prefix + ".ckpt"),
      wal_writer_(disk, wal_file_, wal_config) {}

Status DurabilityManager::LogCommit(const WalCommitRecord& record) {
  return wal_writer_.AppendCommit(record);
}

WalCommitTicket DurabilityManager::EnqueueCommit(const WalCommitRecord& record) {
  return wal_writer_.EnqueueCommit(record);
}

Status DurabilityManager::WaitCommit(WalCommitTicket* ticket) {
  return wal_writer_.WaitCommit(ticket);
}

Status DurabilityManager::WriteCheckpoint(const TableStore& store,
                                          uint64_t next_txn_id,
                                          bool truncate_wal) {
  // The fence is the last LSN the writer handed out: the caller guarantees
  // `store` reflects every record up to it (the engine holds its data lock
  // exclusively around this call, so no enqueue can race the capture).
  uint64_t fence_lsn = wal_writer_.last_assigned_lsn();
  PHX_RETURN_IF_ERROR(WriteCheckpointImage(store, next_txn_id, fence_lsn));
  // The crash window: the checkpoint image is durable but the WAL still
  // holds records it subsumes. Recover() must skip those, keyed off the
  // image's fence_lsn.
  if (!truncate_wal) return Status::Ok();
  return TruncateWalToFence(fence_lsn);
}

Status DurabilityManager::WriteCheckpointImage(const TableStore& store,
                                               uint64_t next_txn_id,
                                               uint64_t fence_lsn) {
  StopWatch watch;
  Encoder enc;
  enc.PutU32(kCheckpointMagic);
  enc.PutU32(kCheckpointVersion);
  enc.PutU64(next_txn_id);
  enc.PutU64(fence_lsn);
  store.EncodeSnapshot(&enc);
  size_t bytes = enc.size();
  PHX_RETURN_IF_ERROR(disk_->WriteAtomic(ckpt_file_, enc.Take()));
  // Metrics are recorded per image written, deliberately before any
  // truncation decision: an image without a WAL truncation (the fault-test
  // path, or a background write that raced a newer one) is still a
  // checkpoint the operator should see counted.
  auto* reg = obs::MetricsRegistry::Default();
  reg->GetCounter("storage.checkpoints")->Increment();
  reg->GetCounter("storage.checkpoint.bytes")->Increment(bytes);
  reg->GetHistogram("storage.checkpoint.duration_us")
      ->Record(static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  return Status::Ok();
}

Status DurabilityManager::TruncateWalToFence(uint64_t fence_lsn) {
  return wal_writer_.TruncateUpTo(fence_lsn);
}

Status DurabilityManager::LoadCheckpoint(TableStore* store,
                                         RecoveryInfo* local) {
  if (!disk_->Exists(ckpt_file_)) return Status::Ok();
  PHX_ASSIGN_OR_RETURN(std::string bytes, disk_->ReadDurable(ckpt_file_));
  if (bytes.empty()) return Status::Ok();
  Decoder dec(bytes);
  PHX_ASSIGN_OR_RETURN(uint32_t magic, dec.GetU32());
  PHX_ASSIGN_OR_RETURN(uint32_t version, dec.GetU32());
  // Bad magic (torn/foreign image) and an unsupported version (usually a
  // newer software's image) are different operational problems; the log
  // line alone must say which, and what was actually observed.
  if (magic != kCheckpointMagic) {
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "bad checkpoint magic 0x%08x (want 0x%08x \"PHXC\")", magic,
                  kCheckpointMagic);
    return Status::IoError(msg);
  }
  if (version < 1 || version > kCheckpointVersion) {
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "unsupported checkpoint version %u (supported 1..%u)",
                  version, kCheckpointVersion);
    return Status::IoError(msg);
  }
  PHX_ASSIGN_OR_RETURN(local->next_txn_id, dec.GetU64());
  if (version >= 2) {
    PHX_ASSIGN_OR_RETURN(local->fence_lsn, dec.GetU64());
  }
  PHX_RETURN_IF_ERROR(
      store->DecodeSnapshot(&dec, /*with_indexes=*/version >= 3));
  local->had_checkpoint = true;
  return Status::Ok();
}

Status DurabilityManager::Recover(TableStore* store, RecoveryInfo* info) {
  store->Clear();
  RecoveryInfo local;
  Status st = RecoverImpl(store, &local);
  if (!st.ok()) {
    // A failed recovery must not leave a half-replayed store behind: a
    // caller that retries, degrades, or reports-and-continues would
    // otherwise observe (and possibly serve) partially applied state.
    store->Clear();
    return st;
  }
  if (info != nullptr) *info = local;
  return Status::Ok();
}

Status DurabilityManager::RecoverImpl(TableStore* store, RecoveryInfo* local) {
  auto* reg = obs::MetricsRegistry::Default();
  reg->GetCounter("storage.recoveries")->Increment();
  StopWatch watch;
  PHX_RETURN_IF_ERROR(LoadCheckpoint(store, local));
  reg->GetHistogram("storage.recovery.checkpoint_load_us")
      ->Record(static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  watch.Restart();

  // One device read serves both the replay scan and any torn-tail repair.
  std::string wal_bytes;
  if (disk_->Exists(wal_file_)) {
    PHX_ASSIGN_OR_RETURN(wal_bytes, disk_->ReadDurable(wal_file_));
  }

  const uint64_t ckpt_next_txn = local->had_checkpoint ? local->next_txn_id : 0;
  const uint64_t fence_lsn = local->fence_lsn;
  // A record the checkpoint image subsumes must be skipped: replaying it
  // would double-apply its ops — re-create existing tables, re-insert
  // existing rids. v2 images fence on LSN (exact even with transactions
  // spanning the checkpoint); v1 images predate LSNs and fence on txn_id,
  // exact because v1 checkpoints quiesced. The scan applies the predicate
  // before op decode, so subsumed records cost a CRC check and 16 bytes of
  // header decode, nothing more.
  auto subsumed = [&](uint64_t lsn, uint64_t txn_id) {
    bool skip = fence_lsn > 0 ? lsn <= fence_lsn : txn_id < ckpt_next_txn;
    if (skip) ++local->records_skipped;
    return skip;
  };

  ReplayProgress progress;
  progress.hook = replay_hook_;
  const uint64_t threads = recovery_threads_ < 1 ? 1 : recovery_threads_;
  local->replay_threads = threads;
  std::unique_ptr<PartitionedReplay> parallel;
  if (threads > 1) {
    parallel = std::make_unique<PartitionedReplay>(store, threads, &progress);
  }

  uint64_t max_lsn = 0;
  // Per-record bookkeeping identical in both modes — the equivalence
  // contract (same RecoveryInfo whatever replay_threads is) hangs on it.
  auto note_record = [&](const WalCommitRecord& rec) {
    if (rec.lsn > max_lsn) max_lsn = rec.lsn;
    ++local->records_replayed;
    if (rec.txn_id >= local->next_txn_id) local->next_txn_id = rec.txn_id + 1;
    progress.Fire();
  };
  WalReader::RecordFn replay;
  if (parallel != nullptr) {
    replay = [&](WalCommitRecord&& rec) -> Status {
      note_record(rec);
      return parallel->Add(std::move(rec), local);
    };
  } else {
    replay = [&](WalCommitRecord&& rec) -> Status {
      note_record(rec);
      for (const WalOp& op : rec.ops) {
        PHX_RETURN_IF_ERROR(ApplyWalOp(op, store));
        ++local->ops_replayed;
      }
      return Status::Ok();
    };
  }
  PHX_RETURN_IF_ERROR(
      WalReader::ScanBytes(wal_bytes, &local->wal_scan, replay, subsumed));

  if (local->wal_scan.tear_detected) {
    // Log repair: anything logged after unreadable bytes would be invisible
    // to every future recovery (the writer appends at end-of-file), so the
    // tail must be amputated before the next append. Only a corrupt tail
    // (CRC mismatch / undecodable frame) warrants the eager rewrite — one
    // WriteAtomic of the valid prefix of the bytes already in hand, never a
    // second read of the log — and counts as a repair; a clean unforced
    // tail — the expected residue of a crash cutting an unsynced append —
    // is handed to the writer for lazy amputation on its next append, a
    // no-op for read-only restarts.
    if (local->wal_scan.bytes_corrupt > 0) {
      PHX_RETURN_IF_ERROR(disk_->WriteAtomic(
          wal_file_,
          wal_bytes.substr(0, local->wal_scan.bytes_valid)));
      reg->GetCounter("storage.recovery.wal_tail_repaired")->Increment();
    } else {
      wal_writer_.NoteValidPrefix(local->wal_scan.bytes_valid);
    }
  }
  // The scan classified everything; the last partitions may still be
  // applying (or not yet dispatched). The final barrier makes the store
  // complete — and surfaces any apply error a worker hit after the scan's
  // last early-abort check.
  if (parallel != nullptr) {
    PHX_RETURN_IF_ERROR(parallel->Flush(local));
  }

  // Restore LSN continuity: the next record must sort after everything in
  // the durable log *and* after the checkpoint fence, or fenced replay
  // after the next crash would wrongly skip it.
  uint64_t resume_lsn = std::max(max_lsn, local->fence_lsn) + 1;
  wal_writer_.set_next_lsn(resume_lsn);
  reg->GetHistogram("storage.recovery.wal_replay_us")
      ->Record(static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  reg->GetCounter("storage.recovery.records_replayed")
      ->Increment(local->records_replayed);
  reg->GetCounter("storage.recovery.ops_replayed")
      ->Increment(local->ops_replayed);
  reg->GetCounter("storage.recovery.records_skipped")
      ->Increment(local->records_skipped);
  return Status::Ok();
}

}  // namespace phoenix::storage
