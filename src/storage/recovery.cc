#include "storage/recovery.h"

#include "common/rng.h"
#include "obs/metrics.h"

namespace phoenix::storage {

namespace {
constexpr uint32_t kCheckpointMagic = 0x50485843;  // "PHXC"
constexpr uint32_t kCheckpointVersion = 1;
}  // namespace

Status ApplyWalOp(const WalOp& op, TableStore* store) {
  switch (op.kind) {
    case WalOpKind::kCreateTable: {
      auto res = store->CreateTable(op.table, op.schema, op.pk_columns,
                                    /*temporary=*/false);
      return res.status();
    }
    case WalOpKind::kDropTable:
      return store->DropTable(op.table);
    case WalOpKind::kInsert: {
      Table* t = store->Get(op.table);
      if (t == nullptr) return Status::Internal("redo insert into missing " + op.table);
      auto res = t->Insert(op.row, op.rid);
      return res.status();
    }
    case WalOpKind::kDelete: {
      Table* t = store->Get(op.table);
      if (t == nullptr) return Status::Internal("redo delete from missing " + op.table);
      return t->Delete(op.rid);
    }
    case WalOpKind::kUpdate: {
      Table* t = store->Get(op.table);
      if (t == nullptr) return Status::Internal("redo update of missing " + op.table);
      return t->Update(op.rid, op.row);
    }
  }
  return Status::Internal("bad WAL op kind");
}

DurabilityManager::DurabilityManager(SimDisk* disk, std::string prefix,
                                     WalWriterConfig wal_config)
    : disk_(disk),
      wal_file_(prefix + ".wal"),
      ckpt_file_(prefix + ".ckpt"),
      wal_writer_(disk, wal_file_, wal_config) {}

Status DurabilityManager::LogCommit(const WalCommitRecord& record) {
  return wal_writer_.AppendCommit(record);
}

WalCommitTicket DurabilityManager::EnqueueCommit(const WalCommitRecord& record) {
  return wal_writer_.EnqueueCommit(record);
}

Status DurabilityManager::WaitCommit(WalCommitTicket* ticket) {
  return wal_writer_.WaitCommit(ticket);
}

Status DurabilityManager::WriteCheckpoint(const TableStore& store,
                                          uint64_t next_txn_id,
                                          bool truncate_wal) {
  StopWatch watch;
  Encoder enc;
  enc.PutU32(kCheckpointMagic);
  enc.PutU32(kCheckpointVersion);
  enc.PutU64(next_txn_id);
  store.EncodeSnapshot(&enc);
  size_t bytes = enc.size();
  PHX_RETURN_IF_ERROR(disk_->WriteAtomic(ckpt_file_, enc.Take()));
  // The crash window: the checkpoint image is durable but the WAL still
  // holds records it subsumes. Recover() must skip those, keyed off the
  // checkpoint's next_txn_id (every txn below it committed before the
  // checkpoint — Checkpoint() requires no active transactions).
  if (!truncate_wal) return Status::Ok();
  PHX_RETURN_IF_ERROR(wal_writer_.Reset());
  auto* reg = obs::MetricsRegistry::Default();
  reg->GetCounter("storage.checkpoints")->Increment();
  reg->GetCounter("storage.checkpoint.bytes")->Increment(bytes);
  reg->GetHistogram("storage.checkpoint.duration_us")
      ->Record(static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  return Status::Ok();
}

Status DurabilityManager::Recover(TableStore* store, RecoveryInfo* info) {
  auto* reg = obs::MetricsRegistry::Default();
  reg->GetCounter("storage.recoveries")->Increment();
  StopWatch watch;
  store->Clear();
  RecoveryInfo local;
  if (disk_->Exists(ckpt_file_)) {
    PHX_ASSIGN_OR_RETURN(std::string bytes, disk_->ReadDurable(ckpt_file_));
    if (!bytes.empty()) {
      Decoder dec(bytes);
      PHX_ASSIGN_OR_RETURN(uint32_t magic, dec.GetU32());
      PHX_ASSIGN_OR_RETURN(uint32_t version, dec.GetU32());
      if (magic != kCheckpointMagic || version != kCheckpointVersion) {
        return Status::IoError("bad checkpoint header");
      }
      PHX_ASSIGN_OR_RETURN(local.next_txn_id, dec.GetU64());
      PHX_RETURN_IF_ERROR(store->DecodeSnapshot(&dec));
      local.had_checkpoint = true;
    }
  }
  reg->GetHistogram("storage.recovery.checkpoint_load_us")
      ->Record(static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  watch.Restart();
  PHX_ASSIGN_OR_RETURN(std::vector<WalCommitRecord> records,
                       WalReader::ReadAll(*disk_, wal_file_, &local.wal_scan));
  if (local.wal_scan.tear_detected) {
    // Log repair: a torn/corrupt tail (the commit in flight when the power
    // died) must be amputated, not merely ignored — the writer appends at
    // end-of-file, so anything logged after unreadable bytes would be
    // invisible to every future recovery.
    PHX_ASSIGN_OR_RETURN(std::string wal_bytes, disk_->ReadDurable(wal_file_));
    PHX_RETURN_IF_ERROR(disk_->WriteAtomic(
        wal_file_, wal_bytes.substr(0, local.wal_scan.bytes_valid)));
    reg->GetCounter("storage.recovery.wal_tail_repaired")->Increment();
  }
  const uint64_t ckpt_next_txn = local.had_checkpoint ? local.next_txn_id : 0;
  for (const WalCommitRecord& rec : records) {
    // A record with txn_id < the checkpoint's next_txn_id is already fully
    // reflected in the checkpoint image (the crash landed between the
    // checkpoint write and the WAL truncation); replaying it would
    // double-apply its ops — re-create existing tables, re-insert existing
    // rids. Skip it. Txns never outlive a checkpoint (no active txns when
    // one is taken), so the id comparison is exact.
    if (rec.txn_id < ckpt_next_txn) {
      ++local.records_skipped;
      continue;
    }
    for (const WalOp& op : rec.ops) {
      PHX_RETURN_IF_ERROR(ApplyWalOp(op, store));
      ++local.ops_replayed;
    }
    ++local.records_replayed;
    if (rec.txn_id >= local.next_txn_id) local.next_txn_id = rec.txn_id + 1;
  }
  reg->GetHistogram("storage.recovery.wal_replay_us")
      ->Record(static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  reg->GetCounter("storage.recovery.records_replayed")
      ->Increment(local.records_replayed);
  reg->GetCounter("storage.recovery.ops_replayed")
      ->Increment(local.ops_replayed);
  reg->GetCounter("storage.recovery.records_skipped")
      ->Increment(local.records_skipped);
  if (info != nullptr) *info = local;
  return Status::Ok();
}

}  // namespace phoenix::storage
