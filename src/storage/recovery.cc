#include "storage/recovery.h"

#include <algorithm>

#include "common/rng.h"
#include "obs/metrics.h"

namespace phoenix::storage {

namespace {
constexpr uint32_t kCheckpointMagic = 0x50485843;  // "PHXC"
/// v1: {next_txn_id, snapshot} — quiescent checkpoints, replay fenced on
///     txn_id (exact only because no txn could span a checkpoint).
/// v2: {next_txn_id, fence_lsn, snapshot} — non-quiescent checkpoints,
///     replay fenced on WAL LSN.
/// v3: same header, but each table's snapshot carries its secondary-index
///     definitions (entries are rebuilt from the rows on load). v1 and v2
///     images are still accepted on read so a restart over an old disk
///     image works.
constexpr uint32_t kCheckpointVersion = 3;
}  // namespace

Status ApplyWalOp(const WalOp& op, TableStore* store) {
  switch (op.kind) {
    case WalOpKind::kCreateTable: {
      auto res = store->CreateTable(op.table, op.schema, op.pk_columns,
                                    /*temporary=*/false);
      return res.status();
    }
    case WalOpKind::kDropTable:
      return store->DropTable(op.table);
    case WalOpKind::kInsert: {
      Table* t = store->Get(op.table);
      if (t == nullptr) return Status::Internal("redo insert into missing " + op.table);
      auto res = t->Insert(op.row, op.rid);
      return res.status();
    }
    case WalOpKind::kDelete: {
      Table* t = store->Get(op.table);
      if (t == nullptr) return Status::Internal("redo delete from missing " + op.table);
      return t->Delete(op.rid);
    }
    case WalOpKind::kUpdate: {
      Table* t = store->Get(op.table);
      if (t == nullptr) return Status::Internal("redo update of missing " + op.table);
      return t->Update(op.rid, op.row);
    }
    case WalOpKind::kCreateIndex: {
      Table* t = store->Get(op.table);
      if (t == nullptr) return Status::Internal("redo create index on missing " + op.table);
      return t->CreateIndex(op.index_name, op.pk_columns);
    }
    case WalOpKind::kDropIndex: {
      Table* t = store->Get(op.table);
      if (t == nullptr) return Status::Internal("redo drop index on missing " + op.table);
      return t->DropIndex(op.index_name);
    }
  }
  return Status::Internal("bad WAL op kind");
}

DurabilityManager::DurabilityManager(SimDisk* disk, std::string prefix,
                                     WalWriterConfig wal_config)
    : disk_(disk),
      wal_file_(prefix + ".wal"),
      ckpt_file_(prefix + ".ckpt"),
      wal_writer_(disk, wal_file_, wal_config) {}

Status DurabilityManager::LogCommit(const WalCommitRecord& record) {
  return wal_writer_.AppendCommit(record);
}

WalCommitTicket DurabilityManager::EnqueueCommit(const WalCommitRecord& record) {
  return wal_writer_.EnqueueCommit(record);
}

Status DurabilityManager::WaitCommit(WalCommitTicket* ticket) {
  return wal_writer_.WaitCommit(ticket);
}

Status DurabilityManager::WriteCheckpoint(const TableStore& store,
                                          uint64_t next_txn_id,
                                          bool truncate_wal) {
  // The fence is the last LSN the writer handed out: the caller guarantees
  // `store` reflects every record up to it (the engine holds its data lock
  // exclusively around this call, so no enqueue can race the capture).
  uint64_t fence_lsn = wal_writer_.last_assigned_lsn();
  PHX_RETURN_IF_ERROR(WriteCheckpointImage(store, next_txn_id, fence_lsn));
  // The crash window: the checkpoint image is durable but the WAL still
  // holds records it subsumes. Recover() must skip those, keyed off the
  // image's fence_lsn.
  if (!truncate_wal) return Status::Ok();
  return TruncateWalToFence(fence_lsn);
}

Status DurabilityManager::WriteCheckpointImage(const TableStore& store,
                                               uint64_t next_txn_id,
                                               uint64_t fence_lsn) {
  StopWatch watch;
  Encoder enc;
  enc.PutU32(kCheckpointMagic);
  enc.PutU32(kCheckpointVersion);
  enc.PutU64(next_txn_id);
  enc.PutU64(fence_lsn);
  store.EncodeSnapshot(&enc);
  size_t bytes = enc.size();
  PHX_RETURN_IF_ERROR(disk_->WriteAtomic(ckpt_file_, enc.Take()));
  // Metrics are recorded per image written, deliberately before any
  // truncation decision: an image without a WAL truncation (the fault-test
  // path, or a background write that raced a newer one) is still a
  // checkpoint the operator should see counted.
  auto* reg = obs::MetricsRegistry::Default();
  reg->GetCounter("storage.checkpoints")->Increment();
  reg->GetCounter("storage.checkpoint.bytes")->Increment(bytes);
  reg->GetHistogram("storage.checkpoint.duration_us")
      ->Record(static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  return Status::Ok();
}

Status DurabilityManager::TruncateWalToFence(uint64_t fence_lsn) {
  return wal_writer_.TruncateUpTo(fence_lsn);
}

Status DurabilityManager::Recover(TableStore* store, RecoveryInfo* info) {
  auto* reg = obs::MetricsRegistry::Default();
  reg->GetCounter("storage.recoveries")->Increment();
  StopWatch watch;
  store->Clear();
  RecoveryInfo local;
  if (disk_->Exists(ckpt_file_)) {
    PHX_ASSIGN_OR_RETURN(std::string bytes, disk_->ReadDurable(ckpt_file_));
    if (!bytes.empty()) {
      Decoder dec(bytes);
      PHX_ASSIGN_OR_RETURN(uint32_t magic, dec.GetU32());
      PHX_ASSIGN_OR_RETURN(uint32_t version, dec.GetU32());
      if (magic != kCheckpointMagic ||
          (version < 1 || version > kCheckpointVersion)) {
        return Status::IoError("bad checkpoint header");
      }
      PHX_ASSIGN_OR_RETURN(local.next_txn_id, dec.GetU64());
      if (version >= 2) {
        PHX_ASSIGN_OR_RETURN(local.fence_lsn, dec.GetU64());
      }
      PHX_RETURN_IF_ERROR(
          store->DecodeSnapshot(&dec, /*with_indexes=*/version >= 3));
      local.had_checkpoint = true;
    }
  }
  reg->GetHistogram("storage.recovery.checkpoint_load_us")
      ->Record(static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  watch.Restart();
  PHX_ASSIGN_OR_RETURN(std::vector<WalCommitRecord> records,
                       WalReader::ReadAll(*disk_, wal_file_, &local.wal_scan));
  if (local.wal_scan.tear_detected) {
    // Log repair: anything logged after unreadable bytes would be invisible
    // to every future recovery (the writer appends at end-of-file), so the
    // tail must be amputated before the next append. Only a corrupt tail
    // (CRC mismatch / undecodable frame) warrants the eager full rewrite
    // and counts as a repair; a clean unforced tail — the expected residue
    // of a crash cutting an unsynced append — is handed to the writer for
    // lazy amputation on its next append, a no-op for read-only restarts.
    if (local.wal_scan.bytes_corrupt > 0) {
      PHX_ASSIGN_OR_RETURN(std::string wal_bytes,
                           disk_->ReadDurable(wal_file_));
      PHX_RETURN_IF_ERROR(disk_->WriteAtomic(
          wal_file_, wal_bytes.substr(0, local.wal_scan.bytes_valid)));
      reg->GetCounter("storage.recovery.wal_tail_repaired")->Increment();
    } else {
      wal_writer_.NoteValidPrefix(local.wal_scan.bytes_valid);
    }
  }
  const uint64_t ckpt_next_txn = local.had_checkpoint ? local.next_txn_id : 0;
  uint64_t max_lsn = 0;
  for (const WalCommitRecord& rec : records) {
    if (rec.lsn > max_lsn) max_lsn = rec.lsn;
    // A record the checkpoint image subsumes must be skipped: replaying it
    // would double-apply its ops — re-create existing tables, re-insert
    // existing rids. v2 images fence on LSN (exact even with transactions
    // spanning the checkpoint); v1 images predate LSNs and fence on txn_id,
    // exact because v1 checkpoints quiesced.
    bool subsumed = local.fence_lsn > 0 ? rec.lsn <= local.fence_lsn
                                        : rec.txn_id < ckpt_next_txn;
    if (subsumed) {
      ++local.records_skipped;
      continue;
    }
    for (const WalOp& op : rec.ops) {
      PHX_RETURN_IF_ERROR(ApplyWalOp(op, store));
      ++local.ops_replayed;
    }
    ++local.records_replayed;
    if (rec.txn_id >= local.next_txn_id) local.next_txn_id = rec.txn_id + 1;
  }
  // Restore LSN continuity: the next record must sort after everything in
  // the durable log *and* after the checkpoint fence, or fenced replay
  // after the next crash would wrongly skip it.
  uint64_t resume_lsn = std::max(max_lsn, local.fence_lsn) + 1;
  wal_writer_.set_next_lsn(resume_lsn);
  reg->GetHistogram("storage.recovery.wal_replay_us")
      ->Record(static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  reg->GetCounter("storage.recovery.records_replayed")
      ->Increment(local.records_replayed);
  reg->GetCounter("storage.recovery.ops_replayed")
      ->Increment(local.ops_replayed);
  reg->GetCounter("storage.recovery.records_skipped")
      ->Increment(local.records_skipped);
  if (info != nullptr) *info = local;
  return Status::Ok();
}

}  // namespace phoenix::storage
