#include "storage/sim_disk.h"

namespace phoenix::storage {

Status SimDisk::Append(const std::string& file, const std::string& data) {
  files_[file].tail += data;
  bytes_written_ += data.size();
  return Status::Ok();
}

Status SimDisk::Sync(const std::string& file) {
  auto it = files_.find(file);
  if (it == files_.end()) return Status::NotFound("no such file: " + file);
  it->second.durable += it->second.tail;
  it->second.tail.clear();
  ++sync_count_;
  return Status::Ok();
}

Status SimDisk::WriteAtomic(const std::string& file, const std::string& data) {
  FileState& f = files_[file];
  f.durable = data;
  f.tail.clear();
  bytes_written_ += data.size();
  ++sync_count_;
  return Status::Ok();
}

Result<std::string> SimDisk::Read(const std::string& file) const {
  auto it = files_.find(file);
  if (it == files_.end()) return Status::NotFound("no such file: " + file);
  return it->second.durable + it->second.tail;
}

Result<std::string> SimDisk::ReadDurable(const std::string& file) const {
  auto it = files_.find(file);
  if (it == files_.end()) return Status::NotFound("no such file: " + file);
  return it->second.durable;
}

bool SimDisk::Exists(const std::string& file) const {
  return files_.count(file) > 0;
}

Status SimDisk::Delete(const std::string& file) {
  auto it = files_.find(file);
  if (it == files_.end()) return Status::NotFound("no such file: " + file);
  files_.erase(it);
  return Status::Ok();
}

std::vector<std::string> SimDisk::List() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, state] : files_) names.push_back(name);
  return names;
}

void SimDisk::Crash() {
  for (auto& [name, state] : files_) state.tail.clear();
}

void SimDisk::CrashWithPartialFlush(double keep_fraction) {
  if (keep_fraction < 0) keep_fraction = 0;
  if (keep_fraction > 1) keep_fraction = 1;
  for (auto& [name, state] : files_) {
    size_t keep = static_cast<size_t>(state.tail.size() * keep_fraction);
    state.durable += state.tail.substr(0, keep);
    state.tail.clear();
  }
}

}  // namespace phoenix::storage
