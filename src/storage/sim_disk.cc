#include "storage/sim_disk.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <thread>
#include <unistd.h>

#include "common/rng.h"

namespace phoenix::storage {

namespace {

constexpr const char* kTempSuffix = ".phxtmp";

bool HasTempSuffix(const std::string& name) {
  const size_t n = std::strlen(kTempSuffix);
  return name.size() >= n && name.compare(name.size() - n, n, kTempSuffix) == 0;
}

Status IoErrno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// Reads a whole regular file; empty Result status on I/O failure.
Result<std::string> SlurpFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoErrno("open " + path);
  std::string out;
  char buf[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return IoErrno("read " + path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status WriteAllAndFsync(int fd, const std::string& data,
                        const std::string& path) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoErrno("write " + path);
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) return IoErrno("fsync " + path);
  return Status::Ok();
}

void FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

SimDisk::SimDisk(const std::string& backing_dir) : backing_dir_(backing_dir) {
  // Boot-time load: every surviving regular file IS durable content — an
  // interrupted WriteAtomic's temp file is the one exception (its rename
  // never happened, so the write never happened).
  DIR* dir = ::opendir(backing_dir.c_str());
  if (dir == nullptr) return;
  while (dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    if (HasTempSuffix(name)) {
      ::unlink(BackingPath(name).c_str());
      continue;
    }
    auto content = SlurpFile(BackingPath(name));
    if (!content.ok()) continue;  // directories, sockets, unreadable junk
    files_[name].durable = content.take();
  }
  ::closedir(dir);
}

std::string SimDisk::BackingPath(const std::string& file) const {
  return backing_dir_ + "/" + file;
}

Status SimDisk::PersistAppend(const std::string& file,
                              const std::string& data) {
  if (backing_dir_.empty() || data.empty()) return Status::Ok();
  const std::string path = BackingPath(file);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return IoErrno("open " + path);
  Status s = WriteAllAndFsync(fd, data, path);
  ::close(fd);
  return s;
}

Status SimDisk::PersistReplace(
    const std::string& file, const std::string& data,
    const std::function<void(const std::string&, int)>& mid) {
  if (backing_dir_.empty()) {
    if (mid) {
      mid(file, 0);
      mid(file, 1);
    }
    return Status::Ok();
  }
  const std::string path = BackingPath(file);
  const std::string tmp = path + kTempSuffix;
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoErrno("open " + tmp);
  Status s = WriteAllAndFsync(fd, data, tmp);
  ::close(fd);
  if (!s.ok()) return s;
  // Stage 0: the new content is durable under the temp name only. A kill
  // here must lose the atomic write entirely (boot-time load skips temps).
  if (mid) mid(file, 0);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return IoErrno("rename " + tmp);
  }
  FsyncDir(backing_dir_);
  // Stage 1: the rename is durable — the atomic write happened.
  if (mid) mid(file, 1);
  return Status::Ok();
}

void SimDisk::PersistUnlink(const std::string& file) {
  if (backing_dir_.empty()) return;
  ::unlink(BackingPath(file).c_str());
  FsyncDir(backing_dir_);
}

Status SimDisk::Append(const std::string& file, const std::string& data) {
  std::lock_guard<std::mutex> lk(mu_);
  files_[file].tail += data;
  bytes_written_ += data.size();
  return Status::Ok();
}

Status SimDisk::Sync(const std::string& file) {
  uint64_t latency_us = 0;
  std::string tail_snapshot;
  uint64_t ordinal = 0;
  DiskHooks hooks;
  bool slow_path = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = files_.find(file);
    if (it == files_.end()) return Status::NotFound("no such file: " + file);
    if (fail_syncs_ > 0) {
      // The flush was rejected; the tail stays volatile (a crash still
      // loses it). Callers must not treat the data as durable.
      --fail_syncs_;
      return Status::IoError("injected sync failure: " + file);
    }
    latency_us = sync_latency_us_;
    slow_path = !backing_dir_.empty() || hooks_.pre_sync || hooks_.mid_sync;
    if (!slow_path) {
      // Historical in-memory fast path: the whole tail becomes durable
      // atomically under the lock.
      it->second.durable += it->second.tail;
      it->second.tail.clear();
      ++sync_count_;
    } else {
      tail_snapshot = it->second.tail;
      ordinal = ++sync_ordinals_[file];
      hooks = hooks_;
    }
  }
  if (slow_path) {
    // Device I/O and hooks run outside the mutex: a hook may block forever
    // (that is the SIGKILL rendezvous), and other files must keep moving.
    // Bytes appended to this file concurrently are NOT covered by this
    // sync, exactly like a real fsync racing a write.
    size_t keep = tail_snapshot.size();
    if (hooks.pre_sync) {
      keep = std::min(keep, hooks.pre_sync(file, ordinal, tail_snapshot.size()));
    }
    Status persisted = PersistAppend(file, tail_snapshot.substr(0, keep));
    if (hooks.mid_sync) hooks.mid_sync(file, ordinal);
    if (!persisted.ok()) return persisted;
    const bool torn = keep < tail_snapshot.size();
    {
      std::lock_guard<std::mutex> lk(mu_);
      FileState& f = files_[file];
      size_t covered = std::min(torn ? keep : tail_snapshot.size(),
                                f.tail.size());
      f.durable += f.tail.substr(0, covered);
      f.tail.erase(0, covered);
      if (!torn) ++sync_count_;
    }
    if (torn) {
      // A short write at the device: only `keep` bytes are durable, the
      // rest stays volatile. Same caller contract as a failed flush.
      return Status::IoError("short write during sync: " + file);
    }
  }
  // Fsync service time, charged outside the mutex: other files (and other
  // appends to this one) proceed while the flush is "in the device".
  if (latency_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
  }
  return Status::Ok();
}

Status SimDisk::WriteAtomic(const std::string& file, const std::string& data) {
  DiskHooks hooks;
  {
    std::lock_guard<std::mutex> lk(mu_);
    hooks = hooks_;
  }
  if (!backing_dir_.empty() || hooks.mid_atomic) {
    // Real (or instrumented) temp+rename protocol, outside the mutex — the
    // mid_atomic hook is a kill window and may never return.
    PHX_RETURN_IF_ERROR(PersistReplace(file, data, hooks.mid_atomic));
  }
  std::lock_guard<std::mutex> lk(mu_);
  FileState& f = files_[file];
  f.durable = data;
  f.tail.clear();
  bytes_written_ += data.size();
  ++sync_count_;
  return Status::Ok();
}

Result<std::string> SimDisk::Read(const std::string& file) const {
  std::lock_guard<std::mutex> lk(mu_);
  ++read_count_;
  auto it = files_.find(file);
  if (it == files_.end()) return Status::NotFound("no such file: " + file);
  return it->second.durable + it->second.tail;
}

Result<std::string> SimDisk::ReadDurable(const std::string& file) const {
  std::lock_guard<std::mutex> lk(mu_);
  ++read_count_;
  auto it = files_.find(file);
  if (it == files_.end()) return Status::NotFound("no such file: " + file);
  return it->second.durable;
}

bool SimDisk::Exists(const std::string& file) const {
  std::lock_guard<std::mutex> lk(mu_);
  return files_.count(file) > 0;
}

Status SimDisk::Delete(const std::string& file) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) return Status::NotFound("no such file: " + file);
  files_.erase(it);
  PersistUnlink(file);
  return Status::Ok();
}

std::vector<std::string> SimDisk::List() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, state] : files_) names.push_back(name);
  return names;
}

void SimDisk::Crash() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, state] : files_) state.tail.clear();
}

void SimDisk::CrashWithPartialFlush(double keep_fraction) {
  std::lock_guard<std::mutex> lk(mu_);
  if (keep_fraction < 0) keep_fraction = 0;
  if (keep_fraction > 1) keep_fraction = 1;
  for (auto& [name, state] : files_) {
    size_t keep = static_cast<size_t>(state.tail.size() * keep_fraction);
    std::string flushed = state.tail.substr(0, keep);
    PersistAppend(name, flushed);  // keep backing == durable (in-proc: no-op)
    state.durable += flushed;
    state.tail.clear();
  }
}

void SimDisk::CrashTorn(const TornCrashSpec& spec) {
  std::lock_guard<std::mutex> lk(mu_);
  Rng rng(spec.seed);
  for (auto& [name, state] : files_) {
    if (state.tail.empty()) continue;
    // Independent per-file keep count, byte-granular: the OS flushed this
    // file's dirty pages some arbitrary distance into the tail.
    size_t keep = static_cast<size_t>(rng.NextBelow(state.tail.size() + 1));
    std::string flushed = state.tail.substr(0, keep);
    if (!flushed.empty() && rng.NextBool(spec.corrupt_prob)) {
      // A half-written sector: one byte of the flushed-but-unsynced region
      // differs from what was logically written.
      size_t at = static_cast<size_t>(rng.NextBelow(flushed.size()));
      flushed[at] = static_cast<char>(
          static_cast<uint8_t>(flushed[at]) ^
          static_cast<uint8_t>(1 + rng.NextBelow(255)));
    }
    PersistAppend(name, flushed);  // keep backing == durable (in-proc: no-op)
    state.durable += flushed;
    state.tail.clear();
  }
}

uint64_t SimDisk::bytes_written() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bytes_written_;
}

uint64_t SimDisk::sync_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sync_count_;
}

uint64_t SimDisk::read_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return read_count_;
}

void SimDisk::InjectSyncFailures(int n) {
  std::lock_guard<std::mutex> lk(mu_);
  fail_syncs_ = n;
}

void SimDisk::set_sync_latency_us(uint64_t us) {
  std::lock_guard<std::mutex> lk(mu_);
  sync_latency_us_ = us;
}

void SimDisk::set_hooks(DiskHooks hooks) {
  std::lock_guard<std::mutex> lk(mu_);
  hooks_ = std::move(hooks);
}

}  // namespace phoenix::storage
