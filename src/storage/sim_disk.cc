#include "storage/sim_disk.h"

#include <chrono>
#include <thread>

#include "common/rng.h"

namespace phoenix::storage {

Status SimDisk::Append(const std::string& file, const std::string& data) {
  std::lock_guard<std::mutex> lk(mu_);
  files_[file].tail += data;
  bytes_written_ += data.size();
  return Status::Ok();
}

Status SimDisk::Sync(const std::string& file) {
  uint64_t latency_us = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = files_.find(file);
    if (it == files_.end()) return Status::NotFound("no such file: " + file);
    if (fail_syncs_ > 0) {
      // The flush was rejected; the tail stays volatile (a crash still
      // loses it). Callers must not treat the data as durable.
      --fail_syncs_;
      return Status::IoError("injected sync failure: " + file);
    }
    it->second.durable += it->second.tail;
    it->second.tail.clear();
    ++sync_count_;
    latency_us = sync_latency_us_;
  }
  // Fsync service time, charged outside the mutex: other files (and other
  // appends to this one) proceed while the flush is "in the device".
  if (latency_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
  }
  return Status::Ok();
}

Status SimDisk::WriteAtomic(const std::string& file, const std::string& data) {
  std::lock_guard<std::mutex> lk(mu_);
  FileState& f = files_[file];
  f.durable = data;
  f.tail.clear();
  bytes_written_ += data.size();
  ++sync_count_;
  return Status::Ok();
}

Result<std::string> SimDisk::Read(const std::string& file) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) return Status::NotFound("no such file: " + file);
  return it->second.durable + it->second.tail;
}

Result<std::string> SimDisk::ReadDurable(const std::string& file) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) return Status::NotFound("no such file: " + file);
  return it->second.durable;
}

bool SimDisk::Exists(const std::string& file) const {
  std::lock_guard<std::mutex> lk(mu_);
  return files_.count(file) > 0;
}

Status SimDisk::Delete(const std::string& file) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) return Status::NotFound("no such file: " + file);
  files_.erase(it);
  return Status::Ok();
}

std::vector<std::string> SimDisk::List() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, state] : files_) names.push_back(name);
  return names;
}

void SimDisk::Crash() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, state] : files_) state.tail.clear();
}

void SimDisk::CrashWithPartialFlush(double keep_fraction) {
  std::lock_guard<std::mutex> lk(mu_);
  if (keep_fraction < 0) keep_fraction = 0;
  if (keep_fraction > 1) keep_fraction = 1;
  for (auto& [name, state] : files_) {
    size_t keep = static_cast<size_t>(state.tail.size() * keep_fraction);
    state.durable += state.tail.substr(0, keep);
    state.tail.clear();
  }
}

void SimDisk::CrashTorn(const TornCrashSpec& spec) {
  std::lock_guard<std::mutex> lk(mu_);
  Rng rng(spec.seed);
  for (auto& [name, state] : files_) {
    if (state.tail.empty()) continue;
    // Independent per-file keep count, byte-granular: the OS flushed this
    // file's dirty pages some arbitrary distance into the tail.
    size_t keep = static_cast<size_t>(rng.NextBelow(state.tail.size() + 1));
    std::string flushed = state.tail.substr(0, keep);
    if (!flushed.empty() && rng.NextBool(spec.corrupt_prob)) {
      // A half-written sector: one byte of the flushed-but-unsynced region
      // differs from what was logically written.
      size_t at = static_cast<size_t>(rng.NextBelow(flushed.size()));
      flushed[at] = static_cast<char>(
          static_cast<uint8_t>(flushed[at]) ^
          static_cast<uint8_t>(1 + rng.NextBelow(255)));
    }
    state.durable += flushed;
    state.tail.clear();
  }
}

uint64_t SimDisk::bytes_written() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bytes_written_;
}

uint64_t SimDisk::sync_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sync_count_;
}

void SimDisk::InjectSyncFailures(int n) {
  std::lock_guard<std::mutex> lk(mu_);
  fail_syncs_ = n;
}

void SimDisk::set_sync_latency_us(uint64_t us) {
  std::lock_guard<std::mutex> lk(mu_);
  sync_latency_us_ = us;
}

}  // namespace phoenix::storage
