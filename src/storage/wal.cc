#include "storage/wal.h"

#include <chrono>

#include "common/rng.h"
#include "obs/metrics.h"

namespace phoenix::storage {

WalOp WalOp::CreateTable(std::string table, Schema schema,
                         std::vector<int> pk_columns) {
  WalOp op;
  op.kind = WalOpKind::kCreateTable;
  op.table = std::move(table);
  op.schema = std::move(schema);
  op.columns = std::move(pk_columns);
  return op;
}

WalOp WalOp::DropTable(std::string table) {
  WalOp op;
  op.kind = WalOpKind::kDropTable;
  op.table = std::move(table);
  return op;
}

WalOp WalOp::Insert(std::string table, uint64_t rid, Row row) {
  WalOp op;
  op.kind = WalOpKind::kInsert;
  op.table = std::move(table);
  op.rid = rid;
  op.row = std::move(row);
  return op;
}

WalOp WalOp::Delete(std::string table, uint64_t rid) {
  WalOp op;
  op.kind = WalOpKind::kDelete;
  op.table = std::move(table);
  op.rid = rid;
  return op;
}

WalOp WalOp::Update(std::string table, uint64_t rid, Row row) {
  WalOp op;
  op.kind = WalOpKind::kUpdate;
  op.table = std::move(table);
  op.rid = rid;
  op.row = std::move(row);
  return op;
}

WalOp WalOp::CreateIndex(std::string table, std::string index_name,
                         std::vector<int> columns) {
  WalOp op;
  op.kind = WalOpKind::kCreateIndex;
  op.table = std::move(table);
  op.index_name = std::move(index_name);
  op.columns = std::move(columns);
  return op;
}

WalOp WalOp::DropIndex(std::string table, std::string index_name) {
  WalOp op;
  op.kind = WalOpKind::kDropIndex;
  op.table = std::move(table);
  op.index_name = std::move(index_name);
  return op;
}

void EncodeWalOp(const WalOp& op, Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(op.kind));
  enc->PutString(op.table);
  switch (op.kind) {
    case WalOpKind::kCreateTable:
      enc->PutSchema(op.schema);
      enc->PutU32(static_cast<uint32_t>(op.columns.size()));
      for (int c : op.columns) enc->PutI32(c);
      break;
    case WalOpKind::kDropTable:
      break;
    case WalOpKind::kInsert:
    case WalOpKind::kUpdate:
      enc->PutU64(op.rid);
      enc->PutRow(op.row);
      break;
    case WalOpKind::kDelete:
      enc->PutU64(op.rid);
      break;
    case WalOpKind::kCreateIndex:
      enc->PutString(op.index_name);
      enc->PutU32(static_cast<uint32_t>(op.columns.size()));
      for (int c : op.columns) enc->PutI32(c);
      break;
    case WalOpKind::kDropIndex:
      enc->PutString(op.index_name);
      break;
  }
}

Result<WalOp> DecodeWalOp(Decoder* dec) {
  WalOp op;
  PHX_ASSIGN_OR_RETURN(uint8_t kind_raw, dec->GetU8());
  if (kind_raw > static_cast<uint8_t>(WalOpKind::kDropIndex)) {
    return Status::IoError("bad WAL op kind");
  }
  op.kind = static_cast<WalOpKind>(kind_raw);
  PHX_ASSIGN_OR_RETURN(op.table, dec->GetString());
  switch (op.kind) {
    case WalOpKind::kCreateTable: {
      PHX_ASSIGN_OR_RETURN(op.schema, dec->GetSchema());
      PHX_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
      for (uint32_t i = 0; i < n; ++i) {
        PHX_ASSIGN_OR_RETURN(int32_t c, dec->GetI32());
        op.columns.push_back(c);
      }
      break;
    }
    case WalOpKind::kDropTable:
      break;
    case WalOpKind::kInsert:
    case WalOpKind::kUpdate: {
      PHX_ASSIGN_OR_RETURN(op.rid, dec->GetU64());
      PHX_ASSIGN_OR_RETURN(op.row, dec->GetRow());
      break;
    }
    case WalOpKind::kDelete: {
      PHX_ASSIGN_OR_RETURN(op.rid, dec->GetU64());
      break;
    }
    case WalOpKind::kCreateIndex: {
      PHX_ASSIGN_OR_RETURN(op.index_name, dec->GetString());
      PHX_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
      for (uint32_t i = 0; i < n; ++i) {
        PHX_ASSIGN_OR_RETURN(int32_t c, dec->GetI32());
        op.columns.push_back(c);
      }
      break;
    }
    case WalOpKind::kDropIndex: {
      PHX_ASSIGN_OR_RETURN(op.index_name, dec->GetString());
      break;
    }
  }
  return op;
}

uint32_t WalChecksum(const std::string& payload) {
  uint32_t h = 2166136261u;
  for (char c : payload) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

namespace {

/// Frames one record under the LSN the writer just assigned it. The lsn is
/// the first payload field so checkpoint truncation can find the fence cut
/// by decoding only a u64 per frame, never the full op list.
std::string FrameRecord(const WalCommitRecord& record, uint64_t lsn) {
  Encoder payload;
  payload.PutU64(lsn);
  payload.PutU64(record.txn_id);
  payload.PutU32(static_cast<uint32_t>(record.ops.size()));
  for (const WalOp& op : record.ops) EncodeWalOp(op, &payload);
  Encoder frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(WalChecksum(payload.data()));
  frame.PutBytes(payload.data().data(), payload.size());
  return frame.Take();
}

void CountAppend(size_t bytes) {
  auto* reg = obs::MetricsRegistry::Default();
  reg->GetCounter("storage.wal.appends")->Increment();
  reg->GetCounter("storage.wal.bytes")->Increment(bytes);
}

}  // namespace

WalWriterConfig WalWriterConfig::FromOptions(const phoenix::Options& opts) {
  WalWriterConfig c;
  c.group_commit = opts.group_commit;
  c.dedicated_flusher = opts.gc_dedicated_flusher;
  c.max_wait_us = opts.gc_max_wait_us;
  c.max_batch_bytes = opts.gc_max_batch_bytes;
  return c;
}

/// One group-commit batch. Joiners append their frames under the writer's
/// mutex while the batch is open; once sealed the byte buffer is immutable
/// (only the flusher reads it, outside the lock). done/status are published
/// under the writer's mutex.
struct WalBatch {
  std::string bytes;
  uint64_t records = 0;
  std::chrono::steady_clock::time_point opened_at;
  bool done = false;
  Status status;
};

WalWriter::WalWriter(SimDisk* disk, std::string file, WalWriterConfig config)
    : disk_(disk), file_(std::move(file)), config_(config) {
  if (config_.group_commit && config_.dedicated_flusher) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
}

WalWriter::~WalWriter() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  // Records enqueued but never waited on die with the writer, exactly like
  // an unsynced tail dies with the process. On an orderly shutdown none
  // exist: every committer redeems its ticket before the engine lets go of
  // the writer. A destructor must not add durability points — syncing here
  // would let "crashed" state survive SimDisk::Crash() in fault tests.
}

void WalWriter::set_before_sync_hook(std::function<bool()> hook) {
  std::lock_guard<std::mutex> lk(mu_);
  before_sync_hook_ = std::move(hook);
}

Status WalWriter::SyncCounted() {
  Status st = disk_->Sync(file_);
  auto* reg = obs::MetricsRegistry::Default();
  // Count the force only once it actually happened: a failed sync left
  // nothing durable and must not inflate the durability-point counter.
  if (st.ok()) {
    reg->GetCounter("storage.wal.syncs")->Increment();
  } else {
    reg->GetCounter("storage.wal.sync_failures")->Increment();
  }
  return st;
}

Status WalWriter::AppendCommit(const WalCommitRecord& record) {
  WalCommitTicket ticket = EnqueueCommit(record);
  return WaitCommit(&ticket);
}

WalCommitTicket WalWriter::EnqueueCommit(const WalCommitRecord& record) {
  // Framing happens under mu_ because the LSN is stamped into the frame:
  // LSN assignment order must equal byte order in the log (and in a batch),
  // which only the lock can guarantee.
  WalCommitTicket ticket;
  if (!config_.group_commit) {
    std::lock_guard<std::mutex> lk(mu_);
    ticket.resolved = true;
    ticket.status = MaybeAmputateStaleTailLocked();
    if (!ticket.status.ok()) return ticket;
    std::string frame = FrameRecord(record, next_lsn_++);
    CountAppend(frame.size());
    ticket.status = disk_->Append(file_, std::move(frame));
    if (ticket.status.ok()) ticket.status = SyncCounted();
    return ticket;
  }
  std::lock_guard<std::mutex> lk(mu_);
  std::string frame = FrameRecord(record, next_lsn_++);
  CountAppend(frame.size());
  if (open_ == nullptr) {
    open_ = std::make_shared<WalBatch>();
    open_->opened_at = std::chrono::steady_clock::now();
  }
  open_->bytes += frame;
  ++open_->records;
  ticket.batch = open_;
  // Wake the flusher / a waiting leader: the batch may just have become
  // ripe (size threshold), and a flusher idling on an empty pipeline needs
  // to learn a batch now exists.
  cv_.notify_all();
  return ticket;
}

bool WalWriter::OpenBatchRipeLocked() const {
  if (open_ == nullptr || open_->records == 0) return false;
  if (stop_) return true;
  if (open_->bytes.size() >= config_.max_batch_bytes) return true;
  return std::chrono::steady_clock::now() >=
         open_->opened_at + std::chrono::microseconds(config_.max_wait_us);
}

void WalWriter::SealOpenBatchLocked() {
  sealed_.push_back(std::move(open_));
  open_ = nullptr;
}

void WalWriter::FlushFrontLocked(std::unique_lock<std::mutex>& lk) {
  std::shared_ptr<WalBatch> batch = sealed_.front();
  sealed_.pop_front();
  // A stale recovery tail must be cut before the batch's bytes land on top
  // of it; on failure the whole batch resolves with the error (nothing was
  // appended, so no commit in it is ever acked).
  Status amputate = MaybeAmputateStaleTailLocked();
  if (!amputate.ok()) {
    batch->status = std::move(amputate);
    batch->done = true;
    cv_.notify_all();
    return;
  }
  flush_in_progress_ = true;
  std::function<bool()> hook = before_sync_hook_;
  lk.unlock();
  // The coalesced write + the batch's single force. Sealed batches are
  // immutable, so reading bytes outside the lock is safe.
  Status st = disk_->Append(file_, batch->bytes);
  if (st.ok()) {
    if (hook != nullptr && !hook()) {
      st = Status::IoError("group-commit batch lost before sync");
    } else {
      st = SyncCounted();
    }
  }
  auto* reg = obs::MetricsRegistry::Default();
  reg->GetCounter("storage.wal.group_commit.batches")->Increment();
  reg->GetHistogram("storage.wal.group_commit.batch_records",
                    {1, 2, 4, 8, 16, 32, 64, 128})
      ->Record(batch->records);
  reg->GetHistogram("storage.wal.group_commit.batch_bytes",
                    {256, 1024, 4096, 16384, 65536, 262144, 1048576})
      ->Record(batch->bytes.size());
  if (st.ok() && batch->records > 0) {
    reg->GetCounter("storage.wal.group_commit.syncs_saved")
        ->Increment(batch->records - 1);
  }
  lk.lock();
  batch->status = std::move(st);
  batch->done = true;
  flush_in_progress_ = false;
  cv_.notify_all();
}

Status WalWriter::WaitCommit(WalCommitTicket* ticket) {
  if (ticket == nullptr || !*ticket) {
    return Status::Internal("WaitCommit on an empty commit ticket");
  }
  if (ticket->resolved) return ticket->status;
  StopWatch watch;
  std::shared_ptr<WalBatch> b = std::move(ticket->batch);
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (config_.dedicated_flusher) {
      cv_.wait(lk, [&] { return b->done; });
    } else {
      // Leader mode: whichever waiter finds the device free drives the
      // flush — first any older sealed batch (FIFO order), then, once its
      // wait window has run out, its own. Progress never depends on a
      // thread outside the waiter set.
      while (!b->done) {
        if (flush_in_progress_) {
          cv_.wait(lk);
          continue;
        }
        if (!sealed_.empty()) {
          FlushFrontLocked(lk);
          continue;
        }
        if (OpenBatchRipeLocked()) {
          SealOpenBatchLocked();
          continue;
        }
        // b is (in) the open batch and its window is still running: sleep
        // until the deadline or a joiner makes it ripe early.
        cv_.wait_until(lk, b->opened_at +
                               std::chrono::microseconds(config_.max_wait_us));
      }
    }
    ticket->status = b->status;
  }
  ticket->resolved = true;
  obs::MetricsRegistry::Default()
      ->GetHistogram("storage.wal.group_commit.wait_us",
                     obs::Histogram::LatencyBoundsUs())
      ->Record(static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  return ticket->status;
}

void WalWriter::DrainLocked(std::unique_lock<std::mutex>& lk) {
  if (open_ != nullptr) {
    if (open_->records > 0) {
      SealOpenBatchLocked();
    } else {
      open_ = nullptr;
    }
  }
  while (flush_in_progress_ || !sealed_.empty()) {
    if (!flush_in_progress_ && !sealed_.empty()) {
      FlushFrontLocked(lk);
    } else {
      cv_.wait(lk);
    }
  }
}

Status WalWriter::AppendCommitNoSync(const WalCommitRecord& record) {
  std::unique_lock<std::mutex> lk(mu_);
  // Force pending batches first so on-disk frame order stays append order
  // even when an unforced append races an in-flight batch.
  if (config_.group_commit) DrainLocked(lk);
  PHX_RETURN_IF_ERROR(MaybeAmputateStaleTailLocked());
  std::string frame = FrameRecord(record, next_lsn_++);
  CountAppend(frame.size());
  return disk_->Append(file_, std::move(frame));
}

Status WalWriter::Reset() {
  std::unique_lock<std::mutex> lk(mu_);
  // Every enqueued commit gets a real force status before the truncation;
  // the checkpoint that triggered the reset already subsumes their effects,
  // so forcing first is safe and keeps tickets from dangling.
  if (config_.group_commit) DrainLocked(lk);
  stale_tail_pending_ = false;  // superseded: the whole file goes away
  return disk_->WriteAtomic(file_, "");
}

Status WalWriter::TruncateUpTo(uint64_t fence_lsn) {
  std::unique_lock<std::mutex> lk(mu_);
  // Same drain rule as Reset(): every enqueued commit is forced (its waiter
  // gets the real sync status) before the cut is computed, so the scan sees
  // a stable durable file and no batch is ever half-amputated.
  if (config_.group_commit) DrainLocked(lk);
  PHX_RETURN_IF_ERROR(MaybeAmputateStaleTailLocked());
  if (!disk_->Exists(file_)) return Status::Ok();
  PHX_ASSIGN_OR_RETURN(std::string bytes, disk_->ReadDurable(file_));
  // LSN order == frame order, so the fenced prefix is contiguous: scan until
  // the first frame whose lsn exceeds the fence (or an invalid frame — crash
  // residue is preserved verbatim for recovery to classify, never dropped
  // here). Only the lsn (first payload field) needs decoding per frame.
  const char* data = bytes.data();
  size_t size = bytes.size();
  size_t pos = 0;
  while (pos + 8 <= size) {
    Decoder head(data + pos, 8);
    uint32_t len = head.GetU32().value();
    uint32_t crc = head.GetU32().value();
    if (pos + 8 + len > size) break;
    std::string payload(data + pos + 8, len);
    if (WalChecksum(payload) != crc) break;
    Decoder body(payload);
    auto lsn_res = body.GetU64();
    if (!lsn_res.ok() || lsn_res.value() > fence_lsn) break;
    pos += 8 + len;
  }
  if (pos == 0) return Status::Ok();  // nothing at or below the fence
  return disk_->WriteAtomic(file_, bytes.substr(pos));
}

uint64_t WalWriter::last_assigned_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_lsn_ - 1;
}

void WalWriter::set_next_lsn(uint64_t lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  next_lsn_ = lsn;
}

void WalWriter::NoteValidPrefix(uint64_t bytes_valid) {
  std::lock_guard<std::mutex> lk(mu_);
  stale_tail_pending_ = true;
  stale_tail_prefix_ = bytes_valid;
}

Status WalWriter::MaybeAmputateStaleTailLocked() {
  if (!stale_tail_pending_) return Status::Ok();
  PHX_ASSIGN_OR_RETURN(std::string bytes, disk_->ReadDurable(file_));
  if (bytes.size() > stale_tail_prefix_) {
    // The early return above keeps the pending mark on failure: the next
    // append retries the cut instead of landing on top of garbage.
    PHX_RETURN_IF_ERROR(
        disk_->WriteAtomic(file_, bytes.substr(0, stale_tail_prefix_)));
    obs::MetricsRegistry::Default()
        ->GetCounter("storage.wal.stale_tail_amputations")
        ->Increment();
  }
  stale_tail_pending_ = false;
  return Status::Ok();
}

void WalWriter::FlusherLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (!sealed_.empty()) {
      // Reset()/Drain can also be mid-flush; only one flusher at a time.
      if (!flush_in_progress_) {
        FlushFrontLocked(lk);
      } else {
        cv_.wait(lk);
      }
      continue;
    }
    if (OpenBatchRipeLocked()) {
      SealOpenBatchLocked();
      continue;
    }
    if (stop_) break;  // pipeline empty (or batch already being drained)
    if (open_ != nullptr && open_->records > 0) {
      cv_.wait_until(lk, open_->opened_at +
                             std::chrono::microseconds(config_.max_wait_us));
    } else {
      cv_.wait(lk);
    }
  }
}

Status WalReader::ScanBytes(const std::string& bytes, WalScanStats* stats,
                            const RecordFn& fn, const SkipFn& skip) {
  WalScanStats local;
  size_t pos = 0;
  const char* data = bytes.data();
  size_t size = bytes.size();
  local.bytes_total = size;
  // Why the tail stopped scanning: an incomplete frame is the expected
  // residue of an unforced append cut by a crash; a complete frame that
  // fails its CRC or does not decode is real corruption.
  bool corrupt_tail = false;
  while (pos + 8 <= size) {
    Decoder head(data + pos, 8);
    uint32_t len = head.GetU32().value();
    uint32_t crc = head.GetU32().value();
    // A flipped length byte can claim more bytes than exist (torn frame) —
    // or fewer, in which case the CRC over the short slice rejects it.
    if (pos + 8 + len > size) break;
    std::string payload(data + pos + 8, len);
    if (WalChecksum(payload) != crc) {
      corrupt_tail = true;
      break;
    }
    Decoder body(payload);
    WalCommitRecord rec;
    auto lsn_res = body.GetU64();
    auto txn_res = lsn_res.ok() ? body.GetU64() : Result<uint64_t>(lsn_res.status());
    auto nops_res = txn_res.ok() ? body.GetU32() : Result<uint32_t>(txn_res.status());
    if (!lsn_res.ok() || !txn_res.ok() || !nops_res.ok()) {
      corrupt_tail = true;
      break;
    }
    rec.lsn = lsn_res.value();
    rec.txn_id = txn_res.value();
    if (skip != nullptr && skip(rec.lsn, rec.txn_id)) {
      // Subsumed record: the frame is complete and CRC-valid, so integrity
      // is already established — its ops never need decoding.
      ++local.records;
      pos += 8 + len;
      continue;
    }
    bool ok = true;
    for (uint32_t i = 0; i < nops_res.value(); ++i) {
      auto op_res = DecodeWalOp(&body);
      if (!op_res.ok()) {
        ok = false;
        break;
      }
      rec.ops.push_back(op_res.take());
    }
    if (!ok) {
      corrupt_tail = true;
      break;
    }
    ++local.records;
    pos += 8 + len;
    local.bytes_valid = pos;
    Status st = fn(std::move(rec));
    if (!st.ok()) {
      // Aborted by the consumer (e.g. a replay error): report progress so
      // far, but skip tear classification — the scan never reached the
      // point where "what stopped us" is about the log's bytes.
      if (stats != nullptr) *stats = local;
      return st;
    }
  }
  local.bytes_valid = pos;
  local.tear_detected = pos < size;
  if (local.tear_detected) {
    uint64_t dropped = size - pos;
    if (corrupt_tail) {
      local.bytes_corrupt = dropped;
    } else {
      local.bytes_unforced_tail = dropped;
    }
    auto* reg = obs::MetricsRegistry::Default();
    reg->GetCounter("storage.wal.tears_detected")->Increment();
    reg->GetCounter(corrupt_tail ? "storage.wal.torn_bytes_dropped"
                                 : "storage.wal.unforced_tail_bytes_dropped")
        ->Increment(dropped);
  }
  if (stats != nullptr) *stats = local;
  return Status::Ok();
}

Status WalReader::Scan(const SimDisk& disk, const std::string& file,
                       WalScanStats* stats, const RecordFn& fn,
                       const SkipFn& skip) {
  if (!disk.Exists(file)) {
    if (stats != nullptr) *stats = WalScanStats{};
    return Status::Ok();
  }
  PHX_ASSIGN_OR_RETURN(std::string bytes, disk.ReadDurable(file));
  return ScanBytes(bytes, stats, fn, skip);
}

Result<std::vector<WalCommitRecord>> WalReader::ReadAll(
    const SimDisk& disk, const std::string& file, WalScanStats* stats) {
  std::vector<WalCommitRecord> records;
  PHX_RETURN_IF_ERROR(Scan(disk, file, stats,
                           [&records](WalCommitRecord&& rec) {
                             records.push_back(std::move(rec));
                             return Status::Ok();
                           }));
  return records;
}

}  // namespace phoenix::storage
