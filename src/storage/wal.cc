#include "storage/wal.h"

#include "obs/metrics.h"

namespace phoenix::storage {

WalOp WalOp::CreateTable(std::string table, Schema schema,
                         std::vector<int> pk_columns) {
  WalOp op;
  op.kind = WalOpKind::kCreateTable;
  op.table = std::move(table);
  op.schema = std::move(schema);
  op.pk_columns = std::move(pk_columns);
  return op;
}

WalOp WalOp::DropTable(std::string table) {
  WalOp op;
  op.kind = WalOpKind::kDropTable;
  op.table = std::move(table);
  return op;
}

WalOp WalOp::Insert(std::string table, uint64_t rid, Row row) {
  WalOp op;
  op.kind = WalOpKind::kInsert;
  op.table = std::move(table);
  op.rid = rid;
  op.row = std::move(row);
  return op;
}

WalOp WalOp::Delete(std::string table, uint64_t rid) {
  WalOp op;
  op.kind = WalOpKind::kDelete;
  op.table = std::move(table);
  op.rid = rid;
  return op;
}

WalOp WalOp::Update(std::string table, uint64_t rid, Row row) {
  WalOp op;
  op.kind = WalOpKind::kUpdate;
  op.table = std::move(table);
  op.rid = rid;
  op.row = std::move(row);
  return op;
}

void EncodeWalOp(const WalOp& op, Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(op.kind));
  enc->PutString(op.table);
  switch (op.kind) {
    case WalOpKind::kCreateTable:
      enc->PutSchema(op.schema);
      enc->PutU32(static_cast<uint32_t>(op.pk_columns.size()));
      for (int c : op.pk_columns) enc->PutI32(c);
      break;
    case WalOpKind::kDropTable:
      break;
    case WalOpKind::kInsert:
    case WalOpKind::kUpdate:
      enc->PutU64(op.rid);
      enc->PutRow(op.row);
      break;
    case WalOpKind::kDelete:
      enc->PutU64(op.rid);
      break;
  }
}

Result<WalOp> DecodeWalOp(Decoder* dec) {
  WalOp op;
  PHX_ASSIGN_OR_RETURN(uint8_t kind_raw, dec->GetU8());
  if (kind_raw > static_cast<uint8_t>(WalOpKind::kUpdate)) {
    return Status::IoError("bad WAL op kind");
  }
  op.kind = static_cast<WalOpKind>(kind_raw);
  PHX_ASSIGN_OR_RETURN(op.table, dec->GetString());
  switch (op.kind) {
    case WalOpKind::kCreateTable: {
      PHX_ASSIGN_OR_RETURN(op.schema, dec->GetSchema());
      PHX_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
      for (uint32_t i = 0; i < n; ++i) {
        PHX_ASSIGN_OR_RETURN(int32_t c, dec->GetI32());
        op.pk_columns.push_back(c);
      }
      break;
    }
    case WalOpKind::kDropTable:
      break;
    case WalOpKind::kInsert:
    case WalOpKind::kUpdate: {
      PHX_ASSIGN_OR_RETURN(op.rid, dec->GetU64());
      PHX_ASSIGN_OR_RETURN(op.row, dec->GetRow());
      break;
    }
    case WalOpKind::kDelete: {
      PHX_ASSIGN_OR_RETURN(op.rid, dec->GetU64());
      break;
    }
  }
  return op;
}

uint32_t WalChecksum(const std::string& payload) {
  uint32_t h = 2166136261u;
  for (char c : payload) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

namespace {

std::string FrameRecord(const WalCommitRecord& record) {
  Encoder payload;
  payload.PutU64(record.txn_id);
  payload.PutU32(static_cast<uint32_t>(record.ops.size()));
  for (const WalOp& op : record.ops) EncodeWalOp(op, &payload);
  Encoder frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(WalChecksum(payload.data()));
  frame.PutBytes(payload.data().data(), payload.size());
  return frame.Take();
}

}  // namespace

namespace {

void CountAppend(size_t bytes) {
  auto* reg = obs::MetricsRegistry::Default();
  reg->GetCounter("storage.wal.appends")->Increment();
  reg->GetCounter("storage.wal.bytes")->Increment(bytes);
}

}  // namespace

Status WalWriter::AppendCommit(const WalCommitRecord& record) {
  std::string frame = FrameRecord(record);
  CountAppend(frame.size());
  std::lock_guard<std::mutex> lk(mu_);
  PHX_RETURN_IF_ERROR(disk_->Append(file_, std::move(frame)));
  obs::MetricsRegistry::Default()->GetCounter("storage.wal.syncs")->Increment();
  return disk_->Sync(file_);
}

Status WalWriter::AppendCommitNoSync(const WalCommitRecord& record) {
  std::string frame = FrameRecord(record);
  CountAppend(frame.size());
  std::lock_guard<std::mutex> lk(mu_);
  return disk_->Append(file_, std::move(frame));
}

Status WalWriter::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  return disk_->WriteAtomic(file_, "");
}

Result<std::vector<WalCommitRecord>> WalReader::ReadAll(
    const SimDisk& disk, const std::string& file, WalScanStats* stats) {
  std::vector<WalCommitRecord> records;
  WalScanStats local;
  if (!disk.Exists(file)) {
    if (stats != nullptr) *stats = local;
    return records;
  }
  PHX_ASSIGN_OR_RETURN(std::string bytes, disk.ReadDurable(file));
  size_t pos = 0;
  const char* data = bytes.data();
  size_t size = bytes.size();
  local.bytes_total = size;
  while (pos + 8 <= size) {
    Decoder head(data + pos, 8);
    uint32_t len = head.GetU32().value();
    uint32_t crc = head.GetU32().value();
    // A flipped length byte can claim more bytes than exist (torn frame) —
    // or fewer, in which case the CRC over the short slice rejects it.
    if (pos + 8 + len > size) break;
    std::string payload(data + pos + 8, len);
    if (WalChecksum(payload) != crc) break;
    Decoder body(payload);
    WalCommitRecord rec;
    auto txn_res = body.GetU64();
    auto nops_res = txn_res.ok() ? body.GetU32() : Result<uint32_t>(txn_res.status());
    if (!txn_res.ok() || !nops_res.ok()) break;
    rec.txn_id = txn_res.value();
    bool ok = true;
    for (uint32_t i = 0; i < nops_res.value(); ++i) {
      auto op_res = DecodeWalOp(&body);
      if (!op_res.ok()) {
        ok = false;
        break;
      }
      rec.ops.push_back(op_res.take());
    }
    if (!ok) break;
    records.push_back(std::move(rec));
    pos += 8 + len;
  }
  local.bytes_valid = pos;
  local.records = records.size();
  local.tear_detected = pos < size;
  if (local.tear_detected) {
    auto* reg = obs::MetricsRegistry::Default();
    reg->GetCounter("storage.wal.tears_detected")->Increment();
    reg->GetCounter("storage.wal.torn_bytes_dropped")->Increment(size - pos);
  }
  if (stats != nullptr) *stats = local;
  return records;
}

}  // namespace phoenix::storage
