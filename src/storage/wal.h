#ifndef PHOENIX_STORAGE_WAL_H_
#define PHOENIX_STORAGE_WAL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/schema.h"
#include "common/status.h"
#include "storage/sim_disk.h"

namespace phoenix::storage {

/// Logical redo operations. The engine uses a no-steal buffer policy, so the
/// log never needs undo records: a transaction's ops are written as one
/// atomic commit record at commit time, after which they are guaranteed
/// redo-able.
enum class WalOpKind : uint8_t {
  kCreateTable = 0,
  kDropTable = 1,
  kInsert = 2,
  kDelete = 3,
  kUpdate = 4,
};

struct WalOp {
  WalOpKind kind = WalOpKind::kInsert;
  std::string table;
  // kCreateTable only:
  Schema schema;
  std::vector<int> pk_columns;
  // kInsert/kDelete/kUpdate:
  uint64_t rid = 0;
  Row row;  // new row for insert/update; unused for delete/drop.

  static WalOp CreateTable(std::string table, Schema schema,
                           std::vector<int> pk_columns);
  static WalOp DropTable(std::string table);
  static WalOp Insert(std::string table, uint64_t rid, Row row);
  static WalOp Delete(std::string table, uint64_t rid);
  static WalOp Update(std::string table, uint64_t rid, Row row);
};

/// One committed transaction: all of its ops, applied atomically at replay.
struct WalCommitRecord {
  uint64_t txn_id = 0;
  std::vector<WalOp> ops;
};

void EncodeWalOp(const WalOp& op, Encoder* enc);
Result<WalOp> DecodeWalOp(Decoder* dec);

/// Appends framed, checksummed commit records to a SimDisk file and forces
/// them durable before reporting success (write-ahead rule).
///
/// Thread-safe: an internal mutex makes each record's append+sync atomic, so
/// concurrent committers can never interleave frame bytes in the log.
class WalWriter {
 public:
  WalWriter(SimDisk* disk, std::string file)
      : disk_(disk), file_(std::move(file)) {}

  /// Frames, checksums, appends, and Sync()s one commit record.
  Status AppendCommit(const WalCommitRecord& record);

  /// Appends without syncing (used to test loss of unforced commits).
  Status AppendCommitNoSync(const WalCommitRecord& record);

  /// Truncates the log (after a checkpoint made its contents redundant).
  Status Reset();

  const std::string& file() const { return file_; }

 private:
  std::mutex mu_;
  SimDisk* disk_;
  std::string file_;
};

/// What a WAL scan saw — lets recovery report (and tests assert) exactly how
/// much of the log survived a torn-tail crash instead of silently eating it.
struct WalScanStats {
  uint64_t bytes_total = 0;  ///< durable log bytes on disk
  uint64_t bytes_valid = 0;  ///< bytes consumed by complete, CRC-valid frames
  uint64_t records = 0;      ///< complete records decoded
  bool tear_detected = false;  ///< trailing bytes were torn/corrupt
};

/// Reads every complete, checksum-valid commit record; stops at the first
/// torn or corrupt frame (the crash-truncated tail). A frame is accepted
/// only if its header is whole, its declared length fits in the remaining
/// bytes, its checksum matches, and its payload decodes completely — a tear
/// at any byte (mid-header, mid-payload, or a flipped CRC/length byte)
/// yields the longest valid prefix, never a partial record.
class WalReader {
 public:
  static Result<std::vector<WalCommitRecord>> ReadAll(
      const SimDisk& disk, const std::string& file,
      WalScanStats* stats = nullptr);
};

/// FNV-1a over the payload — cheap torn-write detector for WAL frames.
uint32_t WalChecksum(const std::string& payload);

}  // namespace phoenix::storage

#endif  // PHOENIX_STORAGE_WAL_H_
