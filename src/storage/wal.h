#ifndef PHOENIX_STORAGE_WAL_H_
#define PHOENIX_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/codec.h"
#include "common/options.h"
#include "common/schema.h"
#include "common/status.h"
#include "storage/sim_disk.h"

namespace phoenix::storage {

/// Logical redo operations. The engine uses a no-steal buffer policy, so the
/// log never needs undo records: a transaction's ops are written as one
/// atomic commit record at commit time, after which they are guaranteed
/// redo-able.
enum class WalOpKind : uint8_t {
  kCreateTable = 0,
  kDropTable = 1,
  kInsert = 2,
  kDelete = 3,
  kUpdate = 4,
  kCreateIndex = 5,
  kDropIndex = 6,
};

struct WalOp {
  WalOpKind kind = WalOpKind::kInsert;
  std::string table;
  // kCreateTable only:
  Schema schema;
  /// Column ordinals. Purpose depends on kind: the primary-key columns for
  /// kCreateTable, the key columns for kCreateIndex. (One field, two roles —
  /// the encode/decode layout is identical and replay routes on `kind`.)
  std::vector<int> columns;
  // kInsert/kDelete/kUpdate:
  uint64_t rid = 0;
  Row row;  // new row for insert/update; unused for delete/drop.
  // kCreateIndex/kDropIndex:
  std::string index_name;

  static WalOp CreateTable(std::string table, Schema schema,
                           std::vector<int> pk_columns);
  static WalOp DropTable(std::string table);
  static WalOp Insert(std::string table, uint64_t rid, Row row);
  static WalOp Delete(std::string table, uint64_t rid);
  static WalOp Update(std::string table, uint64_t rid, Row row);
  static WalOp CreateIndex(std::string table, std::string index_name,
                           std::vector<int> columns);
  static WalOp DropIndex(std::string table, std::string index_name);
};

/// One committed transaction: all of its ops, applied atomically at replay.
struct WalCommitRecord {
  uint64_t txn_id = 0;
  std::vector<WalOp> ops;
  /// Log sequence number. Assigned by the WalWriter when the record enters
  /// the log (callers leave it 0); strictly increasing in commit order, so
  /// on-disk frame order == LSN order. Checkpoints fence replay on it: a
  /// checkpoint image taken at fence F subsumes exactly the records with
  /// lsn <= F, regardless of which transactions were still active — the
  /// txn-id comparison the old quiescent checkpoints used breaks once a
  /// transaction can stay open across a checkpoint.
  uint64_t lsn = 0;
};

void EncodeWalOp(const WalOp& op, Encoder* enc);
Result<WalOp> DecodeWalOp(Decoder* dec);

/// Tuning knobs for WalWriter's group-commit pipeline (DESIGN.md §11).
struct WalWriterConfig {
  /// Off: every AppendCommit pays its own Sync() (the seed behavior). On:
  /// committers join an in-memory batch that a single flusher writes and
  /// forces with ONE Sync(), and each committer blocks until its batch's
  /// real sync status is known (the ack-after-fsync contract).
  bool group_commit = false;
  /// A batch is flushed as soon as it reaches this many bytes, even if its
  /// wait window has not expired.
  size_t max_batch_bytes = 256 * 1024;
  /// How long the flusher lets an open batch accumulate joiners before
  /// forcing it. 0 = flush as soon as the device is free; batching still
  /// emerges because commits arriving during an in-flight sync coalesce
  /// into the next batch (no added latency for a lone committer).
  uint64_t max_wait_us = 0;
  /// Off (leader mode): the first committer waiting on a batch becomes its
  /// leader and performs the write+sync itself — no extra thread. On: a
  /// dedicated flusher thread owned by the WalWriter drives all batches.
  bool dedicated_flusher = false;

  /// Projection of the process-wide phoenix::Options (the single env-knob
  /// loader; see common/options.h). Replaces the per-field getenv calls the
  /// writer used to make — scripts/check_sanitizers.sh still flips whole
  /// test lanes via PHX_GROUP_COMMIT / PHX_GC_* without code changes.
  static WalWriterConfig FromOptions(const phoenix::Options& opts);
};

/// One in-memory group-commit batch (internal to WalWriter; opaque here).
struct WalBatch;

/// Handle for one enqueued commit record: resolves to the real sync status
/// of the batch that carried the record. Obtained from EnqueueCommit(),
/// redeemed — exactly once — with WaitCommit(). Empty tickets are falsy.
struct WalCommitTicket {
  std::shared_ptr<WalBatch> batch;  ///< group-commit path (unresolved)
  bool resolved = false;            ///< per-commit path / after WaitCommit
  Status status;

  explicit operator bool() const { return resolved || batch != nullptr; }
};

/// Appends framed, checksummed commit records to a SimDisk file and forces
/// them durable before reporting success (write-ahead rule).
///
/// Two durability pipelines, selected by WalWriterConfig::group_commit:
///  - per-commit (default): each record's append+sync is atomic under an
///    internal mutex, exactly the seed behavior.
///  - group commit: EnqueueCommit() adds the framed record to the open
///    batch and returns a ticket; WaitCommit() blocks until the batch has
///    been written and forced with a single Sync(), then returns that
///    sync's real status. Batches flush strictly in formation order, so
///    the on-disk record order still equals commit order.
///
/// Thread-safe in both modes; concurrent committers can never interleave
/// frame bytes in the log.
class WalWriter {
 public:
  WalWriter(SimDisk* disk, std::string file, WalWriterConfig config = {});
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Frames, checksums, appends, and forces one commit record
  /// (EnqueueCommit + WaitCommit).
  Status AppendCommit(const WalCommitRecord& record);

  /// Adds the record to the current batch (group mode) or performs the
  /// whole append+sync immediately (per-commit mode). Never blocks on the
  /// device in group mode, so callers may hold engine locks.
  WalCommitTicket EnqueueCommit(const WalCommitRecord& record);

  /// Blocks until the ticket's batch is durable and returns the real sync
  /// status. In leader mode the caller may perform the flush itself. Must
  /// not be called while holding locks the engine's commit path needs —
  /// releasing them first is the whole point of group commit.
  Status WaitCommit(WalCommitTicket* ticket);

  /// Appends without syncing (used to test loss of unforced commits). In
  /// group mode any pending batches are forced first so frame order on
  /// disk stays append order.
  Status AppendCommitNoSync(const WalCommitRecord& record);

  /// Truncates the log (after a checkpoint made its contents redundant).
  /// In group mode every enqueued commit is forced — its waiters get a
  /// real sync status — before the truncation, so no ticket ever dangles
  /// across a checkpoint.
  Status Reset();

  /// Amputates the fenced prefix: every frame with lsn <= fence_lsn is
  /// removed, frames past the fence are kept verbatim. The non-quiescent
  /// checkpoint truncation — commits that raced the checkpoint image sit
  /// past the fence and must survive. In group mode pending batches are
  /// drained first (their waiters get real sync statuses and their frames
  /// land before the cut is computed), exactly like Reset(); commits that
  /// enqueue *during* the truncation carry post-fence LSNs and are appended
  /// after the rewrite, so order stays monotone.
  Status TruncateUpTo(uint64_t fence_lsn);

  /// LSN of the most recently enqueued record (0 = none yet). Under the
  /// engine's exclusive data lock no new enqueues can race, so this is the
  /// checkpoint fence capture.
  uint64_t last_assigned_lsn() const;
  /// Restores LSN continuity after recovery: the next record gets `lsn`.
  /// Must exceed every LSN already in the durable log *and* any checkpoint
  /// fence, or fenced replay would wrongly skip post-restart commits.
  void set_next_lsn(uint64_t lsn);

  /// Recovery found `bytes_valid` clean bytes followed by an unforced tail
  /// (expected crash residue, not corruption). Instead of rewriting the
  /// whole log eagerly, the writer amputates the stale tail lazily — one
  /// WriteAtomic of the valid prefix — right before its next append, which
  /// is the moment the garbage would otherwise swallow new frames.
  void NoteValidPrefix(uint64_t bytes_valid);

  const std::string& file() const { return file_; }
  const WalWriterConfig& config() const { return config_; }

  /// Test-only crash window: invoked between a batch's Append and its
  /// Sync. Returning false simulates the process dying in that window —
  /// the sync is skipped and every commit in the batch resolves with an
  /// error (so none of them is ever acked).
  void set_before_sync_hook(std::function<bool()> hook);

 private:
  /// Runs Sync() and maintains the force counters: storage.wal.syncs is
  /// bumped only when the sync actually succeeded; failures count under
  /// storage.wal.sync_failures instead.
  Status SyncCounted();
  /// If NoteValidPrefix recorded a pending stale tail, rewrites the file to
  /// its valid prefix now (one ReadDurable + WriteAtomic). Called with mu_
  /// held, before the first post-recovery append touches the device. On
  /// failure the pending mark is kept so the append is not built on top of
  /// garbage bytes.
  Status MaybeAmputateStaleTailLocked();
  bool OpenBatchRipeLocked() const;
  void SealOpenBatchLocked();
  /// Pops and flushes the oldest sealed batch. Drops `lk` for the device
  /// I/O and reacquires it to publish the result.
  void FlushFrontLocked(std::unique_lock<std::mutex>& lk);
  /// Forces every enqueued commit (open or sealed) and waits for in-flight
  /// flushes; on return the pipeline is empty and `lk` is held.
  void DrainLocked(std::unique_lock<std::mutex>& lk);
  void FlusherLoop();

  SimDisk* disk_;
  std::string file_;
  WalWriterConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<WalBatch> open_;             ///< accepting joiners
  std::deque<std::shared_ptr<WalBatch>> sealed_;  ///< FIFO, awaiting flush
  bool flush_in_progress_ = false;
  bool stop_ = false;
  std::function<bool()> before_sync_hook_;
  std::thread flusher_;

  /// Next LSN to hand out; LSNs are assigned under mu_ at enqueue time so
  /// assignment order == batch-join order == on-disk frame order.
  uint64_t next_lsn_ = 1;
  /// Lazy stale-tail amputation (NoteValidPrefix): when set, the durable
  /// file still carries unforced crash residue past stale_tail_prefix_
  /// bytes, to be cut before the next append.
  bool stale_tail_pending_ = false;
  uint64_t stale_tail_prefix_ = 0;
};

/// What a WAL scan saw — lets recovery report (and tests assert) exactly how
/// much of the log survived a torn-tail crash instead of silently eating it.
///
/// Trailing invalid bytes are classified so recovery logs do not
/// misattribute *expected* loss as corruption:
///  - an incomplete frame (the file ends inside a header, or before the
///    payload its length field declares) is the clean signature of an
///    append that was never forced — e.g. a group-commit batch cut mid-
///    frame by the crash. Reported as bytes_unforced_tail.
///  - a complete frame whose checksum fails or whose payload does not
///    decode is real corruption (half-written sector, bit rot). Reported
///    as bytes_corrupt.
/// A flipped length byte that claims more bytes than the file holds is
/// indistinguishable from a clean truncation and is counted as unforced
/// tail; the conservative longest-valid-prefix rule applies either way.
struct WalScanStats {
  uint64_t bytes_total = 0;  ///< durable log bytes on disk
  uint64_t bytes_valid = 0;  ///< bytes consumed by complete, CRC-valid frames
  uint64_t records = 0;      ///< complete records decoded
  bool tear_detected = false;  ///< trailing invalid bytes (either kind)
  uint64_t bytes_unforced_tail = 0;  ///< clean incomplete trailing frame
  uint64_t bytes_corrupt = 0;        ///< CRC-mismatched/undecodable tail
};

/// Reads every complete, checksum-valid commit record; stops at the first
/// torn or corrupt frame (the crash-truncated tail). A frame is accepted
/// only if its header is whole, its declared length fits in the remaining
/// bytes, its checksum matches, and its payload decodes completely — a tear
/// at any byte (mid-header, mid-payload, or a flipped CRC/length byte)
/// yields the longest valid prefix, never a partial record.
class WalReader {
 public:
  /// Delivered one complete record at a time, in log (== LSN) order. A
  /// non-OK return aborts the scan and propagates out of Scan/ScanBytes
  /// (used by recovery to stop replaying on the first apply error).
  using RecordFn = std::function<Status(WalCommitRecord&&)>;
  /// Scan-time skip predicate over a frame's cheap header fields (lsn,
  /// txn_id). Returning true drops the record without decoding its ops —
  /// the frame still had to be complete and CRC-valid to get here, and it
  /// still counts in WalScanStats::records and advances bytes_valid.
  /// Recovery uses this for checkpoint-subsumed records, which at
  /// production WAL sizes is most of the log after a mid-checkpoint crash.
  using SkipFn = std::function<bool(uint64_t lsn, uint64_t txn_id)>;

  /// Streaming scan: one pass over the durable bytes, records handed to
  /// `fn` as they decode — nothing is materialized. `stats` is filled even
  /// when `fn` aborts the scan (fields reflect progress up to the abort;
  /// tear accounting/metrics are recorded only for scans that ran to the
  /// end of the valid prefix).
  static Status Scan(const SimDisk& disk, const std::string& file,
                     WalScanStats* stats, const RecordFn& fn,
                     const SkipFn& skip = nullptr);
  /// Same scan over an already-read byte buffer. Recovery reads the WAL
  /// once, scans the buffer, and reuses the same buffer for torn-tail
  /// repair — the scan and the repair together cost one device read.
  static Status ScanBytes(const std::string& bytes, WalScanStats* stats,
                          const RecordFn& fn, const SkipFn& skip = nullptr);

  /// Scan() materialized: every surviving record in a vector (no skip
  /// predicate). Kept for tests and tools; recovery streams instead.
  static Result<std::vector<WalCommitRecord>> ReadAll(
      const SimDisk& disk, const std::string& file,
      WalScanStats* stats = nullptr);
};

/// FNV-1a over the payload — cheap torn-write detector for WAL frames.
uint32_t WalChecksum(const std::string& payload);

}  // namespace phoenix::storage

#endif  // PHOENIX_STORAGE_WAL_H_
