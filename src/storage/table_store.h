#ifndef PHOENIX_STORAGE_TABLE_STORE_H_
#define PHOENIX_STORAGE_TABLE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace phoenix::storage {

using RowId = uint64_t;

/// MVCC stamp on a row version: the commit LSN that created (or deleted)
/// it, or the pending transaction id while its writer is uncommitted.
/// Exactly one field is meaningful: `txn != 0` marks a pending stamp;
/// `txn == 0` with `lsn == L` marks a version committed at L. The default
/// {0, 0} ("committed at LSN 0") is visible to every snapshot — recovered
/// and pre-MVCC rows carry it implicitly by absence from the stamp maps.
struct MvccStamp {
  uint64_t lsn = 0;
  uint64_t txn = 0;
};

/// A superseded row version retained for snapshot readers: the pre-image
/// plus the stamps bracketing its lifetime.
struct MvccVersion {
  Row row;
  MvccStamp begin;
  MvccStamp end;
};

/// A pinned read snapshot: sees every version committed at or before `lsn`
/// plus the pinning transaction's own uncommitted writes.
struct MvccSnapshot {
  uint64_t lsn = 0;
  uint64_t txn = 0;  ///< own txn id (0 = none)
  /// True when the event marked by `s` happened from this snapshot's view.
  bool Sees(const MvccStamp& s) const {
    return s.txn != 0 ? s.txn == txn : s.lsn <= lsn;
  }
};

/// Lexicographic comparator over rows of Values (for PK indexes).
struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    size_t n = a.size() < b.size() ? a.size() : b.size();
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

/// One ordered (non-unique) secondary index: the projection of each row onto
/// `columns`, mapped to the set of RowIds carrying that key. Entries are
/// derivable from the base rows — snapshots persist only the definition and
/// rebuild the tree on decode — but the in-memory tree is maintained
/// incrementally through every mutation (Insert/Delete/Update), so DML, WAL
/// replay, undo, and checkpoint-clone reverts all keep it exact for free.
struct SecondaryIndex {
  std::string name;          ///< uppercased, unique within the table
  std::vector<int> columns;  ///< key columns, in index order
  std::map<Row, std::set<RowId>, RowLess> entries;

  /// MVCC side state (empty when versioning is off): keys of superseded
  /// versions, so snapshot probes can find rows that were deleted or
  /// re-keyed after the snapshot was pinned. Conservatively over-inclusive
  /// — the executor dedups by RowId and re-resolves every candidate
  /// against the snapshot. Index creation backfills it from the retained
  /// version chains, so a new index serves existing snapshots correctly.
  std::map<Row, std::set<RowId>, RowLess> dead_entries;
};

/// One heap table: rows addressed by stable RowIds, an optional unique
/// primary-key index, ordered secondary indexes, and a temporary flag (temp
/// tables are never logged, never checkpointed, and die with their owning
/// session or the server).
class Table {
 public:
  Table(std::string name, Schema schema, std::vector<int> pk_columns,
        bool temporary)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        pk_columns_(std::move(pk_columns)),
        temporary_(temporary) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<int>& pk_columns() const { return pk_columns_; }
  bool temporary() const { return temporary_; }

  /// Session that owns this temp table (0 = not session-scoped).
  uint64_t owner_session() const { return owner_session_; }
  void set_owner_session(uint64_t s) { owner_session_ = s; }

  size_t num_rows() const { return rows_.size(); }

  /// Inserts after schema coercion and PK-uniqueness check. `rid_hint` != 0
  /// forces a specific RowId (used by WAL replay so ids match pre-crash).
  Result<RowId> Insert(Row row, RowId rid_hint = 0);
  Status Delete(RowId rid);
  Status Update(RowId rid, Row new_row);

  /// nullptr when absent.
  const Row* Find(RowId rid) const;

  /// Looks up a full PK value; kNotFound when absent or no PK declared.
  Result<RowId> FindByPk(const Row& key) const;

  /// Ordered-by-RowId row map: stable scan order == insertion order.
  const std::map<RowId, Row>& rows() const { return rows_; }

  /// PK-ordered index (empty when the table has no primary key). Dynamic
  /// cursors key-range-scan this to recompute membership per fetch.
  const std::map<Row, RowId, RowLess>& pk_index() const { return pk_index_; }

  RowId next_rid() const { return next_rid_; }

  /// Extracts the PK projection of a row (empty if no PK).
  Row PkOf(const Row& row) const;

  /// Extracts the `columns` projection of a row (an index key).
  static Row KeyFor(const std::vector<int>& columns, const Row& row);

  // ---- Secondary indexes ------------------------------------------------
  /// Builds an ordered index over `columns` and backfills it from the
  /// current rows. Fails on a duplicate name or out-of-range column.
  Status CreateIndex(const std::string& name, std::vector<int> columns);
  /// CreateIndex, but splices the new index at `position` in the index
  /// vector instead of appending (clamped to the vector size). Rollback of
  /// DROP INDEX uses this so the planner's cost tie-break — which prefers
  /// the earliest index in declaration order — is unchanged by an undone
  /// drop.
  Status CreateIndexAt(const std::string& name, std::vector<int> columns,
                       size_t position);
  Status DropIndex(const std::string& name);
  /// nullptr when absent. Name lookup is case-insensitive.
  const SecondaryIndex* FindIndex(const std::string& name) const;
  /// Position of the named index in declaration order; npos when absent.
  size_t IndexPosition(const std::string& name) const;
  const std::vector<SecondaryIndex>& indexes() const { return indexes_; }

  // ---- MVCC (engine-driven; see DESIGN.md §16) --------------------------
  // The primitives above stay version-oblivious: WAL replay, undo, and
  // checkpoint-clone reverts materialize only committed latest versions.
  // When versioning is on, the engine notes each successful mutation with
  // the pending transaction id and the pre-image, finalizes the pending
  // stamps with the commit LSN at commit, unwinds notes on rollback, and
  // reclaims superseded versions once the watermark passes them.

  /// After a successful Insert of `rid` by `txn`.
  void MvccNoteInsert(RowId rid, uint64_t txn);
  /// After a successful Delete of `rid` by `txn`; `old_row` is the
  /// pre-image. Returns true (a version was retained).
  bool MvccNoteDelete(RowId rid, Row old_row, uint64_t txn);
  /// After a successful Update of `rid` by `txn`; `old_row` is the
  /// pre-image. Returns true (a version was retained).
  bool MvccNoteUpdate(RowId rid, Row old_row, uint64_t txn);
  /// After rollback re-applied the inverse primitive op. Each returns true
  /// when a retained version was released. Self-gating: no-ops when the
  /// matching note is absent (versioning off, or state already unwound).
  bool MvccUndoInsert(RowId rid, uint64_t txn);
  bool MvccUndoDelete(RowId rid, uint64_t txn);
  bool MvccUndoUpdate(RowId rid, uint64_t txn);
  /// At commit, under the exclusive data lock, before the commit LSN is
  /// published: rewrites every pending stamp of `txn` on `rid` to
  /// "committed at `lsn`".
  void MvccFinalize(RowId rid, uint64_t txn, uint64_t lsn);
  /// Frees superseded versions no pinned snapshot can still see — those
  /// whose committed end LSN is <= `watermark` — and rebuilds the dead-key
  /// side maps from the survivors. Returns the number of versions freed.
  size_t MvccReclaim(uint64_t watermark);

  /// True when no version state exists: every live row is committed and
  /// visible to every snapshot, so readers can skip resolution entirely.
  bool MvccQuiescent() const { return live_begin_.empty() && old_.empty(); }
  /// Retained superseded versions (the engine.mvcc.versions_live gauge).
  size_t MvccVersionCount() const { return old_count_; }

  /// Resolves `rid` as of `snap`: the live row if its begin stamp is
  /// visible, else the newest retained version whose lifetime brackets the
  /// snapshot, else nullptr. The pointer is valid only until the next
  /// mutation or reclaim — callers copy under the data lock.
  const Row* MvccVersionAsOf(RowId rid, const MvccSnapshot& snap) const;
  /// Appends every (rid, row) visible as of `snap`, in RowId order — the
  /// snapshot analogue of iterating rows().
  void MvccScanVisible(const MvccSnapshot& snap,
                       std::vector<std::pair<RowId, const Row*>>* out) const;
  /// Dead-key side map for snapshot PK probes (keys of superseded
  /// versions; conservatively over-inclusive).
  const std::map<Row, std::set<RowId>, RowLess>& mvcc_dead_pk() const {
    return dead_pk_;
  }

  /// Serialization: `with_indexes` distinguishes checkpoint image v3 (index
  /// definitions appended after the rows) from v1/v2 images that predate
  /// indexes. In-process snapshots (undo records) always use the current
  /// format. Index *entries* are never serialized — they are rebuilt from
  /// the rows on decode, which guarantees tree/heap consistency by
  /// construction.
  void EncodeSnapshot(Encoder* enc, bool with_indexes = true) const;
  static Result<std::unique_ptr<Table>> DecodeSnapshot(
      Decoder* dec, bool with_indexes = true);

  /// Deep copy — rows, PK index, and the rid counter — for checkpoint
  /// snapshots taken while the original keeps mutating.
  std::unique_ptr<Table> Clone() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<int> pk_columns_;
  bool temporary_;
  uint64_t owner_session_ = 0;
  RowId next_rid_ = 1;
  std::map<RowId, Row> rows_;
  std::map<Row, RowId, RowLess> pk_index_;
  std::vector<SecondaryIndex> indexes_;

  // MVCC side state (all empty when versioning is off). `live_begin_`
  // stamps the current version of a row; absence means {0, 0} = visible to
  // all. `old_` holds superseded version chains per RowId, oldest first.
  // `dead_pk_` mirrors dead_entries for the PK index. None of this is
  // serialized or cloned: images and checkpoint clones carry only
  // committed latest versions.
  std::map<RowId, MvccStamp> live_begin_;
  std::map<RowId, std::vector<MvccVersion>> old_;
  std::map<Row, std::set<RowId>, RowLess> dead_pk_;
  size_t old_count_ = 0;
};

/// The set of all tables. Names are case-insensitive (stored uppercased).
class TableStore {
 public:
  Result<Table*> CreateTable(const std::string& name, Schema schema,
                             std::vector<int> pk_columns, bool temporary);
  Status DropTable(const std::string& name);
  /// nullptr when absent.
  Table* Get(const std::string& name);
  const Table* Get(const std::string& name) const;
  bool Exists(const std::string& name) const { return Get(name) != nullptr; }

  std::vector<std::string> ListNames() const;

  /// Drops every temp table owned by `session_id`; returns their names.
  std::vector<std::string> DropSessionTemps(uint64_t session_id);

  /// Serializes all *persistent* tables (checkpoint payload). Image v3
  /// carries index definitions per table; pass `with_indexes = false` when
  /// decoding a v1/v2 image that predates them.
  void EncodeSnapshot(Encoder* enc) const;
  Status DecodeSnapshot(Decoder* dec, bool with_indexes = true);

  /// Deep-copies every persistent table — the fast half of a non-blocking
  /// checkpoint. Temp tables are excluded exactly as EncodeSnapshot
  /// excludes them, so encoding the clone later yields the same payload a
  /// direct EncodeSnapshot at clone time would have.
  std::unique_ptr<TableStore> ClonePersistent() const;

  void Clear() { tables_.clear(); }
  size_t size() const { return tables_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace phoenix::storage

#endif  // PHOENIX_STORAGE_TABLE_STORE_H_
