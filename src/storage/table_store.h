#ifndef PHOENIX_STORAGE_TABLE_STORE_H_
#define PHOENIX_STORAGE_TABLE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace phoenix::storage {

using RowId = uint64_t;

/// Lexicographic comparator over rows of Values (for PK indexes).
struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    size_t n = a.size() < b.size() ? a.size() : b.size();
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

/// One ordered (non-unique) secondary index: the projection of each row onto
/// `columns`, mapped to the set of RowIds carrying that key. Entries are
/// derivable from the base rows — snapshots persist only the definition and
/// rebuild the tree on decode — but the in-memory tree is maintained
/// incrementally through every mutation (Insert/Delete/Update), so DML, WAL
/// replay, undo, and checkpoint-clone reverts all keep it exact for free.
struct SecondaryIndex {
  std::string name;          ///< uppercased, unique within the table
  std::vector<int> columns;  ///< key columns, in index order
  std::map<Row, std::set<RowId>, RowLess> entries;
};

/// One heap table: rows addressed by stable RowIds, an optional unique
/// primary-key index, ordered secondary indexes, and a temporary flag (temp
/// tables are never logged, never checkpointed, and die with their owning
/// session or the server).
class Table {
 public:
  Table(std::string name, Schema schema, std::vector<int> pk_columns,
        bool temporary)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        pk_columns_(std::move(pk_columns)),
        temporary_(temporary) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<int>& pk_columns() const { return pk_columns_; }
  bool temporary() const { return temporary_; }

  /// Session that owns this temp table (0 = not session-scoped).
  uint64_t owner_session() const { return owner_session_; }
  void set_owner_session(uint64_t s) { owner_session_ = s; }

  size_t num_rows() const { return rows_.size(); }

  /// Inserts after schema coercion and PK-uniqueness check. `rid_hint` != 0
  /// forces a specific RowId (used by WAL replay so ids match pre-crash).
  Result<RowId> Insert(Row row, RowId rid_hint = 0);
  Status Delete(RowId rid);
  Status Update(RowId rid, Row new_row);

  /// nullptr when absent.
  const Row* Find(RowId rid) const;

  /// Looks up a full PK value; kNotFound when absent or no PK declared.
  Result<RowId> FindByPk(const Row& key) const;

  /// Ordered-by-RowId row map: stable scan order == insertion order.
  const std::map<RowId, Row>& rows() const { return rows_; }

  /// PK-ordered index (empty when the table has no primary key). Dynamic
  /// cursors key-range-scan this to recompute membership per fetch.
  const std::map<Row, RowId, RowLess>& pk_index() const { return pk_index_; }

  RowId next_rid() const { return next_rid_; }

  /// Extracts the PK projection of a row (empty if no PK).
  Row PkOf(const Row& row) const;

  /// Extracts the `columns` projection of a row (an index key).
  static Row KeyFor(const std::vector<int>& columns, const Row& row);

  // ---- Secondary indexes ------------------------------------------------
  /// Builds an ordered index over `columns` and backfills it from the
  /// current rows. Fails on a duplicate name or out-of-range column.
  Status CreateIndex(const std::string& name, std::vector<int> columns);
  Status DropIndex(const std::string& name);
  /// nullptr when absent. Name lookup is case-insensitive.
  const SecondaryIndex* FindIndex(const std::string& name) const;
  const std::vector<SecondaryIndex>& indexes() const { return indexes_; }

  /// Serialization: `with_indexes` distinguishes checkpoint image v3 (index
  /// definitions appended after the rows) from v1/v2 images that predate
  /// indexes. In-process snapshots (undo records) always use the current
  /// format. Index *entries* are never serialized — they are rebuilt from
  /// the rows on decode, which guarantees tree/heap consistency by
  /// construction.
  void EncodeSnapshot(Encoder* enc, bool with_indexes = true) const;
  static Result<std::unique_ptr<Table>> DecodeSnapshot(
      Decoder* dec, bool with_indexes = true);

  /// Deep copy — rows, PK index, and the rid counter — for checkpoint
  /// snapshots taken while the original keeps mutating.
  std::unique_ptr<Table> Clone() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<int> pk_columns_;
  bool temporary_;
  uint64_t owner_session_ = 0;
  RowId next_rid_ = 1;
  std::map<RowId, Row> rows_;
  std::map<Row, RowId, RowLess> pk_index_;
  std::vector<SecondaryIndex> indexes_;
};

/// The set of all tables. Names are case-insensitive (stored uppercased).
class TableStore {
 public:
  Result<Table*> CreateTable(const std::string& name, Schema schema,
                             std::vector<int> pk_columns, bool temporary);
  Status DropTable(const std::string& name);
  /// nullptr when absent.
  Table* Get(const std::string& name);
  const Table* Get(const std::string& name) const;
  bool Exists(const std::string& name) const { return Get(name) != nullptr; }

  std::vector<std::string> ListNames() const;

  /// Drops every temp table owned by `session_id`; returns their names.
  std::vector<std::string> DropSessionTemps(uint64_t session_id);

  /// Serializes all *persistent* tables (checkpoint payload). Image v3
  /// carries index definitions per table; pass `with_indexes = false` when
  /// decoding a v1/v2 image that predates them.
  void EncodeSnapshot(Encoder* enc) const;
  Status DecodeSnapshot(Decoder* dec, bool with_indexes = true);

  /// Deep-copies every persistent table — the fast half of a non-blocking
  /// checkpoint. Temp tables are excluded exactly as EncodeSnapshot
  /// excludes them, so encoding the clone later yields the same payload a
  /// direct EncodeSnapshot at clone time would have.
  std::unique_ptr<TableStore> ClonePersistent() const;

  void Clear() { tables_.clear(); }
  size_t size() const { return tables_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace phoenix::storage

#endif  // PHOENIX_STORAGE_TABLE_STORE_H_
