#include "core/rewriter.h"

#include <cctype>

namespace phoenix::core {

using sql::BinOp;
using sql::Expr;
using sql::SelectStmt;
using sql::Statement;

std::unique_ptr<SelectStmt> MakeMetadataProbe(const SelectStmt& sel) {
  auto probe = sel.Clone();
  // The paper appends "WHERE 0=1"; we graft the same always-false predicate
  // onto the AST so it composes with an existing WHERE.
  auto zero_eq_one = Expr::Binary(BinOp::kEq, Expr::Lit(Value::Int64(0)),
                                  Expr::Lit(Value::Int64(1)));
  if (probe->where != nullptr) {
    probe->where = Expr::Binary(BinOp::kAnd, std::move(zero_eq_one),
                                std::move(probe->where));
  } else {
    probe->where = std::move(zero_eq_one);
  }
  probe->order_by.clear();
  probe->limit = -1;
  probe->into_table.clear();
  return probe;
}

std::string SanitizeColumnName(const std::string& name, size_t index,
                               std::map<std::string, int>* used) {
  std::string clean;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      clean.push_back(c);
    }
  }
  if (clean.empty() ||
      std::isdigit(static_cast<unsigned char>(clean[0]))) {
    clean = "C" + std::to_string(index + 1);
  }
  std::string key = IdentUpper(clean);
  int& count = (*used)[key];
  if (count++ > 0) clean += "_" + std::to_string(count);
  return clean;
}

sql::CreateTableStmt MakeCreateTableFromMetadata(const std::string& table,
                                                 const Schema& metadata) {
  sql::CreateTableStmt ct;
  ct.table = table;
  ct.temporary = false;  // the whole point: this table must survive a crash
  std::map<std::string, int> used;
  for (size_t i = 0; i < metadata.num_columns(); ++i) {
    sql::ColumnDef def;
    def.name = SanitizeColumnName(metadata.column(i).name, i, &used);
    def.type_name = DataTypeName(metadata.column(i).type);
    def.not_null = false;  // result columns may be NULL regardless of source
    ct.columns.push_back(std::move(def));
  }
  return ct;
}

std::unique_ptr<Statement> MakeInsertSelect(const std::string& table,
                                            const SelectStmt& sel) {
  auto stmt = std::make_unique<Statement>();
  stmt->kind = sql::StmtKind::kInsert;
  stmt->insert = std::make_unique<sql::InsertStmt>();
  stmt->insert->table = table;
  stmt->insert->select = sel.Clone();
  stmt->insert->select->into_table.clear();
  return stmt;
}

std::unique_ptr<SelectStmt> MakeSelectKeys(
    const SelectStmt& sel, const std::vector<std::string>& pk_columns) {
  auto keys = std::make_unique<SelectStmt>();
  keys->from = sel.from;
  if (sel.where != nullptr) keys->where = sel.where->Clone();
  for (const std::string& pk : pk_columns) {
    keys->items.push_back(sql::SelectItem{Expr::Col("", pk), ""});
    keys->order_by.push_back(sql::OrderItem{Expr::Col("", pk), false});
  }
  return keys;
}

std::unique_ptr<SelectStmt> MakeKeyLookup(
    const SelectStmt& sel, const std::vector<std::string>& pk_columns,
    const Row& key) {
  auto lookup = std::make_unique<SelectStmt>();
  for (const auto& item : sel.items) {
    lookup->items.push_back(
        sql::SelectItem{item.expr->Clone(), item.alias});
  }
  lookup->from = sel.from;
  std::unique_ptr<Expr> pred;
  for (size_t i = 0; i < pk_columns.size(); ++i) {
    auto eq = Expr::Binary(BinOp::kEq, Expr::Col("", pk_columns[i]),
                           Expr::Lit(key[i]));
    pred = pred == nullptr
               ? std::move(eq)
               : Expr::Binary(BinOp::kAnd, std::move(pred), std::move(eq));
  }
  lookup->where = std::move(pred);
  return lookup;
}

std::unique_ptr<SelectStmt> MakeRangeLookup(const SelectStmt& sel,
                                            const std::string& pk_column,
                                            const Value* low,
                                            const Value& high) {
  auto lookup = std::make_unique<SelectStmt>();
  for (const auto& item : sel.items) {
    lookup->items.push_back(sql::SelectItem{item.expr->Clone(), item.alias});
  }
  lookup->from = sel.from;
  std::unique_ptr<Expr> pred =
      Expr::Binary(BinOp::kLe, Expr::Col("", pk_column), Expr::Lit(high));
  if (low != nullptr) {
    pred = Expr::Binary(
        BinOp::kAnd,
        Expr::Binary(BinOp::kGt, Expr::Col("", pk_column), Expr::Lit(*low)),
        std::move(pred));
  }
  if (sel.where != nullptr) {
    pred = Expr::Binary(BinOp::kAnd, sel.where->Clone(), std::move(pred));
  }
  lookup->where = std::move(pred);
  lookup->order_by.push_back(sql::OrderItem{Expr::Col("", pk_column), false});
  return lookup;
}

std::string MakeDmlWrap(const std::string& status_table, uint64_t req_id,
                        const Statement& dml) {
  std::string sql = "BEGIN TRANSACTION; ";
  sql += dml.ToSql();
  sql += "; INSERT INTO " + status_table + " (REQ_ID, AFFECTED) VALUES (" +
         std::to_string(req_id) + ", ROWCOUNT()); COMMIT";
  return sql;
}

std::string MakeStatusProbe(const std::string& status_table, uint64_t req_id) {
  return "SELECT AFFECTED FROM " + status_table +
         " WHERE REQ_ID = " + std::to_string(req_id);
}

std::string MakeStatusTableDdl(const std::string& status_table) {
  return "CREATE TABLE " + status_table +
         " (REQ_ID BIGINT NOT NULL PRIMARY KEY, AFFECTED BIGINT NOT NULL)";
}

namespace {

bool MapName(const std::map<std::string, std::string>& m, std::string* name) {
  auto it = m.find(IdentUpper(*name));
  if (it == m.end()) return false;
  *name = it->second;
  return true;
}

bool RenameInSelect(SelectStmt* sel,
                    const std::map<std::string, std::string>& tables) {
  bool changed = false;
  for (sql::TableRef& ref : sel->from) {
    std::string original = ref.name;
    if (MapName(tables, &ref.name)) {
      changed = true;
      // Keep column qualifiers like "#tmp.col" resolving: the original name
      // becomes the alias when none was given.
      if (ref.alias.empty()) ref.alias = original;
    }
  }
  if (MapName(tables, &sel->into_table)) changed = true;
  return changed;
}

}  // namespace

bool RenameObjects(Statement* stmt,
                   const std::map<std::string, std::string>& table_map,
                   const std::map<std::string, std::string>& proc_map) {
  bool changed = false;
  switch (stmt->kind) {
    case sql::StmtKind::kSelect:
      changed = RenameInSelect(stmt->select.get(), table_map);
      break;
    case sql::StmtKind::kInsert:
      changed = MapName(table_map, &stmt->insert->table);
      if (stmt->insert->select != nullptr) {
        changed |= RenameInSelect(stmt->insert->select.get(), table_map);
      }
      break;
    case sql::StmtKind::kUpdate:
      changed = MapName(table_map, &stmt->update->table);
      break;
    case sql::StmtKind::kDelete:
      changed = MapName(table_map, &stmt->del->table);
      break;
    case sql::StmtKind::kDropTable:
      changed = MapName(table_map, &stmt->drop_table->table);
      break;
    case sql::StmtKind::kDropProc:
      changed = MapName(proc_map, &stmt->drop_proc->name);
      break;
    case sql::StmtKind::kExec:
      changed = MapName(proc_map, &stmt->exec->proc_name);
      break;
    case sql::StmtKind::kCreateProc:
      for (auto& body_stmt : stmt->create_proc->body) {
        changed |= RenameObjects(body_stmt.get(), table_map, proc_map);
      }
      break;
    case sql::StmtKind::kShow:
      changed = MapName(table_map, &stmt->show->table);
      break;
    case sql::StmtKind::kCreateIndex:
      changed = MapName(table_map, &stmt->create_index->table);
      break;
    case sql::StmtKind::kDropIndex:
      changed = MapName(table_map, &stmt->drop_index->table);
      break;
    case sql::StmtKind::kExplain:
      // The payload is a full statement (SELECT/INSERT/UPDATE/DELETE);
      // recurse so every table reference inside it is remapped.
      changed = RenameObjects(stmt->explain_inner.get(), table_map, proc_map);
      break;
    default:
      break;
  }
  return changed;
}

}  // namespace phoenix::core
