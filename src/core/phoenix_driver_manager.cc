#include "core/phoenix_driver_manager.h"

#include <set>

#include "core/rewriter.h"
#include "core/state_store.h"
#include "obs/metrics.h"

namespace phoenix::core {

using odbc::Hdbc;
using odbc::Hstmt;
using odbc::SqlReturn;

PhoenixDriverManager::PhoenixDriverManager(net::Network* network,
                                           PhoenixConfig config)
    : DriverManager(network), config_(std::move(config)) {}

bool PhoenixDriverManager::IsCrashSignal(const Status& s) const {
  if (s.IsCommError() || s.IsTimeout()) return true;
  // A pre-crash session id presented to a restarted server.
  if (s.IsNotFound() && s.message().find("session") != std::string::npos) {
    return true;
  }
  return false;
}

namespace {

/// "<prefix>_<KIND>_<tag>..." → tag; "" when the name does not match.
std::string ExtractTag(const std::string& name, const std::string& prefix) {
  if (name.rfind(prefix + "_", 0) != 0) return "";
  size_t kind_start = prefix.size() + 1;
  size_t kind_end = name.find('_', kind_start);
  if (kind_end == std::string::npos) return "";
  size_t tag_end = name.find('_', kind_end + 1);
  return name.substr(kind_end + 1, tag_end == std::string::npos
                                       ? std::string::npos
                                       : tag_end - kind_end - 1);
}

bool IsProxyName(const std::string& name, const std::string& prefix) {
  return name.rfind(prefix + "_PROXY_", 0) == 0;
}

}  // namespace

Result<int> PhoenixDriverManager::CleanupOrphans(net::Network* network,
                                                 const std::string& dsn,
                                                 const std::string& user,
                                                 const std::string& prefix) {
  PHX_ASSIGN_OR_RETURN(std::unique_ptr<odbc::DriverConnection> conn,
                       odbc::DriverConnection::Open(network, dsn, user));
  // Live tags are exactly those with a living session-proxy temp table.
  PHX_ASSIGN_OR_RETURN(std::vector<eng::StatementResult> tables,
                       conn->ExecScript("SHOW TABLES"));
  std::set<std::string> live;
  std::vector<std::string> candidates;
  for (const Row& row : tables[0].rows) {
    const std::string& name = row[0].AsString();
    if (IsProxyName(name, prefix)) {
      live.insert(ExtractTag(name, prefix));
    } else if (!ExtractTag(name, prefix).empty()) {
      candidates.push_back(name);
    }
  }
  int dropped = 0;
  for (const std::string& name : candidates) {
    if (live.count(ExtractTag(name, prefix))) continue;
    auto r = conn->ExecScript("DROP TABLE IF EXISTS " + name);
    if (r.ok()) ++dropped;
  }
  // Orphaned persistent stand-ins for temp procedures.
  PHX_ASSIGN_OR_RETURN(std::vector<eng::StatementResult> procs,
                       conn->ExecScript("SHOW PROCEDURES"));
  for (const Row& row : procs[0].rows) {
    const std::string& name = row[0].AsString();
    std::string tag = ExtractTag(name, prefix);
    if (tag.empty() || live.count(tag)) continue;
    auto r = conn->ExecScript("DROP PROCEDURE IF EXISTS " + name);
    if (r.ok()) ++dropped;
  }
  conn->Disconnect();
  return dropped;
}

// ---------------------------------------------------------------------------
// Connection call points
// ---------------------------------------------------------------------------

SqlReturn PhoenixDriverManager::Connect(Hdbc* dbc, const std::string& dsn,
                                        const std::string& user) {
  SqlReturn r = DriverManager::Connect(dbc, dsn, user);
  if (!Succeeded(r) || !config_.enabled) return r;

  auto cs = std::make_shared<ConnState>();
  cs->tag = MakeConnTag();
  cs->dsn = dsn;
  cs->user = user;
  cs->proxy_table = ProxyTableName(config_, *cs);
  cs->status_table = StatusTableName(config_, *cs);

  // Failover server group: the connect DSN is always a member (prepended
  // when the configured group omits it) and is where the session starts.
  cs->server_group = config_.server_group;
  size_t dsn_at = cs->server_group.size();
  for (size_t i = 0; i < cs->server_group.size(); ++i) {
    if (cs->server_group[i] == dsn) {
      dsn_at = i;
      break;
    }
  }
  if (dsn_at == cs->server_group.size()) {
    cs->server_group.insert(cs->server_group.begin(), dsn);
    dsn_at = 0;
  }
  cs->active_endpoint = dsn_at;

  // Private connection for Phoenix activity, masked from the application.
  auto priv = odbc::DriverConnection::Open(network_, dsn, user);
  if (!priv.ok()) {
    DriverManager::Disconnect(dbc);
    return Fail(dbc, priv.status());
  }
  cs->private_conn = priv.take();
  // Phoenix reads its testable state at READ UNCOMMITTED: a status marker
  // written by the application's still-open transaction must be visible to
  // the private connection's probe, or a lost reply would be resubmitted
  // and double-applied (see ExecInTxn).
  Status iso =
      cs->private_conn->SetOption("ISOLATION", "READ UNCOMMITTED");
  if (!iso.ok()) {
    cs->private_conn->Disconnect();
    DriverManager::Disconnect(dbc);
    return Fail(dbc, iso);
  }

  // Session-liveness proxy: a temp table in the *main* session. It exists
  // exactly as long as the pre-crash session does.
  auto proxy = dbc->driver->ExecScript("CREATE TEMPORARY TABLE " +
                                       cs->proxy_table + " (X INTEGER)");
  if (!proxy.ok()) {
    cs->private_conn->Disconnect();
    DriverManager::Disconnect(dbc);
    return Fail(dbc, proxy.status());
  }
  dbc->dm_state = std::move(cs);
  return SqlReturn::kSuccess;
}

SqlReturn PhoenixDriverManager::Disconnect(Hdbc* dbc) {
  ConnState* cs = conn_state(dbc);
  if (cs == nullptr) return DriverManager::Disconnect(dbc);

  // "After the client application has successfully terminated, Phoenix/ODBC
  // cleans up all persistent structures on the database server."
  if (cs->private_conn != nullptr && !cs->broken) {
    for (const std::string& t : cs->artifact_tables) {
      cs->private_conn->ExecScript("DROP TABLE IF EXISTS " + t);
    }
    for (const std::string& p : cs->artifact_procs) {
      cs->private_conn->ExecScript("DROP PROCEDURE IF EXISTS " + p);
    }
    cs->private_conn->Disconnect();
  }
  dbc->dm_state.reset();
  return DriverManager::Disconnect(dbc);
}

SqlReturn PhoenixDriverManager::SetConnectOption(Hdbc* dbc,
                                                 const std::string& name,
                                                 const std::string& value) {
  SqlReturn r = DriverManager::SetConnectOption(dbc, name, value);
  ConnState* cs = conn_state(dbc);
  if (Succeeded(r) && cs != nullptr) {
    // The option replay log: phase-1 recovery re-issues these in order.
    cs->option_log.emplace_back(name, value);
  }
  return r;
}

// ---------------------------------------------------------------------------
// ExecDirect — the main interception point
// ---------------------------------------------------------------------------

SqlReturn PhoenixDriverManager::ExecDirect(Hstmt* stmt,
                                           const std::string& sql) {
  ConnState* cs = conn_state(stmt->dbc);
  if (cs == nullptr || !config_.enabled) {
    return DriverManager::ExecDirect(stmt, sql);
  }
  if (cs->broken) {
    return Fail(stmt, Status::CommError("session unrecoverable"));
  }
  ResetResultState(stmt);
  stmt->dm_state.reset();
  stmt->last_sql = sql;

  auto classified = Classify(sql);
  if (!classified.ok()) {
    // Not SQL we understand: forward untouched so the application sees the
    // server's own diagnostics.
    return ExecPassthrough(stmt, sql, cs, /*resubmit_benign=*/true);
  }
  Classification& c = classified.value();

  // Temp-object indirection applies to every statement.
  std::string rewritten;
  for (size_t i = 0; i < c.stmts.size(); ++i) {
    RenameObjects(c.stmts[i].get(), cs->temp_table_map, cs->temp_proc_map);
    if (i) rewritten += "; ";
    rewritten += c.stmts[i]->ToSql();
  }

  switch (c.cls) {
    case RequestClass::kBegin: {
      for (int attempt = 0; attempt < 5; ++attempt) {
        auto r = stmt->dbc->driver->ExecScript(rewritten);
        bool ok = r.ok();
        if (!ok && IsCrashSignal(r.status())) {
          auto outcome = RecoverConnection(stmt->dbc);
          if (!outcome.ok()) return Fail(stmt, outcome.status());
          continue;
        }
        // A lost-reply BEGIN already took effect: the retry's "transaction
        // already in progress" means success.
        if (!ok && r.status().message().find("already in progress") ==
                       std::string::npos) {
          return Fail(stmt, r.status());
        }
        cs->in_txn = true;
        cs->txn_log.clear();
        cs->pending_commit_req = 0;
        InstallResult(stmt, eng::StatementResult::Affected(0));
        return SqlReturn::kSuccess;
      }
      return Fail(stmt, Status::CommError("BEGIN retry budget exhausted"));
    }
    case RequestClass::kCommit:
      if (!cs->in_txn) {
        return ExecPassthrough(stmt, rewritten, cs, true);
      }
      return ExecCommit(stmt, cs);
    case RequestClass::kRollback: {
      if (!cs->in_txn) return ExecPassthrough(stmt, rewritten, cs, true);
      // Clear the replay log first: if the server crashes mid-rollback, the
      // transaction is dead either way and must NOT be replayed.
      cs->in_txn = false;
      cs->txn_log.clear();
      cs->pending_commit_req = 0;
      auto r = ExecOnMain(stmt->dbc, rewritten, /*resubmit=*/false);
      // Benign outcomes: the transaction is gone either because the server
      // crashed (remap), or because a lost-reply ROLLBACK already ran and
      // the retry found "no transaction in progress".
      if (!r.ok() && !IsCrashSignal(r.status()) &&
          r.status().message().find("no transaction") == std::string::npos) {
        return Fail(stmt, r.status());
      }
      InstallResult(stmt, eng::StatementResult::Affected(0));
      return SqlReturn::kSuccess;
    }
    case RequestClass::kSelect: {
      const sql::SelectStmt& sel = *c.stmt()->select;
      if (stmt->cursor_mode == odbc::CursorMode::kKeysetCursor) {
        return ExecCursorProxy(stmt, sel, cs, /*dynamic=*/false);
      }
      if (stmt->cursor_mode == odbc::CursorMode::kDynamicCursor) {
        return ExecCursorProxy(stmt, sel, cs, /*dynamic=*/true);
      }
      return ExecMaterializedSelect(stmt, sel, cs);
    }
    case RequestClass::kSelectInto:
    case RequestClass::kDml:
      if (cs->in_txn) return ExecInTxn(stmt, rewritten, cs);
      return ExecWrappedDml(stmt, *c.stmt(), cs);
    case RequestClass::kCreateTempTable: {
      // Rewrite to a persistent table; remember the indirection.
      sql::CreateTableStmt* ct = c.stmt()->create_table.get();
      std::string original = ct->table;
      std::string actual = TempStandInName(config_, *cs, original);
      ct->table = actual;
      ct->temporary = false;
      SqlReturn r = cs->in_txn
                        ? ExecInTxn(stmt, c.stmt()->ToSql(), cs)
                        : ExecPassthrough(stmt, c.stmt()->ToSql(), cs, true);
      if (Succeeded(r)) {
        cs->temp_table_map[IdentUpper(original)] = actual;
        cs->artifact_tables.push_back(actual);
      }
      return r;
    }
    case RequestClass::kCreateTempProc: {
      sql::CreateProcStmt* cp = c.stmt()->create_proc.get();
      std::string original = cp->name;
      std::string actual = TempStandInName(config_, *cs, original);
      cp->name = actual;
      cp->temporary = false;
      SqlReturn r = cs->in_txn
                        ? ExecInTxn(stmt, c.stmt()->ToSql(), cs)
                        : ExecPassthrough(stmt, c.stmt()->ToSql(), cs, true);
      if (Succeeded(r)) {
        cs->temp_proc_map[IdentUpper(original)] = actual;
        cs->artifact_procs.push_back(actual);
      }
      return r;
    }
    case RequestClass::kDropObject: {
      SqlReturn r = cs->in_txn ? ExecInTxn(stmt, rewritten, cs)
                               : ExecPassthrough(stmt, rewritten, cs, true);
      if (Succeeded(r)) {
        // Retire the indirection if this dropped a mapped temp object.
        if (c.stmt()->kind == sql::StmtKind::kDropTable) {
          for (auto it = cs->temp_table_map.begin();
               it != cs->temp_table_map.end(); ++it) {
            if (IdentEquals(it->second, c.stmt()->drop_table->table)) {
              cs->temp_table_map.erase(it);
              break;
            }
          }
        } else if (c.stmt()->kind == sql::StmtKind::kDropProc) {
          for (auto it = cs->temp_proc_map.begin();
               it != cs->temp_proc_map.end(); ++it) {
            if (IdentEquals(it->second, c.stmt()->drop_proc->name)) {
              cs->temp_proc_map.erase(it);
              break;
            }
          }
        }
      }
      return r;
    }
    case RequestClass::kBatch:
      if (cs->in_txn) return ExecInTxn(stmt, rewritten, cs);
      return ExecPassthrough(stmt, rewritten, cs, true);
    case RequestClass::kPassthrough:
      if (cs->in_txn) return ExecInTxn(stmt, rewritten, cs);
      return ExecPassthrough(stmt, rewritten, cs, true);
  }
  return Fail(stmt, Status::Internal("unhandled request class"));
}

// ---------------------------------------------------------------------------
// SELECT: materialize the result set as a persistent server table
// ---------------------------------------------------------------------------

SqlReturn PhoenixDriverManager::ExecMaterializedSelect(
    Hstmt* stmt, const sql::SelectStmt& sel, ConnState* cs) {
  Hdbc* dbc = stmt->dbc;
  // Step 1: result-set metadata via the WHERE 0=1 probe (compile-only).
  auto metadata = ProbeMetadata(dbc, sel);
  if (!metadata.ok()) return Fail(stmt, metadata.status());

  // Step 2: persistent table shaped like the result.
  std::string table = NextResultTableName(config_, cs);
  sql::CreateTableStmt ct = MakeCreateTableFromMetadata(table, *metadata);
  Status created = CreateFreshArtifactTable(dbc, ct, table);
  if (!created.ok()) return Fail(stmt, created);
  cs->artifact_tables.push_back(table);

  // Step 3: materialize — data never leaves the server (single round trip).
  Status mat = MaterializeInto(dbc, sel, table);
  if (!mat.ok()) return Fail(stmt, mat);
  ++stats_.materialized_results;

  // Step 4: deliver through a server cursor over the persistent table, and
  // track position for seamless post-crash resumption.
  uint64_t cursor_id = 0;
  Status pos = OpenCursorWithRecovery(dbc, table, 0, &cursor_id);
  if (!pos.ok()) return Fail(stmt, pos);

  stmt->has_result = true;
  stmt->schema = std::move(*metadata);
  stmt->server_cursor_id = cursor_id;
  // Blocks of the app's configured size stream from the persistent table
  // (the application still perceives an ordinary result set).

  auto vs = std::make_shared<StmtState>();
  vs->kind = StmtState::Kind::kMaterialized;
  vs->result_table = table;
  stmt->dm_state = std::move(vs);
  return SqlReturn::kSuccess;
}

Result<Schema> PhoenixDriverManager::ProbeMetadata(Hdbc* dbc,
                                                   const sql::SelectStmt& sel) {
  std::string probe_sql = MakeMetadataProbe(sel)->ToSql();
  PHX_ASSIGN_OR_RETURN(std::vector<eng::StatementResult> results,
                       ExecOnPrivate(dbc, probe_sql));
  if (results.empty() || !results[0].has_rows) {
    return Status::SqlError("metadata probe produced no result set");
  }
  return std::move(results[0].schema);
}

Status PhoenixDriverManager::CreateFreshArtifactTable(
    Hdbc* dbc, const sql::CreateTableStmt& ct, const std::string& table) {
  auto created = ExecOnPrivate(dbc, ct.ToSql());
  if (!created.ok() && created.status().code() == StatusCode::kAlreadyExists) {
    // The name is session-tagged and freshly allocated, so a collision can
    // only be our own earlier CREATE whose reply a crash swallowed: it
    // executed and committed server-side, the acknowledgment died with the
    // connection, and recovery resubmitted it. The leftover is at best
    // empty and at worst half-observed — drop it and start clean.
    PHX_RETURN_IF_ERROR(ExecOnPrivate(dbc, "DROP TABLE " + table).status());
    created = ExecOnPrivate(dbc, ct.ToSql());
  }
  return created.status();
}

Status PhoenixDriverManager::MaterializeInto(Hdbc* dbc,
                                             const sql::SelectStmt& sel,
                                             const std::string& table) {
  if (config_.materialize_via_server) {
    // The paper's stored-procedure trick: all data moves locally at the
    // server in one atomic statement. The DELETE prefix makes the step
    // idempotent: if the INSERT..SELECT executed but its reply was lost to
    // a crash, ExecOnPrivate's post-recovery resubmission must not double
    // the rows. On the first pass it clears a freshly created empty table —
    // a no-op.
    std::string sql = "DELETE FROM " + table + "; " +
                      MakeInsertSelect(table, sel)->ToSql();
    return ExecOnPrivate(dbc, sql).status();
  }
  // Ablation: pull the result to the client, push it back in batches.
  PHX_ASSIGN_OR_RETURN(std::vector<eng::StatementResult> results,
                       ExecOnPrivate(dbc, sel.ToSql()));
  if (results.empty() || !results[0].has_rows) {
    return Status::SqlError("materialization query produced no result set");
  }
  const std::vector<Row>& rows = results[0].rows;
  size_t i = 0;
  while (i < rows.size()) {
    std::string sql = "INSERT INTO " + table + " VALUES ";
    size_t end = std::min(rows.size(), i + config_.client_insert_batch);
    for (size_t r = i; r < end; ++r) {
      if (r > i) sql += ", ";
      sql += RowToString(rows[r]);
    }
    i = end;
    PHX_RETURN_IF_ERROR(ExecOnPrivate(dbc, sql).status());
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Keyset / dynamic cursor proxies: persist only the keys
// ---------------------------------------------------------------------------

SqlReturn PhoenixDriverManager::ExecCursorProxy(Hstmt* stmt,
                                                const sql::SelectStmt& sel,
                                                ConnState* cs, bool dynamic) {
  Hdbc* dbc = stmt->dbc;
  if (sel.from.size() != 1 || !sel.group_by.empty() || sel.having != nullptr ||
      sel.distinct || sel.limit >= 0) {
    return Fail(stmt, Status::NotSupported(
                          "keyset/dynamic cursors require a plain "
                          "single-table query"));
  }
  const std::string& base = sel.from[0].name;

  // Discover the primary key (SQLPrimaryKeys analogue).
  auto keys_res = ExecOnPrivate(dbc, "SHOW KEYS " + base);
  if (!keys_res.ok()) return Fail(stmt, keys_res.status());
  std::vector<std::string> pk;
  for (const Row& row : (*keys_res)[0].rows) pk.push_back(row[0].AsString());
  if (pk.empty()) {
    return Fail(stmt, Status::NotSupported("table " + base +
                                           " has no primary key"));
  }
  if (dynamic && pk.size() != 1) {
    return Fail(stmt, Status::NotSupported(
                          "dynamic cursors require a single-column key"));
  }

  // Result metadata the application will see.
  auto metadata = ProbeMetadata(dbc, sel);
  if (!metadata.ok()) return Fail(stmt, metadata.status());

  // Materialize the key set in PK order.
  std::unique_ptr<sql::SelectStmt> key_sel = MakeSelectKeys(sel, pk);
  auto key_meta = ProbeMetadata(dbc, *key_sel);
  if (!key_meta.ok()) return Fail(stmt, key_meta.status());
  std::string key_table = NextKeyTableName(config_, cs);
  sql::CreateTableStmt ct = MakeCreateTableFromMetadata(key_table, *key_meta);
  Status created = CreateFreshArtifactTable(dbc, ct, key_table);
  if (!created.ok()) return Fail(stmt, created);
  cs->artifact_tables.push_back(key_table);
  Status mat = MaterializeInto(dbc, *key_sel, key_table);
  if (!mat.ok()) return Fail(stmt, mat);

  uint64_t cursor_id = 0;
  Status pos = OpenCursorWithRecovery(dbc, key_table, 0, &cursor_id);
  if (!pos.ok()) return Fail(stmt, pos);

  stmt->has_result = true;
  stmt->schema = std::move(*metadata);

  auto vs = std::make_shared<StmtState>();
  vs->kind = dynamic ? StmtState::Kind::kDynamic : StmtState::Kind::kKeyset;
  vs->result_table = key_table;
  vs->original_select = sel.Clone();
  vs->pk_columns = std::move(pk);
  vs->key_cursor_id = cursor_id;
  stmt->dm_state = std::move(vs);
  if (dynamic) {
    ++stats_.dynamic_cursors;
  } else {
    ++stats_.keyset_cursors;
  }
  return SqlReturn::kSuccess;
}

// ---------------------------------------------------------------------------
// DML: transaction wrap + testable state
// ---------------------------------------------------------------------------

Status PhoenixDriverManager::EnsureStatusTable(Hdbc* dbc, ConnState* cs) {
  if (cs->status_table_created) return Status::Ok();
  Status st = ExecOnPrivate(dbc, MakeStatusTableDdl(cs->status_table)).status();
  // AlreadyExists means our own earlier CREATE executed but its reply was
  // lost to a crash. Unlike result/key tables the survivor must NOT be
  // dropped and recreated: it may already record committed request ids, and
  // losing those would turn exactly-once DML into double-apply.
  if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
  cs->artifact_tables.push_back(cs->status_table);
  cs->status_table_created = true;
  return Status::Ok();
}

SqlReturn PhoenixDriverManager::ExecWrappedDml(Hstmt* stmt,
                                               const sql::Statement& dml,
                                               ConnState* cs) {
  Hdbc* dbc = stmt->dbc;
  Status st = EnsureStatusTable(dbc, cs);
  if (!st.ok()) return Fail(stmt, st);
  uint64_t req = cs->next_req_id++;
  std::string wrapped = MakeDmlWrap(cs->status_table, req, dml);
  ++stats_.dml_wrapped;

  for (int attempt = 0; attempt < 5; ++attempt) {
    auto results = dbc->driver->ExecScript(wrapped);
    if (results.ok()) {
      // Results: [BEGIN, dml, status-insert, COMMIT]; index 1 is the DML.
      int64_t affected =
          results->size() > 1 ? (*results)[1].affected : -1;
      InstallResult(stmt, eng::StatementResult::Affected(affected));
      return SqlReturn::kSuccess;
    }
    if (!IsCrashSignal(results.status())) {
      return Fail(stmt, results.status());
    }
    auto outcome = RecoverConnection(dbc);
    if (!outcome.ok()) return Fail(stmt, outcome.status());
    // Whether the failure was a crash or a lost message, the status table
    // is the testable state: did the wrapped transaction commit?
    ++stats_.status_probes;
    auto probe = ExecOnPrivate(dbc, MakeStatusProbe(cs->status_table, req));
    if (!probe.ok()) return Fail(stmt, probe.status());
    if (!(*probe)[0].rows.empty()) {
      // Committed before the failure — only the reply was lost.
      ++stats_.lost_replies_recovered;
      int64_t affected = (*probe)[0].rows[0][0].AsInt64();
      InstallResult(stmt, eng::StatementResult::Affected(affected));
      return SqlReturn::kSuccess;
    }
    // Never executed (or rolled back by the crash): resubmit.
    ++stats_.resubmissions;
  }
  return Fail(stmt, Status::CommError("DML retry budget exhausted"));
}

SqlReturn PhoenixDriverManager::ExecInTxn(Hstmt* stmt, const std::string& sql,
                                          ConnState* cs) {
  Hdbc* dbc = stmt->dbc;
  Status st = EnsureStatusTable(dbc, cs);
  if (!st.ok()) return Fail(stmt, st);
  // Testable state *inside* the open transaction: a status row written by
  // the same request. It is uncommitted, so a crash wipes it together with
  // the statement's effects (consistent), while after a mere lost reply the
  // private connection's probe still sees it (Phoenix would read it at
  // READ UNCOMMITTED on a real server). This prevents double-applying a
  // statement whose reply vanished.
  uint64_t req = cs->next_req_id++;
  std::string wrapped = sql + "; INSERT INTO " + cs->status_table +
                        " (REQ_ID, AFFECTED) VALUES (" + std::to_string(req) +
                        ", ROWCOUNT())";
  for (int attempt = 0; attempt < 5; ++attempt) {
    auto results = dbc->driver->ExecScript(wrapped);
    if (results.ok()) {
      cs->txn_log.push_back(wrapped);
      // The application's result is the last statement before the marker.
      InstallResult(stmt, std::move((*results)[results->size() - 2]));
      return SqlReturn::kSuccess;
    }
    if (!IsCrashSignal(results.status())) return Fail(stmt, results.status());
    // Recovery: a crash replays BEGIN + txn_log (without this statement); a
    // transient failure leaves the server transaction as-is.
    auto outcome = RecoverConnection(dbc);
    if (!outcome.ok()) return Fail(stmt, outcome.status());
    ++stats_.status_probes;
    auto probe = ExecOnPrivate(dbc, MakeStatusProbe(cs->status_table, req));
    if (!probe.ok()) return Fail(stmt, probe.status());
    if (!(*probe)[0].rows.empty()) {
      // Executed inside the still-open transaction; only the reply was lost.
      ++stats_.lost_replies_recovered;
      cs->txn_log.push_back(wrapped);
      int64_t affected = (*probe)[0].rows[0][0].AsInt64();
      InstallResult(stmt, eng::StatementResult::Affected(affected));
      return SqlReturn::kSuccess;
    }
    ++stats_.resubmissions;
  }
  return Fail(stmt, Status::CommError("transaction retry budget exhausted"));
}

SqlReturn PhoenixDriverManager::ExecCommit(Hstmt* stmt, ConnState* cs) {
  Hdbc* dbc = stmt->dbc;
  Status st = EnsureStatusTable(dbc, cs);
  if (!st.ok()) return Fail(stmt, st);
  for (int attempt = 0; attempt < 5; ++attempt) {
    // The marker id (and hence the script) is rebuilt every attempt: when a
    // crash rolled the transaction back, recovery's replay branch cleared
    // pending_commit_req — the old marker died with the old transaction —
    // and the resubmitted COMMIT must carry a fresh id.
    if (cs->pending_commit_req == 0) {
      cs->pending_commit_req = cs->next_req_id++;
    }
    // Commit marker: written inside the transaction, so its presence after
    // a crash proves the commit happened and the reply was merely lost.
    std::string sql = "INSERT INTO " + cs->status_table +
                      " (REQ_ID, AFFECTED) VALUES (" +
                      std::to_string(cs->pending_commit_req) + ", 0); COMMIT";
    auto results = dbc->driver->ExecScript(sql);
    if (results.ok()) {
      cs->in_txn = false;
      cs->txn_log.clear();
      cs->pending_commit_req = 0;
      InstallResult(stmt, eng::StatementResult::Affected(0));
      return SqlReturn::kSuccess;
    }
    if (!IsCrashSignal(results.status())) return Fail(stmt, results.status());
    auto outcome = RecoverConnection(dbc);
    if (!outcome.ok()) return Fail(stmt, outcome.status());
    if (!cs->in_txn) {
      // RecoverConnection found the commit marker: the transaction had
      // committed before the crash.
      InstallResult(stmt, eng::StatementResult::Affected(0));
      return SqlReturn::kSuccess;
    }
    if (*outcome == RecoveryOutcome::kTransient) {
      // No crash — maybe only the reply was lost. Probe the marker before
      // resubmitting, or the marker insert would double-apply.
      ++stats_.status_probes;
      auto probe = ExecOnPrivate(
          dbc, MakeStatusProbe(cs->status_table, cs->pending_commit_req));
      if (!probe.ok()) return Fail(stmt, probe.status());
      if (!(*probe)[0].rows.empty()) {
        ++stats_.lost_replies_recovered;
        cs->in_txn = false;
        cs->txn_log.clear();
        cs->pending_commit_req = 0;
        InstallResult(stmt, eng::StatementResult::Affected(0));
        return SqlReturn::kSuccess;
      }
    }
    // Transaction replayed (crash) or never committed (lost request):
    // resubmit the commit.
  }
  return Fail(stmt, Status::CommError("commit retry budget exhausted"));
}

SqlReturn PhoenixDriverManager::ExecPassthrough(Hstmt* stmt,
                                                const std::string& sql,
                                                ConnState* cs,
                                                bool resubmit_benign) {
  bool retried = false;
  for (int attempt = 0; attempt < 5; ++attempt) {
    auto results = stmt->dbc->driver->ExecScript(sql);
    if (results.ok()) {
      if (results->empty()) {
        return Fail(stmt, Status::Internal("empty result batch"));
      }
      stmt->pending = std::move(results.value());
      stmt->pending_pos = 1;
      InstallResult(stmt, std::move(stmt->pending[0]));
      (void)cs;
      return SqlReturn::kSuccess;
    }
    const Status& st = results.status();
    if (IsCrashSignal(st)) {
      auto outcome = RecoverConnection(stmt->dbc);
      if (!outcome.ok()) return Fail(stmt, outcome.status());
      retried = true;
      continue;  // resubmit
    }
    // A resubmitted statement whose first (reply-lost) execution already
    // took effect: duplicate-DDL diagnostics are benign on a retry.
    if (retried && resubmit_benign &&
        (st.code() == StatusCode::kAlreadyExists ||
         (st.code() == StatusCode::kSqlError &&
          st.message().find("no such") != std::string::npos))) {
      InstallResult(stmt, eng::StatementResult::Affected(0));
      return SqlReturn::kSuccess;
    }
    return Fail(stmt, st);
  }
  return Fail(stmt, Status::CommError("retry budget exhausted"));
}

// ---------------------------------------------------------------------------
// Fetch paths
// ---------------------------------------------------------------------------

SqlReturn PhoenixDriverManager::Fetch(Hstmt* stmt) {
  ConnState* cs = conn_state(stmt->dbc);
  StmtState* vs = stmt_state(stmt);
  if (cs == nullptr || vs == nullptr || !config_.enabled) {
    return DriverManager::Fetch(stmt);
  }
  if (cs->broken) return Fail(stmt, Status::CommError("session unrecoverable"));
  SqlReturn r;
  switch (vs->kind) {
    case StmtState::Kind::kMaterialized:
      r = FetchMaterialized(stmt, cs);
      break;
    case StmtState::Kind::kKeyset:
      r = FetchKeyset(stmt, cs, vs);
      break;
    case StmtState::Kind::kDynamic:
      r = FetchDynamic(stmt, cs, vs);
      break;
    case StmtState::Kind::kNone:
    default:
      r = DriverManager::Fetch(stmt);
      break;
  }
  if (r == SqlReturn::kSuccess && vs->recovered) {
    // This row reached the application only because the virtual session
    // survived a crash — the quantity Figure 2 calls "redelivered".
    ++stats_.rows_redelivered;
    ++stats_.last_recovery.rows_redelivered;
    obs::MetricsRegistry::Default()
        ->GetCounter("core.rows_redelivered")
        ->Increment();
  }
  return r;
}

SqlReturn PhoenixDriverManager::FetchMaterialized(Hstmt* stmt, ConnState* cs) {
  for (int attempt = 0; attempt < 5; ++attempt) {
    SqlReturn r = DriverManager::Fetch(stmt);
    if (r != SqlReturn::kError) return r;
    if (!IsCrashSignal(stmt->diag)) return r;
    auto outcome = RecoverConnection(stmt->dbc);
    if (!outcome.ok()) return Fail(stmt, outcome.status());
    if (*outcome == RecoveryOutcome::kTransient) {
      // A lost block-fetch reply advanced the server cursor past rows the
      // client never saw; re-position to the delivery watermark.
      stmt->dbc->driver->Seek(stmt->server_cursor_id, stmt->rows_delivered);
      stmt->buffered.clear();
      stmt->buffer_pos = 0;
      stmt->server_done = false;
    }
    // Remapped case: recovery already re-opened and re-positioned the
    // cursor over the persistent result table; retrying resumes seamlessly.
  }
  (void)cs;
  return Fail(stmt, Status::CommError("fetch retry budget exhausted"));
}

Result<bool> PhoenixDriverManager::NextKey(Hstmt* stmt, ConnState* cs,
                                           StmtState* vs, Row* key) {
  Hdbc* dbc = stmt->dbc;
  if (vs->key_buffer.empty() && !vs->keys_done) {
    for (int attempt = 0; attempt < 5; ++attempt) {
      auto block = dbc->driver->Fetch(vs->key_cursor_id, config_.fetch_block);
      if (block.ok()) {
        for (Row& row : block->rows) vs->key_buffer.push_back(std::move(row));
        vs->keys_done = block->done;
        break;
      }
      if (!IsCrashSignal(block.status())) return block.status();
      PHX_ASSIGN_OR_RETURN(RecoveryOutcome outcome, RecoverConnection(dbc));
      if (outcome == RecoveryOutcome::kTransient) {
        // Lost reply may have advanced the key cursor: re-position it.
        dbc->driver->Seek(vs->key_cursor_id, vs->keys_consumed);
      }
    }
  }
  (void)cs;
  if (vs->key_buffer.empty()) return false;
  *key = std::move(vs->key_buffer.front());
  vs->key_buffer.pop_front();
  ++vs->keys_consumed;
  return true;
}

SqlReturn PhoenixDriverManager::FetchKeyset(Hstmt* stmt, ConnState* cs,
                                            StmtState* vs) {
  while (true) {
    Row key;
    auto have = NextKey(stmt, cs, vs, &key);
    if (!have.ok()) return Fail(stmt, have.status());
    if (!*have) {
      stmt->diag = Status::EndOfData();
      return SqlReturn::kNoData;
    }
    // Re-read the current row by key: updates are visible, deletions skip.
    std::string sql =
        MakeKeyLookup(*vs->original_select, vs->pk_columns, key)->ToSql();
    auto rows = ExecOnMain(stmt->dbc, sql, /*resubmit=*/true);
    if (!rows.ok()) return Fail(stmt, rows.status());
    if ((*rows)[0].rows.empty()) continue;  // row deleted since open
    stmt->current = std::move((*rows)[0].rows[0]);
    ++stmt->rows_delivered;
    return SqlReturn::kSuccess;
  }
}

SqlReturn PhoenixDriverManager::FetchDynamic(Hstmt* stmt, ConnState* cs,
                                             StmtState* vs) {
  if (!vs->pending_rows.empty()) {
    stmt->current = std::move(vs->pending_rows.front());
    vs->pending_rows.pop_front();
    ++stmt->rows_delivered;
    return SqlReturn::kSuccess;
  }
  while (true) {
    Row key;
    auto have = NextKey(stmt, cs, vs, &key);
    if (!have.ok()) return Fail(stmt, have.status());
    if (!*have) {
      stmt->diag = Status::EndOfData();
      return SqlReturn::kNoData;
    }
    // Fetch the whole key range (last, key]: rows inserted into the range
    // since open are picked up — the dynamic-membership property.
    const Value* low = vs->range_started ? &vs->last_key[0] : nullptr;
    std::string sql =
        MakeRangeLookup(*vs->original_select, vs->pk_columns[0], low, key[0])
            ->ToSql();
    auto rows = ExecOnMain(stmt->dbc, sql, /*resubmit=*/true);
    if (!rows.ok()) return Fail(stmt, rows.status());
    vs->last_key = key;
    vs->range_started = true;
    if ((*rows)[0].rows.empty()) continue;  // range emptied by deletions
    for (Row& row : (*rows)[0].rows) vs->pending_rows.push_back(std::move(row));
    stmt->current = std::move(vs->pending_rows.front());
    vs->pending_rows.pop_front();
    ++stmt->rows_delivered;
    return SqlReturn::kSuccess;
  }
}

SqlReturn PhoenixDriverManager::SeekRow(Hstmt* stmt, uint64_t position) {
  ConnState* cs = conn_state(stmt->dbc);
  StmtState* vs = stmt_state(stmt);
  if (cs == nullptr || vs == nullptr || !config_.enabled) {
    return DriverManager::SeekRow(stmt, position);
  }
  if (cs->broken) return Fail(stmt, Status::CommError("session unrecoverable"));
  switch (vs->kind) {
    case StmtState::Kind::kMaterialized:
      for (int attempt = 0; attempt < 5; ++attempt) {
        SqlReturn r = DriverManager::SeekRow(stmt, position);
        if (r != SqlReturn::kError) return r;
        if (!IsCrashSignal(stmt->diag)) return r;
        auto outcome = RecoverConnection(stmt->dbc);
        if (!outcome.ok()) return Fail(stmt, outcome.status());
      }
      return Fail(stmt, Status::CommError("seek retry budget exhausted"));
    case StmtState::Kind::kKeyset: {
      // Position within the frozen key set; the next fetch re-reads from
      // that key onward.
      for (int attempt = 0; attempt < 5; ++attempt) {
        auto s = stmt->dbc->driver->Seek(vs->key_cursor_id, position);
        if (s.ok()) {
          vs->keys_consumed = position;
          vs->key_buffer.clear();
          vs->keys_done = false;
          stmt->rows_delivered = position;
          stmt->current.clear();
          return SqlReturn::kSuccess;
        }
        if (!IsCrashSignal(s)) return Fail(stmt, s);
        auto outcome = RecoverConnection(stmt->dbc);
        if (!outcome.ok()) return Fail(stmt, outcome.status());
      }
      return Fail(stmt, Status::CommError("seek retry budget exhausted"));
    }
    case StmtState::Kind::kDynamic:
      return Fail(stmt, Status::NotSupported(
                            "absolute positioning on a dynamic cursor"));
    case StmtState::Kind::kNone:
      break;
  }
  return DriverManager::SeekRow(stmt, position);
}

SqlReturn PhoenixDriverManager::CloseCursor(Hstmt* stmt) {
  StmtState* vs = stmt_state(stmt);
  ConnState* cs = conn_state(stmt->dbc);
  if (vs != nullptr && cs != nullptr && vs->key_cursor_id != 0 &&
      stmt->dbc->connected && !cs->broken) {
    stmt->dbc->driver->CloseCursor(vs->key_cursor_id);
  }
  stmt->dm_state.reset();
  return DriverManager::CloseCursor(stmt);
}

// ---------------------------------------------------------------------------
// Connection-level plumbing
// ---------------------------------------------------------------------------

Result<std::vector<eng::StatementResult>> PhoenixDriverManager::ExecOnMain(
    Hdbc* dbc, const std::string& sql, bool resubmit_after_remap) {
  for (int attempt = 0; attempt < 5; ++attempt) {
    auto results = dbc->driver->ExecScript(sql);
    if (results.ok()) return results;
    if (!IsCrashSignal(results.status())) return results;
    PHX_ASSIGN_OR_RETURN(RecoveryOutcome outcome, RecoverConnection(dbc));
    if (outcome == RecoveryOutcome::kRemapped && !resubmit_after_remap) {
      return Status::CommError("request lost in server crash");
    }
  }
  return Status::CommError("retry budget exhausted");
}

Status PhoenixDriverManager::OpenCursorWithRecovery(Hdbc* dbc,
                                                    const std::string& table,
                                                    uint64_t position,
                                                    uint64_t* cursor_id) {
  Status last;
  for (int attempt = 0; attempt < 5; ++attempt) {
    last = RepositionCursor(dbc, table, position, cursor_id);
    if (last.ok() || !IsCrashSignal(last)) return last;
    auto outcome = RecoverConnection(dbc);
    if (!outcome.ok()) return outcome.status();
  }
  return last;
}

Result<std::vector<eng::StatementResult>> PhoenixDriverManager::ExecOnPrivate(
    Hdbc* dbc, const std::string& sql) {
  ConnState* cs = conn_state(dbc);
  for (int attempt = 0; attempt < 5; ++attempt) {
    auto results = cs->private_conn->ExecScript(sql);
    if (results.ok()) return results;
    if (!IsCrashSignal(results.status())) return results;
    PHX_ASSIGN_OR_RETURN(RecoveryOutcome outcome, RecoverConnection(dbc));
    (void)outcome;
  }
  return Status::CommError("retry budget exhausted (private connection)");
}

}  // namespace phoenix::core
