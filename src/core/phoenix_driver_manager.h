#ifndef PHOENIX_CORE_PHOENIX_DRIVER_MANAGER_H_
#define PHOENIX_CORE_PHOENIX_DRIVER_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/virtual_session.h"
#include "odbc/driver_manager.h"

namespace phoenix::core {

/// The Phoenix-enhanced driver manager (the paper's contribution).
///
/// It wraps every server-touching ODBC call point with a surrogate that
///  (1) persists volatile session state as server tables before the request
///      reaches the native driver,
///  (2) maps the application's handles onto a *virtual* session, and
///  (3) detects server failures, waits out recovery, re-maps the virtual
///      session onto a fresh connection, reinstalls the saved SQL state, and
///      transparently resumes — the application just sees a slow call.
///
/// Applications use it exactly like the plain DriverManager; with
/// `config.enabled = false` it degenerates to the plain DM byte-for-byte.
class PhoenixDriverManager : public odbc::DriverManager {
 public:
  PhoenixDriverManager(net::Network* network, PhoenixConfig config = {});

  // Intercepted call points (the "surrogates").
  odbc::SqlReturn Connect(odbc::Hdbc* dbc, const std::string& dsn,
                          const std::string& user) override;
  odbc::SqlReturn Disconnect(odbc::Hdbc* dbc) override;
  odbc::SqlReturn SetConnectOption(odbc::Hdbc* dbc, const std::string& name,
                                   const std::string& value) override;
  odbc::SqlReturn ExecDirect(odbc::Hstmt* stmt, const std::string& sql) override;
  odbc::SqlReturn Fetch(odbc::Hstmt* stmt) override;
  odbc::SqlReturn SeekRow(odbc::Hstmt* stmt, uint64_t position) override;
  odbc::SqlReturn CloseCursor(odbc::Hstmt* stmt) override;

  /// Administrative sweep: drops Phoenix-created server objects abandoned
  /// by clients that died without end-of-session cleanup. An object named
  /// <prefix>_<KIND>_<tag>... is orphaned iff no live session still owns
  /// the session-proxy temp table <prefix>_PROXY_<tag>. Returns how many
  /// objects were dropped. Safe to run while other Phoenix clients are
  /// active.
  static Result<int> CleanupOrphans(net::Network* network,
                                    const std::string& dsn,
                                    const std::string& user,
                                    const std::string& prefix = "PHX");

  /// Test-only surface over the raw RepositionCursor path (regression
  /// coverage for the short-discard bug: repositioning past the end of the
  /// persistent result table must fail loudly, never silently succeed).
  Status RepositionCursorForTest(odbc::Hdbc* dbc, const std::string& table,
                                 uint64_t position, uint64_t* cursor_id) {
    return RepositionCursor(dbc, table, position, cursor_id);
  }

  const PhoenixConfig& config() const { return config_; }
  PhoenixConfig* mutable_config() { return &config_; }
  const PhoenixStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PhoenixStats(); }

  /// Phoenix bookkeeping attached to a handle (test/bench introspection).
  static ConnState* conn_state(odbc::Hdbc* dbc) {
    return static_cast<ConnState*>(dbc->dm_state.get());
  }
  static StmtState* stmt_state(odbc::Hstmt* stmt) {
    return static_cast<StmtState*>(stmt->dm_state.get());
  }

 private:
  enum class RecoveryOutcome { kTransient, kRemapped };

  // ---- execution paths (phoenix_driver_manager.cc) ----
  odbc::SqlReturn ExecMaterializedSelect(odbc::Hstmt* stmt,
                                         const sql::SelectStmt& sel,
                                         ConnState* cs);
  odbc::SqlReturn ExecCursorProxy(odbc::Hstmt* stmt, const sql::SelectStmt& sel,
                                  ConnState* cs, bool dynamic);
  odbc::SqlReturn ExecWrappedDml(odbc::Hstmt* stmt, const sql::Statement& dml,
                                 ConnState* cs);
  odbc::SqlReturn ExecInTxn(odbc::Hstmt* stmt, const std::string& sql,
                            ConnState* cs);
  odbc::SqlReturn ExecCommit(odbc::Hstmt* stmt, ConnState* cs);
  odbc::SqlReturn ExecPassthrough(odbc::Hstmt* stmt, const std::string& sql,
                                  ConnState* cs, bool resubmit_benign);

  odbc::SqlReturn FetchMaterialized(odbc::Hstmt* stmt, ConnState* cs);
  odbc::SqlReturn FetchKeyset(odbc::Hstmt* stmt, ConnState* cs, StmtState* vs);
  odbc::SqlReturn FetchDynamic(odbc::Hstmt* stmt, ConnState* cs, StmtState* vs);

  // ---- plumbing ----
  /// Executes on the app's (main) connection, recovering and retrying on
  /// crash signals. Only safe for idempotent statements unless
  /// `resubmit_after_remap` is false.
  Result<std::vector<eng::StatementResult>> ExecOnMain(
      odbc::Hdbc* dbc, const std::string& sql, bool resubmit_after_remap);
  /// Same, on the Phoenix private connection.
  Result<std::vector<eng::StatementResult>> ExecOnPrivate(
      odbc::Hdbc* dbc, const std::string& sql);

  Status EnsureStatusTable(odbc::Hdbc* dbc, ConnState* cs);
  /// CREATE TABLE for a freshly named, session-tagged Phoenix artifact
  /// (result / key tables). An AlreadyExists hit can only be our own
  /// lost-reply predecessor, so it is dropped and the CREATE retried.
  Status CreateFreshArtifactTable(odbc::Hdbc* dbc,
                                  const sql::CreateTableStmt& ct,
                                  const std::string& table);
  Result<Schema> ProbeMetadata(odbc::Hdbc* dbc, const sql::SelectStmt& sel);
  Status MaterializeInto(odbc::Hdbc* dbc, const sql::SelectStmt& sel,
                         const std::string& table);
  /// Pulls the next key of a keyset/dynamic proxy. Returns false at end.
  Result<bool> NextKey(odbc::Hstmt* stmt, ConnState* cs, StmtState* vs,
                       Row* key);

  /// An error that may mean "the server crashed": comm error, timeout, or a
  /// dangling pre-crash session id.
  bool IsCrashSignal(const Status& s) const;

  // ---- recovery (recovery_manager.cc) ----
  /// Outer driver: runs RecoverConnectionOnce, restarting the whole pass
  /// (up to config_.recovery.max_recovery_rounds) when recovery itself dies
  /// on a crash signal — the server crashed again mid-recovery.
  Result<RecoveryOutcome> RecoverConnection(odbc::Hdbc* dbc);
  /// One detection + Phase 1 + Phase 2 pass.
  Result<RecoveryOutcome> RecoverConnectionOnce(odbc::Hdbc* dbc,
                                                ConnState* cs);
  Status ReinstallSqlState(odbc::Hdbc* dbc, ConnState* cs);
  Status RepositionCursor(odbc::Hdbc* dbc, const std::string& table,
                          uint64_t position, uint64_t* cursor_id);
  /// RepositionCursor with crash-signal recovery + retry (used on the
  /// initial open; recovery itself uses the raw version).
  Status OpenCursorWithRecovery(odbc::Hdbc* dbc, const std::string& table,
                                uint64_t position, uint64_t* cursor_id);

  PhoenixConfig config_;
  PhoenixStats stats_;
};

}  // namespace phoenix::core

#endif  // PHOENIX_CORE_PHOENIX_DRIVER_MANAGER_H_
