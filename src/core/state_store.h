#ifndef PHOENIX_CORE_STATE_STORE_H_
#define PHOENIX_CORE_STATE_STORE_H_

#include <string>

#include "core/virtual_session.h"

namespace phoenix::core {

/// Naming and bookkeeping for the server-side objects that materialize a
/// session's volatile state. Pure string/bookkeeping logic — all I/O stays
/// in the driver manager.

/// Process-unique connection tag (embedded in object names so two Phoenix
/// connections never collide, even against leftovers of a crashed client).
std::string MakeConnTag();

/// PHX_RES_<tag>_<n> — a materialized result-set table name.
std::string NextResultTableName(const PhoenixConfig& config, ConnState* conn);

/// PHX_KEY_<tag>_<n> — a materialized key-set table name.
std::string NextKeyTableName(const PhoenixConfig& config, ConnState* conn);

/// PHX_ST_<tag> — the per-connection DML status table.
std::string StatusTableName(const PhoenixConfig& config, const ConnState& conn);

/// PHX_PROXY_<tag> — the session-liveness proxy temp table.
std::string ProxyTableName(const PhoenixConfig& config, const ConnState& conn);

/// PHX_TMP_<tag>_<original> — the persistent stand-in for a temp object.
std::string TempStandInName(const PhoenixConfig& config, const ConnState& conn,
                            const std::string& original);

}  // namespace phoenix::core

#endif  // PHOENIX_CORE_STATE_STORE_H_
