#ifndef PHOENIX_CORE_CLASSIFIER_H_
#define PHOENIX_CORE_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"

namespace phoenix::core {

/// What Phoenix decides to do with an intercepted request — the outcome of
/// the paper's "one-pass parse to determine request type".
enum class RequestClass : uint8_t {
  kSelect,           ///< single SELECT producing a result set
  kSelectInto,       ///< SELECT ... INTO (behaves like DML: testable state)
  kDml,              ///< single INSERT/UPDATE/DELETE
  kCreateTempTable,  ///< to be rewritten to a persistent table
  kCreateTempProc,   ///< to be rewritten to a persistent procedure
  kDropObject,       ///< DROP TABLE/PROCEDURE (may refer to a mapped temp)
  kBegin,
  kCommit,
  kRollback,
  kBatch,            ///< multi-statement script
  kPassthrough,      ///< everything else (persistent DDL, EXEC, SHOW, ...)
};

const char* RequestClassName(RequestClass c);

struct Classification {
  RequestClass cls = RequestClass::kPassthrough;
  std::vector<std::unique_ptr<sql::Statement>> stmts;

  sql::Statement* stmt() { return stmts.empty() ? nullptr : stmts[0].get(); }
};

/// Parses `sql` and classifies it. A parse failure is returned as a status —
/// the caller then forwards the raw text to the server so the application
/// sees the server's own diagnostics (Phoenix stays transparent).
Result<Classification> Classify(const std::string& sql);

}  // namespace phoenix::core

#endif  // PHOENIX_CORE_CLASSIFIER_H_
