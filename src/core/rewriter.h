#ifndef PHOENIX_CORE_REWRITER_H_
#define PHOENIX_CORE_REWRITER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "sql/ast.h"

namespace phoenix::core {

/// AST-level SQL rewrites — the mechanics behind each Phoenix trick in §3 of
/// the paper. All functions are pure (no I/O); the driver manager decides
/// which connection executes the emitted SQL.

/// The `WHERE 0=1` metadata probe: same select, guaranteed-empty result,
/// compile-only server work. ORDER BY/LIMIT are stripped (metadata-neutral).
std::unique_ptr<sql::SelectStmt> MakeMetadataProbe(const sql::SelectStmt& sel);

/// CREATE TABLE <name> (...) from result-set metadata. Column names are
/// sanitized to valid, unique identifiers (C1..Cn fallback) — the app never
/// sees this table's schema, only the original metadata.
sql::CreateTableStmt MakeCreateTableFromMetadata(const std::string& table,
                                                 const Schema& metadata);

/// INSERT INTO <table> <select> — the single-round-trip, data-stays-on-the-
/// server materialization (the role of the paper's stored procedure P).
std::unique_ptr<sql::Statement> MakeInsertSelect(const std::string& table,
                                                 const sql::SelectStmt& sel);

/// SELECT <pk...> FROM <base> WHERE <sel.where> ORDER BY <pk...> — key-set
/// materialization source for keyset/dynamic cursors.
std::unique_ptr<sql::SelectStmt> MakeSelectKeys(
    const sql::SelectStmt& sel, const std::vector<std::string>& pk_columns);

/// SELECT <sel.items> FROM <base> WHERE pk1=k1 AND pk2=k2... — keyset
/// per-fetch current-row lookup.
std::unique_ptr<sql::SelectStmt> MakeKeyLookup(
    const sql::SelectStmt& sel, const std::vector<std::string>& pk_columns,
    const Row& key);

/// Dynamic-cursor range fetch: original WHERE AND pk > low AND pk <= high,
/// ORDER BY pk. `low` may be null (start of cursor). Single-column PKs only.
std::unique_ptr<sql::SelectStmt> MakeRangeLookup(
    const sql::SelectStmt& sel, const std::string& pk_column,
    const Value* low, const Value& high);

/// The DML wrap: BEGIN; <dml>; INSERT INTO <status>(REQ_ID, AFFECTED)
/// VALUES (req, ROWCOUNT()); COMMIT — one atomic unit whose outcome is
/// testable after a crash.
std::string MakeDmlWrap(const std::string& status_table, uint64_t req_id,
                        const sql::Statement& dml);

/// SELECT AFFECTED FROM <status> WHERE REQ_ID = req — the post-crash probe.
std::string MakeStatusProbe(const std::string& status_table, uint64_t req_id);

/// DDL for the per-connection status table.
std::string MakeStatusTableDdl(const std::string& status_table);

/// Renames every table/procedure reference appearing in `stmt` according to
/// `table_map` / `proc_map` (keys uppercased). A FROM reference renamed
/// without an alias gets its original name as alias, so existing column
/// qualifiers keep resolving. Returns true if anything changed.
bool RenameObjects(sql::Statement* stmt,
                   const std::map<std::string, std::string>& table_map,
                   const std::map<std::string, std::string>& proc_map);

/// Makes a metadata column name a safe unique identifier.
std::string SanitizeColumnName(const std::string& name, size_t index,
                               std::map<std::string, int>* used);

}  // namespace phoenix::core

#endif  // PHOENIX_CORE_REWRITER_H_
