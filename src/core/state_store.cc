#include "core/state_store.h"

#include <atomic>
#include <cctype>

namespace phoenix::core {

std::string MakeConnTag() {
  static std::atomic<uint64_t> counter{1};
  return std::to_string(counter.fetch_add(1));
}

std::string NextResultTableName(const PhoenixConfig& config, ConnState* conn) {
  return config.object_prefix + "_RES_" + conn->tag + "_" +
         std::to_string(conn->next_artifact++);
}

std::string NextKeyTableName(const PhoenixConfig& config, ConnState* conn) {
  return config.object_prefix + "_KEY_" + conn->tag + "_" +
         std::to_string(conn->next_artifact++);
}

std::string StatusTableName(const PhoenixConfig& config,
                            const ConnState& conn) {
  return config.object_prefix + "_ST_" + conn.tag;
}

std::string ProxyTableName(const PhoenixConfig& config, const ConnState& conn) {
  return config.object_prefix + "_PROXY_" + conn.tag;
}

std::string TempStandInName(const PhoenixConfig& config, const ConnState& conn,
                            const std::string& original) {
  std::string clean;
  for (char c : original) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      clean.push_back(static_cast<char>(std::toupper((unsigned char)c)));
    }
  }
  return config.object_prefix + "_TMP_" + conn.tag + "_" + clean;
}

}  // namespace phoenix::core
