#ifndef PHOENIX_CORE_VIRTUAL_SESSION_H_
#define PHOENIX_CORE_VIRTUAL_SESSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/options.h"
#include "common/rng.h"
#include "common/value.h"
#include "odbc/driver.h"
#include "sql/ast.h"

namespace phoenix::core {

/// Milestones inside one crash-recovery pass. Fault harnesses register a
/// PhoenixConfig::recovery_point_hook to crash the server *at* one of these
/// points, exercising re-crash-during-recovery.
enum class RecoveryPoint : uint8_t {
  /// A real crash was confirmed (proxy table gone); Phase 1 is about to run.
  kDetected = 0,
  /// Phase 1 done: virtual session remapped onto a fresh connection.
  kVirtualSessionRemapped,
  /// Phase 2 done: SQL state (txn, cursors) reinstalled.
  kSqlStateReinstalled,
};

/// Retry/backoff policy for crash recovery. Replaces the old busy-spin
/// between reconnect attempts with a real sleep growing exponentially to a
/// cap, plus seeded jitter so simultaneous clients do not reconnect in
/// lockstep — while every run stays reproducible.
struct RecoveryConfig {
  /// Sleep before the second reconnect attempt (the first is immediate).
  uint64_t initial_backoff_us = 200;
  /// Backoff ceiling. Kept small so the give-up path (reconnect_attempts
  /// exhausted) stays fast in tests.
  uint64_t max_backoff_us = 10000;
  /// Growth factor per attempt.
  double backoff_multiplier = 2.0;
  /// Uniform jitter as a fraction of the backoff: sleep is drawn from
  /// [backoff*(1-j), backoff*(1+j)], clamped to max_backoff_us.
  double jitter = 0.25;
  /// Seeds the deterministic jitter stream.
  uint64_t jitter_seed = 1;
  /// Full recovery passes to attempt when recovery *itself* dies on a crash
  /// signal (server crashed again mid-Phase-1/2) before declaring the
  /// session unrecoverable.
  int max_recovery_rounds = 5;
};

/// Deterministic backoff for reconnect `attempt` (0-based): capped
/// exponential plus seeded jitter from `rng` (pass nullptr for none).
uint64_t RecoveryBackoffUs(const RecoveryConfig& cfg, int attempt, Rng* rng);

/// Tuning & policy knobs for the Phoenix layer.
struct PhoenixConfig {
  /// Env-seeded defaults (PHX_ENDPOINTS → server_group), same pattern as
  /// eng::DatabaseOptions; explicit field assignment overrides as usual.
  PhoenixConfig() : server_group(Options::FromEnv().endpoints) {}

  /// Master switch: disabled == behave exactly like the plain DM.
  bool enabled = true;

  /// Reconnect attempts before giving up and surfacing the comm error.
  int reconnect_attempts = 200;
  /// Invoked between reconnect attempts. Test harnesses and benches restart
  /// the server from here; by default recovery sleeps per `recovery`'s
  /// capped exponential backoff.
  std::function<void()> retry_wait;

  /// Reconnect backoff + recovery-retry policy.
  RecoveryConfig recovery;

  /// Fault-injection hook fired at each RecoveryPoint milestone. Chaos
  /// tests crash the server from here to model re-crash during recovery.
  std::function<void(RecoveryPoint)> recovery_point_hook;

  /// Rows per block fetch on Phoenix-internal server cursors.
  uint64_t fetch_block = 64;

  /// Reposition recovered result sets server-side via cursor Seek (the
  /// paper's stored-procedure advance). false = ablation: re-fetch from the
  /// start and discard client-side.
  bool server_side_reposition = true;

  /// Materialize results with a single server-side INSERT..SELECT (paper's
  /// stored procedure P). false = ablation: pull rows to the client and
  /// push them back with INSERT VALUES batches.
  bool materialize_via_server = true;

  /// Rows per INSERT VALUES batch for the client-roundtrip ablation.
  uint64_t client_insert_batch = 256;

  /// Prefix for every Phoenix-created server object.
  std::string object_prefix = "PHX";

  /// Server group for failover (Options::endpoints / PHX_ENDPOINTS). When
  /// non-empty, the failure detector sweeps these endpoints on a dead
  /// connection — starting from the one the session last used — and
  /// migrates the virtual session to the first healthy server. The connect
  /// DSN is implicitly a member (prepended if absent). Empty = reconnect to
  /// the original DSN only (single-server behavior).
  std::vector<std::string> server_group;
};

/// Per-recovery-attempt counters, reset at the start of every recovery pass
/// (unlike PhoenixStats' cumulative fields and the registry counters, which
/// stay monotonic across a session's whole life). A second recovery of the
/// same session reports only its own work here.
struct RecoveryStats {
  /// 1-based index of this recovery within the session (== PhoenixStats::
  /// recoveries at the time the pass confirmed a real crash).
  uint64_t attempt = 0;
  uint64_t reconnect_attempts = 0;  ///< dials this pass made
  uint64_t refused_skips = 0;       ///< endpoints skipped as refused
  uint64_t state_reinstalls = 0;    ///< statements re-installed this pass
  uint64_t txn_replays = 0;         ///< txn statements replayed this pass
  uint64_t rows_redelivered = 0;    ///< rows redelivered since this pass
  bool failed_over = false;         ///< session moved to a different server
  std::string endpoint;             ///< server the session landed on
};

/// Counters and phase timings, exposed for tests and the Figure-2 bench.
struct PhoenixStats {
  uint64_t recoveries = 0;
  uint64_t reconnect_attempts = 0;  ///< Ping probes sent while detecting
  uint64_t transient_retries = 0;
  /// Recovery passes restarted because the server crashed again while a
  /// recovery was in progress (re-crash during recovery).
  uint64_t recovery_recrashes = 0;
  uint64_t materialized_results = 0;
  uint64_t keyset_cursors = 0;
  uint64_t dynamic_cursors = 0;
  uint64_t dml_wrapped = 0;
  uint64_t status_probes = 0;
  uint64_t resubmissions = 0;
  uint64_t lost_replies_recovered = 0;
  uint64_t txn_replays = 0;
  uint64_t state_reinstalls = 0;   ///< statements re-installed by recovery
  uint64_t rows_redelivered = 0;   ///< rows delivered via a recovered stmt
  /// Recoveries that landed the session on a *different* server than the
  /// one it lost (multi-endpoint failover).
  uint64_t failovers = 0;
  /// Endpoints skipped instantly because the dial was refused (nothing
  /// listening) instead of burning a backoff round on them.
  uint64_t refused_skips = 0;
  /// The most recent recovery pass's own numbers (reset per pass; see
  /// RecoveryStats). The cumulative fields above never reset.
  RecoveryStats last_recovery;
  /// Phase timings of the most recent recovery (Figure 2's two series).
  double last_detect_seconds = 0;
  double last_virtual_session_seconds = 0;
  double last_sql_state_seconds = 0;
  double total_recovery_seconds = 0;
};

/// Per-statement Phoenix bookkeeping, hung off Hstmt::dm_state.
struct StmtState {
  enum class Kind : uint8_t {
    kNone = 0,
    kMaterialized,  ///< result persisted in `result_table`, cursor over it
    kKeyset,        ///< keys persisted in `result_table`
    kDynamic,       ///< keys persisted; ranges recomputed per fetch
  };
  Kind kind = Kind::kNone;

  /// Phoenix-owned server table holding the result rows or the key set.
  std::string result_table;

  // Keyset/dynamic:
  std::unique_ptr<sql::SelectStmt> original_select;  ///< rewritten names
  std::vector<std::string> pk_columns;
  uint64_t key_cursor_id = 0;       ///< static cursor over result_table
  uint64_t keys_consumed = 0;       ///< position in the key stream
  std::deque<Row> key_buffer;       ///< client-side block of keys
  bool keys_done = false;
  Row last_key;                     ///< dynamic: upper bound already fetched
  bool range_started = false;
  std::deque<Row> pending_rows;     ///< dynamic: rows fetched, undelivered

  /// Set when recovery re-installed this statement's SQL state. Rows
  /// delivered afterwards count as "redelivered" (they reach the app only
  /// because the virtual session survived the crash).
  bool recovered = false;
};

/// Per-connection Phoenix bookkeeping, hung off Hdbc::dm_state. This plus
/// the persistent server tables *is* the virtual session: the client half
/// holds exactly the state the paper says "is also saved on the client...
/// to permit the synchronization of recovered server state with the client
/// state".
struct ConnState {
  std::string tag;  ///< unique per connection; embedded in object names

  // Saved connect/login info and the option replay log (phase-1 recovery).
  std::string dsn;
  std::string user;
  std::vector<std::pair<std::string, std::string>> option_log;

  /// Failover server group (config server_group with the connect DSN
  /// guaranteed a member) and the index of the endpoint the session is
  /// currently on. `dsn` always equals `server_group[active_endpoint]`,
  /// so phase 1/2 reconnects naturally target the surviving server.
  std::vector<std::string> server_group;
  size_t active_endpoint = 0;

  /// Private database connection for Phoenix activity (materialization,
  /// pings, probes) — masked from the application's connection.
  std::unique_ptr<odbc::DriverConnection> private_conn;

  /// Session-liveness proxy: a temp table in the *main* session; it exists
  /// iff the pre-crash session still exists.
  std::string proxy_table;

  /// Testable-state table for DML outcomes.
  std::string status_table;
  bool status_table_created = false;

  uint64_t next_artifact = 1;
  uint64_t next_req_id = 1;

  /// Temp-object name indirection (uppercased original -> actual).
  std::map<std::string, std::string> temp_table_map;
  std::map<std::string, std::string> temp_proc_map;

  /// Every persistent object Phoenix created, for end-of-session cleanup.
  std::vector<std::string> artifact_tables;
  std::vector<std::string> artifact_procs;

  /// Open-transaction tracking for post-crash replay.
  bool in_txn = false;
  std::vector<std::string> txn_log;
  /// Commit-marker request id while a COMMIT is in flight (0 = none).
  uint64_t pending_commit_req = 0;

  /// Set when recovery gave up; subsequent calls fail fast.
  bool broken = false;
};

}  // namespace phoenix::core

#endif  // PHOENIX_CORE_VIRTUAL_SESSION_H_
