#include "core/classifier.h"

#include "sql/parser.h"

namespace phoenix::core {

const char* RequestClassName(RequestClass c) {
  switch (c) {
    case RequestClass::kSelect: return "SELECT";
    case RequestClass::kSelectInto: return "SELECT-INTO";
    case RequestClass::kDml: return "DML";
    case RequestClass::kCreateTempTable: return "CREATE-TEMP-TABLE";
    case RequestClass::kCreateTempProc: return "CREATE-TEMP-PROC";
    case RequestClass::kDropObject: return "DROP";
    case RequestClass::kBegin: return "BEGIN";
    case RequestClass::kCommit: return "COMMIT";
    case RequestClass::kRollback: return "ROLLBACK";
    case RequestClass::kBatch: return "BATCH";
    case RequestClass::kPassthrough: return "PASSTHROUGH";
  }
  return "?";
}

Result<Classification> Classify(const std::string& sql) {
  Classification out;
  PHX_ASSIGN_OR_RETURN(out.stmts, sql::Parser::ParseScript(sql));
  if (out.stmts.size() > 1) {
    out.cls = RequestClass::kBatch;
    return out;
  }
  const sql::Statement& s = *out.stmts[0];
  switch (s.kind) {
    case sql::StmtKind::kSelect:
      out.cls = s.select->into_table.empty() ? RequestClass::kSelect
                                             : RequestClass::kSelectInto;
      break;
    case sql::StmtKind::kInsert:
    case sql::StmtKind::kUpdate:
    case sql::StmtKind::kDelete:
      out.cls = RequestClass::kDml;
      break;
    case sql::StmtKind::kCreateTable:
      out.cls = (s.create_table->temporary ||
                 (!s.create_table->table.empty() &&
                  s.create_table->table[0] == '#'))
                    ? RequestClass::kCreateTempTable
                    : RequestClass::kPassthrough;
      break;
    case sql::StmtKind::kCreateProc:
      out.cls = (s.create_proc->temporary ||
                 (!s.create_proc->name.empty() && s.create_proc->name[0] == '#'))
                    ? RequestClass::kCreateTempProc
                    : RequestClass::kPassthrough;
      break;
    case sql::StmtKind::kDropTable:
    case sql::StmtKind::kDropProc:
      out.cls = RequestClass::kDropObject;
      break;
    case sql::StmtKind::kBeginTxn:
      out.cls = RequestClass::kBegin;
      break;
    case sql::StmtKind::kCommit:
      out.cls = RequestClass::kCommit;
      break;
    case sql::StmtKind::kRollback:
      out.cls = RequestClass::kRollback;
      break;
    default:
      out.cls = RequestClass::kPassthrough;
      break;
  }
  return out;
}

}  // namespace phoenix::core
