#include <algorithm>
#include <chrono>
#include <thread>

#include "common/rng.h"
#include "core/phoenix_driver_manager.h"
#include "core/rewriter.h"
#include "core/state_store.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// Server-failure detection and two-phase virtual-session recovery — the
// machinery behind §3 "Server and Session Crash Recovery" of the paper.

namespace phoenix::core {

using odbc::DriverConnection;
using odbc::Hdbc;
using odbc::Hstmt;

uint64_t RecoveryBackoffUs(const RecoveryConfig& cfg, int attempt, Rng* rng) {
  if (attempt <= 0) return 0;  // first retry is immediate
  double backoff = static_cast<double>(cfg.initial_backoff_us);
  double cap = static_cast<double>(cfg.max_backoff_us);
  for (int i = 1; i < attempt && backoff < cap; ++i) {
    backoff *= std::max(1.0, cfg.backoff_multiplier);
  }
  backoff = std::min(backoff, cap);
  if (rng != nullptr && cfg.jitter > 0) {
    // Uniform in [backoff*(1-j), backoff*(1+j)].
    backoff += backoff * cfg.jitter * (2.0 * rng->NextDouble() - 1.0);
  }
  backoff = std::clamp(backoff, 0.0, cap);
  return static_cast<uint64_t>(backoff);
}

Result<PhoenixDriverManager::RecoveryOutcome>
PhoenixDriverManager::RecoverConnection(Hdbc* dbc) {
  ConnState* cs = conn_state(dbc);
  if (cs == nullptr) return Status::Internal("recovery on a non-Phoenix dbc");
  if (cs->broken) return Status::CommError("session unrecoverable");

  // The server can die *again* while a recovery pass is running (between
  // reconnect and Phase 2). Each such death invalidates the pass's partial
  // work, so restart the whole pass — up to a bounded number of rounds —
  // instead of surfacing a mid-recovery crash signal to the application.
  Status last;
  for (int round = 0; round < config_.recovery.max_recovery_rounds; ++round) {
    if (round > 0) {
      ++stats_.recovery_recrashes;
      obs::MetricsRegistry::Default()
          ->GetCounter("core.recovery_recrashes")
          ->Increment();
      obs::Tracer::Default()->Emit("core.recovery.recrash",
                                   {{"tag", cs->tag}});
    }
    auto outcome = RecoverConnectionOnce(dbc, cs);
    if (outcome.ok()) return outcome;
    last = outcome.status();
    // A give-up point inside the pass (reconnect budget exhausted) already
    // marked the session; a non-crash error is a genuine failure (bad
    // replay SQL, permission loss) that retrying cannot fix.
    if (cs->broken || !IsCrashSignal(last)) return last;
  }
  cs->broken = true;
  return Status::CommError(
      "recovery failed after " +
      std::to_string(config_.recovery.max_recovery_rounds) +
      " re-crashed rounds: " + last.message());
}

Result<PhoenixDriverManager::RecoveryOutcome>
PhoenixDriverManager::RecoverConnectionOnce(Hdbc* dbc, ConnState* cs) {
  auto* reg = obs::MetricsRegistry::Default();
  obs::Tracer::Default()->Emit("core.recovery.start", {{"tag", cs->tag}});
  StopWatch detect_watch;
  // ---- Detection: re-contact a server ----------------------------------
  // Reconnect sweep over the failover group (a single-endpoint group
  // degenerates to the old same-server retry loop). Each round starts at
  // the endpoint the session last used and tries the others in order; a
  // *refused* dial proves nothing listens there and is skipped instantly,
  // while only a fully-failed round pays a backoff sleep. If no server in
  // the group answers within the dial budget, the failure is passed to the
  // application (the paper's give-up path).
  std::unique_ptr<DriverConnection> fresh;
  Rng backoff_rng(config_.recovery.jitter_seed);
  const std::vector<std::string> group =
      cs->server_group.empty() ? std::vector<std::string>{cs->dsn}
                               : cs->server_group;
  size_t landed = cs->active_endpoint < group.size() ? cs->active_endpoint : 0;
  uint64_t pass_reconnects = 0;
  uint64_t pass_refused = 0;
  int dials = 0;
  for (int round = 0; dials < config_.reconnect_attempts; ++round) {
    for (size_t i = 0; i < group.size() && dials < config_.reconnect_attempts;
         ++i) {
      size_t idx = (cs->active_endpoint + i) % group.size();
      ++dials;
      ++stats_.reconnect_attempts;
      ++pass_reconnects;
      reg->GetCounter("core.reconnect_attempts")->Increment();
      auto conn = DriverConnection::Open(network_, group[idx], cs->user);
      if (conn.ok()) {
        fresh = conn.take();
        landed = idx;
        break;
      }
      if (net::IsConnectionRefused(conn.status())) {
        // Fast failover: refused costs one syscall, not a backoff round —
        // move straight to the next endpoint in the group.
        ++stats_.refused_skips;
        ++pass_refused;
        reg->GetCounter("core.endpoint_refused_skips")->Increment();
      }
      // A timed-out / reset dial also continues the sweep; it already paid
      // its own dial latency, and another server may be healthy right now.
    }
    if (fresh != nullptr || dials >= config_.reconnect_attempts) break;
    if (config_.retry_wait) {
      config_.retry_wait();
    } else {
      // Real sleep (the paper "periodically attempts to reconnect"), capped
      // exponential with seeded jitter — never a busy spin.
      uint64_t wait_us =
          RecoveryBackoffUs(config_.recovery, round + 1, &backoff_rng);
      if (wait_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(wait_us));
      }
    }
  }
  if (fresh == nullptr) {
    cs->broken = true;
    return Status::CommError("server unreachable: giving up after " +
                             std::to_string(config_.reconnect_attempts) +
                             " reconnect attempts");
  }

  // ---- Crash vs. transient discrimination ------------------------------
  // "We test whether a special temporary table created by Phoenix/ODBC for
  // the session still exists." It dies with the session; if it is present,
  // the old session survived and the problem was transient.
  auto probe = fresh->ExecScript("SELECT COUNT(*) FROM " + cs->proxy_table);
  if (probe.ok()) {
    fresh->Disconnect();
    ++stats_.transient_retries;
    reg->GetCounter("core.transient_retries")->Increment();
    obs::Tracer::Default()->Emit("core.recovery.transient", {{"tag", cs->tag}});
    return RecoveryOutcome::kTransient;
  }
  stats_.last_detect_seconds = detect_watch.ElapsedSeconds();
  ++stats_.recoveries;
  reg->GetCounter("core.recoveries")->Increment();
  reg->GetHistogram("core.recovery.detect_us")
      ->Record(static_cast<uint64_t>(stats_.last_detect_seconds * 1e6));

  // Per-recovery-attempt numbers start fresh here (the registry counters
  // above stay monotonic); later phases and post-recovery fetches add to
  // last_recovery until the next confirmed crash.
  stats_.last_recovery = RecoveryStats{};
  stats_.last_recovery.attempt = stats_.recoveries;
  stats_.last_recovery.reconnect_attempts = pass_reconnects;
  stats_.last_recovery.refused_skips = pass_refused;
  if (landed != cs->active_endpoint) {
    // Failover: the session is migrating to a different server. All of
    // phase 1/2 below (private connection, proxy table, replay) naturally
    // target the new endpoint through cs->dsn.
    cs->active_endpoint = landed;
    cs->dsn = group[landed];
    ++stats_.failovers;
    stats_.last_recovery.failed_over = true;
    reg->GetCounter("core.failovers")->Increment();
    obs::Tracer::Default()->Emit("core.recovery.failover",
                                 {{"tag", cs->tag}, {"endpoint", cs->dsn}});
  }
  stats_.last_recovery.endpoint = cs->dsn;
  if (config_.recovery_point_hook) {
    config_.recovery_point_hook(RecoveryPoint::kDetected);
  }

  // ---- Phase 1: re-map the virtual session ------------------------------
  StopWatch vs_watch;
  // The fresh connection becomes the new mapping of the virtual connection
  // handle; the application's Hdbc never changes identity.
  dbc->driver = std::move(fresh);
  for (const auto& [name, value] : cs->option_log) {
    PHX_RETURN_IF_ERROR(dbc->driver->SetOption(name, value));
  }
  PHX_RETURN_IF_ERROR(dbc->driver
                          ->ExecScript("CREATE TEMPORARY TABLE " +
                                       cs->proxy_table + " (X INTEGER)")
                          .status());
  // Replacement private connection. On a crash signal the whole pass is
  // retried by RecoverConnection (the server died again); only a non-crash
  // failure here is terminal.
  auto priv = DriverConnection::Open(network_, cs->dsn, cs->user);
  if (!priv.ok()) {
    if (!IsCrashSignal(priv.status())) cs->broken = true;
    return priv.status();
  }
  cs->private_conn = priv.take();
  // The replacement private connection probes testable state exactly like
  // the original did: at READ UNCOMMITTED (see Connect).
  Status iso = cs->private_conn->SetOption("ISOLATION", "READ UNCOMMITTED");
  if (!iso.ok()) {
    if (!IsCrashSignal(iso)) cs->broken = true;
    return iso;
  }
  stats_.last_virtual_session_seconds = vs_watch.ElapsedSeconds();
  reg->GetHistogram("core.recovery.virtual_session_us")
      ->Record(
          static_cast<uint64_t>(stats_.last_virtual_session_seconds * 1e6));
  if (config_.recovery_point_hook) {
    config_.recovery_point_hook(RecoveryPoint::kVirtualSessionRemapped);
  }

  // ---- Phase 2: reinstall SQL state --------------------------------------
  StopWatch sql_watch;
  PHX_RETURN_IF_ERROR(ReinstallSqlState(dbc, cs));
  stats_.last_sql_state_seconds = sql_watch.ElapsedSeconds();
  reg->GetHistogram("core.recovery.sql_state_us")
      ->Record(static_cast<uint64_t>(stats_.last_sql_state_seconds * 1e6));
  stats_.total_recovery_seconds += stats_.last_detect_seconds +
                                   stats_.last_virtual_session_seconds +
                                   stats_.last_sql_state_seconds;
  if (config_.recovery_point_hook) {
    config_.recovery_point_hook(RecoveryPoint::kSqlStateReinstalled);
  }
  obs::Tracer::Default()->Emit("core.recovery.done", {{"tag", cs->tag}});
  return RecoveryOutcome::kRemapped;
}

Status PhoenixDriverManager::ReinstallSqlState(Hdbc* dbc, ConnState* cs) {
  // Open transaction: decide committed-vs-lost, then replay if lost.
  if (cs->in_txn) {
    bool committed = false;
    if (cs->pending_commit_req != 0 && cs->status_table_created) {
      auto probe = cs->private_conn->ExecScript(
          MakeStatusProbe(cs->status_table, cs->pending_commit_req));
      ++stats_.status_probes;
      if (probe.ok() && !(*probe)[0].rows.empty()) committed = true;
    }
    if (committed) {
      // The in-flight COMMIT made it to disk; only the reply was lost.
      ++stats_.lost_replies_recovered;
      obs::MetricsRegistry::Default()
          ->GetCounter("core.lost_reply_resolutions")
          ->Increment();
      cs->in_txn = false;
      cs->txn_log.clear();
      cs->pending_commit_req = 0;
    } else {
      // The crash rolled the transaction back: re-establish it by replay.
      // The in-flight commit marker died with the old transaction — its
      // request id must not leak into the replayed one, or a later recovery
      // could probe the stale id and mistake an old (or future, if the id
      // is reused by ExecCommit) marker for this transaction's commit.
      // ExecCommit allocates a fresh marker id when it resubmits.
      cs->pending_commit_req = 0;
      PHX_RETURN_IF_ERROR(
          dbc->driver->ExecScript("BEGIN TRANSACTION").status());
      for (const std::string& sql : cs->txn_log) {
        PHX_RETURN_IF_ERROR(dbc->driver->ExecScript(sql).status());
      }
      ++stats_.txn_replays;
      ++stats_.last_recovery.txn_replays;
      obs::MetricsRegistry::Default()
          ->GetCounter("core.txn_replays")
          ->Increment();
    }
  }

  // Re-open and re-position every statement's persistent result/key stream.
  for (const auto& stmt_ptr : dbc->stmts) {
    Hstmt* stmt = stmt_ptr.get();
    StmtState* vs = stmt_state(stmt);
    if (vs == nullptr) continue;
    if (vs->kind != StmtState::Kind::kNone) {
      vs->recovered = true;
      ++stats_.state_reinstalls;
      ++stats_.last_recovery.state_reinstalls;
      obs::MetricsRegistry::Default()
          ->GetCounter("core.state_reinstalls")
          ->Increment();
    }
    switch (vs->kind) {
      case StmtState::Kind::kMaterialized: {
        uint64_t cursor_id = 0;
        PHX_RETURN_IF_ERROR(RepositionCursor(dbc, vs->result_table,
                                             stmt->rows_delivered,
                                             &cursor_id));
        stmt->server_cursor_id = cursor_id;
        stmt->buffered.clear();
        stmt->buffer_pos = 0;
        stmt->server_done = false;
        break;
      }
      case StmtState::Kind::kKeyset:
      case StmtState::Kind::kDynamic: {
        uint64_t cursor_id = 0;
        PHX_RETURN_IF_ERROR(RepositionCursor(dbc, vs->result_table,
                                             vs->keys_consumed, &cursor_id));
        vs->key_cursor_id = cursor_id;
        vs->key_buffer.clear();
        vs->keys_done = false;
        // pending_rows / last_key are client memory and survived intact.
        break;
      }
      case StmtState::Kind::kNone:
        break;
    }
  }
  return Status::Ok();
}

Status PhoenixDriverManager::RepositionCursor(Hdbc* dbc,
                                              const std::string& table,
                                              uint64_t position,
                                              uint64_t* cursor_id) {
  PHX_ASSIGN_OR_RETURN(
      odbc::CursorOpenInfo info,
      dbc->driver->OpenCursor("SELECT * FROM " + table,
                              eng::CursorType::kStatic));
  *cursor_id = info.cursor_id;
  if (position == 0) return Status::Ok();
  if (config_.server_side_reposition) {
    // One round trip; zero tuples shipped — the paper's stored-procedure
    // advance, realized as a server-side absolute seek.
    return dbc->driver->Seek(info.cursor_id, position);
  }
  // Ablation: re-fetch from the start and throw the rows away client-side.
  uint64_t discarded = 0;
  while (discarded < position) {
    uint64_t want = std::min<uint64_t>(config_.fetch_block,
                                       position - discarded);
    PHX_ASSIGN_OR_RETURN(odbc::FetchResult block,
                         dbc->driver->Fetch(info.cursor_id, want));
    discarded += block.rows.size();
    // These rows re-crossed the wire only to be thrown away — the very cost
    // the server-side seek avoids. They count as redelivered.
    stats_.rows_redelivered += block.rows.size();
    stats_.last_recovery.rows_redelivered += block.rows.size();
    obs::MetricsRegistry::Default()
        ->GetCounter("core.rows_redelivered")
        ->Increment(block.rows.size());
    if (block.done) break;
    if (block.rows.empty()) break;
  }
  if (discarded < position) {
    // The persistent result table holds fewer rows than the client already
    // delivered to the application. Silently returning Ok here would leave
    // the cursor mispositioned and replay rows the app has seen (or skip
    // ahead); the state is genuinely lost, so fail the recovery loudly.
    return Status::Internal(
        "cursor reposition fell short: " + table + " has " +
        std::to_string(discarded) + " rows, client already consumed " +
        std::to_string(position));
  }
  return Status::Ok();
}

}  // namespace phoenix::core
