#ifndef PHOENIX_NET_DB_SERVER_H_
#define PHOENIX_NET_DB_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "engine/database.h"
#include "net/protocol.h"
#include "storage/sim_disk.h"

namespace phoenix::net {

struct ServerOptions {
  eng::DatabaseOptions db;
};

/// Point-in-time counters for one DbServer; the same quantities aggregate
/// into the process-wide MetricsRegistry under "server.*".
struct ServerStats {
  uint64_t requests_handled = 0;
  uint64_t requests_rejected_down = 0;  ///< arrived while crashed
};

/// One database server *process*. Owns a Database over a SimDisk that it
/// does NOT own — the disk survives the process.
///
/// Crash() models the machine/process failure the paper recovers from:
/// the Database object (sessions, temp tables, cursors, open transactions)
/// is destroyed, and every disk byte not yet synced is discarded. Restart()
/// builds a fresh Database, which runs checkpoint+WAL recovery.
class DbServer {
 public:
  DbServer(storage::SimDisk* disk, ServerOptions opts = {});

  /// Boots the server (initial recovery). Must be called before use.
  Status Start();

  /// Hard process kill. Safe to call repeatedly.
  void Crash();

  /// Crash where the OS had flushed a fraction of buffered bytes (torn WAL
  /// tail). Recovery must cope.
  void CrashWithPartialFlush(double keep_fraction);

  /// Boots a replacement process over the same disk.
  Status Restart();

  bool alive() const { return db_ != nullptr; }
  /// Number of (re)starts — lets clients detect "server came back".
  uint64_t epoch() const { return epoch_; }

  /// The server's request dispatcher. Callers reach this through a Channel,
  /// never directly (the Channel models the network).
  Response Handle(const Request& request);

  eng::Database* database() { return db_.get(); }
  storage::SimDisk* disk() { return disk_; }

  /// Snapshot of this server's request counters.
  ServerStats stats() const { return stats_; }

  /// Deprecated: prefer stats().requests_handled. Thin forwarder kept so
  /// pre-redesign callers compile unchanged.
  uint64_t requests_handled() const { return stats_.requests_handled; }

 private:
  Response Dispatch(const Request& request);

  storage::SimDisk* disk_;
  ServerOptions opts_;
  std::unique_ptr<eng::Database> db_;
  uint64_t epoch_ = 0;
  uint64_t next_session_id_ = 1;  ///< survives restarts: ids never repeat
  ServerStats stats_;
};

}  // namespace phoenix::net

#endif  // PHOENIX_NET_DB_SERVER_H_
