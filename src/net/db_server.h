#ifndef PHOENIX_NET_DB_SERVER_H_
#define PHOENIX_NET_DB_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>

#include "engine/database.h"
#include "net/protocol.h"
#include "net/worker_pool.h"
#include "storage/sim_disk.h"

namespace phoenix::net {

struct ServerOptions {
  eng::DatabaseOptions db;
  /// Dispatcher worker threads. Every request — even from a single-threaded
  /// client — executes on one of these, never on the caller's thread.
  size_t worker_threads = 4;
  /// Bounded dispatch queue; producers block when it is full (backpressure).
  size_t queue_capacity = 128;
  /// Floor for session ids on the FIRST Start(). In-process restarts keep
  /// ids monotonic via next_session_id_, but a server reborn as a new OS
  /// process starts from scratch — phoenixd partitions the id space as
  /// (server_id << 56) | (boot << 32), so a stale session id can never
  /// alias a live one (keeping the client's crash detection sound) and two
  /// failover-group members sharing a data dir can never mint the same id.
  uint64_t first_session_id = 1;
  /// Starting value for the restart counter reported in kPong. phoenixd
  /// seeds it from the persistent boot counter so "server came back" stays
  /// observable across process (not just in-process) restarts.
  uint64_t initial_epoch = 0;
  /// Handler for Request::Kind::kAdmin (name/value → status). Unset =
  /// admin requests are rejected. phoenixd installs one that arms SIGKILL
  /// rendezvous points (see server/main.cc); session-less, never touches
  /// the Database.
  std::function<Status(const std::string& name, const std::string& value)>
      admin_hook;
  /// Called on the worker thread immediately before executing any request —
  /// the mid-request kill window ("exec" rendezvous) hooks in here.
  std::function<void(const Request&)> pre_dispatch_hook;
};

/// Point-in-time counters for one DbServer; the same quantities aggregate
/// into the process-wide MetricsRegistry under "server.*".
struct ServerStats {
  uint64_t requests_handled = 0;
  uint64_t requests_rejected_down = 0;  ///< arrived while crashed
};

/// One database server *process*. Owns a Database over a SimDisk that it
/// does NOT own — the disk survives the process.
///
/// Concurrency model (DESIGN.md §Concurrency): every request is dispatched
/// onto a fixed WorkerPool. Requests from *different* sessions execute
/// concurrently; requests carrying the *same* session id are serialized in
/// submission order by a per-session ticket gate, so one session's
/// statements never reorder. Handle() is the synchronous wrapper around
/// HandleAsync() and is safe to call from any number of threads.
///
/// Crash() models the machine/process failure the paper recovers from:
/// intake stops, the worker pool drains gracefully (accepted requests
/// finish — they "beat the crash"), then the Database object (sessions,
/// temp tables, cursors, open transactions) is destroyed and every disk
/// byte not yet synced is discarded. Restart() builds a fresh Database,
/// which runs checkpoint+WAL recovery, and a fresh pool.
class DbServer {
 public:
  DbServer(storage::SimDisk* disk, ServerOptions opts = {});
  ~DbServer();

  /// Boots the server (initial recovery). Must be called before use.
  Status Start();

  /// Hard process kill (graceful pool drain first). Safe to call repeatedly
  /// and concurrently with in-flight requests.
  void Crash();

  /// Crash where the OS had flushed a fraction of buffered bytes (torn WAL
  /// tail). Recovery must cope.
  void CrashWithPartialFlush(double keep_fraction);

  /// Crash with independent per-file byte-granular tail truncation plus
  /// possible corruption of the flushed region (SimDisk::CrashTorn).
  void CrashTorn(const storage::SimDisk::TornCrashSpec& spec);

  /// Crash landing inside a checkpoint, at one of the three windows of the
  /// split (snapshot → image write → WAL truncate) protocol. The default,
  /// kPostImage, is the historical meaning: the image became durable but
  /// the WAL was never truncated. Returns true when a (non-stale) image was
  /// actually written — necessarily false for the two earlier crash points.
  bool CrashMidCheckpoint(
      eng::CheckpointCrashPoint point = eng::CheckpointCrashPoint::kPostImage);

  /// Boots a replacement process over the same disk.
  Status Restart();

  bool alive() const;
  /// Number of (re)starts — lets clients detect "server came back".
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// The server's request dispatcher. Callers reach this through a Channel,
  /// never directly (the Channel models the network). Blocks until the
  /// request has been executed by a pool worker (or rejected).
  Response Handle(const Request& request);

  /// Fire-and-collect variant: the request is queued for a pool worker and
  /// the future resolves when its response is ready. Same-session requests
  /// submitted in order execute in order.
  std::future<Response> HandleAsync(const Request& request);

  /// Executes a decoded batch: every request is dispatched (concurrently
  /// across sessions, in order within one), and the responses are returned
  /// in request order.
  BatchResponse HandleBatch(const BatchRequest& batch);

  eng::Database* database() { return db_.get(); }
  storage::SimDisk* disk() { return disk_; }

  /// Snapshot of this server's request counters.
  ServerStats stats() const;

  /// Dispatcher pool introspection (null while crashed).
  WorkerPool* pool() { return pool_.get(); }

 private:
  /// Serializes one session's requests in ticket (submission) order.
  ///
  /// Two mutexes on purpose: submit_mu is held across ticket issuance AND
  /// pool submission (so ticket order == queue order), while mu guards only
  /// the wait/advance handshake. If one lock did both jobs, a submitter
  /// blocked on a full pool queue would hold the lock a *worker* needs to
  /// advance now_serving — deadlock with a single worker thread.
  struct SessionGate {
    std::mutex submit_mu;       ///< held across ticket issue + Submit()
    std::mutex mu;              ///< guards next_ticket / now_serving
    std::condition_variable cv;
    uint64_t next_ticket = 0;   ///< next ticket to hand out
    uint64_t now_serving = 0;   ///< ticket allowed to run
  };

  Response Dispatch(const Request& request);
  /// Shared crash machinery: drain intake + pool, optionally run the
  /// checkpoint protocol up to `mid_checkpoint` (the death-inside-a-
  /// checkpoint family), destroy the Database, then apply `crash_disk` to
  /// discard unsynced bytes.
  bool CrashImpl(const std::function<void()>& crash_disk,
                 std::optional<eng::CheckpointCrashPoint> mid_checkpoint);
  std::shared_ptr<SessionGate> GateFor(uint64_t session_id);

  storage::SimDisk* disk_;
  ServerOptions opts_;

  /// Guards the lifecycle: db_, pool_, accepting_. Requests take it shared
  /// (submission only — execution holds no lifecycle lock); Crash/Restart
  /// take it exclusive. The pool drain in Crash() runs *outside* the lock,
  /// after intake is closed, so draining tasks still see a live db_.
  mutable std::shared_mutex lifecycle_mu_;
  bool accepting_ = false;
  std::unique_ptr<eng::Database> db_;
  std::unique_ptr<WorkerPool> pool_;

  std::mutex gates_mu_;
  std::map<uint64_t, std::shared_ptr<SessionGate>> gates_;

  std::atomic<uint64_t> epoch_{0};
  uint64_t next_session_id_ = 1;  ///< survives restarts: ids never repeat
  std::atomic<uint64_t> requests_handled_{0};
  std::atomic<uint64_t> requests_rejected_down_{0};
};

}  // namespace phoenix::net

#endif  // PHOENIX_NET_DB_SERVER_H_
