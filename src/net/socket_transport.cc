#include "net/socket_transport.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace phoenix::net {

namespace {

std::future<Result<Response>> ReadyResult(Result<Response> r) {
  std::promise<Result<Response>> p;
  p.set_value(std::move(r));
  return p.get_future();
}

/// An intake rejection from a crashed-but-listening server: the request was
/// never executed (same discriminator as the in-process transport — see
/// channel.cc). Such a "reply" must preempt a claimed lose-reply token:
/// reporting kTimeout would claim "executed, reply lost" for a request that
/// never ran, and the Phoenix status-table probe would then resolve an
/// in-flight commit wrongly.
bool IsUnexecutedRejection(const Response& r) {
  return r.kind == Response::Kind::kError &&
         r.error_code == StatusCode::kCommError;
}

}  // namespace

SocketChannel::SocketChannel(Socket sock, NetworkConfig config)
    : sock_(std::move(sock)), config_(config) {
  reader_ = std::thread([this] { ReaderLoop(); });
}

SocketChannel::~SocketChannel() {
  Disconnect();
  if (reader_.joinable()) reader_.join();
}

void SocketChannel::Disconnect() {
  Channel::Disconnect();
  // Unblocks the reader's recv(); it observes EOF and fails the pendings.
  sock_.ShutdownBoth();
}

Status SocketChannel::SendFrame(FrameType type, uint64_t corr_id,
                                const std::string& payload) {
  std::string frame = EncodeFrame(type, corr_id, payload);
  bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
  obs::MetricsRegistry::Default()->GetCounter("net.bytes_sent")
      ->Increment(frame.size());
  std::lock_guard<std::mutex> lk(write_mu_);
  return sock_.SendAll(frame);
}

void SocketChannel::FailAll(const std::string& why) {
  std::map<uint64_t, std::shared_ptr<PendingSingle>> singles;
  std::map<uint64_t, std::shared_ptr<PendingBatch>> batches;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (dead_) return;
    dead_ = true;
    dead_reason_ = why;
    singles.swap(pending_);
    batches.swap(pending_batches_);
  }
  // Each entry was popped exactly once (under mu_), so each future resolves
  // exactly once — a lose-reply token claimed for one of these requests is
  // preempted by the connection death, same precedence as the in-process
  // transport: kCommError, not kTimeout, because no reply can ever arrive
  // and retrying the probe against a dead connection is pointless.
  for (auto& [id, p] : singles) {
    p->promise.set_value(Status::CommError(why));
  }
  for (auto& [id, p] : batches) {
    p->promise.set_value(Status::CommError(why));
  }
  obs::Tracer::Default()->Emit("net.socket.dead", {{"reason", why}});
}

void SocketChannel::ReaderLoop() {
  FrameAssembler assembler;
  std::string chunk;
  while (true) {
    auto n = sock_.RecvSome(&chunk);
    if (!n.ok()) {
      FailAll(n.status().message());
      return;
    }
    if (n.value() == 0) {
      FailAll("connection closed by peer (EOF)");
      return;
    }
    bytes_received_.fetch_add(n.value(), std::memory_order_relaxed);
    obs::MetricsRegistry::Default()->GetCounter("net.bytes_received")
        ->Increment(n.value());
    assembler.Feed(chunk);
    Frame frame;
    while (true) {
      FrameAssembler::Next next = assembler.Poll(&frame);
      if (next == FrameAssembler::Next::kNeedMore) break;
      if (next == FrameAssembler::Next::kError) {
        FailAll("framing error: " + assembler.error());
        return;
      }
      OnFrame(frame);
    }
  }
}

void SocketChannel::OnFrame(const Frame& frame) {
  auto* reg = obs::MetricsRegistry::Default();
  if (frame.type == FrameType::kResponse) {
    std::shared_ptr<PendingSingle> pending;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = pending_.find(frame.corr_id);
      if (it == pending_.end()) return;  // timed out; waiter owns the slot
      pending = it->second;
      pending_.erase(it);
    }
    Result<Response> decoded = Response::Decode(frame.payload);
    if (pending->discard) {
      if (decoded.ok() && IsUnexecutedRejection(decoded.value())) {
        // The server was down and rejected the request unexecuted — that
        // truth outranks the injected "reply lost" (which presumes
        // execution). The token stays consumed; the wire really did carry
        // only this rejection.
        obs::Tracer::Default()->Emit("net.fault.lost_reply_preempted_by_crash",
                                     {});
        pending->promise.set_value(
            Status::CommError(decoded.value().error_message));
        return;
      }
      // Injected lost reply: the server executed and answered, but "the
      // network" eats the frame. The waiter sees the classic kTimeout.
      reg->GetCounter("net.faults.lost_replies")->Increment();
      pending->promise.set_value(Status::Timeout("no response from server"));
      return;
    }
    pending->promise.set_value(std::move(decoded));
    return;
  }
  if (frame.type == FrameType::kBatchResponse) {
    std::shared_ptr<PendingBatch> pending;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = pending_batches_.find(frame.corr_id);
      if (it == pending_batches_.end()) return;
      pending = it->second;
      pending_batches_.erase(it);
    }
    auto decoded = BatchResponse::Decode(frame.payload);
    if (pending->discard) {
      // Whole-batch rejection (every response an unexecuted intake reject)
      // preempts the lose-reply token, same as the single-request path. A
      // straddled batch — some executed before the crash — stays kTimeout:
      // those requests' fates are genuinely unknown to the client.
      bool none_executed = decoded.ok() && !decoded.value().responses.empty();
      if (none_executed) {
        for (const Response& r : decoded.value().responses) {
          if (!IsUnexecutedRejection(r)) {
            none_executed = false;
            break;
          }
        }
      }
      if (none_executed) {
        obs::Tracer::Default()->Emit("net.fault.lost_reply_preempted_by_crash",
                                     {});
        pending->promise.set_value(Status::CommError(
            decoded.value().responses.front().error_message));
        return;
      }
      reg->GetCounter("net.faults.lost_replies")->Increment();
      pending->promise.set_value(Status::Timeout("no response from server"));
      return;
    }
    if (!decoded.ok()) {
      pending->promise.set_value(decoded.status());
      return;
    }
    pending->promise.set_value(std::move(decoded.value().responses));
    return;
  }
  // kRequest / kBatchRequest from a server: protocol violation; ignore.
}

std::future<Result<Response>> SocketChannel::RoundTripAsync(
    const Request& request) {
  auto* reg = obs::MetricsRegistry::Default();
  round_trips_.fetch_add(1, std::memory_order_relaxed);
  reg->GetCounter("net.round_trips")->Increment();
  reg->GetCounter(std::string("net.requests.") + RequestKindName(request.kind))
      ->Increment();

  Request req = request;
  if (req.request_id == 0) {
    req.request_id = next_request_id_.fetch_add(1) + 1;
  }
  if (disconnected_.load()) {
    return ReadyResult(Status::CommError("connection closed by client"));
  }
  if (ClaimFault(&drop_requests_)) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    reg->GetCounter("net.faults.dropped_requests")->Increment();
    return ReadyResult(Status::CommError("connection reset (request lost)"));
  }

  auto pending = std::make_shared<PendingSingle>();
  // The lose-reply token is claimed here, at send time — per request, like
  // the in-process transport — but *consumed* when the reply frame arrives,
  // because over a real wire the request must still reach the server and
  // execute before its reply can be "lost".
  pending->discard = ClaimFault(&lose_replies_);
  if (pending->discard) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  std::future<Result<Response>> response_future = pending->promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (dead_) {
      return ReadyResult(Status::CommError(dead_reason_));
    }
    pending_[req.request_id] = pending;
  }
  Status sent = SendFrame(FrameType::kRequest, req.request_id, req.Encode());
  if (!sent.ok()) {
    // The stream is broken for everyone, not just this request.
    FailAll(sent.message());
  }

  uint64_t timeout_ms = config_.rpc_timeout_ms;
  uint64_t request_id = req.request_id;
  return std::async(
      std::launch::deferred,
      [this, request_id, timeout_ms,
       response_future = std::move(response_future)]() mutable
      -> Result<Response> {
        if (timeout_ms > 0 &&
            response_future.wait_for(std::chrono::milliseconds(timeout_ms)) !=
                std::future_status::ready) {
          // Deadline passed with the connection still up. Pop the pending
          // entry: whoever removes it from the map owns the resolution, so
          // a reply (or EOF) racing in right now either got there first —
          // then the future below is ready and wins — or finds the slot
          // gone and does nothing. Exactly one outcome per request.
          bool popped = false;
          {
            std::lock_guard<std::mutex> lk(mu_);
            popped = pending_.erase(request_id) > 0;
          }
          if (popped) {
            obs::MetricsRegistry::Default()
                ->GetCounter("net.rpc_timeouts")
                ->Increment();
            return Status::Timeout("no response from server (rpc timeout)");
          }
        }
        return response_future.get();
      });
}

Result<std::vector<Response>> SocketChannel::RoundTripBatch(
    std::vector<Request> requests) {
  if (requests.empty()) return std::vector<Response>{};
  auto* reg = obs::MetricsRegistry::Default();
  round_trips_.fetch_add(1, std::memory_order_relaxed);
  reg->GetCounter("net.round_trips")->Increment();
  reg->GetCounter("net.batches")->Increment();

  for (Request& r : requests) {
    if (r.request_id == 0) r.request_id = next_request_id_.fetch_add(1) + 1;
  }
  // The batch needs its own correlation id (a BatchResponse has no
  // request_id); drawing it from the same counter keeps it disjoint from
  // every single-request id in flight on this channel.
  uint64_t corr_id = next_request_id_.fetch_add(1) + 1;

  if (disconnected_.load()) {
    return Status::CommError("connection closed by client");
  }
  if (ClaimFault(&drop_requests_)) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    reg->GetCounter("net.faults.dropped_requests")->Increment();
    return Status::CommError("connection reset (request lost)");
  }

  auto pending = std::make_shared<PendingBatch>();
  pending->discard = ClaimFault(&lose_replies_);
  if (pending->discard) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  auto response_future = pending->promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (dead_) return Status::CommError(dead_reason_);
    pending_batches_[corr_id] = pending;
  }
  BatchRequest batch;
  batch.requests = std::move(requests);
  Status sent = SendFrame(FrameType::kBatchRequest, corr_id, batch.Encode());
  if (!sent.ok()) FailAll(sent.message());

  if (config_.rpc_timeout_ms > 0 &&
      response_future.wait_for(
          std::chrono::milliseconds(config_.rpc_timeout_ms)) !=
          std::future_status::ready) {
    bool popped = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      popped = pending_batches_.erase(corr_id) > 0;
    }
    if (popped) {
      reg->GetCounter("net.rpc_timeouts")->Increment();
      return Status::Timeout("no response from server (rpc timeout)");
    }
  }
  return response_future.get();
}

Result<std::unique_ptr<Channel>> ConnectSocketChannel(
    const std::string& endpoint, const NetworkConfig& config) {
  PHX_ASSIGN_OR_RETURN(Socket sock, Dial(endpoint, config.connect_timeout_ms));
  return std::unique_ptr<Channel>(
      std::make_unique<SocketChannel>(std::move(sock), config));
}

// ---------------------------------------------------------------------------
// SocketServer
// ---------------------------------------------------------------------------

SocketServer::~SocketServer() { Shutdown(); }

Status SocketServer::Start(const std::string& endpoint) {
  PHX_RETURN_IF_ERROR(listener_.Listen(endpoint));
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void SocketServer::AcceptLoop() {
  while (true) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) return;  // Interrupt()ed: shutting down
    std::lock_guard<std::mutex> lk(conns_mu_);
    if (shutting_down_) return;
    conns_.push_back(std::make_unique<Conn>());
    Conn* conn = conns_.back().get();
    conn->sock = accepted.take();
    conn->reader = std::thread([this, conn] { ConnReader(conn); });
    conn->writer = std::thread([this, conn] { ConnWriter(conn); });
  }
}

void SocketServer::ConnReader(Conn* conn) {
  FrameAssembler assembler;
  std::string chunk;
  auto enqueue = [conn](OutboxItem item) {
    {
      std::lock_guard<std::mutex> lk(conn->mu);
      conn->outbox.push_back(std::move(item));
    }
    conn->cv.notify_one();
  };
  auto close_conn = [conn] {
    {
      std::lock_guard<std::mutex> lk(conn->mu);
      conn->closed = true;
    }
    conn->cv.notify_one();
  };
  while (true) {
    auto n = conn->sock.RecvSome(&chunk);
    if (!n.ok() || n.value() == 0) {
      close_conn();
      return;
    }
    assembler.Feed(chunk);
    Frame frame;
    while (true) {
      FrameAssembler::Next next = assembler.Poll(&frame);
      if (next == FrameAssembler::Next::kNeedMore) break;
      if (next == FrameAssembler::Next::kError) {
        // Oversized/poisoned stream: hang up. The client's pendings resolve
        // kCommError via its reader seeing EOF.
        obs::Tracer::Default()->Emit("server.socket.framing_error",
                                     {{"error", assembler.error()}});
        conn->sock.ShutdownBoth();
        close_conn();
        return;
      }
      if (frame.type == FrameType::kRequest) {
        auto decoded = Request::Decode(frame.payload);
        OutboxItem item;
        item.corr_id = frame.corr_id;
        if (!decoded.ok()) {
          item.kind = OutboxItem::Kind::kImmediate;
          item.immediate = Response::MakeError(decoded.status());
          item.immediate.request_id = frame.corr_id;
        } else {
          // HandleAsync here, on the reader, in frame-arrival order: the
          // per-session ticket gate then serializes same-session requests
          // in exactly the order the client sent them.
          item.kind = OutboxItem::Kind::kSingle;
          item.future = server_->HandleAsync(decoded.take());
        }
        enqueue(std::move(item));
      } else if (frame.type == FrameType::kBatchRequest) {
        auto decoded = BatchRequest::Decode(frame.payload);
        OutboxItem item;
        item.corr_id = frame.corr_id;
        if (!decoded.ok()) {
          item.kind = OutboxItem::Kind::kImmediate;
          item.immediate = Response::MakeError(decoded.status());
          item.immediate.request_id = frame.corr_id;
        } else {
          item.kind = OutboxItem::Kind::kBatch;
          item.batch = decoded.take();
        }
        enqueue(std::move(item));
      }
      // Response frames from a client: protocol violation; ignore.
    }
  }
}

void SocketServer::ConnWriter(Conn* conn) {
  while (true) {
    OutboxItem item;
    {
      std::unique_lock<std::mutex> lk(conn->mu);
      conn->cv.wait(lk, [&] { return conn->closed || !conn->outbox.empty(); });
      if (conn->outbox.empty()) return;  // closed and drained
      item = std::move(conn->outbox.front());
      conn->outbox.pop_front();
    }
    std::string payload;
    FrameType type = FrameType::kResponse;
    switch (item.kind) {
      case OutboxItem::Kind::kSingle:
        payload = item.future.get().Encode();
        break;
      case OutboxItem::Kind::kImmediate:
        payload = item.immediate.Encode();
        break;
      case OutboxItem::Kind::kBatch: {
        // Batches execute on the writer: HandleBatch fans the requests out
        // to the pool itself, and running it here keeps this connection's
        // replies FIFO without a third thread.
        BatchResponse response = server_->HandleBatch(item.batch);
        payload = response.Encode();
        type = FrameType::kBatchResponse;
        break;
      }
    }
    Status sent =
        conn->sock.SendAll(EncodeFrame(type, item.corr_id, payload));
    if (!sent.ok()) {
      // Peer is gone; drain remaining items without sending (their
      // HandleAsync futures still complete server-side).
      conn->sock.ShutdownBoth();
    }
  }
}

void SocketServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    if (shutting_down_) return;
    shutting_down_ = true;
  }
  listener_.Interrupt();
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  std::list<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    conn->sock.ShutdownBoth();
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
}

}  // namespace phoenix::net
