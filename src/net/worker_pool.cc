#include "net/worker_pool.h"

#include "obs/metrics.h"

namespace phoenix::net {

WorkerPool::WorkerPool(Options opts) : opts_(opts) {
  if (opts_.threads == 0) opts_.threads = 1;
  if (opts_.queue_capacity == 0) opts_.queue_capacity = 1;
  threads_.reserve(opts_.threads);
  for (size_t i = 0; i < opts_.threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

bool WorkerPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (queue_.size() >= opts_.queue_capacity && !stopping_) {
      obs::MetricsRegistry::Default()
          ->GetCounter("server.pool.submit_waits")
          ->Increment();
    }
    not_full_.wait(lk, [this] {
      return stopping_ || queue_.size() < opts_.queue_capacity;
    });
    if (stopping_) return false;
    queue_.push_back(std::move(task));
    if (queue_.size() > queue_high_water_) queue_high_water_ = queue_.size();
    obs::MetricsRegistry::Default()
        ->GetGauge("server.pool.queue_depth")
        ->Set(static_cast<int64_t>(queue_.size()));
  }
  not_empty_.notify_one();
  return true;
}

void WorkerPool::Shutdown() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
    to_join.swap(threads_);  // claim the join exactly once
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
}

void WorkerPool::Drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_.wait(lk, [this] { return queue_.empty() && running_ == 0; });
}

uint64_t WorkerPool::tasks_executed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return tasks_executed_;
}

size_t WorkerPool::queue_high_water() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_high_water_;
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      not_empty_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      // Graceful drain: even when stopping, accepted tasks still run.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
      obs::MetricsRegistry::Default()
          ->GetGauge("server.pool.queue_depth")
          ->Set(static_cast<int64_t>(queue_.size()));
    }
    not_full_.notify_one();
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --running_;
      ++tasks_executed_;
      obs::MetricsRegistry::Default()
          ->GetCounter("server.pool.tasks")
          ->Increment();
      if (queue_.empty() && running_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace phoenix::net
