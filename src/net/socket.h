#ifndef PHOENIX_NET_SOCKET_H_
#define PHOENIX_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"

namespace phoenix::net {

/// Thin RAII + error-mapping layer over POSIX stream sockets (TCP over
/// loopback/LAN and Unix-domain). Everything above this file is
/// byte-stream-agnostic; everything below it is errno.
///
/// Endpoint strings, used everywhere a listen/dial address appears:
///   "tcp:<host>:<port>"   e.g. "tcp:127.0.0.1:0" (port 0 = kernel-assigned)
///   "unix:<path>"         e.g. "unix:/tmp/phx/phoenixd.sock"
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept {
    if (this != &o) {
      Close();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { Close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();
  /// shutdown(2) both directions — unblocks a reader in another thread
  /// without closing the fd out from under it.
  void ShutdownBoth();

  /// Writes all of `data`, looping over short writes and EINTR. kCommError
  /// on EPIPE/reset (SIGPIPE is suppressed per call).
  Status SendAll(const std::string& data);

  /// Reads up to `cap` bytes into `out` (replacing its contents). Returns
  /// the byte count; 0 means clean EOF. kCommError on reset.
  Result<size_t> RecvSome(std::string* out, size_t cap = 64 * 1024);

 private:
  int fd_ = -1;
};

/// Dials `endpoint`, waiting up to `timeout_ms` for the TCP handshake
/// (refused still fails immediately). kCommError on any failure — the code
/// the Phoenix failure detector treats as "server dead, begin recovery".
/// Refused dials (ECONNREFUSED, or ENOENT for a missing unix socket file)
/// carry kRefusedPrefix in the message so IsConnectionRefused() can tell
/// "nothing listening here, learned instantly" from a timed-out handshake.
Result<Socket> Dial(const std::string& endpoint, uint64_t timeout_ms);

/// Message marker Dial() puts on instantly-refused connections.
inline constexpr char kRefusedPrefix[] = "connection refused ";

/// True for a Dial() failure that proves no server is accepting at the
/// endpoint (refused / socket file absent) — as opposed to a timeout or a
/// mid-stream reset, where a server may exist but be slow or dying. The
/// Phoenix failover sweep skips refused endpoints without burning a backoff
/// round.
bool IsConnectionRefused(const Status& s);

/// A bound, listening server socket.
class Listener {
 public:
  Listener() = default;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// Binds + listens on `endpoint`. TCP listeners set SO_REUSEADDR so a
  /// reborn server can re-bind its old port out of TIME_WAIT. Unix
  /// listeners handle the stale socket file a SIGKILLed incarnation leaves
  /// behind deterministically: bind first, and on EADDRINUSE probe-connect
  /// the path — refused means stale (unlink + retry, bounded), while a live
  /// accepting owner yields kAlreadyExists instead of unlinking a running
  /// server's socket out from under it.
  Status Listen(const std::string& endpoint);

  /// The resolved address — for "tcp:host:0" this carries the
  /// kernel-assigned port, which is how phoenixd reports where it actually
  /// listens.
  const std::string& endpoint() const { return endpoint_; }

  /// Blocks for one connection. kCommError once Interrupt()ed.
  Result<Socket> Accept();

  /// Unblocks a concurrent Accept() (shutdown(2); the fd stays valid so
  /// there is no close/accept race). Call Close() after joining the
  /// accepting thread.
  void Interrupt();
  void Close();
  bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string endpoint_;
  std::string unix_path_;  ///< unlinked on Close
};

}  // namespace phoenix::net

#endif  // PHOENIX_NET_SOCKET_H_
