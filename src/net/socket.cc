#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace phoenix::net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Maps a dial failure to a Status whose message the recovery sweep can
/// classify. ECONNREFUSED (nothing listening) and ENOENT (unix socket file
/// gone — the server never started or was torn down) both mean "no server
/// here, and we learned so instantly": IsConnectionRefused keys on the
/// kRefusedPrefix so failover can skip the endpoint without a backoff round.
Status DialError(const std::string& endpoint, int err) {
  if (err == ECONNREFUSED || err == ENOENT) {
    return Status::CommError(std::string(kRefusedPrefix) + endpoint + ": " +
                             std::strerror(err));
  }
  return Status::CommError("connect " + endpoint + ": " + std::strerror(err));
}

/// Splits "tcp:host:port" / "unix:path". Returns false on a malformed
/// endpoint (the caller reports InvalidArgument with the original string).
bool ParseEndpoint(const std::string& endpoint, bool* is_tcp,
                   std::string* host_or_path, uint16_t* port) {
  if (endpoint.rfind("unix:", 0) == 0) {
    *is_tcp = false;
    *host_or_path = endpoint.substr(5);
    return !host_or_path->empty();
  }
  if (endpoint.rfind("tcp:", 0) == 0) {
    *is_tcp = true;
    std::string rest = endpoint.substr(4);
    size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) return false;
    *host_or_path = rest.substr(0, colon);
    unsigned long p = std::strtoul(rest.c_str() + colon + 1, nullptr, 10);
    if (p > 65535) return false;
    *port = static_cast<uint16_t>(p);
    return true;
  }
  return false;
}

bool FillSockaddrIn(const std::string& host, uint16_t port,
                    sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  return inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

bool FillSockaddrUn(const std::string& path, sockaddr_un* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr->sun_path)) return false;
  std::memcpy(addr->sun_path, path.c_str(), path.size());
  return true;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status Socket::SendAll(const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a peer that died by SIGKILL must surface as EPIPE, not
    // kill THIS process too.
    ssize_t n = ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::CommError(Errno("send"));
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<size_t> Socket::RecvSome(std::string* out, size_t cap) {
  out->resize(cap);
  while (true) {
    ssize_t n = ::recv(fd_, out->data(), cap, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::CommError(Errno("recv"));
    }
    out->resize(static_cast<size_t>(n));
    return static_cast<size_t>(n);
  }
}

Result<Socket> Dial(const std::string& endpoint, uint64_t timeout_ms) {
  bool is_tcp = false;
  std::string host_or_path;
  uint16_t port = 0;
  if (!ParseEndpoint(endpoint, &is_tcp, &host_or_path, &port)) {
    return Status::InvalidArgument("bad endpoint: " + endpoint);
  }
  int fd = ::socket(is_tcp ? AF_INET : AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::CommError(Errno("socket"));
  Socket sock(fd);

  sockaddr_storage storage;
  socklen_t len = 0;
  if (is_tcp) {
    auto* addr = reinterpret_cast<sockaddr_in*>(&storage);
    if (!FillSockaddrIn(host_or_path, port, addr)) {
      return Status::InvalidArgument("bad tcp host (want a literal IPv4): " +
                                     endpoint);
    }
    len = sizeof(sockaddr_in);
  } else {
    auto* addr = reinterpret_cast<sockaddr_un*>(&storage);
    if (!FillSockaddrUn(host_or_path, addr)) {
      return Status::InvalidArgument("unix socket path too long: " + endpoint);
    }
    len = sizeof(sockaddr_un);
  }

  // Non-blocking connect + poll: a dial against a half-dead peer must obey
  // connect_timeout_ms instead of the kernel's minutes-long default.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&storage), len);
  if (rc != 0 && errno != EINPROGRESS) {
    return DialError(endpoint, errno);
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    int pr = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (pr == 0) return Status::CommError("connect timeout: " + endpoint);
    if (pr < 0) return Status::CommError(Errno("poll"));
    int err = 0;
    socklen_t errlen = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen);
    if (err != 0) {
      return DialError(endpoint, err);
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking for send/recv
  if (is_tcp) {
    int one = 1;
    // Request/response RPC: Nagle's 40 ms ACK-delay coupling would dominate
    // every round trip.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return sock;
}

bool IsConnectionRefused(const Status& s) {
  return s.IsCommError() &&
         s.message().find(kRefusedPrefix) != std::string::npos;
}

Listener::~Listener() { Close(); }

void Listener::Interrupt() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

Status Listener::Listen(const std::string& endpoint) {
  bool is_tcp = false;
  std::string host_or_path;
  uint16_t port = 0;
  if (!ParseEndpoint(endpoint, &is_tcp, &host_or_path, &port)) {
    return Status::InvalidArgument("bad endpoint: " + endpoint);
  }
  int fd = ::socket(is_tcp ? AF_INET : AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::CommError(Errno("socket"));

  if (is_tcp) {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    if (!FillSockaddrIn(host_or_path, port, &addr)) {
      ::close(fd);
      return Status::InvalidArgument("bad tcp host (want a literal IPv4): " +
                                     endpoint);
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Status s = Status::CommError(Errno("bind " + endpoint));
      ::close(fd);
      return s;
    }
    // Resolve port 0 to the kernel's pick: this string is the server's
    // advertised address.
    sockaddr_in bound;
    socklen_t blen = sizeof(bound);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen);
    char ip[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &bound.sin_addr, ip, sizeof(ip));
    endpoint_ = std::string("tcp:") + ip + ":" +
                std::to_string(ntohs(bound.sin_port));
  } else {
    sockaddr_un addr;
    if (!FillSockaddrUn(host_or_path, &addr)) {
      ::close(fd);
      return Status::InvalidArgument("unix socket path too long: " + endpoint);
    }
    // A previous incarnation that died by SIGKILL leaves its socket file
    // behind, so bind() fails EADDRINUSE. Blindly unlinking first is a
    // race: a concurrent restart (or a still-live server) can bind between
    // our unlink and bind, and we would then unlink ITS socket out from
    // under it. Instead bind first and only clear the path once a probe
    // connect proves nobody is accepting on it.
    Status bind_err;
    for (int attempt = 0; attempt < 3; ++attempt) {
      if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
        bind_err = Status::Ok();
        break;
      }
      if (errno != EADDRINUSE) {
        bind_err = Status::CommError(Errno("bind " + endpoint));
        break;
      }
      bind_err = Status::CommError(Errno("bind " + endpoint));
      // 200 ms probe: refused/ENOENT means the file is stale garbage and
      // safe to unlink; a completed connect means a live server owns it.
      auto probe = Dial(endpoint, 200);
      if (probe.ok()) {
        ::close(fd);
        return Status::AlreadyExists("address in use by a live server: " +
                                     endpoint);
      }
      ::unlink(host_or_path.c_str());
    }
    if (!bind_err.ok()) {
      ::close(fd);
      return bind_err;
    }
    unix_path_ = host_or_path;
    endpoint_ = endpoint;
  }
  if (::listen(fd, 64) != 0) {
    Status s = Status::CommError(Errno("listen " + endpoint));
    ::close(fd);
    return s;
  }
  fd_ = fd;
  return Status::Ok();
}

Result<Socket> Listener::Accept() {
  while (true) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Status::CommError(Errno("accept"));
  }
}

}  // namespace phoenix::net
