#include "net/process_server.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <poll.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

extern char** environ;

namespace phoenix::net {

namespace {

std::string DirName(const std::string& path) {
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool Executable(const std::string& path) {
  return !path.empty() && ::access(path.c_str(), X_OK) == 0;
}

}  // namespace

std::string FindServerBinary(const std::string& explicit_path) {
  if (Executable(explicit_path)) return explicit_path;
  const char* env = std::getenv("PHX_SERVER_BIN");
  if (env != nullptr && Executable(env)) return env;
  // Fall back to build-tree-relative guesses so a bare
  // `./chaos_matrix_test` repro run from build/tests still finds it.
  std::string self(4096, '\0');
  ssize_t n = ::readlink("/proc/self/exe", self.data(), self.size() - 1);
  if (n > 0) {
    self.resize(static_cast<size_t>(n));
    std::string dir = DirName(self);
    for (const char* rel : {"/../src/phoenixd", "/phoenixd", "/src/phoenixd"}) {
      std::string candidate = dir + rel;
      if (Executable(candidate)) return candidate;
    }
  }
  for (const char* rel : {"../src/phoenixd", "./src/phoenixd", "./phoenixd"}) {
    if (Executable(rel)) return rel;
  }
  return "";
}

ProcessServerHandle::~ProcessServerHandle() {
  Kill();
  ClosePipes();
}

void ProcessServerHandle::ClosePipes() {
  StopWatcher();
  for (int* fd : {&notify_read_fd_, &rendezvous_read_fd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

Status ProcessServerHandle::Start() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (pid_ > 0 && !reaped_) {
      return Status::Internal("phoenixd already running (pid " +
                              std::to_string(pid_) + ")");
    }
  }
  if (opts_.data_dir.empty()) {
    return Status::InvalidArgument("ProcessServerOptions.data_dir is required");
  }
  std::string endpoint = endpoint_;  // restart: reuse the resolved address
  if (endpoint.empty()) endpoint = opts_.endpoint;
  if (endpoint.empty()) {
    std::string sock = opts_.server_id > 0
                           ? "phoenixd." + std::to_string(opts_.server_id) +
                                 ".sock"
                           : "phoenixd.sock";
    endpoint = (opts_.transport == "tcp")
                   ? "tcp:127.0.0.1:0"
                   : "unix:" + opts_.data_dir + "/" + sock;
  }
  PHX_RETURN_IF_ERROR(Spawn(endpoint));
  if (arm_on_start_) {
    // Arm against the freshly-spawned child's pipes — a "recovery"
    // rendezvous fires before READY, so arming after WaitReady is too late.
    arm_on_start_ = false;
    ArmKillOnRendezvous();
  }
  Status ready = WaitReady();
  if (!ready.ok()) {
    Kill();
    return ready;
  }
  return Status::Ok();
}

Status ProcessServerHandle::Spawn(const std::string& endpoint) {
  std::string binary = FindServerBinary(opts_.binary);
  if (binary.empty()) {
    return Status::NotFound(
        "phoenixd binary not found (set PHX_SERVER_BIN or "
        "ProcessServerOptions.binary)");
  }
  ClosePipes();

  // Plain pipes (no CLOEXEC): the child inherits the write ends across
  // exec and learns their numbers from the environment.
  int notify[2] = {-1, -1};
  int rendezvous[2] = {-1, -1};
  if (::pipe(notify) != 0 || ::pipe(rendezvous) != 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }

  std::vector<std::string> env_strings;
  for (char** e = environ; *e != nullptr; ++e) env_strings.push_back(*e);
  auto put_env = [&env_strings](const std::string& name,
                                const std::string& value) {
    const std::string prefix = name + "=";
    for (std::string& entry : env_strings) {
      if (entry.rfind(prefix, 0) == 0) {
        entry = prefix + value;
        return;
      }
    }
    env_strings.push_back(prefix + value);
  };
  put_env("PHX_LISTEN", endpoint);
  put_env("PHX_DATA_DIR", opts_.data_dir);
  put_env("PHX_NOTIFY_FD", std::to_string(notify[1]));
  put_env("PHX_RENDEZVOUS_FD", std::to_string(rendezvous[1]));
  put_env("PHX_CKPT_EVERY", std::to_string(opts_.checkpoint_every_n_commits));
  if (opts_.server_id > 0) {
    put_env("PHX_SERVER_ID", std::to_string(opts_.server_id));
  }
  if (opts_.worker_threads > 0) {
    put_env("PHX_WORKERS", std::to_string(opts_.worker_threads));
  }
  if (!opts_.rendezvous.empty()) put_env("PHX_RENDEZVOUS", opts_.rendezvous);
  for (const auto& [name, value] : opts_.env) put_env(name, value);

  std::vector<char*> envp;
  envp.reserve(env_strings.size() + 1);
  for (std::string& entry : env_strings) envp.push_back(entry.data());
  envp.push_back(nullptr);
  std::vector<char*> argv;
  argv.push_back(binary.data());
  argv.push_back(nullptr);

  pid_t pid = -1;
  int rc = ::posix_spawn(&pid, binary.c_str(), nullptr, nullptr, argv.data(),
                         envp.data());
  // Parent keeps only the read ends.
  ::close(notify[1]);
  ::close(rendezvous[1]);
  if (rc != 0) {
    ::close(notify[0]);
    ::close(rendezvous[0]);
    return Status::IoError(std::string("posix_spawn ") + binary + ": " +
                           std::strerror(rc));
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    pid_ = pid;
    reaped_ = false;
    notify_read_fd_ = notify[0];
    rendezvous_read_fd_ = rendezvous[0];
  }
  return Status::Ok();
}

Status ProcessServerHandle::WaitReady() {
  // The child writes one line — "READY <endpoint>\n" — once it is
  // listening with a recovered database. EOF first means it died booting.
  std::string line;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(
                      static_cast<int64_t>(opts_.ready_timeout_s * 1000));
  while (true) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      return Status::Timeout("phoenixd did not become ready in time");
    }
    pollfd pfd{notify_read_fd_, POLLIN, 0};
    int pr = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (pr == 0) {
      return Status::Timeout("phoenixd did not become ready in time");
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll: ") + std::strerror(errno));
    }
    char buf[256];
    ssize_t n = ::read(notify_read_fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      ReapIfExited(/*block=*/true);
      return Status::CommError("phoenixd died before becoming ready");
    }
    line.append(buf, static_cast<size_t>(n));
    size_t nl = line.find('\n');
    if (nl == std::string::npos) continue;
    line.resize(nl);
    if (line.rfind("READY ", 0) != 0) {
      return Status::Internal("unexpected phoenixd greeting: " + line);
    }
    endpoint_ = line.substr(6);
    return Status::Ok();
  }
}

void ProcessServerHandle::ReapIfExited(bool block) {
  // Caller does NOT hold mu_.
  std::lock_guard<std::mutex> lk(mu_);
  if (pid_ <= 0 || reaped_) return;
  int status = 0;
  pid_t r = ::waitpid(pid_, &status, block ? 0 : WNOHANG);
  if (r == pid_) reaped_ = true;
}

bool ProcessServerHandle::running() {
  ReapIfExited(/*block=*/false);
  std::lock_guard<std::mutex> lk(mu_);
  return pid_ > 0 && !reaped_;
}

void ProcessServerHandle::Kill() {
  StopWatcher();
  pid_t pid = -1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (pid_ <= 0 || reaped_) return;
    pid = pid_;
  }
  ::kill(pid, SIGKILL);
  ReapIfExited(/*block=*/true);
}

Status ProcessServerHandle::Terminate(double timeout_s) {
  StopWatcher();
  pid_t pid = -1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (pid_ <= 0 || reaped_) return Status::Ok();
    pid = pid_;
  }
  ::kill(pid, SIGTERM);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(
                      static_cast<int64_t>(timeout_s * 1000));
  while (std::chrono::steady_clock::now() < deadline) {
    ReapIfExited(/*block=*/false);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (reaped_) return Status::Ok();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::kill(pid, SIGKILL);
  ReapIfExited(/*block=*/true);
  return Status::Timeout("phoenixd ignored SIGTERM; killed");
}

Status ProcessServerHandle::Restart() {
  if (running()) {
    return Status::Internal("phoenixd still running; Kill/Terminate first");
  }
  return Start();
}

void ProcessServerHandle::ArmKillOnRendezvous() {
  if (watcher_armed_.exchange(true)) return;
  int stop[2] = {-1, -1};
  if (::pipe(stop) != 0) {
    watcher_armed_.store(false);
    return;
  }
  watcher_stop_fd_ = stop[1];
  watcher_stop_read_ = stop[0];
  int rdv_fd = rendezvous_read_fd_;
  int stop_read = stop[0];
  watcher_ = std::thread([this, rdv_fd, stop_read] {
    pollfd pfds[2] = {{rdv_fd, POLLIN, 0}, {stop_read, POLLIN, 0}};
    while (true) {
      int pr = ::poll(pfds, 2, -1);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return;
      }
      if (pfds[1].revents != 0) return;  // disarmed
      if (pfds[0].revents & POLLIN) {
        char byte = 0;
        ssize_t n = ::read(rdv_fd, &byte, 1);
        if (n <= 0) return;  // child gone; write end closed
        // The child is parked inside its fsync (or checkpoint rename, or
        // request dispatch), holding the rendezvous. Kill it there.
        pid_t pid = -1;
        {
          std::lock_guard<std::mutex> lk(mu_);
          if (pid_ > 0 && !reaped_) pid = pid_;
        }
        if (pid > 0) {
          ::kill(pid, SIGKILL);
          rendezvous_kills_.fetch_add(1);
        }
        return;
      }
      if (pfds[0].revents != 0) return;  // HUP/ERR: child died unsignaled
    }
  });
}

void ProcessServerHandle::StopWatcher() {
  if (!watcher_armed_.load()) return;
  if (watcher_stop_fd_ >= 0) {
    char byte = 'q';
    [[maybe_unused]] ssize_t n = ::write(watcher_stop_fd_, &byte, 1);
  }
  if (watcher_.joinable()) watcher_.join();
  if (watcher_stop_fd_ >= 0) {
    ::close(watcher_stop_fd_);
    watcher_stop_fd_ = -1;
  }
  if (watcher_stop_read_ >= 0) {
    ::close(watcher_stop_read_);
    watcher_stop_read_ = -1;
  }
  watcher_armed_.store(false);
}

bool ProcessServerHandle::WaitRendezvousKill(double timeout_s) {
  // "The child died" is the observable; whether the armed rendezvous
  // specifically fired is rendezvous_kills(). (A child can also die by the
  // failsafe _exit if the parent lost the race — still a death.)
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(
                      static_cast<int64_t>(timeout_s * 1000));
  while (std::chrono::steady_clock::now() < deadline) {
    if (!running()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

}  // namespace phoenix::net
