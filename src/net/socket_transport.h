#ifndef PHOENIX_NET_SOCKET_TRANSPORT_H_
#define PHOENIX_NET_SOCKET_TRANSPORT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/channel.h"
#include "net/framing.h"
#include "net/socket.h"

namespace phoenix::net {

/// The real-wire Channel: one TCP or Unix-domain stream to a DbServer that
/// (usually) lives in another process. Same protocol bytes as the
/// in-process transport, wrapped in PHXF frames (framing.h); replies are
/// demultiplexed to their waiters by correlation id, so any number of
/// threads can have round trips in flight on one connection.
///
/// Failure mapping (the part the Phoenix failure detector depends on):
///  - EOF / ECONNRESET / send failure → every in-flight round trip resolves
///    kCommError exactly once, and the channel stays dead (reconnect = dial
///    a new channel via Network::Connect).
///  - rpc_timeout_ms elapses with the connection still up → THAT round trip
///    resolves kTimeout ("reply lost"); others keep waiting.
/// The two must not double-fire on one request: whoever pops the pending
/// entry (reader thread on reply/EOF, or the waiter on timeout) owns the
/// resolution — see the pending-map comments in the .cc.
///
/// Fault injection works transport-side like the in-process channel: a
/// dropped request fails before send; a lost reply is sent and executed,
/// but the reply frame is discarded on arrival and the waiter sees
/// kTimeout.
class SocketChannel final : public Channel {
 public:
  SocketChannel(Socket sock, NetworkConfig config);
  ~SocketChannel() override;

  std::future<Result<Response>> RoundTripAsync(const Request& request) override;
  Result<std::vector<Response>> RoundTripBatch(
      std::vector<Request> requests) override;
  void Disconnect() override;

 private:
  struct PendingSingle {
    std::promise<Result<Response>> promise;
    bool discard = false;  ///< lose-reply token claimed at send time
  };
  struct PendingBatch {
    std::promise<Result<std::vector<Response>>> promise;
    bool discard = false;
  };

  void ReaderLoop();
  void OnFrame(const Frame& frame);
  /// Connection death: resolves every pending round trip kCommError (each
  /// exactly once) and poisons the channel for future sends.
  void FailAll(const std::string& why);
  Status SendFrame(FrameType type, uint64_t corr_id,
                   const std::string& payload);

  Socket sock_;
  NetworkConfig config_;

  std::mutex mu_;  ///< pending maps + dead flag
  std::map<uint64_t, std::shared_ptr<PendingSingle>> pending_;
  std::map<uint64_t, std::shared_ptr<PendingBatch>> pending_batches_;
  bool dead_ = false;
  std::string dead_reason_;

  std::mutex write_mu_;  ///< one frame at a time on the wire
  std::thread reader_;
};

/// Dials `endpoint` and wraps the stream in a SocketChannel. kCommError on
/// refused/timeout — Network::Connect surfaces it and the Phoenix recovery
/// loop retries with backoff.
Result<std::unique_ptr<Channel>> ConnectSocketChannel(
    const std::string& endpoint, const NetworkConfig& config);

/// Accept side: owns a listening socket and, per connection, a reader
/// thread (frames → DbServer::HandleAsync, called in arrival order so the
/// per-session ticket gates see client submission order) and a writer
/// thread (completed responses → frames, FIFO per connection). Runs inside
/// phoenixd, and inside tests that want a real wire without a child
/// process.
class SocketServer {
 public:
  explicit SocketServer(DbServer* server) : server_(server) {}
  ~SocketServer();

  /// Binds, listens, and starts accepting. endpoint() then carries the
  /// resolved address (kernel-assigned port for "tcp:...:0").
  Status Start(const std::string& endpoint);
  const std::string& endpoint() const { return listener_.endpoint(); }

  /// Stops accepting, hangs up every connection, joins all threads.
  void Shutdown();

 private:
  struct OutboxItem {
    enum class Kind { kSingle, kBatch, kImmediate };
    Kind kind = Kind::kSingle;
    uint64_t corr_id = 0;
    std::future<Response> future;  ///< kSingle
    BatchRequest batch;            ///< kBatch (executed by the writer)
    Response immediate;            ///< kImmediate (e.g. decode-error reply)
  };
  struct Conn {
    Socket sock;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<OutboxItem> outbox;
    bool closed = false;  ///< reader gone; writer drains then exits
    std::thread reader;
    std::thread writer;
  };

  void AcceptLoop();
  void ConnReader(Conn* conn);
  void ConnWriter(Conn* conn);

  DbServer* server_;
  Listener listener_;
  std::thread acceptor_;
  std::mutex conns_mu_;
  std::list<std::unique_ptr<Conn>> conns_;
  bool shutting_down_ = false;
};

}  // namespace phoenix::net

#endif  // PHOENIX_NET_SOCKET_TRANSPORT_H_
