#ifndef PHOENIX_NET_PROTOCOL_H_
#define PHOENIX_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/schema.h"
#include "common/status.h"
#include "engine/executor.h"

namespace phoenix::net {

/// Client→server message. Every request except kConnect and kPing carries
/// the session id it operates on.
struct Request {
  enum class Kind : uint8_t {
    kConnect = 0,     ///< user → kConnected{session_id}
    kDisconnect = 1,  ///< graceful session termination
    kSetOption = 2,   ///< name/value connection option
    kExecScript = 3,  ///< SQL batch; all results shipped (default result set)
    kOpenCursor = 4,  ///< SELECT + cursor_type → kCursorOpened
    kFetch = 5,       ///< cursor_id + n → kRows
    kSeek = 6,        ///< cursor_id + n(position) → kOk (server-side advance)
    kCloseCursor = 7,
    kPing = 8,        ///< liveness probe → kPong
    kAdmin = 9,       ///< name/value out-of-band control (see ServerOptions::
                      ///< admin_hook) — chaos uses it to arm SIGKILL
                      ///< rendezvous points inside a running phoenixd
  };

  Kind kind = Kind::kPing;
  /// Client-assigned correlation id, echoed verbatim in the Response. The
  /// Channel fills it in (monotonic per channel) when the caller leaves it 0;
  /// traces carry it so a retry and the original it duplicates are
  /// distinguishable in chaos-test logs.
  uint64_t request_id = 0;
  uint64_t session_id = 0;
  std::string user;      ///< kConnect
  std::string name;      ///< kSetOption option name
  std::string value;     ///< kSetOption option value
  std::string sql;       ///< kExecScript / kOpenCursor
  uint8_t cursor_type = 0;
  uint64_t cursor_id = 0;
  uint64_t n = 0;        ///< fetch count or seek position

  std::string Encode() const;
  static Result<Request> Decode(const std::string& bytes);
  /// Stream variants used by the batch framing.
  void EncodeTo(Encoder* enc) const;
  static Result<Request> DecodeFrom(Decoder* dec);
};

/// Server→client message.
struct Response {
  enum class Kind : uint8_t {
    kOk = 0,
    kError = 1,
    kConnected = 2,
    kResults = 3,
    kCursorOpened = 4,
    kRows = 5,
    kPong = 6,
  };

  Kind kind = Kind::kOk;
  uint64_t request_id = 0;  ///< echo of Request::request_id
  StatusCode error_code = StatusCode::kOk;
  std::string error_message;
  uint64_t session_id = 0;                    ///< kConnected
  std::vector<eng::StatementResult> results;  ///< kResults
  uint64_t cursor_id = 0;                     ///< kCursorOpened
  Schema schema;                              ///< kCursorOpened
  uint64_t cursor_size = 0;                   ///< kCursorOpened (0=unknown)
  std::vector<Row> rows;                      ///< kRows
  bool done = false;                          ///< kRows
  uint64_t server_epoch = 0;                  ///< kPong: restarts so far

  static Response MakeError(const Status& s);
  static Response MakeOk() { return Response{}; }

  /// kError → the corresponding Status; anything else → OK.
  Status ToStatus() const;

  std::string Encode() const;
  static Result<Response> Decode(const std::string& bytes);
  /// Stream variants used by the batch framing.
  void EncodeTo(Encoder* enc) const;
  static Result<Response> DecodeFrom(Decoder* dec);
};

/// Wire framing for a pipelined request batch (Channel::RoundTripBatch).
/// One magic-tagged message carries N requests back-to-back; the server
/// dispatches them concurrently (per-session order preserved) and replies
/// with one BatchResponse carrying the N responses in request order.
///
/// Decode is strict — it is the server's first line of defense against a
/// corrupt or adversarial peer: bad magic, zero or oversized counts,
/// truncated entries, trailing bytes, and duplicate non-zero request_ids
/// are all rejected with an error (never a crash, never a silent accept).
struct BatchRequest {
  static constexpr uint32_t kMagic = 0x50485842;  ///< "PHXB"
  static constexpr uint32_t kMaxBatch = 4096;     ///< sanity bound on count

  std::vector<Request> requests;

  std::string Encode() const;
  static Result<BatchRequest> Decode(const std::string& bytes);
};

/// The reply to a BatchRequest: responses in the same order as the requests.
struct BatchResponse {
  static constexpr uint32_t kMagic = 0x50485852;  ///< "PHXR"

  std::vector<Response> responses;

  std::string Encode() const;
  static Result<BatchResponse> Decode(const std::string& bytes);
};

void EncodeStatementResult(const eng::StatementResult& r, Encoder* enc);
Result<eng::StatementResult> DecodeStatementResult(Decoder* dec);

/// Lowercase metric-friendly name ("connect", "fetch", ...) — used as the
/// <kind> suffix of the "net.requests.<kind>" counters.
const char* RequestKindName(Request::Kind kind);

}  // namespace phoenix::net

#endif  // PHOENIX_NET_PROTOCOL_H_
