#ifndef PHOENIX_NET_PROCESS_SERVER_H_
#define PHOENIX_NET_PROCESS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <sys/types.h>
#include <thread>

#include "common/status.h"

namespace phoenix::net {

/// Everything needed to spawn one phoenixd child process.
struct ProcessServerOptions {
  /// Path to the phoenixd binary. Empty = $PHX_SERVER_BIN, then a handful
  /// of build-tree-relative fallbacks (see FindServerBinary).
  std::string binary;
  /// "unix" or "tcp". Ignored when `endpoint` is set explicitly.
  std::string transport = "unix";
  /// Durable state directory, shared by every incarnation of this server.
  /// Required; must exist.
  std::string data_dir;
  /// Listen address. Empty = derived: "unix:<data_dir>/phoenixd.sock"
  /// ("phoenixd.<id>.sock" when server_id > 0, so two servers over one
  /// data dir never fight for the same socket file) or "tcp:127.0.0.1:0"
  /// (kernel-assigned port, reported back over the readiness pipe). After
  /// the first Start() the RESOLVED endpoint is reused, so a restarted
  /// server comes back on the same address and clients can redial blindly.
  std::string endpoint;
  /// Server identity within a failover group (PHX_SERVER_ID). Partitions
  /// the boot counter file and the session/txn id space so two servers
  /// sharing a data dir never mint colliding ids: phoenixd folds it into
  /// the high byte of first_session_id ((id << 56) | (boot & 0xFFFFFF) <<
  /// 32). 0 = the historical single-server layout.
  uint64_t server_id = 0;
  /// Auto-checkpoint cadence for the child (0 = never).
  uint64_t checkpoint_every_n_commits = 0;
  /// Worker pool size for the child (0 = phoenixd default).
  uint64_t worker_threads = 0;
  /// Extra environment for the child, e.g. {"PHX_GROUP_COMMIT","1"} — how a
  /// chaos schedule pins the child's durability knobs deterministically.
  std::map<std::string, std::string> env;
  /// Rendezvous spec armed from birth (see kAdminRendezvous for the
  /// format); empty = none. Further specs can be armed at runtime via a
  /// kAdmin request.
  std::string rendezvous;
  /// How long WaitReady (inside Start) waits for the READY line.
  double ready_timeout_s = 30.0;
};

/// Admin-request name for arming a rendezvous in a running phoenixd. Value
/// format:  "<point>:<n>[:<keep_permille>]"  where point is one of
///   wal_sync  — the Nth WAL-file Sync() after arming; keep_permille of the
///               tail reaches the device (torn write), then the child
///               signals and blocks MID-FSYNC;
///   ckpt_pre  — the Nth checkpoint WriteAtomic, between temp-write and
///               rename (kill ⇒ image lost);
///   ckpt_post — same, after the rename (kill ⇒ image durable, WAL not yet
///               truncated);
///   exec      — immediately before executing the Nth kExecScript request
///               (the mid-request kill window);
///   recovery  — the Nth WAL-replay progress event during boot recovery
///               (kill ⇒ the child dies with replay half-applied; only
///               reachable via ProcessServerOptions.rendezvous +
///               ArmKillOnNextStart, since the child parks before READY).
/// and n counts matching events after arming (1 = the next one).
inline constexpr const char* kAdminRendezvous = "phx.rendezvous";

/// Locates the phoenixd binary: explicit path → $PHX_SERVER_BIN → paths
/// relative to the running test binary ("../src/phoenixd" etc.). Empty
/// string when nothing is found.
std::string FindServerBinary(const std::string& explicit_path = "");

/// Spawns, supervises, health-checks, and kills a phoenixd child process —
/// the parent half of the SIGKILL rendezvous protocol:
///
///   parent                                child
///     Start() ── spawn ──────────────────▶ boot, listen
///     WaitReady ◀── "READY <endpoint>" ─── (notify pipe)
///     [arm via kAdmin over the socket]
///     ArmKillOnRendezvous()                ... workload ...
///       watcher blocks on rendezvous pipe  hits armed point:
///       ◀───────── 1 byte ──────────────── signal, then BLOCK mid-fsync
///       SIGKILL ───────────────────────▶   (dies holding the sync)
///
/// The child's unsynced WAL tail lives only in its process memory (see
/// SimDisk backing mode), so the kill discards exactly the bytes a real
/// power-cut would — the recovery evidence is genuine.
///
/// Thread-compatible: Kill/Terminate/running may race the watcher thread
/// (internal mutex); Start/Restart must not race anything.
class ProcessServerHandle {
 public:
  explicit ProcessServerHandle(ProcessServerOptions opts)
      : opts_(std::move(opts)) {}
  ~ProcessServerHandle();
  ProcessServerHandle(const ProcessServerHandle&) = delete;
  ProcessServerHandle& operator=(const ProcessServerHandle&) = delete;

  /// Spawns the child and blocks until it reports READY (listening, DB
  /// recovered) and answers the endpoint. Error if the child dies first.
  Status Start();

  /// SIGKILL + reap. Safe when already dead (reaps). Stops the watcher.
  void Kill();

  /// SIGTERM, wait up to `timeout_s` for a graceful exit, then SIGKILL.
  Status Terminate(double timeout_s = 10.0);

  /// Spawns a fresh incarnation over the same data dir + endpoint. The
  /// previous child must be dead (Kill/Terminate first).
  Status Restart();

  /// Starts the watcher thread: the moment the child signals an armed
  /// rendezvous, SIGKILL it. Idempotent while armed.
  void ArmKillOnRendezvous();

  /// Makes the NEXT Start()/Restart() arm the kill watcher between spawn
  /// and the READY wait. Required for the "recovery" rendezvous point: the
  /// child parks during WAL replay, BEFORE it ever writes READY, so arming
  /// after Start() returns would be too late (Start() would just time out).
  /// With the watcher armed mid-Start, the SIGKILL lands while the child is
  /// parked in recovery and Start() fails fast with CommError when the
  /// notify pipe EOFs. One-shot; consumed by the next Start().
  void ArmKillOnNextStart() { arm_on_start_ = true; }

  /// Blocks until an armed rendezvous kill happened (true) or `timeout_s`
  /// passed / the child died some other way (false).
  bool WaitRendezvousKill(double timeout_s);

  bool running();
  pid_t pid() const { return pid_; }
  /// Resolved listen address ("tcp:127.0.0.1:41873" / "unix:/..."),
  /// stable across Restart(). Empty before the first successful Start().
  const std::string& endpoint() const { return endpoint_; }
  uint64_t rendezvous_kills() const { return rendezvous_kills_.load(); }
  const ProcessServerOptions& options() const { return opts_; }
  ProcessServerOptions* mutable_options() { return &opts_; }

 private:
  Status Spawn(const std::string& endpoint);
  Status WaitReady();
  void StopWatcher();
  void ClosePipes();
  /// Reaps if exited; pid_ stays for post-mortem, reaped_ flips.
  void ReapIfExited(bool block);

  ProcessServerOptions opts_;
  std::string endpoint_;

  std::mutex mu_;
  pid_t pid_ = -1;
  bool reaped_ = true;
  int notify_read_fd_ = -1;
  int rendezvous_read_fd_ = -1;
  int watcher_stop_fd_ = -1;   ///< write end of the watcher's stop pipe
  int watcher_stop_read_ = -1;
  std::thread watcher_;
  bool arm_on_start_ = false;  ///< one-shot: arm watcher inside next Start()
  std::atomic<bool> watcher_armed_{false};
  std::atomic<uint64_t> rendezvous_kills_{0};
};

}  // namespace phoenix::net

#endif  // PHOENIX_NET_PROCESS_SERVER_H_
