#include "net/framing.h"

namespace phoenix::net {

namespace {

uint32_t LoadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

uint64_t LoadU64(const char* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         static_cast<uint64_t>(LoadU32(p + 4)) << 32;
}

void StoreU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

bool ValidType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kRequest) &&
         t <= static_cast<uint8_t>(FrameType::kBatchResponse);
}

}  // namespace

std::string EncodeFrame(FrameType type, uint64_t corr_id,
                        const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  StoreU32(kFrameMagic, &out);
  out.push_back(static_cast<char>(type));
  StoreU32(static_cast<uint32_t>(corr_id & 0xffffffffull), &out);
  StoreU32(static_cast<uint32_t>(corr_id >> 32), &out);
  StoreU32(static_cast<uint32_t>(payload.size()), &out);
  out.append(payload);
  return out;
}

FrameAssembler::Next FrameAssembler::Poll(Frame* out) {
  if (fatal_) return Next::kError;
  // Hunt for a byte position that can start a frame. On a clean stream the
  // very first position matches and the loop body runs once.
  size_t skipped = 0;
  while (true) {
    if (buf_.size() - skipped < kFrameHeaderSize) break;  // header incomplete
    const char* p = buf_.data() + skipped;
    if (LoadU32(p) != kFrameMagic || !ValidType(static_cast<uint8_t>(p[4]))) {
      // Not a frame boundary: garbage prefix, or the tail of a frame whose
      // head we never saw. Slide one byte and keep scanning.
      ++skipped;
      continue;
    }
    uint64_t len = LoadU32(p + 13);
    if (len > max_payload_) {
      // A magic-tagged header demanding an absurd payload: corrupt or
      // hostile peer. Resyncing would stall the stream for up to `len`
      // bytes, so this is fatal for the connection.
      fatal_ = true;
      error_ = "oversized frame: " + std::to_string(len) + " bytes (max " +
               std::to_string(max_payload_) + ")";
      buf_.clear();
      return Next::kError;
    }
    if (buf_.size() - skipped < kFrameHeaderSize + len) break;  // payload short
    out->type = static_cast<FrameType>(static_cast<uint8_t>(p[4]));
    out->corr_id = LoadU64(p + 5);
    out->payload.assign(p + kFrameHeaderSize, len);
    buf_.erase(0, skipped + kFrameHeaderSize + len);
    resync_bytes_skipped_ += skipped;
    return Next::kFrame;
  }
  // No complete frame. Discard the scanned garbage now so it is not
  // re-scanned on the next Feed, but keep the (possibly partial) header.
  if (skipped > 0) {
    buf_.erase(0, skipped);
    resync_bytes_skipped_ += skipped;
  }
  return Next::kNeedMore;
}

}  // namespace phoenix::net
