#include "net/db_server.h"

#include "obs/metrics.h"

namespace phoenix::net {

DbServer::DbServer(storage::SimDisk* disk, ServerOptions opts)
    : disk_(disk), opts_(std::move(opts)) {
  epoch_.store(opts_.initial_epoch, std::memory_order_relaxed);
}

DbServer::~DbServer() {
  // Graceful stop, NOT a crash: drain the dispatcher so no worker outlives
  // the Database, but leave the disk exactly as the last operation left it
  // (a destructor must not alter durability semantics).
  std::unique_ptr<WorkerPool> pool;
  {
    std::unique_lock<std::shared_mutex> lk(lifecycle_mu_);
    accepting_ = false;
    pool = std::move(pool_);
  }
  if (pool != nullptr) pool->Shutdown();
}

Status DbServer::Start() {
  std::unique_lock<std::shared_mutex> lk(lifecycle_mu_);
  if (db_ != nullptr) return Status::Internal("server already started");
  eng::DatabaseOptions db_opts = opts_.db;
  if (next_session_id_ < opts_.first_session_id) {
    next_session_id_ = opts_.first_session_id;
  }
  db_opts.first_session_id = next_session_id_;
  auto db = std::make_unique<eng::Database>(disk_, db_opts);
  PHX_RETURN_IF_ERROR(db->Open());
  db_ = std::move(db);
  WorkerPool::Options pool_opts;
  pool_opts.threads = opts_.worker_threads;
  pool_opts.queue_capacity = opts_.queue_capacity;
  pool_ = std::make_unique<WorkerPool>(pool_opts);
  accepting_ = true;
  epoch_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

bool DbServer::CrashImpl(const std::function<void()>& crash_disk,
                         std::optional<eng::CheckpointCrashPoint> mid_checkpoint) {
  // Phase 1: close intake. New requests now get "server is down".
  std::unique_ptr<WorkerPool> pool;
  {
    std::unique_lock<std::shared_mutex> lk(lifecycle_mu_);
    accepting_ = false;
    pool = std::move(pool_);
  }
  // Phase 2: graceful drain, outside the lifecycle lock — in-flight
  // requests still see a live Database and complete normally (they beat
  // the crash; whether their effects survive depends on what was synced).
  if (pool != nullptr) pool->Shutdown();
  // Phase 3: the process dies. All volatile server state goes with it.
  bool ckpt_written = false;
  {
    std::unique_lock<std::shared_mutex> lk(lifecycle_mu_);
    if (db_ != nullptr) {
      if (mid_checkpoint.has_value()) {
        // Death inside a checkpoint: the protocol ran up to the chosen
        // crash point (e.g. image durable, WAL truncation never happened)
        // and the process dies now.
        bool wrote = false;
        ckpt_written =
            db_->CheckpointForCrashTest(*mid_checkpoint, &wrote).ok() && wrote;
      }
      next_session_id_ = db_->next_session_id();
    }
    db_.reset();
  }
  crash_disk();
  // Stale session ids can never name a post-restart session (ids are never
  // reused), so their serialization gates are garbage.
  {
    std::lock_guard<std::mutex> lk(gates_mu_);
    gates_.clear();
  }
  return ckpt_written;
}

void DbServer::Crash() {
  CrashImpl([this] { disk_->Crash(); }, /*mid_checkpoint=*/std::nullopt);
}

void DbServer::CrashWithPartialFlush(double keep_fraction) {
  CrashImpl([this, keep_fraction] { disk_->CrashWithPartialFlush(keep_fraction); },
            /*mid_checkpoint=*/std::nullopt);
}

void DbServer::CrashTorn(const storage::SimDisk::TornCrashSpec& spec) {
  CrashImpl([this, spec] { disk_->CrashTorn(spec); },
            /*mid_checkpoint=*/std::nullopt);
}

bool DbServer::CrashMidCheckpoint(eng::CheckpointCrashPoint point) {
  return CrashImpl([this] { disk_->Crash(); }, point);
}

Status DbServer::Restart() {
  {
    std::shared_lock<std::shared_mutex> lk(lifecycle_mu_);
    if (db_ != nullptr) return Status::Internal("server is already running");
  }
  return Start();
}

bool DbServer::alive() const {
  std::shared_lock<std::shared_mutex> lk(lifecycle_mu_);
  return db_ != nullptr;
}

ServerStats DbServer::stats() const {
  ServerStats s;
  s.requests_handled = requests_handled_.load(std::memory_order_relaxed);
  s.requests_rejected_down =
      requests_rejected_down_.load(std::memory_order_relaxed);
  return s;
}

std::shared_ptr<DbServer::SessionGate> DbServer::GateFor(uint64_t session_id) {
  std::lock_guard<std::mutex> lk(gates_mu_);
  auto& gate = gates_[session_id];
  if (gate == nullptr) gate = std::make_shared<SessionGate>();
  return gate;
}

Response DbServer::Handle(const Request& request) {
  return HandleAsync(request).get();
}

std::future<Response> DbServer::HandleAsync(const Request& request) {
  requests_handled_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::Default()
      ->GetCounter("server.requests_handled")
      ->Increment();

  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();

  std::shared_lock<std::shared_mutex> lk(lifecycle_mu_);
  if (!accepting_ || db_ == nullptr || pool_ == nullptr) {
    requests_rejected_down_.fetch_add(1, std::memory_order_relaxed);
    Response down = Response::MakeError(Status::CommError("server is down"));
    down.request_id = request.request_id;
    promise->set_value(std::move(down));
    return future;
  }

  // Same-session ordering: tickets are issued under the session's submit
  // lock, and the submission itself happens before that lock is released,
  // so ticket order == queue order (the no-deadlock invariant).
  std::shared_ptr<SessionGate> gate;
  uint64_t ticket = 0;
  std::unique_lock<std::mutex> submit_lk;
  if (request.session_id != 0) {
    gate = GateFor(request.session_id);
    submit_lk = std::unique_lock<std::mutex>(gate->submit_mu);
    std::lock_guard<std::mutex> g(gate->mu);
    ticket = gate->next_ticket++;
  }

  bool accepted = pool_->Submit([this, request, promise, gate, ticket] {
    if (gate != nullptr) {
      std::unique_lock<std::mutex> g(gate->mu);
      gate->cv.wait(g, [&] { return gate->now_serving == ticket; });
    }
    Response response = Dispatch(request);
    response.request_id = request.request_id;
    if (gate != nullptr) {
      {
        std::lock_guard<std::mutex> g(gate->mu);
        ++gate->now_serving;
      }
      gate->cv.notify_all();
    }
    promise->set_value(std::move(response));
  });

  if (!accepted) {
    // The pool began stopping between our lifecycle check and the submit
    // (cannot happen today — Crash() takes the lifecycle lock exclusively
    // first — but kept correct): consume our ticket in order so later
    // tickets never stall, then report the crash.
    if (gate != nullptr) {
      {
        std::unique_lock<std::mutex> g(gate->mu);
        gate->cv.wait(g, [&] { return gate->now_serving == ticket; });
        ++gate->now_serving;
      }
      gate->cv.notify_all();
    }
    requests_rejected_down_.fetch_add(1, std::memory_order_relaxed);
    Response down = Response::MakeError(Status::CommError("server is down"));
    down.request_id = request.request_id;
    promise->set_value(std::move(down));
  }
  return future;
}

BatchResponse DbServer::HandleBatch(const BatchRequest& batch) {
  std::vector<std::future<Response>> futures;
  futures.reserve(batch.requests.size());
  for (const Request& request : batch.requests) {
    futures.push_back(HandleAsync(request));
  }
  BatchResponse response;
  response.responses.reserve(futures.size());
  for (auto& f : futures) response.responses.push_back(f.get());
  obs::MetricsRegistry::Default()
      ->GetCounter("server.batches_handled")
      ->Increment();
  return response;
}

Response DbServer::Dispatch(const Request& req) {
  // Runs on a pool worker. db_ is stable for the whole task: Crash() drains
  // the pool (joining this thread) before destroying the Database.
  if (opts_.pre_dispatch_hook) opts_.pre_dispatch_hook(req);
  eng::Database* db = db_.get();
  switch (req.kind) {
    case Request::Kind::kConnect: {
      auto res = db->CreateSession(req.user);
      if (!res.ok()) return Response::MakeError(res.status());
      Response r;
      r.kind = Response::Kind::kConnected;
      r.session_id = res.value();
      return r;
    }
    case Request::Kind::kDisconnect: {
      Status s = db->CloseSession(req.session_id);
      if (!s.ok()) return Response::MakeError(s);
      return Response::MakeOk();
    }
    case Request::Kind::kSetOption: {
      Status s = db->SetSessionOption(req.session_id, req.name, req.value);
      if (!s.ok()) return Response::MakeError(s);
      return Response::MakeOk();
    }
    case Request::Kind::kExecScript: {
      // Commit-ack contract: the success Response is constructed only after
      // ExecuteScript returns, and under group commit ExecuteScript does not
      // return a committing statement's result until the commit's WAL batch
      // sync status is known (Database::ExecuteStatement redeems the ticket
      // before reporting). Building any part of the reply earlier — or
      // treating an enqueued-but-unforced commit as success — would ack a
      // commit a crash can still lose.
      auto res = db->ExecuteScript(req.session_id, req.sql);
      if (!res.ok()) return Response::MakeError(res.status());
      Response r;
      r.kind = Response::Kind::kResults;
      r.results = std::move(res.value());
      return r;
    }
    case Request::Kind::kOpenCursor: {
      if (req.cursor_type > static_cast<uint8_t>(eng::CursorType::kDynamic)) {
        return Response::MakeError(Status::InvalidArgument("bad cursor type"));
      }
      auto res = db->OpenCursor(req.session_id, req.sql,
                                static_cast<eng::CursorType>(req.cursor_type));
      if (!res.ok()) return Response::MakeError(res.status());
      Response r;
      r.kind = Response::Kind::kCursorOpened;
      r.cursor_id = res.value()->id();
      r.schema = res.value()->schema();
      r.cursor_size = res.value()->known_size();
      return r;
    }
    case Request::Kind::kFetch: {
      bool done = false;
      auto res = db->FetchCursor(req.session_id, req.cursor_id,
                                 static_cast<size_t>(req.n), &done);
      if (!res.ok()) return Response::MakeError(res.status());
      Response r;
      r.kind = Response::Kind::kRows;
      r.rows = std::move(res.value());
      r.done = done;
      return r;
    }
    case Request::Kind::kSeek: {
      Status s = db->SeekCursor(req.session_id, req.cursor_id, req.n);
      if (!s.ok()) return Response::MakeError(s);
      return Response::MakeOk();
    }
    case Request::Kind::kCloseCursor: {
      Status s = db->CloseCursor(req.session_id, req.cursor_id);
      if (!s.ok()) return Response::MakeError(s);
      return Response::MakeOk();
    }
    case Request::Kind::kPing: {
      Response r;
      r.kind = Response::Kind::kPong;
      r.server_epoch = epoch_.load(std::memory_order_relaxed);
      return r;
    }
    case Request::Kind::kAdmin: {
      if (!opts_.admin_hook) {
        return Response::MakeError(
            Status::InvalidArgument("admin requests not supported"));
      }
      Status s = opts_.admin_hook(req.name, req.value);
      if (!s.ok()) return Response::MakeError(s);
      return Response::MakeOk();
    }
  }
  return Response::MakeError(Status::Internal("bad request kind"));
}

}  // namespace phoenix::net
