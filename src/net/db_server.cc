#include "net/db_server.h"

#include "obs/metrics.h"

namespace phoenix::net {

DbServer::DbServer(storage::SimDisk* disk, ServerOptions opts)
    : disk_(disk), opts_(std::move(opts)) {}

Status DbServer::Start() {
  if (db_ != nullptr) return Status::Internal("server already started");
  eng::DatabaseOptions db_opts = opts_.db;
  db_opts.first_session_id = next_session_id_;
  db_ = std::make_unique<eng::Database>(disk_, db_opts);
  PHX_RETURN_IF_ERROR(db_->Open());
  ++epoch_;
  return Status::Ok();
}

void DbServer::Crash() {
  if (db_ != nullptr) next_session_id_ = db_->next_session_id();
  db_.reset();        // all volatile server state dies here
  disk_->Crash();     // unsynced disk buffers die with the process
}

void DbServer::CrashWithPartialFlush(double keep_fraction) {
  if (db_ != nullptr) next_session_id_ = db_->next_session_id();
  db_.reset();
  disk_->CrashWithPartialFlush(keep_fraction);
}

Status DbServer::Restart() {
  if (db_ != nullptr) return Status::Internal("server is already running");
  return Start();
}

Response DbServer::Handle(const Request& request) {
  ++stats_.requests_handled;
  obs::MetricsRegistry::Default()
      ->GetCounter("server.requests_handled")
      ->Increment();
  Response response;
  if (db_ == nullptr) {
    ++stats_.requests_rejected_down;
    response = Response::MakeError(Status::CommError("server is down"));
  } else {
    response = Dispatch(request);
  }
  response.request_id = request.request_id;
  return response;
}

Response DbServer::Dispatch(const Request& req) {
  switch (req.kind) {
    case Request::Kind::kConnect: {
      auto res = db_->CreateSession(req.user);
      if (!res.ok()) return Response::MakeError(res.status());
      Response r;
      r.kind = Response::Kind::kConnected;
      r.session_id = res.value();
      return r;
    }
    case Request::Kind::kDisconnect: {
      Status s = db_->CloseSession(req.session_id);
      if (!s.ok()) return Response::MakeError(s);
      return Response::MakeOk();
    }
    case Request::Kind::kSetOption: {
      eng::Session* s = db_->GetSession(req.session_id);
      if (s == nullptr) {
        return Response::MakeError(Status::NotFound("no such session"));
      }
      s->options[req.name] = req.value;
      return Response::MakeOk();
    }
    case Request::Kind::kExecScript: {
      auto res = db_->ExecuteScript(req.session_id, req.sql);
      if (!res.ok()) return Response::MakeError(res.status());
      Response r;
      r.kind = Response::Kind::kResults;
      r.results = std::move(res.value());
      return r;
    }
    case Request::Kind::kOpenCursor: {
      if (req.cursor_type > static_cast<uint8_t>(eng::CursorType::kDynamic)) {
        return Response::MakeError(Status::InvalidArgument("bad cursor type"));
      }
      auto res = db_->OpenCursor(req.session_id, req.sql,
                                 static_cast<eng::CursorType>(req.cursor_type));
      if (!res.ok()) return Response::MakeError(res.status());
      Response r;
      r.kind = Response::Kind::kCursorOpened;
      r.cursor_id = res.value()->id();
      r.schema = res.value()->schema();
      r.cursor_size = res.value()->known_size();
      return r;
    }
    case Request::Kind::kFetch: {
      bool done = false;
      auto res = db_->FetchCursor(req.session_id, req.cursor_id,
                                  static_cast<size_t>(req.n), &done);
      if (!res.ok()) return Response::MakeError(res.status());
      Response r;
      r.kind = Response::Kind::kRows;
      r.rows = std::move(res.value());
      r.done = done;
      return r;
    }
    case Request::Kind::kSeek: {
      Status s = db_->SeekCursor(req.session_id, req.cursor_id, req.n);
      if (!s.ok()) return Response::MakeError(s);
      return Response::MakeOk();
    }
    case Request::Kind::kCloseCursor: {
      Status s = db_->CloseCursor(req.session_id, req.cursor_id);
      if (!s.ok()) return Response::MakeError(s);
      return Response::MakeOk();
    }
    case Request::Kind::kPing: {
      Response r;
      r.kind = Response::Kind::kPong;
      r.server_epoch = epoch_;
      return r;
    }
  }
  return Response::MakeError(Status::Internal("bad request kind"));
}

}  // namespace phoenix::net
