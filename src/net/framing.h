#ifndef PHOENIX_NET_FRAMING_H_
#define PHOENIX_NET_FRAMING_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace phoenix::net {

/// Stream framing for the socket transport. A TCP or Unix-domain stream
/// delivers an arbitrary byte soup — one send may arrive as many reads,
/// many sends as one read — so every protocol message travels inside a
/// self-describing frame:
///
///   offset  size  field
///   ------  ----  -----------------------------------------------
///        0     4  magic 0x50485846 ("PHXF"), little-endian
///        4     1  type (FrameType below)
///        5     8  correlation id, little-endian
///       13     4  payload length N, little-endian
///       17     N  payload (a Request / Response / BatchRequest /
///                 BatchResponse encoding — PHXB/PHXR framing included)
///
/// The correlation id is how a reply finds its waiter: for single messages
/// it equals the Request's request_id, for batches it is a channel-assigned
/// batch id (a BatchResponse has no id of its own). The payload codecs stay
/// byte-identical to the in-process transport — the frame is purely the
/// stream-chunking layer underneath them.
enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
  kBatchRequest = 3,
  kBatchResponse = 4,
};

struct Frame {
  FrameType type = FrameType::kRequest;
  uint64_t corr_id = 0;
  std::string payload;
};

constexpr uint32_t kFrameMagic = 0x50485846;  ///< "PHXF"
constexpr size_t kFrameHeaderSize = 4 + 1 + 8 + 4;
/// Upper bound on a single frame's payload. Large result sets ship as many
/// fetch blocks, so any frame near this size is a corrupt length field, not
/// a real message; accepting it would let 4 garbage bytes demand a 4 GiB
/// allocation.
constexpr size_t kMaxFramePayload = 64ull * 1024 * 1024;

/// Serializes one frame (header + payload) ready for send().
std::string EncodeFrame(FrameType type, uint64_t corr_id,
                        const std::string& payload);

/// Incremental frame reassembly over an arbitrary chunking of the stream.
/// Feed() whatever recv() returned — a partial header, half a payload,
/// three frames glued together — then drain complete frames with Poll().
///
/// Robustness rules (exercised by the wire fuzz battery):
///  - a byte position that cannot start a frame (magic mismatch, unknown
///    type) is skipped and scanning resumes at the next byte — the
///    garbage-prefix resync that lets a reader survive a peer's partial
///    final write from before a crash;
///  - a header whose length field exceeds max_payload is fatal (kError):
///    the bytes ARE magic-tagged, so the peer is either corrupt or hostile,
///    and resyncing into a 64 MiB "frame" would stall the connection.
///
/// Not thread-safe; each connection reader owns one assembler.
class FrameAssembler {
 public:
  explicit FrameAssembler(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Feed(const char* data, size_t n) { buf_.append(data, n); }
  void Feed(const std::string& data) { buf_.append(data); }

  enum class Next {
    kFrame,     ///< *out holds a complete frame
    kNeedMore,  ///< buffer holds no complete frame; Feed() more bytes
    kError,     ///< unrecoverable framing violation; close the connection
  };

  /// Extracts the next complete frame, resyncing past garbage as needed.
  Next Poll(Frame* out);

  /// Bytes discarded while hunting for a frame boundary (0 on a clean
  /// stream; nonzero means the peer wrote garbage or died mid-frame).
  uint64_t resync_bytes_skipped() const { return resync_bytes_skipped_; }
  /// Set after Poll() returns kError.
  const std::string& error() const { return error_; }

 private:
  size_t max_payload_;
  std::string buf_;
  uint64_t resync_bytes_skipped_ = 0;
  std::string error_;
  bool fatal_ = false;
};

}  // namespace phoenix::net

#endif  // PHOENIX_NET_FRAMING_H_
