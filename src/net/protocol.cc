#include "net/protocol.h"

#include <set>

namespace phoenix::net {

void Request::EncodeTo(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(kind));
  enc->PutU64(request_id);
  enc->PutU64(session_id);
  enc->PutString(user);
  enc->PutString(name);
  enc->PutString(value);
  enc->PutString(sql);
  enc->PutU8(cursor_type);
  enc->PutU64(cursor_id);
  enc->PutU64(n);
}

std::string Request::Encode() const {
  Encoder enc;
  EncodeTo(&enc);
  return enc.Take();
}

Result<Request> Request::DecodeFrom(Decoder* dec) {
  Request r;
  PHX_ASSIGN_OR_RETURN(uint8_t kind_raw, dec->GetU8());
  if (kind_raw > static_cast<uint8_t>(Kind::kAdmin)) {
    return Status::IoError("bad request kind");
  }
  r.kind = static_cast<Kind>(kind_raw);
  PHX_ASSIGN_OR_RETURN(r.request_id, dec->GetU64());
  PHX_ASSIGN_OR_RETURN(r.session_id, dec->GetU64());
  PHX_ASSIGN_OR_RETURN(r.user, dec->GetString());
  PHX_ASSIGN_OR_RETURN(r.name, dec->GetString());
  PHX_ASSIGN_OR_RETURN(r.value, dec->GetString());
  PHX_ASSIGN_OR_RETURN(r.sql, dec->GetString());
  PHX_ASSIGN_OR_RETURN(r.cursor_type, dec->GetU8());
  PHX_ASSIGN_OR_RETURN(r.cursor_id, dec->GetU64());
  PHX_ASSIGN_OR_RETURN(r.n, dec->GetU64());
  return r;
}

Result<Request> Request::Decode(const std::string& bytes) {
  Decoder dec(bytes);
  return DecodeFrom(&dec);
}

void EncodeStatementResult(const eng::StatementResult& r, Encoder* enc) {
  enc->PutBool(r.has_rows);
  enc->PutSchema(r.schema);
  enc->PutU64(r.rows.size());
  for (const Row& row : r.rows) enc->PutRow(row);
  enc->PutI64(r.affected);
}

Result<eng::StatementResult> DecodeStatementResult(Decoder* dec) {
  eng::StatementResult r;
  PHX_ASSIGN_OR_RETURN(r.has_rows, dec->GetBool());
  PHX_ASSIGN_OR_RETURN(r.schema, dec->GetSchema());
  PHX_ASSIGN_OR_RETURN(uint64_t n, dec->GetU64());
  r.rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PHX_ASSIGN_OR_RETURN(Row row, dec->GetRow());
    r.rows.push_back(std::move(row));
  }
  PHX_ASSIGN_OR_RETURN(r.affected, dec->GetI64());
  return r;
}

const char* RequestKindName(Request::Kind kind) {
  switch (kind) {
    case Request::Kind::kConnect: return "connect";
    case Request::Kind::kDisconnect: return "disconnect";
    case Request::Kind::kSetOption: return "set_option";
    case Request::Kind::kExecScript: return "exec_script";
    case Request::Kind::kOpenCursor: return "open_cursor";
    case Request::Kind::kFetch: return "fetch";
    case Request::Kind::kSeek: return "seek";
    case Request::Kind::kCloseCursor: return "close_cursor";
    case Request::Kind::kPing: return "ping";
    case Request::Kind::kAdmin: return "admin";
  }
  return "unknown";
}

Response Response::MakeError(const Status& s) {
  Response r;
  r.kind = Kind::kError;
  r.error_code = s.code();
  r.error_message = s.message();
  return r;
}

Status Response::ToStatus() const {
  if (kind != Kind::kError) return Status::Ok();
  return Status(error_code, error_message);
}

void Response::EncodeTo(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(kind));
  enc->PutU64(request_id);
  enc->PutU8(static_cast<uint8_t>(error_code));
  enc->PutString(error_message);
  enc->PutU64(session_id);
  enc->PutU32(static_cast<uint32_t>(results.size()));
  for (const auto& r : results) EncodeStatementResult(r, enc);
  enc->PutU64(cursor_id);
  enc->PutSchema(schema);
  enc->PutU64(cursor_size);
  enc->PutU64(rows.size());
  for (const Row& row : rows) enc->PutRow(row);
  enc->PutBool(done);
  enc->PutU64(server_epoch);
}

std::string Response::Encode() const {
  Encoder enc;
  EncodeTo(&enc);
  return enc.Take();
}

Result<Response> Response::DecodeFrom(Decoder* dec) {
  Response r;
  PHX_ASSIGN_OR_RETURN(uint8_t kind_raw, dec->GetU8());
  if (kind_raw > static_cast<uint8_t>(Kind::kPong)) {
    return Status::IoError("bad response kind");
  }
  r.kind = static_cast<Kind>(kind_raw);
  PHX_ASSIGN_OR_RETURN(r.request_id, dec->GetU64());
  PHX_ASSIGN_OR_RETURN(uint8_t code_raw, dec->GetU8());
  if (code_raw > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Status::IoError("bad status code");
  }
  r.error_code = static_cast<StatusCode>(code_raw);
  PHX_ASSIGN_OR_RETURN(r.error_message, dec->GetString());
  PHX_ASSIGN_OR_RETURN(r.session_id, dec->GetU64());
  PHX_ASSIGN_OR_RETURN(uint32_t nresults, dec->GetU32());
  for (uint32_t i = 0; i < nresults; ++i) {
    PHX_ASSIGN_OR_RETURN(eng::StatementResult sr, DecodeStatementResult(dec));
    r.results.push_back(std::move(sr));
  }
  PHX_ASSIGN_OR_RETURN(r.cursor_id, dec->GetU64());
  PHX_ASSIGN_OR_RETURN(r.schema, dec->GetSchema());
  PHX_ASSIGN_OR_RETURN(r.cursor_size, dec->GetU64());
  PHX_ASSIGN_OR_RETURN(uint64_t nrows, dec->GetU64());
  r.rows.reserve(nrows);
  for (uint64_t i = 0; i < nrows; ++i) {
    PHX_ASSIGN_OR_RETURN(Row row, dec->GetRow());
    r.rows.push_back(std::move(row));
  }
  PHX_ASSIGN_OR_RETURN(r.done, dec->GetBool());
  PHX_ASSIGN_OR_RETURN(r.server_epoch, dec->GetU64());
  return r;
}

Result<Response> Response::Decode(const std::string& bytes) {
  Decoder dec(bytes);
  return DecodeFrom(&dec);
}

std::string BatchRequest::Encode() const {
  Encoder enc;
  enc.PutU32(kMagic);
  enc.PutU32(static_cast<uint32_t>(requests.size()));
  for (const Request& r : requests) r.EncodeTo(&enc);
  return enc.Take();
}

Result<BatchRequest> BatchRequest::Decode(const std::string& bytes) {
  Decoder dec(bytes);
  PHX_ASSIGN_OR_RETURN(uint32_t magic, dec.GetU32());
  if (magic != kMagic) return Status::IoError("bad batch magic");
  PHX_ASSIGN_OR_RETURN(uint32_t count, dec.GetU32());
  if (count == 0) return Status::IoError("empty batch");
  if (count > kMaxBatch) return Status::IoError("batch too large");
  BatchRequest batch;
  batch.requests.reserve(count);
  std::set<uint64_t> seen_ids;
  for (uint32_t i = 0; i < count; ++i) {
    auto r = Request::DecodeFrom(&dec);
    if (!r.ok()) {
      return Status::IoError("truncated batch entry " + std::to_string(i) +
                             ": " + r.status().message());
    }
    // Non-zero correlation ids must be unique within the batch: a duplicate
    // means the peer (or a retry bug) would be unable to match replies.
    if (r->request_id != 0 && !seen_ids.insert(r->request_id).second) {
      return Status::IoError("duplicate request_id in batch: " +
                             std::to_string(r->request_id));
    }
    batch.requests.push_back(r.take());
  }
  if (!dec.AtEnd()) return Status::IoError("trailing bytes after batch");
  return batch;
}

std::string BatchResponse::Encode() const {
  Encoder enc;
  enc.PutU32(kMagic);
  enc.PutU32(static_cast<uint32_t>(responses.size()));
  for (const Response& r : responses) r.EncodeTo(&enc);
  return enc.Take();
}

Result<BatchResponse> BatchResponse::Decode(const std::string& bytes) {
  Decoder dec(bytes);
  PHX_ASSIGN_OR_RETURN(uint32_t magic, dec.GetU32());
  if (magic != kMagic) return Status::IoError("bad batch-response magic");
  PHX_ASSIGN_OR_RETURN(uint32_t count, dec.GetU32());
  if (count > BatchRequest::kMaxBatch) {
    return Status::IoError("batch response too large");
  }
  BatchResponse batch;
  batch.responses.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    auto r = Response::DecodeFrom(&dec);
    if (!r.ok()) {
      return Status::IoError("truncated batch-response entry " +
                             std::to_string(i));
    }
    batch.responses.push_back(r.take());
  }
  if (!dec.AtEnd()) return Status::IoError("trailing bytes after batch");
  return batch;
}

}  // namespace phoenix::net
