#ifndef PHOENIX_NET_WORKER_POOL_H_
#define PHOENIX_NET_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace phoenix::net {

/// Fixed-size thread pool with a bounded FIFO task queue — the DbServer's
/// request dispatcher. Semantics chosen for a database server:
///
///  - Submit() blocks the producer while the queue is full (backpressure,
///    never unbounded memory) and returns false once the pool is stopping —
///    the caller turns that into a "server is down" response.
///  - Shutdown() is a *graceful drain*: intake stops immediately, but every
///    task already accepted (queued or running) finishes before the worker
///    threads are joined. DbServer::Crash() relies on this so no task can
///    touch the Database object after it is destroyed.
///  - Tasks are plain std::function<void()>; result delivery is the
///    caller's business (DbServer uses promises keyed by request).
///
/// The pool reports "server.pool.*" metrics: tasks executed, queue
/// high-water mark, and submissions that had to wait for queue space.
class WorkerPool {
 public:
  struct Options {
    size_t threads = 4;
    size_t queue_capacity = 128;
  };

  explicit WorkerPool(Options opts);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  /// Implicit graceful Shutdown().
  ~WorkerPool();

  /// Enqueues a task, blocking while the queue is full. Returns false (task
  /// not accepted) iff Shutdown() has begun.
  bool Submit(std::function<void()> task);

  /// Stops intake, runs every accepted task to completion, joins workers.
  /// Idempotent.
  void Shutdown();

  /// Blocks until the queue is empty and all workers are idle. Intake stays
  /// open; racing producers can make this wait longer.
  void Drain();

  size_t threads() const { return threads_.size(); }
  uint64_t tasks_executed() const;
  size_t queue_high_water() const;

 private:
  void WorkerLoop();

  Options opts_;  ///< normalized in the constructor, constant afterwards
  mutable std::mutex mu_;
  std::condition_variable not_empty_;   ///< queue gained a task / stopping
  std::condition_variable not_full_;    ///< queue gained space / stopping
  std::condition_variable idle_;        ///< queue empty and nothing running
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t running_ = 0;  ///< tasks currently executing
  uint64_t tasks_executed_ = 0;
  size_t queue_high_water_ = 0;
  bool stopping_ = false;
};

}  // namespace phoenix::net

#endif  // PHOENIX_NET_WORKER_POOL_H_
