#include "net/channel.h"

#include <chrono>

namespace phoenix::net {

void Channel::SimulateWire(size_t bytes) const {
  uint64_t ns = config_.round_trip_latency_us * 1000ull / 2 +
                static_cast<uint64_t>(bytes) * config_.ns_per_byte;
  if (ns == 0) return;
  auto until = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < until) {
    // Busy-wait: keeps simulated latency visible to wall-clock timers
    // without descheduling noise.
  }
}

Result<Response> Channel::RoundTrip(const Request& request) {
  ++round_trips_;
  if (disconnected_) {
    return Status::CommError("connection closed by client");
  }
  if (drop_requests_ > 0) {
    --drop_requests_;
    return Status::CommError("connection reset (request lost)");
  }
  std::string wire_request = request.Encode();
  bytes_sent_ += wire_request.size();
  SimulateWire(wire_request.size());

  if (!server_->alive()) {
    // The TCP stack notices the peer is gone: error or hang → timeout.
    return Status::CommError("connection reset by peer (server down)");
  }
  PHX_ASSIGN_OR_RETURN(Request decoded, Request::Decode(wire_request));
  Response response = server_->Handle(decoded);
  std::string wire_response = response.Encode();

  if (lose_replies_ > 0) {
    // The server executed the request, but the reply never arrives.
    --lose_replies_;
    return Status::Timeout("no response from server");
  }
  bytes_received_ += wire_response.size();
  SimulateWire(wire_response.size());
  return Response::Decode(wire_response);
}

}  // namespace phoenix::net
