#include "net/channel.h"

#include <chrono>
#include <thread>

#include "net/socket_transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace phoenix::net {

void InprocChannel::SimulateWire(size_t bytes) const {
  uint64_t ns = config_.round_trip_latency_us * 1000ull / 2 +
                static_cast<uint64_t>(bytes) * config_.ns_per_byte;
  if (ns == 0) return;
  if (config_.sleep_wire) {
    // Deschedule: concurrent channels overlap their wire time, the model
    // for "many clients on a LAN" (see NetworkConfig::sleep_wire).
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    return;
  }
  auto until = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < until) {
    // Busy-wait: keeps simulated latency visible to wall-clock timers
    // without descheduling noise.
  }
}

bool Channel::ClaimFault(std::atomic<int>* counter) {
  int current = counter->load(std::memory_order_relaxed);
  while (current > 0) {
    if (counter->compare_exchange_weak(current, current - 1,
                                       std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

ChannelStats Channel::stats() const {
  ChannelStats s;
  s.round_trips = round_trips_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.faults_injected = faults_injected_.load(std::memory_order_relaxed);
  return s;
}

namespace {

void TraceOutcome(uint64_t request_id, Request::Kind kind, const char* what) {
  obs::Tracer::Default()->Emit(
      what, {{"request_id", std::to_string(request_id)},
             {"kind", RequestKindName(kind)}});
}

/// A future that is already resolved — error paths return these so sync and
/// async callers share one code path.
std::future<Result<Response>> ReadyResult(Result<Response> r) {
  std::promise<Result<Response>> p;
  p.set_value(std::move(r));
  return p.get_future();
}

/// The server's intake rejected this request without executing it ("server
/// is down"): the connection-dead outcome. Distinguishing this from a lost
/// reply is load-bearing — see the lose_reply handling below.
bool IsUnexecutedRejection(const Response& response) {
  return response.kind == Response::Kind::kError &&
         response.error_code == StatusCode::kCommError;
}

}  // namespace

std::future<Result<Response>> InprocChannel::RoundTripAsync(
    const Request& request) {
  auto* reg = obs::MetricsRegistry::Default();
  round_trips_.fetch_add(1, std::memory_order_relaxed);
  reg->GetCounter("net.round_trips")->Increment();
  reg->GetCounter(std::string("net.requests.") + RequestKindName(request.kind))
      ->Increment();

  Request req = request;
  if (req.request_id == 0) {
    req.request_id = next_request_id_.fetch_add(1) + 1;
  }
  TraceOutcome(req.request_id, req.kind, "net.request");
  uint64_t start_us = obs::MonotonicNanos() / 1000;
  auto record_latency = [reg, start_us] {
    reg->GetHistogram("net.request_latency_us")
        ->Record(obs::MonotonicNanos() / 1000 - start_us);
  };

  if (disconnected_.load()) {
    record_latency();
    TraceOutcome(req.request_id, req.kind, "net.client_closed");
    return ReadyResult(Status::CommError("connection closed by client"));
  }
  if (ClaimFault(&drop_requests_)) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    reg->GetCounter("net.faults.dropped_requests")->Increment();
    record_latency();
    TraceOutcome(req.request_id, req.kind, "net.fault.request_dropped");
    return ReadyResult(Status::CommError("connection reset (request lost)"));
  }
  std::string wire_request = req.Encode();
  bytes_sent_.fetch_add(wire_request.size(), std::memory_order_relaxed);
  reg->GetCounter("net.bytes_sent")->Increment(wire_request.size());
  SimulateWire(wire_request.size());

  if (!server_->alive()) {
    // The TCP stack notices the peer is gone: error or hang → timeout.
    record_latency();
    TraceOutcome(req.request_id, req.kind, "net.server_down");
    return ReadyResult(
        Status::CommError("connection reset by peer (server down)"));
  }
  auto decoded = Request::Decode(wire_request);
  if (!decoded.ok()) return ReadyResult(decoded.status());

  // The per-request fault decision: claimed here, at dispatch time, so two
  // in-flight requests can never both consume (or re-observe) one token.
  bool lose_reply = ClaimFault(&lose_replies_);
  if (lose_reply) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    reg->GetCounter("net.faults.lost_replies")->Increment();
  }

  std::future<Response> server_future = server_->HandleAsync(decoded.take());
  // The response-side wire work is deferred to .get(): the server executes
  // concurrently, the waiter pays decode + latency simulation.
  return std::async(
      std::launch::deferred,
      [this, reg, record_latency, lose_reply, request_id = req.request_id,
       kind = req.kind,
       server_future = std::move(server_future)]() mutable -> Result<Response> {
        Response response = server_future.get();
        if (IsUnexecutedRejection(response)) {
          // The server crashed between our liveness check and the dispatch:
          // its intake rejected the request WITHOUT executing it. This is
          // the connection-dead outcome and it takes precedence over a
          // claimed lose-reply token — reporting kTimeout here would tell
          // the reconnect path "the request may have executed, probe for
          // it" about a request that provably never ran, double-resolving
          // the fault (once as a lost reply, once as the crash). The token
          // stays consumed; the fault it models was preempted by the crash.
          record_latency();
          TraceOutcome(request_id, kind,
                       lose_reply ? "net.fault.lost_reply_preempted_by_crash"
                                  : "net.server_down");
          return Status::CommError(response.error_message);
        }
        std::string wire_response = response.Encode();
        if (lose_reply) {
          // The server executed the request, but the reply never arrives.
          record_latency();
          TraceOutcome(request_id, kind, "net.fault.reply_lost");
          return Status::Timeout("no response from server");
        }
        bytes_received_.fetch_add(wire_response.size(),
                                  std::memory_order_relaxed);
        reg->GetCounter("net.bytes_received")->Increment(wire_response.size());
        SimulateWire(wire_response.size());
        record_latency();
        TraceOutcome(request_id, kind, "net.response");
        return Response::Decode(wire_response);
      });
}

Result<std::vector<Response>> InprocChannel::RoundTripBatch(
    std::vector<Request> requests) {
  if (requests.empty()) return std::vector<Response>{};
  auto* reg = obs::MetricsRegistry::Default();
  round_trips_.fetch_add(1, std::memory_order_relaxed);
  reg->GetCounter("net.round_trips")->Increment();
  reg->GetCounter("net.batches")->Increment();

  for (Request& r : requests) {
    if (r.request_id == 0) r.request_id = next_request_id_.fetch_add(1) + 1;
  }
  uint64_t first_id = requests.front().request_id;
  obs::Tracer::Default()->Emit(
      "net.batch_request", {{"request_id", std::to_string(first_id)},
                            {"count", std::to_string(requests.size())}});

  if (disconnected_.load()) {
    return Status::CommError("connection closed by client");
  }
  if (ClaimFault(&drop_requests_)) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    reg->GetCounter("net.faults.dropped_requests")->Increment();
    return Status::CommError("connection reset (request lost)");
  }
  BatchRequest batch;
  batch.requests = std::move(requests);
  std::string wire_request = batch.Encode();
  bytes_sent_.fetch_add(wire_request.size(), std::memory_order_relaxed);
  reg->GetCounter("net.bytes_sent")->Increment(wire_request.size());
  SimulateWire(wire_request.size());

  if (!server_->alive()) {
    return Status::CommError("connection reset by peer (server down)");
  }
  PHX_ASSIGN_OR_RETURN(BatchRequest decoded, BatchRequest::Decode(wire_request));
  bool lose_reply = ClaimFault(&lose_replies_);
  if (lose_reply) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    reg->GetCounter("net.faults.lost_replies")->Increment();
  }
  BatchResponse response = server_->HandleBatch(decoded);
  // Connection-dead beats reply-lost, exactly as in RoundTripAsync — but
  // only when NO request in the batch executed. A batch that straddled the
  // crash (some executed, then intake closed) must stay kTimeout under a
  // claimed token: those executed requests' fates are genuinely unknown to
  // a client whose reply vanished.
  bool none_executed = !response.responses.empty();
  for (const Response& r : response.responses) {
    if (!IsUnexecutedRejection(r)) none_executed = false;
  }
  if (none_executed) {
    return Status::CommError(response.responses.front().error_message);
  }
  std::string wire_response = response.Encode();
  if (lose_reply) {
    // Every request in the batch executed; the one reply message vanished.
    return Status::Timeout("no response from server");
  }
  bytes_received_.fetch_add(wire_response.size(), std::memory_order_relaxed);
  reg->GetCounter("net.bytes_received")->Increment(wire_response.size());
  SimulateWire(wire_response.size());
  PHX_ASSIGN_OR_RETURN(BatchResponse reply, BatchResponse::Decode(wire_response));
  return std::move(reply.responses);
}

Result<std::unique_ptr<Channel>> Network::Connect(const std::string& name) {
  auto it = servers_.find(name);
  if (it != servers_.end()) {
    return std::unique_ptr<Channel>(
        std::make_unique<InprocChannel>(it->second, config_));
  }
  auto remote = endpoints_.find(name);
  if (remote != endpoints_.end()) {
    return ConnectSocketChannel(remote->second, config_);
  }
  // Raw endpoint strings dial directly without registration, so a server
  // group (PHX_ENDPOINTS) can mix registered DSNs and bare endpoints.
  if (name.rfind("unix:", 0) == 0 || name.rfind("tcp:", 0) == 0) {
    return ConnectSocketChannel(name, config_);
  }
  return Status::NotFound("unknown data source: " + name);
}

}  // namespace phoenix::net
