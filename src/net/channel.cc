#include "net/channel.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace phoenix::net {

void Channel::SimulateWire(size_t bytes) const {
  uint64_t ns = config_.round_trip_latency_us * 1000ull / 2 +
                static_cast<uint64_t>(bytes) * config_.ns_per_byte;
  if (ns == 0) return;
  auto until = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < until) {
    // Busy-wait: keeps simulated latency visible to wall-clock timers
    // without descheduling noise.
  }
}

namespace {

void TraceOutcome(uint64_t request_id, Request::Kind kind, const char* what) {
  obs::Tracer::Default()->Emit(
      what, {{"request_id", std::to_string(request_id)},
             {"kind", RequestKindName(kind)}});
}

}  // namespace

Result<Response> Channel::RoundTrip(const Request& request) {
  auto* reg = obs::MetricsRegistry::Default();
  ++stats_.round_trips;
  reg->GetCounter("net.round_trips")->Increment();
  reg->GetCounter(std::string("net.requests.") + RequestKindName(request.kind))
      ->Increment();

  Request req = request;
  if (req.request_id == 0) req.request_id = ++next_request_id_;
  TraceOutcome(req.request_id, req.kind, "net.request");
  uint64_t start_us = obs::MonotonicNanos() / 1000;
  auto record_latency = [&] {
    reg->GetHistogram("net.request_latency_us")
        ->Record(obs::MonotonicNanos() / 1000 - start_us);
  };

  if (disconnected_) {
    record_latency();
    TraceOutcome(req.request_id, req.kind, "net.client_closed");
    return Status::CommError("connection closed by client");
  }
  if (drop_requests_ > 0) {
    --drop_requests_;
    ++stats_.faults_injected;
    reg->GetCounter("net.faults.dropped_requests")->Increment();
    record_latency();
    TraceOutcome(req.request_id, req.kind, "net.fault.request_dropped");
    return Status::CommError("connection reset (request lost)");
  }
  std::string wire_request = req.Encode();
  stats_.bytes_sent += wire_request.size();
  reg->GetCounter("net.bytes_sent")->Increment(wire_request.size());
  SimulateWire(wire_request.size());

  if (!server_->alive()) {
    // The TCP stack notices the peer is gone: error or hang → timeout.
    record_latency();
    TraceOutcome(req.request_id, req.kind, "net.server_down");
    return Status::CommError("connection reset by peer (server down)");
  }
  PHX_ASSIGN_OR_RETURN(Request decoded, Request::Decode(wire_request));
  Response response = server_->Handle(decoded);
  std::string wire_response = response.Encode();

  if (lose_replies_ > 0) {
    // The server executed the request, but the reply never arrives.
    --lose_replies_;
    ++stats_.faults_injected;
    reg->GetCounter("net.faults.lost_replies")->Increment();
    record_latency();
    TraceOutcome(req.request_id, req.kind, "net.fault.reply_lost");
    return Status::Timeout("no response from server");
  }
  stats_.bytes_received += wire_response.size();
  reg->GetCounter("net.bytes_received")->Increment(wire_response.size());
  SimulateWire(wire_response.size());
  record_latency();
  TraceOutcome(req.request_id, req.kind, "net.response");
  return Response::Decode(wire_response);
}

}  // namespace phoenix::net
