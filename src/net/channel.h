#ifndef PHOENIX_NET_CHANNEL_H_
#define PHOENIX_NET_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/db_server.h"
#include "net/protocol.h"

namespace phoenix::net {

/// Network behavior knobs for a connection.
struct NetworkConfig {
  /// Simulated one-way+return latency added to every round trip, in
  /// microseconds. 0 = off. (In-process transport only — a socket transport
  /// pays real wire latency instead.)
  uint64_t round_trip_latency_us = 0;
  /// Additional per-byte cost, in nanoseconds per byte (both directions).
  uint64_t ns_per_byte = 0;
  /// How latency is simulated. false (default): busy-wait, so wall-clock
  /// timers see it without descheduling noise — right for single-threaded
  /// paper-reproduction benches. true: sleep, so concurrent clients overlap
  /// their wire time instead of fighting for cores — right for multi-client
  /// scaling benches (and the only honest model on few-core machines).
  bool sleep_wire = false;
  /// Socket transport: how long a round trip may wait for its reply before
  /// the caller sees kTimeout ("reply lost" — the connection itself is still
  /// up; EOF/reset surface as kCommError instead, see SocketChannel).
  uint64_t rpc_timeout_ms = 30000;
  /// Socket transport: dial deadline for Network::Connect on a remote
  /// endpoint. Connection refused fails fast regardless.
  uint64_t connect_timeout_ms = 5000;
};

/// Point-in-time traffic counters for one Channel. The same quantities are
/// also aggregated across all channels into the process-wide
/// MetricsRegistry under "net.*" (see DESIGN.md §Observability).
struct ChannelStats {
  uint64_t round_trips = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t faults_injected = 0;  ///< drops + lost replies actually consumed
};

/// One client connection to a DbServer — the transport-neutral interface the
/// driver (and every test) programs against. Two implementations exist:
///
///  - InprocChannel: the historical in-process duplex pipe. Every message
///    still crosses as *serialized bytes* (counts and sizes are faithful),
///    but "the wire" is a function call and "crash" is a method on DbServer.
///  - SocketChannel (socket_transport.h): a real TCP or Unix-domain stream
///    to a server that may live in another process; framing, partial reads,
///    EOF and SIGKILL are all real.
///
/// Thread safety: a Channel may be shared by concurrent callers (that is
/// what RoundTripAsync is for). Traffic counters are atomic, and every
/// fault-injection token is *claimed per request* at dispatch time — a
/// single InjectLoseReplies(1) loses exactly one reply no matter how many
/// round trips are in flight (the pre-claim design double-resolved it).
///
/// Failure semantics (identical across transports — the Phoenix failure
/// detector keys off these codes, see PhoenixDriverManager::IsCrashSignal):
///  - connection dead (server crashed, EOF, refused, reset) → kCommError.
///    The request DID NOT execute, or the connection died before its fate
///    was observable; either way no reply will ever arrive.
///  - reply lost (request may have executed, reply vanished / deadline
///    passed with the connection still up) → kTimeout. The classic
///    lost-reply case Phoenix must disambiguate via its status table.
///  - fault injection can force either outcome for the next n requests.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Sends a request and waits for the reply.
  Result<Response> RoundTrip(const Request& request) {
    return RoundTripAsync(request).get();
  }

  /// Sends a request without waiting: the server executes it while the
  /// caller does other work. The returned future yields the same Result a
  /// synchronous RoundTrip would have.
  virtual std::future<Result<Response>> RoundTripAsync(
      const Request& request) = 0;

  /// Ships `requests` as ONE wire message (BatchRequest framing), lets the
  /// server execute them concurrently (per-session order preserved), and
  /// returns the responses in request order. One round trip, one fault
  /// token: a drop or lost reply hits the whole batch.
  virtual Result<std::vector<Response>> RoundTripBatch(
      std::vector<Request> requests) = 0;

  /// The next `n` round trips fail with kCommError before reaching the
  /// server (request lost).
  void InjectDropRequests(int n) { drop_requests_.store(n); }

  /// The next `n` round trips reach the server and execute, but the reply
  /// is lost; the caller sees kTimeout.
  void InjectLoseReplies(int n) { lose_replies_.store(n); }

  /// Client-side hangup. Subsequent round trips fail with kCommError.
  virtual void Disconnect() { disconnected_.store(true); }
  bool disconnected() const { return disconnected_.load(); }

  /// In-process transport only: the server behind this channel (tests use
  /// it to crash/restart the peer). nullptr over a socket — the peer is a
  /// different process; kill it via ProcessServerHandle instead.
  virtual DbServer* server() { return nullptr; }

  /// Snapshot of this channel's traffic counters.
  ChannelStats stats() const;

 protected:
  /// Atomically consumes one token from `counter` if any remain — the
  /// per-request fault decision.
  static bool ClaimFault(std::atomic<int>* counter);

  std::atomic<bool> disconnected_{false};
  std::atomic<int> drop_requests_{0};
  std::atomic<int> lose_replies_{0};
  std::atomic<uint64_t> next_request_id_{0};
  std::atomic<uint64_t> round_trips_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> faults_injected_{0};
};

/// The in-process transport: requests are serialized, "sent" by function
/// call into the co-resident DbServer's dispatcher, and the reply bytes
/// decoded on the way back. Latency is simulated per NetworkConfig.
class InprocChannel final : public Channel {
 public:
  InprocChannel(DbServer* server, NetworkConfig config)
      : server_(server), config_(config) {}

  std::future<Result<Response>> RoundTripAsync(const Request& request) override;
  Result<std::vector<Response>> RoundTripBatch(
      std::vector<Request> requests) override;
  DbServer* server() override { return server_; }

 private:
  void SimulateWire(size_t bytes) const;

  DbServer* server_;
  NetworkConfig config_;
};

/// Name→server directory, the moral equivalent of DNS + the ODBC DSN list.
/// Drivers resolve a data-source name here and open Channels. A name maps
/// either to an in-process DbServer (RegisterServer) or to a remote socket
/// endpoint string (RegisterRemote, "tcp:host:port" or "unix:/path") —
/// callers cannot tell which transport they got, which is the point. A
/// bare "tcp:..."/"unix:..." name that is not registered dials the
/// endpoint directly, so failover server groups need no registration step.
class Network {
 public:
  void RegisterServer(const std::string& name, DbServer* server) {
    servers_[name] = server;
  }

  /// Maps `name` to a socket endpoint. Connect() dials it fresh every time
  /// (a reconnect after server death must get a new TCP connection, not a
  /// cached dead one). Re-registering overwrites — chaos uses that when a
  /// reborn server comes up on the same address.
  void RegisterRemote(const std::string& name, const std::string& endpoint) {
    endpoints_[name] = endpoint;
  }

  Result<std::unique_ptr<Channel>> Connect(const std::string& name);

  /// In-process registrations only; a remote endpoint's server lives in
  /// another process and is reported NotFound here.
  Result<DbServer*> Lookup(const std::string& name) {
    auto it = servers_.find(name);
    if (it == servers_.end()) {
      return Status::NotFound("unknown data source: " + name);
    }
    return it->second;
  }

  NetworkConfig* config() { return &config_; }

 private:
  std::map<std::string, DbServer*> servers_;
  std::map<std::string, std::string> endpoints_;
  NetworkConfig config_;
};

}  // namespace phoenix::net

#endif  // PHOENIX_NET_CHANNEL_H_
