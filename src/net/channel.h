#ifndef PHOENIX_NET_CHANNEL_H_
#define PHOENIX_NET_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/db_server.h"
#include "net/protocol.h"

namespace phoenix::net {

/// Network behavior knobs for a connection.
struct NetworkConfig {
  /// Simulated one-way+return latency added to every round trip, in
  /// microseconds. 0 = off.
  uint64_t round_trip_latency_us = 0;
  /// Additional per-byte cost, in nanoseconds per byte (both directions).
  uint64_t ns_per_byte = 0;
  /// How latency is simulated. false (default): busy-wait, so wall-clock
  /// timers see it without descheduling noise — right for single-threaded
  /// paper-reproduction benches. true: sleep, so concurrent clients overlap
  /// their wire time instead of fighting for cores — right for multi-client
  /// scaling benches (and the only honest model on few-core machines).
  bool sleep_wire = false;
};

/// Point-in-time traffic counters for one Channel. The same quantities are
/// also aggregated across all channels into the process-wide
/// MetricsRegistry under "net.*" (see DESIGN.md §Observability).
struct ChannelStats {
  uint64_t round_trips = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t faults_injected = 0;  ///< drops + lost replies actually consumed
};

/// One client connection to a DbServer. Every request/response crosses this
/// boundary as *serialized bytes* — the in-process shortcut never leaks
/// object references — so message counts and sizes are faithful.
///
/// Thread safety: a Channel may be shared by concurrent callers (that is
/// what RoundTripAsync is for). Traffic counters are atomic, and every
/// fault-injection token is *claimed per request* at dispatch time — a
/// single InjectLoseReplies(1) loses exactly one reply no matter how many
/// round trips are in flight (the pre-claim design double-resolved it).
///
/// Failure semantics:
///  - server crashed / not yet restarted → kCommError
///  - fault injection can force the next request to kCommError or kTimeout
///    (a request the server executed but whose reply was lost is the classic
///    lost-reply case Phoenix must handle)
class Channel {
 public:
  Channel(DbServer* server, NetworkConfig config)
      : server_(server), config_(config) {}

  /// Sends a request and waits for the reply.
  Result<Response> RoundTrip(const Request& request);

  /// Sends a request without waiting: the server executes it on its worker
  /// pool while the caller does other work. The returned future yields the
  /// same Result a synchronous RoundTrip would have (the response-side wire
  /// cost is paid by whoever calls .get()).
  std::future<Result<Response>> RoundTripAsync(const Request& request);

  /// Ships `requests` as ONE wire message (BatchRequest framing), lets the
  /// server execute them concurrently (per-session order preserved), and
  /// returns the responses in request order. One round trip, one fault
  /// token: a drop or lost reply hits the whole batch.
  Result<std::vector<Response>> RoundTripBatch(std::vector<Request> requests);

  /// The next `n` round trips fail with kCommError before reaching the
  /// server (request lost).
  void InjectDropRequests(int n) { drop_requests_.store(n); }

  /// The next `n` round trips reach the server and execute, but the reply
  /// is lost; the caller sees kTimeout.
  void InjectLoseReplies(int n) { lose_replies_.store(n); }

  /// Client-side hangup. Subsequent round trips fail with kCommError.
  void Disconnect() { disconnected_.store(true); }
  bool disconnected() const { return disconnected_.load(); }

  DbServer* server() { return server_; }

  /// Snapshot of this channel's traffic counters.
  ChannelStats stats() const;

 private:
  void SimulateWire(size_t bytes) const;
  /// Atomically consumes one token from `counter` if any remain — the
  /// per-request fault decision.
  static bool ClaimFault(std::atomic<int>* counter);

  DbServer* server_;
  NetworkConfig config_;
  std::atomic<bool> disconnected_{false};
  std::atomic<int> drop_requests_{0};
  std::atomic<int> lose_replies_{0};
  std::atomic<uint64_t> next_request_id_{0};
  std::atomic<uint64_t> round_trips_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
  std::atomic<uint64_t> faults_injected_{0};
};

/// Name→server directory, the moral equivalent of DNS + the ODBC DSN list.
/// Drivers resolve a data-source name here and open Channels.
class Network {
 public:
  void RegisterServer(const std::string& name, DbServer* server) {
    servers_[name] = server;
  }

  Result<std::unique_ptr<Channel>> Connect(const std::string& name) {
    auto it = servers_.find(name);
    if (it == servers_.end()) {
      return Status::NotFound("unknown data source: " + name);
    }
    return std::make_unique<Channel>(it->second, config_);
  }

  Result<DbServer*> Lookup(const std::string& name) {
    auto it = servers_.find(name);
    if (it == servers_.end()) {
      return Status::NotFound("unknown data source: " + name);
    }
    return it->second;
  }

  NetworkConfig* config() { return &config_; }

 private:
  std::map<std::string, DbServer*> servers_;
  NetworkConfig config_;
};

}  // namespace phoenix::net

#endif  // PHOENIX_NET_CHANNEL_H_
