#ifndef PHOENIX_NET_CHANNEL_H_
#define PHOENIX_NET_CHANNEL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/db_server.h"
#include "net/protocol.h"

namespace phoenix::net {

/// Network behavior knobs for a connection.
struct NetworkConfig {
  /// Simulated one-way+return latency added to every round trip, in
  /// microseconds (busy-wait so wall-clock measurements see it). 0 = off.
  uint64_t round_trip_latency_us = 0;
  /// Additional per-byte cost, in nanoseconds per byte (both directions).
  uint64_t ns_per_byte = 0;
};

/// Point-in-time traffic counters for one Channel. The same quantities are
/// also aggregated across all channels into the process-wide
/// MetricsRegistry under "net.*" (see DESIGN.md §Observability).
struct ChannelStats {
  uint64_t round_trips = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t faults_injected = 0;  ///< drops + lost replies actually consumed
};

/// One client connection to a DbServer. Every request/response crosses this
/// boundary as *serialized bytes* — the in-process shortcut never leaks
/// object references — so message counts and sizes are faithful.
///
/// Failure semantics:
///  - server crashed / not yet restarted → kCommError
///  - fault injection can force the next request to kCommError or kTimeout
///    (a request the server executed but whose reply was lost is the classic
///    lost-reply case Phoenix must handle)
class Channel {
 public:
  Channel(DbServer* server, NetworkConfig config)
      : server_(server), config_(config) {}

  /// Sends a request and waits for the reply.
  Result<Response> RoundTrip(const Request& request);

  /// The next `n` round trips fail with kCommError before reaching the
  /// server (request lost).
  void InjectDropRequests(int n) { drop_requests_ = n; }

  /// The next `n` round trips reach the server and execute, but the reply
  /// is lost; the caller sees kTimeout.
  void InjectLoseReplies(int n) { lose_replies_ = n; }

  /// Client-side hangup. Subsequent round trips fail with kCommError.
  void Disconnect() { disconnected_ = true; }
  bool disconnected() const { return disconnected_; }

  DbServer* server() { return server_; }

  /// Snapshot of this channel's traffic counters.
  ChannelStats stats() const { return stats_; }

  /// Deprecated accessors — prefer stats(). Kept as thin forwarders so
  /// pre-redesign callers compile unchanged.
  uint64_t round_trips() const { return stats_.round_trips; }
  uint64_t bytes_sent() const { return stats_.bytes_sent; }
  uint64_t bytes_received() const { return stats_.bytes_received; }

 private:
  void SimulateWire(size_t bytes) const;

  DbServer* server_;
  NetworkConfig config_;
  bool disconnected_ = false;
  int drop_requests_ = 0;
  int lose_replies_ = 0;
  uint64_t next_request_id_ = 0;
  ChannelStats stats_;
};

/// Name→server directory, the moral equivalent of DNS + the ODBC DSN list.
/// Drivers resolve a data-source name here and open Channels.
class Network {
 public:
  void RegisterServer(const std::string& name, DbServer* server) {
    servers_[name] = server;
  }

  Result<std::unique_ptr<Channel>> Connect(const std::string& name) {
    auto it = servers_.find(name);
    if (it == servers_.end()) {
      return Status::NotFound("unknown data source: " + name);
    }
    return std::make_unique<Channel>(it->second, config_);
  }

  Result<DbServer*> Lookup(const std::string& name) {
    auto it = servers_.find(name);
    if (it == servers_.end()) {
      return Status::NotFound("unknown data source: " + name);
    }
    return it->second;
  }

  NetworkConfig* config() { return &config_; }

 private:
  std::map<std::string, DbServer*> servers_;
  NetworkConfig config_;
};

}  // namespace phoenix::net

#endif  // PHOENIX_NET_CHANNEL_H_
