#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

namespace phoenix::obs {

Histogram::Histogram(std::vector<uint64_t> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = LatencyBoundsUs();
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
}

std::vector<uint64_t> Histogram::LatencyBoundsUs() {
  return {1,    2,    5,    10,    20,    50,    100,     200,     500,
          1000, 2000, 5000, 10000, 20000, 50000, 100000,  200000,  500000,
          1000000, 2000000, 5000000, 10000000};
}

void Histogram::Record(uint64_t value) {
  size_t i = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
             bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::CumulativeCounts() const {
  std::vector<uint64_t> out(bounds_.size());
  uint64_t running = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    out[i] = running;
  }
  return out;
}

double Histogram::Mean() const {
  uint64_t n = Count();
  return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
}

uint64_t Histogram::QuantileBound(double q) const {
  uint64_t n = Count();
  if (n == 0 || bounds_.empty()) return 0;
  q = std::min(1.0, std::max(0.0, q));
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(n));
  if (target == 0) target = 1;
  uint64_t running = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    if (running >= target) return bounds_[i];
  }
  return bounds_.back();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = h->bounds();
    data.cumulative = h->CumulativeCounts();
    data.count = h->Count();
    data.sum = h->Sum();
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

namespace {

/// Metric names are dotted identifiers, but escape defensively anyway.
std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string MetricsRegistry::ExportText() const {
  MetricsSnapshot snap = Snapshot();
  std::ostringstream out;
  for (const auto& [name, v] : snap.counters) out << name << " " << v << "\n";
  for (const auto& [name, v] : snap.gauges) out << name << " " << v << "\n";
  for (const auto& [name, h] : snap.histograms) {
    out << name << " count=" << h.count << " sum=" << h.sum;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (h.cumulative[i] == 0) continue;
      out << " le" << h.bounds[i] << "=" << h.cumulative[i];
    }
    out << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::ExportJson() const {
  MetricsSnapshot snap = Snapshot();
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":" << v;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":" << v;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out << ",";
    first = false;
    out << JsonString(name) << ":{\"count\":" << h.count << ",\"sum\":" << h.sum
        << ",\"buckets\":[";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out << ",";
      out << "{\"le\":" << h.bounds[i] << ",\"count\":" << h.cumulative[i]
          << "}";
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace phoenix::obs
