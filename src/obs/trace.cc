#include "obs/trace.h"

#include <chrono>
#include <sstream>

namespace phoenix::obs {

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const std::string& TraceEvent::Get(const std::string& key) const {
  static const std::string kEmpty;
  for (const auto& [k, v] : kv) {
    if (k == key) return v;
  }
  return kEmpty;
}

Tracer::Tracer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void Tracer::Emit(std::string name,
                  std::vector<std::pair<std::string, std::string>> kv) {
  TraceEvent ev;
  ev.ts_ns = MonotonicNanos();
  ev.name = std::move(name);
  ev.kv = std::move(kv);

  std::lock_guard<std::mutex> lock(mu_);
  ev.seq = next_seq_++;
  if (size_ < capacity_) {
    ring_[(start_ + size_) % capacity_] = std::move(ev);
    ++size_;
  } else {
    ring_[start_] = std::move(ev);
    start_ = (start_ + 1) % capacity_;
    ++dropped_;
  }
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start_ + i) % capacity_]);
  }
  return out;
}

std::vector<TraceEvent> Tracer::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(std::move(ring_[(start_ + i) % capacity_]));
  }
  start_ = 0;
  size_ = 0;
  return out;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t Tracer::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  start_ = 0;
  size_ = 0;
}

namespace {

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string Tracer::ExportJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    if (i) out << ",";
    out << "{\"seq\":" << ev.seq << ",\"ts_ns\":" << ev.ts_ns
        << ",\"name\":" << JsonString(ev.name) << ",\"kv\":{";
    for (size_t j = 0; j < ev.kv.size(); ++j) {
      if (j) out << ",";
      out << JsonString(ev.kv[j].first) << ":" << JsonString(ev.kv[j].second);
    }
    out << "}}";
  }
  out << "]";
  return out.str();
}

Tracer* Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return tracer;
}

}  // namespace phoenix::obs
