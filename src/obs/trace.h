#ifndef PHOENIX_OBS_TRACE_H_
#define PHOENIX_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace phoenix::obs {

/// One structured trace event: a name, a monotonic timestamp, and a small
/// bag of key/value pairs ("request_id"=17, "kind"="kFetch", ...). Events
/// are cheap enough to emit on every network round trip; correlation keys
/// like request_id make retry/lost-reply sequences in the chaos tests
/// reconstructable after the fact.
struct TraceEvent {
  uint64_t seq = 0;    ///< global emission order, never reused
  uint64_t ts_ns = 0;  ///< monotonic (steady_clock) nanoseconds
  std::string name;
  std::vector<std::pair<std::string, std::string>> kv;

  /// Value for `key`, or "" when absent.
  const std::string& Get(const std::string& key) const;
};

/// Bounded ring buffer of TraceEvents. When full, the oldest event is
/// overwritten and `dropped()` is bumped — tracing must never block or
/// grow without bound under heavy traffic. A mutex (not atomics) guards
/// the ring: events carry strings, and emission rate is per-round-trip,
/// not per-row, so contention is negligible.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit Tracer(size_t capacity = kDefaultCapacity);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Emit(std::string name,
            std::vector<std::pair<std::string, std::string>> kv = {});

  /// Events currently in the ring, oldest first.
  std::vector<TraceEvent> Snapshot() const;
  /// Snapshot + clear (dropped count is kept).
  std::vector<TraceEvent> Drain();

  size_t capacity() const { return capacity_; }
  size_t size() const;
  /// Events overwritten because the ring was full.
  uint64_t dropped() const;
  /// Total events ever emitted (== next seq).
  uint64_t emitted() const;

  void Clear();

  /// [{"seq":..,"ts_ns":..,"name":"..","kv":{..}}, ...], oldest first.
  std::string ExportJson() const;

  /// Process-wide tracer used by the instrumented subsystems.
  static Tracer* Default();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  ///< ring_[ (start_ + i) % capacity_ ]
  size_t start_ = 0;
  size_t size_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t dropped_ = 0;
};

/// Monotonic nanoseconds since an arbitrary process-local epoch.
uint64_t MonotonicNanos();

}  // namespace phoenix::obs

#endif  // PHOENIX_OBS_TRACE_H_
