#ifndef PHOENIX_OBS_METRICS_H_
#define PHOENIX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace phoenix::obs {

/// Lightweight, thread-safe metrics for the whole stack. Design goals, in
/// order: (1) negligible hot-path cost — one relaxed atomic RMW per update,
/// no locks, no allocation; (2) stable pointers — a Counter* obtained from a
/// registry stays valid for the registry's lifetime, so call sites cache it;
/// (3) human- and machine-readable snapshots (plain text and JSON) that the
/// benches dump next to their timing output.
///
/// Canonical metric names are dotted paths, "<subsystem>.<noun>[.<detail>]"
/// (e.g. "storage.wal.syncs", "net.bytes_sent"). DESIGN.md lists the full
/// set per subsystem.

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (open cursors, live sessions, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket counts the rest. Bounds are fixed at creation,
/// so recording is a binary search plus one relaxed increment — safe and
/// cheap under concurrent writers.
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> bounds);

  /// Default bounds for latencies in microseconds: 1,2,5 decades up to 10s.
  static std::vector<uint64_t> LatencyBoundsUs();

  void Record(uint64_t value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  /// Cumulative count of observations <= bounds[i] (last entry == Count()).
  std::vector<uint64_t> CumulativeCounts() const;
  double Mean() const;
  /// Upper bound of the bucket containing quantile q in [0,1]; the largest
  /// finite bound when q lands in the overflow bucket.
  uint64_t QuantileBound(double q) const;
  /// Zeroes all buckets; bounds are kept.
  void Reset();

 private:
  std::vector<uint64_t> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Point-in-time copy of every metric in a registry, detached from the
/// live atomics so callers can diff, print, or serialize at leisure.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<uint64_t> bounds;
    std::vector<uint64_t> cumulative;  ///< same length as bounds
    uint64_t count = 0;
    uint64_t sum = 0;
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  /// Counter value by name (0 when absent) — snapshot-diff convenience.
  uint64_t counter(const std::string& name) const;
};

/// Named metric directory. Get*() registers on first use and returns a
/// stable pointer; concurrent Get*() and updates are safe. One process-wide
/// Default() registry aggregates across components; tests that need
/// isolation construct their own and pass it down.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Bounds apply only on first registration of `name`.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<uint64_t> bounds = {});

  MetricsSnapshot Snapshot() const;
  /// "name value" lines, sorted by name; histograms as count/sum/buckets.
  std::string ExportText() const;
  /// {"counters":{...},"gauges":{...},"histograms":{...}} — the canonical
  /// snapshot format documented in DESIGN.md §Observability.
  std::string ExportJson() const;

  /// Zeroes every registered metric (histogram bucket shapes are kept).
  void Reset();

  /// The process-wide registry every subsystem reports into by default.
  static MetricsRegistry* Default();

 private:
  mutable std::mutex mu_;  ///< guards the maps, never the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace phoenix::obs

#endif  // PHOENIX_OBS_METRICS_H_
