// phoenixd — the Phoenix database server as a real OS process.
//
// The in-process DbServer + SocketServer, wired to a backing-directory
// SimDisk so durable bytes live in real files and everything else dies with
// the process. This is the half of the transport story a SIGKILL can reach:
// tests spawn phoenixd via ProcessServerHandle, drive it over TCP or a
// Unix-domain socket, and kill it at armed rendezvous points (mid-fsync,
// mid-checkpoint-rename, mid-request) to verify that Phoenix virtual
// sessions survive genuine process death.
//
// Quickstart:
//   phoenixd --data-dir=/tmp/phx --listen=tcp:127.0.0.1:5432
//   phoenixd --data-dir=/tmp/phx --listen=unix:/tmp/phx/phoenixd.sock
//
// Environment (flags win over env; both optional unless noted):
//   PHX_DATA_DIR        durable state directory (REQUIRED; created if absent)
//   PHX_LISTEN          endpoint (default unix:<data_dir>/phoenixd.sock)
//   PHX_CKPT_EVERY      auto-checkpoint cadence in commits (default 0)
//   PHX_WORKERS         dispatcher worker threads (default 4)
//   PHX_NOTIFY_FD       fd to write "READY <endpoint>\n" to once serving
//   PHX_RENDEZVOUS_FD   fd to signal armed rendezvous points on
//   PHX_RENDEZVOUS      rendezvous spec armed from birth (see
//                       net/process_server.h kAdminRendezvous)
//   PHX_RENDEZVOUS_TIMEOUT_MS  failsafe: how long a fired rendezvous blocks
//                       waiting for the parent's SIGKILL before _exit(43)
//   plus the standard PHX_* engine knobs (PHX_GROUP_COMMIT, PHX_CKPT_BG, …)
//
// The boot counter: every boot reads <data_dir>/phxd.boot, increments it
// durably, and hands out session ids from (boot#<<32). A process has no
// memory of its predecessors, so without this a reborn server would reissue
// low session ids and a stale client session could alias a live one —
// silently defeating the crash detection the whole paper depends on.

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>

#include "net/db_server.h"
#include "net/process_server.h"
#include "net/socket_transport.h"
#include "storage/sim_disk.h"

namespace phoenix::server {
namespace {

int g_signal_pipe[2] = {-1, -1};

void OnTermSignal(int) {
  char byte = 't';
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* e = std::getenv(name);
  if (e == nullptr || e[0] == '\0') return fallback;
  return std::strtoull(e, nullptr, 10);
}

std::string EnvStr(const char* name, const std::string& fallback = "") {
  const char* e = std::getenv(name);
  return (e == nullptr) ? fallback : std::string(e);
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Parsed form of the kAdminRendezvous spec "<point>:<n>[:<keep_permille>]".
struct RendezvousSpec {
  enum class Point { kNone, kWalSync, kCkptPre, kCkptPost, kExec, kRecovery };
  Point point = Point::kNone;
  uint64_t n = 1;
  uint64_t keep_permille = 1000;
};

Result<RendezvousSpec> ParseRendezvous(const std::string& value) {
  RendezvousSpec spec;
  size_t c1 = value.find(':');
  std::string point = value.substr(0, c1);
  if (point == "wal_sync") {
    spec.point = RendezvousSpec::Point::kWalSync;
  } else if (point == "ckpt_pre") {
    spec.point = RendezvousSpec::Point::kCkptPre;
  } else if (point == "ckpt_post") {
    spec.point = RendezvousSpec::Point::kCkptPost;
  } else if (point == "exec") {
    spec.point = RendezvousSpec::Point::kExec;
  } else if (point == "recovery") {
    spec.point = RendezvousSpec::Point::kRecovery;
  } else {
    return Status::InvalidArgument("bad rendezvous point: " + value);
  }
  if (c1 != std::string::npos) {
    size_t c2 = value.find(':', c1 + 1);
    spec.n = std::strtoull(value.c_str() + c1 + 1, nullptr, 10);
    if (spec.n == 0) spec.n = 1;
    if (c2 != std::string::npos) {
      spec.keep_permille = std::strtoull(value.c_str() + c2 + 1, nullptr, 10);
      if (spec.keep_permille > 1000) spec.keep_permille = 1000;
    }
  }
  return spec;
}

/// The child half of the SIGKILL rendezvous protocol: hooks into the
/// durability boundary (DiskHooks) and the dispatcher (pre_dispatch_hook),
/// counts matching events, and at the armed one signals the parent over
/// PHX_RENDEZVOUS_FD and parks the calling thread — mid-fsync, mid-rename,
/// or mid-request — until the SIGKILL lands. A failsafe _exit(43) bounds
/// the park in case the parent lost interest.
class RendezvousController {
 public:
  RendezvousController(int signal_fd, uint64_t failsafe_ms)
      : signal_fd_(signal_fd), failsafe_ms_(failsafe_ms) {}

  Status Arm(const std::string& value) {
    auto spec = ParseRendezvous(value);
    if (!spec.ok()) return spec.status();
    std::lock_guard<std::mutex> lk(mu_);
    spec_ = spec.value();
    remaining_ = spec_.n;
    return Status::Ok();
  }

  size_t OnPreSync(const std::string& file, uint64_t /*ordinal*/,
                   size_t tail_bytes) {
    std::lock_guard<std::mutex> lk(mu_);
    if (spec_.point != RendezvousSpec::Point::kWalSync ||
        !HasSuffix(file, ".wal")) {
      return tail_bytes;
    }
    if (--remaining_ > 0) return tail_bytes;
    // This is the armed sync: possibly tear the write, and tell OnMidSync
    // (same thread, moments later, after the torn bytes are on the device)
    // to fire.
    fire_on_mid_sync_ = true;
    return static_cast<size_t>(
        static_cast<unsigned long long>(tail_bytes) * spec_.keep_permille /
        1000);
  }

  void OnMidSync(const std::string& /*file*/, uint64_t /*ordinal*/) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!fire_on_mid_sync_) return;
      fire_on_mid_sync_ = false;
      spec_ = RendezvousSpec{};
    }
    FireAndPark("wal_sync");
  }

  void OnMidAtomic(const std::string& file, int stage) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      bool pre = spec_.point == RendezvousSpec::Point::kCkptPre && stage == 0;
      bool post = spec_.point == RendezvousSpec::Point::kCkptPost && stage == 1;
      if ((!pre && !post) || !HasSuffix(file, ".ckpt")) return;
      if (--remaining_ > 0) return;
      spec_ = RendezvousSpec{};
    }
    FireAndPark(stage == 0 ? "ckpt_pre" : "ckpt_post");
  }

  /// WAL replay progress during Database::Open (the "recovery" point):
  /// events come from the recovery scan thread per replayed record and —
  /// under PHX_RECOVERY_THREADS > 1 — from the replay pool workers while
  /// partitions apply, so the armed kill can land mid-parallel-replay.
  /// Parking whichever thread got here holds the whole recovery (the scan
  /// or a partition stops making progress) until the SIGKILL lands.
  void OnReplay(uint64_t /*ordinal*/) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (spec_.point != RendezvousSpec::Point::kRecovery) return;
      if (--remaining_ > 0) return;
      spec_ = RendezvousSpec{};
    }
    FireAndPark("recovery");
  }

  void OnPreDispatch(const net::Request& request) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (spec_.point != RendezvousSpec::Point::kExec ||
          request.kind != net::Request::Kind::kExecScript) {
        return;
      }
      if (--remaining_ > 0) return;
      spec_ = RendezvousSpec{};
    }
    FireAndPark("exec");
  }

 private:
  void FireAndPark(const char* what) {
    std::fprintf(stderr, "phoenixd: rendezvous '%s' fired, awaiting kill\n",
                 what);
    if (signal_fd_ >= 0) {
      char byte = 'R';
      [[maybe_unused]] ssize_t n = ::write(signal_fd_, &byte, 1);
    }
    // Park until the parent's SIGKILL. If it never comes, die anyway: a
    // rendezvous that fired but left the server running would turn a
    // planned crash into a silent hang.
    std::this_thread::sleep_for(std::chrono::milliseconds(failsafe_ms_));
    std::_Exit(43);
  }

  int signal_fd_;
  uint64_t failsafe_ms_;
  std::mutex mu_;
  RendezvousSpec spec_;
  uint64_t remaining_ = 0;
  bool fire_on_mid_sync_ = false;
};

int Main(int argc, char** argv) {
  std::string data_dir = EnvStr("PHX_DATA_DIR");
  std::string listen = EnvStr("PHX_LISTEN");
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--data-dir=", 0) == 0) {
      data_dir = arg.substr(11);
    } else if (arg.rfind("--listen=", 0) == 0) {
      listen = arg.substr(9);
    } else {
      std::fprintf(stderr,
                   "usage: phoenixd --data-dir=DIR "
                   "[--listen=tcp:HOST:PORT|unix:PATH]\n");
      return 2;
    }
  }
  if (data_dir.empty()) {
    std::fprintf(stderr, "phoenixd: --data-dir (or PHX_DATA_DIR) required\n");
    return 2;
  }
  ::mkdir(data_dir.c_str(), 0755);  // EEXIST is fine
  if (listen.empty()) listen = "unix:" + data_dir + "/phoenixd.sock";

  storage::SimDisk disk(data_dir);

  // Server identity within a failover group. Servers sharing a data dir
  // keep separate boot counters, and the id lands in the session-id high
  // byte, so no two group members can ever mint the same session/txn id.
  uint64_t server_id = EnvU64("PHX_SERVER_ID", 0);
  if (server_id > 0xFF) {
    std::fprintf(stderr, "phoenixd: PHX_SERVER_ID must be <= 255\n");
    return 2;
  }
  std::string boot_file =
      server_id == 0 ? "phxd.boot" : "phxd.boot." + std::to_string(server_id);

  // Durable boot counter → session-id partition + monotonic server epoch.
  uint64_t boot = 1;
  auto prev = disk.ReadDurable(boot_file);
  if (prev.ok()) boot = std::strtoull(prev.value().c_str(), nullptr, 10) + 1;
  Status persisted = disk.WriteAtomic(boot_file, std::to_string(boot));
  if (!persisted.ok()) {
    std::fprintf(stderr, "phoenixd: cannot persist boot counter: %s\n",
                 persisted.message().c_str());
    return 1;
  }

  int rendezvous_fd = static_cast<int>(EnvU64("PHX_RENDEZVOUS_FD", 0));
  if (rendezvous_fd == 0) rendezvous_fd = -1;
  RendezvousController rendezvous(
      rendezvous_fd, EnvU64("PHX_RENDEZVOUS_TIMEOUT_MS", 30000));
  std::string initial_spec = EnvStr("PHX_RENDEZVOUS");
  if (!initial_spec.empty()) {
    Status s = rendezvous.Arm(initial_spec);
    if (!s.ok()) {
      std::fprintf(stderr, "phoenixd: bad PHX_RENDEZVOUS: %s\n",
                   s.message().c_str());
      return 2;
    }
  }
  // Hooks installed BEFORE the server boots: recovery-time syncs also count
  // (that is how a schedule can kill the second incarnation mid-recovery).
  storage::DiskHooks hooks;
  hooks.pre_sync = [&rendezvous](const std::string& file, uint64_t ordinal,
                                 size_t tail_bytes) {
    return rendezvous.OnPreSync(file, ordinal, tail_bytes);
  };
  hooks.mid_sync = [&rendezvous](const std::string& file, uint64_t ordinal) {
    rendezvous.OnMidSync(file, ordinal);
  };
  hooks.mid_atomic = [&rendezvous](const std::string& file, int stage) {
    rendezvous.OnMidAtomic(file, stage);
  };
  disk.set_hooks(std::move(hooks));

  net::ServerOptions opts;
  opts.db.checkpoint_every_n_commits = EnvU64("PHX_CKPT_EVERY", 0);
  opts.worker_threads = static_cast<size_t>(EnvU64("PHX_WORKERS", 4));
  // Session-id partition, server-aware: high byte = group member id, next
  // 24 bits = that member's boot count. Two servers over one data dir can
  // never collide, and within one server every boot stays disjoint (the
  // single-server id 0 layout reduces to the historical boot << 32).
  opts.first_session_id = (server_id << 56) | ((boot & 0xFFFFFF) << 32);
  opts.initial_epoch = boot - 1;  // Start() increments: epoch == boot count
  opts.admin_hook = [&rendezvous](const std::string& name,
                                  const std::string& value) -> Status {
    if (name == net::kAdminRendezvous) return rendezvous.Arm(value);
    return Status::InvalidArgument("unknown admin command: " + name);
  };
  opts.pre_dispatch_hook = [&rendezvous](const net::Request& request) {
    rendezvous.OnPreDispatch(request);
  };
  // The "recovery" rendezvous point: fires inside Database::Open's WAL
  // replay, before the server ever reports READY.
  opts.db.recovery_replay_hook = [&rendezvous](uint64_t ordinal) {
    rendezvous.OnReplay(ordinal);
  };

  net::DbServer db_server(&disk, opts);
  Status started = db_server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "phoenixd: recovery failed: %s\n",
                 started.message().c_str());
    return 1;
  }

  net::SocketServer socket_server(&db_server);
  Status listening = socket_server.Start(listen);
  if (!listening.ok()) {
    std::fprintf(stderr, "phoenixd: cannot listen on %s: %s\n", listen.c_str(),
                 listening.message().c_str());
    return 1;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "phoenixd: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnTermSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  // Readiness: the parent (ProcessServerHandle, or a human's shell script)
  // learns the resolved endpoint — for tcp:...:0 this is the only way to
  // discover the kernel-assigned port without a race.
  std::string ready = "READY " + socket_server.endpoint() + "\n";
  int notify_fd = static_cast<int>(EnvU64("PHX_NOTIFY_FD", 0));
  if (notify_fd > 0) {
    [[maybe_unused]] ssize_t n =
        ::write(notify_fd, ready.data(), ready.size());
    ::close(notify_fd);
  }
  std::fprintf(stderr, "phoenixd: serving %s (boot %llu, data %s)\n",
               socket_server.endpoint().c_str(),
               static_cast<unsigned long long>(boot), data_dir.c_str());

  // Park until SIGTERM/SIGINT (SIGKILL never gets here — that is the point).
  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "phoenixd: shutting down\n");
  socket_server.Shutdown();
  return 0;
}

}  // namespace
}  // namespace phoenix::server

int main(int argc, char** argv) { return phoenix::server::Main(argc, argv); }
