#ifndef PHOENIX_SQL_LEXER_H_
#define PHOENIX_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace phoenix::sql {

/// Tokenizes a SQL string. Handles '--' line comments, '/* */' block
/// comments, '' escaping inside string literals, and multi-char operators
/// (<=, >=, <>, !=).
Result<std::vector<Token>> Lex(const std::string& text);

}  // namespace phoenix::sql

#endif  // PHOENIX_SQL_LEXER_H_
