#ifndef PHOENIX_SQL_AST_H_
#define PHOENIX_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/value.h"

namespace phoenix::sql {

enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,
  kStar,      ///< '*' — only valid as a select item or COUNT(*) argument
  kUnary,
  kBinary,
  kFunction,  ///< scalar or aggregate call, resolved by the executor
  kBetween,   ///< left BETWEEN right AND extra
  kInList,    ///< left IN (args...)
  kIsNull,    ///< left IS [NOT] NULL
  kParam,     ///< @name — stored-procedure parameter / host variable
  kCase,      ///< CASE [left] WHEN args[2i] THEN args[2i+1] ... [ELSE extra] END
};

enum class UnOp : uint8_t { kNeg, kNot };

enum class BinOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kLike, kNotLike,
};

const char* BinOpSql(BinOp op);

/// One expression node. A single struct with per-kind fields keeps the AST
/// compact and makes Clone()/ToSql() exhaustive in one place.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  Value literal;                                   // kLiteral
  std::string table_qualifier;                     // kColumnRef (may be "")
  std::string column;                              // kColumnRef
  UnOp un_op = UnOp::kNeg;                         // kUnary
  BinOp bin_op = BinOp::kAdd;                      // kBinary
  std::unique_ptr<Expr> left;                      // unary child / lhs
  std::unique_ptr<Expr> right;                     // rhs / BETWEEN low
  std::unique_ptr<Expr> extra;                     // BETWEEN high
  std::string func_name;                           // kFunction (uppercased)
  bool distinct = false;                           // COUNT(DISTINCT x)
  std::vector<std::unique_ptr<Expr>> args;         // kFunction / kInList
  bool negated = false;                            // NOT IN / IS NOT NULL / NOT BETWEEN
  std::string param_name;                          // kParam

  static std::unique_ptr<Expr> Lit(Value v);
  static std::unique_ptr<Expr> Col(std::string qualifier, std::string column);
  static std::unique_ptr<Expr> Star();
  static std::unique_ptr<Expr> Unary(UnOp op, std::unique_ptr<Expr> child);
  static std::unique_ptr<Expr> Binary(BinOp op, std::unique_ptr<Expr> l,
                                      std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> Func(std::string name,
                                    std::vector<std::unique_ptr<Expr>> args);
  static std::unique_ptr<Expr> Param(std::string name);

  std::unique_ptr<Expr> Clone() const;
  /// Re-emits parseable SQL (fully parenthesized where precedence matters).
  std::string ToSql() const;

  /// True if this subtree contains any aggregate function call.
  bool ContainsAggregate() const;
};

/// A table in a FROM list: `name [AS] alias`.
struct TableRef {
  std::string name;
  std::string alias;  // "" when none

  std::string ToSql() const;
  /// Alias if present, else the table name — what column qualifiers bind to.
  const std::string& BindingName() const { return alias.empty() ? name : alias; }
};

struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;  // "" when none
};

struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool desc = false;
};

/// An explicit JOIN in a FROM clause, tied to the table at
/// `from[table_index]`. Comma-listed tables have no JoinSpec; inner-join ON
/// conditions are semantically equivalent to WHERE conjuncts, LEFT joins
/// null-pad unmatched left rows.
struct JoinSpec {
  int table_index = 0;
  bool left = false;  ///< LEFT [OUTER] JOIN vs INNER JOIN
  std::unique_ptr<Expr> on;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::string into_table;  ///< SELECT ... INTO t (engine creates t)
  std::vector<TableRef> from;
  /// Explicit JOINs (indices into `from`; from[0] never has one).
  std::vector<JoinSpec> joins;
  std::unique_ptr<Expr> where;
  std::vector<std::unique_ptr<Expr>> group_by;
  std::unique_ptr<Expr> having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  ///< -1 = no limit

  std::unique_ptr<SelectStmt> Clone() const;
  std::string ToSql() const;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  ///< empty = full-schema order
  /// Literal rows (INSERT ... VALUES (...), (...)) — exclusive with select.
  std::vector<std::vector<std::unique_ptr<Expr>>> rows;
  std::unique_ptr<SelectStmt> select;  ///< INSERT INTO t SELECT ...

  std::unique_ptr<InsertStmt> Clone() const;
  std::string ToSql() const;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, std::unique_ptr<Expr>>> sets;
  std::unique_ptr<Expr> where;

  std::unique_ptr<UpdateStmt> Clone() const;
  std::string ToSql() const;
};

struct DeleteStmt {
  std::string table;
  std::unique_ptr<Expr> where;

  std::unique_ptr<DeleteStmt> Clone() const;
  std::string ToSql() const;
};

struct ColumnDef {
  std::string name;
  std::string type_name;
  bool not_null = false;
  bool primary_key = false;
};

struct CreateTableStmt {
  std::string table;
  bool temporary = false;
  std::vector<ColumnDef> columns;
  /// Table-level PRIMARY KEY (a, b); merged with per-column flags.
  std::vector<std::string> pk_columns;

  std::unique_ptr<CreateTableStmt> Clone() const;
  std::string ToSql() const;
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;

  std::string ToSql() const;
};

/// CREATE INDEX name ON table (col, ...).
struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::vector<std::string> columns;

  std::string ToSql() const;
};

/// DROP INDEX [IF EXISTS] name ON table.
struct DropIndexStmt {
  std::string index;
  std::string table;
  bool if_exists = false;

  std::string ToSql() const;
};

struct ProcParam {
  std::string name;       ///< without '@'
  std::string type_name;
};

struct Statement;  // fwd

struct CreateProcStmt {
  std::string name;
  bool temporary = false;
  std::vector<ProcParam> params;
  std::vector<std::unique_ptr<Statement>> body;

  std::unique_ptr<CreateProcStmt> Clone() const;
  std::string ToSql() const;
};

struct DropProcStmt {
  std::string name;
  bool if_exists = false;

  std::string ToSql() const;
};

struct ExecStmt {
  std::string proc_name;
  std::vector<std::unique_ptr<Expr>> args;

  std::unique_ptr<ExecStmt> Clone() const;
  std::string ToSql() const;
};

/// SHOW KEYS <table> (SQLPrimaryKeys analogue) / SHOW TABLES.
struct ShowStmt {
  enum class What : uint8_t { kKeys, kTables, kProcs };
  What what = What::kTables;
  std::string table;  ///< kKeys only

  std::string ToSql() const;
};

enum class StmtKind : uint8_t {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kDropTable,
  kCreateProc,
  kDropProc,
  kExec,
  kBeginTxn,
  kCommit,
  kRollback,
  kShow,
  kCreateIndex,
  kDropIndex,
  kExplain,  ///< EXPLAIN <stmt> — report the chosen plan, run nothing
};

const char* StmtKindName(StmtKind kind);

/// Tagged union of all statement forms. Exactly one sub-pointer (matching
/// `kind`) is non-null; txn-control kinds carry no payload.
struct Statement {
  StmtKind kind = StmtKind::kSelect;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<DropTableStmt> drop_table;
  std::unique_ptr<CreateProcStmt> create_proc;
  std::unique_ptr<DropProcStmt> drop_proc;
  std::unique_ptr<ExecStmt> exec;
  std::unique_ptr<ShowStmt> show;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<DropIndexStmt> drop_index;
  /// kExplain payload: the statement being explained. SELECT, INSERT,
  /// UPDATE, or DELETE — the parser rejects anything else. EXPLAIN is
  /// always classified read-only and must never execute (or mutate via)
  /// the inner statement.
  std::unique_ptr<Statement> explain_inner;

  std::unique_ptr<Statement> Clone() const;
  std::string ToSql() const;
};

}  // namespace phoenix::sql

#endif  // PHOENIX_SQL_AST_H_
