#include "sql/parser.h"

#include "common/schema.h"
#include "sql/lexer.h"

namespace phoenix::sql {

namespace {

/// Keywords that terminate clauses — an unquoted identifier equal to one of
/// these is never treated as an implicit alias.
bool IsReserved(const std::string& upper) {
  static const char* kReserved[] = {
      "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "HAVING", "LIMIT",
      "OFFSET", "INTO", "AS", "ON", "JOIN", "INNER", "LEFT", "RIGHT",
      "AND", "OR", "NOT", "IN", "LIKE", "BETWEEN", "IS", "NULL", "ASC",
      "DESC", "VALUES", "SET", "UNION", "DISTINCT", "BY", "END", "BEGIN",
      "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "EXEC", "EXECUTE",
      "CASE", "WHEN", "THEN", "ELSE", "INDEX", "EXPLAIN",
  };
  for (const char* kw : kReserved) {
    if (upper == kw) return true;
  }
  return false;
}

}  // namespace

Result<std::vector<std::unique_ptr<Statement>>> Parser::ParseScript(
    const std::string& text) {
  PHX_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser p(std::move(tokens));
  std::vector<std::unique_ptr<Statement>> stmts;
  while (!p.Cur().Is(TokKind::kEnd)) {
    if (p.AcceptSymbol(";")) continue;
    PHX_ASSIGN_OR_RETURN(std::unique_ptr<Statement> s, p.ParseStmt());
    stmts.push_back(std::move(s));
    if (!p.Cur().Is(TokKind::kEnd)) {
      PHX_RETURN_IF_ERROR(p.ExpectSymbol(";"));
    }
  }
  if (stmts.empty()) return Status::SqlError("empty statement");
  return stmts;
}

Result<std::unique_ptr<Statement>> Parser::ParseStatement(
    const std::string& text) {
  PHX_ASSIGN_OR_RETURN(auto stmts, ParseScript(text));
  if (stmts.size() != 1) {
    return Status::SqlError("expected exactly one statement, got " +
                            std::to_string(stmts.size()));
  }
  return std::move(stmts[0]);
}

Result<std::unique_ptr<Expr>> Parser::ParseExpression(const std::string& text) {
  PHX_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser p(std::move(tokens));
  PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, p.ParseExpr());
  if (!p.Cur().Is(TokKind::kEnd)) return p.Error("trailing input");
  return e;
}

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;
  return tokens_[i];
}

bool Parser::AcceptKeyword(const char* kw) {
  if (Cur().IsKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::AcceptSymbol(const char* s) {
  if (Cur().IsSymbol(s)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectKeyword(const char* kw) {
  if (!AcceptKeyword(kw)) return Error(std::string("expected ") + kw);
  return Status::Ok();
}

Status Parser::ExpectSymbol(const char* s) {
  if (!AcceptSymbol(s)) return Error(std::string("expected '") + s + "'");
  return Status::Ok();
}

Status Parser::Error(const std::string& what) const {
  return Status::SqlError(what + " near '" +
                          (Cur().Is(TokKind::kEnd) ? "<end>" : Cur().text) +
                          "' (offset " + std::to_string(Cur().offset) + ")");
}

Result<std::string> Parser::ExpectIdent() {
  if (!Cur().Is(TokKind::kIdent)) return Error("expected identifier");
  std::string name = Cur().text;
  Advance();
  return name;
}

Result<std::unique_ptr<Statement>> Parser::ParseStmt() {
  const Token& t = Cur();
  if (t.IsKeyword("SELECT")) {
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StmtKind::kSelect;
    PHX_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
    return stmt;
  }
  if (t.IsKeyword("INSERT")) return ParseInsert();
  if (t.IsKeyword("UPDATE")) return ParseUpdate();
  if (t.IsKeyword("DELETE")) return ParseDelete();
  if (t.IsKeyword("CREATE")) return ParseCreate();
  if (t.IsKeyword("DROP")) return ParseDrop();
  if (t.IsKeyword("EXEC") || t.IsKeyword("EXECUTE")) return ParseExec();
  if (t.IsKeyword("EXPLAIN")) {
    Advance();
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StmtKind::kExplain;
    PHX_ASSIGN_OR_RETURN(stmt->explain_inner, ParseStmt());
    switch (stmt->explain_inner->kind) {
      case StmtKind::kSelect:
      case StmtKind::kInsert:
      case StmtKind::kUpdate:
      case StmtKind::kDelete:
        break;
      default:
        return Error("EXPLAIN supports SELECT, INSERT, UPDATE, and DELETE");
    }
    return stmt;
  }
  if (t.IsKeyword("SHOW")) {
    Advance();
    auto show = std::make_unique<ShowStmt>();
    if (AcceptKeyword("KEYS")) {
      show->what = ShowStmt::What::kKeys;
      PHX_ASSIGN_OR_RETURN(show->table, ExpectIdent());
    } else if (AcceptKeyword("TABLES")) {
      show->what = ShowStmt::What::kTables;
    } else if (AcceptKeyword("PROCEDURES") || AcceptKeyword("PROCS")) {
      show->what = ShowStmt::What::kProcs;
    } else {
      return Error("expected KEYS, TABLES, or PROCEDURES after SHOW");
    }
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StmtKind::kShow;
    stmt->show = std::move(show);
    return stmt;
  }
  if (t.IsKeyword("BEGIN")) {
    Advance();
    // Optional TRANSACTION/TRAN/WORK.
    if (!AcceptKeyword("TRANSACTION") && !AcceptKeyword("TRAN")) {
      AcceptKeyword("WORK");
    }
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StmtKind::kBeginTxn;
    return stmt;
  }
  if (t.IsKeyword("COMMIT")) {
    Advance();
    if (!AcceptKeyword("TRANSACTION") && !AcceptKeyword("TRAN")) {
      AcceptKeyword("WORK");
    }
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StmtKind::kCommit;
    return stmt;
  }
  if (t.IsKeyword("ROLLBACK")) {
    Advance();
    if (!AcceptKeyword("TRANSACTION") && !AcceptKeyword("TRAN")) {
      AcceptKeyword("WORK");
    }
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StmtKind::kRollback;
    return stmt;
  }
  return Error("expected a statement");
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelect() {
  PHX_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  auto sel = std::make_unique<SelectStmt>();
  if (AcceptKeyword("DISTINCT")) sel->distinct = true;
  // TOP n (T-SQL flavor) is accepted as a LIMIT synonym.
  if (AcceptKeyword("TOP")) {
    if (!Cur().Is(TokKind::kInt)) return Error("expected integer after TOP");
    sel->limit = Cur().int_value;
    Advance();
  }
  // Select list.
  while (true) {
    SelectItem item;
    if (Cur().IsSymbol("*")) {
      Advance();
      item.expr = Expr::Star();
    } else {
      PHX_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("AS")) {
        PHX_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
      } else if (Cur().Is(TokKind::kIdent) && !IsReserved(Cur().upper)) {
        item.alias = Cur().text;
        Advance();
      }
    }
    sel->items.push_back(std::move(item));
    if (!AcceptSymbol(",")) break;
  }
  if (AcceptKeyword("INTO")) {
    PHX_ASSIGN_OR_RETURN(sel->into_table, ExpectIdent());
  }
  if (AcceptKeyword("FROM")) {
    auto parse_table_ref = [&]() -> Status {
      TableRef ref;
      PHX_ASSIGN_OR_RETURN(ref.name, ExpectIdent());
      if (AcceptKeyword("AS")) {
        PHX_ASSIGN_OR_RETURN(ref.alias, ExpectIdent());
      } else if (Cur().Is(TokKind::kIdent) && !IsReserved(Cur().upper)) {
        ref.alias = Cur().text;
        Advance();
      }
      sel->from.push_back(std::move(ref));
      return Status::Ok();
    };
    PHX_RETURN_IF_ERROR(parse_table_ref());
    while (true) {
      if (AcceptSymbol(",")) {
        PHX_RETURN_IF_ERROR(parse_table_ref());
        continue;
      }
      if (Cur().IsKeyword("INNER") && Peek(1).IsKeyword("JOIN")) Advance();
      bool left = false;
      if (Cur().IsKeyword("LEFT") &&
          (Peek(1).IsKeyword("JOIN") ||
           (Peek(1).IsKeyword("OUTER") && Peek(2).IsKeyword("JOIN")))) {
        left = true;
        Advance();
        AcceptKeyword("OUTER");
      }
      if (AcceptKeyword("JOIN")) {
        PHX_RETURN_IF_ERROR(parse_table_ref());
        PHX_RETURN_IF_ERROR(ExpectKeyword("ON"));
        PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> cond, ParseExpr());
        sel->joins.push_back(JoinSpec{
            static_cast<int>(sel->from.size()) - 1, left, std::move(cond)});
        continue;
      }
      if (left) return Error("expected JOIN after LEFT");
      break;
    }
  }
  if (AcceptKeyword("WHERE")) {
    PHX_ASSIGN_OR_RETURN(sel->where, ParseExpr());
  }
  if (AcceptKeyword("GROUP")) {
    PHX_RETURN_IF_ERROR(ExpectKeyword("BY"));
    while (true) {
      PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> g, ParseExpr());
      sel->group_by.push_back(std::move(g));
      if (!AcceptSymbol(",")) break;
    }
  }
  if (AcceptKeyword("HAVING")) {
    PHX_ASSIGN_OR_RETURN(sel->having, ParseExpr());
  }
  if (AcceptKeyword("ORDER")) {
    PHX_RETURN_IF_ERROR(ExpectKeyword("BY"));
    while (true) {
      OrderItem item;
      PHX_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("DESC")) {
        item.desc = true;
      } else {
        AcceptKeyword("ASC");
      }
      sel->order_by.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
  }
  if (AcceptKeyword("LIMIT")) {
    if (!Cur().Is(TokKind::kInt)) return Error("expected integer after LIMIT");
    sel->limit = Cur().int_value;
    Advance();
  }
  return sel;
}

Result<std::unique_ptr<Statement>> Parser::ParseInsert() {
  PHX_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
  PHX_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  auto ins = std::make_unique<InsertStmt>();
  PHX_ASSIGN_OR_RETURN(ins->table, ExpectIdent());
  if (Cur().IsSymbol("(") && !Peek(1).IsKeyword("SELECT")) {
    // Column list (as opposed to a parenthesized SELECT).
    PHX_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      PHX_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      ins->columns.push_back(std::move(col));
      if (!AcceptSymbol(",")) break;
    }
    PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
  }
  if (AcceptKeyword("VALUES")) {
    while (true) {
      PHX_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<std::unique_ptr<Expr>> row;
      while (true) {
        PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
        row.push_back(std::move(e));
        if (!AcceptSymbol(",")) break;
      }
      PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
      ins->rows.push_back(std::move(row));
      if (!AcceptSymbol(",")) break;
    }
  } else {
    bool parenthesized = AcceptSymbol("(");
    PHX_ASSIGN_OR_RETURN(ins->select, ParseSelect());
    if (parenthesized) PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
  }
  auto stmt = std::make_unique<Statement>();
  stmt->kind = StmtKind::kInsert;
  stmt->insert = std::move(ins);
  return stmt;
}

Result<std::unique_ptr<Statement>> Parser::ParseUpdate() {
  PHX_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
  auto upd = std::make_unique<UpdateStmt>();
  PHX_ASSIGN_OR_RETURN(upd->table, ExpectIdent());
  PHX_RETURN_IF_ERROR(ExpectKeyword("SET"));
  while (true) {
    PHX_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
    PHX_RETURN_IF_ERROR(ExpectSymbol("="));
    PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
    upd->sets.emplace_back(std::move(col), std::move(e));
    if (!AcceptSymbol(",")) break;
  }
  if (AcceptKeyword("WHERE")) {
    PHX_ASSIGN_OR_RETURN(upd->where, ParseExpr());
  }
  auto stmt = std::make_unique<Statement>();
  stmt->kind = StmtKind::kUpdate;
  stmt->update = std::move(upd);
  return stmt;
}

Result<std::unique_ptr<Statement>> Parser::ParseDelete() {
  PHX_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
  PHX_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  auto del = std::make_unique<DeleteStmt>();
  PHX_ASSIGN_OR_RETURN(del->table, ExpectIdent());
  if (AcceptKeyword("WHERE")) {
    PHX_ASSIGN_OR_RETURN(del->where, ParseExpr());
  }
  auto stmt = std::make_unique<Statement>();
  stmt->kind = StmtKind::kDelete;
  stmt->del = std::move(del);
  return stmt;
}

Result<std::unique_ptr<Statement>> Parser::ParseCreate() {
  PHX_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
  bool temporary = false;
  if (AcceptKeyword("TEMP") || AcceptKeyword("TEMPORARY")) temporary = true;
  if (AcceptKeyword("TABLE")) {
    auto ct = std::make_unique<CreateTableStmt>();
    ct->temporary = temporary;
    PHX_ASSIGN_OR_RETURN(ct->table, ExpectIdent());
    // '#name' is the T-SQL temp-table convention; honor it.
    if (!ct->table.empty() && ct->table[0] == '#') ct->temporary = true;
    PHX_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      if (AcceptKeyword("PRIMARY")) {
        PHX_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        PHX_RETURN_IF_ERROR(ExpectSymbol("("));
        while (true) {
          PHX_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
          ct->pk_columns.push_back(std::move(col));
          if (!AcceptSymbol(",")) break;
        }
        PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else {
        ColumnDef def;
        PHX_ASSIGN_OR_RETURN(def.name, ExpectIdent());
        PHX_ASSIGN_OR_RETURN(def.type_name, ExpectIdent());
        // VARCHAR(30) style length suffix: parsed and ignored.
        if (AcceptSymbol("(")) {
          if (!Cur().Is(TokKind::kInt)) return Error("expected length");
          Advance();
          if (AcceptSymbol(",")) {  // DECIMAL(p, s)
            if (!Cur().Is(TokKind::kInt)) return Error("expected scale");
            Advance();
          }
          PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
        }
        while (true) {
          if (AcceptKeyword("NOT")) {
            PHX_RETURN_IF_ERROR(ExpectKeyword("NULL"));
            def.not_null = true;
            continue;
          }
          if (AcceptKeyword("NULL")) continue;
          if (AcceptKeyword("PRIMARY")) {
            PHX_RETURN_IF_ERROR(ExpectKeyword("KEY"));
            def.primary_key = true;
            def.not_null = true;
            continue;
          }
          break;
        }
        ct->columns.push_back(std::move(def));
      }
      if (!AcceptSymbol(",")) break;
    }
    PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StmtKind::kCreateTable;
    stmt->create_table = std::move(ct);
    return stmt;
  }
  if (AcceptKeyword("INDEX")) {
    if (temporary) return Error("TEMPORARY is not valid for CREATE INDEX");
    auto ci = std::make_unique<CreateIndexStmt>();
    PHX_ASSIGN_OR_RETURN(ci->index, ExpectIdent());
    PHX_RETURN_IF_ERROR(ExpectKeyword("ON"));
    PHX_ASSIGN_OR_RETURN(ci->table, ExpectIdent());
    PHX_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      PHX_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      ci->columns.push_back(std::move(col));
      if (!AcceptSymbol(",")) break;
    }
    PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StmtKind::kCreateIndex;
    stmt->create_index = std::move(ci);
    return stmt;
  }
  if (AcceptKeyword("PROCEDURE") || AcceptKeyword("PROC")) {
    auto cp = std::make_unique<CreateProcStmt>();
    cp->temporary = temporary;
    PHX_ASSIGN_OR_RETURN(cp->name, ExpectIdent());
    if (!cp->name.empty() && cp->name[0] == '#') cp->temporary = true;
    if (AcceptSymbol("(")) {
      while (true) {
        if (!Cur().Is(TokKind::kParam)) return Error("expected @param");
        ProcParam p;
        p.name = Cur().text;
        Advance();
        PHX_ASSIGN_OR_RETURN(p.type_name, ExpectIdent());
        if (AcceptSymbol("(")) {  // VARCHAR(30)
          if (!Cur().Is(TokKind::kInt)) return Error("expected length");
          Advance();
          PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
        }
        cp->params.push_back(std::move(p));
        if (!AcceptSymbol(",")) break;
      }
      PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    PHX_RETURN_IF_ERROR(ExpectKeyword("AS"));
    if (AcceptKeyword("BEGIN")) {
      while (!Cur().IsKeyword("END")) {
        if (Cur().Is(TokKind::kEnd)) return Error("unterminated procedure body");
        if (AcceptSymbol(";")) continue;
        PHX_ASSIGN_OR_RETURN(std::unique_ptr<Statement> s, ParseStmt());
        cp->body.push_back(std::move(s));
      }
      PHX_RETURN_IF_ERROR(ExpectKeyword("END"));
    } else {
      PHX_ASSIGN_OR_RETURN(std::unique_ptr<Statement> s, ParseStmt());
      cp->body.push_back(std::move(s));
    }
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StmtKind::kCreateProc;
    stmt->create_proc = std::move(cp);
    return stmt;
  }
  return Error("expected TABLE, INDEX, or PROCEDURE after CREATE");
}

Result<std::unique_ptr<Statement>> Parser::ParseDrop() {
  PHX_RETURN_IF_ERROR(ExpectKeyword("DROP"));
  if (AcceptKeyword("INDEX")) {
    auto di = std::make_unique<DropIndexStmt>();
    if (AcceptKeyword("IF")) {
      PHX_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      di->if_exists = true;
    }
    PHX_ASSIGN_OR_RETURN(di->index, ExpectIdent());
    PHX_RETURN_IF_ERROR(ExpectKeyword("ON"));
    PHX_ASSIGN_OR_RETURN(di->table, ExpectIdent());
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StmtKind::kDropIndex;
    stmt->drop_index = std::move(di);
    return stmt;
  }
  bool is_table = AcceptKeyword("TABLE");
  if (!is_table) {
    if (!AcceptKeyword("PROCEDURE") && !AcceptKeyword("PROC")) {
      return Error("expected TABLE, INDEX, or PROCEDURE after DROP");
    }
  }
  bool if_exists = false;
  if (AcceptKeyword("IF")) {
    PHX_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
    if_exists = true;
  }
  PHX_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
  auto stmt = std::make_unique<Statement>();
  if (is_table) {
    stmt->kind = StmtKind::kDropTable;
    stmt->drop_table = std::make_unique<DropTableStmt>();
    stmt->drop_table->table = std::move(name);
    stmt->drop_table->if_exists = if_exists;
  } else {
    stmt->kind = StmtKind::kDropProc;
    stmt->drop_proc = std::make_unique<DropProcStmt>();
    stmt->drop_proc->name = std::move(name);
    stmt->drop_proc->if_exists = if_exists;
  }
  return stmt;
}

Result<std::unique_ptr<Statement>> Parser::ParseExec() {
  Advance();  // EXEC or EXECUTE
  auto ex = std::make_unique<ExecStmt>();
  PHX_ASSIGN_OR_RETURN(ex->proc_name, ExpectIdent());
  if (AcceptSymbol("(")) {
    if (!Cur().IsSymbol(")")) {
      while (true) {
        PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
        ex->args.push_back(std::move(e));
        if (!AcceptSymbol(",")) break;
      }
    }
    PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
  } else if (!Cur().Is(TokKind::kEnd) && !Cur().IsSymbol(";")) {
    // T-SQL style: EXEC proc arg1, arg2
    while (true) {
      PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
      ex->args.push_back(std::move(e));
      if (!AcceptSymbol(",")) break;
    }
  }
  auto stmt = std::make_unique<Statement>();
  stmt->kind = StmtKind::kExec;
  stmt->exec = std::move(ex);
  return stmt;
}

Result<std::unique_ptr<Expr>> Parser::ParseExpr() { return ParseOr(); }

Result<std::unique_ptr<Expr>> Parser::ParseOr() {
  PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseAnd());
  while (AcceptKeyword("OR")) {
    PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseAnd());
    left = Expr::Binary(BinOp::kOr, std::move(left), std::move(right));
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseAnd() {
  PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseNot());
  while (AcceptKeyword("AND")) {
    PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseNot());
    left = Expr::Binary(BinOp::kAnd, std::move(left), std::move(right));
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseNot() {
  if (AcceptKeyword("NOT")) {
    PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> child, ParseNot());
    return Expr::Unary(UnOp::kNot, std::move(child));
  }
  return ParseComparison();
}

Result<std::unique_ptr<Expr>> Parser::ParseComparison() {
  PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseAdditive());
  // Single (non-chaining) comparison suffix.
  struct CmpMap {
    const char* sym;
    BinOp op;
  };
  static const CmpMap kCmp[] = {
      {"=", BinOp::kEq}, {"<>", BinOp::kNe}, {"!=", BinOp::kNe},
      {"<=", BinOp::kLe}, {">=", BinOp::kGe}, {"<", BinOp::kLt},
      {">", BinOp::kGt},
  };
  for (const CmpMap& m : kCmp) {
    if (Cur().IsSymbol(m.sym)) {
      Advance();
      PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseAdditive());
      return Expr::Binary(m.op, std::move(left), std::move(right));
    }
  }
  bool negated = false;
  if (Cur().IsKeyword("NOT") &&
      (Peek(1).IsKeyword("LIKE") || Peek(1).IsKeyword("BETWEEN") ||
       Peek(1).IsKeyword("IN"))) {
    negated = true;
    Advance();
  }
  if (AcceptKeyword("LIKE")) {
    PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseAdditive());
    return Expr::Binary(negated ? BinOp::kNotLike : BinOp::kLike,
                        std::move(left), std::move(right));
  }
  if (AcceptKeyword("BETWEEN")) {
    PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> low, ParseAdditive());
    PHX_RETURN_IF_ERROR(ExpectKeyword("AND"));
    PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> high, ParseAdditive());
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBetween;
    e->left = std::move(left);
    e->right = std::move(low);
    e->extra = std::move(high);
    e->negated = negated;
    return e;
  }
  if (AcceptKeyword("IN")) {
    PHX_RETURN_IF_ERROR(ExpectSymbol("("));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kInList;
    e->left = std::move(left);
    e->negated = negated;
    while (true) {
      PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> item, ParseExpr());
      e->args.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
    PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
    return e;
  }
  if (AcceptKeyword("IS")) {
    bool is_not = AcceptKeyword("NOT");
    PHX_RETURN_IF_ERROR(ExpectKeyword("NULL"));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kIsNull;
    e->left = std::move(left);
    e->negated = is_not;
    return e;
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseAdditive() {
  PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseMultiplicative());
  while (true) {
    BinOp op;
    if (Cur().IsSymbol("+")) {
      op = BinOp::kAdd;
    } else if (Cur().IsSymbol("-")) {
      op = BinOp::kSub;
    } else {
      break;
    }
    Advance();
    PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseMultiplicative());
    left = Expr::Binary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseMultiplicative() {
  PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseUnary());
  while (true) {
    BinOp op;
    if (Cur().IsSymbol("*")) {
      op = BinOp::kMul;
    } else if (Cur().IsSymbol("/")) {
      op = BinOp::kDiv;
    } else if (Cur().IsSymbol("%")) {
      op = BinOp::kMod;
    } else {
      break;
    }
    Advance();
    PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseUnary());
    left = Expr::Binary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseUnary() {
  if (AcceptSymbol("-")) {
    PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> child, ParseUnary());
    return Expr::Unary(UnOp::kNeg, std::move(child));
  }
  AcceptSymbol("+");
  return ParsePrimary();
}

Result<std::unique_ptr<Expr>> Parser::ParsePrimary() {
  const Token& t = Cur();
  switch (t.kind) {
    case TokKind::kInt: {
      int64_t v = t.int_value;
      Advance();
      return Expr::Lit(Value::Int64(v));
    }
    case TokKind::kDouble: {
      double v = t.double_value;
      Advance();
      return Expr::Lit(Value::Double(v));
    }
    case TokKind::kString: {
      std::string v = t.text;
      Advance();
      return Expr::Lit(Value::String(std::move(v)));
    }
    case TokKind::kParam: {
      std::string name = t.text;
      Advance();
      return Expr::Param(std::move(name));
    }
    case TokKind::kSymbol:
      if (t.text == "(") {
        Advance();
        PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
        PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
        return e;
      }
      return Error("expected expression");
    case TokKind::kIdent: {
      if (t.IsKeyword("NULL")) {
        Advance();
        return Expr::Lit(Value::Null());
      }
      if (t.IsKeyword("TRUE")) {
        Advance();
        return Expr::Lit(Value::Bool(true));
      }
      if (t.IsKeyword("FALSE")) {
        Advance();
        return Expr::Lit(Value::Bool(false));
      }
      if (t.IsKeyword("CASE")) {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kCase;
        if (!Cur().IsKeyword("WHEN")) {
          // Simple CASE: CASE operand WHEN value THEN ...
          PHX_ASSIGN_OR_RETURN(e->left, ParseExpr());
        }
        while (AcceptKeyword("WHEN")) {
          PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> when, ParseExpr());
          PHX_RETURN_IF_ERROR(ExpectKeyword("THEN"));
          PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> then, ParseExpr());
          e->args.push_back(std::move(when));
          e->args.push_back(std::move(then));
        }
        if (e->args.empty()) return Error("CASE requires at least one WHEN");
        if (AcceptKeyword("ELSE")) {
          PHX_ASSIGN_OR_RETURN(e->extra, ParseExpr());
        }
        PHX_RETURN_IF_ERROR(ExpectKeyword("END"));
        return e;
      }
      if (t.IsKeyword("DATE") && Peek(1).Is(TokKind::kString)) {
        Advance();
        PHX_ASSIGN_OR_RETURN(int32_t day, ParseDate(Cur().text));
        Advance();
        return Expr::Lit(Value::Date(day));
      }
      // Function call?
      if (Peek(1).IsSymbol("(")) {
        std::string fname = t.upper;
        Advance();
        Advance();  // '('
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kFunction;
        e->func_name = std::move(fname);
        if (AcceptKeyword("DISTINCT")) e->distinct = true;
        if (!Cur().IsSymbol(")")) {
          while (true) {
            if (Cur().IsSymbol("*")) {
              Advance();
              e->args.push_back(Expr::Star());
            } else {
              PHX_ASSIGN_OR_RETURN(std::unique_ptr<Expr> arg, ParseExpr());
              e->args.push_back(std::move(arg));
            }
            if (!AcceptSymbol(",")) break;
          }
        }
        PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
        return e;
      }
      // Column reference, possibly qualified. Reserved words never name
      // columns (catches malformed input like "SELECT FROM t" early).
      if (IsReserved(t.upper)) return Error("expected expression");
      std::string first = t.text;
      Advance();
      if (AcceptSymbol(".")) {
        PHX_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        return Expr::Col(std::move(first), std::move(col));
      }
      return Expr::Col("", std::move(first));
    }
    case TokKind::kEnd:
      return Error("unexpected end of input");
  }
  return Error("expected expression");
}

}  // namespace phoenix::sql
