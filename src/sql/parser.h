#ifndef PHOENIX_SQL_PARSER_H_
#define PHOENIX_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace phoenix::sql {

/// Recursive-descent SQL parser for the dialect described in DESIGN.md §2/S3.
class Parser {
 public:
  /// Parses a semicolon-separated script (a "command batch").
  static Result<std::vector<std::unique_ptr<Statement>>> ParseScript(
      const std::string& text);

  /// Parses exactly one statement (trailing ';' tolerated).
  static Result<std::unique_ptr<Statement>> ParseStatement(
      const std::string& text);

  /// Parses a standalone expression (used by tests and the rewriter).
  static Result<std::unique_ptr<Expr>> ParseExpression(const std::string& text);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  const Token& Cur() const { return Peek(0); }
  void Advance() { if (pos_ + 1 < tokens_.size()) ++pos_; }
  bool AcceptKeyword(const char* kw);
  bool AcceptSymbol(const char* s);
  Status ExpectKeyword(const char* kw);
  Status ExpectSymbol(const char* s);
  Status Error(const std::string& what) const;
  Result<std::string> ExpectIdent();

  Result<std::unique_ptr<Statement>> ParseStmt();
  Result<std::unique_ptr<SelectStmt>> ParseSelect();
  Result<std::unique_ptr<Statement>> ParseInsert();
  Result<std::unique_ptr<Statement>> ParseUpdate();
  Result<std::unique_ptr<Statement>> ParseDelete();
  Result<std::unique_ptr<Statement>> ParseCreate();
  Result<std::unique_ptr<Statement>> ParseDrop();
  Result<std::unique_ptr<Statement>> ParseExec();

  Result<std::unique_ptr<Expr>> ParseExpr();
  Result<std::unique_ptr<Expr>> ParseOr();
  Result<std::unique_ptr<Expr>> ParseAnd();
  Result<std::unique_ptr<Expr>> ParseNot();
  Result<std::unique_ptr<Expr>> ParseComparison();
  Result<std::unique_ptr<Expr>> ParseAdditive();
  Result<std::unique_ptr<Expr>> ParseMultiplicative();
  Result<std::unique_ptr<Expr>> ParseUnary();
  Result<std::unique_ptr<Expr>> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace phoenix::sql

#endif  // PHOENIX_SQL_PARSER_H_
