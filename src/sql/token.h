#ifndef PHOENIX_SQL_TOKEN_H_
#define PHOENIX_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace phoenix::sql {

enum class TokKind : uint8_t {
  kEnd = 0,
  kIdent,    ///< bare identifier, possibly a keyword (check via IsKeyword)
  kString,   ///< 'quoted literal' (quotes stripped, '' unescaped)
  kInt,      ///< integer literal
  kDouble,   ///< decimal literal
  kSymbol,   ///< punctuation / operator, text holds the exact lexeme
  kParam,    ///< @name parameter reference (text holds name without @)
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;       ///< raw lexeme (identifiers keep original case)
  std::string upper;      ///< uppercased text, for keyword matching
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;      ///< byte offset in the source, for error messages

  bool Is(TokKind k) const { return kind == k; }
  /// True if this is an identifier whose uppercase form equals `kw`.
  bool IsKeyword(const char* kw) const {
    return kind == TokKind::kIdent && upper == kw;
  }
  bool IsSymbol(const char* s) const {
    return kind == TokKind::kSymbol && text == s;
  }
};

const char* TokKindName(TokKind kind);

}  // namespace phoenix::sql

#endif  // PHOENIX_SQL_TOKEN_H_
