#include "sql/token.h"

namespace phoenix::sql {

const char* TokKindName(TokKind kind) {
  switch (kind) {
    case TokKind::kEnd: return "end-of-input";
    case TokKind::kIdent: return "identifier";
    case TokKind::kString: return "string";
    case TokKind::kInt: return "integer";
    case TokKind::kDouble: return "double";
    case TokKind::kSymbol: return "symbol";
    case TokKind::kParam: return "parameter";
  }
  return "?";
}

}  // namespace phoenix::sql
