#include "sql/ast.h"

namespace phoenix::sql {

const char* BinOpSql(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
    case BinOp::kLike: return "LIKE";
    case BinOp::kNotLike: return "NOT LIKE";
  }
  return "?";
}

const char* StmtKindName(StmtKind kind) {
  switch (kind) {
    case StmtKind::kSelect: return "SELECT";
    case StmtKind::kInsert: return "INSERT";
    case StmtKind::kUpdate: return "UPDATE";
    case StmtKind::kDelete: return "DELETE";
    case StmtKind::kCreateTable: return "CREATE TABLE";
    case StmtKind::kDropTable: return "DROP TABLE";
    case StmtKind::kCreateProc: return "CREATE PROCEDURE";
    case StmtKind::kDropProc: return "DROP PROCEDURE";
    case StmtKind::kExec: return "EXEC";
    case StmtKind::kBeginTxn: return "BEGIN TRANSACTION";
    case StmtKind::kCommit: return "COMMIT";
    case StmtKind::kRollback: return "ROLLBACK";
    case StmtKind::kShow: return "SHOW";
    case StmtKind::kCreateIndex: return "CREATE INDEX";
    case StmtKind::kDropIndex: return "DROP INDEX";
    case StmtKind::kExplain: return "EXPLAIN";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Lit(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::Col(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table_qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<Expr> Expr::Star() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

std::unique_ptr<Expr> Expr::Unary(UnOp op, std::unique_ptr<Expr> child) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->left = std::move(child);
  return e;
}

std::unique_ptr<Expr> Expr::Binary(BinOp op, std::unique_ptr<Expr> l,
                                   std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

std::unique_ptr<Expr> Expr::Func(std::string name,
                                 std::vector<std::unique_ptr<Expr>> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunction;
  e->func_name = std::move(name);
  e->args = std::move(args);
  return e;
}

std::unique_ptr<Expr> Expr::Param(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kParam;
  e->param_name = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->table_qualifier = table_qualifier;
  e->column = column;
  e->un_op = un_op;
  e->bin_op = bin_op;
  if (left) e->left = left->Clone();
  if (right) e->right = right->Clone();
  if (extra) e->extra = extra->Clone();
  e->func_name = func_name;
  e->distinct = distinct;
  for (const auto& a : args) e->args.push_back(a->Clone());
  e->negated = negated;
  e->param_name = param_name;
  return e;
}

bool Expr::ContainsAggregate() const {
  if (kind == ExprKind::kFunction) {
    if (func_name == "COUNT" || func_name == "SUM" || func_name == "AVG" ||
        func_name == "MIN" || func_name == "MAX") {
      return true;
    }
  }
  if (left && left->ContainsAggregate()) return true;
  if (right && right->ContainsAggregate()) return true;
  if (extra && extra->ContainsAggregate()) return true;
  for (const auto& a : args) {
    if (a->ContainsAggregate()) return true;
  }
  return false;
}

std::string Expr::ToSql() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kColumnRef:
      return table_qualifier.empty() ? column : table_qualifier + "." + column;
    case ExprKind::kStar:
      return "*";
    case ExprKind::kUnary:
      if (un_op == UnOp::kNeg) return "(-" + left->ToSql() + ")";
      return "(NOT " + left->ToSql() + ")";
    case ExprKind::kBinary:
      return "(" + left->ToSql() + " " + BinOpSql(bin_op) + " " +
             right->ToSql() + ")";
    case ExprKind::kFunction: {
      std::string s = func_name + "(";
      if (distinct) s += "DISTINCT ";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) s += ", ";
        s += args[i]->ToSql();
      }
      s += ")";
      return s;
    }
    case ExprKind::kBetween:
      return "(" + left->ToSql() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             right->ToSql() + " AND " + extra->ToSql() + ")";
    case ExprKind::kInList: {
      std::string s = "(" + left->ToSql() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) s += ", ";
        s += args[i]->ToSql();
      }
      s += "))";
      return s;
    }
    case ExprKind::kIsNull:
      return "(" + left->ToSql() + (negated ? " IS NOT NULL" : " IS NULL") + ")";
    case ExprKind::kParam:
      return "@" + param_name;
    case ExprKind::kCase: {
      std::string s = "CASE";
      if (left) s += " " + left->ToSql();
      for (size_t i = 0; i + 1 < args.size(); i += 2) {
        s += " WHEN " + args[i]->ToSql() + " THEN " + args[i + 1]->ToSql();
      }
      if (extra) s += " ELSE " + extra->ToSql();
      s += " END";
      return s;
    }
  }
  return "?";
}

std::string TableRef::ToSql() const {
  return alias.empty() ? name : name + " " + alias;
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto s = std::make_unique<SelectStmt>();
  s->distinct = distinct;
  for (const auto& it : items) {
    s->items.push_back(SelectItem{it.expr->Clone(), it.alias});
  }
  s->into_table = into_table;
  s->from = from;
  for (const auto& j : joins) {
    s->joins.push_back(JoinSpec{j.table_index, j.left,
                                j.on ? j.on->Clone() : nullptr});
  }
  if (where) s->where = where->Clone();
  for (const auto& g : group_by) s->group_by.push_back(g->Clone());
  if (having) s->having = having->Clone();
  for (const auto& o : order_by) {
    s->order_by.push_back(OrderItem{o.expr->Clone(), o.desc});
  }
  s->limit = limit;
  return s;
}

std::string SelectStmt::ToSql() const {
  std::string s = "SELECT ";
  if (distinct) s += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) s += ", ";
    s += items[i].expr->ToSql();
    if (!items[i].alias.empty()) s += " AS " + items[i].alias;
  }
  if (!into_table.empty()) s += " INTO " + into_table;
  if (!from.empty()) {
    s += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      const JoinSpec* spec = nullptr;
      for (const JoinSpec& j : joins) {
        if (j.table_index == static_cast<int>(i)) spec = &j;
      }
      if (i == 0) {
        s += from[i].ToSql();
      } else if (spec != nullptr) {
        s += spec->left ? " LEFT JOIN " : " JOIN ";
        s += from[i].ToSql();
        s += " ON " + spec->on->ToSql();
      } else {
        s += ", " + from[i].ToSql();
      }
    }
  }
  if (where) s += " WHERE " + where->ToSql();
  if (!group_by.empty()) {
    s += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i) s += ", ";
      s += group_by[i]->ToSql();
    }
  }
  if (having) s += " HAVING " + having->ToSql();
  if (!order_by.empty()) {
    s += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i) s += ", ";
      s += order_by[i].expr->ToSql();
      if (order_by[i].desc) s += " DESC";
    }
  }
  if (limit >= 0) s += " LIMIT " + std::to_string(limit);
  return s;
}

std::unique_ptr<InsertStmt> InsertStmt::Clone() const {
  auto s = std::make_unique<InsertStmt>();
  s->table = table;
  s->columns = columns;
  for (const auto& row : rows) {
    std::vector<std::unique_ptr<Expr>> r;
    for (const auto& e : row) r.push_back(e->Clone());
    s->rows.push_back(std::move(r));
  }
  if (select) s->select = select->Clone();
  return s;
}

std::string InsertStmt::ToSql() const {
  std::string s = "INSERT INTO " + table;
  if (!columns.empty()) {
    s += " (";
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i) s += ", ";
      s += columns[i];
    }
    s += ")";
  }
  if (select) {
    s += " " + select->ToSql();
  } else {
    s += " VALUES ";
    for (size_t r = 0; r < rows.size(); ++r) {
      if (r) s += ", ";
      s += "(";
      for (size_t i = 0; i < rows[r].size(); ++i) {
        if (i) s += ", ";
        s += rows[r][i]->ToSql();
      }
      s += ")";
    }
  }
  return s;
}

std::unique_ptr<UpdateStmt> UpdateStmt::Clone() const {
  auto s = std::make_unique<UpdateStmt>();
  s->table = table;
  for (const auto& [col, e] : sets) s->sets.emplace_back(col, e->Clone());
  if (where) s->where = where->Clone();
  return s;
}

std::string UpdateStmt::ToSql() const {
  std::string s = "UPDATE " + table + " SET ";
  for (size_t i = 0; i < sets.size(); ++i) {
    if (i) s += ", ";
    s += sets[i].first + " = " + sets[i].second->ToSql();
  }
  if (where) s += " WHERE " + where->ToSql();
  return s;
}

std::unique_ptr<DeleteStmt> DeleteStmt::Clone() const {
  auto s = std::make_unique<DeleteStmt>();
  s->table = table;
  if (where) s->where = where->Clone();
  return s;
}

std::string DeleteStmt::ToSql() const {
  std::string s = "DELETE FROM " + table;
  if (where) s += " WHERE " + where->ToSql();
  return s;
}

std::unique_ptr<CreateTableStmt> CreateTableStmt::Clone() const {
  auto s = std::make_unique<CreateTableStmt>();
  *s = *this;
  return s;
}

std::string CreateTableStmt::ToSql() const {
  std::string s = "CREATE ";
  if (temporary) s += "TEMPORARY ";
  s += "TABLE " + table + " (";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) s += ", ";
    s += columns[i].name + " " + columns[i].type_name;
    if (columns[i].not_null) s += " NOT NULL";
    if (columns[i].primary_key) s += " PRIMARY KEY";
  }
  if (!pk_columns.empty()) {
    s += ", PRIMARY KEY (";
    for (size_t i = 0; i < pk_columns.size(); ++i) {
      if (i) s += ", ";
      s += pk_columns[i];
    }
    s += ")";
  }
  s += ")";
  return s;
}

std::string DropTableStmt::ToSql() const {
  return std::string("DROP TABLE ") + (if_exists ? "IF EXISTS " : "") + table;
}

std::string CreateIndexStmt::ToSql() const {
  std::string s = "CREATE INDEX " + index + " ON " + table + " (";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) s += ", ";
    s += columns[i];
  }
  s += ")";
  return s;
}

std::string DropIndexStmt::ToSql() const {
  return std::string("DROP INDEX ") + (if_exists ? "IF EXISTS " : "") + index +
         " ON " + table;
}

std::unique_ptr<CreateProcStmt> CreateProcStmt::Clone() const {
  auto s = std::make_unique<CreateProcStmt>();
  s->name = name;
  s->temporary = temporary;
  s->params = params;
  for (const auto& st : body) s->body.push_back(st->Clone());
  return s;
}

std::string CreateProcStmt::ToSql() const {
  std::string s = "CREATE ";
  if (temporary) s += "TEMPORARY ";
  s += "PROCEDURE " + name;
  if (!params.empty()) {
    s += " (";
    for (size_t i = 0; i < params.size(); ++i) {
      if (i) s += ", ";
      s += "@" + params[i].name + " " + params[i].type_name;
    }
    s += ")";
  }
  s += " AS BEGIN ";
  for (const auto& st : body) s += st->ToSql() + "; ";
  s += "END";
  return s;
}

std::string DropProcStmt::ToSql() const {
  return std::string("DROP PROCEDURE ") + (if_exists ? "IF EXISTS " : "") + name;
}

std::unique_ptr<ExecStmt> ExecStmt::Clone() const {
  auto s = std::make_unique<ExecStmt>();
  s->proc_name = proc_name;
  for (const auto& a : args) s->args.push_back(a->Clone());
  return s;
}

std::string ExecStmt::ToSql() const {
  std::string s = "EXEC " + proc_name + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) s += ", ";
    s += args[i]->ToSql();
  }
  s += ")";
  return s;
}

std::string ShowStmt::ToSql() const {
  if (what == What::kKeys) return "SHOW KEYS " + table;
  if (what == What::kProcs) return "SHOW PROCEDURES";
  return "SHOW TABLES";
}

std::unique_ptr<Statement> Statement::Clone() const {
  auto s = std::make_unique<Statement>();
  s->kind = kind;
  if (select) s->select = select->Clone();
  if (insert) s->insert = insert->Clone();
  if (update) s->update = update->Clone();
  if (del) s->del = del->Clone();
  if (create_table) s->create_table = create_table->Clone();
  if (drop_table) s->drop_table = std::make_unique<DropTableStmt>(*drop_table);
  if (create_proc) s->create_proc = create_proc->Clone();
  if (drop_proc) s->drop_proc = std::make_unique<DropProcStmt>(*drop_proc);
  if (exec) s->exec = exec->Clone();
  if (show) s->show = std::make_unique<ShowStmt>(*show);
  if (create_index) s->create_index = std::make_unique<CreateIndexStmt>(*create_index);
  if (drop_index) s->drop_index = std::make_unique<DropIndexStmt>(*drop_index);
  if (explain_inner) s->explain_inner = explain_inner->Clone();
  return s;
}

std::string Statement::ToSql() const {
  switch (kind) {
    case StmtKind::kSelect: return select->ToSql();
    case StmtKind::kInsert: return insert->ToSql();
    case StmtKind::kUpdate: return update->ToSql();
    case StmtKind::kDelete: return del->ToSql();
    case StmtKind::kCreateTable: return create_table->ToSql();
    case StmtKind::kDropTable: return drop_table->ToSql();
    case StmtKind::kCreateProc: return create_proc->ToSql();
    case StmtKind::kDropProc: return drop_proc->ToSql();
    case StmtKind::kExec: return exec->ToSql();
    case StmtKind::kBeginTxn: return "BEGIN TRANSACTION";
    case StmtKind::kCommit: return "COMMIT";
    case StmtKind::kRollback: return "ROLLBACK";
    case StmtKind::kShow: return show->ToSql();
    case StmtKind::kCreateIndex: return create_index->ToSql();
    case StmtKind::kDropIndex: return drop_index->ToSql();
    case StmtKind::kExplain: return "EXPLAIN " + explain_inner->ToSql();
  }
  return "?";
}

}  // namespace phoenix::sql
