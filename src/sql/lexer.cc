#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace phoenix::sql {

namespace {

char UpperChar(char c) {
  return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '#';
}

bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '#' ||
         c == '$';
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && text[i + 1] == '-') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) {
        return Status::SqlError("unterminated block comment");
      }
      i = end + 2;
      continue;
    }
    Token tok;
    tok.offset = i;
    // String literal.
    if (c == '\'') {
      std::string value;
      ++i;
      bool closed = false;
      while (i < n) {
        if (text[i] == '\'') {
          if (i + 1 < n && text[i + 1] == '\'') {
            value.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value.push_back(text[i]);
        ++i;
      }
      if (!closed) return Status::SqlError("unterminated string literal");
      tok.kind = TokKind::kString;
      tok.text = std::move(value);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      if (i < n && text[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      }
      if (i < n && (text[i] == 'e' || text[i] == 'E')) {
        size_t save = i;
        ++i;
        if (i < n && (text[i] == '+' || text[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) {
          is_double = true;
          while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
        } else {
          i = save;  // 'e' belongs to a following identifier
        }
      }
      tok.text = text.substr(start, i - start);
      if (is_double) {
        tok.kind = TokKind::kDouble;
        tok.double_value = std::strtod(tok.text.c_str(), nullptr);
      } else {
        tok.kind = TokKind::kInt;
        tok.int_value = std::strtoll(tok.text.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    // Parameter reference @name.
    if (c == '@') {
      size_t start = ++i;
      while (i < n && IsIdentBody(text[i])) ++i;
      if (i == start) return Status::SqlError("bare '@' in input");
      tok.kind = TokKind::kParam;
      tok.text = text.substr(start, i - start);
      for (char ch : tok.text) tok.upper.push_back(UpperChar(ch));
      tokens.push_back(std::move(tok));
      continue;
    }
    // Identifier / keyword.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentBody(text[i])) ++i;
      tok.kind = TokKind::kIdent;
      tok.text = text.substr(start, i - start);
      for (char ch : tok.text) tok.upper.push_back(UpperChar(ch));
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators.
    auto two = [&](const char* op) {
      return i + 1 < n && text[i] == op[0] && text[i + 1] == op[1];
    };
    if (two("<=") || two(">=") || two("<>") || two("!=")) {
      tok.kind = TokKind::kSymbol;
      tok.text = text.substr(i, 2);
      i += 2;
      tokens.push_back(std::move(tok));
      continue;
    }
    static const std::string kSingles = "(),;*=<>+-/%.";
    if (kSingles.find(c) != std::string::npos) {
      tok.kind = TokKind::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::SqlError(std::string("unexpected character '") + c +
                            "' at offset " + std::to_string(i));
  }
  Token end;
  end.kind = TokKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace phoenix::sql
