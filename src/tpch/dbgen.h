#ifndef PHOENIX_TPCH_DBGEN_H_
#define PHOENIX_TPCH_DBGEN_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "odbc/driver_manager.h"

namespace phoenix::tpch {

/// Scale knobs. sf=1 ≈ 150 customers / 1.5k orders / ~6k lineitems — the
/// TPC-H row ratios at laptop scale. All values derive deterministically
/// from `seed`.
struct TpchScale {
  double sf = 1.0;
  uint64_t seed = 19990614;  // EDBT 2000 submission era

  int64_t regions() const { return 5; }
  int64_t nations() const { return 25; }
  int64_t suppliers() const { return std::max<int64_t>(10, int64_t(20 * sf)); }
  int64_t parts() const { return std::max<int64_t>(40, int64_t(200 * sf)); }
  int64_t suppliers_per_part() const { return 4; }
  int64_t customers() const { return std::max<int64_t>(30, int64_t(150 * sf)); }
  int64_t orders_per_customer() const { return 10; }
  /// Like TPC-H, a third of customers never place an order (every custkey
  /// divisible by 3 is absent from ORDERS) — Q13's childless population.
  int64_t ordering_customers() const { return customers() - customers() / 3; }
  int64_t total_orders() const {
    return ordering_customers() * orders_per_customer();
  }
  /// Refresh set: ~1% of the order count (paper inserted/deleted 0.1% at
  /// full TPC-H scale; at micro scale 1% keeps the row counts meaningful).
  int64_t refresh_orders() const {
    return std::max<int64_t>(10, customers() * orders_per_customer() / 100);
  }
  /// Order keys for refresh rows occupy [refresh_key_base, ...): RF2 can
  /// delete them with simple key-range predicates.
  int64_t refresh_key_base() const {
    return customers() * orders_per_customer() + 1000000;
  }
};

/// Creates the schema and deterministically populates all base tables plus
/// the ORDERS_RF / LINEITEM_RF staging tables, through the given driver
/// manager and connection (multi-row INSERT batches).
Status Populate(odbc::DriverManager* dm, odbc::Hdbc* dbc,
                const TpchScale& scale);

/// Convenience: rows currently in `table` (COUNT(*) round trip).
Result<int64_t> CountRows(odbc::DriverManager* dm, odbc::Hdbc* dbc,
                          const std::string& table);

}  // namespace phoenix::tpch

#endif  // PHOENIX_TPCH_DBGEN_H_
