#ifndef PHOENIX_TPCH_SCHEMA_H_
#define PHOENIX_TPCH_SCHEMA_H_

#include <string>
#include <vector>

namespace phoenix::tpch {

/// DDL for the TPC-H-lite schema (eight base tables) plus the refresh-set
/// staging tables ORDERS_RF / LINEITEM_RF used by RF1/RF2.
std::vector<std::string> SchemaDdl();

/// Names of all tables created by SchemaDdl, in creation order.
std::vector<std::string> TableNames();

}  // namespace phoenix::tpch

#endif  // PHOENIX_TPCH_SCHEMA_H_
