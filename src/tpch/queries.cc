#include "tpch/queries.h"

#include <cstdio>
#include <cstdlib>

namespace phoenix::tpch {

const std::vector<QueryDef>& QuerySuite() {
  static const std::vector<QueryDef>* kSuite = new std::vector<QueryDef>{
      {"Q1", "pricing summary report",
       "SELECT L_RETURNFLAG, L_LINESTATUS,"
       " SUM(L_QUANTITY) AS SUM_QTY,"
       " SUM(L_EXTENDEDPRICE) AS SUM_BASE_PRICE,"
       " SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) AS SUM_DISC_PRICE,"
       " SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT) * (1 + L_TAX)) AS SUM_CHARGE,"
       " AVG(L_QUANTITY) AS AVG_QTY,"
       " AVG(L_EXTENDEDPRICE) AS AVG_PRICE,"
       " AVG(L_DISCOUNT) AS AVG_DISC,"
       " COUNT(*) AS COUNT_ORDER"
       " FROM LINEITEM"
       " WHERE L_SHIPDATE <= DATE '1998-09-02'"
       " GROUP BY L_RETURNFLAG, L_LINESTATUS"
       " ORDER BY L_RETURNFLAG, L_LINESTATUS"},

      {"Q3", "shipping priority",
       "SELECT L_ORDERKEY,"
       " SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) AS REVENUE,"
       " O_ORDERDATE, O_SHIPPRIORITY"
       " FROM CUSTOMER, ORDERS, LINEITEM"
       " WHERE C_MKTSEGMENT = 'BUILDING'"
       " AND C_CUSTKEY = O_CUSTKEY"
       " AND L_ORDERKEY = O_ORDERKEY"
       " AND O_ORDERDATE < DATE '1995-03-15'"
       " AND L_SHIPDATE > DATE '1995-03-15'"
       " GROUP BY L_ORDERKEY, O_ORDERDATE, O_SHIPPRIORITY"
       " ORDER BY REVENUE DESC, O_ORDERDATE"
       " LIMIT 10"},

      {"Q4", "order priority checking (simplified: status flag stands in "
             "for the EXISTS-late-lineitem test)",
       "SELECT O_ORDERPRIORITY, COUNT(*) AS ORDER_COUNT,"
       " SUM(CASE WHEN O_ORDERSTATUS = 'F' THEN 1 ELSE 0 END) AS FINISHED"
       " FROM ORDERS"
       " WHERE O_ORDERDATE >= DATE '1993-07-01'"
       " AND O_ORDERDATE < DATE '1993-10-01'"
       " GROUP BY O_ORDERPRIORITY"
       " ORDER BY O_ORDERPRIORITY"},

      {"Q5", "local supplier volume",
       "SELECT N_NAME,"
       " SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) AS REVENUE"
       " FROM CUSTOMER, ORDERS, LINEITEM, SUPPLIER, NATION, REGION"
       " WHERE C_CUSTKEY = O_CUSTKEY"
       " AND L_ORDERKEY = O_ORDERKEY"
       " AND L_SUPPKEY = S_SUPPKEY"
       " AND C_NATIONKEY = S_NATIONKEY"
       " AND S_NATIONKEY = N_NATIONKEY"
       " AND N_REGIONKEY = R_REGIONKEY"
       " AND R_NAME = 'ASIA'"
       " AND O_ORDERDATE >= DATE '1994-01-01'"
       " AND O_ORDERDATE < DATE '1995-01-01'"
       " GROUP BY N_NAME"
       " ORDER BY REVENUE DESC"},

      {"Q6", "forecasting revenue change",
       "SELECT SUM(L_EXTENDEDPRICE * L_DISCOUNT) AS REVENUE"
       " FROM LINEITEM"
       " WHERE L_SHIPDATE >= DATE '1994-01-01'"
       " AND L_SHIPDATE < DATE '1995-01-01'"
       " AND L_DISCOUNT BETWEEN 0.05 AND 0.07"
       " AND L_QUANTITY < 24"},

      {"Q8", "national market share (simplified: no part dimension)",
       "SELECT YEAR(O_ORDERDATE) AS O_YEAR,"
       " SUM(CASE WHEN N_NAME = 'CHINA'"
       " THEN L_EXTENDEDPRICE * (1 - L_DISCOUNT) ELSE 0 END) /"
       " SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) AS MKT_SHARE"
       " FROM ORDERS, LINEITEM, SUPPLIER, NATION, REGION"
       " WHERE O_ORDERKEY = L_ORDERKEY"
       " AND L_SUPPKEY = S_SUPPKEY"
       " AND S_NATIONKEY = N_NATIONKEY"
       " AND N_REGIONKEY = R_REGIONKEY"
       " AND R_NAME = 'ASIA'"
       " AND O_ORDERDATE BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'"
       " GROUP BY YEAR(O_ORDERDATE)"
       " ORDER BY O_YEAR"},

      {"Q10", "returned item reporting",
       "SELECT C_CUSTKEY, C_NAME,"
       " SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) AS REVENUE,"
       " C_ACCTBAL, N_NAME"
       " FROM CUSTOMER, ORDERS, LINEITEM, NATION"
       " WHERE C_CUSTKEY = O_CUSTKEY"
       " AND L_ORDERKEY = O_ORDERKEY"
       " AND O_ORDERDATE >= DATE '1993-10-01'"
       " AND O_ORDERDATE < DATE '1994-01-01'"
       " AND L_RETURNFLAG = 'R'"
       " AND C_NATIONKEY = N_NATIONKEY"
       " GROUP BY C_CUSTKEY, C_NAME, C_ACCTBAL, N_NAME"
       " ORDER BY REVENUE DESC"
       " LIMIT 20"},

      {"Q11", "important stock identification",
       "SELECT PS_PARTKEY,"
       " SUM(PS_SUPPLYCOST * PS_AVAILQTY) AS STOCK_VALUE"
       " FROM PARTSUPP, SUPPLIER, NATION"
       " WHERE PS_SUPPKEY = S_SUPPKEY"
       " AND S_NATIONKEY = N_NATIONKEY"
       " AND N_NAME = 'GERMANY'"
       " GROUP BY PS_PARTKEY"
       " ORDER BY STOCK_VALUE DESC"},

      {"Q13", "customer distribution (simplified: order counts per "
              "customer, childless customers included)",
       "SELECT C_CUSTKEY, COUNT(O_ORDERKEY) AS C_COUNT"
       " FROM CUSTOMER LEFT JOIN ORDERS ON C_CUSTKEY = O_CUSTKEY"
       " GROUP BY C_CUSTKEY"
       " ORDER BY C_COUNT DESC, C_CUSTKEY"
       " LIMIT 25"},

      {"Q14", "promotion effect",
       "SELECT 100.0 * SUM(CASE WHEN P_TYPE LIKE 'PROMO%'"
       " THEN L_EXTENDEDPRICE * (1 - L_DISCOUNT) ELSE 0 END) /"
       " SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) AS PROMO_REVENUE"
       " FROM LINEITEM, PART"
       " WHERE L_PARTKEY = P_PARTKEY"
       " AND L_SHIPDATE >= DATE '1995-09-01'"
       " AND L_SHIPDATE < DATE '1995-10-01'"},

      {"Q16", "parts/supplier relationship",
       "SELECT P_BRAND, P_TYPE, P_SIZE,"
       " COUNT(DISTINCT PS_SUPPKEY) AS SUPPLIER_CNT"
       " FROM PARTSUPP, PART"
       " WHERE P_PARTKEY = PS_PARTKEY"
       " AND P_BRAND <> 'Brand#45'"
       " AND P_TYPE NOT LIKE 'MEDIUM POLISHED%'"
       " AND P_SIZE IN (49, 14, 23, 45, 19, 3, 36, 9)"
       " GROUP BY P_BRAND, P_TYPE, P_SIZE"
       " ORDER BY SUPPLIER_CNT DESC, P_BRAND, P_TYPE, P_SIZE"},
  };
  return *kSuite;
}

const QueryDef& GetQuery(const std::string& id) {
  for (const QueryDef& q : QuerySuite()) {
    if (q.id == id) return q;
  }
  std::fprintf(stderr, "unknown TPC-H query id: %s\n", id.c_str());
  std::abort();
}

}  // namespace phoenix::tpch
