#include "tpch/refresh.h"

namespace phoenix::tpch {

namespace {

using odbc::DriverManager;
using odbc::Hdbc;
using odbc::Hstmt;

struct KeyRange {
  int64_t lo;
  int64_t hi;  // inclusive
};

/// The two per-transaction halves of the refresh key range.
void SplitRange(const TpchScale& scale, KeyRange* first, KeyRange* second) {
  int64_t base = scale.refresh_key_base();
  int64_t count = scale.refresh_orders();
  int64_t mid = base + count / 2;
  *first = {base, mid - 1};
  *second = {mid, base + count - 1};
}

class StmtRunner {
 public:
  StmtRunner(DriverManager* dm, Hdbc* dbc) : dm_(dm) {
    stmt_ = dm->AllocStmt(dbc);
  }
  ~StmtRunner() { dm_->FreeStmt(stmt_); }

  /// Executes and accumulates affected-row counts.
  Status Run(const std::string& sql) {
    if (!Succeeded(dm_->ExecDirect(stmt_, sql))) {
      return DriverManager::Diag(stmt_);
    }
    int64_t n = 0;
    dm_->RowCount(stmt_, &n);
    if (n > 0) affected_ += n;
    return Status::Ok();
  }

  int64_t affected() const { return affected_; }

 private:
  DriverManager* dm_;
  Hstmt* stmt_;
  int64_t affected_ = 0;
};

std::string Between(const std::string& column, const KeyRange& range) {
  return column + " BETWEEN " + std::to_string(range.lo) + " AND " +
         std::to_string(range.hi);
}

}  // namespace

Result<int64_t> RunRF1(DriverManager* dm, Hdbc* dbc, const TpchScale& scale) {
  KeyRange halves[2];
  SplitRange(scale, &halves[0], &halves[1]);
  StmtRunner runner(dm, dbc);
  for (const KeyRange& range : halves) {
    PHX_RETURN_IF_ERROR(runner.Run("BEGIN TRANSACTION"));
    PHX_RETURN_IF_ERROR(
        runner.Run("INSERT INTO ORDERS SELECT * FROM ORDERS_RF WHERE " +
                   Between("O_ORDERKEY", range)));
    PHX_RETURN_IF_ERROR(
        runner.Run("INSERT INTO LINEITEM SELECT * FROM LINEITEM_RF WHERE " +
                   Between("L_ORDERKEY", range)));
    PHX_RETURN_IF_ERROR(runner.Run("COMMIT"));
  }
  return runner.affected();
}

Result<int64_t> RunRF2(DriverManager* dm, Hdbc* dbc, const TpchScale& scale) {
  KeyRange halves[2];
  SplitRange(scale, &halves[0], &halves[1]);
  StmtRunner runner(dm, dbc);
  for (const KeyRange& range : halves) {
    PHX_RETURN_IF_ERROR(runner.Run("BEGIN TRANSACTION"));
    PHX_RETURN_IF_ERROR(runner.Run("DELETE FROM LINEITEM WHERE " +
                                   Between("L_ORDERKEY", range)));
    PHX_RETURN_IF_ERROR(runner.Run("DELETE FROM ORDERS WHERE " +
                                   Between("O_ORDERKEY", range)));
    PHX_RETURN_IF_ERROR(runner.Run("COMMIT"));
  }
  return runner.affected();
}

}  // namespace phoenix::tpch
