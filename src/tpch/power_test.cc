#include "tpch/power_test.h"

#include "common/rng.h"
#include "tpch/queries.h"
#include "tpch/refresh.h"

namespace phoenix::tpch {

using odbc::DriverManager;
using odbc::Hdbc;
using odbc::Hstmt;
using odbc::SqlReturn;

Result<int64_t> ExecAndDrain(DriverManager* dm, Hdbc* dbc,
                             const std::string& sql) {
  Hstmt* stmt = dm->AllocStmt(dbc);
  Status failure;
  int64_t rows = -1;
  if (Succeeded(dm->ExecDirect(stmt, sql))) {
    size_t cols = 0;
    dm->NumResultCols(stmt, &cols);
    if (cols == 0) {
      dm->RowCount(stmt, &rows);
    } else {
      rows = 0;
      while (true) {
        SqlReturn r = dm->Fetch(stmt);
        if (r == SqlReturn::kNoData) break;
        if (!Succeeded(r)) {
          failure = DriverManager::Diag(stmt);
          rows = -1;
          break;
        }
        ++rows;
      }
    }
  } else {
    failure = DriverManager::Diag(stmt);
  }
  dm->FreeStmt(stmt);
  if (rows < 0) return failure;
  return rows;
}

Result<PassTiming> RunPowerPass(DriverManager* dm, Hdbc* dbc,
                                const TpchScale& scale) {
  PassTiming out;
  for (const QueryDef& q : QuerySuite()) {
    StopWatch watch;
    PHX_ASSIGN_OR_RETURN(int64_t rows, ExecAndDrain(dm, dbc, q.sql));
    double s = watch.ElapsedSeconds();
    out.seconds[q.id] = s;
    out.counts[q.id] = rows;
    out.query_total += s;
  }
  {
    StopWatch watch;
    PHX_ASSIGN_OR_RETURN(int64_t rows, RunRF1(dm, dbc, scale));
    out.seconds["RF1"] = watch.ElapsedSeconds();
    out.counts["RF1"] = rows;
    out.update_total += out.seconds["RF1"];
  }
  {
    StopWatch watch;
    PHX_ASSIGN_OR_RETURN(int64_t rows, RunRF2(dm, dbc, scale));
    out.seconds["RF2"] = watch.ElapsedSeconds();
    out.counts["RF2"] = rows;
    out.update_total += out.seconds["RF2"];
  }
  return out;
}

PassTiming AveragePasses(const std::vector<PassTiming>& passes) {
  PassTiming avg;
  if (passes.empty()) return avg;
  for (const PassTiming& p : passes) {
    for (const auto& [id, s] : p.seconds) avg.seconds[id] += s;
    for (const auto& [id, n] : p.counts) avg.counts[id] = n;
    avg.query_total += p.query_total;
    avg.update_total += p.update_total;
  }
  double n = static_cast<double>(passes.size());
  for (auto& [id, s] : avg.seconds) s /= n;
  avg.query_total /= n;
  avg.update_total /= n;
  return avg;
}

}  // namespace phoenix::tpch
