#ifndef PHOENIX_TPCH_POWER_TEST_H_
#define PHOENIX_TPCH_POWER_TEST_H_

#include <map>
#include <string>

#include "common/status.h"
#include "odbc/driver_manager.h"
#include "tpch/dbgen.h"

namespace phoenix::tpch {

/// Timings and cardinalities of one power-test pass (every query executed
/// once, in order, result fully fetched; then RF1 and RF2).
struct PassTiming {
  /// Per item ("Q1".."Q16", "RF1", "RF2"): elapsed seconds.
  std::map<std::string, double> seconds;
  /// Result rows (queries) or rows modified (refresh functions).
  std::map<std::string, int64_t> counts;
  double query_total = 0;
  double update_total = 0;
};

/// Runs all queries and refresh functions once through (dm, dbc) and times
/// them individually — "executes all queries and update functions defined
/// in the benchmark one at a time in order".
Result<PassTiming> RunPowerPass(odbc::DriverManager* dm, odbc::Hdbc* dbc,
                                const TpchScale& scale);

/// Executes one SQL statement and drains its full result set through the
/// SQLFetch loop (what an application would do). Returns rows fetched, or
/// the affected-row count for non-queries.
Result<int64_t> ExecAndDrain(odbc::DriverManager* dm, odbc::Hdbc* dbc,
                             const std::string& sql);

/// Averages several passes element-wise.
PassTiming AveragePasses(const std::vector<PassTiming>& passes);

}  // namespace phoenix::tpch

#endif  // PHOENIX_TPCH_POWER_TEST_H_
