#ifndef PHOENIX_TPCH_REFRESH_H_
#define PHOENIX_TPCH_REFRESH_H_

#include "common/status.h"
#include "odbc/driver_manager.h"
#include "tpch/dbgen.h"

namespace phoenix::tpch {

/// RF1 (new sales): moves the staged refresh orders/lineitems into the base
/// tables. As in the paper, the function is decomposed into two
/// transactions, each receiving one half of the key range and submitting
/// two INSERT requests. Returns total rows inserted.
Result<int64_t> RunRF1(odbc::DriverManager* dm, odbc::Hdbc* dbc,
                       const TpchScale& scale);

/// RF2 (stale data removal): deletes exactly the rows RF1 inserted, again
/// as two transactions of two DELETE requests each. Returns rows deleted.
Result<int64_t> RunRF2(odbc::DriverManager* dm, odbc::Hdbc* dbc,
                       const TpchScale& scale);

}  // namespace phoenix::tpch

#endif  // PHOENIX_TPCH_REFRESH_H_
