#include "tpch/dbgen.h"

#include <cstdio>

#include "common/rng.h"
#include "common/value.h"
#include "tpch/schema.h"

namespace phoenix::tpch {

namespace {

using odbc::DriverManager;
using odbc::Hdbc;
using odbc::Hstmt;
using odbc::SqlReturn;

constexpr size_t kInsertBatch = 200;

const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                              "MIDDLE EAST"};
const char* kNationNames[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA",  "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",  "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN", "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",  "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kTypeSyll1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                            "PROMO"};
const char* kTypeSyll2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                            "BRUSHED"};
const char* kTypeSyll3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};

/// Accumulates VALUES-rows and flushes multi-row INSERT statements.
class BatchInserter {
 public:
  BatchInserter(DriverManager* dm, Hstmt* stmt, std::string table)
      : dm_(dm), stmt_(stmt), table_(std::move(table)) {}

  void Add(const std::string& row_tuple) {
    rows_.push_back(row_tuple);
    if (rows_.size() >= kInsertBatch) status_ = Flush();
  }

  Status Finish() {
    if (!status_.ok()) return status_;
    return Flush();
  }

 private:
  Status Flush() {
    if (!status_.ok()) return status_;
    if (rows_.empty()) return Status::Ok();
    std::string sql = "INSERT INTO " + table_ + " VALUES ";
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i) sql += ", ";
      sql += rows_[i];
    }
    rows_.clear();
    if (!Succeeded(dm_->ExecDirect(stmt_, sql))) {
      return DriverManager::Diag(stmt_);
    }
    return Status::Ok();
  }

  DriverManager* dm_;
  Hstmt* stmt_;
  std::string table_;
  std::vector<std::string> rows_;
  Status status_;
};

std::string Money(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string Quoted(const std::string& s) { return "'" + s + "'"; }

struct OrderSpec {
  int64_t key;
  int64_t custkey;
  int32_t orderdate;  // day number
};

/// Emits one order plus its lineitems into the given inserters; returns the
/// order's total price.
double EmitOrder(const OrderSpec& spec, const TpchScale& scale, Rng* rng,
                 BatchInserter* orders, BatchInserter* lineitems) {
  int n_items = 1 + static_cast<int>(rng->NextBelow(7));
  double total = 0;
  int32_t last_ship = spec.orderdate;
  for (int ln = 1; ln <= n_items; ++ln) {
    int64_t partkey = 1 + static_cast<int64_t>(rng->NextBelow(
                              static_cast<uint64_t>(scale.parts())));
    int64_t suppkey = 1 + static_cast<int64_t>(rng->NextBelow(
                              static_cast<uint64_t>(scale.suppliers())));
    double qty = 1 + static_cast<double>(rng->NextBelow(50));
    double price = qty * (900.0 + static_cast<double>(rng->NextBelow(1100)));
    double discount = static_cast<double>(rng->NextBelow(11)) / 100.0;
    double tax = static_cast<double>(rng->NextBelow(9)) / 100.0;
    int32_t shipdate =
        spec.orderdate + 1 + static_cast<int32_t>(rng->NextBelow(121));
    if (shipdate > last_ship) last_ship = shipdate;
    // TPC-H: items shipped before the receipt-date cutoff are returned 'R'
    // or accepted 'A'; later ones are 'N'. We key off a fixed horizon date.
    const int32_t kHorizon = 10340;  // 1998-04-24
    std::string returnflag =
        shipdate <= kHorizon ? (rng->NextBool() ? "R" : "A") : "N";
    std::string linestatus = shipdate <= kHorizon ? "F" : "O";
    total += price * (1 - discount) * (1 + tax);
    std::string row = "(" + std::to_string(spec.key) + ", " +
                      std::to_string(partkey) + ", " +
                      std::to_string(suppkey) + ", " + std::to_string(ln) +
                      ", " + Money(qty) + ", " + Money(price) + ", " +
                      Money(discount) + ", " + Money(tax) + ", " +
                      Quoted(returnflag) + ", " + Quoted(linestatus) +
                      ", DATE '" + FormatDate(shipdate) + "')";
    lineitems->Add(row);
  }
  const int32_t kHorizon = 10340;
  std::string status = last_ship <= kHorizon ? "F" : "O";
  std::string row =
      "(" + std::to_string(spec.key) + ", " + std::to_string(spec.custkey) +
      ", " + Quoted(status) + ", " + Money(total) + ", DATE '" +
      FormatDate(spec.orderdate) + "', " +
      Quoted(kPriorities[rng->NextBelow(5)]) + ", " +
      std::to_string(rng->NextBelow(2)) + ")";
  orders->Add(row);
  return total;
}

}  // namespace

Status Populate(DriverManager* dm, Hdbc* dbc, const TpchScale& scale) {
  Hstmt* stmt = dm->AllocStmt(dbc);
  auto run = [&](const std::string& sql) -> Status {
    if (!Succeeded(dm->ExecDirect(stmt, sql))) {
      return DriverManager::Diag(stmt);
    }
    return Status::Ok();
  };

  for (const std::string& ddl : SchemaDdl()) {
    PHX_RETURN_IF_ERROR(run(ddl));
  }

  Rng rng(scale.seed);

  // REGION / NATION.
  {
    BatchInserter regions(dm, stmt, "REGION");
    for (int64_t i = 0; i < scale.regions(); ++i) {
      regions.Add("(" + std::to_string(i) + ", " + Quoted(kRegionNames[i]) +
                  ")");
    }
    PHX_RETURN_IF_ERROR(regions.Finish());
    BatchInserter nations(dm, stmt, "NATION");
    for (int64_t i = 0; i < scale.nations(); ++i) {
      nations.Add("(" + std::to_string(i) + ", " + Quoted(kNationNames[i]) +
                  ", " + std::to_string(i % 5) + ")");
    }
    PHX_RETURN_IF_ERROR(nations.Finish());
  }

  // SUPPLIER.
  {
    BatchInserter suppliers(dm, stmt, "SUPPLIER");
    for (int64_t i = 1; i <= scale.suppliers(); ++i) {
      // Nations are assigned round-robin so every nation has suppliers even
      // at tiny scale factors (Q5/Q11 depend on specific nations).
      suppliers.Add("(" + std::to_string(i) + ", 'Supplier#" +
                    std::to_string(i) + "', " +
                    std::to_string((i - 1) % scale.nations()) + ", " +
                    Money(-999.99 + rng.NextDouble() * 10998.98) + ")");
    }
    PHX_RETURN_IF_ERROR(suppliers.Finish());
  }

  // PART / PARTSUPP.
  {
    BatchInserter parts(dm, stmt, "PART");
    BatchInserter partsupp(dm, stmt, "PARTSUPP");
    for (int64_t i = 1; i <= scale.parts(); ++i) {
      std::string type = std::string(kTypeSyll1[rng.NextBelow(6)]) + " " +
                         kTypeSyll2[rng.NextBelow(5)] + " " +
                         kTypeSyll3[rng.NextBelow(5)];
      std::string brand = "Brand#" + std::to_string(1 + rng.NextBelow(5)) +
                          std::to_string(1 + rng.NextBelow(5));
      parts.Add("(" + std::to_string(i) + ", 'part " + rng.NextString(8) +
                "', " + Quoted(brand) + ", " + Quoted(type) + ", " +
                std::to_string(1 + rng.NextBelow(50)) + ", " +
                Money(900 + static_cast<double>(rng.NextBelow(1100))) + ")");
      for (int64_t s = 0; s < scale.suppliers_per_part(); ++s) {
        int64_t suppkey =
            1 + (i + s * (scale.suppliers() / 4 + 1)) % scale.suppliers();
        partsupp.Add("(" + std::to_string(i) + ", " + std::to_string(suppkey) +
                     ", " + std::to_string(1 + rng.NextBelow(9999)) + ", " +
                     Money(1.0 + rng.NextDouble() * 999.0) + ")");
      }
    }
    PHX_RETURN_IF_ERROR(parts.Finish());
    PHX_RETURN_IF_ERROR(partsupp.Finish());
  }

  // CUSTOMER.
  {
    BatchInserter customers(dm, stmt, "CUSTOMER");
    for (int64_t i = 1; i <= scale.customers(); ++i) {
      customers.Add("(" + std::to_string(i) + ", 'Customer#" +
                    std::to_string(i) + "', " +
                    std::to_string(rng.NextBelow(25)) + ", " +
                    Money(-999.99 + rng.NextDouble() * 10998.98) + ", " +
                    Quoted(kSegments[rng.NextBelow(5)]) + ")");
    }
    PHX_RETURN_IF_ERROR(customers.Finish());
  }

  // ORDERS / LINEITEM. Order dates span 1992-01-01 .. 1998-08-02.
  const int32_t kDateLo = 8035;   // 1992-01-01
  const int32_t kDateHi = 10440;  // 1998-08-02
  {
    BatchInserter orders(dm, stmt, "ORDERS");
    BatchInserter lineitems(dm, stmt, "LINEITEM");
    int64_t orderkey = 1;
    for (int64_t c = 1; c <= scale.customers(); ++c) {
      if (c % 3 == 0) continue;  // a third of customers never order (Q13)
      for (int64_t o = 0; o < scale.orders_per_customer(); ++o) {
        OrderSpec spec;
        spec.key = orderkey++;
        spec.custkey = c;
        spec.orderdate = kDateLo + static_cast<int32_t>(rng.NextBelow(
                                       static_cast<uint64_t>(kDateHi - kDateLo)));
        EmitOrder(spec, scale, &rng, &orders, &lineitems);
      }
    }
    PHX_RETURN_IF_ERROR(orders.Finish());
    PHX_RETURN_IF_ERROR(lineitems.Finish());
  }

  // Refresh staging rows, in the reserved key range.
  {
    BatchInserter orders(dm, stmt, "ORDERS_RF");
    BatchInserter lineitems(dm, stmt, "LINEITEM_RF");
    int64_t base = scale.refresh_key_base();
    for (int64_t i = 0; i < scale.refresh_orders(); ++i) {
      OrderSpec spec;
      spec.key = base + i;
      spec.custkey = 1 + static_cast<int64_t>(rng.NextBelow(
                             static_cast<uint64_t>(scale.customers())));
      spec.orderdate = kDateLo + static_cast<int32_t>(rng.NextBelow(
                                     static_cast<uint64_t>(kDateHi - kDateLo)));
      EmitOrder(spec, scale, &rng, &orders, &lineitems);
    }
    PHX_RETURN_IF_ERROR(orders.Finish());
    PHX_RETURN_IF_ERROR(lineitems.Finish());
  }

  dm->FreeStmt(stmt);
  return Status::Ok();
}

Result<int64_t> CountRows(DriverManager* dm, Hdbc* dbc,
                          const std::string& table) {
  Hstmt* stmt = dm->AllocStmt(dbc);
  Status failure;
  int64_t count = -1;
  if (Succeeded(dm->ExecDirect(stmt, "SELECT COUNT(*) AS N FROM " + table)) &&
      Succeeded(dm->Fetch(stmt))) {
    Value v;
    dm->GetData(stmt, 0, &v);
    count = v.AsInt64();
  } else {
    failure = DriverManager::Diag(stmt);
  }
  dm->FreeStmt(stmt);
  if (count < 0) return failure;
  return count;
}

}  // namespace phoenix::tpch
