#ifndef PHOENIX_TPCH_QUERIES_H_
#define PHOENIX_TPCH_QUERIES_H_

#include <string>
#include <vector>

namespace phoenix::tpch {

struct QueryDef {
  std::string id;           ///< "Q1", "Q3", ...
  std::string description;  ///< TPC-H name
  std::string sql;
};

/// The TPC-H-lite decision-support query suite (analogues of Q1, Q3, Q5,
/// Q6, Q10, Q11, Q14, Q16 expressed in the engine's dialect; simplifications
/// are documented in DESIGN.md).
const std::vector<QueryDef>& QuerySuite();

/// Lookup by id; aborts on unknown id (programmer error).
const QueryDef& GetQuery(const std::string& id);

}  // namespace phoenix::tpch

#endif  // PHOENIX_TPCH_QUERIES_H_
